package gqr

import (
	"reflect"
	"sync"
	"testing"

	"gqr/internal/dataset"
)

// flatQueries packs every dataset query into one nq×dim block.
func flatQueries(ds *dataset.Dataset) []float32 {
	flat := make([]float32, 0, ds.NQ()*ds.Dim)
	for qi := 0; qi < ds.NQ(); qi++ {
		flat = append(flat, ds.Query(qi)...)
	}
	return flat
}

// TestBatchMatchesSequentialOracle is the batched-execution oracle: for
// every querying method, with and without re-ranking, across lifecycle
// states (tombstones pending) and query predicates (tag mask, filter),
// SearchBatchWithStats must return bit-identical per-query results —
// neighbors AND work counters — to sequential SearchWithStats calls.
// SH and KMH exercise the non-batchable fallback (their projections are
// not affine, so the planner skips their tables and the searcher falls
// back to per-query projection).
func TestBatchMatchesSequentialOracle(t *testing.T) {
	ds := demoData(t)
	flat := flatQueries(ds)
	const k = 10

	type variant struct {
		name string
		opts []SearchOption
	}
	variants := []variant{
		{"budget", []SearchOption{WithMaxCandidates(120)}},
		{"earlystop", []SearchOption{WithMaxCandidates(400), WithEarlyStop()}},
		{"tagmask", []SearchOption{WithMaxCandidates(200), WithTagMask(1)}},
		{"filter", []SearchOption{WithMaxCandidates(200), WithFilter(func(id int, _ uint64) bool { return id%3 != 0 })}},
	}

	type build struct {
		name string
		opts []Option
	}
	builds := []build{
		{"gqr", []Option{WithQueryMethod(GQR)}},
		{"qr", []Option{WithQueryMethod(QR)}},
		{"hr", []Option{WithQueryMethod(HR)}},
		{"ghr", []Option{WithQueryMethod(GHR)}},
		{"mih", []Option{WithQueryMethod(MIH)}},
		{"gqr-rerank", []Option{WithQueryMethod(GQR), WithReranking(0, 0, 0)}},
		{"hr-rerank", []Option{WithQueryMethod(HR), WithReranking(0, 0, 0)}},
		{"gqr-sh", []Option{WithQueryMethod(GQR), WithAlgorithm(SH)}},
		{"gqr-kmh", []Option{WithQueryMethod(GQR), WithAlgorithm(KMH)}},
		{"gqr-angular", []Option{WithQueryMethod(GQR), WithMetric(Angular)}},
		{"gqr-tables", []Option{WithQueryMethod(GQR), WithTables(3)}},
	}

	for _, b := range builds {
		ix, err := Build(ds.Vectors, ds.Dim, append([]Option{WithSeed(41)}, b.opts...)...)
		if err != nil {
			t.Fatalf("%s: %v", b.name, err)
		}
		// Metadata for the tag-mask variant: odd ids carry bit 0.
		meta := make([]uint64, ds.N())
		for i := range meta {
			meta[i] = uint64(i % 2)
		}
		if err := ix.SetMetadata(meta); err != nil {
			t.Fatal(err)
		}
		// Pending tombstones: delete a scatter of ids so the filtered
		// gather path runs.
		for id := 5; id < ds.N(); id += 37 {
			if err := ix.Delete(id); err != nil {
				t.Fatalf("%s: delete %d: %v", b.name, id, err)
			}
		}
		for _, v := range variants {
			results, err := ix.SearchBatchWithStats(flat, k, v.opts...)
			if err != nil {
				t.Fatalf("%s/%s: batch: %v", b.name, v.name, err)
			}
			if len(results) != ds.NQ() {
				t.Fatalf("%s/%s: %d results for %d queries", b.name, v.name, len(results), ds.NQ())
			}
			for qi, r := range results {
				if r.Err != nil {
					t.Fatalf("%s/%s query %d: %v", b.name, v.name, qi, r.Err)
				}
				want, wantSt, err := ix.SearchWithStats(ds.Query(qi), k, v.opts...)
				if err != nil {
					t.Fatalf("%s/%s query %d: sequential: %v", b.name, v.name, qi, err)
				}
				if !reflect.DeepEqual(r.Neighbors, want) {
					t.Fatalf("%s/%s query %d: batch neighbors %v != sequential %v", b.name, v.name, qi, r.Neighbors, want)
				}
				if r.Stats != wantSt {
					t.Fatalf("%s/%s query %d: batch stats %+v != sequential %+v", b.name, v.name, qi, r.Stats, wantSt)
				}
			}
		}
	}
}

// TestBatchDuplicateQueries covers duplicate suppression: a batch with
// byte-identical members — the shape server-side coalescing produces —
// must return each duplicate the same neighbors and stats a sequential
// search of that query yields, with its own result slice (mutating one
// copy must not leak into another).
func TestBatchDuplicateQueries(t *testing.T) {
	ds := demoData(t)
	for _, build := range [][]Option{
		{WithSeed(45)},
		{WithSeed(45), WithReranking(0, 0, 0)},
		{WithSeed(45), WithMetric(Angular)},
	} {
		ix, err := Build(ds.Vectors, ds.Dim, build...)
		if err != nil {
			t.Fatal(err)
		}
		// q0 q1 q0 q2 q1 q0: duplicates scattered, not adjacent.
		pattern := []int{0, 1, 0, 2, 1, 0}
		flat := make([]float32, 0, len(pattern)*ds.Dim)
		for _, qi := range pattern {
			flat = append(flat, ds.Query(qi)...)
		}
		results, err := ix.SearchBatchWithStats(flat, 7, WithMaxCandidates(300))
		if err != nil {
			t.Fatal(err)
		}
		for i, qi := range pattern {
			if results[i].Err != nil {
				t.Fatalf("member %d: %v", i, results[i].Err)
			}
			want, wantSt, err := ix.SearchWithStats(ds.Query(qi), 7, WithMaxCandidates(300))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(results[i].Neighbors, want) {
				t.Fatalf("member %d (query %d): %v != sequential %v", i, qi, results[i].Neighbors, want)
			}
			if results[i].Stats != wantSt {
				t.Fatalf("member %d (query %d): stats %+v != sequential %+v", i, qi, results[i].Stats, wantSt)
			}
		}
		// Copies own their memory: corrupting member 0 leaves member 2
		// (the same query) intact.
		if len(results[0].Neighbors) == 0 {
			t.Fatal("no neighbors")
		}
		results[0].Neighbors[0].ID = -999
		if results[2].Neighbors[0].ID == -999 {
			t.Fatal("duplicate results share a neighbor slice")
		}
	}
}

// TestShardedBatchMatchesSequential checks the sharded fan-out's batch
// path against its own single-query path: identical neighbors (global
// ids, merged ascending) and identical summed work counters per query.
func TestShardedBatchMatchesSequential(t *testing.T) {
	ds := demoData(t)
	flat := flatQueries(ds)
	const k, shards = 8, 3
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, shards, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	opts := []SearchOption{WithMaxCandidates(100), WithFilter(func(id int, _ uint64) bool { return id%5 != 0 })}
	results, err := sharded.SearchBatchWithStats(flat, k, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for qi, r := range results {
		if r.Err != nil {
			t.Fatalf("query %d: %v", qi, r.Err)
		}
		want, wantSt, err := sharded.SearchWithStats(ds.Query(qi), k, opts...)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r.Neighbors, want) {
			t.Fatalf("query %d: batch neighbors %v != sequential %v", qi, r.Neighbors, want)
		}
		// Slowest-shard attribution is wall-clock and differs run to
		// run; the work counters must match exactly.
		r.Stats.SlowestShard, r.Stats.SlowestShardTime = wantSt.SlowestShard, wantSt.SlowestShardTime
		if r.Stats != wantSt {
			t.Fatalf("query %d: batch stats %+v != sequential %+v", qi, r.Stats, wantSt)
		}
	}
}

// TestBatchSearchAllocs is the batch path's allocation gate, the batch
// counterpart of TestPublicSearchAllocs: a warmed batch allocates its
// result slices and per-batch bookkeeping but no per-query searcher
// scratch — the old implementation's per-worker sequence churn would
// cost tens of allocations per query and trips this immediately.
func TestBatchSearchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are nondeterministic under -race")
	}
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(43))
	if err != nil {
		t.Fatal(err)
	}
	flat := flatQueries(ds)
	nq := ds.NQ()
	// Warm the snapshot pool and batch-state pool.
	for i := 0; i < 3; i++ {
		if _, err := ix.SearchBatchWithStats(flat, 10, WithMaxCandidates(500)); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ix.SearchBatchWithStats(flat, 10, WithMaxCandidates(500)); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: ≤5 allocations per query on average covers the per-query
	// neighbor slice plus worker/goroutine overhead, with no room for
	// per-query scratch rebuilds.
	if budget := float64(5 * nq); allocs > budget {
		t.Fatalf("batch of %d queries allocated %.1f times (budget %.0f)", nq, allocs, budget)
	}
}

// TestBatchConcurrentLifecycleStress runs batched searches against a
// live index while a writer adds, deletes and seals concurrently —
// the -race stress of the batch engine's snapshot capture, pooled
// batch state and shared plan arena. Results are not checked against
// an oracle here (the corpus moves underneath); the invariants are no
// data race, no panic, and well-formed per-query results.
func TestBatchConcurrentLifecycleStress(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(44), WithMemtableSize(32), WithReranking(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	flat := flatQueries(ds)
	iters := 30
	if testing.Short() {
		iters = 8
	}
	var writer, searchers sync.WaitGroup
	stop := make(chan struct{})
	writer.Add(1)
	go func() { // writer: adds force seals; deletes leave tombstones
		defer writer.Done()
		id := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := ix.Add(ds.Vector(id % ds.N())); err != nil {
				t.Error(err)
				return
			}
			if id%3 == 0 {
				_ = ix.Delete(id % ds.N()) // ErrNotFound on repeats is fine
			}
			id++
		}
	}()
	for w := 0; w < 3; w++ {
		searchers.Add(1)
		go func(w int) {
			defer searchers.Done()
			for i := 0; i < iters; i++ {
				results, err := ix.SearchBatchWithStats(flat, 5, WithMaxCandidates(150))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				for qi, r := range results {
					if r.Err != nil {
						t.Errorf("worker %d query %d: %v", w, qi, r.Err)
						return
					}
					for j := 1; j < len(r.Neighbors); j++ {
						if r.Neighbors[j].Distance < r.Neighbors[j-1].Distance {
							t.Errorf("worker %d query %d: unsorted result", w, qi)
							return
						}
					}
				}
			}
		}(w)
	}
	// The writer runs until every searcher is done, then the index shuts
	// down cleanly (Close waits for background persists and merges).
	searchers.Wait()
	close(stop)
	writer.Wait()
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}
