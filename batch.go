package gqr

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"gqr/internal/query"
	"gqr/internal/trace"
)

// BatchQueryResult is one query's outcome inside a batch: its
// neighbors and work stats, or the error that failed this query alone.
// Structural problems that invalidate the whole batch (a block length
// that is not a multiple of dim, a non-positive k) are reported by the
// batch call itself, not per query.
type BatchQueryResult struct {
	Neighbors []Neighbor
	Stats     SearchStats
	Err       error
}

// batchState is the pooled whole-batch scratch of SearchBatchWithStats:
// the normalized query block (Angular metric), the amortized
// preprocessing plan and the cache-blocked processing order. One state
// serves one batch call at a time; pooling it makes a warmed batch
// allocate only its per-query result slices.
type batchState struct {
	norm  []float32
	plan  query.BatchPlan
	order []int
	dup   []int32
}

var batchPool = sync.Pool{New: func() any { return new(batchState) }}

// SearchBatch answers many queries as one unit of work: queries is an
// nq×dim row-major block, and the result slice has one neighbor list
// per query. The batch engine amortizes per-query preprocessing — one
// parallel matmul per hash table computes every query's projection, and
// re-ranked indexes build all ADC tables into one arena up front — then
// executes queries across GOMAXPROCS workers in a cache-blocked order
// (queries with nearby codes run together, so co-scheduled probes
// re-touch the same stretches of the data slab and PQ code column).
// Every worker searches the same read snapshot (captured once at the
// start of the batch), so a concurrent Add never affects a batch in
// flight — its vector appears in the snapshot the next call captures.
// Byte-identical queries inside a batch — the common case for server
// request coalescing, where a window collects concurrent requests for
// the same item — are searched once and their results copied.
// Per-query results are bit-identical to sequential Search calls. The
// first per-query error, if any, fails the call; use
// SearchBatchWithStats to get per-query errors and work stats instead.
func (ix *Index) SearchBatch(queries []float32, k int, opts ...SearchOption) ([][]Neighbor, error) {
	results, err := ix.SearchBatchWithStats(queries, k, opts...)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Neighbors
	}
	return out, nil
}

// SearchBatchWithStats is SearchBatch with per-query outcomes: each
// entry carries the query's neighbors, its §2.2 work stats, and an Err
// set only for that query's failure. The call-level error is reserved
// for structural problems that invalidate the whole batch (bad block
// length, non-positive k).
func (ix *Index) SearchBatchWithStats(queries []float32, k int, opts ...SearchOption) ([]BatchQueryResult, error) {
	dim := ix.live.Dim // immutable after Build
	if dim <= 0 || len(queries)%dim != 0 {
		return nil, fmt.Errorf("gqr: query block length %d not a multiple of dim %d", len(queries), dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("gqr: K must be positive, got %d", k)
	}
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	// One snapshot for the whole batch: every worker probes the same
	// consistent view, however many Adds land while the batch runs.
	snap, err := ix.currentSnapshot()
	if err != nil {
		return nil, err
	}
	nq := len(queries) / dim
	out := make([]BatchQueryResult, nq)
	if nq == 0 {
		return out, nil
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	if workers < 1 {
		workers = 1
	}

	bs := batchPool.Get().(*batchState)
	defer batchPool.Put(bs)

	// Metric preprocessing for the whole block at once: the same
	// normalizeRow every sequential Angular search applies, just hoisted
	// out of the per-query path so the planner sees final query vectors.
	qblock := queries
	if ix.metric == Angular {
		if cap(bs.norm) < nq*dim {
			bs.norm = make([]float32, nq*dim)
		}
		bs.norm = bs.norm[:nq*dim]
		copy(bs.norm, queries[:nq*dim])
		for i := 0; i < nq; i++ {
			normalizeRow(bs.norm[i*dim : (i+1)*dim])
		}
		qblock = bs.norm
	}

	// Amortized preprocessing: one parallel matmul per hash table plus
	// the shared ADC arena, then the cache-blocked processing order. The
	// StageBatch flight record attributes this shared work — it belongs
	// to no single query, so it gets its own record rather than being
	// charged (nq times over) to per-query preprocess spans.
	planStart := time.Now()
	query.PlanBatch(snap.view, qblock, nq, workers, &bs.plan)
	bs.order = bs.plan.Order(bs.order)
	// Duplicate suppression: coalesced batches routinely carry
	// byte-identical queries (concurrent requests for the same item are
	// what a coalescing window collects), and identical queries have
	// bit-identical results — so each distinct query runs once and its
	// duplicates copy the outcome after the workers drain.
	bs.dup = bs.plan.Duplicates(qblock, dim, bs.order, bs.dup)
	if ix.rec != nil {
		if btr := ix.rec.Begin("batch"); btr != nil {
			now := time.Now()
			btr.Record(trace.StageBatch, -1, planStart, now, trace.Work{Candidates: int32(nq)})
			btr.SetTotals(trace.Totals{K: k, Candidates: nq})
			ix.rec.Finish(btr, now.Sub(planStart))
		}
	}

	// Workers claim contiguous chunks of the code-sorted order: one
	// atomic add per chunk, and the queries inside a chunk probe
	// overlapping or adjacent buckets, which is the cache-blocking win.
	// Each worker checks out one pooled searcher for its whole lifetime
	// and reuses one Prepared view across its queries.
	const chunk = 8
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := snap.searcher()
			defer snap.release(s)
			var prep query.Prepared
			for {
				lo := int(cursor.Add(chunk)) - chunk
				if lo >= nq {
					return
				}
				hi := lo + chunk
				if hi > nq {
					hi = nq
				}
				for _, qi := range bs.order[lo:hi] {
					if bs.dup[qi] >= 0 {
						continue
					}
					ix.searchBatchOne(snap, s, bs.plan.Fill(qi, &prep), qblock[qi*dim:(qi+1)*dim], k, sc, &out[qi])
				}
			}
		}()
	}
	wg.Wait()
	// Duplicates copy their representative's outcome. Each copy gets its
	// own neighbor slice (callers own and may mutate their results); the
	// stats are the counters a sequential run of the same query would
	// have produced, because the engine is deterministic.
	for qi, rep := range bs.dup {
		if rep < 0 {
			continue
		}
		src := &out[rep]
		if src.Err != nil {
			out[qi].Err = src.Err
			continue
		}
		nbrs := make([]Neighbor, len(src.Neighbors))
		copy(nbrs, src.Neighbors)
		out[qi].Neighbors, out[qi].Stats = nbrs, src.Stats
	}
	return out, nil
}

// searchBatchOne runs one batch member through the searcher with its
// prepared inputs, filling res. Per-query tracing mirrors the
// sequential path: each batch query is its own flight record (the
// snapshot-acquire stage is absent — the snapshot was captured once for
// the whole batch, and projection work sits in the batch record).
func (ix *Index) searchBatchOne(snap *snapshot, s *query.Searcher, prep *query.Prepared, q []float32, k int, sc searchConfig, res *BatchQueryResult) {
	var tr *trace.Trace
	if ix.rec != nil {
		tr = ix.rec.Begin(ix.methodName)
	}
	tr.Mark(trace.StagePreprocess, -1)
	r, err := s.Search(q, query.Options{
		K:             k,
		MaxCandidates: sc.maxCandidates,
		MaxBuckets:    sc.maxBuckets,
		EarlyStop:     sc.earlyStop,
		Radius:        sc.radius,
		Mu:            snap.mu,
		Profile:       sc.profile,
		Trace:         tr,
		TagMask:       sc.tagMask,
		Filter:        filterOf(sc.filter),
		Prepared:      prep,
	})
	if err != nil {
		if tr != nil {
			ix.rec.Recycle(tr)
		}
		res.Err = err
		return
	}
	nbrs := make([]Neighbor, len(r.IDs))
	for i := range r.IDs {
		nbrs[i] = Neighbor{ID: int(r.IDs[i]), Distance: r.Dists[i]}
	}
	res.Neighbors, res.Stats = nbrs, statsOf(r.Stats)
	if tr != nil {
		tr.SetTotals(totalsOf(k, sc, res.Stats))
		ix.rec.Finish(tr, time.Since(tr.Begin))
	}
}
