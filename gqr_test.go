package gqr

import (
	"math"
	"sort"
	"sync"
	"testing"

	"gqr/internal/dataset"
)

// demoData builds a small corpus plus queries and exact ground truth.
func demoData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "api", N: 800, Dim: 16, Clusters: 6, LatentDim: 4, Seed: 7,
	})
	ds.SampleQueries(10, 8)
	ds.ComputeGroundTruth(10)
	return ds
}

func TestBuildDefaultsAndStats(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.Items != ds.N() || s.Dim != 16 || s.Tables != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Algorithm != ITQ || s.Method != GQR {
		t.Fatalf("defaults wrong: %+v", s)
	}
	// log2(790/10) ≈ 6.3 -> 6 bits.
	if s.CodeLength < 5 || s.CodeLength > 7 {
		t.Fatalf("code length = %d", s.CodeLength)
	}
	if len(s.Buckets) != 1 || s.Buckets[0] <= 1 {
		t.Fatalf("bucket stats = %v", s.Buckets)
	}
}

func TestUnboundedSearchIsExact(t *testing.T) {
	ds := demoData(t)
	for _, alg := range []Algorithm{ITQ, PCAH, SH, KMH, LSH, SSH} {
		for _, m := range []QueryMethod{GQR, QR, HR, GHR, MIH} {
			ix, err := Build(ds.Vectors, ds.Dim, WithAlgorithm(alg), WithQueryMethod(m), WithSeed(3))
			if err != nil {
				t.Fatalf("%s/%s: %v", alg, m, err)
			}
			for qi := 0; qi < 3; qi++ {
				nbrs, err := ix.Search(ds.Query(qi), 10)
				if err != nil {
					t.Fatal(err)
				}
				for i, id := range ds.GroundTruth[qi] {
					if nbrs[i].ID != int(id) {
						t.Fatalf("%s/%s query %d: got %v, want %v", alg, m, qi, nbrs, ds.GroundTruth[qi])
					}
				}
			}
		}
	}
}

func TestSearchBudgetTradesRecall(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	recallAt := func(budget int) float64 {
		total := 0.0
		for qi := 0; qi < ds.NQ(); qi++ {
			nbrs, err := ix.Search(ds.Query(qi), 10, WithMaxCandidates(budget))
			if err != nil {
				t.Fatal(err)
			}
			in := make(map[int]bool)
			for _, nb := range nbrs {
				in[nb.ID] = true
			}
			hit := 0
			for _, id := range ds.GroundTruth[qi] {
				if in[int(id)] {
					hit++
				}
			}
			total += float64(hit) / 10
		}
		return total / float64(ds.NQ())
	}
	low, high := recallAt(20), recallAt(ds.N())
	if high != 1 {
		t.Fatalf("full budget recall = %g", high)
	}
	if low > high {
		t.Fatalf("budget recall ordering broken: %g > %g", low, high)
	}
}

func TestEarlyStopSameResults(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if ix.muScale == 0 {
		t.Fatal("ITQ index must expose an early-stop scale")
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		plain, err := ix.Search(ds.Query(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		es, err := ix.Search(ds.Query(qi), 10, WithEarlyStop())
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) != len(es) {
			t.Fatal("early stop changed result count")
		}
		for i := range plain {
			if plain[i].ID != es[i].ID {
				t.Fatalf("early stop changed results: %v vs %v", plain, es)
			}
		}
	}
}

func TestDistancesAreExactEuclidean(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := ix.Search(ds.Query(0), 5)
	if err != nil {
		t.Fatal(err)
	}
	if !sort.SliceIsSorted(nbrs, func(i, j int) bool { return nbrs[i].Distance < nbrs[j].Distance }) {
		t.Fatal("neighbors not sorted by distance")
	}
	q := ds.Query(0)
	for _, nb := range nbrs {
		v := ds.Vector(nb.ID)
		var s float64
		for j := range q {
			d := float64(q[j]) - float64(v[j])
			s += d * d
		}
		if math.Abs(nb.Distance-math.Sqrt(s)) > 1e-9 {
			t.Fatalf("distance %g != exact %g", nb.Distance, math.Sqrt(s))
		}
	}
}

func TestConcurrentSearch(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				qi := (g + i) % ds.NQ()
				nbrs, err := ix.Search(ds.Query(qi), 5, WithMaxCandidates(100))
				if err != nil {
					errs <- err
					return
				}
				if len(nbrs) != 5 {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBuildValidation(t *testing.T) {
	ds := demoData(t)
	cases := []struct {
		name string
		err  bool
		opts []Option
		vecs []float32
		dim  int
	}{
		{"bad-alg", true, []Option{WithAlgorithm("nope")}, ds.Vectors, ds.Dim},
		{"bad-method", true, []Option{WithQueryMethod("nope")}, ds.Vectors, ds.Dim},
		{"bad-bits", true, []Option{WithCodeLength(99)}, ds.Vectors, ds.Dim},
		{"bad-tables", true, []Option{WithTables(0)}, ds.Vectors, ds.Dim},
		{"bad-dim", true, nil, ds.Vectors, 17},
		{"empty", true, nil, nil, 16},
		{"ok", false, []Option{WithCodeLength(8), WithTables(2)}, ds.Vectors, ds.Dim},
	}
	for _, c := range cases {
		_, err := Build(c.vecs, c.dim, c.opts...)
		if (err != nil) != c.err {
			t.Fatalf("%s: err = %v", c.name, err)
		}
	}
}

func TestWithExpectedBucketSize(t *testing.T) {
	ds := demoData(t)
	small, err := Build(ds.Vectors, ds.Dim, WithExpectedBucketSize(2))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(ds.Vectors, ds.Dim, WithExpectedBucketSize(100))
	if err != nil {
		t.Fatal(err)
	}
	if small.Stats().CodeLength <= big.Stats().CodeLength {
		t.Fatalf("EP=2 gave %d bits, EP=100 gave %d", small.Stats().CodeLength, big.Stats().CodeLength)
	}
}

func TestKMHOddCodeLengthRoundsUp(t *testing.T) {
	// 790 items / EP 5 -> log2(158) ≈ 7 bits, odd; KMH must round to 8.
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithAlgorithm(KMH), WithExpectedBucketSize(5))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().CodeLength%2 != 0 {
		t.Fatalf("KMH code length %d not even", ix.Stats().CodeLength)
	}
}

func TestSearchErrors(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Search(ds.Query(0), 0); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := ix.Search(ds.Query(0)[:4], 5); err == nil {
		t.Fatal("wrong dim must error")
	}
}
