package gqr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"gqr/internal/index"
)

// File layout: magic, query-method string, metric string, then the
// internal index section (hashers + buckets). Vectors are not stored —
// they are the caller's data and are re-attached at Load. The index
// section is self-versioned: Save emits the CSR-streaming GQRIDX2
// format (delta tails are merged in on the fly), and Load accepts both
// GQRIDX2 and the legacy GQRIDX1 per-bucket records, so files written
// by earlier releases keep loading.
var pubMagic = [8]byte{'G', 'Q', 'R', 'P', 'U', 'B', '1', 0}

// Save writes the trained index to w. The vector block is NOT written;
// keep it alongside (e.g. in an fvecs file) and pass it to Load. Save
// serializes with Add (it reads the live index), so a snapshot of the
// vectors present when Save is called is written; concurrent searches
// are unaffected.
func (ix *Index) Save(w io.Writer) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(pubMagic[:]); err != nil {
		return err
	}
	for _, s := range []string{ix.methodName, string(ix.metric)} {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := ix.live.Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the index to the named file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ix.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load restores an index saved with Save, re-attaching the vector
// block it was built from (same vectors, same order). For an Angular
// index pass the original (unnormalized) vectors — they are normalized
// again on load. Runtime-only options (WithTracing,
// WithSlowQueryThreshold, WithTraceBuffer) may be passed to equip the
// restored index; structural options (algorithm, method, metric, code
// length) come from the file and are ignored here.
func Load(r io.Reader, vectors []float32, dim int, opts ...Option) (*Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	if m != pubMagic {
		return nil, fmt.Errorf("gqr: load: bad magic %q", m[:])
	}
	readString := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 64 {
			return "", fmt.Errorf("gqr: load: implausible header string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	methodName, err := readString()
	if err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	metricName, err := readString()
	if err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	metric := Metric(metricName)
	switch metric {
	case Euclidean, Angular:
	default:
		return nil, fmt.Errorf("gqr: load: unknown metric %q", metricName)
	}
	if metric == Angular {
		if dim <= 0 || len(vectors)%dim != 0 {
			return nil, fmt.Errorf("gqr: load: vector block length %d not a multiple of dim %d", len(vectors), dim)
		}
		normalized := make([]float32, len(vectors))
		copy(normalized, vectors)
		for i := 0; i < len(vectors)/dim; i++ {
			normalizeRow(normalized[i*dim : (i+1)*dim])
		}
		vectors = normalized
	}
	inner, err := index.Load(br, vectors, dim)
	if err != nil {
		return nil, err
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out := &Index{live: inner, metric: metric, methodName: methodName, rec: recorderOf(cfg)}
	out.muScale = earlyStopScale(inner)
	if err := out.publishLocked(); err != nil {
		return nil, err
	}
	return out, nil
}

// LoadFile restores an index from the named file.
func LoadFile(path string, vectors []float32, dim int, opts ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, vectors, dim, opts...)
}
