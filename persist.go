package gqr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"gqr/internal/index"
)

// File layout: magic, query-method string, metric string, then the
// internal index section (hashers + buckets). Vectors are not stored —
// they are the caller's data and are re-attached at Load. The index
// section is self-versioned: Save emits the CSR-streaming GQRIDX2
// format (every frozen segment and the memtable are folded into one
// CSR tier per table on the fly), and Load accepts both GQRIDX2 and
// the legacy GQRIDX1 per-bucket records, so files written by earlier
// releases keep loading.
var pubMagic = [8]byte{'G', 'Q', 'R', 'P', 'U', 'B', '1', 0}

// Save writes the trained index to w. The vector block is NOT written;
// keep it alongside (e.g. in an fvecs file) and pass it to Load. Save
// serializes with Add (it reads the live index), so a snapshot of the
// vectors present when Save is called is written; concurrent searches
// are unaffected.
func (ix *Index) Save(w io.Writer) error {
	ix.writeMu.Lock()
	defer ix.writeMu.Unlock()
	return ix.saveLocked(w)
}

// saveLocked streams the index under an already-held writer lock (the
// durability layer reuses it for the base file).
func (ix *Index) saveLocked(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(pubMagic[:]); err != nil {
		return err
	}
	for _, s := range []string{ix.methodName, string(ix.metric)} {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
			return err
		}
		if _, err := bw.WriteString(s); err != nil {
			return err
		}
	}
	if err := ix.live.Save(bw); err != nil {
		return err
	}
	return bw.Flush()
}

// SaveFile writes the index to the named file atomically: the bytes go
// to a temp file in the target directory, are fsynced, and the temp is
// renamed over the target. A failure mid-write never leaves a
// truncated, unloadable file at path — the previous file (if any)
// survives intact.
func (ix *Index) SaveFile(path string) error {
	return atomicWriteFile(path, ix.Save)
}

// atomicWriteFile is the shared atomic-persistence helper (SaveFile,
// index base files, segment files): write writes the full contents to
// a temp file created in path's directory, which is then fsynced and
// renamed over path, and the directory is fsynced so the rename itself
// is durable. On any error the temp file is removed and path is left
// untouched.
func atomicWriteFile(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("gqr: atomic write %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("gqr: atomic write %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("gqr: atomic write %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("gqr: atomic write %s: %w", path, err)
	}
	// fsync the directory so the rename survives a crash too. Failure
	// here is reported, not ignored: the caller may be about to delete
	// the WAL this file replaces.
	if d, derr := os.Open(dir); derr == nil {
		serr := d.Sync()
		d.Close()
		if serr != nil {
			return fmt.Errorf("gqr: atomic write %s: dir sync: %w", path, serr)
		}
	}
	return nil
}

// Load restores an index saved with Save, re-attaching the vector
// block it was built from (same vectors, same order). For an Angular
// index pass the original (unnormalized) vectors — they are normalized
// again on load. Runtime-only options (WithTracing,
// WithSlowQueryThreshold, WithTraceBuffer, WithMemtableSize) may be
// passed to equip the restored index; structural options (algorithm,
// method, metric, code length) come from the file and are ignored
// here.
func Load(r io.Reader, vectors []float32, dim int, opts ...Option) (*Index, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	out, err := loadUnpublished(r, vectors, dim, cfg)
	if err != nil {
		return nil, err
	}
	if err := out.publishLocked(); err != nil {
		return nil, err
	}
	return out, nil
}

// loadUnpublished restores an index without publishing a read snapshot
// (Recover appends segments and replays the WAL first).
func loadUnpublished(r io.Reader, vectors []float32, dim int, cfg config) (*Index, error) {
	// The vector block must be a whole number of dim-sized rows for
	// either metric; catching it here (rather than deep in the index
	// loader, or not at all on some paths) gives a uniform, clear error
	// instead of garbage distances at query time.
	if dim <= 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("gqr: load: vector block length %d not a multiple of dim %d", len(vectors), dim)
	}
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	if m != pubMagic {
		return nil, fmt.Errorf("gqr: load: bad magic %q", m[:])
	}
	readString := func() (string, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return "", err
		}
		if n > 64 {
			return "", fmt.Errorf("gqr: load: implausible header string length %d", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return "", err
		}
		return string(b), nil
	}
	methodName, err := readString()
	if err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	metricName, err := readString()
	if err != nil {
		return nil, fmt.Errorf("gqr: load: %w", err)
	}
	metric := Metric(metricName)
	switch metric {
	case Euclidean, Angular:
	default:
		return nil, fmt.Errorf("gqr: load: unknown metric %q", metricName)
	}
	if metric == Angular {
		normalized := make([]float32, len(vectors))
		copy(normalized, vectors)
		for i := 0; i < len(vectors)/dim; i++ {
			normalizeRow(normalized[i*dim : (i+1)*dim])
		}
		vectors = normalized
	}
	inner, err := index.Load(br, vectors, dim)
	if err != nil {
		return nil, err
	}
	out := &Index{live: inner, metric: metric, methodName: methodName, rec: recorderOf(cfg), sealEvery: cfg.memtable}
	out.muScale = earlyStopScale(inner)
	return out, nil
}

// LoadFile restores an index from the named file.
func LoadFile(path string, vectors []float32, dim int, opts ...Option) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, vectors, dim, opts...)
}
