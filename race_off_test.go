//go:build !race

package gqr

// raceEnabled reports whether the race detector is compiled in; alloc
// gates skip under -race because the race runtime randomly drops
// sync.Pool puts, making AllocsPerRun nondeterministic.
const raceEnabled = false
