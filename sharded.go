package gqr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"gqr/internal/trace"
)

// ShardedIndex partitions a dataset across several independent indexes
// and fans every query out to all of them, merging the per-shard
// results — a single-process model of the distributed deployment the
// paper names as future work ("extend GQR to the distributed setting").
// Shards train their own hash functions, so each adapts to its
// partition's distribution, and shard searches run concurrently.
type ShardedIndex struct {
	shards []*Index
	// base[i] is the global id of shard i's first vector (contiguous
	// round-robin-free partitioning keeps id mapping O(1)).
	base []int
	dim  int

	methodName string
	// rec is the flight recorder for the whole fan-out; shards carry no
	// recorders of their own (BuildSharded strips tracing options from
	// shard builds), so a traced query yields one trace with per-shard
	// legs rather than uncorrelated per-shard traces.
	rec *trace.Recorder
}

// BuildSharded splits the n×dim block into the given number of
// contiguous shards and builds one index per shard with the same
// options. Shard training runs sequentially (training dominates memory);
// searching fans out concurrently. Tracing options apply to the sharded
// index as a whole: one recorder observes fan-out queries, and each
// captured trace carries per-shard spans attributing latency to the
// slow shard.
func BuildSharded(vectors []float32, dim, shards int, opts ...Option) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gqr: shard count %d < 1", shards)
	}
	if dim <= 0 || len(vectors) == 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("gqr: vector block length %d not a positive multiple of dim %d", len(vectors), dim)
	}
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := len(vectors) / dim
	// Every learner needs at least two training points per shard.
	// Refusing beats silently building fewer shards than requested: a
	// caller sizing fan-out or capacity by shard count must be able to
	// rely on Shards() == the count it asked for.
	if n < 2*shards {
		return nil, fmt.Errorf("gqr: %d vectors cannot fill %d shards (need at least 2 vectors per shard)", n, shards)
	}
	s := &ShardedIndex{dim: dim, methodName: string(cfg.method), rec: recorderOf(cfg)}
	shardOpts := append(append([]Option{}, opts...), withoutTracing())
	start := 0
	for i := 0; i < shards; i++ {
		count := n / shards
		if i < n%shards {
			count++
		}
		block := vectors[start*dim : (start+count)*dim]
		ix, err := Build(block, dim, shardOpts...)
		if err != nil {
			return nil, fmt.Errorf("gqr: building shard %d: %w", i, err)
		}
		s.shards = append(s.shards, ix)
		s.base = append(s.base, start)
		start += count
	}
	return s, nil
}

// Shards returns the number of shards — always exactly the count
// requested at build time: BuildSharded fails when the corpus cannot
// fill that many shards (fewer than two vectors each) instead of
// silently clamping the count.
func (s *ShardedIndex) Shards() int { return len(s.shards) }

// TraceRecorder returns the sharded index's flight recorder, or nil
// when tracing was not enabled at construction.
func (s *ShardedIndex) TraceRecorder() *trace.Recorder { return s.rec }

// Delete routes a tombstone to the shard owning the global id: the
// owner records it (WAL-first when that shard is durable) and the item
// stops appearing in fan-out results from the next snapshot on.
// Deleting an unknown or already-deleted id returns ErrNotFound.
func (s *ShardedIndex) Delete(globalID int) error {
	if globalID < 0 {
		return fmt.Errorf("gqr: delete id %d: %w", globalID, ErrNotFound)
	}
	// base is ascending; the owner is the last shard starting at or
	// below the id. Ids past the owner's range fail its own bound check.
	i := sort.Search(len(s.base), func(j int) bool { return s.base[j] > globalID }) - 1
	return s.shards[i].Delete(globalID - s.base[i])
}

// Search fans the query out to every shard concurrently and merges the
// per-shard top-k into a global top-k (ascending distance, ids are
// global row indexes of the build block). Search options apply per
// shard; a MaxCandidates budget is therefore a per-shard budget.
func (s *ShardedIndex) Search(q []float32, k int, opts ...SearchOption) ([]Neighbor, error) {
	nbrs, _, err := s.SearchWithStats(q, k, opts...)
	return nbrs, err
}

// SearchWithStats is Search plus merged work stats: the §2.2 counters
// are summed over shards (the total work the query cost the process),
// EarlyStopped reports whether any shard's QD rule fired, and with
// WithProfile the retrieval/evaluation times are summed across shards
// (total CPU time, not wall-clock — shards probe concurrently). The
// merged stats always attribute fan-out latency: ShardCount,
// SlowestShard and SlowestShardTime report the critical path of the
// fan-out (shard wall times are measured on every query, traced or
// not). Shard searches are snapshot-based and lock-free, so the
// fan-out genuinely runs in parallel. When shards fail, every failure
// is reported: the returned error joins all shard errors (errors.Join),
// each tagged with its shard id.
func (s *ShardedIndex) SearchWithStats(q []float32, k int, opts ...SearchOption) ([]Neighbor, SearchStats, error) {
	nbrs, st, _, err := s.searchFanout(q, k, opts)
	return nbrs, st, err
}

// ShardSearchStats is one shard's leg of a fan-out query: its wall
// time, its §2.2 work stats, and its failure (empty when the shard
// succeeded).
type ShardSearchStats struct {
	Shard    int           `json:"shard"`
	Duration time.Duration `json:"durationNs"`
	Stats    SearchStats   `json:"stats"`
	Err      string        `json:"err,omitempty"`
}

// SearchWithShardStats is SearchWithStats plus the full per-shard
// breakdown: one entry per shard with that leg's wall time and work
// counters. The breakdown is returned even when the call fails, so a
// partial fan-out failure still shows which shards answered and how
// long each took.
func (s *ShardedIndex) SearchWithShardStats(q []float32, k int, opts ...SearchOption) ([]Neighbor, SearchStats, []ShardSearchStats, error) {
	nbrs, st, outs, err := s.searchFanout(q, k, opts)
	per := make([]ShardSearchStats, len(outs))
	for i := range outs {
		per[i] = ShardSearchStats{Shard: i, Duration: outs[i].dur, Stats: outs[i].st}
		if outs[i].err != nil {
			per[i].Err = outs[i].err.Error()
		}
	}
	return nbrs, st, per, err
}

// shardOutcome is one shard's leg of a fan-out: results, stats, wall
// time and error, plus the shard's child trace while it awaits merging.
type shardOutcome struct {
	nbrs []Neighbor
	st   SearchStats
	dur  time.Duration
	err  error
	tr   *trace.Trace
}

// searchFanout runs the fan-out: begin a trace if the recorder asks for
// one, search every shard concurrently (each leg individually timed and,
// when tracing, recorded into a child trace), merge child traces into
// the parent, then merge results and attribute the slowest leg.
func (s *ShardedIndex) searchFanout(q []float32, k int, opts []SearchOption) ([]Neighbor, SearchStats, []shardOutcome, error) {
	if len(q) != s.dim {
		return nil, SearchStats{}, nil, fmt.Errorf("gqr: query dim %d != index dim %d", len(q), s.dim)
	}
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	var tr *trace.Trace
	if s.rec != nil {
		tr = s.rec.Begin(s.methodName)
	}
	outs := make([]shardOutcome, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := &outs[i]
			var child *trace.Trace
			if tr != nil {
				child = s.rec.Child(s.methodName)
			}
			// Shards see local ids; a caller filter sees global ones, so
			// the shard's leg gets a translating wrapper.
			sci := sc
			if sc.filter != nil {
				base, f := s.base[i], sc.filter
				sci.filter = func(id int, meta uint64) bool { return f(id+base, meta) }
			}
			start := time.Now()
			nbrs, st, err := s.shards[i].searchTraced(q, k, sci, child)
			o.dur = time.Since(start)
			o.tr = child
			if err != nil {
				o.err = fmt.Errorf("gqr: shard %d: %w", i, err)
				return
			}
			for j := range nbrs {
				nbrs[j].ID += s.base[i]
			}
			o.nbrs, o.st = nbrs, st
		}(i)
	}
	wg.Wait()
	if tr != nil {
		for i := range outs {
			outs[i].tr.SetTotals(totalsOf(k, sc, outs[i].st))
			tr.MergeChild(outs[i].tr, int32(i), outs[i].dur)
			s.rec.Recycle(outs[i].tr)
			outs[i].tr = nil
		}
	}
	var errs []error
	for i := range outs {
		if outs[i].err != nil {
			errs = append(errs, outs[i].err)
		}
	}
	if err := errors.Join(errs...); err != nil {
		if tr != nil {
			s.rec.Recycle(tr)
		}
		return nil, SearchStats{}, outs, err
	}
	var merged []Neighbor
	var total SearchStats
	for i := range outs {
		merged = append(merged, outs[i].nbrs...)
		total.merge(outs[i].st)
		if outs[i].dur > total.SlowestShardTime {
			total.SlowestShard = i
			total.SlowestShardTime = outs[i].dur
		}
	}
	total.ShardCount = len(s.shards)
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Distance != merged[b].Distance {
			return merged[a].Distance < merged[b].Distance
		}
		return merged[a].ID < merged[b].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	if tr != nil {
		tr.SetTotals(totalsOf(k, sc, total))
		s.rec.Finish(tr, time.Since(tr.Begin))
	}
	return merged, total, outs, nil
}

// SearchBatch fans a whole query batch out to every shard and merges
// per query: each shard runs its own batched engine (amortized
// projections, shared ADC arena, cache-blocked execution) over the full
// block concurrently with the other shards. The first per-query error,
// if any, fails the call; shard-level failures fail it too.
func (s *ShardedIndex) SearchBatch(queries []float32, k int, opts ...SearchOption) ([][]Neighbor, error) {
	results, err := s.SearchBatchWithStats(queries, k, opts...)
	if err != nil {
		return nil, err
	}
	out := make([][]Neighbor, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		out[i] = r.Neighbors
	}
	return out, nil
}

// SearchBatchWithStats is SearchBatch with per-query outcomes, merged
// exactly like the single-query fan-out: per query, shard results are
// combined by ascending (distance, global id) and truncated to k, work
// stats are summed across shards, and ShardCount is set. A query's Err
// is set when any shard failed it. The call-level error is reserved for
// structural problems (bad block length, non-positive k) and joined
// shard-level failures.
func (s *ShardedIndex) SearchBatchWithStats(queries []float32, k int, opts ...SearchOption) ([]BatchQueryResult, error) {
	if s.dim <= 0 || len(queries)%s.dim != 0 {
		return nil, fmt.Errorf("gqr: query block length %d not a multiple of dim %d", len(queries), s.dim)
	}
	if k <= 0 {
		return nil, fmt.Errorf("gqr: K must be positive, got %d", k)
	}
	var sc searchConfig
	for _, o := range opts {
		o(&sc)
	}
	nq := len(queries) / s.dim
	perShard := make([][]BatchQueryResult, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Shards see local ids; a caller filter sees global ones.
			sci := sc
			if sc.filter != nil {
				base, f := s.base[i], sc.filter
				sci.filter = func(id int, meta uint64) bool { return f(id+base, meta) }
			}
			res, err := s.shards[i].SearchBatchWithStats(queries, k, withConfig(sci))
			if err != nil {
				errs[i] = fmt.Errorf("gqr: shard %d: %w", i, err)
				return
			}
			perShard[i] = res
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	out := make([]BatchQueryResult, nq)
	for qi := range out {
		var merged []Neighbor
		var total SearchStats
		var qerrs []error
		for i := range perShard {
			r := perShard[i][qi]
			if r.Err != nil {
				qerrs = append(qerrs, fmt.Errorf("gqr: shard %d: %w", i, r.Err))
				continue
			}
			for _, n := range r.Neighbors {
				n.ID += s.base[i]
				merged = append(merged, n)
			}
			total.merge(r.Stats)
		}
		if err := errors.Join(qerrs...); err != nil {
			out[qi].Err = err
			continue
		}
		total.ShardCount = len(s.shards)
		sort.Slice(merged, func(a, b int) bool {
			if merged[a].Distance != merged[b].Distance {
				return merged[a].Distance < merged[b].Distance
			}
			return merged[a].ID < merged[b].ID
		})
		if len(merged) > k {
			merged = merged[:k]
		}
		out[qi] = BatchQueryResult{Neighbors: merged, Stats: total}
	}
	return out, nil
}

// Stats returns the per-shard statistics.
func (s *ShardedIndex) Stats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, ix := range s.shards {
		out[i] = ix.Stats()
	}
	return out
}
