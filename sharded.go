package gqr

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ShardedIndex partitions a dataset across several independent indexes
// and fans every query out to all of them, merging the per-shard
// results — a single-process model of the distributed deployment the
// paper names as future work ("extend GQR to the distributed setting").
// Shards train their own hash functions, so each adapts to its
// partition's distribution, and shard searches run concurrently.
type ShardedIndex struct {
	shards []*Index
	// base[i] is the global id of shard i's first vector (contiguous
	// round-robin-free partitioning keeps id mapping O(1)).
	base []int
	dim  int
}

// BuildSharded splits the n×dim block into the given number of
// contiguous shards and builds one index per shard with the same
// options. Shard training runs sequentially (training dominates memory);
// searching fans out concurrently.
func BuildSharded(vectors []float32, dim, shards int, opts ...Option) (*ShardedIndex, error) {
	if shards < 1 {
		return nil, fmt.Errorf("gqr: shard count %d < 1", shards)
	}
	if dim <= 0 || len(vectors) == 0 || len(vectors)%dim != 0 {
		return nil, fmt.Errorf("gqr: vector block length %d not a positive multiple of dim %d", len(vectors), dim)
	}
	n := len(vectors) / dim
	// Every learner needs at least two training points per shard.
	if shards > n/2 {
		shards = n / 2
	}
	if shards < 1 {
		shards = 1
	}
	s := &ShardedIndex{dim: dim}
	start := 0
	for i := 0; i < shards; i++ {
		count := n / shards
		if i < n%shards {
			count++
		}
		block := vectors[start*dim : (start+count)*dim]
		ix, err := Build(block, dim, opts...)
		if err != nil {
			return nil, fmt.Errorf("gqr: building shard %d: %w", i, err)
		}
		s.shards = append(s.shards, ix)
		s.base = append(s.base, start)
		start += count
	}
	return s, nil
}

// Shards returns the number of shards.
func (s *ShardedIndex) Shards() int { return len(s.shards) }

// Search fans the query out to every shard concurrently and merges the
// per-shard top-k into a global top-k (ascending distance, ids are
// global row indexes of the build block). Search options apply per
// shard; a MaxCandidates budget is therefore a per-shard budget.
func (s *ShardedIndex) Search(q []float32, k int, opts ...SearchOption) ([]Neighbor, error) {
	nbrs, _, err := s.SearchWithStats(q, k, opts...)
	return nbrs, err
}

// SearchWithStats is Search plus merged work stats: the §2.2 counters
// are summed over shards (the total work the query cost the process),
// EarlyStopped reports whether any shard's QD rule fired, and with
// WithProfile the retrieval/evaluation times are summed across shards
// (total CPU time, not wall-clock — shards probe concurrently). Shard
// searches are snapshot-based and lock-free, so the fan-out genuinely
// runs in parallel. When shards fail, every failure is reported: the
// returned error joins all shard errors (errors.Join), each tagged
// with its shard id.
func (s *ShardedIndex) SearchWithStats(q []float32, k int, opts ...SearchOption) ([]Neighbor, SearchStats, error) {
	if len(q) != s.dim {
		return nil, SearchStats{}, fmt.Errorf("gqr: query dim %d != index dim %d", len(q), s.dim)
	}
	results := make([][]Neighbor, len(s.shards))
	stats := make([]SearchStats, len(s.shards))
	errs := make([]error, len(s.shards))
	var wg sync.WaitGroup
	for i := range s.shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			nbrs, st, err := s.shards[i].SearchWithStats(q, k, opts...)
			if err != nil {
				errs[i] = fmt.Errorf("gqr: shard %d: %w", i, err)
				return
			}
			for j := range nbrs {
				nbrs[j].ID += s.base[i]
			}
			results[i] = nbrs
			stats[i] = st
		}(i)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, SearchStats{}, err
	}
	var merged []Neighbor
	var total SearchStats
	for i, r := range results {
		merged = append(merged, r...)
		total.merge(stats[i])
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Distance != merged[b].Distance {
			return merged[a].Distance < merged[b].Distance
		}
		return merged[a].ID < merged[b].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged, total, nil
}

// Stats returns the per-shard statistics.
func (s *ShardedIndex) Stats() []Stats {
	out := make([]Stats, len(s.shards))
	for i, ix := range s.shards {
		out[i] = ix.Stats()
	}
	return out
}
