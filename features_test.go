package gqr

import (
	"fmt"
	"math"
	"os"
	"testing"

	"gqr/internal/dataset"
)

func TestRadiusSearchExactUnderEarlyStop(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		// Radius chosen between the 3rd and 4th true neighbor, so the
		// radius query must return exactly the first 3.
		d3 := exactDist(ds, qi, ds.GroundTruth[qi][2])
		d4 := exactDist(ds, qi, ds.GroundTruth[qi][3])
		if d4 <= d3 {
			continue // tie; skip this query
		}
		radius := (d3 + d4) / 2
		nbrs, err := ix.Search(q, 10, WithRadius(radius))
		if err != nil {
			t.Fatal(err)
		}
		if len(nbrs) != 3 {
			t.Fatalf("query %d: radius search returned %d items, want 3", qi, len(nbrs))
		}
		for i := 0; i < 3; i++ {
			if nbrs[i].ID != int(ds.GroundTruth[qi][i]) {
				t.Fatalf("query %d: radius result %v != truth prefix", qi, nbrs)
			}
			if nbrs[i].Distance > radius {
				t.Fatalf("query %d: returned item beyond radius", qi)
			}
		}
	}
}

func TestRadiusSearchPrunesWork(t *testing.T) {
	// With a tight radius, the QD threshold rule must probe far fewer
	// buckets than a full scan (this is the §4.1 efficiency claim).
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(22))
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Query(0)
	d1 := exactDist(ds, 0, ds.GroundTruth[0][0])
	// A radius search must return without a candidate budget and find
	// the nearest item.
	nbrs, err := ix.Search(q, 5, WithRadius(d1*1.01))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) == 0 || nbrs[0].ID != int(ds.GroundTruth[0][0]) {
		t.Fatalf("radius search missed the nearest neighbor: %v", nbrs)
	}
}

func exactDist(ds *dataset.Dataset, qi int, id int32) float64 {
	q := ds.Query(qi)
	v := ds.Vector(int(id))
	var s float64
	for j := range q {
		d := float64(q[j]) - float64(v[j])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestAngularMetricMatchesBruteForceCosine(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithMetric(Angular), WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Metric != Angular {
		t.Fatal("metric not recorded in stats")
	}
	for qi := 0; qi < 5; qi++ {
		q := ds.Query(qi)
		nbrs, err := ix.Search(q, 5) // unbudgeted: exact under the metric
		if err != nil {
			t.Fatal(err)
		}
		// Brute-force cosine ranking.
		type pair struct {
			id  int
			cos float64
		}
		best := pair{-1, math.Inf(-1)}
		qn := norm32(q)
		for i := 0; i < ds.N(); i++ {
			v := ds.Vector(i)
			cos := dot32(q, v) / (qn*norm32(v) + 1e-30)
			if cos > best.cos {
				best = pair{i, cos}
			}
		}
		if nbrs[0].ID != best.id {
			t.Fatalf("query %d: angular top-1 %d != cosine argmax %d", qi, nbrs[0].ID, best.id)
		}
		// Chordal distance ↔ cosine identity: cos = 1 − d²/2.
		wantCos := 1 - nbrs[0].Distance*nbrs[0].Distance/2
		if math.Abs(wantCos-best.cos) > 1e-5 {
			t.Fatalf("chordal identity violated: %g vs %g", wantCos, best.cos)
		}
	}
}

func TestAngularDoesNotMutateCallerBlock(t *testing.T) {
	ds := demoData(t)
	orig := make([]float32, len(ds.Vectors))
	copy(orig, ds.Vectors)
	if _, err := Build(ds.Vectors, ds.Dim, WithMetric(Angular)); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if ds.Vectors[i] != orig[i] {
			t.Fatal("Build with Angular metric mutated the caller's block")
		}
	}
}

func dot32(a, b []float32) float64 {
	var s float64
	for i := range a {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

func norm32(a []float32) float64 {
	return math.Sqrt(dot32(a, a))
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(24))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := ix.SearchBatch(ds.Queries, 5, WithMaxCandidates(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != ds.NQ() {
		t.Fatalf("batch returned %d result lists", len(batch))
	}
	for qi := 0; qi < ds.NQ(); qi++ {
		seq, err := ix.Search(ds.Query(qi), 5, WithMaxCandidates(200))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) != len(batch[qi]) {
			t.Fatalf("query %d: batch %d results vs sequential %d", qi, len(batch[qi]), len(seq))
		}
		for i := range seq {
			if seq[i].ID != batch[qi][i].ID {
				t.Fatalf("query %d: batch diverges from sequential", qi)
			}
		}
	}
}

func TestSearchBatchValidation(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.SearchBatch(ds.Queries[:5], 5); err == nil {
		t.Fatal("ragged query block must be rejected")
	}
	out, err := ix.SearchBatch(nil, 5)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestBuildRejectsBadMetric(t *testing.T) {
	ds := demoData(t)
	if _, err := Build(ds.Vectors, ds.Dim, WithMetric("hamming")); err == nil {
		t.Fatal("unknown metric must be rejected")
	}
}

func TestPublicSaveLoadRoundTrip(t *testing.T) {
	ds := demoData(t)
	for _, metric := range []Metric{Euclidean, Angular} {
		ix, err := Build(ds.Vectors, ds.Dim, WithMetric(metric), WithSeed(31))
		if err != nil {
			t.Fatal(err)
		}
		path := t.TempDir() + "/index.gqr"
		if err := ix.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		ix2, err := LoadFile(path, ds.Vectors, ds.Dim)
		if err != nil {
			t.Fatal(err)
		}
		s1, s2 := ix.Stats(), ix2.Stats()
		if s1.CodeLength != s2.CodeLength || s1.Metric != s2.Metric || s1.Method != s2.Method {
			t.Fatalf("%s: stats changed: %+v vs %+v", metric, s1, s2)
		}
		for qi := 0; qi < 5; qi++ {
			a, err := ix.Search(ds.Query(qi), 5, WithMaxCandidates(100))
			if err != nil {
				t.Fatal(err)
			}
			b, err := ix2.Search(ds.Query(qi), 5, WithMaxCandidates(100))
			if err != nil {
				t.Fatal(err)
			}
			if len(a) != len(b) {
				t.Fatalf("%s: result counts differ after reload", metric)
			}
			for i := range a {
				if a[i].ID != b[i].ID || a[i].Distance != b[i].Distance {
					t.Fatalf("%s: results differ after reload: %v vs %v", metric, a, b)
				}
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	ds := demoData(t)
	if _, err := LoadFile("/nonexistent/x.gqr", ds.Vectors, ds.Dim); err == nil {
		t.Fatal("missing file must error")
	}
	path := t.TempDir() + "/garbage"
	if err := writeFileHelper(path, []byte("this is not an index")); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path, ds.Vectors, ds.Dim); err == nil {
		t.Fatal("garbage file must be rejected")
	}
}

func writeFileHelper(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func TestAddThenSearchFindsNewItems(t *testing.T) {
	ds := demoData(t)
	for _, m := range []QueryMethod{GQR, HR, MIH} {
		ix, err := Build(ds.Vectors, ds.Dim, WithQueryMethod(m), WithSeed(51))
		if err != nil {
			t.Fatal(err)
		}
		before := ix.Stats().Items
		// Add an exact copy of query 0: it must become the top result.
		id, err := ix.Add(ds.Query(0))
		if err != nil {
			t.Fatal(err)
		}
		if id != before {
			t.Fatalf("%s: new id %d, want %d", m, id, before)
		}
		nbrs, err := ix.Search(ds.Query(0), 3)
		if err != nil {
			t.Fatal(err)
		}
		if nbrs[0].ID != id || nbrs[0].Distance != 0 {
			t.Fatalf("%s: added item not found first: %v", m, nbrs)
		}
		if ix.Stats().Items != before+1 {
			t.Fatalf("%s: stats not updated after Add", m)
		}
	}
}

func TestAddManyKeepsExactness(t *testing.T) {
	ds := demoData(t)
	half := ds.N() / 2
	ix, err := Build(ds.Vectors[:half*ds.Dim], ds.Dim, WithSeed(52))
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < ds.N(); i++ {
		if _, err := ix.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Unbudgeted search over the grown index must equal brute force.
	for qi := 0; qi < 5; qi++ {
		nbrs, err := ix.Search(ds.Query(qi), 10)
		if err != nil {
			t.Fatal(err)
		}
		for i, id := range ds.GroundTruth[qi] {
			if nbrs[i].ID != int(id) {
				t.Fatalf("query %d: grown index missed ground truth: %v vs %v", qi, nbrs, ds.GroundTruth[qi])
			}
		}
	}
}

func TestAddAngularNormalizes(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithMetric(Angular), WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	// A scaled copy of query 0 must match the unscaled query exactly
	// under the angular metric.
	scaled := make([]float32, ds.Dim)
	for j, v := range ds.Query(0) {
		scaled[j] = v * 7
	}
	id, err := ix.Add(scaled)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := ix.Search(ds.Query(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].ID != id || nbrs[0].Distance > 1e-4 {
		t.Fatalf("angular Add broken: %v want id %d at ~0", nbrs, id)
	}
}

func TestWithMaxBucketsOption(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(61))
	if err != nil {
		t.Fatal(err)
	}
	// With a 1-bucket budget only the query's own bucket is probed.
	nbrs, err := ix.Search(ds.Query(0), 10, WithMaxBuckets(1))
	if err != nil {
		t.Fatal(err)
	}
	all, err := ix.Search(ds.Query(0), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) > len(all) {
		t.Fatal("bucket budget increased results")
	}
}

func TestSaveToFailingWriter(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(62))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Save(failWriter{}); err == nil {
		t.Fatal("Save to failing writer must error")
	}
	if err := ix.SaveFile("/nonexistent-dir/x.gqr"); err == nil {
		t.Fatal("SaveFile to bad path must error")
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errBoom }

var errBoom = fmt.Errorf("boom")

func TestLoadWrongVectorsRejected(t *testing.T) {
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(63))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/i.gqr"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Wrong dim and wrong count must both fail.
	if _, err := LoadFile(path, ds.Vectors, ds.Dim+1); err == nil {
		t.Fatal("wrong dim accepted")
	}
	if _, err := LoadFile(path, ds.Vectors[:ds.Dim*10], ds.Dim); err == nil {
		t.Fatal("short block accepted")
	}
}

func TestAddThenSaveLoadRoundTrip(t *testing.T) {
	// Dynamic inserts must survive persistence.
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(71))
	if err != nil {
		t.Fatal(err)
	}
	added, err := ix.Add(ds.Query(0))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/grown.gqr"
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// The reloaded index needs the grown vector block.
	grown := append(append([]float32{}, ds.Vectors...), ds.Query(0)...)
	ix2, err := LoadFile(path, grown, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := ix2.Search(ds.Query(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if nbrs[0].ID != added || nbrs[0].Distance != 0 {
		t.Fatalf("added item lost across save/load: %v", nbrs)
	}
}

func TestCombinedBudgets(t *testing.T) {
	// Both budgets set: whichever trips first stops the search.
	ds := demoData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	a, err := ix.Search(ds.Query(0), 5, WithMaxCandidates(10000), WithMaxBuckets(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.Search(ds.Query(0), 5, WithMaxCandidates(10000))
	if err != nil {
		t.Fatal(err)
	}
	if len(a) > len(b) {
		t.Fatal("bucket cap produced more results than uncapped")
	}
}
