package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"gqr"
	"gqr/internal/bench"
	"gqr/internal/dataset"
)

// batchRow is one (configuration, batch size) measurement in the
// batched-execution sweep.
type batchRow struct {
	Label  string `json:"label"`
	Dim    int    `json:"dim"`
	Budget int    `json:"budget"`
	// Batch 0 is the sequential reference row (a plain Search loop);
	// batch n ≥ 1 runs the workload through SearchBatch n queries at a
	// time.
	Batch int `json:"batch"`
	// QPS is queries per second over the row's best timing cycle;
	// USPerQ is its inverse in microseconds.
	QPS    float64 `json:"qps"`
	USPerQ float64 `json:"usPerQuery"`
	// P99us is the 99th-percentile per-query latency in microseconds. A
	// batched query's latency is its whole call's latency — results
	// only arrive when the batch completes — so large batches trade
	// tail latency for throughput and this column prices that trade.
	P99us float64 `json:"p99us"`
	// Speedup is QPS relative to the same configuration's batch=1 row
	// (the plain sequential Search loop).
	Speedup float64 `json:"speedupVsBatch1,omitempty"`
}

// batchReport is the JSON document `gqr-bench -batch` emits.
type batchReport struct {
	Meta   bench.RunMeta `json:"meta"`
	N      int           `json:"n"`
	NQ     int           `json:"nq"`
	K      int           `json:"k"`
	Budget int           `json:"budget"`
	Rows   []batchRow    `json:"rows"`
}

// runBatchSweep measures SearchBatch throughput against the sequential
// baseline: every querying method at d=128 (where the per-query
// projection matmul the batch engine amortizes is largest), the
// coalesced-duplicates workload, and GQR at d=32, each at batch sizes
// 1, 8, 64 and 256 through the batch API. Every configuration also
// times a batch-0 row — a plain sequential Search loop, the number a
// caller gets without the batch API — so the report separates the
// API's fixed cost (batch 1 vs 0) from its scaling (batch n vs 1).
//
// Timing uses the same discipline as the re-ranking sweep: all rows
// are timed back-to-back in round-robin cycles so they share the
// host's conditions, and each row keeps its best cycle. Per-call
// latencies from the best cycle give the p99 column (every query in a
// call observes the call's full latency).
func runBatchSweep(path string, nq, k int, seed int64, buildProcs int) error {
	const n, budget = 20000, 1000
	batchSizes := []int{0, 1, 8, 64, 256}
	// The largest batch size must be reachable, or its row would
	// silently degenerate into the one below it.
	if nq < batchSizes[len(batchSizes)-1] {
		nq = batchSizes[len(batchSizes)-1]
	}

	type sweepCase struct {
		label  string
		dim    int
		n      int
		budget int
		method gqr.QueryMethod
		// distinct > 0 tiles that many distinct queries to fill the
		// block (the coalesced-duplicates workload); 0 uses nq distinct.
		distinct int
		ds       *dataset.Dataset
		queries  []float32 // flat nq×dim block
		ix       *gqr.Index
	}
	var cases []*sweepCase
	for _, m := range []gqr.QueryMethod{gqr.GQR, gqr.QR, gqr.HR, gqr.GHR, gqr.MIH} {
		cases = append(cases, &sweepCase{label: fmt.Sprintf("%s d=128", m), dim: 128, n: n, budget: budget, method: m})
	}
	// The coalesced-duplicates workload: 32 distinct queries tiled to nq,
	// the shape a server-side coalescing window produces when concurrent
	// clients ask for the same items. Batches larger than the distinct
	// set exercise duplicate suppression — each distinct query runs once
	// per call and the copies are free.
	cases = append(cases, &sweepCase{label: "gqr d=128 dup", dim: 128, n: n, budget: budget, method: gqr.GQR, distinct: 32})
	cases = append(cases, &sweepCase{label: "gqr d=32", dim: 32, n: n, budget: budget, method: gqr.GQR})

	// One corpus per (dimensionality, size), shared across its cases.
	type corpusKey struct{ dim, n int }
	corpora := map[corpusKey]*dataset.Dataset{}
	for _, c := range cases {
		ds := corpora[corpusKey{c.dim, c.n}]
		if ds == nil {
			latent := 8
			if c.dim >= 128 {
				latent = 12
			}
			ds = dataset.Generate(dataset.GeneratorSpec{
				Name: "batchsweep", N: c.n, Dim: c.dim, Clusters: 16, LatentDim: latent, Seed: 31 + seed,
			})
			ds.SampleQueries(nq, 32+seed)
			corpora[corpusKey{c.dim, c.n}] = ds
		}
		c.ds = ds
		c.queries = make([]float32, 0, nq*c.dim)
		for qi := 0; qi < nq; qi++ {
			src := qi
			if c.distinct > 0 {
				src = qi % c.distinct
			}
			c.queries = append(c.queries, ds.Query(src)...)
		}
	}

	for _, c := range cases {
		ix, err := gqr.Build(c.ds.Vectors, c.dim,
			gqr.WithSeed(33+seed),
			gqr.WithBuildParallelism(buildProcs),
			gqr.WithQueryMethod(c.method))
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		c.ix = ix
		// Warm the searcher pool and batch scratch off the clock.
		if _, err := ix.SearchBatch(c.queries[:c.dim*2], k, gqr.WithMaxCandidates(c.budget)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gqr-bench: built %s\n", c.label)
	}

	report := batchReport{Meta: bench.Meta(), N: n, NQ: nq, K: k, Budget: budget}

	// Row order interleaves batch sizes within each configuration; the
	// cycle loop interleaves everything across time.
	type rowKey struct {
		ci, batch int
	}
	var rows []rowKey
	for ci := range cases {
		for _, b := range batchSizes {
			rows = append(rows, rowKey{ci, b})
		}
	}
	best := make([]time.Duration, len(rows))
	bestCalls := make([][]time.Duration, len(rows))

	const timingCycles = 7
	callLat := make([]time.Duration, 0, nq)
	for cycle := 0; cycle < timingCycles; cycle++ {
		for ri, rk := range rows {
			c := cases[rk.ci]
			callLat = callLat[:0]
			start := time.Now()
			if rk.batch == 0 {
				for qi := 0; qi < nq; qi++ {
					s := time.Now()
					if _, err := c.ix.Search(c.queries[qi*c.dim:(qi+1)*c.dim], k, gqr.WithMaxCandidates(c.budget)); err != nil {
						return err
					}
					callLat = append(callLat, time.Since(s))
				}
			} else {
				for lo := 0; lo < nq; lo += rk.batch {
					hi := lo + rk.batch
					if hi > nq {
						hi = nq
					}
					s := time.Now()
					if _, err := c.ix.SearchBatch(c.queries[lo*c.dim:hi*c.dim], k, gqr.WithMaxCandidates(c.budget)); err != nil {
						return err
					}
					callLat = append(callLat, time.Since(s))
				}
			}
			if el := time.Since(start); cycle == 0 || el < best[ri] {
				best[ri] = el
				bestCalls[ri] = append(bestCalls[ri][:0], callLat...)
			}
		}
	}

	for ri, rk := range rows {
		c := cases[rk.ci]
		row := batchRow{
			Label:  c.label,
			Dim:    c.dim,
			Budget: c.budget,
			Batch:  rk.batch,
			QPS:    float64(nq) / best[ri].Seconds(),
			USPerQ: float64(best[ri].Microseconds()) / float64(nq),
			P99us:  p99PerQuery(bestCalls[ri], rk.batch, nq),
		}
		report.Rows = append(report.Rows, row)
	}
	// Speedup vs the configuration's own batch=1 row (always first in
	// each group of len(batchSizes) rows).
	for ri := range report.Rows {
		baseQPS := report.Rows[ri-ri%len(batchSizes)+1].QPS
		if report.Rows[ri].Batch > 1 && baseQPS > 0 {
			report.Rows[ri].Speedup = report.Rows[ri].QPS / baseQPS
		}
	}

	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	for _, row := range report.Rows {
		fmt.Fprintf(os.Stderr, "gqr-bench: %-12s batch %3d  %9.0f qps  %7.1f us/q  p99 %7.1f us  %5.2fx\n",
			row.Label, row.Batch, row.QPS, row.USPerQ, row.P99us, row.Speedup)
	}
	return nil
}

// p99PerQuery computes the 99th-percentile per-query latency from one
// cycle's call latencies: each call's latency is observed by every
// query in that call (batchSize queries, fewer for the tail call).
func p99PerQuery(calls []time.Duration, batch, nq int) float64 {
	type weighted struct {
		lat time.Duration
		n   int
	}
	ws := make([]weighted, len(calls))
	remaining := nq
	for i, lat := range calls {
		sz := batch
		if sz > remaining {
			sz = remaining
		}
		remaining -= sz
		ws[i] = weighted{lat, sz}
	}
	sort.Slice(ws, func(a, b int) bool { return ws[a].lat < ws[b].lat })
	target := (99*nq + 99) / 100 // ceil(0.99 * nq)
	cum := 0
	for _, w := range ws {
		cum += w.n
		if cum >= target {
			return float64(w.lat.Microseconds())
		}
	}
	if len(ws) == 0 {
		return 0
	}
	return float64(ws[len(ws)-1].lat.Microseconds())
}
