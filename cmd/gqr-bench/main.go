// Command gqr-bench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	gqr-bench -experiment fig7                 # one experiment
//	gqr-bench -experiment all -scale 0.25      # everything, quarter-size corpora
//	gqr-bench -list                            # list experiment ids
//	gqr-bench -json BENCH.json                 # machine-readable micro-benchmarks
//	gqr-bench -trace-out trace.json            # Chrome trace of a traced query run
//	gqr-bench -lifecycle                       # search latency at 0/10/50% deleted
//
// Corpus sizes scale linearly with -scale; -nq and -k control the query
// workload (paper defaults: 1000 queries scaled to 100, k=20).
// -trace-out runs the budget-1000 workload with the flight recorder on
// (-trace-sample / -slow-query-ms tune the capture policies) and writes
// the captured traces as Chrome trace_event JSON for Perfetto.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strings"
	"time"

	"gqr"
	"gqr/internal/bench"
	"gqr/internal/dataset"
	"gqr/internal/trace"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (e.g. fig7), comma-separated list, or 'all'")
		list        = flag.Bool("list", false, "list available experiments and exit")
		scale       = flag.Float64("scale", 1.0, "corpus scale factor in (0,1]")
		nq          = flag.Int("nq", 100, "number of sampled queries")
		k           = flag.Int("k", 20, "number of target nearest neighbors")
		seed        = flag.Int64("seed", 0, "training seed offset")
		out         = flag.String("o", "", "write output to this file instead of stdout")
		jsonOut     = flag.String("json", "", "run the evaluation-stage micro-benchmarks and write JSON results to this file ('-' for stdout)")
		buildProcs  = flag.Int("build-procs", 0, "index-build worker bound (0 = GOMAXPROCS); indexes are identical at any setting")
		traceOut    = flag.String("trace-out", "", "run a traced query workload and write the flight recorder's captures as Chrome trace_event JSON to this file ('-' for stdout)")
		traceSample = flag.Int("trace-sample", 1, "with -trace-out: capture every n-th query")
		slowQueryMS = flag.Float64("slow-query-ms", 0, "with -trace-out: also capture queries at or above this latency in milliseconds")
		lifecycle   = flag.Bool("lifecycle", false, "run the corpus-lifecycle sweep: budget-1000 latency at 0/10/50% deleted, before and after compaction")
	)
	flag.Parse()

	if *lifecycle {
		if err := runLifecycleSweep(os.Stdout, *nq, *k, *seed, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *traceOut != "" {
		if err := runTraceCapture(*traceOut, *nq, *k, *seed, *buildProcs, *traceSample, *slowQueryMS); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonOut != "" {
		var w io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := bench.RunMicro(w, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "gqr-bench: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opt := bench.RunOptions{Scale: *scale, NQ: *nq, K: *k, Seed: *seed, BuildProcs: *buildProcs}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(w, "\n===== %s: %s =====\n\n", e.ID, e.Title)
		if err := e.Run(opt, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(w, "[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runTraceCapture builds the micro-benchmark corpus with the flight
// recorder enabled, runs the budget-1000 query workload, and writes
// every captured trace as Chrome trace_event JSON — a self-contained
// way to eyeball the per-stage latency breakdown in Perfetto without
// standing up the HTTP server.
func runTraceCapture(path string, nq, k int, seed int64, buildProcs, sampleEvery int, slowMS float64) error {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "traceout", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17 + seed,
	})
	if nq < 1 {
		nq = 1
	}
	ds.SampleQueries(nq, 18+seed)
	// The ring must hold the whole workload: every captured query lands
	// in the output file.
	ix, err := gqr.Build(ds.Vectors, ds.Dim,
		gqr.WithSeed(19+seed),
		gqr.WithBuildParallelism(buildProcs),
		gqr.WithTracing(sampleEvery),
		gqr.WithSlowQueryThreshold(time.Duration(slowMS*float64(time.Millisecond))),
		gqr.WithTraceBuffer(nq))
	if err != nil {
		return err
	}
	for qi := 0; qi < nq; qi++ {
		if _, err := ix.Search(ds.Query(qi), k, gqr.WithMaxCandidates(1000)); err != nil {
			return err
		}
	}
	rec := ix.TraceRecorder()
	traces := rec.Traces()
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChrome(w, traces...); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Fprintf(os.Stderr, "gqr-bench: traced %d/%d queries, captured %d traces to %s\n",
		st.Traced, st.Queries, len(traces), path)
	return nil
}

// runLifecycleSweep measures how deletions affect query latency: the
// budget-1000 workload runs at 0%, 10% and 50% of the corpus deleted,
// first with the tombstones still pending in the posting lists (each
// dead id costs a bitmap test in the gather loop) and then after
// Compact has purged them (dead ids cost nothing). Deleted ids are a
// seeded permutation, so runs are reproducible.
func runLifecycleSweep(w io.Writer, nq, k int, seed int64, buildProcs int) error {
	const n, dim = 20000, 32
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "lifecycle", N: n, Dim: dim, Clusters: 16, LatentDim: 8, Seed: 23 + seed,
	})
	if nq < 1 {
		nq = 1
	}
	ds.SampleQueries(nq, 24+seed)
	ix, err := gqr.Build(ds.Vectors, ds.Dim,
		gqr.WithSeed(25+seed),
		gqr.WithBuildParallelism(buildProcs))
	if err != nil {
		return err
	}
	nLive := ds.N() // SampleQueries holds sampled rows out of the corpus
	perm := rand.New(rand.NewSource(26 + seed)).Perm(nLive)
	fmt.Fprintf(w, "corpus %d x %d, %d queries, k=%d, budget 1000\n\n", nLive, dim, nq, k)
	fmt.Fprintf(w, "%-9s %-11s %9s %9s %10s %10s\n",
		"deleted", "phase", "live", "us/query", "cands/q", "filt/q")
	deleted := 0
	for _, frac := range []float64{0, 0.10, 0.50} {
		target := int(frac * float64(nLive))
		for ; deleted < target; deleted++ {
			if err := ix.Delete(perm[deleted]); err != nil {
				return err
			}
		}
		measure := func(phase string) error {
			var lat time.Duration
			var cands, filt int
			for qi := 0; qi < nq; qi++ {
				start := time.Now()
				_, st, err := ix.SearchWithStats(ds.Query(qi), k, gqr.WithMaxCandidates(1000))
				if err != nil {
					return err
				}
				lat += time.Since(start)
				cands += st.Candidates
				filt += st.Filtered
			}
			fmt.Fprintf(w, "%-9s %-11s %9d %9.1f %10.1f %10.1f\n",
				fmt.Sprintf("%d%%", int(frac*100)), phase, ix.Stats().LiveItems,
				float64(lat.Microseconds())/float64(nq),
				float64(cands)/float64(nq), float64(filt)/float64(nq))
			return nil
		}
		if err := measure("tombstoned"); err != nil {
			return err
		}
		if err := ix.Compact(); err != nil {
			return err
		}
		if err := measure("purged"); err != nil {
			return err
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqr-bench:", err)
	os.Exit(1)
}
