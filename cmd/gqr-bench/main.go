// Command gqr-bench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	gqr-bench -experiment fig7                 # one experiment
//	gqr-bench -experiment all -scale 0.25      # everything, quarter-size corpora
//	gqr-bench -list                            # list experiment ids
//	gqr-bench -json BENCH.json                 # machine-readable micro-benchmarks
//	gqr-bench -trace-out trace.json            # Chrome trace of a traced query run
//	gqr-bench -lifecycle                       # search latency at 0/10/50% deleted
//
// Corpus sizes scale linearly with -scale; -nq and -k control the query
// workload (paper defaults: 1000 queries scaled to 100, k=20).
// -trace-out runs the budget-1000 workload with the flight recorder on
// (-trace-sample / -slow-query-ms tune the capture policies) and writes
// the captured traces as Chrome trace_event JSON for Perfetto.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"strings"
	"time"

	"gqr"
	"gqr/internal/bench"
	"gqr/internal/dataset"
	"gqr/internal/trace"
)

func main() {
	var (
		experiment  = flag.String("experiment", "", "experiment id (e.g. fig7), comma-separated list, or 'all'")
		list        = flag.Bool("list", false, "list available experiments and exit")
		scale       = flag.Float64("scale", 1.0, "corpus scale factor in (0,1]")
		nq          = flag.Int("nq", 100, "number of sampled queries")
		k           = flag.Int("k", 20, "number of target nearest neighbors")
		seed        = flag.Int64("seed", 0, "training seed offset")
		out         = flag.String("o", "", "write output to this file instead of stdout")
		jsonOut     = flag.String("json", "", "run the evaluation-stage micro-benchmarks and write JSON results to this file ('-' for stdout)")
		buildProcs  = flag.Int("build-procs", 0, "index-build worker bound (0 = GOMAXPROCS); indexes are identical at any setting")
		traceOut    = flag.String("trace-out", "", "run a traced query workload and write the flight recorder's captures as Chrome trace_event JSON to this file ('-' for stdout)")
		traceSample = flag.Int("trace-sample", 1, "with -trace-out: capture every n-th query")
		slowQueryMS = flag.Float64("slow-query-ms", 0, "with -trace-out: also capture queries at or above this latency in milliseconds")
		lifecycle   = flag.Bool("lifecycle", false, "run the corpus-lifecycle sweep: budget-1000 latency at 0/10/50% deleted, before and after compaction")
		rerankOut   = flag.String("rerank", "", "run the quantized re-ranking sweep (m x factor grid, recall@k + latency) and write JSON results to this file ('-' for stdout)")
		rerankDim   = flag.Int("rerank-dim", 32, "with -rerank: corpus dimensionality (32 runs the full m x factor grid; other dims run a trimmed evaluation-heavy grid)")
		batchOut    = flag.String("batch", "", "run the batched-execution sweep (batch sizes 1/8/64/256 x querying methods, QPS + p99) and write JSON results to this file ('-' for stdout)")
	)
	flag.Parse()

	if *batchOut != "" {
		if err := runBatchSweep(*batchOut, *nq, *k, *seed, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *rerankOut != "" {
		if err := runRerankSweep(*rerankOut, *nq, *k, *seed, *buildProcs, *rerankDim); err != nil {
			fatal(err)
		}
		return
	}

	if *lifecycle {
		if err := runLifecycleSweep(os.Stdout, *nq, *k, *seed, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *traceOut != "" {
		if err := runTraceCapture(*traceOut, *nq, *k, *seed, *buildProcs, *traceSample, *slowQueryMS); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonOut != "" {
		var w io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := bench.RunMicro(w, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "gqr-bench: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opt := bench.RunOptions{Scale: *scale, NQ: *nq, K: *k, Seed: *seed, BuildProcs: *buildProcs}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(w, "\n===== %s: %s =====\n\n", e.ID, e.Title)
		if err := e.Run(opt, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(w, "[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

// runTraceCapture builds the micro-benchmark corpus with the flight
// recorder enabled, runs the budget-1000 query workload, and writes
// every captured trace as Chrome trace_event JSON — a self-contained
// way to eyeball the per-stage latency breakdown in Perfetto without
// standing up the HTTP server.
func runTraceCapture(path string, nq, k int, seed int64, buildProcs, sampleEvery int, slowMS float64) error {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "traceout", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17 + seed,
	})
	if nq < 1 {
		nq = 1
	}
	ds.SampleQueries(nq, 18+seed)
	// The ring must hold the whole workload: every captured query lands
	// in the output file.
	ix, err := gqr.Build(ds.Vectors, ds.Dim,
		gqr.WithSeed(19+seed),
		gqr.WithBuildParallelism(buildProcs),
		gqr.WithTracing(sampleEvery),
		gqr.WithSlowQueryThreshold(time.Duration(slowMS*float64(time.Millisecond))),
		gqr.WithTraceBuffer(nq))
	if err != nil {
		return err
	}
	for qi := 0; qi < nq; qi++ {
		if _, err := ix.Search(ds.Query(qi), k, gqr.WithMaxCandidates(1000)); err != nil {
			return err
		}
	}
	rec := ix.TraceRecorder()
	traces := rec.Traces()
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteChrome(w, traces...); err != nil {
		return err
	}
	st := rec.Stats()
	fmt.Fprintf(os.Stderr, "gqr-bench: traced %d/%d queries, captured %d traces to %s\n",
		st.Traced, st.Queries, len(traces), path)
	return nil
}

// runLifecycleSweep measures how deletions affect query latency: the
// budget-1000 workload runs at 0%, 10% and 50% of the corpus deleted,
// first with the tombstones still pending in the posting lists (each
// dead id costs a bitmap test in the gather loop) and then after
// Compact has purged them (dead ids cost nothing). Deleted ids are a
// seeded permutation, so runs are reproducible.
func runLifecycleSweep(w io.Writer, nq, k int, seed int64, buildProcs int) error {
	const n, dim = 20000, 32
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "lifecycle", N: n, Dim: dim, Clusters: 16, LatentDim: 8, Seed: 23 + seed,
	})
	if nq < 1 {
		nq = 1
	}
	ds.SampleQueries(nq, 24+seed)
	ix, err := gqr.Build(ds.Vectors, ds.Dim,
		gqr.WithSeed(25+seed),
		gqr.WithBuildParallelism(buildProcs))
	if err != nil {
		return err
	}
	nLive := ds.N() // SampleQueries holds sampled rows out of the corpus
	perm := rand.New(rand.NewSource(26 + seed)).Perm(nLive)
	fmt.Fprintf(w, "corpus %d x %d, %d queries, k=%d, budget 1000\n\n", nLive, dim, nq, k)
	fmt.Fprintf(w, "%-9s %-11s %9s %9s %10s %10s\n",
		"deleted", "phase", "live", "us/query", "cands/q", "filt/q")
	deleted := 0
	for _, frac := range []float64{0, 0.10, 0.50} {
		target := int(frac * float64(nLive))
		for ; deleted < target; deleted++ {
			if err := ix.Delete(perm[deleted]); err != nil {
				return err
			}
		}
		measure := func(phase string) error {
			var lat time.Duration
			var cands, filt int
			for qi := 0; qi < nq; qi++ {
				start := time.Now()
				_, st, err := ix.SearchWithStats(ds.Query(qi), k, gqr.WithMaxCandidates(1000))
				if err != nil {
					return err
				}
				lat += time.Since(start)
				cands += st.Candidates
				filt += st.Filtered
			}
			fmt.Fprintf(w, "%-9s %-11s %9d %9.1f %10.1f %10.1f\n",
				fmt.Sprintf("%d%%", int(frac*100)), phase, ix.Stats().LiveItems,
				float64(lat.Microseconds())/float64(nq),
				float64(cands)/float64(nq), float64(filt)/float64(nq))
			return nil
		}
		if err := measure("tombstoned"); err != nil {
			return err
		}
		if err := ix.Compact(); err != nil {
			return err
		}
		if err := measure("purged"); err != nil {
			return err
		}
	}
	return nil
}

// rerankRow is one configuration's measurement in the re-ranking sweep.
type rerankRow struct {
	Label     string  `json:"label"`
	M         int     `json:"m,omitempty"`
	Factor    int     `json:"factor,omitempty"`
	OPQ       bool    `json:"opq,omitempty"`
	USPerQ    float64 `json:"usPerQuery"`
	RecallAtK float64 `json:"recallAtK"`
	CandsPerQ float64 `json:"candidatesPerQuery"`
	ADCPerQ   float64 `json:"adcScoredPerQuery"`
	RerankedQ float64 `json:"rerankedPerQuery"`
	Speedup   float64 `json:"speedupVsBaseline,omitempty"`
}

// rerankReport is the JSON document `gqr-bench -rerank` emits.
type rerankReport struct {
	Meta   bench.RunMeta `json:"meta"`
	N      int           `json:"n"`
	Dim    int           `json:"dim"`
	NQ     int           `json:"nq"`
	K      int           `json:"k"`
	Budget int           `json:"budget"`
	Rows   []rerankRow   `json:"rows"`
}

// runRerankSweep measures the quantized re-ranking serving path: the
// budget-1000 workload runs against a plain index (baseline) and
// against an m × factor grid of re-ranked builds (plus one OPQ row),
// reporting per-query latency, recall@k against brute-force ground
// truth, and the stage's work counters. The whole sweep is seeded, so
// committed reports are reproducible.
//
// dim selects the corpus dimensionality. At the default d=32 the full
// m × factor grid runs; at higher dims — where exact evaluation is
// proportionally dearer and ADC's constant per-candidate cost pays off
// most — a trimmed grid (m ∈ {8,16} × factor ∈ {4,8}) keeps the PQ
// training wall-clock bounded.
func runRerankSweep(path string, nq, k int, seed int64, buildProcs, dim int) error {
	const n, budget = 20000, 1000
	if dim < 4 || dim%4 != 0 {
		return fmt.Errorf("rerank sweep: dim %d must be a positive multiple of 4", dim)
	}
	latent := 8
	if dim >= 128 {
		latent = 12
	}
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "rerank", N: n, Dim: dim, Clusters: 16, LatentDim: latent, Seed: 27 + seed,
	})
	if nq < 1 {
		nq = 1
	}
	ds.SampleQueries(nq, 28+seed)

	// Brute-force ground truth over the live corpus: the recall
	// denominator every configuration is scored against.
	truth := make([][]int, nq)
	for qi := 0; qi < nq; qi++ {
		truth[qi] = exactTopK(ds, ds.Query(qi), k)
	}

	report := rerankReport{Meta: bench.Meta(), N: ds.N(), Dim: dim, NQ: nq, K: k, Budget: budget}
	report.Meta.Reranking = true

	// Phase 1: build every configuration up front (PQ training dominates
	// the sweep's wall clock at minutes per row). Phase 2 then times all
	// rows back-to-back in round-robin cycles: on a shared vCPU the
	// host's effective speed drifts on the minutes scale, so rows timed
	// minutes apart are not comparable — interleaved sub-second timing
	// windows see the same machine, and the per-row minimum across
	// cycles discards the slow excursions.
	type sweepCase struct {
		label     string
		m, factor int
		opq       bool
		opts      []gqr.Option
		ix        *gqr.Index
	}
	cases := []*sweepCase{{label: "baseline"}}
	ms, factors := []int{4, 8, 16}, []int{2, 4, 8}
	if dim != 32 {
		ms, factors = []int{8, 16}, []int{4, 8}
	}
	for _, m := range ms {
		for _, factor := range factors {
			cases = append(cases, &sweepCase{
				label: fmt.Sprintf("pq m=%d factor=%d", m, factor),
				m:     m, factor: factor,
				opts: []gqr.Option{gqr.WithReranking(m, 0, factor)},
			})
		}
	}
	if dim == 32 {
		cases = append(cases, &sweepCase{
			label: "opq m=8 factor=4", m: 8, factor: 4, opq: true,
			opts: []gqr.Option{gqr.WithReranking(8, 0, 4), gqr.WithOPQRotation()},
		})
	}

	for _, c := range cases {
		ix, err := gqr.Build(ds.Vectors, ds.Dim, append([]gqr.Option{
			gqr.WithSeed(29 + seed),
			gqr.WithBuildParallelism(buildProcs),
		}, c.opts...)...)
		if err != nil {
			return fmt.Errorf("%s: %w", c.label, err)
		}
		c.ix = ix
		// Warm the snapshot and searcher pool off the clock.
		if _, err := ix.Search(ds.Query(0), k, gqr.WithMaxCandidates(budget)); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gqr-bench: built %s\n", c.label)
	}

	// Stats pass: recall and work counters (timing-insensitive).
	lat := make([]time.Duration, len(cases))
	for _, c := range cases {
		var hits, cands, adc, rer int
		for qi := 0; qi < nq; qi++ {
			nbrs, st, err := c.ix.SearchWithStats(ds.Query(qi), k, gqr.WithMaxCandidates(budget))
			if err != nil {
				return err
			}
			cands += st.Candidates
			adc += st.ADCScored
			rer += st.Reranked
			got := make(map[int]bool, len(nbrs))
			for _, nb := range nbrs {
				got[nb.ID] = true
			}
			for _, id := range truth[qi] {
				if got[id] {
					hits++
				}
			}
		}
		report.Rows = append(report.Rows, rerankRow{
			Label:     c.label,
			M:         c.m,
			Factor:    c.factor,
			OPQ:       c.opq,
			RecallAtK: float64(hits) / float64(nq*k),
			CandsPerQ: float64(cands) / float64(nq),
			ADCPerQ:   float64(adc) / float64(nq),
			RerankedQ: float64(rer) / float64(nq),
		})
	}

	// Timing cycles: every cycle visits every row once, so all rows
	// share each cycle's machine conditions; keep the per-row minimum.
	const timingCycles = 9
	for cycle := 0; cycle < timingCycles; cycle++ {
		for ci, c := range cases {
			start := time.Now()
			for qi := 0; qi < nq; qi++ {
				if _, err := c.ix.Search(ds.Query(qi), k, gqr.WithMaxCandidates(budget)); err != nil {
					return err
				}
			}
			if el := time.Since(start); cycle == 0 || el < lat[ci] {
				lat[ci] = el
			}
		}
	}
	for ci := range cases {
		report.Rows[ci].USPerQ = float64(lat[ci].Microseconds()) / float64(nq)
	}

	base := report.Rows[0].USPerQ
	for i := 1; i < len(report.Rows); i++ {
		if report.Rows[i].USPerQ > 0 {
			report.Rows[i].Speedup = base / report.Rows[i].USPerQ
		}
	}

	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		return err
	}
	for _, row := range report.Rows {
		fmt.Fprintf(os.Stderr, "gqr-bench: %-18s %8.1f us/q  recall@%d %.4f  speedup %.2fx\n",
			row.Label, row.USPerQ, k, row.RecallAtK, row.Speedup)
	}
	return nil
}

// exactTopK computes a query's true k nearest neighbors by brute force.
func exactTopK(ds *dataset.Dataset, q []float32, k int) []int {
	n, dim := ds.N(), ds.Dim
	type cand struct {
		id int
		d  float64
	}
	all := make([]cand, n)
	for i := 0; i < n; i++ {
		row := ds.Vectors[i*dim : (i+1)*dim]
		var d float64
		for j, v := range row {
			diff := float64(q[j]) - float64(v)
			d += diff * diff
		}
		all[i] = cand{id: i, d: d}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqr-bench:", err)
	os.Exit(1)
}
