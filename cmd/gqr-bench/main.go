// Command gqr-bench regenerates the tables and figures of the paper's
// evaluation section (see DESIGN.md for the experiment index and
// EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	gqr-bench -experiment fig7                 # one experiment
//	gqr-bench -experiment all -scale 0.25      # everything, quarter-size corpora
//	gqr-bench -list                            # list experiment ids
//	gqr-bench -json BENCH.json                 # machine-readable micro-benchmarks
//
// Corpus sizes scale linearly with -scale; -nq and -k control the query
// workload (paper defaults: 1000 queries scaled to 100, k=20).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"gqr/internal/bench"
)

func main() {
	var (
		experiment = flag.String("experiment", "", "experiment id (e.g. fig7), comma-separated list, or 'all'")
		list       = flag.Bool("list", false, "list available experiments and exit")
		scale      = flag.Float64("scale", 1.0, "corpus scale factor in (0,1]")
		nq         = flag.Int("nq", 100, "number of sampled queries")
		k          = flag.Int("k", 20, "number of target nearest neighbors")
		seed       = flag.Int64("seed", 0, "training seed offset")
		out        = flag.String("o", "", "write output to this file instead of stdout")
		jsonOut    = flag.String("json", "", "run the evaluation-stage micro-benchmarks and write JSON results to this file ('-' for stdout)")
		buildProcs = flag.Int("build-procs", 0, "index-build worker bound (0 = GOMAXPROCS); indexes are identical at any setting")
	)
	flag.Parse()

	if *jsonOut != "" {
		var w io.Writer = os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		if err := bench.RunMicro(w, *buildProcs); err != nil {
			fatal(err)
		}
		return
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}
	if *experiment == "" {
		fmt.Fprintln(os.Stderr, "gqr-bench: -experiment is required (or -list)")
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opt := bench.RunOptions{Scale: *scale, NQ: *nq, K: *k, Seed: *seed, BuildProcs: *buildProcs}
	var exps []bench.Experiment
	if *experiment == "all" {
		exps = bench.Experiments()
	} else {
		for _, id := range strings.Split(*experiment, ",") {
			e, err := bench.ByID(strings.TrimSpace(id))
			if err != nil {
				fatal(err)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		start := time.Now()
		fmt.Fprintf(w, "\n===== %s: %s =====\n\n", e.ID, e.Title)
		if err := e.Run(opt, w); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		fmt.Fprintf(w, "[%s completed in %s]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqr-bench:", err)
	os.Exit(1)
}
