// Command gqr-server serves approximate nearest-neighbor queries over
// HTTP: it builds (or loads) a learned-hash index from an fvecs file
// and exposes the JSON API of internal/server.
//
// Usage:
//
//	gqr-server -base vectors.fvecs -addr :8080
//	gqr-server -base vectors.fvecs -load index.gqr -addr :8080
//
//	curl -s localhost:8080/stats
//	curl -s -X POST localhost:8080/search \
//	     -d '{"query":[...], "k":10, "maxCandidates":2000}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"gqr"
	"gqr/internal/dataset"
	"gqr/internal/server"
)

func main() {
	var (
		base      = flag.String("base", "", "fvecs file with base vectors (required)")
		addr      = flag.String("addr", ":8080", "listen address")
		algorithm = flag.String("algorithm", "itq", "learner: itq|pcah|sh|kmh|lsh|ssh")
		method    = flag.String("method", "gqr", "querying method: gqr|qr|hr|ghr|mih")
		metric    = flag.String("metric", "euclidean", "metric: euclidean|angular")
		bits      = flag.Int("bits", 0, "code length (0 = log2(n/10) rule)")
		tables    = flag.Int("tables", 1, "hash tables")
		seed      = flag.Int64("seed", 0, "training seed")
		loadIdx   = flag.String("load", "", "load a saved index instead of training")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "gqr-server: -base is required")
		flag.Usage()
		os.Exit(2)
	}

	vecs, dim, err := dataset.LoadFvecsFile(*base)
	if err != nil {
		log.Fatal("gqr-server: ", err)
	}
	start := time.Now()
	var ix *gqr.Index
	if *loadIdx != "" {
		ix, err = gqr.LoadFile(*loadIdx, vecs, dim)
	} else {
		ix, err = gqr.Build(vecs, dim,
			gqr.WithAlgorithm(gqr.Algorithm(*algorithm)),
			gqr.WithQueryMethod(gqr.QueryMethod(*method)),
			gqr.WithMetric(gqr.Metric(*metric)),
			gqr.WithCodeLength(*bits),
			gqr.WithTables(*tables),
			gqr.WithSeed(*seed))
	}
	if err != nil {
		log.Fatal("gqr-server: ", err)
	}
	st := ix.Stats()
	log.Printf("index ready: %d items, %s/%s, %d bits, %d tables (%s)",
		st.Items, st.Algorithm, st.Method, st.CodeLength, st.Tables,
		time.Since(start).Round(time.Millisecond))
	log.Printf("listening on %s", *addr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           server.New(ix),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
