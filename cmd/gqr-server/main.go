// Command gqr-server serves approximate nearest-neighbor queries over
// HTTP: it builds (or loads) a learned-hash index from an fvecs file
// and exposes the JSON API of internal/server, with Prometheus metrics
// on /metrics, a JSON snapshot on /statsz and opt-in pprof profiling.
//
// Usage:
//
//	gqr-server -base vectors.fvecs -addr :8080
//	gqr-server -base vectors.fvecs -load index.gqr -addr :8080 -pprof
//	gqr-server -base vectors.fvecs -trace-sample 100 -slow-query-ms 5
//
//	curl -s localhost:8080/stats
//	curl -s localhost:8080/metrics
//	curl -s localhost:8080/debug/querytrace
//	curl -s "localhost:8080/debug/querytrace?format=chrome" > trace.json  # open in Perfetto
//	curl -s -X POST localhost:8080/search \
//	     -d '{"query":[...], "k":10, "maxCandidates":2000, "includeStats":true}'
//	go tool pprof http://localhost:8080/debug/pprof/profile?seconds=10
//
// On SIGINT/SIGTERM the server drains in-flight requests (up to
// -shutdown-timeout) and logs a final metrics snapshot before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gqr"
	"gqr/internal/dataset"
	"gqr/internal/server"
)

func main() {
	var (
		base        = flag.String("base", "", "fvecs file with base vectors (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		algorithm   = flag.String("algorithm", "itq", "learner: itq|pcah|sh|kmh|lsh|ssh")
		method      = flag.String("method", "gqr", "querying method: gqr|qr|hr|ghr|mih")
		metric      = flag.String("metric", "euclidean", "metric: euclidean|angular")
		bits        = flag.Int("bits", 0, "code length (0 = log2(n/10) rule)")
		tables      = flag.Int("tables", 1, "hash tables")
		seed        = flag.Int64("seed", 0, "training seed")
		buildProcs  = flag.Int("build-procs", 0, "build worker bound (0 = GOMAXPROCS); the index is identical at any setting")
		loadIdx     = flag.String("load", "", "load a saved index instead of training")
		dataDir     = flag.String("data-dir", "", "durable data directory: Adds are crash-safe, and the server recovers from it on restart")
		walOn       = flag.Bool("wal", true, "with -data-dir, fsync a write-ahead log record before acknowledging each Add (disable for segment-only durability)")
		pprofOn     = flag.Bool("pprof", false, "expose net/http/pprof under /debug/pprof/")
		logJSON     = flag.Bool("log-json", false, "emit JSON log lines instead of text")
		drainWindow = flag.Duration("shutdown-timeout", 15*time.Second, "max time to drain in-flight requests on SIGINT/SIGTERM")
		traceSample = flag.Int("trace-sample", 0, "capture every n-th query into the flight recorder on /debug/querytrace (0 = off)")
		slowQueryMS = flag.Float64("slow-query-ms", 0, "always capture queries at or above this latency in milliseconds (0 = off)")
		traceBuf    = flag.Int("trace-buffer", 0, "flight-recorder ring capacity in traces (0 = default 64)")
		batchWindow = flag.Duration("batch-window", 0, "coalesce concurrent /search requests with identical parameters for up to this long and answer them as one batched execution (0 = off)")
		batchMax    = flag.Int("batch-max", 64, "with -batch-window, max requests per coalesced batch")
	)
	flag.Parse()
	if *base == "" {
		fmt.Fprintln(os.Stderr, "gqr-server: -base is required")
		flag.Usage()
		os.Exit(2)
	}

	var handlerOpts slog.HandlerOptions
	var logger *slog.Logger
	if *logJSON {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, &handlerOpts))
	} else {
		logger = slog.New(slog.NewTextHandler(os.Stderr, &handlerOpts))
	}
	slog.SetDefault(logger)

	vecs, dim, err := dataset.LoadFvecsFile(*base)
	if err != nil {
		logger.Error("loading base vectors", "error", err)
		os.Exit(1)
	}
	start := time.Now()
	traceOpts := []gqr.Option{
		gqr.WithTracing(*traceSample),
		gqr.WithSlowQueryThreshold(time.Duration(*slowQueryMS * float64(time.Millisecond))),
		gqr.WithTraceBuffer(*traceBuf),
	}
	durOpts := traceOpts
	if !*walOn {
		durOpts = append(append([]gqr.Option{}, durOpts...), gqr.WithoutAddWAL())
	}
	var ix *gqr.Index
	recovered := false
	if *dataDir != "" {
		if _, statErr := os.Stat(filepath.Join(*dataDir, "base.gqridx")); statErr == nil {
			ix, err = gqr.Recover(*dataDir, vecs, dim, durOpts...)
			recovered = err == nil
		}
	}
	if ix == nil && err == nil {
		if *loadIdx != "" {
			ix, err = gqr.LoadFile(*loadIdx, vecs, dim, traceOpts...)
		} else {
			buildOpts := append([]gqr.Option{
				gqr.WithAlgorithm(gqr.Algorithm(*algorithm)),
				gqr.WithQueryMethod(gqr.QueryMethod(*method)),
				gqr.WithMetric(gqr.Metric(*metric)),
				gqr.WithCodeLength(*bits),
				gqr.WithTables(*tables),
				gqr.WithSeed(*seed),
				gqr.WithBuildParallelism(*buildProcs)}, traceOpts...)
			ix, err = gqr.Build(vecs, dim, buildOpts...)
		}
	}
	if err != nil {
		logger.Error("building index", "error", err)
		os.Exit(1)
	}
	if *dataDir != "" && !recovered {
		if err := ix.EnableDurability(*dataDir, durOpts...); err != nil {
			logger.Error("enabling durability", "error", err)
			os.Exit(1)
		}
	}
	if *dataDir != "" {
		logger.Info("durability enabled", "dataDir", *dataDir, "wal", *walOn, "recovered", recovered)
	}
	st := ix.Stats()
	logger.Info("index ready",
		"items", st.Items, "live", st.LiveItems, "tombstones", st.Tombstones,
		"algorithm", st.Algorithm, "method", st.Method,
		"bits", st.CodeLength, "tables", st.Tables,
		"elapsed", time.Since(start).Round(time.Millisecond))
	if ix.TraceRecorder() != nil {
		logger.Info("query tracing enabled",
			"sampleEvery", *traceSample, "slowQueryMs", *slowQueryMS,
			"path", "/debug/querytrace")
	}

	opts := []server.Option{server.WithLogger(logger)}
	if *pprofOn {
		opts = append(opts, server.WithPprof())
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	if *batchWindow > 0 {
		opts = append(opts, server.WithCoalescing(*batchWindow, *batchMax))
		logger.Info("search coalescing enabled", "window", *batchWindow, "maxBatch", *batchMax)
	}
	h := server.New(ix, opts...)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		// Listen failed before any signal (port in use, etc.).
		logger.Error("server failed", "error", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down, draining in-flight requests", "timeout", *drainWindow)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainWindow)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Error("shutdown incomplete, closing", "error", err)
		srv.Close()
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Error("server error", "error", err)
	}
	// Close after the HTTP drain: no more Adds can arrive, so the final
	// memtable seals into a durable segment and the WAL hands off cleanly
	// (the next start replays nothing).
	if err := ix.Close(); err != nil {
		logger.Error("closing index", "error", err)
	}
	// The final snapshot gives operators the session totals even when
	// nothing scraped /metrics.
	snap, err := json.Marshal(h.Registry().Snapshot())
	if err != nil {
		logger.Error("final metrics snapshot failed", "error", err)
		return
	}
	logger.Info("final metrics snapshot", "metrics", string(snap))
}
