// Command gqr-search builds a learned-hash index over an fvecs file and
// answers queries from another, optionally reporting recall against an
// ivecs ground-truth file — an end-to-end driver of the public gqr API.
//
// Usage:
//
//	gqr-search -base b.fvecs -query q.fvecs -k 10 -budget 2000
//	gqr-search -base b.fvecs -query q.fvecs -gt gt.ivecs \
//	           -algorithm pcah -method gqr -tables 2
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"gqr"
	"gqr/internal/dataset"
)

func main() {
	var (
		base       = flag.String("base", "", "fvecs file with base vectors (required)")
		queryFile  = flag.String("query", "", "fvecs file with query vectors (required)")
		gt         = flag.String("gt", "", "ivecs file with ground-truth neighbor ids (optional)")
		algorithm  = flag.String("algorithm", "itq", "learner: itq|pcah|sh|kmh|lsh|ssh")
		method     = flag.String("method", "gqr", "querying method: gqr|qr|hr|ghr|mih")
		k          = flag.Int("k", 10, "neighbors per query")
		budget     = flag.Int("budget", 0, "max candidates per query (0 = unbounded)")
		bits       = flag.Int("bits", 0, "code length (0 = log2(n/10) rule)")
		tables     = flag.Int("tables", 1, "hash tables")
		seed       = flag.Int64("seed", 0, "training seed")
		buildProcs = flag.Int("build-procs", 0, "build worker bound (0 = GOMAXPROCS); the index is identical at any setting")
		deleteFrac = flag.Float64("delete-frac", 0, "delete this fraction of the base (seeded permutation) before querying; recall is computed over live ground-truth ids")
		compact    = flag.Bool("compact", false, "with -delete-frac, compact the index (purging tombstones) before querying")
		verbose    = flag.Bool("v", false, "print every query's neighbor list")
		saveIdx    = flag.String("save", "", "after building, save the index to this file")
		loadIdx    = flag.String("load", "", "load a previously saved index instead of training")
	)
	flag.Parse()
	if *base == "" || *queryFile == "" {
		fmt.Fprintln(os.Stderr, "gqr-search: -base and -query are required")
		flag.Usage()
		os.Exit(2)
	}

	vecs, dim, err := dataset.LoadFvecsFile(*base)
	if err != nil {
		fatal(err)
	}
	queries, qdim, err := dataset.LoadFvecsFile(*queryFile)
	if err != nil {
		fatal(err)
	}
	if qdim != dim {
		fatal(fmt.Errorf("query dim %d != base dim %d", qdim, dim))
	}

	var truth [][]int32
	if *gt != "" {
		f, err := os.Open(*gt)
		if err != nil {
			fatal(err)
		}
		truth, err = dataset.ReadIvecs(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	var ix *gqr.Index
	if *loadIdx != "" {
		ix, err = gqr.LoadFile(*loadIdx, vecs, dim)
		if err != nil {
			fatal(err)
		}
	} else {
		ix, err = gqr.Build(vecs, dim,
			gqr.WithAlgorithm(gqr.Algorithm(*algorithm)),
			gqr.WithQueryMethod(gqr.QueryMethod(*method)),
			gqr.WithCodeLength(*bits),
			gqr.WithTables(*tables),
			gqr.WithSeed(*seed),
			gqr.WithBuildParallelism(*buildProcs))
		if err != nil {
			fatal(err)
		}
	}
	st := ix.Stats()
	fmt.Printf("built %s/%s index: %d items, %d bits, %d tables, %v buckets (%s)\n",
		st.Algorithm, st.Method, st.Items, st.CodeLength, st.Tables, st.Buckets,
		time.Since(start).Round(time.Millisecond))
	if *saveIdx != "" {
		if err := ix.SaveFile(*saveIdx); err != nil {
			fatal(err)
		}
		fmt.Println("index saved to", *saveIdx)
	}

	// Exercise the deletion path: tombstone a seeded permutation prefix,
	// optionally purge it, and report recall against the ids still live.
	var dead map[int]bool
	if *deleteFrac > 0 {
		if *deleteFrac >= 1 {
			fatal(fmt.Errorf("delete-frac %v must be in [0,1)", *deleteFrac))
		}
		n := len(vecs) / dim
		perm := rand.New(rand.NewSource(*seed + 4242)).Perm(n)
		target := int(*deleteFrac * float64(n))
		dead = make(map[int]bool, target)
		for _, id := range perm[:target] {
			if err := ix.Delete(id); err != nil {
				fatal(err)
			}
			dead[id] = true
		}
		if *compact {
			if err := ix.Compact(); err != nil {
				fatal(err)
			}
		}
		st := ix.Stats()
		fmt.Printf("deleted %d items (live %d, tombstones %d pending %d, compacted=%v)\n",
			target, st.LiveItems, st.Tombstones, st.PendingTombstones, *compact)
	}

	nq := len(queries) / dim
	var opts []gqr.SearchOption
	if *budget > 0 {
		opts = append(opts, gqr.WithMaxCandidates(*budget))
	}
	var totalRecall float64
	start = time.Now()
	for qi := 0; qi < nq; qi++ {
		q := queries[qi*dim : (qi+1)*dim]
		nbrs, err := ix.Search(q, *k, opts...)
		if err != nil {
			fatal(err)
		}
		if *verbose {
			fmt.Printf("query %d:", qi)
			for _, nb := range nbrs {
				fmt.Printf(" %d(%.3f)", nb.ID, nb.Distance)
			}
			fmt.Println()
		}
		if truth != nil && qi < len(truth) {
			want := truth[qi]
			if dead != nil {
				live := make([]int32, 0, len(want))
				for _, id := range want {
					if !dead[int(id)] {
						live = append(live, id)
					}
				}
				want = live
			}
			if len(want) > *k {
				want = want[:*k]
			}
			in := make(map[int]bool, len(nbrs))
			for _, nb := range nbrs {
				in[nb.ID] = true
			}
			hit := 0
			for _, id := range want {
				if in[int(id)] {
					hit++
				}
			}
			if len(want) > 0 {
				totalRecall += float64(hit) / float64(len(want))
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("%d queries in %s (%.2fms/query)\n", nq, elapsed.Round(time.Millisecond),
		float64(elapsed.Milliseconds())/float64(nq))
	if truth != nil {
		fmt.Printf("recall@%d: %.4f\n", *k, totalRecall/float64(nq))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqr-search:", err)
	os.Exit(1)
}
