// Command gqr-datagen materializes the simulated corpora to fvecs/ivecs
// files (the TEXMEX exchange formats used by standard ANN benchmarks),
// so indexes can be built and queried from files with gqr-search or by
// external tools.
//
// Usage:
//
//	gqr-datagen -corpus cifar-sim -out data/cifar       # named corpus
//	gqr-datagen -n 50000 -dim 64 -clusters 16 -out data/custom
//	gqr-datagen -corpus cifar-sim -tags 8 -out data/cifar
//
// Writes <out>_base.fvecs, <out>_query.fvecs and <out>_groundtruth.ivecs;
// with -tags also <out>_tags.u64, one little-endian metadata word per
// base vector (a single random category bit in [0,tags)), the input for
// tag-mask-filtered searches.
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"gqr/internal/dataset"
)

func main() {
	var (
		corpus   = flag.String("corpus", "", "named simulated corpus (see -listcorpora)")
		listAll  = flag.Bool("listcorpora", false, "list named corpora and exit")
		scale    = flag.Float64("scale", 1.0, "scale factor for named corpora")
		n        = flag.Int("n", 0, "custom corpus: number of vectors")
		dim      = flag.Int("dim", 0, "custom corpus: dimensionality")
		clusters = flag.Int("clusters", 16, "custom corpus: mixture components")
		seed     = flag.Int64("seed", 1, "custom corpus: generator seed")
		nq       = flag.Int("nq", 100, "queries to sample out of the corpus")
		k        = flag.Int("k", 100, "ground-truth neighbors per query")
		tags     = flag.Int("tags", 0, "assign each base vector one random category bit in [0,tags) and write <out>_tags.u64 (0 = no tags file)")
		out      = flag.String("out", "", "output path prefix (required)")
	)
	flag.Parse()

	if *listAll {
		for _, name := range append(dataset.AllCorpora(), dataset.AppendixCorpora()...) {
			spec := dataset.Specs(name, 1)
			fmt.Printf("%-16s %7d x %-4d\n", name, spec.N, spec.Dim)
		}
		return
	}
	if *out == "" {
		fmt.Fprintln(os.Stderr, "gqr-datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var ds *dataset.Dataset
	switch {
	case *corpus != "":
		ds = dataset.Load(*corpus, *scale, *nq, *k)
	case *n > 0 && *dim > 0:
		ds = dataset.Generate(dataset.GeneratorSpec{
			Name: "custom", N: *n, Dim: *dim, Clusters: *clusters, Seed: *seed,
		})
		ds.SampleQueries(*nq, *seed+1)
		ds.ComputeGroundTruth(*k)
	default:
		fmt.Fprintln(os.Stderr, "gqr-datagen: pass -corpus or both -n and -dim")
		os.Exit(2)
	}

	if err := ds.Validate(); err != nil {
		fatal(err)
	}
	write := func(suffix string, fn func(path string) error) {
		path := *out + suffix
		if err := fn(path); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", path)
	}
	write("_base.fvecs", func(p string) error {
		return dataset.SaveFvecsFile(p, ds.Vectors, ds.Dim)
	})
	write("_query.fvecs", func(p string) error {
		return dataset.SaveFvecsFile(p, ds.Queries, ds.Dim)
	})
	write("_groundtruth.ivecs", func(p string) error {
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := dataset.WriteIvecs(f, ds.GroundTruth); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	})
	if *tags > 0 {
		if *tags > 64 {
			fatal(fmt.Errorf("tags %d > 64 (metadata words are 64-bit)", *tags))
		}
		write("_tags.u64", func(p string) error {
			rng := rand.New(rand.NewSource(*seed + 99))
			buf := make([]byte, 8*ds.N())
			for i := 0; i < ds.N(); i++ {
				binary.LittleEndian.PutUint64(buf[8*i:], 1<<uint(rng.Intn(*tags)))
			}
			return os.WriteFile(p, buf, 0o644)
		})
	}
	fmt.Printf("corpus: %d base vectors, %d queries, dim %d, ground-truth k=%d\n",
		ds.N(), ds.NQ(), ds.Dim, ds.GroundTruthK)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gqr-datagen:", err)
	os.Exit(1)
}
