module gqr

go 1.22
