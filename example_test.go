package gqr_test

import (
	"fmt"
	"math/rand"

	"gqr"
)

// exampleVectors builds a deterministic toy dataset: ten tight clusters
// of 100 vectors each.
func exampleVectors() ([]float32, int) {
	const dim = 16
	rng := rand.New(rand.NewSource(1))
	var vecs []float32
	for c := 0; c < 10; c++ {
		for i := 0; i < 100; i++ {
			for j := 0; j < dim; j++ {
				vecs = append(vecs, float32(c*10)+float32(rng.NormFloat64()))
			}
		}
	}
	return vecs, dim
}

func ExampleBuild() {
	vecs, dim := exampleVectors()
	ix, err := gqr.Build(vecs, dim,
		gqr.WithAlgorithm(gqr.PCAH),
		gqr.WithQueryMethod(gqr.GQR))
	if err != nil {
		panic(err)
	}
	st := ix.Stats()
	fmt.Println(st.Items, "vectors,", st.Algorithm, "+", st.Method)
	// Output: 1000 vectors, pcah + gqr
}

func ExampleIndex_Search() {
	vecs, dim := exampleVectors()
	ix, err := gqr.Build(vecs, dim, gqr.WithSeed(3))
	if err != nil {
		panic(err)
	}
	// Search with vector 0 itself: it must be its own nearest neighbor.
	nbrs, err := ix.Search(vecs[:dim], 3, gqr.WithMaxCandidates(200))
	if err != nil {
		panic(err)
	}
	fmt.Println("top result:", nbrs[0].ID, "distance:", nbrs[0].Distance)
	// Output: top result: 0 distance: 0
}

func ExampleIndex_Search_radius() {
	vecs, dim := exampleVectors()
	ix, err := gqr.Build(vecs, dim, gqr.WithSeed(4))
	if err != nil {
		panic(err)
	}
	// Bounded-radius query: only items within distance 2 come back, and
	// the QD threshold rule stops probing early.
	nbrs, err := ix.Search(vecs[:dim], 100, gqr.WithRadius(2))
	if err != nil {
		panic(err)
	}
	ok := true
	for _, nb := range nbrs {
		if nb.Distance > 2 {
			ok = false
		}
	}
	fmt.Println("all within radius:", ok)
	// Output: all within radius: true
}

func ExampleIndex_SaveFile() {
	vecs, dim := exampleVectors()
	ix, err := gqr.Build(vecs, dim, gqr.WithSeed(5))
	if err != nil {
		panic(err)
	}
	path := "/tmp/gqr-example-index.gqr"
	if err := ix.SaveFile(path); err != nil {
		panic(err)
	}
	// Reload against the same vectors: identical results, no retraining.
	ix2, err := gqr.LoadFile(path, vecs, dim)
	if err != nil {
		panic(err)
	}
	a, _ := ix.Search(vecs[:dim], 1)
	b, _ := ix2.Search(vecs[:dim], 1)
	fmt.Println("same top hit after reload:", a[0].ID == b[0].ID)
	// Output: same top hit after reload: true
}

func ExampleBuildSharded() {
	vecs, dim := exampleVectors()
	sharded, err := gqr.BuildSharded(vecs, dim, 4, gqr.WithSeed(6))
	if err != nil {
		panic(err)
	}
	nbrs, err := sharded.Search(vecs[:dim], 3)
	if err != nil {
		panic(err)
	}
	fmt.Println(sharded.Shards(), "shards; top hit:", nbrs[0].ID)
	// Output: 4 shards; top hit: 0
}
