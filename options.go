package gqr

import (
	"fmt"
	"time"
)

// Algorithm selects the hash-function learner.
type Algorithm string

// Supported learning algorithms.
const (
	// ITQ is iterative quantization: PCA plus a learned rotation
	// minimizing quantization error. The paper's default learner.
	ITQ Algorithm = "itq"
	// PCAH is PCA hashing: thresholded principal components. The
	// cheapest learner; with GQR it approaches OPQ quality.
	PCAH Algorithm = "pcah"
	// SH is spectral hashing: thresholded Laplacian eigenfunctions
	// along principal directions (a non-linear projection).
	SH Algorithm = "sh"
	// KMH is K-means hashing: per-subspace Voronoi quantization with
	// binary codeword indices.
	KMH Algorithm = "kmh"
	// LSH is the data-oblivious sign-random-projection baseline.
	LSH Algorithm = "lsh"
	// SSH is semi-supervised hashing with self-generated pseudo-pairs
	// (must-link/cannot-link constraints plus a PCA regularizer).
	SSH Algorithm = "ssh"
)

// QueryMethod selects the bucket-probing strategy.
type QueryMethod string

// Supported querying methods.
const (
	// GQR is generate-to-probe quantization-distance ranking — the
	// paper's contribution and the default.
	GQR QueryMethod = "gqr"
	// QR is quantization-distance ranking with up-front sorting of all
	// buckets (Algorithm 1; suffers the slow-start problem).
	QR QueryMethod = "qr"
	// HR is classic Hamming ranking (sort all buckets by Hamming
	// distance).
	HR QueryMethod = "hr"
	// GHR is generate-to-probe Hamming ranking, a.k.a. hash lookup.
	GHR QueryMethod = "ghr"
	// MIH is multi-index hashing over code substrings.
	MIH QueryMethod = "mih"
)

// Metric selects the distance the index answers queries under.
type Metric string

// Supported metrics.
const (
	// Euclidean is the default: exact L2 distances.
	Euclidean Metric = "euclidean"
	// Angular answers cosine/angular-similarity queries by normalizing
	// vectors onto the unit sphere, where Euclidean distance is
	// monotone in angular distance (the adaptation the paper's §4
	// mentions). Reported distances are chordal: cosine similarity
	// = 1 − d²/2.
	Angular Metric = "angular"
)

// config collects Build options.
type config struct {
	algorithm Algorithm
	method    QueryMethod
	metric    Metric
	bits      int
	tables    int
	seed      int64
	expected  int // expected items per bucket for the code-length rule
	procs     int // build worker bound; 0 means GOMAXPROCS

	// Flight-recorder settings; tracing is enabled when either policy
	// is set (see WithTracing / WithSlowQueryThreshold).
	traceSample   int
	slowQuery     time.Duration
	traceCapacity int

	// memtable is the Add count at which the memtable is sealed into a
	// frozen segment; walOff disables the write-ahead log when
	// durability is enabled (see WithoutAddWAL).
	memtable int
	walOff   bool

	// Quantized re-ranking (see WithReranking / WithOPQRotation). Zero
	// values for m/k/factor pick defaults at build time.
	rerank       bool
	rerankM      int
	rerankK      int
	rerankFactor int
	opq          bool
}

// defaultMemtableSize is the memtable seal threshold: small enough that
// the inline seal cost on the Add path stays microseconds, large enough
// that segments are worth merging.
const defaultMemtableSize = 256

func defaultConfig() config {
	return config{
		algorithm: ITQ,
		method:    GQR,
		metric:    Euclidean,
		tables:    1,
		expected:  10,
		memtable:  defaultMemtableSize,
	}
}

func (c config) validate() error {
	switch c.algorithm {
	case ITQ, PCAH, SH, KMH, LSH, SSH:
	default:
		return fmt.Errorf("gqr: unknown algorithm %q", c.algorithm)
	}
	switch c.method {
	case GQR, QR, HR, GHR, MIH:
	default:
		return fmt.Errorf("gqr: unknown query method %q", c.method)
	}
	switch c.metric {
	case Euclidean, Angular:
	default:
		return fmt.Errorf("gqr: unknown metric %q", c.metric)
	}
	if c.bits < 0 || c.bits > 64 {
		return fmt.Errorf("gqr: code length %d out of [0,64]", c.bits)
	}
	if c.tables < 1 {
		return fmt.Errorf("gqr: table count %d < 1", c.tables)
	}
	if c.procs < 0 {
		return fmt.Errorf("gqr: build parallelism %d < 0", c.procs)
	}
	if c.traceSample < 0 {
		return fmt.Errorf("gqr: trace sample rate %d < 0", c.traceSample)
	}
	if c.slowQuery < 0 {
		return fmt.Errorf("gqr: slow-query threshold %v < 0", c.slowQuery)
	}
	if c.traceCapacity < 0 {
		return fmt.Errorf("gqr: trace buffer capacity %d < 0", c.traceCapacity)
	}
	if c.memtable < 1 {
		return fmt.Errorf("gqr: memtable size %d < 1", c.memtable)
	}
	if c.opq && !c.rerank {
		return fmt.Errorf("gqr: WithOPQRotation requires WithReranking")
	}
	if c.rerank {
		if c.rerankM < 0 {
			return fmt.Errorf("gqr: rerank subspace count %d < 0", c.rerankM)
		}
		if c.rerankK < 0 || c.rerankK > 256 {
			return fmt.Errorf("gqr: rerank centroid count %d out of [0,256]", c.rerankK)
		}
		if c.rerankFactor < 0 {
			return fmt.Errorf("gqr: rerank factor %d < 0", c.rerankFactor)
		}
	}
	return nil
}

// Option configures Build.
type Option func(*config)

// WithAlgorithm selects the hash-function learner (default ITQ).
func WithAlgorithm(a Algorithm) Option { return func(c *config) { c.algorithm = a } }

// WithQueryMethod selects the querying method (default GQR).
func WithQueryMethod(m QueryMethod) Option { return func(c *config) { c.method = m } }

// WithMetric selects the distance metric (default Euclidean). Angular
// copies and L2-normalizes the vectors at build time and normalizes
// every query, so the caller's block is never modified.
func WithMetric(m Metric) Option { return func(c *config) { c.metric = m } }

// WithCodeLength fixes the code length in bits (1-64). The default 0
// applies the paper's rule m ≈ log2(n/EP) with EP=10 expected items per
// bucket.
func WithCodeLength(bits int) Option { return func(c *config) { c.bits = bits } }

// WithExpectedBucketSize changes the EP constant of the automatic
// code-length rule (default 10, as in the paper).
func WithExpectedBucketSize(ep int) Option { return func(c *config) { c.expected = ep } }

// WithTables builds the given number of hash tables (default 1). More
// tables raise recall per probed bucket at a memory cost; the paper
// shows one GQR table beats up to 30 GHR tables.
func WithTables(n int) Option { return func(c *config) { c.tables = n } }

// WithSeed fixes the training seed for reproducible indexes (default 0).
func WithSeed(seed int64) Option { return func(c *config) { c.seed = seed } }

// WithBuildParallelism bounds the number of workers Build uses across
// every stage — training mat-mul/k-means kernels, concurrent per-table
// hasher training, and chunked item coding. Zero (the default) means
// runtime.GOMAXPROCS(0). The built index is bit-for-bit identical at
// any setting — same hash codes, same persisted bytes, same search
// results — so this only trades build latency against CPU; results
// never depend on it.
func WithBuildParallelism(p int) Option { return func(c *config) { c.procs = p } }

// WithTracing enables the query flight recorder with uniform 1-in-n
// sampling: every n-th query (1 = every query) records per-stage spans
// and is captured into the recorder's ring buffer, retrievable through
// Index.TraceRecorder (and /debug/querytrace on the HTTP server).
// Tracing a query costs a few clock reads per probed bucket plus
// pooled span storage; non-sampled queries — and every query when
// tracing is off — pay only a nil check. n <= 0 leaves uniform
// sampling off.
func WithTracing(sampleEvery int) Option {
	return func(c *config) { c.traceSample = sampleEvery }
}

// WithSlowQueryThreshold enables threshold-triggered slow-query
// capture: every query records a trace (the per-stage breakdown must
// already exist by the time a query turns out slow), and queries whose
// total latency reaches d are always retained in the flight recorder,
// regardless of sampling. Combine with WithTracing to also keep a
// uniform sample of ordinary queries.
func WithSlowQueryThreshold(d time.Duration) Option {
	return func(c *config) { c.slowQuery = d }
}

// WithTraceBuffer sets the flight recorder's ring-buffer capacity in
// traces (default 64). New captures overwrite the oldest.
func WithTraceBuffer(capacity int) Option {
	return func(c *config) { c.traceCapacity = capacity }
}

// withoutTracing disables the flight recorder regardless of earlier
// options. BuildSharded appends it to per-shard builds: the sharded
// index owns one recorder at the fan-out level, so shards must not
// each run their own.
func withoutTracing() Option {
	return func(c *config) { c.traceSample, c.slowQuery = 0, 0 }
}

// WithMemtableSize sets how many Adds accumulate in the mutable
// memtable before it is sealed into a frozen segment (default 256).
// Sealing is the only inline compaction work the Add path ever does —
// O(memtable), amortized O(1) per Add; folding segments together
// happens on a background goroutine. Larger values batch more Adds per
// segment (fewer files under durability) at the cost of a larger
// memtable clone on snapshot publication.
func WithMemtableSize(items int) Option { return func(c *config) { c.memtable = items } }

// WithReranking enables the quantized re-ranking stage: Build trains a
// product-quantization codebook over the corpus (m subspaces of k
// centroids each; every item stores m code bytes), and each query
// scores its gathered candidates through a per-query ADC lookup table
// first, keeping only the best factor×k for exact distance evaluation.
// With a candidate budget far above k this trades a ≤1% recall dip for
// a large evaluation-cost cut: candidates cost m table lookups instead
// of a dim-float L2. Zero values pick defaults: m=8 (clamped to dim),
// k=256 (clamped to n), factor=8. Off by default; when off, behavior
// and persisted bytes are identical to an index built without it.
func WithReranking(m, k, factor int) Option {
	return func(c *config) { c.rerank, c.rerankM, c.rerankK, c.rerankFactor = true, m, k, factor }
}

// WithOPQRotation upgrades WithReranking's quantizer to optimized
// product quantization: a learned orthogonal rotation (Procrustes
// iterations) is applied before subspace quantization, cutting code
// distortion when coordinates are correlated. Costs one dim×dim
// rotation per encoded item and per query; requires WithReranking.
func WithOPQRotation() Option { return func(c *config) { c.opq = true } }

// WithoutAddWAL disables the write-ahead log when durability is enabled
// (EnableDurability / Recover): Adds are acknowledged without an fsync
// and are durable only once their segment file is written. Use it when
// ingest throughput matters more than the last partial memtable of
// Adds surviving a crash.
func WithoutAddWAL() Option { return func(c *config) { c.walOff = true } }

// searchConfig collects Search options.
type searchConfig struct {
	maxCandidates int
	maxBuckets    int
	earlyStop     bool
	radius        float64
	profile       bool
	tagMask       uint64
	filter        func(id int, meta uint64) bool
}

// SearchOption configures one Search call.
type SearchOption func(*searchConfig)

// WithMaxCandidates bounds the number of items evaluated — the paper's
// N parameter and the main recall/latency knob. Zero (the default)
// means unbounded: the search degenerates to an exact (but slow) scan.
func WithMaxCandidates(n int) SearchOption { return func(c *searchConfig) { c.maxCandidates = n } }

// WithMaxBuckets bounds the number of buckets generated instead of (or
// in addition to) the candidate bound.
func WithMaxBuckets(n int) SearchOption { return func(c *searchConfig) { c.maxBuckets = n } }

// WithEarlyStop enables the QD lower-bound termination rule (§4.1 of
// the paper): probing stops once no unseen bucket can contain a closer
// item than the current k-th candidate. Only effective for QD querying
// methods (GQR, QR) on projection learners; it never changes results,
// only prunes work.
func WithEarlyStop() SearchOption { return func(c *searchConfig) { c.earlyStop = true } }

// WithRadius turns the search into a bounded-radius query: only
// neighbors within the given Euclidean distance are returned (still at
// most k of them). For QD querying methods on projection learners the
// §4.1 threshold rule additionally stops probing once no unseen bucket
// can contain an in-radius item, making the search exact without a
// candidate budget.
func WithRadius(r float64) SearchOption { return func(c *searchConfig) { c.radius = r } }

// WithTagMask keeps only items whose metadata word contains every bit
// of mask (meta&mask == mask). The test is pushed into the gather loop
// — an AND and a compare per gathered id, before any distance is
// computed — so it is the cheap path for tag-style predicates; use
// WithFilter for arbitrary ones. Items added without metadata have a
// zero word and match only the zero mask.
func WithTagMask(mask uint64) SearchOption { return func(c *searchConfig) { c.tagMask = mask } }

// WithFilter keeps only items the predicate accepts, given their id and
// metadata word (zero when the item has none). The predicate runs in
// the gather loop before evaluation — rejected items never cost a
// distance computation — and may be called from multiple goroutines
// when searches run concurrently, so it must be safe for concurrent
// use and should be cheap. Combine with WithTagMask: the mask test runs
// first.
func WithFilter(f func(id int, meta uint64) bool) SearchOption {
	return func(c *searchConfig) { c.filter = f }
}

// withConfig replays an already-parsed searchConfig as a SearchOption.
// The sharded batch fan-out parses options once, rewraps the filter per
// shard (id translation), and hands each shard its copy through this.
func withConfig(sc searchConfig) SearchOption {
	return func(c *searchConfig) { *c = sc }
}

// WithProfile enables per-stage timing in the stats returned by
// SearchWithStats: SearchStats.RetrievalTime and EvaluationTime split
// the query between deciding which buckets to probe and computing exact
// distances (the paper's §2.2 decomposition). Costs two clock reads per
// bucket, so it is off by default; the work counters (buckets,
// candidates) are always populated.
func WithProfile() SearchOption { return func(c *searchConfig) { c.profile = true } }
