package gqr

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"gqr/internal/dataset"
)

// concurrencyData builds a small corpus for the stress tests.
func concurrencyData(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "conc", N: 2000, Dim: 16, Clusters: 8, LatentDim: 6, Seed: 97,
	})
	ds.SampleQueries(16, 98)
	return ds
}

// TestConcurrentAddSearchBatch hammers Add, Search, SearchWithStats,
// SearchBatch and Stats from many goroutines at once. Run under -race
// this is the regression test for the snapshot design: before it,
// SearchBatchWithStats workers read the index and method fields without
// the search mutex while Add mutated the bucket maps under it, a
// genuine data race (and Search serialized every caller besides).
func TestConcurrentAddSearchBatch(t *testing.T) {
	ds := concurrencyData(t)
	for _, m := range []QueryMethod{GQR, HR} {
		m := m
		t.Run(string(m), func(t *testing.T) {
			ix, err := Build(ds.Vectors, ds.Dim, WithQueryMethod(m), WithSeed(99))
			if err != nil {
				t.Fatal(err)
			}
			const (
				adders    = 2
				searchers = 4
				batchers  = 2
				rounds    = 50
			)
			var wg sync.WaitGroup
			for a := 0; a < adders; a++ {
				wg.Add(1)
				go func(a int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						if _, err := ix.Add(ds.Vector((a*rounds + i) % ds.N())); err != nil {
							t.Error(err)
							return
						}
					}
				}(a)
			}
			for s := 0; s < searchers; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					for i := 0; i < rounds; i++ {
						q := ds.Query((s + i) % ds.NQ())
						if s%2 == 0 {
							if _, err := ix.Search(q, 5, WithMaxCandidates(200)); err != nil {
								t.Error(err)
								return
							}
						} else {
							if _, _, err := ix.SearchWithStats(q, 5, WithMaxCandidates(200)); err != nil {
								t.Error(err)
								return
							}
						}
						_ = ix.Stats()
					}
				}(s)
			}
			for bt := 0; bt < batchers; bt++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					block := make([]float32, 0, 4*ds.Dim)
					for qi := 0; qi < 4; qi++ {
						block = append(block, ds.Query(qi)...)
					}
					for i := 0; i < rounds/2; i++ {
						results, err := ix.SearchBatchWithStats(block, 5, WithMaxCandidates(200))
						if err != nil {
							t.Error(err)
							return
						}
						for _, r := range results {
							if r.Err != nil {
								t.Error(r.Err)
								return
							}
						}
					}
				}()
			}
			wg.Wait()

			// Every added vector must be visible to a search issued after
			// all Adds returned (the refresh republishes the snapshot).
			st := ix.Stats()
			if st.Items != ds.N()+adders*rounds {
				t.Fatalf("Items = %d, want %d", st.Items, ds.N()+adders*rounds)
			}
			if _, err := ix.Search(ds.Query(0), 5, WithMaxCandidates(200)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestConcurrentShardedSearch fans concurrent queries and Stats over a
// sharded index while shard 0 absorbs Adds.
func TestConcurrentShardedSearch(t *testing.T) {
	ds := concurrencyData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 3, WithSeed(101))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if _, err := sharded.Search(ds.Query((s+i)%ds.NQ()), 5, WithMaxCandidates(100)); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			_ = sharded.Stats()
		}
	}()
	wg.Wait()
}

// TestShardedSearchErrorsJoined verifies that a fan-out failure reports
// every failing shard, not just the first one observed.
func TestShardedSearchErrorsJoined(t *testing.T) {
	ds := concurrencyData(t)
	sharded, err := BuildSharded(ds.Vectors, ds.Dim, 3, WithSeed(103))
	if err != nil {
		t.Fatal(err)
	}
	// k <= 0 fails inside every shard's searcher.
	_, _, err = sharded.SearchWithStats(ds.Query(0), 0)
	if err == nil {
		t.Fatal("k=0 must fail")
	}
	for _, want := range []string{"shard 0", "shard 1", "shard 2"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
	// errors.Join wrapping: the joined error must unwrap to multiple.
	var joined interface{ Unwrap() []error }
	if !errors.As(err, &joined) {
		t.Fatalf("error %T is not a joined error", err)
	}
	if got := len(joined.Unwrap()); got != 3 {
		t.Fatalf("joined %d errors, want 3", got)
	}
}

// TestAddVisibleToNextSearch pins the snapshot visibility contract: a
// Search issued after Add returns must see the added vector.
func TestAddVisibleToNextSearch(t *testing.T) {
	ds := concurrencyData(t)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(105))
	if err != nil {
		t.Fatal(err)
	}
	id, err := ix.Add(ds.Query(3))
	if err != nil {
		t.Fatal(err)
	}
	nbrs, err := ix.Search(ds.Query(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) == 0 || nbrs[0].ID != id || nbrs[0].Distance != 0 {
		t.Fatalf("added vector not visible to next search: %v", nbrs)
	}
}
