package gqr

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// corpusState is the oracle's book-keeping for a churned corpus: every
// vector ever added (by id — ids are never reused) and which ids are
// still live. It is the ground truth the index implementations are
// judged against.
type corpusState struct {
	dim  int
	vecs [][]float32 // vecs[id], including dead ids
	live []int       // live ids, ascending
	meta map[int]uint64
}

func newCorpusState(initial []float32, dim int) *corpusState {
	cs := &corpusState{dim: dim, meta: map[int]uint64{}}
	for i := 0; i+dim <= len(initial); i += dim {
		cs.vecs = append(cs.vecs, initial[i:i+dim])
		cs.live = append(cs.live, i/dim)
	}
	return cs
}

func (cs *corpusState) add(vec []float32, meta uint64) int {
	id := len(cs.vecs)
	cs.vecs = append(cs.vecs, vec)
	cs.live = append(cs.live, id)
	if meta != 0 {
		cs.meta[id] = meta
	}
	return id
}

func (cs *corpusState) delete(id int) {
	for i, v := range cs.live {
		if v == id {
			cs.live = append(cs.live[:i], cs.live[i+1:]...)
			return
		}
	}
}

// liveBlock returns the live vectors concatenated in id order — the
// build block for a from-scratch index over only the live corpus.
func (cs *corpusState) liveBlock() []float32 {
	out := make([]float32, 0, len(cs.live)*cs.dim)
	for _, id := range cs.live {
		out = append(out, cs.vecs[id]...)
	}
	return out
}

// bruteTopK returns the k smallest exact Euclidean distances from q to
// the live vectors.
func (cs *corpusState) bruteTopK(q []float32, k int) []float64 {
	dists := make([]float64, 0, len(cs.live))
	for _, id := range cs.live {
		var s float64
		for i, x := range q {
			d := float64(x) - float64(cs.vecs[id][i])
			s += d * d
		}
		dists = append(dists, math.Sqrt(s))
	}
	sort.Float64s(dists)
	if len(dists) > k {
		dists = dists[:k]
	}
	return dists
}

// gaussBlock returns n×dim Gaussian vectors from a fixed seed.
func gaussBlock(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n*dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// sameNeighbors fails unless both result lists are fully identical —
// same ids, bit-identical distances.
func sameNeighbors(t *testing.T, label string, got, want []Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d neighbors, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID || math.Float64bits(got[i].Distance) != math.Float64bits(want[i].Distance) {
			t.Fatalf("%s: rank %d: got {%d %.12f}, want {%d %.12f}",
				label, i, got[i].ID, got[i].Distance, want[i].ID, want[i].Distance)
		}
	}
}

// applyOp applies one random lifecycle operation to the tracked state
// and to every index under test, checking that all indexes agree on the
// assigned id.
func applyOp(t *testing.T, rng *rand.Rand, cs *corpusState, dim int, ixs ...*Index) {
	t.Helper()
	switch op := rng.Intn(10); {
	case op < 4 || len(cs.live) < 2: // add
		vec := make([]float32, dim)
		for i := range vec {
			vec[i] = float32(rng.NormFloat64())
		}
		meta := uint64(rng.Intn(4)) // sometimes zero: both slab paths
		wantID := cs.add(vec, meta)
		for _, ix := range ixs {
			id, err := ix.AddWithMeta(vec, meta)
			if err != nil {
				t.Fatal(err)
			}
			if id != wantID {
				t.Fatalf("add returned id %d, oracle expects %d", id, wantID)
			}
		}
	case op < 7: // delete
		id := cs.live[rng.Intn(len(cs.live))]
		cs.delete(id)
		for _, ix := range ixs {
			if err := ix.Delete(id); err != nil {
				t.Fatal(err)
			}
		}
	default: // update
		id := cs.live[rng.Intn(len(cs.live))]
		vec := make([]float32, dim)
		for i := range vec {
			vec[i] = float32(rng.NormFloat64())
		}
		meta := cs.meta[id]
		cs.delete(id)
		wantID := cs.add(vec, meta)
		for _, ix := range ixs {
			newID, err := ix.Update(id, vec)
			if err != nil {
				t.Fatal(err)
			}
			if newID != wantID {
				t.Fatalf("update returned id %d, oracle expects %d", newID, wantID)
			}
		}
	}
}

// checkOracle compares the subject against the reference index (full
// result identity, budgeted and unbudgeted), against exact brute force
// over the live corpus, and against a freshly built index over only the
// live vectors (identical distance profile — ids differ because the
// fresh index renumbers rows).
func checkOracle(t *testing.T, label string, cs *corpusState, queries []float32, dim, k int, subject, reference *Index) {
	t.Helper()
	st := subject.Stats()
	if st.LiveItems != len(cs.live) {
		t.Fatalf("%s: LiveItems = %d, oracle has %d", label, st.LiveItems, len(cs.live))
	}
	if st.Items != len(cs.vecs) {
		t.Fatalf("%s: Items = %d, oracle allocated %d ids", label, st.Items, len(cs.vecs))
	}
	dead := make(map[int]bool, len(cs.vecs)-len(cs.live))
	for id := range cs.vecs {
		dead[id] = true
	}
	for _, id := range cs.live {
		delete(dead, id)
	}
	for qi := 0; qi+dim <= len(queries); qi += dim {
		q := queries[qi : qi+dim]
		got, err := subject.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := reference.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, label+": subject vs reference (unbudgeted)", got, want)
		for _, nb := range got {
			if dead[nb.ID] {
				t.Fatalf("%s: deleted id %d returned", label, nb.ID)
			}
		}
		// Unbudgeted search is a full probe, so its distances must equal
		// exact brute force over the live corpus.
		brute := cs.bruteTopK(q, k)
		if len(got) != len(brute) {
			t.Fatalf("%s: %d neighbors, brute force has %d", label, len(got), len(brute))
		}
		for i := range got {
			// Tolerance, not bit equality: the evaluation kernel and this
			// naive loop accumulate in different orders.
			if d := math.Abs(got[i].Distance - brute[i]); d > 1e-9 {
				t.Fatalf("%s: rank %d distance %.12f, brute force %.12f", label, i, got[i].Distance, brute[i])
			}
		}
		// Budgeted: subject and reference walk the same probe sequence
		// over the same buckets, so the truncated gather agrees too.
		gotB, err := subject.Search(q, k, WithMaxCandidates(120))
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := reference.Search(q, k, WithMaxCandidates(120))
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, label+": subject vs reference (budget 120)", gotB, wantB)
		for _, nb := range gotB {
			if dead[nb.ID] {
				t.Fatalf("%s: deleted id %d returned under budget", label, nb.ID)
			}
		}
	}
	// A from-scratch build over only the live vectors trains its own
	// hashers (different buckets, renumbered ids) but a full probe is
	// exact for it too: the distance profiles must be bit-identical.
	fresh, err := Build(cs.liveBlock(), dim, WithSeed(997))
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi+dim <= len(queries); qi += dim {
		q := queries[qi : qi+dim]
		got, err := subject.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d neighbors, fresh build returns %d", label, len(got), len(want))
		}
		for i := range got {
			if d := math.Abs(got[i].Distance - want[i].Distance); d > 1e-9 {
				t.Fatalf("%s: rank %d: churned %.12f vs fresh build %.12f", label, i, got[i].Distance, want[i].Distance)
			}
		}
	}
}

// TestLifecycleOracleChurn is the lifecycle oracle: for every querying
// method, a subject index churned through random Add/Delete/Update
// interleavings — with seals, background merges and inline compactions
// along the way — must return exactly the same results as a reference
// index that saw the same operations but never sealed (everything in
// one giant memtable), as exact brute force over the live vectors, and
// (by distance) as a fresh build over only the live corpus.
func TestLifecycleOracleChurn(t *testing.T) {
	const (
		dim, baseN = 8, 400
		ops        = 240
		k          = 8
	)
	base := gaussBlock(baseN, dim, 51)
	queries := gaussBlock(6, dim, 52)
	for _, method := range []QueryMethod{GQR, QR, HR, GHR, MIH} {
		t.Run(string(method), func(t *testing.T) {
			subject, err := Build(base, dim, WithSeed(53), WithQueryMethod(method), WithMemtableSize(32))
			if err != nil {
				t.Fatal(err)
			}
			reference, err := Build(base, dim, WithSeed(53), WithQueryMethod(method), WithMemtableSize(1<<20))
			if err != nil {
				t.Fatal(err)
			}
			cs := newCorpusState(base, dim)
			rng := rand.New(rand.NewSource(54))
			for i := 0; i < ops; i++ {
				applyOp(t, rng, cs, dim, subject, reference)
				if i%80 == 79 {
					if err := subject.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			checkOracle(t, string(method)+"/churned", cs, queries, dim, k, subject, reference)
			if st := subject.Stats(); st.Seals == 0 {
				t.Fatalf("no seals after %d ops at memtable 32", ops)
			}
			// Compaction purges every pending tombstone and must not
			// change a single result.
			if err := subject.Compact(); err != nil {
				t.Fatal(err)
			}
			if st := subject.Stats(); st.PendingTombstones != 0 {
				t.Fatalf("%d tombstones still pending after Compact", st.PendingTombstones)
			}
			checkOracle(t, string(method)+"/compacted", cs, queries, dim, k, subject, reference)
		})
	}
}

// TestLifecycleDurableCrashOracle interleaves crash-recovery with the
// churn: the durable subject is abandoned mid-sequence (no Close) and
// recovered from its data directory twice; each recovered incarnation
// continues the same operation stream and must stay bit-identical to
// the never-crashed in-memory reference throughout.
func TestLifecycleDurableCrashOracle(t *testing.T) {
	const (
		dim, baseN = 8, 300
		k          = 8
	)
	base := gaussBlock(baseN, dim, 61)
	queries := gaussBlock(5, dim, 62)
	dir := t.TempDir()

	subject, err := Build(base, dim, WithSeed(63), WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := subject.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	reference, err := Build(base, dim, WithSeed(63), WithMemtableSize(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	cs := newCorpusState(base, dim)
	rng := rand.New(rand.NewSource(64))
	for round := 0; round < 3; round++ {
		for i := 0; i < 60; i++ {
			applyOp(t, rng, cs, dim, subject, reference)
		}
		if round == 2 {
			break
		}
		// Crash: quiesce background persists so the directory is stable,
		// then abandon the index without Close and recover. The replayed
		// WAL holds add, delete and update (add+delete) frames from the
		// operations since the last seal.
		if err := subject.Compact(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			applyOp(t, rng, cs, dim, subject, reference)
		}
		want := saveBytes(t, subject)
		subject, err = Recover(dir, base, dim, WithMemtableSize(32))
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if got := saveBytes(t, subject); !bytes.Equal(got, want) {
			t.Fatalf("round %d: recovered index is not bit-identical to the crashed one", round)
		}
	}
	checkOracle(t, "crash-churned", cs, queries, dim, k, subject, reference)
	if err := subject.Close(); err != nil {
		t.Fatal(err)
	}
	// A final recovery after the graceful Close replays nothing and
	// still agrees with the reference.
	rec, err := Recover(dir, base, dim, WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	checkOracle(t, "recovered", cs, queries, dim, k, rec, reference)
}

// TestLifecycleDeleteSemantics pins the Delete contract: tombstoned
// items vanish from results, ids are never reused, and unknown or
// double deletes fail with ErrNotFound.
func TestLifecycleDeleteSemantics(t *testing.T) {
	const dim, n = 6, 80
	vecs := gaussBlock(n, dim, 71)
	ix, err := Build(vecs, dim, WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	victim := 17
	if err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// The deleted item's own vector no longer finds it.
	nbrs, err := ix.Search(vecs[victim*dim:(victim+1)*dim], 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range nbrs {
		if nb.ID == victim {
			t.Fatalf("deleted id %d still returned", victim)
		}
	}
	st := ix.Stats()
	if st.LiveItems != n-1 || st.Tombstones != 1 || st.Deletes != 1 {
		t.Fatalf("stats after one delete: live=%d tombstones=%d deletes=%d", st.LiveItems, st.Tombstones, st.Deletes)
	}
	for _, bad := range []int{victim, -1, n, n + 100} {
		if err := ix.Delete(bad); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Delete(%d) = %v, want ErrNotFound", bad, err)
		}
	}
	// A new Add allocates a fresh id past the tombstone — never reuse.
	id, err := ix.Add(vecs[:dim])
	if err != nil {
		t.Fatal(err)
	}
	if id != n {
		t.Fatalf("Add after delete returned id %d, want %d", id, n)
	}
}

// TestLifecycleUpdateSemantics pins the Update contract: wrong
// dimension fails with ErrDimension before anything is applied, unknown
// ids fail with ErrNotFound, and a successful update moves the item to
// a new id while keeping its metadata word.
func TestLifecycleUpdateSemantics(t *testing.T) {
	const dim, n = 6, 60
	vecs := gaussBlock(n, dim, 73)
	ix, err := Build(vecs, dim, WithSeed(74))
	if err != nil {
		t.Fatal(err)
	}
	tagged, err := ix.AddWithMeta(gaussBlock(1, dim, 75), 0b100)
	if err != nil {
		t.Fatal(err)
	}
	before := ix.Stats()
	if _, err := ix.Update(tagged, vecs[:dim-1]); !errors.Is(err, ErrDimension) {
		t.Fatalf("short vector: %v, want ErrDimension", err)
	}
	if _, err := ix.Update(n+50, vecs[:dim]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
	if after := ix.Stats(); after.Items != before.Items || after.Tombstones != before.Tombstones {
		t.Fatal("failed Update mutated the index")
	}
	repl := gaussBlock(1, dim, 76)
	newID, err := ix.Update(tagged, repl)
	if err != nil {
		t.Fatal(err)
	}
	if newID != n+1 {
		t.Fatalf("update returned id %d, want %d", newID, n+1)
	}
	if _, err := ix.Update(tagged, repl); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update of the old id after Update: %v, want ErrNotFound", err)
	}
	// The replacement vector is found at its new id, distance zero, and
	// kept the metadata word — the tag-mask search still matches it.
	nbrs, err := ix.Search(repl, 1, WithTagMask(0b100))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 || nbrs[0].ID != newID || nbrs[0].Distance != 0 {
		t.Fatalf("updated item not found under its tag: %+v", nbrs)
	}
}

// TestLifecycleCompactCanonicalForm pins "compaction = canonical form":
// Save always streams the purged view, so the persisted bytes are a
// fixpoint of Compact — identical before and after the purge, identical
// to an index that saw the same operations without any LSM churn, and
// identical again after a save/load round trip.
func TestLifecycleCompactCanonicalForm(t *testing.T) {
	const dim, baseN, addN = 6, 200, 90
	base := gaussBlock(baseN, dim, 81)
	adds := gaussBlock(addN, dim, 82)

	subject, err := Build(base, dim, WithSeed(83), WithMemtableSize(16))
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Build(base, dim, WithSeed(83), WithMemtableSize(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addN; i++ {
		vec := adds[i*dim : (i+1)*dim]
		if _, err := subject.Add(vec); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.Add(vec); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(84))
	for _, id := range rng.Perm(baseN + addN)[:40] {
		if err := subject.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := reference.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	saveBefore := saveBytes(t, subject)
	if err := subject.Compact(); err != nil {
		t.Fatal(err)
	}
	st := subject.Stats()
	if st.PendingTombstones != 0 {
		t.Fatalf("%d tombstones pending after Compact", st.PendingTombstones)
	}
	if st.Tombstones != 40 {
		t.Fatalf("Compact lost tombstones: %d, want 40", st.Tombstones)
	}
	saveAfter := saveBytes(t, subject)
	if !bytes.Equal(saveBefore, saveAfter) {
		t.Fatal("Compact changed the persisted bytes: Save is not the canonical form")
	}
	if got := saveBytes(t, reference); !bytes.Equal(got, saveAfter) {
		t.Fatal("churned index's canonical bytes differ from the unchurned reference")
	}
	grown := append(append([]float32{}, base...), adds...)
	loaded, err := Load(bytes.NewReader(saveAfter), grown, dim)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, loaded); !bytes.Equal(got, saveAfter) {
		t.Fatal("save/load round trip is not a fixpoint")
	}
	if got := loaded.Stats(); got.LiveItems != st.LiveItems || got.Tombstones != st.Tombstones {
		t.Fatalf("round trip lost lifecycle state: live=%d tombstones=%d", got.LiveItems, got.Tombstones)
	}
}

// TestLifecycleFilterAndTagMask pins the filtered-search contract: the
// gather loop drops non-matching items before evaluation (they show up
// in Filtered, never in Candidates), and an unbudgeted filtered search
// is exact over the matching subset.
func TestLifecycleFilterAndTagMask(t *testing.T) {
	const dim, n = 6, 120
	vecs := gaussBlock(n, dim, 91)
	ix, err := Build(vecs, dim, WithSeed(92))
	if err != nil {
		t.Fatal(err)
	}
	meta := make([]uint64, n)
	for i := range meta {
		meta[i] = 1 << uint(i%4)
	}
	if err := ix.SetMetadata(meta); err != nil {
		t.Fatal(err)
	}
	q := gaussBlock(1, dim, 93)
	const mask = uint64(0b0100) // items with i%4 == 2
	nbrs, st, err := ix.SearchWithStats(q, 10, WithTagMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	if st.Filtered == 0 {
		t.Fatal("tag mask filtered nothing")
	}
	for _, nb := range nbrs {
		if nb.ID%4 != 2 {
			t.Fatalf("id %d leaked through mask %b", nb.ID, mask)
		}
	}
	// The same subset via WithFilter must give identical results.
	viaFilter, st2, err := ix.SearchWithStats(q, 10, WithFilter(func(id int, m uint64) bool {
		return m&mask != 0
	}))
	if err != nil {
		t.Fatal(err)
	}
	sameNeighbors(t, "tag mask vs predicate", viaFilter, nbrs)
	if st2.Filtered != st.Filtered || st2.Candidates != st.Candidates {
		t.Fatalf("mask and predicate did different work: %+v vs %+v", st, st2)
	}
	// Filtered items never cost a distance computation.
	if st.Candidates != len(pickTagged(n, 2)) {
		t.Fatalf("candidates = %d, matching subset has %d items", st.Candidates, len(pickTagged(n, 2)))
	}
	// Deleting a matching item removes it from filtered results too.
	victim := nbrs[0].ID
	if err := ix.Delete(victim); err != nil {
		t.Fatal(err)
	}
	after, err := ix.Search(q, 10, WithTagMask(mask))
	if err != nil {
		t.Fatal(err)
	}
	for _, nb := range after {
		if nb.ID == victim {
			t.Fatalf("deleted id %d returned from filtered search", victim)
		}
	}
}

func pickTagged(n, residue int) []int {
	var out []int
	for i := 0; i < n; i++ {
		if i%4 == residue {
			out = append(out, i)
		}
	}
	return out
}

// TestLifecycleShardedDeleteAndFilter pins the sharded surface: deletes
// route to the owning shard by global id, filters see global ids, and
// fan-out results never contain a deleted item.
func TestLifecycleShardedDeleteAndFilter(t *testing.T) {
	const dim, n, shards = 6, 90, 3
	vecs := gaussBlock(n, dim, 95)
	s, err := BuildSharded(vecs, dim, shards, WithSeed(96))
	if err != nil {
		t.Fatal(err)
	}
	// One victim per shard: first id of each shard's range.
	victims := []int{0, 30, 60}
	for _, id := range victims {
		if err := s.Delete(id); err != nil {
			t.Fatalf("Delete(%d): %v", id, err)
		}
	}
	for _, bad := range []int{-1, n + 5} {
		if err := s.Delete(bad); !errors.Is(err, ErrNotFound) {
			t.Fatalf("Delete(%d) = %v, want ErrNotFound", bad, err)
		}
	}
	if err := s.Delete(victims[1]); !errors.Is(err, ErrNotFound) {
		t.Fatal("double sharded delete must return ErrNotFound")
	}
	perShard := s.Stats()
	if len(perShard) != shards {
		t.Fatalf("%d shard stats", len(perShard))
	}
	for i, st := range perShard {
		if st.Tombstones != 1 {
			t.Fatalf("shard %d has %d tombstones, want 1", i, st.Tombstones)
		}
	}
	for _, id := range victims {
		nbrs, err := s.Search(vecs[id*dim:(id+1)*dim], 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range nbrs {
			if nb.ID == id {
				t.Fatalf("deleted id %d returned from fan-out", id)
			}
		}
	}
	// The filter predicate must observe global ids: restrict results to
	// the last shard's range and check nothing else leaks through.
	nbrs, err := s.Search(vecs[:dim], n, WithFilter(func(id int, _ uint64) bool {
		return id >= 60
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) == 0 {
		t.Fatal("global-id filter matched nothing")
	}
	for _, nb := range nbrs {
		if nb.ID < 60 {
			t.Fatalf("filter saw shard-local ids: got id %d", nb.ID)
		}
	}
}
