package gqr

import (
	"bytes"
	"math/rand"
	"testing"
)

// rerankOracleBuild builds the 5-method oracle corpus with the given
// extra options on top of the fixed seed.
func rerankOracleBuild(t *testing.T, vecs []float32, dim int, method QueryMethod, extra ...Option) *Index {
	t.Helper()
	opts := append([]Option{WithSeed(53), WithQueryMethod(method)}, extra...)
	ix, err := Build(vecs, dim, opts...)
	if err != nil {
		t.Fatalf("%s: %v", method, err)
	}
	return ix
}

// TestRerankWideFactorMatchesPlain is the result-equality oracle for
// the re-ranking stage: when the widened ADC heap is large enough to
// hold every gathered candidate (factor·k ≥ budget), the exact stage
// sees the same candidate set as a plain search, so results must be
// bit-identical to a build without re-ranking — for all five querying
// methods. This pins both the ADC stage's losslessness at full width
// and the code column's id alignment.
func TestRerankWideFactorMatchesPlain(t *testing.T) {
	const dim, n, k, budget = 12, 1500, 5, 400
	vecs := gaussBlock(n, dim, 101)
	queries := gaussBlock(8, dim, 102)
	for _, method := range []QueryMethod{GQR, QR, HR, GHR, MIH} {
		t.Run(string(method), func(t *testing.T) {
			plain := rerankOracleBuild(t, vecs, dim, method)
			// factor·k = 400 ≥ budget, so no candidate is dropped by ADC.
			wide := rerankOracleBuild(t, vecs, dim, method, WithReranking(4, 64, budget/k))
			for qi := 0; qi < 8; qi++ {
				q := queries[qi*dim : (qi+1)*dim]
				want, err := plain.Search(q, k, WithMaxCandidates(budget))
				if err != nil {
					t.Fatal(err)
				}
				got, st, err := wide.SearchWithStats(q, k, WithMaxCandidates(budget))
				if err != nil {
					t.Fatal(err)
				}
				sameNeighbors(t, "wide-factor rerank vs plain", got, want)
				if st.ADCScored == 0 || st.Reranked == 0 {
					t.Fatalf("rerank stage did not run: %+v", st)
				}
				if st.Reranked > st.ADCScored {
					t.Fatalf("more survivors than scored: %+v", st)
				}
			}
		})
	}
}

// TestRerankDisabledIsUnchanged extends the equality oracle in the
// other direction: a build without WithReranking must behave exactly
// like one that never had the feature — no quantizer in stats, no ADC
// work counted, and (the real gate, checked against the plain build
// twin) identical results.
func TestRerankDisabledIsUnchanged(t *testing.T) {
	const dim, n, k = 12, 800, 5
	vecs := gaussBlock(n, dim, 103)
	q := gaussBlock(1, dim, 104)
	ix, err := Build(vecs, dim, WithSeed(53))
	if err != nil {
		t.Fatal(err)
	}
	nbrs, st, err := ix.SearchWithStats(q, k, WithMaxCandidates(200))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != k {
		t.Fatalf("%d neighbors, want %d", len(nbrs), k)
	}
	if st.ADCScored != 0 || st.Reranked != 0 {
		t.Fatalf("disabled build counted rerank work: %+v", st)
	}
	s := ix.Stats()
	if s.RerankM != 0 || s.RerankK != 0 || s.RerankFactor != 0 || s.OPQRotation {
		t.Fatalf("disabled build reports quantizer config: %+v", s)
	}
}

// TestRerankStatsAndConfig pins the observable surface: Stats reports
// the trained quantizer's shape (with defaults applied), search stats
// count ADC-scored candidates and survivors, and the survivor count is
// bounded by factor·k.
func TestRerankStatsAndConfig(t *testing.T) {
	const dim, n, k = 16, 1200, 10
	vecs := gaussBlock(n, dim, 105)
	q := gaussBlock(1, dim, 106)
	ix, err := Build(vecs, dim, WithSeed(53), WithReranking(0, 0, 0), WithOPQRotation())
	if err != nil {
		t.Fatal(err)
	}
	s := ix.Stats()
	if s.RerankM != 8 || s.RerankK != 256 || s.RerankFactor != 8 || !s.OPQRotation {
		t.Fatalf("defaulted quantizer config: m=%d k=%d factor=%d opq=%v",
			s.RerankM, s.RerankK, s.RerankFactor, s.OPQRotation)
	}
	nbrs, st, err := ix.SearchWithStats(q, k, WithMaxCandidates(600))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != k {
		t.Fatalf("%d neighbors, want %d", len(nbrs), k)
	}
	if st.ADCScored < st.Candidates-st.Filtered || st.ADCScored == 0 {
		t.Fatalf("ADCScored %d vs candidates %d", st.ADCScored, st.Candidates)
	}
	if st.Reranked == 0 || st.Reranked > s.RerankFactor*k {
		t.Fatalf("Reranked %d outside (0, %d]", st.Reranked, s.RerankFactor*k)
	}
}

// TestRerankOptionValidation pins the config error paths.
func TestRerankOptionValidation(t *testing.T) {
	vecs := gaussBlock(50, 8, 107)
	if _, err := Build(vecs, 8, WithOPQRotation()); err == nil {
		t.Fatal("WithOPQRotation without WithReranking accepted")
	}
	if _, err := Build(vecs, 8, WithReranking(-1, 0, 0)); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, err := Build(vecs, 8, WithReranking(0, 300, 0)); err == nil {
		t.Fatal("k above one-byte limit accepted")
	}
	if _, err := Build(vecs, 8, WithReranking(0, 0, -2)); err == nil {
		t.Fatal("negative factor accepted")
	}
}

// TestRerankLifecycleOracleChurn is the lifecycle oracle with the
// quantized stage enabled: a churned subject (small memtable, seals,
// background merges, inline compactions) must stay bit-identical to a
// reference that saw the same operations in one giant memtable. Both
// share the build-time quantizer, and per-add encoding plus the purge
// paths must keep codes id-aligned — any drift shows up as diverging
// ADC scores and therefore diverging results.
func TestRerankLifecycleOracleChurn(t *testing.T) {
	const (
		dim, baseN = 8, 400
		ops        = 240
		k          = 8
	)
	base := gaussBlock(baseN, dim, 51)
	queries := gaussBlock(6, dim, 52)
	rerank := WithReranking(4, 64, 4)
	for _, method := range []QueryMethod{GQR, MIH} {
		t.Run(string(method), func(t *testing.T) {
			subject, err := Build(base, dim, WithSeed(53), WithQueryMethod(method), WithMemtableSize(32), rerank)
			if err != nil {
				t.Fatal(err)
			}
			reference, err := Build(base, dim, WithSeed(53), WithQueryMethod(method), WithMemtableSize(1<<20), rerank)
			if err != nil {
				t.Fatal(err)
			}
			cs := newCorpusState(base, dim)
			rng := rand.New(rand.NewSource(54))
			for i := 0; i < ops; i++ {
				applyOp(t, rng, cs, dim, subject, reference)
				if i%80 == 79 {
					if err := subject.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
			if err := subject.Compact(); err != nil {
				t.Fatal(err)
			}
			if st := subject.Stats(); st.Seals == 0 || st.PendingTombstones != 0 {
				t.Fatalf("churn did not exercise the LSM: %+v", st)
			}
			checkRerankOracle(t, string(method), cs, queries, dim, k, subject, reference)
		})
	}
}

// checkRerankOracle compares subject and reference searches (budgeted
// and unbudgeted) under re-ranking: full bit-identity, no dead ids.
// Unlike checkOracle it does not compare against brute force — the
// quantized stage is approximate by design.
func checkRerankOracle(t *testing.T, label string, cs *corpusState, queries []float32, dim, k int, subject, reference *Index) {
	t.Helper()
	if st := subject.Stats(); st.LiveItems != len(cs.live) {
		t.Fatalf("%s: LiveItems = %d, oracle has %d", label, st.LiveItems, len(cs.live))
	}
	dead := make(map[int]bool)
	for id := range cs.vecs {
		dead[id] = true
	}
	for _, id := range cs.live {
		delete(dead, id)
	}
	for qi := 0; qi+dim <= len(queries); qi += dim {
		q := queries[qi : qi+dim]
		for _, budget := range []int{0, 120} {
			var opts []SearchOption
			if budget > 0 {
				opts = append(opts, WithMaxCandidates(budget))
			}
			got, gotSt, err := subject.SearchWithStats(q, k, opts...)
			if err != nil {
				t.Fatal(err)
			}
			want, wantSt, err := reference.SearchWithStats(q, k, opts...)
			if err != nil {
				t.Fatal(err)
			}
			sameNeighbors(t, label+": churned vs reference", got, want)
			if gotSt.ADCScored != wantSt.ADCScored || gotSt.Reranked != wantSt.Reranked {
				t.Fatalf("%s: rerank work diverged: %+v vs %+v", label, gotSt, wantSt)
			}
			if gotSt.ADCScored == 0 {
				t.Fatalf("%s: rerank stage did not run", label)
			}
			for _, nb := range got {
				if dead[nb.ID] {
					t.Fatalf("%s: deleted id %d returned", label, nb.ID)
				}
			}
		}
	}
}

// TestRerankSaveLoadCanonicalForm pins persistence of the quantized
// column through the LSM: Save is a fixpoint of Compact, the churned
// index's canonical bytes match the unchurned twin, and a save/load
// round trip preserves the quantizer, the serving factor and every
// result bit-for-bit.
func TestRerankSaveLoadCanonicalForm(t *testing.T) {
	const dim, baseN, addN, k = 8, 200, 90, 6
	base := gaussBlock(baseN, dim, 81)
	adds := gaussBlock(addN, dim, 82)
	queries := gaussBlock(4, dim, 85)
	rerank := WithReranking(4, 32, 3)

	subject, err := Build(base, dim, WithSeed(83), WithMemtableSize(16), rerank)
	if err != nil {
		t.Fatal(err)
	}
	reference, err := Build(base, dim, WithSeed(83), WithMemtableSize(1<<20), rerank)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addN; i++ {
		vec := adds[i*dim : (i+1)*dim]
		if _, err := subject.Add(vec); err != nil {
			t.Fatal(err)
		}
		if _, err := reference.Add(vec); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(84))
	for _, id := range rng.Perm(baseN + addN)[:40] {
		if err := subject.Delete(id); err != nil {
			t.Fatal(err)
		}
		if err := reference.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	saveBefore := saveBytes(t, subject)
	if err := subject.Compact(); err != nil {
		t.Fatal(err)
	}
	saveAfter := saveBytes(t, subject)
	if !bytes.Equal(saveBefore, saveAfter) {
		t.Fatal("Compact changed the persisted bytes under re-ranking")
	}
	if got := saveBytes(t, reference); !bytes.Equal(got, saveAfter) {
		t.Fatal("churned canonical bytes differ from the unchurned reference")
	}
	grown := append(append([]float32{}, base...), adds...)
	loaded, err := Load(bytes.NewReader(saveAfter), grown, dim)
	if err != nil {
		t.Fatal(err)
	}
	if got := saveBytes(t, loaded); !bytes.Equal(got, saveAfter) {
		t.Fatal("save/load round trip is not a fixpoint under re-ranking")
	}
	ls := loaded.Stats()
	if ls.RerankM != 4 || ls.RerankK != 32 || ls.RerankFactor != 3 || ls.OPQRotation {
		t.Fatalf("round trip lost quantizer config: %+v", ls)
	}
	for qi := 0; qi < 4; qi++ {
		q := queries[qi*dim : (qi+1)*dim]
		want, err := subject.Search(q, k, WithMaxCandidates(150))
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Search(q, k, WithMaxCandidates(150))
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, "loaded vs saved", got, want)
	}
}

// TestRerankCrashRecovery churns a durable re-ranked index, abandons it
// without Close, and recovers from the data directory: the recovered
// incarnation must be bit-identical (persisted bytes and results) to
// the crashed one, proving WAL replay re-encodes codes and the segment
// sidecar carries the code column across the crash boundary.
func TestRerankCrashRecovery(t *testing.T) {
	const dim, baseN, k = 8, 300, 6
	base := gaussBlock(baseN, dim, 61)
	queries := gaussBlock(5, dim, 62)
	dir := t.TempDir()
	rerank := WithReranking(4, 32, 4)

	subject, err := Build(base, dim, WithSeed(63), WithMemtableSize(32), rerank)
	if err != nil {
		t.Fatal(err)
	}
	if err := subject.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	reference, err := Build(base, dim, WithSeed(63), WithMemtableSize(1<<20), rerank)
	if err != nil {
		t.Fatal(err)
	}
	cs := newCorpusState(base, dim)
	rng := rand.New(rand.NewSource(64))
	for round := 0; round < 2; round++ {
		for i := 0; i < 60; i++ {
			applyOp(t, rng, cs, dim, subject, reference)
		}
		if err := subject.Compact(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			applyOp(t, rng, cs, dim, subject, reference)
		}
		want := saveBytes(t, subject)
		subject, err = Recover(dir, base, dim, WithMemtableSize(32))
		if err != nil {
			t.Fatalf("round %d: recover: %v", round, err)
		}
		if got := saveBytes(t, subject); !bytes.Equal(got, want) {
			t.Fatalf("round %d: recovered re-ranked index differs from the crashed one", round)
		}
	}
	checkRerankOracle(t, "crash-churned", cs, queries, dim, k, subject, reference)
	if err := subject.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRerankSearchAllocs is the public-API allocation gate: Search
// stays within the documented bound with re-ranking off and on (the
// steady state reuses the ADC table, the flat scoring buffers and the
// survivor scratch).
func TestRerankSearchAllocs(t *testing.T) {
	if raceEnabled {
		// The race runtime randomly drops sync.Pool puts (to surface
		// reuse races), so the pooled searcher scratch re-allocates
		// nondeterministically and AllocsPerRun is meaningless here.
		t.Skip("allocation counts are nondeterministic under -race")
	}
	const dim, n, k = 16, 2000, 10
	vecs := gaussBlock(n, dim, 111)
	q := gaussBlock(1, dim, 112)
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"plain", nil},
		{"rerank", []Option{WithReranking(8, 64, 4)}},
		{"opq", []Option{WithReranking(8, 64, 4), WithOPQRotation()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ix, err := Build(vecs, dim, append([]Option{WithSeed(113)}, tc.opts...)...)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ix.Search(q, k, WithMaxCandidates(500)); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := ix.Search(q, k, WithMaxCandidates(500)); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 4 {
				t.Fatalf("Search allocates %.1f/op, budget is 4", allocs)
			}
		})
	}
}
