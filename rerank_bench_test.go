package gqr

// Benchmarks behind the PR 9 acceptance gate: public Search with the
// quantized re-ranking stage enabled must beat the plain
// evaluation-heavy budget-1000 configs (BENCH_PR6) while staying
// within the public-API allocation budget. The plain/rerank pairs run
// on the same corpus and operating point as BenchmarkSearch*Budget1000
// so the ns/op deltas isolate the serving-path change.

import (
	"fmt"
	"testing"

	"gqr/internal/dataset"
)

func rerankBenchIndex(b *testing.B, extra ...Option) (*Index, *dataset.Dataset) {
	b.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "bench", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17,
	})
	ds.SampleQueries(64, 18)
	opts := append([]Option{WithSeed(19)}, extra...)
	ix, err := Build(ds.Vectors, ds.Dim, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds
}

func benchRerankSearch(b *testing.B, extra ...Option) {
	ix, ds := rerankBenchIndex(b, extra...)
	if _, err := ix.Search(ds.Query(0), 10, WithMaxCandidates(1000)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Query(i % ds.NQ())
		if _, err := ix.Search(q, 10, WithMaxCandidates(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRerankSearch pairs each query method's plain budget-1000
// Search against the same build with re-ranking at defaults (m=8,
// K=256, factor=8). The rerank rows are the numbers recorded in
// BENCH_PR9.json's sweep at the matched operating point.
func BenchmarkRerankSearch(b *testing.B) {
	for _, m := range []QueryMethod{HR, GHR, QR, GQR, MIH} {
		b.Run(fmt.Sprintf("%s/plain", m), func(b *testing.B) {
			benchRerankSearch(b, WithQueryMethod(m))
		})
		b.Run(fmt.Sprintf("%s/rerank", m), func(b *testing.B) {
			benchRerankSearch(b, WithQueryMethod(m), WithReranking(8, 0, 8))
		})
	}
}

// BenchmarkRerankSearchOPQ measures the rotation's query-time cost on
// top of plain PQ re-ranking (one extra dim×dim mat-vec per query).
func BenchmarkRerankSearchOPQ(b *testing.B) {
	benchRerankSearch(b, WithReranking(8, 0, 8), WithOPQRotation())
}
