package gqr

// One testing.B benchmark per table and figure of the paper. Each bench
// drives the same experiment harness as cmd/gqr-bench, at a reduced
// corpus scale so `go test -bench=.` finishes in minutes; run
// `gqr-bench -experiment all -scale 1` for the full-scale numbers
// recorded in EXPERIMENTS.md. Caches are reset every iteration so ns/op
// reflects a full regeneration of the table or figure.

import (
	"fmt"
	"io"
	"testing"

	"gqr/internal/bench"
	"gqr/internal/dataset"
)

// benchOpts is the reduced scale used by the testing.B entry points.
var benchOpts = bench.RunOptions{
	Scale:   0.02,
	NQ:      10,
	K:       10,
	Budgets: []float64{0.01, 0.05, 0.2, 1.0},
}

// runExperiment executes one registered experiment b.N times.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bench.ResetCaches()
		if err := e.Run(benchOpts, io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkTable1LinearSearch(b *testing.B)  { runExperiment(b, "table1") }
func BenchmarkFig2BucketCounts(b *testing.B)    { runExperiment(b, "fig2") }
func BenchmarkFig4CodeLengthHR(b *testing.B)    { runExperiment(b, "fig4") }
func BenchmarkFig6GQRvsQR(b *testing.B)         { runExperiment(b, "fig6") }
func BenchmarkFig7GQRvsHR(b *testing.B)         { runExperiment(b, "fig7") }
func BenchmarkFig8RecallItems(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkFig9TimeToRecall(b *testing.B)    { runExperiment(b, "fig9") }
func BenchmarkFig10CodeLength(b *testing.B)     { runExperiment(b, "fig10") }
func BenchmarkFig11EffectOfK(b *testing.B)      { runExperiment(b, "fig11") }
func BenchmarkFig12MultiTable(b *testing.B)     { runExperiment(b, "fig12") }
func BenchmarkFig13PCAH(b *testing.B)           { runExperiment(b, "fig13") }
func BenchmarkFig14PCAHTime(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15SH(b *testing.B)             { runExperiment(b, "fig15") }
func BenchmarkFig16SHTime(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkFig17OPQ(b *testing.B)            { runExperiment(b, "fig17") }
func BenchmarkTable2TrainingCost(b *testing.B)  { runExperiment(b, "table2") }
func BenchmarkFig18MIH(b *testing.B)            { runExperiment(b, "fig18") }
func BenchmarkFig19MIHPCAH(b *testing.B)        { runExperiment(b, "fig19") }
func BenchmarkFig20KMH(b *testing.B)            { runExperiment(b, "fig20") }
func BenchmarkFig21Additional(b *testing.B)     { runExperiment(b, "fig21") }
func BenchmarkAblationHeap(b *testing.B)        { runExperiment(b, "abl-heap") }
func BenchmarkAblationSharedTree(b *testing.B)  { runExperiment(b, "abl-tree") }
func BenchmarkAblationCodePacking(b *testing.B) { runExperiment(b, "abl-pack") }
func BenchmarkAblationEarlyStop(b *testing.B)   { runExperiment(b, "abl-earlystop") }
func BenchmarkAblationMPLSH(b *testing.B)       { runExperiment(b, "abl-mplsh") }
func BenchmarkAblationLongCode(b *testing.B)    { runExperiment(b, "abl-longcode") }
func BenchmarkAblationKMHAffinity(b *testing.B) { runExperiment(b, "abl-kmh-affinity") }
func BenchmarkAblationProfile(b *testing.B)     { runExperiment(b, "abl-profile") }

// ---- public-API micro-benchmarks --------------------------------------

func apiIndex(b *testing.B, m QueryMethod) (*Index, *dataset.Dataset) {
	b.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "bench", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17,
	})
	ds.SampleQueries(64, 18)
	ix, err := Build(ds.Vectors, ds.Dim, WithQueryMethod(m), WithSeed(19))
	if err != nil {
		b.Fatal(err)
	}
	return ix, ds
}

func benchSearch(b *testing.B, m QueryMethod, budget int) {
	ix, ds := apiIndex(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Query(i % ds.NQ())
		if _, err := ix.Search(q, 10, WithMaxCandidates(budget)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchSearchParallel measures single-query Search throughput under
// concurrent callers (b.RunParallel). Search used to serialize every
// caller behind one mutex, so this benchmark could not scale with
// GOMAXPROCS; it is the measurement behind the snapshot-based concurrent
// search design (run with -cpu 1,4 to see the scaling).
func benchSearchParallel(b *testing.B, m QueryMethod, budget int) {
	ix, ds := apiIndex(b, m)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			q := ds.Query(i % ds.NQ())
			i++
			if _, err := ix.Search(q, 10, WithMaxCandidates(budget)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchSearchBatch measures amortized per-query cost through the batch
// engine at a fixed batch size: b.N counts queries, so ns/op is
// directly comparable with the single-query benchmarks above.
func benchSearchBatch(b *testing.B, m QueryMethod, batch, budget int) {
	ix, ds := apiIndex(b, m)
	flat := make([]float32, 0, batch*ds.Dim)
	for qi := 0; qi < batch; qi++ {
		flat = append(flat, ds.Query(qi%ds.NQ())...)
	}
	// Warm the searcher pool and pooled batch scratch off the clock.
	if _, err := ix.SearchBatch(flat, 10, WithMaxCandidates(budget)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; done += batch {
		if _, err := ix.SearchBatch(flat, 10, WithMaxCandidates(budget)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchBatch1Budget1000(b *testing.B)   { benchSearchBatch(b, GQR, 1, 1000) }
func BenchmarkSearchBatch64Budget1000(b *testing.B)  { benchSearchBatch(b, GQR, 64, 1000) }
func BenchmarkSearchBatch256Budget1000(b *testing.B) { benchSearchBatch(b, GQR, 256, 1000) }

func BenchmarkSearchParallel(b *testing.B)      { benchSearchParallel(b, GQR, 1000) }
func BenchmarkSearchParallelHR(b *testing.B)    { benchSearchParallel(b, HR, 1000) }
func BenchmarkSearchGQRBudget1000(b *testing.B) { benchSearch(b, GQR, 1000) }
func BenchmarkSearchGHRBudget1000(b *testing.B) { benchSearch(b, GHR, 1000) }
func BenchmarkSearchHRBudget1000(b *testing.B)  { benchSearch(b, HR, 1000) }
func BenchmarkSearchQRBudget1000(b *testing.B)  { benchSearch(b, QR, 1000) }
func BenchmarkSearchMIHBudget1000(b *testing.B) { benchSearch(b, MIH, 1000) }

// benchSearchTraced measures the flight recorder's enabled cost: every
// query records per-stage spans and is captured into the ring. The
// delta against BenchmarkSearchGQRBudget1000 is the price of tracing a
// query; the disabled path (no tracing options) is the plain benchmark
// above and must not move when instrumentation changes.
func benchSearchTraced(b *testing.B, sampleEvery int) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "bench", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17,
	})
	ds.SampleQueries(64, 18)
	ix, err := Build(ds.Vectors, ds.Dim, WithSeed(19), WithTracing(sampleEvery))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := ds.Query(i % ds.NQ())
		if _, err := ix.Search(q, 10, WithMaxCandidates(1000)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchGQRBudget1000TracedEvery(b *testing.B) { benchSearchTraced(b, 1) }
func BenchmarkSearchGQRBudget1000Traced1In100(b *testing.B) {
	benchSearchTraced(b, 100)
}

func BenchmarkBuildITQ20k(b *testing.B) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "build", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 21,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ds.Vectors, ds.Dim, WithSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuild sweeps the build pipeline over learner × worker bound
// on the 20k×32 corpus. The index is bit-for-bit identical at every p
// (TestParallelBuildIsBitForBitIdentical), so the sub-benchmarks
// measure pure build latency; on a multi-core host the p=8 rows should
// approach the core count's speedup over p=1, while on a single-core
// host all rows converge (run with -cpu to pin GOMAXPROCS).
func BenchmarkBuild(b *testing.B) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "build", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 21,
	})
	for _, algo := range []Algorithm{ITQ, PCAH, KMH} {
		for _, p := range []int{1, 2, 8} {
			b.Run(fmt.Sprintf("%s/p%d", algo, p), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Build(ds.Vectors, ds.Dim,
						WithAlgorithm(algo),
						WithSeed(21),
						WithBuildParallelism(p)); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
