package gqr

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func durVecs(n, dim int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float32, n*dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func saveBytes(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// copyDir clones a data directory so crash scenarios can mutilate a
// copy while the original stays intact.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableRecoverAfterGracefulClose is the clean-handoff contract:
// build, ingest across several seals and merges, Close, Recover — the
// recovered index is structurally identical (same persisted bytes) and
// nothing needed WAL replay.
func TestDurableRecoverAfterGracefulClose(t *testing.T) {
	const dim, baseN, addN = 8, 300, 200
	base := durVecs(baseN, dim, 1)
	adds := durVecs(addN, dim, 2)
	dir := t.TempDir()

	ix, err := Build(base, dim, WithSeed(11), WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addN; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Seals == 0 {
		t.Fatalf("no seals after %d adds at memtable 32", addN)
	}
	if st.WALBytes == 0 {
		t.Fatal("WAL bytes gauge reads zero mid-ingest")
	}
	want := saveBytes(t, ix)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(adds[:dim]); err == nil {
		t.Fatal("Add after Close must fail")
	}

	rec, err := Recover(dir, base, dim, WithMemtableSize(32))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Stats().Items; got != baseN+addN {
		t.Fatalf("recovered %d items, want %d", got, baseN+addN)
	}
	if rec.Stats().Adds != 0 {
		t.Fatalf("graceful close still left %d WAL records to replay", rec.Stats().Adds)
	}
	if got := saveBytes(t, rec); !bytes.Equal(got, want) {
		t.Fatal("recovered index is not bit-identical to the pre-close index")
	}
	// The recovered index keeps ingesting durably.
	if _, err := rec.Add(adds[:dim]); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoverAfterCrash abandons the index without Close — the
// process-crash model. Every acknowledged Add must come back
// bit-identically from segment files plus the WAL.
func TestDurableRecoverAfterCrash(t *testing.T) {
	for _, metric := range []Metric{Euclidean, Angular} {
		t.Run(string(metric), func(t *testing.T) {
			const dim, baseN, addN = 8, 200, 90
			base := durVecs(baseN, dim, 3)
			adds := durVecs(addN, dim, 4)
			dir := t.TempDir()

			ix, err := Build(base, dim, WithSeed(12), WithMetric(metric), WithMemtableSize(16))
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.EnableDurability(dir); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < addN; i++ {
				if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
					t.Fatal(err)
				}
			}
			// Quiesce background persists so the directory is stable, then
			// "crash": no Close, the WAL is simply abandoned mid-life.
			if err := ix.Compact(); err != nil {
				t.Fatal(err)
			}
			want := saveBytes(t, ix)

			rec, err := Recover(dir, base, dim, WithMetric(metric), WithMemtableSize(16))
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if got := rec.Stats().Items; got != baseN+addN {
				t.Fatalf("recovered %d items, want %d", got, baseN+addN)
			}
			if got := saveBytes(t, rec); !bytes.Equal(got, want) {
				t.Fatal("crash recovery is not bit-identical")
			}
			// Unbudgeted search is exact: every recovered add must be its
			// own nearest neighbor at distance 0 (bit-identical vectors).
			for _, i := range []int{0, addN / 2, addN - 1} {
				nbrs, err := rec.Search(adds[i*dim:(i+1)*dim], 1)
				if err != nil {
					t.Fatal(err)
				}
				if len(nbrs) != 1 || nbrs[0].ID != baseN+i || nbrs[0].Distance != 0 {
					t.Fatalf("add %d not recovered exactly: %+v", i, nbrs)
				}
			}
		})
	}
}

// TestDurableWALTruncationRecoversPrefix is the issue's crash harness:
// the WAL cut at every frame-straddling offset must recover exactly the
// records whose frames survived — a prefix of the acknowledged Adds,
// each bit-identical — and never error, never resurrect a torn record.
func TestDurableWALTruncationRecoversPrefix(t *testing.T) {
	const dim, baseN, addN = 6, 100, 20
	base := durVecs(baseN, dim, 5)
	adds := durVecs(addN, dim, 6)
	dir := t.TempDir()
	src := filepath.Join(dir, "src")

	ix, err := Build(base, dim, WithSeed(13)) // default memtable: no seal, all Adds in one WAL
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addN; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	wals, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("expected one WAL file, found %v (%v)", wals, err)
	}
	walName := filepath.Base(wals[0])
	raw, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	frame := 16 + 4*dim
	if len(raw) != addN*frame {
		t.Fatalf("WAL is %d bytes, want %d", len(raw), addN*frame)
	}

	cuts := []int{0, 1, frame - 1, frame, frame + 7, 5*frame + 3, 10 * frame, len(raw) - 1, len(raw)}
	for _, cut := range cuts {
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			cdir := filepath.Join(dir, fmt.Sprintf("cut-%d", cut))
			copyDir(t, src, cdir)
			if err := os.WriteFile(filepath.Join(cdir, walName), raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			rec, err := Recover(cdir, base, dim)
			if err != nil {
				t.Fatalf("torn WAL tail must recover cleanly, got: %v", err)
			}
			defer rec.Close()
			survived := cut / frame
			if got := rec.Stats().Items; got != baseN+survived {
				t.Fatalf("recovered %d items, want %d (%d surviving frames)", got, baseN+survived, survived)
			}
			for _, i := range []int{0, survived - 1} {
				if i < 0 || i >= survived {
					continue
				}
				nbrs, err := rec.Search(adds[i*dim:(i+1)*dim], 1)
				if err != nil {
					t.Fatal(err)
				}
				if nbrs[0].ID != baseN+i || nbrs[0].Distance != 0 {
					t.Fatalf("surviving add %d not recovered exactly: %+v", i, nbrs[0])
				}
			}
		})
	}
}

// TestDurableSegmentCorruptionFailsCleanly pins the other half of the
// contract: a damaged segment file means acknowledged data cannot be
// reconstructed, so recovery must fail naming the file — loading
// silently-wrong buckets is never an option.
func TestDurableSegmentCorruptionFailsCleanly(t *testing.T) {
	const dim, baseN, addN = 6, 80, 24
	base := durVecs(baseN, dim, 7)
	adds := durVecs(addN, dim, 8)
	dir := t.TempDir()
	src := filepath.Join(dir, "src")

	ix, err := Build(base, dim, WithSeed(14), WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(src); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < addN; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := filepath.Glob(filepath.Join(src, "seg-*.gqrseg"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("expected segment files, found %v (%v)", segs, err)
	}
	segName := filepath.Base(segs[0])
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		cdir := filepath.Join(dir, name)
		copyDir(t, src, cdir)
		if err := os.WriteFile(filepath.Join(cdir, segName), mutate(append([]byte{}, raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Recover(cdir, base, dim)
		if err == nil {
			t.Fatalf("%s: corrupted segment accepted", name)
		}
		if !strings.Contains(err.Error(), segName) {
			t.Fatalf("%s: error does not name the damaged file: %v", name, err)
		}
	}
	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("truncated-header", func(b []byte) []byte { return b[:11] })
	corrupt("trailing-garbage", func(b []byte) []byte { return append(b, 0xde, 0xad) })

	// A deleted middle segment leaves an id gap the next file exposes.
	if len(segs) >= 2 {
		cdir := filepath.Join(dir, "gap")
		copyDir(t, src, cdir)
		if err := os.Remove(filepath.Join(cdir, filepath.Base(segs[0]))); err != nil {
			t.Fatal(err)
		}
		if _, err := Recover(cdir, base, dim); err == nil {
			t.Fatal("missing segment file accepted despite the id gap")
		} else if !strings.Contains(err.Error(), "gap") {
			t.Fatalf("gap error unclear: %v", err)
		}
	}
}

// TestDurableWithoutAddWAL checks the relaxed mode: unsealed Adds are
// not durable (documented), sealed ones are, and no WAL files exist.
func TestDurableWithoutAddWAL(t *testing.T) {
	const dim, baseN = 6, 60
	base := durVecs(baseN, dim, 9)
	adds := durVecs(20, dim, 10)
	dir := t.TempDir()

	ix, err := Build(base, dim, WithSeed(15), WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(dir, WithoutAddWAL()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Compact(); err != nil { // quiesce background persists
		t.Fatal(err)
	}
	if ix.Stats().WALBytes != 0 {
		t.Fatal("WithoutAddWAL still accumulated WAL bytes")
	}
	if wals, _ := filepath.Glob(filepath.Join(dir, "wal-*.log")); len(wals) != 0 {
		t.Fatalf("WithoutAddWAL wrote WAL files: %v", wals)
	}
	// Crash without Close: everything was sealed by Compact, so all 20
	// come back even without a WAL.
	rec, err := Recover(dir, base, dim, WithoutAddWAL())
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := rec.Stats().Items; got != baseN+20 {
		t.Fatalf("recovered %d items, want %d", got, baseN+20)
	}
}

// TestSaveFileAtomic pins the atomic-replace contract: a failed write
// leaves the previous file byte-identical and no temp litter behind.
func TestSaveFileAtomic(t *testing.T) {
	const dim = 6
	vecs := durVecs(50, dim, 16)
	dir := t.TempDir()
	path := filepath.Join(dir, "index.gqr")

	ix, err := Build(vecs, dim, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A write that fails mid-stream must not touch the existing file.
	if err := atomicWriteFile(path, func(io.Writer) error { return fmt.Errorf("disk on fire") }); err == nil {
		t.Fatal("failing writer must surface its error")
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("failed atomic write damaged the existing file")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file left behind: %s", e.Name())
		}
	}
	// Overwriting with new content still works.
	vecs2 := durVecs(70, dim, 18)
	ix2, err := Build(vecs2, dim, WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	re, err := LoadFile(path, vecs2, dim)
	if err != nil {
		t.Fatal(err)
	}
	if re.Stats().Items != 70 {
		t.Fatalf("replaced file holds %d items, want 70", re.Stats().Items)
	}
}

// TestLoadRejectsBadVectorBlockBothMetrics pins the satellite fix: the
// vector-block length check fires for Euclidean and Angular alike, with
// an error that says what is wrong.
func TestLoadRejectsBadVectorBlockBothMetrics(t *testing.T) {
	const dim = 6
	vecs := durVecs(40, dim, 20)
	for _, metric := range []Metric{Euclidean, Angular} {
		ix, err := Build(vecs, dim, WithSeed(21), WithMetric(metric))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatal(err)
		}
		_, err = Load(bytes.NewReader(buf.Bytes()), vecs[:len(vecs)-3], dim)
		if err == nil {
			t.Fatalf("%s: ragged vector block accepted", metric)
		}
		if !strings.Contains(err.Error(), "not a multiple of dim") {
			t.Fatalf("%s: unclear vector-block error: %v", metric, err)
		}
	}
}

// TestDurabilityStateErrors covers the lifecycle guard rails.
func TestDurabilityStateErrors(t *testing.T) {
	const dim = 6
	vecs := durVecs(30, dim, 22)
	ix, err := Build(vecs, dim, WithSeed(23))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := ix.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(dir); err == nil {
		t.Fatal("double EnableDurability must fail")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatalf("Close must be idempotent: %v", err)
	}
	if err := ix.Compact(); err == nil {
		t.Fatal("Compact after Close must fail")
	}
	if _, err := Recover(t.TempDir(), vecs, dim); err == nil {
		t.Fatal("Recover from an empty directory must fail")
	}
}

// TestDurableWALDeleteReplay pins delete durability: deletes and
// updates acknowledged after the last seal live only in the WAL, and a
// crash must replay them bit-identically — tombstones, metadata word
// and the update's replacement vector all intact.
func TestDurableWALDeleteReplay(t *testing.T) {
	const dim, baseN = 6, 50
	base := durVecs(baseN, dim, 24)
	dir := t.TempDir()

	ix, err := Build(base, dim, WithSeed(25)) // default memtable: nothing seals
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	tagged, err := ix.AddWithMeta(durVecs(1, dim, 26), 0b10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(3); err != nil {
		t.Fatal(err)
	}
	repl := durVecs(1, dim, 27)
	moved, err := ix.Update(tagged, repl)
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, ix)
	wantStats := ix.Stats()

	// Crash: no Close. Everything above is only in the WAL.
	rec, err := Recover(dir, base, dim)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := saveBytes(t, rec); !bytes.Equal(got, want) {
		t.Fatal("WAL replay of delete/update frames is not bit-identical")
	}
	st := rec.Stats()
	if st.LiveItems != wantStats.LiveItems || st.Tombstones != wantStats.Tombstones {
		t.Fatalf("recovered live=%d tombstones=%d, want live=%d tombstones=%d",
			st.LiveItems, st.Tombstones, wantStats.LiveItems, wantStats.Tombstones)
	}
	// The updated item kept its metadata word across replay: the
	// tag-mask search finds the replacement at its new id.
	nbrs, err := rec.Search(repl, 1, WithTagMask(0b10))
	if err != nil {
		t.Fatal(err)
	}
	if len(nbrs) != 1 || nbrs[0].ID != moved || nbrs[0].Distance != 0 {
		t.Fatalf("updated item lost across replay: %+v", nbrs)
	}
	for _, deadID := range []int{3, tagged} {
		if err := rec.Delete(deadID); !errors.Is(err, ErrNotFound) {
			t.Fatalf("id %d came back alive after replay: %v", deadID, err)
		}
	}
}

// TestDurableWALUpdateTornTailKeepsBoth pins the documented crash
// semantics of Update: the add frame is logged before the delete frame,
// so a crash between the two replays as a duplicate — old and new item
// both live — never as a lost vector.
func TestDurableWALUpdateTornTailKeepsBoth(t *testing.T) {
	const dim, baseN = 6, 40
	base := durVecs(baseN, dim, 28)
	dir := t.TempDir()
	src := filepath.Join(dir, "src")

	ix, err := Build(base, dim, WithSeed(29))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(src); err != nil {
		t.Fatal(err)
	}
	const victim = 7
	repl := durVecs(1, dim, 30)
	newID, err := ix.Update(victim, repl)
	if err != nil {
		t.Fatal(err)
	}
	if newID != baseN {
		t.Fatalf("update returned id %d, want %d", newID, baseN)
	}
	wals, err := filepath.Glob(filepath.Join(src, "wal-*.log"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("expected one WAL file, found %v (%v)", wals, err)
	}
	raw, err := os.ReadFile(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	// Frames: add (8-byte header + id + vec) then delete (header + id).
	addFrame, deleteFrame := 8+8+4*dim, 8+8
	if len(raw) != addFrame+deleteFrame {
		t.Fatalf("WAL is %d bytes, want %d", len(raw), addFrame+deleteFrame)
	}
	cdir := filepath.Join(dir, "between-frames")
	copyDir(t, src, cdir)
	if err := os.WriteFile(filepath.Join(cdir, filepath.Base(wals[0])), raw[:addFrame], 0o644); err != nil {
		t.Fatal(err)
	}
	rec, err := Recover(cdir, base, dim)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st := rec.Stats()
	if st.LiveItems != baseN+1 || st.Tombstones != 0 {
		t.Fatalf("crash between update frames: live=%d tombstones=%d, want %d live and 0 dead",
			st.LiveItems, st.Tombstones, baseN+1)
	}
	// Both copies answer: the old vector at its old id, the new at its
	// new id — a duplicate, not a loss.
	old, err := rec.Search(base[victim*dim:(victim+1)*dim], 1)
	if err != nil {
		t.Fatal(err)
	}
	if old[0].ID != victim || old[0].Distance != 0 {
		t.Fatalf("old copy lost: %+v", old)
	}
	fresh, err := rec.Search(repl, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].ID != baseN || fresh[0].Distance != 0 {
		t.Fatalf("new copy lost: %+v", fresh)
	}

	// The full log replays the complete update: old id dead, new live.
	full, err := Recover(src, base, dim)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	if st := full.Stats(); st.LiveItems != baseN || st.Tombstones != 1 {
		t.Fatalf("full replay: live=%d tombstones=%d, want %d and 1", st.LiveItems, st.Tombstones, baseN)
	}
	if err := full.Delete(victim); !errors.Is(err, ErrNotFound) {
		t.Fatalf("victim survived the full update replay: %v", err)
	}
}

// TestDurableTombstoneSidecarRecovery pins the tombs.bits path: deletes
// sealed into segments leave the WAL, so a crash after the seal must
// restore them from the persisted bitmap sidecar, not from replay.
func TestDurableTombstoneSidecarRecovery(t *testing.T) {
	const dim, baseN, addN = 6, 60, 40
	base := durVecs(baseN, dim, 31)
	adds := durVecs(addN, dim, 32)
	dir := t.TempDir()

	ix, err := Build(base, dim, WithSeed(33), WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.EnableDurability(dir); err != nil {
		t.Fatal(err)
	}
	// Deletes early, adds after: the seals the later adds trigger rotate
	// and retire the WAL that held the delete frames.
	for i := 0; i < 4; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{2, baseN + 1, baseN + 3} {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	for i := 4; i < addN; i++ {
		if _, err := ix.Add(adds[i*dim : (i+1)*dim]); err != nil {
			t.Fatal(err)
		}
	}
	// Compact seals and persists everything, retiring the WALs that held
	// the delete frames; the sidecar is now their only durable home.
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	if wb := ix.Stats().WALBytes; wb != 0 {
		t.Fatalf("WAL holds %d bytes after Compact; the sidecar must carry the deletes alone", wb)
	}
	if _, err := os.Stat(filepath.Join(dir, "tombs.bits")); err != nil {
		t.Fatalf("tombstone sidecar missing after Compact: %v", err)
	}
	want := saveBytes(t, ix)

	rec, err := Recover(dir, base, dim, WithMemtableSize(8))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if got := saveBytes(t, rec); !bytes.Equal(got, want) {
		t.Fatal("sidecar recovery is not bit-identical")
	}
	if st := rec.Stats(); st.Tombstones != 3 || st.LiveItems != baseN+addN-3 {
		t.Fatalf("recovered live=%d tombstones=%d, want %d and 3", st.LiveItems, st.Tombstones, baseN+addN-3)
	}
}
