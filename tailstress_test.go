package gqr

import (
	"math"
	"sort"
	"sync"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/vecmath"
)

// TestDeltaTailStressAcrossCompaction is the -race gate for the CSR
// storage engine: two adders push 800 vectors (far past the 256-item
// compaction floor) while searchers and batch searchers run against the
// published snapshots. Along the way every goroutine checks that the
// snapshot generation it observes never goes backwards; afterwards the
// index must have compacted at least once and full-probe searches must
// return the same neighbors as a freshly built index over the same
// vectors and as exact brute force.
func TestDeltaTailStressAcrossCompaction(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "tail", N: 2000, Dim: 12, Clusters: 8, LatentDim: 5, Seed: 107,
	})
	ds.SampleQueries(8, 108)
	const (
		base      = 1200
		adders    = 2
		searchers = 3
		batchers  = 2
		rounds    = 60
	)
	// ~792 adds in total: far past the 256-item compaction floor.
	perAdder := (ds.N() - base) / adders
	ix, err := Build(ds.Vectors[:base*ds.Dim], ds.Dim, WithQueryMethod(GQR), WithSeed(109))
	if err != nil {
		t.Fatal(err)
	}
	startGen := ix.Stats().SnapshotGeneration

	var wg sync.WaitGroup
	for a := 0; a < adders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAdder; i++ {
				if _, err := ix.Add(ds.Vector(base + a*perAdder + i)); err != nil {
					t.Error(err)
					return
				}
			}
		}(a)
	}
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			prev := uint64(0)
			for i := 0; i < rounds; i++ {
				if _, _, err := ix.SearchWithStats(ds.Query((s+i)%ds.NQ()), 5, WithMaxCandidates(300)); err != nil {
					t.Error(err)
					return
				}
				// Generation must be monotone as observed by any single
				// goroutine: republishing only ever moves forward.
				if gen := ix.Stats().SnapshotGeneration; gen < prev {
					t.Errorf("snapshot generation went backwards: %d after %d", gen, prev)
					return
				} else {
					prev = gen
				}
			}
		}(s)
	}
	for b := 0; b < batchers; b++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			block := make([]float32, 0, 4*ds.Dim)
			for qi := 0; qi < 4; qi++ {
				block = append(block, ds.Query(qi)...)
			}
			for i := 0; i < rounds/2; i++ {
				results, err := ix.SearchBatchWithStats(block, 5, WithMaxCandidates(300))
				if err != nil {
					t.Error(err)
					return
				}
				for _, r := range results {
					if r.Err != nil {
						t.Error(r.Err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// One search after all Adds returned republishes the final snapshot;
	// with 800 tail items accumulated (or already folded mid-run) the
	// engine must have compacted by now.
	if _, err := ix.Search(ds.Query(0), 1, WithMaxCandidates(50)); err != nil {
		t.Fatal(err)
	}
	total := base + adders*perAdder
	st := ix.Stats()
	if st.Items != total {
		t.Fatalf("Items = %d, want %d", st.Items, total)
	}
	if st.Compactions < 1 {
		t.Fatalf("no compaction after %d adds", adders*perAdder)
	}
	if st.SnapshotGeneration <= startGen {
		t.Fatalf("generation did not advance: %d -> %d", startGen, st.SnapshotGeneration)
	}

	// A freshly built index over the identical base block, absorbing the
	// same 800 vectors sequentially. Item ids for the added vectors can
	// differ (concurrent add order is nondeterministic), so equality is
	// judged on distances, which identify the vectors themselves.
	fresh, err := Build(ds.Vectors[:base*ds.Dim], ds.Dim, WithQueryMethod(GQR), WithSeed(109))
	if err != nil {
		t.Fatal(err)
	}
	for i := base; i < total; i++ {
		if _, err := fresh.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	const k = 10
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		got, err := ix.Search(q, k) // no budget: full probe, exact
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		exact := bruteForceDistances(ds, q, total, k)
		if len(got) != k || len(want) != k {
			t.Fatalf("query %d: got %d/%d neighbors, want %d", qi, len(got), len(want), k)
		}
		for i := 0; i < k; i++ {
			if d := math.Abs(got[i].Distance - want[i].Distance); d > 1e-9 {
				t.Fatalf("query %d rank %d: stressed index %.12f vs fresh %.12f", qi, i, got[i].Distance, want[i].Distance)
			}
			if d := math.Abs(got[i].Distance - exact[i]); d > 1e-9 {
				t.Fatalf("query %d rank %d: full probe %.12f vs brute force %.12f", qi, i, got[i].Distance, exact[i])
			}
		}
	}
}

// bruteForceDistances returns the k smallest exact Euclidean distances
// from q to the first n vectors of ds.
func bruteForceDistances(ds *dataset.Dataset, q []float32, n, k int) []float64 {
	dists := make([]float64, n)
	for i := range dists {
		dists[i] = vecmath.SquaredL2(q, ds.Vector(i))
	}
	// Partial selection is overkill at this size; sort all.
	for i := range dists {
		dists[i] = math.Sqrt(dists[i])
	}
	sort.Float64s(dists)
	return dists[:k]
}
