package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	c.Add(-5) // negative deltas are ignored
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter after negative Add = %d, want %d", got, workers*per)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	var g Gauge
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), float64(workers*per)*0.5; got != want {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3.25)
	if g.Value() != -3.25 {
		t.Fatalf("gauge after Set = %v", g.Value())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	const workers, per = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w%4) + 0.5) // 0.5, 1.5, 2.5, 3.5
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	want := float64(per) * 2 * (0.5 + 1.5 + 2.5 + 3.5)
	if got := h.Sum(); math.Abs(got-want) > 1e-6 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	// 100 observations uniform in (0,1], 100 in (1,2].
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	// p50 rank = 100 lands exactly at the top of the first bucket.
	if got := h.Quantile(0.50); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("p50 = %v, want 1.0", got)
	}
	// p75 rank = 150: halfway through the (1,2] bucket → 1.5.
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Fatalf("p75 = %v, want 1.5", got)
	}
	// p100 clamps to the upper bound of the last occupied bucket.
	if got := h.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("p100 = %v, want 2.0", got)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// Everything overflows: quantile clamps to the largest finite bound.
	h.Observe(100)
	h.Observe(200)
	if got := h.Quantile(0.99); got != 2 {
		t.Fatalf("overflow quantile = %v, want 2", got)
	}
}

func TestRegistryReusesSeries(t *testing.T) {
	r := NewRegistry()
	a := r.CounterWith("reqs_total", "requests", Labels{"path": "/search"})
	b := r.CounterWith("reqs_total", "requests", Labels{"path": "/search"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	c := r.CounterWith("reqs_total", "requests", Labels{"path": "/batch"})
	if a == c {
		t.Fatal("different labels returned the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("reqs_total", "requests")
}

func TestPrometheusEncodingGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("gqr_search_requests_total", "Search requests served.").Add(7)
	r.GaugeWith("gqr_index_items", "Indexed vectors.", Labels{"shard": "0"}).Set(1500)
	h := r.Histogram("gqr_http_request_seconds", "Request latency.", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(2.5)
	lab := r.CounterWith("gqr_http_requests_total", `Requests by path and code.`, Labels{"path": "/search", "code": "200"})
	lab.Add(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP gqr_search_requests_total Search requests served.
# TYPE gqr_search_requests_total counter
gqr_search_requests_total 7
# HELP gqr_index_items Indexed vectors.
# TYPE gqr_index_items gauge
gqr_index_items{shard="0"} 1500
# HELP gqr_http_request_seconds Request latency.
# TYPE gqr_http_request_seconds histogram
gqr_http_request_seconds_bucket{le="0.01"} 2
gqr_http_request_seconds_bucket{le="0.1"} 3
gqr_http_request_seconds_bucket{le="1"} 3
gqr_http_request_seconds_bucket{le="+Inf"} 4
gqr_http_request_seconds_sum 2.56
gqr_http_request_seconds_count 4
# HELP gqr_http_requests_total Requests by path and code.
# TYPE gqr_http_requests_total counter
gqr_http_requests_total{code="200",path="/search"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterWith("weird_total", "help with\nnewline and \\ backslash",
		Labels{"q": "say \"hi\"\n\\"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `# HELP weird_total help with\nnewline and \\ backslash`) {
		t.Fatalf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `weird_total{q="say \"hi\"\n\\"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "c").Add(5)
	r.Gauge("g", "g").Set(2.5)
	h := r.Histogram("h_seconds", "h", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d series, want 3", len(snap))
	}
	if snap[0].Name != "c_total" || snap[0].Kind != "counter" || snap[0].Value != 5 {
		t.Fatalf("counter snapshot = %+v", snap[0])
	}
	if snap[1].Name != "g" || snap[1].Value != 2.5 {
		t.Fatalf("gauge snapshot = %+v", snap[1])
	}
	hs := snap[2].Histogram
	if hs == nil || hs.Count != 200 || math.Abs(hs.Sum-200) > 1e-6 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	if math.Abs(hs.P50-1.0) > 1e-9 || hs.P99 <= hs.P50 {
		t.Fatalf("quantiles p50=%v p99=%v", hs.P50, hs.P99)
	}
}

func TestRegistryConcurrentMixedUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.CounterWith("mixed_total", "m", Labels{"w": string(rune('a' + w%4))}).Inc()
				r.Histogram("mixed_seconds", "m", nil).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
					}
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	total := int64(0)
	for _, mv := range r.Snapshot() {
		if mv.Name == "mixed_total" {
			total += int64(mv.Value)
		}
	}
	if total != 8*200 {
		t.Fatalf("labeled counters sum to %d, want %d", total, 8*200)
	}
}
