// Package metrics is a dependency-free process-metrics registry:
// atomic counters, float gauges and fixed-bucket latency histograms
// (with p50/p95/p99 estimation) that encode themselves in the
// Prometheus text exposition format and as a JSON-friendly snapshot.
//
// The paper frames querying cost in work units — buckets generated,
// buckets probed, items retrieved (§2.2, Figures 8-10) — and this
// package is the aggregation point where per-query work stats become
// process-wide indicators an operator can scrape.
//
// All metric types are safe for concurrent use; the registry hands out
// the same metric for repeated registrations of the same name+labels,
// so hot paths may either cache the pointer or re-look it up.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is one metric's label set (e.g. {"path": "/search"}).
type Labels map[string]string

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative to keep
// Prometheus counter semantics; negative deltas are ignored).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 gauge.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (CAS loop; safe under contention).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefLatencyBuckets are the default histogram bounds in seconds,
// spanning 100µs..10s — a sensible range for ANN query serving.
var DefLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// DefStageBuckets are histogram bounds in seconds for individual
// pipeline stages, which run one to four orders of magnitude faster
// than whole queries: 1µs..1s.
var DefStageBuckets = []float64{
	0.000001, 0.0000025, 0.000005, 0.00001, 0.000025, 0.00005,
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket histogram with cumulative Prometheus
// semantics. Observations are atomic; bounds are immutable after
// construction.
type Histogram struct {
	bounds  []float64 // ascending finite upper bounds
	counts  []atomic.Int64
	inf     atomic.Int64 // +Inf overflow bucket
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Bucket counts are stored per-bucket (not cumulative) so Observe
	// touches exactly one slot; the encoder accumulates.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	total := h.inf.Load()
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear
// interpolation inside the bucket holding the target rank — the same
// estimate Prometheus's histogram_quantile computes server-side.
// Returns 0 with no observations; observations in the overflow bucket
// clamp to the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n > 0 && float64(cum+n) >= rank {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			return lower + (h.bounds[i]-lower)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// kind discriminates the metric families a registry can hold.
type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	default:
		return "histogram"
	}
}

// entry is one (name, labels) series.
type entry struct {
	labels   Labels
	labelKey string // canonical {k="v",...} suffix, "" when unlabeled
	c        *Counter
	g        *Gauge
	h        *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name    string
	help    string
	kind    kind
	bounds  []float64 // histogram families only
	entries []*entry  // registration order (deterministic encoding)
	byLabel map[string]*entry
}

// Registry holds named metric families and encodes them.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter registers (or returns) the unlabeled counter name.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterWith(name, help, nil)
}

// CounterWith registers (or returns) the counter series name{labels}.
func (r *Registry) CounterWith(name, help string, l Labels) *Counter {
	return r.series(name, help, counterKind, l, nil).c
}

// Gauge registers (or returns) the unlabeled gauge name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.GaugeWith(name, help, nil)
}

// GaugeWith registers (or returns) the gauge series name{labels}.
func (r *Registry) GaugeWith(name, help string, l Labels) *Gauge {
	return r.series(name, help, gaugeKind, l, nil).g
}

// Histogram registers (or returns) the unlabeled histogram name. A nil
// bounds slice selects DefLatencyBuckets. Bounds are fixed by the first
// registration of the family.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.HistogramWith(name, help, bounds, nil)
}

// HistogramWith registers (or returns) the histogram series
// name{labels}.
func (r *Registry) HistogramWith(name, help string, bounds []float64, l Labels) *Histogram {
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	return r.series(name, help, histogramKind, l, bounds).h
}

// series finds or creates one (name, labels) series; a kind clash on an
// existing name is a programming error and panics.
func (r *Registry) series(name, help string, k kind, l Labels, bounds []float64) *entry {
	key := labelKey(l)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, bounds: bounds, byLabel: make(map[string]*entry)}
		r.families = append(r.families, f)
		r.byName[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.kind, k))
	}
	e, ok := f.byLabel[key]
	if !ok {
		e = &entry{labels: cloneLabels(l), labelKey: key}
		switch k {
		case counterKind:
			e.c = &Counter{}
		case gaugeKind:
			e.g = &Gauge{}
		case histogramKind:
			e.h = newHistogram(f.bounds)
		}
		f.entries = append(f.entries, e)
		f.byLabel[key] = e
	}
	return e
}

func cloneLabels(l Labels) Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// labelKey renders labels canonically: k1="v1",k2="v2" sorted by key.
func labelKey(l Labels) string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel applies the exposition-format label-value escapes.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// escapeHelp applies the exposition-format HELP escapes.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesName renders name plus the optional {labels} block, merging
// extra fixed labels (used for histogram "le").
func seriesName(name, labelKey, extra string) string {
	switch {
	case labelKey == "" && extra == "":
		return name
	case labelKey == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labelKey + "}"
	}
	return name + "{" + labelKey + "," + extra + "}"
}

// WritePrometheus encodes every family in the text exposition format
// (version 0.0.4), in registration order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		// entries is append-only; reading the slice header under the
		// registry lock (above, via the families copy) is not enough on
		// its own, so re-lock briefly per family.
		r.mu.Lock()
		entries := make([]*entry, len(f.entries))
		copy(entries, f.entries)
		r.mu.Unlock()
		for _, e := range entries {
			var err error
			switch f.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s %d\n", seriesName(f.name, e.labelKey, ""), e.c.Value())
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s %s\n", seriesName(f.name, e.labelKey, ""), formatFloat(e.g.Value()))
			case histogramKind:
				err = writeHistogram(w, f.name, e)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, e *entry) error {
	var cum int64
	for i, bound := range e.h.bounds {
		cum += e.h.counts[i].Load()
		le := `le="` + formatFloat(bound) + `"`
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", e.labelKey, le), cum); err != nil {
			return err
		}
	}
	cum += e.h.inf.Load()
	if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_bucket", e.labelKey, `le="+Inf"`), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(name+"_sum", e.labelKey, ""), formatFloat(e.h.Sum())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %d\n", seriesName(name+"_count", e.labelKey, ""), cum)
	return err
}

// HistogramValue is a histogram's JSON-friendly summary.
type HistogramValue struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// MetricValue is one series in a snapshot.
type MetricValue struct {
	Name      string          `json:"name"`
	Labels    Labels          `json:"labels,omitempty"`
	Kind      string          `json:"kind"`
	Value     float64         `json:"value,omitempty"`
	Histogram *HistogramValue `json:"histogram,omitempty"`
}

// Snapshot returns every series' current value in registration order.
func (r *Registry) Snapshot() []MetricValue {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()
	var out []MetricValue
	for _, f := range fams {
		r.mu.Lock()
		entries := make([]*entry, len(f.entries))
		copy(entries, f.entries)
		r.mu.Unlock()
		for _, e := range entries {
			mv := MetricValue{Name: f.name, Labels: e.labels, Kind: f.kind.String()}
			switch f.kind {
			case counterKind:
				mv.Value = float64(e.c.Value())
			case gaugeKind:
				mv.Value = e.g.Value()
			case histogramKind:
				mv.Histogram = &HistogramValue{
					Count: e.h.Count(),
					Sum:   e.h.Sum(),
					P50:   e.h.Quantile(0.50),
					P95:   e.h.Quantile(0.95),
					P99:   e.h.Quantile(0.99),
				}
			}
			out = append(out, mv)
		}
	}
	return out
}
