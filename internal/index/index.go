// Package index implements the storage layer of the reproduction: hash
// tables that map packed m-bit binary codes to buckets of item ids, with
// multi-table support (paper §6.3.5) and occupancy statistics used by
// the experiments (the paper reports bucket counts per dataset in §6.2).
package index

import (
	"fmt"
	"maps"
	"sort"

	"gqr/internal/hash"
)

// Table is a single hash table: buckets of item ids keyed by binary code.
type Table struct {
	Hasher  hash.Hasher
	Buckets map[uint64][]int32
}

// NewTable builds a hash table over the n×d data block using the given
// hasher.
func NewTable(h hash.Hasher, data []float32, n, d int) *Table {
	t := &Table{Hasher: h, Buckets: make(map[uint64][]int32)}
	for i := 0; i < n; i++ {
		code := h.Code(data[i*d : (i+1)*d])
		t.Buckets[code] = append(t.Buckets[code], int32(i))
	}
	return t
}

// Bucket returns the item ids stored under the given code (nil when the
// bucket is empty).
func (t *Table) Bucket(code uint64) []int32 { return t.Buckets[code] }

// BucketCount returns the number of non-empty buckets, the quantity the
// paper reports per dataset ("3,872 ... 567,753 buckets", §6.2).
func (t *Table) BucketCount() int { return len(t.Buckets) }

// Codes returns all non-empty bucket codes in ascending order
// (deterministic iteration for the sort-based querying methods).
func (t *Table) Codes() []uint64 {
	codes := make([]uint64, 0, len(t.Buckets))
	for c := range t.Buckets {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	return codes
}

// Stats summarizes bucket occupancy.
type Stats struct {
	Items         int
	Buckets       int
	MaxBucketSize int
	AvgBucketSize float64
}

// Stats computes occupancy statistics for the table.
func (t *Table) Stats() Stats {
	var s Stats
	s.Buckets = len(t.Buckets)
	for _, b := range t.Buckets {
		s.Items += len(b)
		if len(b) > s.MaxBucketSize {
			s.MaxBucketSize = len(b)
		}
	}
	if s.Buckets > 0 {
		s.AvgBucketSize = float64(s.Items) / float64(s.Buckets)
	}
	return s
}

// Index is a multi-table hash index over one dataset. Vectors are held
// by reference; the index adds only codes and id lists.
type Index struct {
	Dim    int
	N      int
	Data   []float32
	Tables []*Table
}

// Build trains one hasher per table (distinct seeds) with the given
// learner and constructs the tables. This is the paper's multi-hash-
// table strategy: more tables raise recall per probed bucket at the
// cost of memory (§6.3.5).
func Build(l hash.Learner, data []float32, n, d, bits, tables int, seed int64) (*Index, error) {
	if tables <= 0 {
		return nil, fmt.Errorf("index: need at least one table, got %d", tables)
	}
	idx := &Index{Dim: d, N: n, Data: data}
	for t := 0; t < tables; t++ {
		h, err := l.Train(data, n, d, bits, seed+int64(t)*7919)
		if err != nil {
			return nil, fmt.Errorf("index: training table %d: %w", t, err)
		}
		idx.Tables = append(idx.Tables, NewTable(h, data, n, d))
	}
	return idx, nil
}

// Vector returns item i's vector.
func (ix *Index) Vector(i int32) []float32 {
	return ix.Data[int(i)*ix.Dim : (int(i)+1)*ix.Dim]
}

// Add appends one vector to the index, hashing it into every table, and
// returns its new id. The hash functions are NOT retrained: like any
// L2H system, the learned functions are assumed to be trained on a
// representative sample. Callers that precompute per-table views (the
// sorting querying methods) must refresh them afterwards.
func (ix *Index) Add(vec []float32) (int32, error) {
	if len(vec) != ix.Dim {
		return 0, fmt.Errorf("index: vector dim %d != index dim %d", len(vec), ix.Dim)
	}
	id := int32(ix.N)
	ix.Data = append(ix.Data, vec...)
	ix.N++
	for _, t := range ix.Tables {
		code := t.Hasher.Code(vec)
		t.Buckets[code] = append(t.Buckets[code], id)
	}
	return id, nil
}

// Snapshot returns an immutable read view of the index: a new Index
// whose bucket maps are shallow clones of the live tables'. Hashers,
// bucket id slices and the vector block are shared with the live index
// — safe because Add only ever appends *past* the lengths captured
// here (bucket appends replace the slice header in the live map only,
// and Data grows beyond the snapshot's len), so a reader of the view
// never touches a memory location a later Add writes. Taking a
// snapshot costs O(non-empty buckets); the caller must serialize it
// with mutations (Add) on the live index.
func (ix *Index) Snapshot() *Index {
	view := &Index{Dim: ix.Dim, N: ix.N, Data: ix.Data, Tables: make([]*Table, len(ix.Tables))}
	for i, t := range ix.Tables {
		view.Tables[i] = &Table{Hasher: t.Hasher, Buckets: maps.Clone(t.Buckets)}
	}
	return view
}

// Bits returns the code length of the index's hashers.
func (ix *Index) Bits() int { return ix.Tables[0].Hasher.Bits() }

// CodeLengthFor implements the paper's code-length rule m ≈ log2(N/EP)
// with expected bucket occupancy EP (the paper fixes EP = 10, §6.1).
func CodeLengthFor(n, ep int) int {
	if ep <= 0 {
		ep = 10
	}
	m := 0
	for (1 << uint(m+1)) <= n/ep {
		m++
	}
	if m < 1 {
		m = 1
	}
	if m > hash.MaxBits {
		m = hash.MaxBits
	}
	return m
}

// MemoryBytes estimates the index's own storage: bucket keys, id lists
// and hasher parameters (the vectors belong to the caller). This is the
// quantity behind the paper's §6.3.5 memory argument — every extra
// hash table pays this again.
func (ix *Index) MemoryBytes() int {
	total := 0
	for _, t := range ix.Tables {
		for _, ids := range t.Buckets {
			total += 8 + 4*len(ids) // key + id list
		}
		total += hasherBytes(t.Hasher)
	}
	return total
}

// hasherBytes estimates a hasher's parameter storage via its marshaled
// size.
func hasherBytes(h hash.Hasher) int {
	blob, err := hash.Marshal(h)
	if err != nil {
		return 0
	}
	return len(blob)
}
