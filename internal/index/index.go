// Package index implements the storage layer of the reproduction: hash
// tables that map packed m-bit binary codes to buckets of item ids, with
// multi-table support (paper §6.3.5) and occupancy statistics used by
// the experiments (the paper reports bucket counts per dataset in §6.2).
//
// Storage is LSM-shaped: every table has one mutable memtable (the
// delta tail of csr.go) that Add feeds, and the index holds a list of
// frozen immutable Segments — each a CSR core per table covering a
// contiguous id range. Sealing the memtable into a new segment is
// O(memtable); folding segments together is the background merger's
// job (segment.go), so snapshot publication never does O(core) work.
package index

import (
	"fmt"
	mathbits "math/bits"
	"sort"
	"sync/atomic"

	"gqr/internal/hash"
	"gqr/internal/quantization"
)

// popcount counts set bits (named to avoid shadowing by the `bits`
// code-length parameters used throughout this package).
func popcount(x uint64) int { return mathbits.OnesCount64(x) }

// Table is a single hash table's mutable half: the hasher plus the
// memtable posting lists (the frozen half lives in the index's segment
// list, one core per table per segment).
type Table struct {
	Hasher hash.Hasher
	tail   *tailStore
}

// freeze returns an immutable view of the table's memtable. Cost
// O(memtable).
func (t *Table) freeze() *Table {
	return &Table{Hasher: t.Hasher, tail: t.tail.clone()}
}

// BucketRef is a handle to one bucket's storage across the LSM
// hierarchy: one posting-list slice per frozen segment that holds the
// code (oldest first), plus the memtable slice. Iterating Segs in order
// and then Tail visits the bucket's ids in ascending order (each
// segment covers a strictly later id range, and memtable ids are the
// newest of all). The slices are views into frozen storage; callers
// must treat them as read-only.
type BucketRef struct {
	Segs [][]int32
	Tail []int32
}

// Len returns the number of ids the bucket holds.
func (r *BucketRef) Len() int {
	n := len(r.Tail)
	for _, s := range r.Segs {
		n += len(s)
	}
	return n
}

// merge policy constants: PlanMerge fires on a run of at least
// mergeFanout adjacent segments whose item counts are within a factor
// of mergeRatio of each other (size-tiered compaction — merging a huge
// segment with a tiny one wastes O(huge) work for O(tiny) gain).
const (
	mergeFanout = 4
	mergeRatio  = 4
)

// tombSet tracks deleted ids. The frozen half is a dense bitmap over
// the contiguous id space, shared by pointer across snapshots exactly
// like the CSR cores; recent deletes sit in a small delta map that
// foldTombs copies into a fresh bitmap (copy-on-write) before a
// snapshot publishes. dead counts every id ever deleted; pending counts
// the dead ids still present in some posting list — seal and merge
// purge them, decrementing pending, so pending==0 means searches pay
// nothing for past deletes.
type tombSet struct {
	words   []uint64
	delta   map[int32]struct{}
	dead    int
	pending int
}

// Index is a multi-table hash index over one dataset. Vectors are held
// by reference; the index adds only codes and id lists.
type Index struct {
	Dim    int
	N      int
	Data   []float32
	Tables []*Table

	// Meta is the optional per-item metadata word (one uint64 per id,
	// filter/tag-mask input). nil until the first nonzero word arrives;
	// once allocated it is kept exactly N long.
	Meta []uint64

	// Quant is the optional serving quantizer behind the re-ranking
	// stage; Codes is its id-aligned code slab (N·M bytes, like Data but
	// one byte per subspace). Both are shared by reference across
	// snapshots: appends only ever write past a published view's N, and
	// ids are never reused, so tombstone purges need no code movement —
	// a dead id's code simply stops being referenced by posting lists,
	// exactly like its vector.
	Quant  *quantization.Reranker
	QCodes []uint8
	// RerankFactor is the serving default for the re-ranking stage's
	// survivor budget (exact evaluations per query = factor × k); it is
	// persisted with the quantizer so a loaded index serves identically.
	RerankFactor int

	// encRot is the writer-side rotation scratch for per-Add encoding
	// (callers serialize mutation, so one buffer suffices).
	encRot []float32

	tombs tombSet

	// segs are the frozen segments, ordered by ascending MinID and
	// covering [0, N-memtable) contiguously.
	segs   []*Segment
	segSeq uint64

	// Timings records how long each build stage took (zero for indexes
	// assembled by loaders rather than Build/BuildP).
	Timings BuildTimings

	seals  int
	merges int

	// released latches the first Release of a snapshot view so it drops
	// its segment references exactly once. Idempotence must not come
	// from mutating segs: in-flight searches that loaded the old
	// snapshot still range over the slice.
	released atomic.Bool
}

// NewFromBuckets assembles an index from explicit per-table bucket
// maps, preserving each bucket's id order (one frozen segment covering
// all n items). Used by loaders and tests; the querying hot path never
// sees the maps.
func NewFromBuckets(hashers []hash.Hasher, buckets []map[uint64][]int32, data []float32, n, dim int) *Index {
	ix := &Index{Dim: dim, N: n, Data: data}
	cores := make([]*coreStore, len(hashers))
	for t, h := range hashers {
		ix.Tables = append(ix.Tables, &Table{Hasher: h, tail: newTailStore()})
		cores[t] = coreFromBuckets(buckets[t])
	}
	ix.segs = []*Segment{newSegment(cores, 0, n, n, 0)}
	ix.segSeq = 1
	return ix
}

func coreFromBuckets(buckets map[uint64][]int32) *coreStore {
	codes := make([]uint64, 0, len(buckets))
	for c := range buckets {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	offsets := make([]uint32, 1, len(codes)+1)
	var ids []int32
	for _, c := range codes {
		ids = append(ids, buckets[c]...)
		offsets = append(offsets, uint32(len(ids)))
	}
	return newCoreStore(codes, offsets, ids)
}

// Build trains one hasher per table (distinct seeds) with the given
// learner and constructs the tables. This is the paper's multi-hash-
// table strategy: more tables raise recall per probed bucket at the
// cost of memory (§6.3.5). It is the serial reference of BuildP, which
// produces a bit-for-bit identical index at any worker count.
func Build(l hash.Learner, data []float32, n, d, bits, tables int, seed int64) (*Index, error) {
	return BuildP(l, data, n, d, bits, tables, seed, 1)
}

// Vector returns item i's vector.
func (ix *Index) Vector(i int32) []float32 {
	return ix.Data[int(i)*ix.Dim : (int(i)+1)*ix.Dim]
}

// Add appends one vector to the index, hashing it into every table's
// memtable, and returns its new id. The hash functions are NOT
// retrained: like any L2H system, the learned functions are assumed to
// be trained on a representative sample. Callers that precompute
// per-table views (the sorting querying methods) must refresh them
// afterwards.
func (ix *Index) Add(vec []float32) (int32, error) {
	return ix.AddMeta(vec, 0)
}

// AddMeta appends one vector with a metadata word. A zero word costs
// nothing until some item carries a nonzero one; the first nonzero word
// allocates the meta slab with zeros for every earlier id.
func (ix *Index) AddMeta(vec []float32, meta uint64) (int32, error) {
	if len(vec) != ix.Dim {
		return 0, fmt.Errorf("index: vector dim %d != index dim %d", len(vec), ix.Dim)
	}
	id := int32(ix.N)
	ix.Data = append(ix.Data, vec...)
	if meta != 0 && ix.Meta == nil {
		ix.Meta = make([]uint64, ix.N, ix.N+1)
	}
	if ix.Meta != nil {
		ix.Meta = append(ix.Meta, meta)
	}
	if ix.Quant != nil {
		m := ix.Quant.M()
		ix.QCodes = append(ix.QCodes, make([]uint8, m)...)
		ix.Quant.EncodeTo(vec, ix.QCodes[len(ix.QCodes)-m:], ix.encRot)
	}
	ix.N++
	for _, t := range ix.Tables {
		t.tail.add(t.Hasher.Code(vec), id)
	}
	return id, nil
}

// MetaOf returns item id's metadata word (zero when no slab exists).
func (ix *Index) MetaOf(id int32) uint64 {
	if ix.Meta == nil || int(id) >= len(ix.Meta) {
		return 0
	}
	return ix.Meta[id]
}

// SetMeta replaces the whole metadata slab. len(meta) must be N (or
// meta nil to drop the slab). The caller hands over ownership.
func (ix *Index) SetMeta(meta []uint64) error {
	if meta != nil && len(meta) != ix.N {
		return fmt.Errorf("index: meta slab has %d words, index has %d items", len(meta), ix.N)
	}
	ix.Meta = meta
	return nil
}

// MetaSlab returns the metadata slab (nil when no item carries one).
// Read-only for snapshot views.
func (ix *Index) MetaSlab() []uint64 { return ix.Meta }

// AttachQuantizer installs a trained serving quantizer with its
// pre-encoded code slab (len N·M). Subsequent Adds keep the slab
// id-aligned by encoding on append.
func (ix *Index) AttachQuantizer(q *quantization.Reranker, codes []uint8) error {
	if q == nil {
		return fmt.Errorf("index: nil quantizer")
	}
	if q.Dim() != ix.Dim {
		return fmt.Errorf("index: quantizer dim %d != index dim %d", q.Dim(), ix.Dim)
	}
	if len(codes) != ix.N*q.M() {
		return fmt.Errorf("index: code slab %d bytes, want %d (n=%d, m=%d)",
			len(codes), ix.N*q.M(), ix.N, q.M())
	}
	if err := validateCodes(q, codes); err != nil {
		return err
	}
	ix.Quant = q
	ix.QCodes = codes
	if q.Rotated() {
		ix.encRot = make([]float32, ix.Dim)
	}
	return nil
}

// validateCodes rejects code bytes outside the quantizer's centroid
// range. Codes arrive from untrusted files (base image, segment
// sidecars); an out-of-range byte would index past the end of a query's
// ADC table row at serving time.
func validateCodes(q *quantization.Reranker, codes []uint8) error {
	if k := q.K(); k < quantization.MaxCentroids {
		limit := uint8(k)
		for i, c := range codes {
			if c >= limit {
				return fmt.Errorf("index: code byte %d at %d out of range (K=%d)", c, i, k)
			}
		}
	}
	return nil
}

// Quantizer returns the serving quantizer, or nil when re-ranking is
// not enabled.
func (ix *Index) Quantizer() *quantization.Reranker { return ix.Quant }

// CodesSlab returns the id-aligned code slab (nil without a
// quantizer). Read-only for snapshot views.
func (ix *Index) CodesSlab() []uint8 { return ix.QCodes }

// CodesRange returns the code sub-slab covering span items starting at
// id minID (nil without a quantizer) — the column the persistence
// layer writes alongside a segment's vectors.
func (ix *Index) CodesRange(minID, span int) []uint8 {
	if ix.Quant == nil {
		return nil
	}
	m := ix.Quant.M()
	return ix.QCodes[minID*m : (minID+span)*m]
}

// IsDeleted reports whether id is tombstoned (frozen bitmap or delta).
func (ix *Index) IsDeleted(id int32) bool {
	if tombTest(ix.tombs.words, id) {
		return true
	}
	if ix.tombs.delta != nil {
		_, ok := ix.tombs.delta[id]
		return ok
	}
	return false
}

// Delete tombstones id, reporting whether it was live. The id's vector
// and posting-list entries stay in place until the next seal or merge
// purges them; searches skip it via the bitmap from the next snapshot
// on. Caller holds the writer lock.
func (ix *Index) Delete(id int32) bool {
	if id < 0 || int(id) >= ix.N || ix.IsDeleted(id) {
		return false
	}
	if ix.tombs.delta == nil {
		ix.tombs.delta = make(map[int32]struct{})
	}
	ix.tombs.delta[id] = struct{}{}
	ix.tombs.dead++
	ix.tombs.pending++
	return true
}

// foldTombs folds the delete delta into a fresh bitmap (copy-on-write:
// snapshots sharing the old words are unaffected). No-op when the delta
// is empty, so snapshot publication stays O(segments + memtable).
func (ix *Index) foldTombs() {
	t := &ix.tombs
	if len(t.delta) == 0 {
		return
	}
	w := make([]uint64, (ix.N+63)/64)
	copy(w, t.words)
	for id := range t.delta {
		w[id>>6] |= 1 << (uint(id) & 63)
	}
	t.words = w
	t.delta = nil
}

// TombWords returns the frozen tombstone bitmap (nil when nothing was
// ever deleted or the deletes still sit in the delta). Read-only.
func (ix *Index) TombWords() []uint64 { return ix.tombs.words }

// FoldedTombWords folds the delta and returns the bitmap, or nil when
// no id is dead. Caller holds the writer lock.
func (ix *Index) FoldedTombWords() []uint64 {
	if ix.tombs.dead == 0 {
		return nil
	}
	ix.foldTombs()
	return ix.tombs.words
}

// LiveItems returns the number of non-deleted items.
func (ix *Index) LiveItems() int { return ix.N - ix.tombs.dead }

// Tombstones returns the number of deleted items.
func (ix *Index) Tombstones() int { return ix.tombs.dead }

// PendingTombstones returns the number of deleted ids still present in
// posting lists (not yet purged by a seal or merge).
func (ix *Index) PendingTombstones() int { return ix.tombs.pending }

// deadInRange counts set bitmap bits in [lo, hi). Delta deletes are not
// counted; callers fold first.
func (ix *Index) deadInRange(lo, hi int) int {
	n := 0
	for id := lo; id < hi; id++ {
		if tombTest(ix.tombs.words, int32(id)) {
			n++
		}
	}
	return n
}

// UnionTombs ors an external bitmap (recovery's tombs.bits file) into
// the tombstone set. Bits at or past N are ignored — with the WAL off
// they can name adds that were legitimately lost. Counters are left for
// RecomputeTombstones. Caller holds the writer lock.
func (ix *Index) UnionTombs(words []uint64) {
	ix.foldTombs()
	nw := (ix.N + 63) / 64
	if len(words) > nw {
		words = words[:nw]
	}
	w := make([]uint64, nw)
	copy(w, ix.tombs.words)
	for i, x := range words {
		w[i] |= x
	}
	if tail := ix.N & 63; tail != 0 {
		w[nw-1] &= (1 << uint(tail)) - 1
	}
	ix.tombs.words = w
}

// RecomputeTombstones rebuilds the dead and pending counters from the
// bitmap and the segment metadata — the recovery path's final step,
// after segments, tombs.bits and WAL deletes have all been applied.
// Caller holds the writer lock.
func (ix *Index) RecomputeTombstones() {
	ix.foldTombs()
	dead := 0
	for _, x := range ix.tombs.words {
		dead += popcount(x)
	}
	ix.tombs.dead = dead
	pending := 0
	for _, s := range ix.segs {
		pending += ix.deadInRange(s.minID, s.minID+s.span) - (s.span - s.items)
	}
	mt := ix.MemtableItems()
	pending += ix.deadInRange(ix.N-mt, ix.N)
	ix.tombs.pending = pending
}

// Probe resolves a code to its bucket across every frozen segment and
// the memtable — the O(segments) slot-handle lookup of the querying hot
// path. The result is written into ref, reusing its Segs backing array,
// so a warmed caller probes without allocating. No Go map is consulted.
func (ix *Index) Probe(t int, code uint64, ref *BucketRef) {
	segs := ref.Segs[:0]
	for _, s := range ix.segs {
		if ids := s.cores[t].get(code); len(ids) > 0 {
			segs = append(segs, ids)
		}
	}
	ref.Segs = segs
	ref.Tail = ix.Tables[t].tail.get(code)
}

// Bucket returns the item ids table t stores under the given code (nil
// when the bucket is empty), in ascending order. When the bucket spans
// tiers the slices are copied into a fresh slice; hot paths use Probe.
func (ix *Index) Bucket(t int, code uint64) []int32 {
	var ref BucketRef
	ix.Probe(t, code, &ref)
	n := ref.Len()
	if n == 0 {
		return nil
	}
	if len(ref.Segs) == 1 && len(ref.Tail) == 0 {
		return ref.Segs[0]
	}
	if len(ref.Segs) == 0 {
		return ref.Tail
	}
	out := make([]int32, 0, n)
	for _, s := range ref.Segs {
		out = append(out, s...)
	}
	return append(out, ref.Tail...)
}

// Codes returns table t's non-empty bucket codes in ascending order
// (deterministic iteration for the sort-based querying methods). The
// returned slice is shared with a segment when only one tier holds
// codes; callers must treat it as read-only.
func (ix *Index) Codes(t int) []uint64 {
	lists := make([][]uint64, 0, len(ix.segs)+1)
	for _, s := range ix.segs {
		if len(s.cores[t].codes) > 0 {
			lists = append(lists, s.cores[t].codes)
		}
	}
	ts := ix.Tables[t].tail
	if len(ts.codes) > 0 {
		tc := make([]uint64, len(ts.codes))
		copy(tc, ts.codes)
		sort.Slice(tc, func(i, j int) bool { return tc[i] < tc[j] })
		lists = append(lists, tc)
	}
	if len(lists) == 0 {
		return nil
	}
	merged := lists[0]
	for _, l := range lists[1:] {
		merged = mergeCodeLists(merged, l)
	}
	return merged
}

// mergeCodeLists merges two ascending code lists, dropping duplicates.
func mergeCodeLists(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// BucketCount returns table t's number of non-empty buckets, the
// quantity the paper reports per dataset ("3,872 ... 567,753 buckets",
// §6.2).
func (ix *Index) BucketCount(t int) int { return len(ix.Codes(t)) }

// Stats summarizes bucket occupancy.
type Stats struct {
	Items         int
	Buckets       int
	MaxBucketSize int
	AvgBucketSize float64
}

// TableStats computes occupancy statistics for table t across all
// tiers.
func (ix *Index) TableStats(t int) Stats {
	var s Stats
	tail := ix.Tables[t].tail
	for _, code := range ix.Codes(t) {
		size := len(tail.get(code))
		for _, seg := range ix.segs {
			size += len(seg.cores[t].get(code))
		}
		s.Buckets++
		s.Items += size
		if size > s.MaxBucketSize {
			s.MaxBucketSize = size
		}
	}
	if s.Buckets > 0 {
		s.AvgBucketSize = float64(s.Items) / float64(s.Buckets)
	}
	return s
}

// MemtableItems reports how many ids sit in one table's memtable —
// appended by Add and not yet sealed into a segment. Every table's
// memtable holds the same count (Add feeds them all).
func (ix *Index) MemtableItems() int {
	if len(ix.Tables) == 0 {
		return 0
	}
	return ix.Tables[0].tail.items
}

// SegmentCount returns the number of frozen segments.
func (ix *Index) SegmentCount() int { return len(ix.segs) }

// Segments returns the frozen segment list (read-only; the slice is
// the live one, callers must hold the writer lock).
func (ix *Index) Segments() []*Segment { return ix.segs }

// TakeSeq allocates the next segment sequence number. Caller holds the
// writer lock.
func (ix *Index) TakeSeq() uint64 {
	s := ix.segSeq
	ix.segSeq++
	return s
}

// SealMemtable freezes every table's memtable into one new frozen
// segment appended to the segment list, and installs fresh empty
// memtables. Cost O(memtable items); returns nil when the memtable is
// empty. Earlier snapshots are unaffected (they cloned the memtable
// and do not see the new segment). Caller holds the writer lock.
func (ix *Index) SealMemtable() *Segment {
	span := ix.MemtableItems()
	if span == 0 {
		return nil
	}
	// Fold first so the memtable's own dead ids are in the bitmap; the
	// sealed cores are then filtered, so a fresh segment is born
	// tombstone-free and pending drops by the purged count.
	var tombs []uint64
	if ix.tombs.dead > 0 {
		ix.foldTombs()
		tombs = ix.tombs.words
	}
	cores := make([]*coreStore, len(ix.Tables))
	for t, tbl := range ix.Tables {
		cores[t] = filterCore(sealCore(tbl.tail), tombs)
		tbl.tail = newTailStore()
	}
	items := span
	if len(cores) > 0 {
		items = cores[0].items()
	}
	seg := newSegment(cores, ix.N-span, span, items, ix.TakeSeq())
	ix.tombs.pending -= span - items
	ix.segs = append(ix.segs, seg)
	ix.seals++
	return seg
}

// AppendSegment attaches a segment covering exactly [ix.N, ix.N+span)
// along with its vectors and optional metadata words — the recovery
// path re-attaching segment files to a base index. The memtable must be
// empty.
func (ix *Index) AppendSegment(seg *Segment, vectors []float32, meta []uint64, codes []uint8) error {
	if ix.MemtableItems() != 0 {
		return fmt.Errorf("index: AppendSegment with non-empty memtable")
	}
	if len(seg.cores) != len(ix.Tables) {
		return fmt.Errorf("index: segment has %d tables, index has %d", len(seg.cores), len(ix.Tables))
	}
	if seg.minID != ix.N {
		return fmt.Errorf("index: segment starts at id %d, index ends at %d", seg.minID, ix.N)
	}
	if len(vectors) != seg.span*ix.Dim {
		return fmt.Errorf("index: segment vector block %d floats, want %d", len(vectors), seg.span*ix.Dim)
	}
	if meta != nil && len(meta) != seg.span {
		return fmt.Errorf("index: segment meta block %d words, want %d", len(meta), seg.span)
	}
	if ix.Quant != nil && codes != nil {
		if len(codes) != seg.span*ix.Quant.M() {
			return fmt.Errorf("index: segment code block %d bytes, want %d", len(codes), seg.span*ix.Quant.M())
		}
		if err := validateCodes(ix.Quant, codes); err != nil {
			return err
		}
	}
	ix.Data = append(ix.Data, vectors...)
	if meta != nil && ix.Meta == nil {
		ix.Meta = make([]uint64, ix.N)
	}
	if ix.Meta != nil {
		if meta != nil {
			ix.Meta = append(ix.Meta, meta...)
		} else {
			ix.Meta = append(ix.Meta, make([]uint64, seg.span)...)
		}
	}
	if ix.Quant != nil {
		if codes != nil {
			ix.QCodes = append(ix.QCodes, codes...)
		} else {
			// Legacy segment file without a code column: re-encode. The
			// quantizer is deterministic, so the slab matches what a
			// code-carrying file would have restored.
			ix.QCodes = append(ix.QCodes, ix.Quant.EncodeAll(vectors, seg.span, 1)...)
		}
	}
	ix.N += seg.span
	ix.segs = append(ix.segs, seg)
	if seg.seq >= ix.segSeq {
		ix.segSeq = seg.seq + 1
	}
	return nil
}

// PlanMerge returns a run of adjacent frozen segments worth folding
// into one (size-tiered policy: the leftmost run of ≥ mergeFanout
// segments whose sizes are within mergeRatio of each other), or nil.
// Segments whose id range starts below barrierID are never planned —
// the durability layer uses this to keep segments covered by the base
// snapshot out of merges. Caller holds the writer lock; the returned
// slice is a copy safe to hand to a background goroutine.
// mergeWeight is a segment's size for the tiering policy: live items
// (what a merge actually copies), floored at 1 so fully-purged segments
// still tier with their neighbours instead of poisoning the ratio.
func mergeWeight(s *Segment) int {
	if s.items < 1 {
		return 1
	}
	return s.items
}

func (ix *Index) PlanMerge(barrierID int) []*Segment {
	first := 0
	for first < len(ix.segs) && ix.segs[first].minID < barrierID {
		first++
	}
	for i := first; i < len(ix.segs); i++ {
		lo, hi := mergeWeight(ix.segs[i]), mergeWeight(ix.segs[i])
		j := i + 1
		for j < len(ix.segs) {
			c := mergeWeight(ix.segs[j])
			nlo, nhi := lo, hi
			if c < nlo {
				nlo = c
			}
			if c > nhi {
				nhi = c
			}
			if nhi > mergeRatio*nlo {
				break
			}
			lo, hi = nlo, nhi
			j++
		}
		if j-i >= mergeFanout {
			out := make([]*Segment, j-i)
			copy(out, ix.segs[i:j])
			return out
		}
	}
	return nil
}

// SegmentsAbove returns a copy of the run of segments whose id range
// starts at or after barrierID — everything a full inline compaction
// (Index.Compact at the root) may fold together. Caller holds the
// writer lock.
func (ix *Index) SegmentsAbove(barrierID int) []*Segment {
	first := 0
	for first < len(ix.segs) && ix.segs[first].minID < barrierID {
		first++
	}
	out := make([]*Segment, len(ix.segs)-first)
	copy(out, ix.segs[first:])
	return out
}

// ApplyMerge splices merged into the segment list in place of the run
// in (which must still be present, unchanged — validated by pointer),
// releasing the list's reference on each input. Caller holds the
// writer lock; snapshots published earlier keep their own references.
func (ix *Index) ApplyMerge(in []*Segment, merged *Segment) error {
	lo := -1
	for i, s := range ix.segs {
		if s == in[0] {
			lo = i
			break
		}
	}
	if lo < 0 || lo+len(in) > len(ix.segs) {
		return fmt.Errorf("index: merge inputs no longer in segment list")
	}
	for k, s := range in {
		if ix.segs[lo+k] != s {
			return fmt.Errorf("index: merge input %d no longer in segment list", k)
		}
	}
	out := make([]*Segment, 0, len(ix.segs)-len(in)+1)
	out = append(out, ix.segs[:lo]...)
	out = append(out, merged)
	out = append(out, ix.segs[lo+len(in):]...)
	ix.segs = out
	// Ids the merge purged are no longer in any posting list.
	purged := -merged.items
	for _, s := range in {
		purged += s.items
	}
	ix.tombs.pending -= purged
	for _, s := range in {
		s.Release()
	}
	ix.merges++
	return nil
}

// Snapshot returns an immutable read view of the index: the frozen
// segment list copied with one reference retained per segment, and
// every memtable cloned. Publication cost is O(segments + memtable) —
// never O(core items); folding segments together is the background
// merger's job. The caller must serialize Snapshot with mutations
// (Add, SealMemtable, ApplyMerge) on the live index and must Release
// the view when replacing it; readers of the view never touch a memory
// location a later Add writes.
func (ix *Index) Snapshot() *Index {
	ix.foldTombs() // COW: no-op unless deletes arrived since last fold
	view := &Index{
		Dim: ix.Dim, N: ix.N, Data: ix.Data,
		Meta:         ix.Meta,
		Quant:        ix.Quant,
		QCodes:       ix.QCodes,
		RerankFactor: ix.RerankFactor,
		tombs:        tombSet{words: ix.tombs.words, dead: ix.tombs.dead, pending: ix.tombs.pending},
		Tables:       make([]*Table, len(ix.Tables)),
		segs:         make([]*Segment, len(ix.segs)),
	}
	for i, t := range ix.Tables {
		view.Tables[i] = t.freeze()
	}
	for i, s := range ix.segs {
		s.Retain()
		view.segs[i] = s
	}
	return view
}

// Release drops a snapshot view's segment references when the view is
// unpublished; idempotent. It deliberately leaves segs intact — a zero
// refcount only deletes a segment's file, never its memory, so searches
// still holding the view keep reading valid data.
func (ix *Index) Release() {
	if ix.released.Swap(true) {
		return
	}
	for _, s := range ix.segs {
		s.Release()
	}
}

// Seals reports how many memtables have been sealed into segments.
func (ix *Index) Seals() int { return ix.seals }

// Merges reports how many background/inline segment merges have been
// applied.
func (ix *Index) Merges() int { return ix.merges }

// Compactions reports all compaction events — seals plus merges — since
// construction (lifecycle observability).
func (ix *Index) Compactions() int { return ix.seals + ix.merges }

// Bits returns the code length of the index's hashers.
func (ix *Index) Bits() int { return ix.Tables[0].Hasher.Bits() }

// CodeLengthFor implements the paper's code-length rule m ≈ log2(N/EP)
// with expected bucket occupancy EP (the paper fixes EP = 10, §6.1).
func CodeLengthFor(n, ep int) int {
	if ep <= 0 {
		ep = 10
	}
	m := 0
	for (1 << uint(m+1)) <= n/ep {
		m++
	}
	if m < 1 {
		m = 1
	}
	if m > hash.MaxBits {
		m = hash.MaxBits
	}
	return m
}

// MemoryBytes estimates the index's own storage: per-segment CSR arrays
// and probe tables, memtables and hasher parameters (the vectors belong
// to the caller). This is the quantity behind the paper's §6.3.5 memory
// argument — every extra hash table pays this again.
func (ix *Index) MemoryBytes() int {
	total := len(ix.QCodes) // quantizer code slab (1 byte per subspace per item)
	for t, tbl := range ix.Tables {
		total += tbl.tail.memoryBytes() + hasherBytes(tbl.Hasher)
		for _, s := range ix.segs {
			total += s.cores[t].memoryBytes()
		}
	}
	return total
}

// hasherBytes estimates a hasher's parameter storage via its marshaled
// size.
func hasherBytes(h hash.Hasher) int {
	blob, err := hash.Marshal(h)
	if err != nil {
		return 0
	}
	return len(blob)
}
