// Package index implements the storage layer of the reproduction: hash
// tables that map packed m-bit binary codes to buckets of item ids, with
// multi-table support (paper §6.3.5) and occupancy statistics used by
// the experiments (the paper reports bucket counts per dataset in §6.2).
//
// Buckets are stored in the two-tier layout of csr.go: a frozen CSR
// core shared by every snapshot plus a small mutable delta tail that
// Add feeds and snapshot publication compacts.
package index

import (
	"fmt"
	"sort"

	"gqr/internal/hash"
)

// Table is a single hash table: posting lists of item ids keyed by
// binary code, stored as a frozen CSR core plus a mutable delta tail.
type Table struct {
	Hasher hash.Hasher
	core   *coreStore
	tail   *tailStore
}

// NewTable builds a hash table over the n×d data block using the given
// hasher.
func NewTable(h hash.Hasher, data []float32, n, d int) *Table {
	codes, ids := codeItems(h, data, n, d, 1)
	return &Table{Hasher: h, core: buildCore(codes, ids), tail: newTailStore()}
}

// NewTableFromBuckets builds a table from an explicit bucket map,
// preserving each bucket's id order. Used by loaders and tests; the
// querying hot path never sees the map.
func NewTableFromBuckets(h hash.Hasher, buckets map[uint64][]int32) *Table {
	codes := make([]uint64, 0, len(buckets))
	for c := range buckets {
		codes = append(codes, c)
	}
	sort.Slice(codes, func(i, j int) bool { return codes[i] < codes[j] })
	offsets := make([]uint32, 1, len(codes)+1)
	var ids []int32
	for _, c := range codes {
		ids = append(ids, buckets[c]...)
		offsets = append(offsets, uint32(len(ids)))
	}
	return &Table{Hasher: h, core: newCoreStore(codes, offsets, ids), tail: newTailStore()}
}

// BucketRef is a handle to one bucket's storage: the core segment and
// the delta-tail segment of its posting list. Iterating Core then Tail
// visits the bucket's ids in ascending order (tail ids are assigned
// after every core id).
type BucketRef struct {
	Core []int32
	Tail []int32
}

// Len returns the number of ids the bucket holds.
func (r BucketRef) Len() int { return len(r.Core) + len(r.Tail) }

// Probe resolves a code to its bucket via the probe tables of both
// tiers — the O(1) slot-handle lookup of the querying hot path. No Go
// map is consulted.
func (t *Table) Probe(code uint64) BucketRef {
	return BucketRef{Core: t.core.get(code), Tail: t.tail.get(code)}
}

// Bucket returns the item ids stored under the given code (nil when
// the bucket is empty). When the bucket spans both tiers the segments
// are copied into a fresh slice; hot paths use Probe instead.
func (t *Table) Bucket(code uint64) []int32 {
	ref := t.Probe(code)
	if len(ref.Tail) == 0 {
		return ref.Core
	}
	if len(ref.Core) == 0 {
		return ref.Tail
	}
	out := make([]int32, 0, ref.Len())
	return append(append(out, ref.Core...), ref.Tail...)
}

// add appends id to code's posting list in the delta tail.
func (t *Table) add(code uint64, id int32) { t.tail.add(code, id) }

// freeze returns an immutable view of the table: the core shared by
// pointer, the tail cloned. Cost O(tail).
func (t *Table) freeze() *Table {
	return &Table{Hasher: t.Hasher, core: t.core, tail: t.tail.clone()}
}

// compact folds the delta tail into a fresh frozen core. Snapshots
// published earlier keep the old core; the caller must hold the
// writer lock.
func (t *Table) compact() {
	t.core = t.core.merge(t.tail)
	t.tail = newTailStore()
}

// compacted returns the table's buckets as a single CSR tier, merging
// on the fly when the tail is non-empty (the table itself is not
// mutated). Persistence streams this view.
func (t *Table) compacted() *coreStore { return t.core.merge(t.tail) }

// TailItems reports how many ids sit in the mutable delta tail —
// appended by Add and not yet compacted into the core.
func (t *Table) TailItems() int { return t.tail.items }

// BucketCount returns the number of non-empty buckets, the quantity the
// paper reports per dataset ("3,872 ... 567,753 buckets", §6.2).
func (t *Table) BucketCount() int {
	n := len(t.core.codes)
	for _, c := range t.tail.codes {
		if _, ok := t.core.probe.Lookup(c); !ok {
			n++
		}
	}
	return n
}

// Codes returns all non-empty bucket codes in ascending order
// (deterministic iteration for the sort-based querying methods). The
// returned slice is shared with the table when the tail is empty;
// callers must treat it as read-only.
func (t *Table) Codes() []uint64 {
	if len(t.tail.codes) == 0 {
		return t.core.codes
	}
	tailCodes := make([]uint64, len(t.tail.codes))
	copy(tailCodes, t.tail.codes)
	sort.Slice(tailCodes, func(i, j int) bool { return tailCodes[i] < tailCodes[j] })
	merged := make([]uint64, 0, len(t.core.codes)+len(tailCodes))
	i, j := 0, 0
	for i < len(t.core.codes) || j < len(tailCodes) {
		switch {
		case j >= len(tailCodes) || (i < len(t.core.codes) && t.core.codes[i] < tailCodes[j]):
			merged = append(merged, t.core.codes[i])
			i++
		case i >= len(t.core.codes) || tailCodes[j] < t.core.codes[i]:
			merged = append(merged, tailCodes[j])
			j++
		default:
			merged = append(merged, t.core.codes[i])
			i++
			j++
		}
	}
	return merged
}

// Stats summarizes bucket occupancy.
type Stats struct {
	Items         int
	Buckets       int
	MaxBucketSize int
	AvgBucketSize float64
}

// Stats computes occupancy statistics for the table.
func (t *Table) Stats() Stats {
	var s Stats
	for i := range t.core.codes {
		size := len(t.core.bucketAt(i)) + len(t.tail.get(t.core.codes[i]))
		s.Buckets++
		s.Items += size
		if size > s.MaxBucketSize {
			s.MaxBucketSize = size
		}
	}
	for pos, c := range t.tail.codes {
		if _, ok := t.core.probe.Lookup(c); ok {
			continue // counted with its core bucket above
		}
		size := len(t.tail.buckets[pos])
		s.Buckets++
		s.Items += size
		if size > s.MaxBucketSize {
			s.MaxBucketSize = size
		}
	}
	if s.Buckets > 0 {
		s.AvgBucketSize = float64(s.Items) / float64(s.Buckets)
	}
	return s
}

// Index is a multi-table hash index over one dataset. Vectors are held
// by reference; the index adds only codes and id lists.
type Index struct {
	Dim    int
	N      int
	Data   []float32
	Tables []*Table

	// Timings records how long each build stage took (zero for indexes
	// assembled by loaders rather than Build/BuildP).
	Timings BuildTimings

	// compactions counts how many table tails Snapshot folded into
	// fresh cores (lifecycle observability).
	compactions int
}

// Build trains one hasher per table (distinct seeds) with the given
// learner and constructs the tables. This is the paper's multi-hash-
// table strategy: more tables raise recall per probed bucket at the
// cost of memory (§6.3.5). It is the serial reference of BuildP, which
// produces a bit-for-bit identical index at any worker count.
func Build(l hash.Learner, data []float32, n, d, bits, tables int, seed int64) (*Index, error) {
	return BuildP(l, data, n, d, bits, tables, seed, 1)
}

// Vector returns item i's vector.
func (ix *Index) Vector(i int32) []float32 {
	return ix.Data[int(i)*ix.Dim : (int(i)+1)*ix.Dim]
}

// Add appends one vector to the index, hashing it into every table's
// delta tail, and returns its new id. The hash functions are NOT
// retrained: like any L2H system, the learned functions are assumed to
// be trained on a representative sample. Callers that precompute
// per-table views (the sorting querying methods) must refresh them
// afterwards.
func (ix *Index) Add(vec []float32) (int32, error) {
	if len(vec) != ix.Dim {
		return 0, fmt.Errorf("index: vector dim %d != index dim %d", len(vec), ix.Dim)
	}
	id := int32(ix.N)
	ix.Data = append(ix.Data, vec...)
	ix.N++
	for _, t := range ix.Tables {
		t.add(t.Hasher.Code(vec), id)
	}
	return id, nil
}

// Snapshot returns an immutable read view of the index. Each table's
// frozen CSR core is shared by pointer — O(1) however many buckets it
// holds — and its delta tail is cloned, so publication cost is O(tail),
// not O(non-empty buckets) as with the previous map layout. When a
// table's tail has outgrown compactThreshold it is first folded into a
// fresh core (earlier snapshots keep the old core). The caller must
// serialize Snapshot with mutations (Add) on the live index; readers of
// the returned view never touch a memory location a later Add writes.
func (ix *Index) Snapshot() *Index {
	view := &Index{Dim: ix.Dim, N: ix.N, Data: ix.Data, Tables: make([]*Table, len(ix.Tables))}
	for i, t := range ix.Tables {
		if t.tail.items >= compactThreshold(t.core.items()) {
			t.compact()
			ix.compactions++
		}
		view.Tables[i] = t.freeze()
	}
	return view
}

// Compactions reports how many table tails have been folded into fresh
// cores by Snapshot since construction.
func (ix *Index) Compactions() int { return ix.compactions }

// Bits returns the code length of the index's hashers.
func (ix *Index) Bits() int { return ix.Tables[0].Hasher.Bits() }

// CodeLengthFor implements the paper's code-length rule m ≈ log2(N/EP)
// with expected bucket occupancy EP (the paper fixes EP = 10, §6.1).
func CodeLengthFor(n, ep int) int {
	if ep <= 0 {
		ep = 10
	}
	m := 0
	for (1 << uint(m+1)) <= n/ep {
		m++
	}
	if m < 1 {
		m = 1
	}
	if m > hash.MaxBits {
		m = hash.MaxBits
	}
	return m
}

// MemoryBytes estimates the index's own storage: CSR arrays, probe
// tables, delta tails and hasher parameters (the vectors belong to the
// caller). This is the quantity behind the paper's §6.3.5 memory
// argument — every extra hash table pays this again.
func (ix *Index) MemoryBytes() int {
	total := 0
	for _, t := range ix.Tables {
		total += t.core.memoryBytes() + t.tail.memoryBytes() + hasherBytes(t.Hasher)
	}
	return total
}

// hasherBytes estimates a hasher's parameter storage via its marshaled
// size.
func hasherBytes(h hash.Hasher) int {
	blob, err := hash.Marshal(h)
	if err != nil {
		return 0
	}
	return len(blob)
}
