package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"gqr/internal/hash"
)

// Index persistence. The file stores the trained hashers and the bucket
// structure — everything derived from training — but not the raw
// vectors, which the caller supplies again at load time (the index only
// ever references them). Format, all little-endian:
//
//	magic "GQRIDX1\x00" | dim u32 | n u32 | tables u32
//	per table: hasher blob (u32 length + bytes)
//	           bucket count u32
//	           per bucket: code u64 | id count u32 | ids (u32 each)

var magic = [8]byte{'G', 'Q', 'R', 'I', 'D', 'X', '1', 0}

// Save writes the index (hashers + buckets) to w.
func (ix *Index) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) { binary.Write(bw, binary.LittleEndian, v) }
	writeU32(uint32(ix.Dim))
	writeU32(uint32(ix.N))
	writeU32(uint32(len(ix.Tables)))
	for _, t := range ix.Tables {
		blob, err := hash.Marshal(t.Hasher)
		if err != nil {
			return fmt.Errorf("index: save: %w", err)
		}
		writeU32(uint32(len(blob)))
		if _, err := bw.Write(blob); err != nil {
			return err
		}
		codes := t.Codes()
		writeU32(uint32(len(codes)))
		for _, code := range codes {
			binary.Write(bw, binary.LittleEndian, code)
			ids := t.Buckets[code]
			writeU32(uint32(len(ids)))
			for _, id := range ids {
				writeU32(uint32(id))
			}
		}
	}
	return bw.Flush()
}

// Load reads an index saved with Save and re-attaches the vector block
// (which must be the same data the index was built from: same count and
// dimension; ids are validated against n).
func Load(r io.Reader, data []float32, dim int) (*Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("index: load: bad magic %q", m[:])
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	fdim, err := readU32()
	if err != nil {
		return nil, err
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	tables, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(fdim) != dim {
		return nil, fmt.Errorf("index: load: file dim %d != provided dim %d", fdim, dim)
	}
	if dim <= 0 || len(data) != int(n)*dim {
		return nil, fmt.Errorf("index: load: vector block has %d floats, want %d*%d", len(data), n, dim)
	}
	if tables == 0 || tables > 1024 {
		return nil, fmt.Errorf("index: load: implausible table count %d", tables)
	}
	ix := &Index{Dim: dim, N: int(n), Data: data}
	for t := 0; t < int(tables); t++ {
		blobLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if blobLen > 1<<30 {
			return nil, fmt.Errorf("index: load: implausible hasher size %d", blobLen)
		}
		blob := make([]byte, blobLen)
		if _, err := io.ReadFull(br, blob); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		h, err := hash.Unmarshal(blob)
		if err != nil {
			return nil, err
		}
		nb, err := readU32()
		if err != nil {
			return nil, err
		}
		tbl := &Table{Hasher: h, Buckets: make(map[uint64][]int32, nb)}
		total := 0
		for b := 0; b < int(nb); b++ {
			var code uint64
			if err := binary.Read(br, binary.LittleEndian, &code); err != nil {
				return nil, fmt.Errorf("index: load: %w", err)
			}
			cnt, err := readU32()
			if err != nil {
				return nil, err
			}
			total += int(cnt)
			if total > int(n) {
				return nil, fmt.Errorf("index: load: table %d holds more ids than items", t)
			}
			ids := make([]int32, cnt)
			for i := range ids {
				v, err := readU32()
				if err != nil {
					return nil, err
				}
				if v >= n {
					return nil, fmt.Errorf("index: load: item id %d out of range", v)
				}
				ids[i] = int32(v)
			}
			tbl.Buckets[code] = ids
		}
		if total != int(n) {
			return nil, fmt.Errorf("index: load: table %d indexes %d of %d items", t, total, n)
		}
		ix.Tables = append(ix.Tables, tbl)
	}
	return ix, nil
}
