package index

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gqr/internal/hash"
	"gqr/internal/quantization"
)

// Index persistence. The file stores the trained hashers and the bucket
// structure — everything derived from training — but not the raw
// vectors, which the caller supplies again at load time (the index only
// ever references them). Four formats, all little-endian:
//
// GQRIDX4 (written by Save when the index carries a serving quantizer)
// extends v3 with the quantizer parameters and the id-aligned code
// slab. The lifecycle block is always present in a v4 stream (a zero
// deadCount / zero metaFlag when unused):
//
//	magic "GQRIDX4\x00" | dim u32 | n u32 | tables u32
//	deadCount u32
//	if deadCount > 0: bitmap (⌈n/64⌉ × u64, one bit per id)
//	metaFlag u8
//	if metaFlag == 1: meta (n × u64)
//	quantizer blob (u32 length + quantization.Reranker marshaling)
//	rerank factor u32 (serving default for the re-ranking stage)
//	codes (n × M bytes, id-aligned; M from the quantizer)
//	per table: identical to v3
//
// GQRIDX3 (written by Save when the index carries lifecycle state —
// tombstones or per-item metadata) extends v2 with a tombstone bitmap
// and an optional meta block. The streamed posting lists are the PURGED
// view: no tombstoned id appears in any bucket, so the save is the
// canonical compacted form regardless of how many pending tombstones
// the in-memory index still holds:
//
//	magic "GQRIDX3\x00" | dim u32 | n u32 | tables u32
//	deadCount u32
//	if deadCount > 0: bitmap (⌈n/64⌉ × u64, one bit per id)
//	metaFlag u8
//	if metaFlag == 1: meta (n × u64)
//	per table: hasher blob (u32 length + bytes)
//	           bucket count nb u32
//	           codes   (nb × u64, strictly ascending)
//	           offsets ((nb+1) × u32, offsets[0]=0, offsets[nb]=live)
//	           ids     (live × u32, live = n − deadCount)
//
// GQRIDX2 (written by Save otherwise; the common tombstone-free case
// stays bit-identical with older writers) streams each table's
// compacted CSR tier directly — the on-disk layout IS the in-memory
// layout, so loading is three bulk reads per table:
//
//	magic "GQRIDX2\x00" | dim u32 | n u32 | tables u32
//	per table: hasher blob (u32 length + bytes)
//	           bucket count nb u32
//	           codes   (nb × u64, strictly ascending)
//	           offsets ((nb+1) × u32, offsets[0]=0, offsets[nb]=n)
//	           ids     (n × u32, grouped by bucket)
//
// GQRIDX1 (legacy, still loadable) interleaved per-bucket records:
//
//	magic "GQRIDX1\x00" | dim u32 | n u32 | tables u32
//	per table: hasher blob (u32 length + bytes)
//	           bucket count u32
//	           per bucket: code u64 | id count u32 | ids (u32 each)

var (
	magicV1 = [8]byte{'G', 'Q', 'R', 'I', 'D', 'X', '1', 0}
	magicV2 = [8]byte{'G', 'Q', 'R', 'I', 'D', 'X', '2', 0}
	magicV3 = [8]byte{'G', 'Q', 'R', 'I', 'D', 'X', '3', 0}
	magicV4 = [8]byte{'G', 'Q', 'R', 'I', 'D', 'X', '4', 0}
)

// maxQuantBlob bounds the quantizer blob accepted from untrusted
// streams (a generous ceiling: 256 centroids × 64k dims × 4 bytes).
const maxQuantBlob = 1 << 26

// Save writes the index (hashers + buckets) to w — GQRIDX3 when the
// index holds tombstones or metadata, GQRIDX2 otherwise. Each table's
// segments and memtable are folded into one streamed CSR tier on the
// fly, with tombstoned ids purged; aside from folding the tombstone
// delta into the frozen bitmap, the live index is not mutated.
func (ix *Index) Save(w io.Writer) error {
	if ix.N < 0 || ix.N > math.MaxUint32 {
		return fmt.Errorf("index: save: item count %d does not fit the format", ix.N)
	}
	if ix.Dim < 0 || ix.Dim > math.MaxUint32 {
		return fmt.Errorf("index: save: dim %d does not fit the format", ix.Dim)
	}
	v4 := ix.Quant != nil
	v3 := v4 || ix.tombs.dead > 0 || len(ix.tombs.delta) > 0 || ix.Meta != nil
	tombs := ix.FoldedTombWords()
	bw := bufio.NewWriter(w)
	magic := magicV2
	switch {
	case v4:
		magic = magicV4
	case v3:
		magic = magicV3
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(bw, binary.LittleEndian, v) }
	if err := writeU32(uint32(ix.Dim)); err != nil {
		return err
	}
	if err := writeU32(uint32(ix.N)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(ix.Tables))); err != nil {
		return err
	}
	if v3 {
		if err := writeU32(uint32(ix.tombs.dead)); err != nil {
			return err
		}
		if ix.tombs.dead > 0 {
			words := make([]uint64, (ix.N+63)/64)
			copy(words, tombs)
			if err := binary.Write(bw, binary.LittleEndian, words); err != nil {
				return err
			}
		}
		metaFlag := uint8(0)
		if ix.Meta != nil {
			metaFlag = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, metaFlag); err != nil {
			return err
		}
		if ix.Meta != nil {
			if err := binary.Write(bw, binary.LittleEndian, ix.Meta); err != nil {
				return err
			}
		}
	}
	if v4 {
		blob := ix.Quant.Marshal()
		if len(blob) > maxQuantBlob {
			return fmt.Errorf("index: save: quantizer blob too large (%d bytes)", len(blob))
		}
		if err := writeU32(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
		if ix.RerankFactor < 0 || ix.RerankFactor > math.MaxUint32 {
			return fmt.Errorf("index: save: rerank factor %d does not fit the format", ix.RerankFactor)
		}
		if err := writeU32(uint32(ix.RerankFactor)); err != nil {
			return err
		}
		if len(ix.QCodes) != ix.N*ix.Quant.M() {
			return fmt.Errorf("index: save: code slab %d bytes for %d items", len(ix.QCodes), ix.N)
		}
		if _, err := bw.Write(ix.QCodes); err != nil {
			return err
		}
	}
	for ti, t := range ix.Tables {
		blob, err := hash.Marshal(t.Hasher)
		if err != nil {
			return fmt.Errorf("index: save: table %d hasher: %w", ti, err)
		}
		if len(blob) > math.MaxUint32 {
			return fmt.Errorf("index: save: table %d hasher blob too large", ti)
		}
		if err := writeU32(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := bw.Write(blob); err != nil {
			return err
		}
		core := filterCore(ix.compactedCore(ti), tombs)
		if len(core.codes) > math.MaxUint32 || len(core.ids) > math.MaxUint32 {
			return fmt.Errorf("index: save: table %d bucket structure does not fit the format", ti)
		}
		if err := writeU32(uint32(len(core.codes))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.codes); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.offsets); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.ids); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads an index saved with Save — the current GQRIDX3, GQRIDX2 or
// the legacy GQRIDX1 — and re-attaches the vector block (which must be
// the same data the index was built from: same count and dimension; ids
// are validated against n). A v3 file restores the tombstone bitmap and
// per-item metadata; its posting lists are validated to be fully purged
// (no tombstoned id appears, exactly live = n − dead ids per table).
func Load(r io.Reader, data []float32, dim int) (*Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	var v1, v3, v4 bool
	switch m {
	case magicV1:
		v1 = true
	case magicV2:
	case magicV3:
		v3 = true
	case magicV4:
		v3, v4 = true, true
	default:
		return nil, fmt.Errorf("index: load: bad magic %q", m[:])
	}
	readU32 := func() (uint32, error) {
		var v uint32
		err := binary.Read(br, binary.LittleEndian, &v)
		return v, err
	}
	fdim, err := readU32()
	if err != nil {
		return nil, err
	}
	n, err := readU32()
	if err != nil {
		return nil, err
	}
	tables, err := readU32()
	if err != nil {
		return nil, err
	}
	if int(fdim) != dim {
		return nil, fmt.Errorf("index: load: file dim %d != provided dim %d", fdim, dim)
	}
	if dim <= 0 || len(data) != int(n)*dim {
		return nil, fmt.Errorf("index: load: vector block has %d floats, want %d*%d", len(data), n, dim)
	}
	if tables == 0 || tables > 1024 {
		return nil, fmt.Errorf("index: load: implausible table count %d", tables)
	}
	ix := &Index{Dim: dim, N: int(n), Data: data}
	live := n
	var tombWords []uint64
	if v3 {
		dead, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if dead > n {
			return nil, fmt.Errorf("index: load: %d tombstones for %d items", dead, n)
		}
		if dead > 0 {
			tombWords = make([]uint64, (int(n)+63)/64)
			if err := binary.Read(br, binary.LittleEndian, tombWords); err != nil {
				return nil, fmt.Errorf("index: load: %w", err)
			}
			setBits := 0
			for _, w := range tombWords {
				setBits += popcount(w)
			}
			if setBits != int(dead) {
				return nil, fmt.Errorf("index: load: tombstone bitmap has %d bits set, header says %d", setBits, dead)
			}
			if tail := int(n) & 63; tail != 0 && tombWords[len(tombWords)-1]>>uint(tail) != 0 {
				return nil, fmt.Errorf("index: load: tombstone bitmap marks ids past item count %d", n)
			}
			ix.tombs = tombSet{words: tombWords, dead: int(dead)}
		}
		live = n - dead
		var metaFlag uint8
		if err := binary.Read(br, binary.LittleEndian, &metaFlag); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if metaFlag > 1 {
			return nil, fmt.Errorf("index: load: bad meta flag %d", metaFlag)
		}
		if metaFlag == 1 {
			ix.Meta = make([]uint64, n)
			if err := binary.Read(br, binary.LittleEndian, ix.Meta); err != nil {
				return nil, fmt.Errorf("index: load: %w", err)
			}
		}
	}
	if v4 {
		blobLen, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if blobLen == 0 || blobLen > maxQuantBlob {
			return nil, fmt.Errorf("index: load: implausible quantizer size %d", blobLen)
		}
		var blobBuf bytes.Buffer
		if _, err := io.CopyN(&blobBuf, br, int64(blobLen)); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		q, err := quantization.UnmarshalReranker(blobBuf.Bytes())
		if err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if q.Dim() != dim {
			return nil, fmt.Errorf("index: load: quantizer dim %d != index dim %d", q.Dim(), dim)
		}
		factor, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("index: load: rerank factor: %w", err)
		}
		if factor == 0 || factor > 1<<20 {
			return nil, fmt.Errorf("index: load: implausible rerank factor %d", factor)
		}
		ix.RerankFactor = int(factor)
		codes := make([]uint8, int(n)*q.M())
		if _, err := io.ReadFull(br, codes); err != nil {
			return nil, fmt.Errorf("index: load: code slab: %w", err)
		}
		if err := ix.AttachQuantizer(q, codes); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
	}
	cores := make([]*coreStore, 0, tables)
	for t := 0; t < int(tables); t++ {
		blobLen, err := readU32()
		if err != nil {
			return nil, err
		}
		if blobLen > 1<<24 {
			return nil, fmt.Errorf("index: load: implausible hasher size %d", blobLen)
		}
		// CopyN rather than a single up-front allocation: a corrupt
		// length on a truncated stream then costs only the bytes
		// actually present.
		var blobBuf bytes.Buffer
		if _, err := io.CopyN(&blobBuf, br, int64(blobLen)); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		h, err := hash.Unmarshal(blobBuf.Bytes())
		if err != nil {
			return nil, err
		}
		var core *coreStore
		if v1 {
			core, err = loadTableV1(br, n, t)
		} else {
			core, err = loadTableV2(br, n, live, t)
		}
		if err != nil {
			return nil, err
		}
		if tombWords != nil {
			for _, id := range core.ids {
				if tombTest(tombWords, id) {
					return nil, fmt.Errorf("index: load: table %d posting lists contain tombstoned id %d", t, id)
				}
			}
		}
		ix.Tables = append(ix.Tables, &Table{Hasher: h, tail: newTailStore()})
		cores = append(cores, core)
	}
	ix.segs = []*Segment{newSegment(cores, 0, int(n), int(live), 0)}
	ix.segSeq = 1
	return ix, nil
}

// compactedCore folds table t's bucket structure — every segment core
// plus the memtable — into a single CSR tier (the index itself is not
// mutated). Persistence streams this view.
func (ix *Index) compactedCore(t int) *coreStore {
	var c *coreStore
	for _, s := range ix.segs {
		if c == nil {
			c = s.cores[t]
		} else {
			c = mergeCores(c, s.cores[t])
		}
	}
	if c == nil {
		c = newCoreStore(nil, []uint32{0}, nil)
	}
	return c.merge(ix.Tables[t].tail)
}

// loadTableV2 reads one table's CSR arrays (shared by the v2 and v3
// formats) and validates the structural invariants (ascending codes,
// monotone offsets spanning exactly live ids, ids in range). live == n
// for v2 files; a v3 file stores only non-tombstoned ids.
func loadTableV2(br *bufio.Reader, n, live uint32, t int) (*coreStore, error) {
	var nb uint32
	if err := binary.Read(br, binary.LittleEndian, &nb); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if uint64(nb) > uint64(live) {
		return nil, fmt.Errorf("index: load: table %d has %d buckets for %d items", t, nb, live)
	}
	codes := make([]uint64, nb)
	if err := binary.Read(br, binary.LittleEndian, codes); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			return nil, fmt.Errorf("index: load: table %d bucket codes not ascending", t)
		}
	}
	offsets := make([]uint32, nb+1)
	if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if offsets[0] != 0 || offsets[nb] != live {
		return nil, fmt.Errorf("index: load: table %d offsets span [%d,%d], want [0,%d]", t, offsets[0], offsets[nb], live)
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("index: load: table %d offsets not monotone", t)
		}
		if offsets[i] == offsets[i-1] {
			return nil, fmt.Errorf("index: load: table %d stores an empty bucket", t)
		}
	}
	ids := make([]int32, live)
	if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	for _, id := range ids {
		if id < 0 || uint32(id) >= n {
			return nil, fmt.Errorf("index: load: item id %d out of range", id)
		}
	}
	return newCoreStore(codes, offsets, ids), nil
}

// loadTableV1 reads one table in the legacy per-bucket record format
// and assembles the CSR tier from it. V1 writers emitted buckets in
// ascending code order, which is verified rather than assumed.
func loadTableV1(br *bufio.Reader, n uint32, t int) (*coreStore, error) {
	var nb uint32
	if err := binary.Read(br, binary.LittleEndian, &nb); err != nil {
		return nil, fmt.Errorf("index: load: %w", err)
	}
	if uint64(nb) > uint64(n) {
		return nil, fmt.Errorf("index: load: table %d has %d buckets for %d items", t, nb, n)
	}
	codes := make([]uint64, 0, nb)
	offsets := make([]uint32, 1, nb+1)
	ids := make([]int32, 0, n)
	for b := 0; b < int(nb); b++ {
		var code uint64
		if err := binary.Read(br, binary.LittleEndian, &code); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if len(codes) > 0 && code <= codes[len(codes)-1] {
			return nil, fmt.Errorf("index: load: table %d bucket codes not ascending", t)
		}
		var cnt uint32
		if err := binary.Read(br, binary.LittleEndian, &cnt); err != nil {
			return nil, fmt.Errorf("index: load: %w", err)
		}
		if uint64(len(ids))+uint64(cnt) > uint64(n) {
			return nil, fmt.Errorf("index: load: table %d holds more ids than items", t)
		}
		for i := 0; i < int(cnt); i++ {
			var v uint32
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, fmt.Errorf("index: load: %w", err)
			}
			if v >= n {
				return nil, fmt.Errorf("index: load: item id %d out of range", v)
			}
			ids = append(ids, int32(v))
		}
		codes = append(codes, code)
		offsets = append(offsets, uint32(len(ids)))
	}
	if len(ids) != int(n) {
		return nil, fmt.Errorf("index: load: table %d indexes %d of %d items", t, len(ids), n)
	}
	return newCoreStore(codes, offsets, ids), nil
}
