package index

import (
	"slices"
	"sort"
)

// Compact bucket storage. A table holds its posting lists in two tiers:
//
//   - a frozen CSR core — sorted bucket codes, prefix-sum offsets into
//     one flat id array, and an open-addressing probe table mapping
//     code → slot. Built once, never mutated; any number of readers may
//     share it by pointer.
//   - a small mutable delta tail that Add appends into. The tail keeps
//     its own growable probe table (code → bucket position), so probing
//     either tier is array walks only — no Go map on the query path.
//
// Snapshot publication shares every frozen core by pointer (O(1)) and
// clones the tail (O(tail)); folding tails into cores happens on the
// segment seal/merge path (segment.go), never inline on publication.
// This replaces the previous map[uint64][]int32 per table, whose
// snapshot cost was a maps.Clone over every non-empty bucket and whose
// probes paid Go-map hashing and pointer chasing per lookup.

// ProbeTable is an open-addressing hash table mapping uint64 keys to
// dense slot numbers. It exists to make code → slot lookups two array
// loads in the common case: Fibonacci hashing into a power-of-two
// table, linear probing, ≤ 50% load factor. The zero value is an empty
// table that misses every lookup.
type ProbeTable struct {
	keys  []uint64
	slots []uint32 // slot+1; 0 marks an empty cell
	mask  uint64
}

// NewProbeTable builds a probe table over the given distinct keys; key
// i maps to slot i.
func NewProbeTable(keys []uint64) ProbeTable {
	if len(keys) == 0 {
		return ProbeTable{}
	}
	size := 1
	for size < 2*len(keys) {
		size <<= 1
	}
	p := ProbeTable{keys: make([]uint64, size), slots: make([]uint32, size), mask: uint64(size - 1)}
	for i, k := range keys {
		p.insert(k, uint32(i))
	}
	return p
}

// mix64 is the 64-bit finalizer of MurmurHash3: full avalanche, so
// nearby binary codes (which differ in few bits) spread over the table.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// insert adds a key assumed absent. The ≤ 50% load factor kept by the
// builders guarantees an empty cell exists.
func (p *ProbeTable) insert(key uint64, slot uint32) {
	i := mix64(key) & p.mask
	for p.slots[i] != 0 {
		i = (i + 1) & p.mask
	}
	p.keys[i] = key
	p.slots[i] = slot + 1
}

// Lookup returns the slot stored for key.
func (p *ProbeTable) Lookup(key uint64) (uint32, bool) {
	if len(p.slots) == 0 {
		return 0, false
	}
	i := mix64(key) & p.mask
	for {
		s := p.slots[i]
		if s == 0 {
			return 0, false
		}
		if p.keys[i] == key {
			return s - 1, true
		}
		i = (i + 1) & p.mask
	}
}

// clone deep-copies the cell arrays so a frozen reader is unaffected by
// the writer's subsequent in-place inserts.
func (p *ProbeTable) clone() ProbeTable {
	return ProbeTable{keys: slices.Clone(p.keys), slots: slices.Clone(p.slots), mask: p.mask}
}

// memoryBytes estimates the table's storage.
func (p *ProbeTable) memoryBytes() int { return 8*len(p.keys) + 4*len(p.slots) }

// coreStore is the frozen CSR tier: codes sorted ascending, ids of
// bucket s at ids[offsets[s]:offsets[s+1]], probe mapping code → s.
type coreStore struct {
	codes   []uint64
	offsets []uint32
	ids     []int32
	probe   ProbeTable
}

// newCoreStore wraps already-sorted CSR arrays (codes strictly
// ascending, offsets of length len(codes)+1).
func newCoreStore(codes []uint64, offsets []uint32, ids []int32) *coreStore {
	return &coreStore{codes: codes, offsets: offsets, ids: ids, probe: NewProbeTable(codes)}
}

// buildCore sorts (code, id) pairs into a coreStore. Within one code,
// ids keep their input order (the id-ascending insertion order of the
// previous map layout).
func buildCore(codes []uint64, ids []int32) *coreStore {
	if len(codes) != len(ids) {
		panic("index: buildCore slice length mismatch")
	}
	order := make([]int, len(codes))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return codes[order[a]] < codes[order[b]] })
	outCodes := make([]uint64, 0, len(codes))
	outIDs := make([]int32, len(ids))
	offsets := make([]uint32, 1, len(codes)+1)
	for i, src := range order {
		c := codes[src]
		if len(outCodes) == 0 || outCodes[len(outCodes)-1] != c {
			outCodes = append(outCodes, c)
			offsets = append(offsets, uint32(i))
		}
		outIDs[i] = ids[src]
		offsets[len(offsets)-1] = uint32(i + 1)
	}
	return newCoreStore(outCodes, offsets, outIDs)
}

// get returns the posting list stored under code (nil on a miss).
func (c *coreStore) get(code uint64) []int32 {
	slot, ok := c.probe.Lookup(code)
	if !ok {
		return nil
	}
	return c.ids[c.offsets[slot]:c.offsets[slot+1]]
}

// bucketAt returns slot s's posting list.
func (c *coreStore) bucketAt(s int) []int32 { return c.ids[c.offsets[s]:c.offsets[s+1]] }

// items returns the number of ids stored.
func (c *coreStore) items() int { return len(c.ids) }

func (c *coreStore) memoryBytes() int {
	return 8*len(c.codes) + 4*len(c.offsets) + 4*len(c.ids) + c.probe.memoryBytes()
}

// merge compacts the tail into a fresh core: a linear merge of the
// sorted core codes with the sorted tail codes, tail ids appended after
// core ids for shared codes (tail ids are always larger — they were
// assigned later — so per-bucket id order stays ascending).
func (c *coreStore) merge(ts *tailStore) *coreStore {
	if ts.items == 0 {
		return c
	}
	order := make([]int, len(ts.codes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ts.codes[order[a]] < ts.codes[order[b]] })

	codes := make([]uint64, 0, len(c.codes)+len(ts.codes))
	ids := make([]int32, 0, len(c.ids)+ts.items)
	offsets := make([]uint32, 1, len(c.codes)+len(ts.codes)+1)
	emit := func(code uint64, coreSlot, tailPos int) {
		codes = append(codes, code)
		if coreSlot >= 0 {
			ids = append(ids, c.bucketAt(coreSlot)...)
		}
		if tailPos >= 0 {
			ids = append(ids, ts.buckets[tailPos]...)
		}
		offsets = append(offsets, uint32(len(ids)))
	}
	i, j := 0, 0
	for i < len(c.codes) || j < len(order) {
		switch {
		case j >= len(order) || (i < len(c.codes) && c.codes[i] < ts.codes[order[j]]):
			emit(c.codes[i], i, -1)
			i++
		case i >= len(c.codes) || ts.codes[order[j]] < c.codes[i]:
			emit(ts.codes[order[j]], -1, order[j])
			j++
		default: // same code in both tiers
			emit(c.codes[i], i, order[j])
			i++
			j++
		}
	}
	return newCoreStore(codes, offsets, ids)
}

// tailStore is the mutable delta tier: per-bucket id slices in
// insertion order plus a growable probe table for O(1) code → bucket
// position. Only the writer mutates it; frozen readers work on a
// clone.
type tailStore struct {
	probe   ProbeTable
	codes   []uint64 // distinct codes, insertion order
	buckets [][]int32
	items   int
}

func newTailStore() *tailStore { return &tailStore{} }

// add appends id under code, growing the probe table as needed.
func (ts *tailStore) add(code uint64, id int32) {
	if pos, ok := ts.probe.Lookup(code); ok {
		ts.buckets[pos] = append(ts.buckets[pos], id)
	} else {
		ts.codes = append(ts.codes, code)
		ts.buckets = append(ts.buckets, []int32{id})
		if 2*(len(ts.codes)+1) > len(ts.probe.slots) {
			ts.probe = NewProbeTable(ts.codes) // rehash into a bigger table
		} else {
			ts.probe.insert(code, uint32(len(ts.codes)-1))
		}
	}
	ts.items++
}

// get returns the tail posting list under code (nil on a miss).
func (ts *tailStore) get(code uint64) []int32 {
	if ts.items == 0 {
		return nil
	}
	pos, ok := ts.probe.Lookup(code)
	if !ok {
		return nil
	}
	return ts.buckets[pos]
}

// clone freezes the tail for a published snapshot. The probe cells are
// deep-copied (the writer inserts into them in place); code and bucket
// arrays are shallow-copied slice headers — the writer only ever
// appends past the lengths captured here, so a reader never touches a
// cell a later add writes.
func (ts *tailStore) clone() *tailStore {
	return &tailStore{
		probe:   ts.probe.clone(),
		codes:   slices.Clone(ts.codes),
		buckets: slices.Clone(ts.buckets),
		items:   ts.items,
	}
}

func (ts *tailStore) memoryBytes() int {
	total := ts.probe.memoryBytes() + 8*len(ts.codes) + 24*len(ts.buckets)
	total += 4 * ts.items
	return total
}

// sealCore freezes a tail into a standalone CSR core (the memtable →
// segment transition).
func sealCore(ts *tailStore) *coreStore {
	empty := newCoreStore(nil, []uint32{0}, nil)
	return empty.merge(ts)
}

// tombTest reports whether id's bit is set in the bitmap (ids past the
// bitmap's end are live).
func tombTest(words []uint64, id int32) bool {
	w := int(id) >> 6
	return w < len(words) && words[w]&(1<<(uint(id)&63)) != 0
}

// filterCore rewrites a frozen core without the ids whose bits are set
// in tombs, dropping buckets that become empty. When nothing is dead the
// input is returned unchanged (no copy) — the common case for a merge
// run with no tombstones in range.
func filterCore(c *coreStore, tombs []uint64) *coreStore {
	if len(tombs) == 0 {
		return c
	}
	dead := 0
	for _, id := range c.ids {
		if tombTest(tombs, id) {
			dead++
		}
	}
	if dead == 0 {
		return c
	}
	codes := make([]uint64, 0, len(c.codes))
	ids := make([]int32, 0, len(c.ids)-dead)
	offsets := make([]uint32, 1, len(c.codes)+1)
	for s, code := range c.codes {
		before := len(ids)
		for _, id := range c.bucketAt(s) {
			if !tombTest(tombs, id) {
				ids = append(ids, id)
			}
		}
		if len(ids) > before {
			codes = append(codes, code)
			offsets = append(offsets, uint32(len(ids)))
		}
	}
	return newCoreStore(codes, offsets, ids)
}

// mergeCores linearly merges two frozen cores into a fresh one. For a
// code present in both, a's ids precede b's — callers merge segments in
// ascending-minID order, so per-bucket id order stays ascending.
func mergeCores(a, b *coreStore) *coreStore {
	if b.items() == 0 && len(b.codes) == 0 {
		return a
	}
	if a.items() == 0 && len(a.codes) == 0 {
		return b
	}
	codes := make([]uint64, 0, len(a.codes)+len(b.codes))
	ids := make([]int32, 0, len(a.ids)+len(b.ids))
	offsets := make([]uint32, 1, len(a.codes)+len(b.codes)+1)
	emit := func(code uint64, aSlot, bSlot int) {
		codes = append(codes, code)
		if aSlot >= 0 {
			ids = append(ids, a.bucketAt(aSlot)...)
		}
		if bSlot >= 0 {
			ids = append(ids, b.bucketAt(bSlot)...)
		}
		offsets = append(offsets, uint32(len(ids)))
	}
	i, j := 0, 0
	for i < len(a.codes) || j < len(b.codes) {
		switch {
		case j >= len(b.codes) || (i < len(a.codes) && a.codes[i] < b.codes[j]):
			emit(a.codes[i], i, -1)
			i++
		case i >= len(a.codes) || b.codes[j] < a.codes[i]:
			emit(b.codes[j], -1, j)
			j++
		default:
			emit(a.codes[i], i, j)
			i++
			j++
		}
	}
	return newCoreStore(codes, offsets, ids)
}
