package index

import (
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
)

func buildSmall(t *testing.T, tables int) (*Index, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "idx", N: 500, Dim: 16, Clusters: 4, LatentDim: 4, Seed: 31,
	})
	ix, err := Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 8, tables, 1)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

func TestEveryItemRetrievableByOwnCode(t *testing.T) {
	ix, ds := buildSmall(t, 1)
	tbl := ix.Tables[0]
	for i := 0; i < ds.N(); i++ {
		code := tbl.Hasher.Code(ds.Vector(i))
		found := false
		for _, id := range ix.Bucket(0, code) {
			if id == int32(i) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("item %d missing from its own bucket", i)
		}
	}
}

func TestStatsConsistent(t *testing.T) {
	ix, ds := buildSmall(t, 1)
	s := ix.TableStats(0)
	if s.Items != ds.N() {
		t.Fatalf("stats items %d != N %d", s.Items, ds.N())
	}
	if s.Buckets != ix.BucketCount(0) {
		t.Fatal("stats bucket count mismatch")
	}
	if s.MaxBucketSize <= 0 || float64(s.MaxBucketSize) < s.AvgBucketSize {
		t.Fatalf("implausible occupancy stats %+v", s)
	}
}

func TestCodesSortedAndComplete(t *testing.T) {
	ix, _ := buildSmall(t, 1)
	codes := ix.Codes(0)
	if len(codes) != ix.BucketCount(0) {
		t.Fatal("Codes length mismatch")
	}
	for i := 1; i < len(codes); i++ {
		if codes[i] <= codes[i-1] {
			t.Fatal("Codes not strictly ascending")
		}
	}
}

func TestMultiTableIndependentHashers(t *testing.T) {
	ix, ds := buildSmall(t, 3)
	if len(ix.Tables) != 3 {
		t.Fatalf("tables = %d", len(ix.Tables))
	}
	// PCAH is deterministic so same-learner tables collapse; use LSH to
	// check seeds differ per table.
	ix2, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	x := ds.Vector(0)
	if ix2.Tables[0].Hasher.Code(x) == ix2.Tables[1].Hasher.Code(x) {
		// Could collide by chance for one vector; check a few.
		same := true
		for i := 0; i < 20; i++ {
			if ix2.Tables[0].Hasher.Code(ds.Vector(i)) != ix2.Tables[1].Hasher.Code(ds.Vector(i)) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("multi-table hashers identical; seeds not varied")
		}
	}
}

func TestBuildValidation(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{Name: "v", N: 100, Dim: 8, Seed: 1})
	if _, err := Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 8, 0, 1); err == nil {
		t.Fatal("Build must reject zero tables")
	}
	if _, err := Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 99, 1, 1); err == nil {
		t.Fatal("Build must propagate trainer errors")
	}
}

func TestVectorAccessor(t *testing.T) {
	ix, ds := buildSmall(t, 1)
	for i := 0; i < 10; i++ {
		v := ix.Vector(int32(i))
		for j := range v {
			if v[j] != ds.Vector(i)[j] {
				t.Fatal("Vector accessor mismatch")
			}
		}
	}
	if ix.Bits() != 8 {
		t.Fatalf("Bits = %d", ix.Bits())
	}
}

func TestCodeLengthFor(t *testing.T) {
	cases := []struct {
		n, ep, want int
	}{
		{20000, 10, 10},
		{60000, 10, 12},
		{120000, 10, 13},
		{240000, 10, 14},
		{1000000, 10, 16},
		{5, 10, 1},
		{1 << 30, 1, 30},
	}
	for _, c := range cases {
		if got := CodeLengthFor(c.n, c.ep); got != c.want {
			t.Fatalf("CodeLengthFor(%d,%d) = %d, want %d", c.n, c.ep, got, c.want)
		}
	}
	// Paper's own examples: m=12,16,18,20 for 60K,1M,5M,10M at EP=10.
	paper := []struct{ n, m int }{
		{60000, 12}, {1000000, 16}, {5000000, 18}, {10000000, 20},
	}
	for _, c := range paper {
		got := CodeLengthFor(c.n, 10)
		if got < c.m-1 || got > c.m {
			t.Fatalf("CodeLengthFor(%d) = %d, paper used %d", c.n, got, c.m)
		}
	}
}

func TestAverageOccupancyNearEP(t *testing.T) {
	// With m = log2(N/10), average occupancy should be within an order
	// of magnitude of 10 (buckets are not uniformly filled).
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "occ", N: 5000, Dim: 16, Clusters: 8, LatentDim: 4, Seed: 32,
	})
	bits := CodeLengthFor(ds.N(), 10)
	ix, err := Build(hash.ITQ{Iterations: 10}, ds.Vectors, ds.N(), ds.Dim, bits, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := ix.TableStats(0)
	if s.AvgBucketSize < 2 || s.AvgBucketSize > 200 {
		t.Fatalf("average occupancy %g too far from EP=10", s.AvgBucketSize)
	}
}
