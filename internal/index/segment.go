package index

import (
	"fmt"
	"sync/atomic"
)

// Segment is one frozen, immutable run of the index: the posting lists
// (one CSR core per table) for the contiguous id range
// [minID, minID+count). Segments are produced by sealing the memtable
// and by merging adjacent segments; once built they are never mutated,
// so any number of readers may share one by pointer.
//
// Lifetime is reference-counted: a segment is born with one reference
// (the live index's segment list) and every published snapshot retains
// it for the duration of the view. When the count reaches zero the
// optional onZero hook runs — the durability layer uses it to delete
// the segment's file once no reader or recovery path can need it.
type Segment struct {
	cores  []*coreStore // one per table
	minID  int          // first id covered
	count  int          // number of items
	seq    uint64       // allocation order; names the segment file
	refs   atomic.Int64
	onZero atomic.Value // func(); set at most once, after the file exists
}

func newSegment(cores []*coreStore, minID, count int, seq uint64) *Segment {
	s := &Segment{cores: cores, minID: minID, count: count, seq: seq}
	s.refs.Store(1)
	return s
}

// MinID returns the first item id the segment covers.
func (s *Segment) MinID() int { return s.minID }

// Items returns the number of items the segment covers.
func (s *Segment) Items() int { return s.count }

// Seq returns the segment's allocation sequence number.
func (s *Segment) Seq() uint64 { return s.seq }

// Tables returns the number of hash tables the segment carries cores
// for.
func (s *Segment) Tables() int { return len(s.cores) }

// Retain adds a reference (a snapshot view capturing the segment).
func (s *Segment) Retain() { s.refs.Add(1) }

// Release drops one reference; the last release runs the onZero hook.
func (s *Segment) Release() {
	if s.refs.Add(-1) == 0 {
		if f, ok := s.onZero.Load().(func()); ok && f != nil {
			f()
		}
	}
}

// SetOnZero installs the zero-reference hook (segment-file cleanup).
// If the count already hit zero — the segment was merged away while its
// file was still being written — the hook runs immediately.
func (s *Segment) SetOnZero(f func()) {
	s.onZero.Store(f)
	if s.refs.Load() == 0 && f != nil {
		f()
	}
}

// MergeSegments folds adjacent segments (ordered by ascending MinID,
// covering a contiguous id range) into one. Pure function over
// immutable inputs, so it is safe to run outside any lock — this is the
// background merger's O(core) work that used to stall snapshot
// publication.
func MergeSegments(in []*Segment, seq uint64) (*Segment, error) {
	if len(in) < 2 {
		return nil, fmt.Errorf("index: merge needs at least 2 segments, got %d", len(in))
	}
	count := 0
	for k, s := range in {
		if s.minID != in[0].minID+count {
			return nil, fmt.Errorf("index: merge inputs not adjacent at segment %d (minID %d, want %d)",
				k, s.minID, in[0].minID+count)
		}
		count += s.count
	}
	nt := len(in[0].cores)
	cores := make([]*coreStore, nt)
	for t := 0; t < nt; t++ {
		c := in[0].cores[t]
		for _, s := range in[1:] {
			c = mergeCores(c, s.cores[t])
		}
		cores[t] = c
	}
	return newSegment(cores, in[0].minID, count, seq), nil
}
