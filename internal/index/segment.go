package index

import (
	"fmt"
	"sync/atomic"
)

// Segment is one frozen, immutable run of the index: the posting lists
// (one CSR core per table) for the contiguous id range
// [minID, minID+span). Segments are produced by sealing the memtable
// and by merging adjacent segments; once built they are never mutated,
// so any number of readers may share one by pointer.
//
// span counts every id slot the segment covers, dead or alive; items
// counts the ids actually present in the posting lists. The two differ
// when tombstoned ids were purged at seal or merge time: the id range
// stays contiguous (vectors are never moved), but the dead ids simply
// do not appear in any bucket. items <= span always.
//
// Lifetime is reference-counted: a segment is born with one reference
// (the live index's segment list) and every published snapshot retains
// it for the duration of the view. When the count reaches zero the
// optional onZero hook runs — the durability layer uses it to delete
// the segment's file once no reader or recovery path can need it.
type Segment struct {
	cores  []*coreStore // one per table
	minID  int          // first id covered
	span   int          // width of the covered id range
	items  int          // live ids in the posting lists (<= span)
	seq    uint64       // allocation order; names the segment file
	refs   atomic.Int64
	onZero atomic.Value // func(); set at most once, after the file exists
}

func newSegment(cores []*coreStore, minID, span, items int, seq uint64) *Segment {
	s := &Segment{cores: cores, minID: minID, span: span, items: items, seq: seq}
	s.refs.Store(1)
	return s
}

// MinID returns the first item id the segment covers.
func (s *Segment) MinID() int { return s.minID }

// Span returns the width of the contiguous id range the segment covers,
// counting purged (tombstoned) slots.
func (s *Segment) Span() int { return s.span }

// Items returns the number of ids present in the segment's posting
// lists — the live population at seal/merge time.
func (s *Segment) Items() int { return s.items }

// Seq returns the segment's allocation sequence number.
func (s *Segment) Seq() uint64 { return s.seq }

// Tables returns the number of hash tables the segment carries cores
// for.
func (s *Segment) Tables() int { return len(s.cores) }

// Retain adds a reference (a snapshot view capturing the segment).
func (s *Segment) Retain() { s.refs.Add(1) }

// Release drops one reference; the last release runs the onZero hook.
func (s *Segment) Release() {
	if s.refs.Add(-1) == 0 {
		if f, ok := s.onZero.Load().(func()); ok && f != nil {
			f()
		}
	}
}

// SetOnZero installs the zero-reference hook (segment-file cleanup).
// If the count already hit zero — the segment was merged away while its
// file was still being written — the hook runs immediately.
func (s *Segment) SetOnZero(f func()) {
	s.onZero.Store(f)
	if s.refs.Load() == 0 && f != nil {
		f()
	}
}

// MergeSegments folds adjacent segments (ordered by ascending MinID,
// covering a contiguous id range) into one, dropping any id whose bit is
// set in tombs (a frozen tombstone bitmap over the full id space; nil
// means no purging). The merged segment is tombstone-free with respect
// to tombs: purge happens here, during the background merge, so the
// merger is the one place dead ids leave the posting lists. Pure
// function over immutable inputs, so it is safe to run outside any
// lock. A single input is accepted when tombs is non-nil — that is the
// purge-only rewrite Compact uses for a lone segment.
func MergeSegments(in []*Segment, seq uint64, tombs []uint64) (*Segment, error) {
	if len(in) < 2 && !(len(in) == 1 && tombs != nil) {
		return nil, fmt.Errorf("index: merge needs at least 2 segments, got %d", len(in))
	}
	span := 0
	for k, s := range in {
		if s.minID != in[0].minID+span {
			return nil, fmt.Errorf("index: merge inputs not adjacent at segment %d (minID %d, want %d)",
				k, s.minID, in[0].minID+span)
		}
		span += s.span
	}
	nt := len(in[0].cores)
	cores := make([]*coreStore, nt)
	for t := 0; t < nt; t++ {
		c := filterCore(in[0].cores[t], tombs)
		for _, s := range in[1:] {
			c = mergeCores(c, filterCore(s.cores[t], tombs))
		}
		cores[t] = c
	}
	items := 0
	if nt > 0 {
		items = cores[0].items()
	}
	return newSegment(cores, in[0].minID, span, items, seq), nil
}
