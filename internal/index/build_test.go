package index

import (
	"math/rand"
	"testing"

	"gqr/internal/hash"
)

func buildBlock(n, d int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float32, n*d)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	return data
}

// TestBuildPMatchesBuild checks the storage layer's half of the
// determinism invariant: at any worker bound, BuildP produces the same
// bucket structure as the serial Build — same codes, same posting
// lists in the same order, per table.
func TestBuildPMatchesBuild(t *testing.T) {
	const n, d, bits, tables = 2500, 12, 7, 3
	data := buildBlock(n, d, 3)
	want, err := Build(hash.ITQ{Iterations: 10}, data, n, d, bits, tables, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 5, 16} {
		got, err := BuildP(hash.ITQ{Iterations: 10}, data, n, d, bits, tables, 99, p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Tables) != len(want.Tables) {
			t.Fatalf("p=%d: %d tables, want %d", p, len(got.Tables), len(want.Tables))
		}
		for ti := range want.Tables {
			wc := want.Codes(ti)
			gc := got.Codes(ti)
			if len(wc) != len(gc) {
				t.Fatalf("p=%d table %d: %d codes, want %d", p, ti, len(gc), len(wc))
			}
			for ci, code := range wc {
				if gc[ci] != code {
					t.Fatalf("p=%d table %d: code[%d] = %d, want %d", p, ti, ci, gc[ci], code)
				}
				wb := want.Bucket(ti, code)
				gb := got.Bucket(ti, code)
				if len(wb) != len(gb) {
					t.Fatalf("p=%d table %d code %d: bucket len %d, want %d", p, ti, code, len(gb), len(wb))
				}
				for i := range wb {
					if wb[i] != gb[i] {
						t.Fatalf("p=%d table %d code %d: id[%d] = %d, want %d", p, ti, code, i, gb[i], wb[i])
					}
				}
			}
		}
		if got.Timings.Procs != p {
			t.Fatalf("Timings.Procs = %d, want %d", got.Timings.Procs, p)
		}
		if got.Timings.Train <= 0 || got.Timings.Code <= 0 || got.Timings.Freeze <= 0 {
			t.Fatalf("p=%d: stage timings not populated: %+v", p, got.Timings)
		}
	}
}

// TestCodeItemsChunking checks the chunked coder against the plain
// loop across chunk-boundary sizes (below one chunk, exact multiples,
// stragglers).
func TestCodeItemsChunking(t *testing.T) {
	const d = 8
	train := buildBlock(500, d, 77)
	h, err := hash.LSH{}.Train(train, 500, d, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, codeChunk - 1, codeChunk, codeChunk + 1, 3*codeChunk + 17} {
		data := buildBlock(n, d, int64(n))
		wantCodes, wantIDs := codeItems(h, data, n, d, 1)
		for _, p := range []int{2, 4, 9} {
			gotCodes, gotIDs := codeItems(h, data, n, d, p)
			for i := range wantCodes {
				if gotCodes[i] != wantCodes[i] || gotIDs[i] != wantIDs[i] {
					t.Fatalf("n=%d p=%d item %d: (%d,%d) want (%d,%d)",
						n, p, i, gotCodes[i], gotIDs[i], wantCodes[i], wantIDs[i])
				}
			}
		}
	}
}
