package index

import (
	"maps"
	"math/rand"
	"runtime"
	"testing"
)

// The benchmarks below compare the CSR storage engine against the
// map[uint64][]int32 layout it replaced, on the two operations the
// refactor targets: the per-bucket probe on the query hot path and
// snapshot publication on the Add path.

const (
	benchItems = 50_000
	benchBits  = 16 // realistic code length: ~37k distinct buckets at 50k items
)

// benchPairs generates a deterministic (code, id) stream: uniform codes
// over benchBits bits, ids in insertion order — the same distribution a
// trained hasher produces on well-spread data.
func benchPairs() ([]uint64, []int32) {
	rng := rand.New(rand.NewSource(20260805))
	codes := make([]uint64, benchItems)
	ids := make([]int32, benchItems)
	for i := range codes {
		codes[i] = rng.Uint64() & ((1 << benchBits) - 1)
		ids[i] = int32(i)
	}
	return codes, ids
}

// benchProbes mixes hits (existing codes) and misses 3:1, shuffled, so
// both probe paths are exercised the way a multi-bucket probe sequence
// exercises them.
func benchProbes(codes []uint64) []uint64 {
	rng := rand.New(rand.NewSource(7))
	probes := make([]uint64, 4096)
	for i := range probes {
		if i%4 == 0 {
			probes[i] = (uint64(i) << benchBits) | 1 // guaranteed miss
		} else {
			probes[i] = codes[rng.Intn(len(codes))]
		}
	}
	return probes
}

func benchMap(codes []uint64, ids []int32) map[uint64][]int32 {
	m := make(map[uint64][]int32)
	for i, c := range codes {
		m[c] = append(m[c], ids[i])
	}
	return m
}

var benchSink int

func BenchmarkProbe(b *testing.B) {
	codes, ids := benchPairs()
	probes := benchProbes(codes)

	b.Run("map", func(b *testing.B) {
		m := benchMap(codes, ids)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += len(m[probes[i%len(probes)]])
		}
		benchSink = total
	})
	b.Run("csr", func(b *testing.B) {
		core := buildCore(codes, ids)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += len(core.get(probes[i%len(probes)]))
		}
		benchSink = total
	})
}

// BenchmarkSnapshotPublish measures freezing one table for a read
// snapshot with a 100-item delta tail (below the compaction threshold,
// the steady-state publish): the CSR engine shares the core and clones
// only the tail, where the old layout cloned the whole bucket map.
func BenchmarkSnapshotPublish(b *testing.B) {
	codes, ids := benchPairs()
	const tailN = 100

	b.Run("csr", func(b *testing.B) {
		tbl := &Table{core: buildCore(codes, ids), tail: newTailStore()}
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < tailN; i++ {
			tbl.add(rng.Uint64()&((1<<benchBits)-1), int32(benchItems+i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := tbl.freeze()
			benchSink = v.tail.items
		}
	})
	b.Run("mapclone", func(b *testing.B) {
		m := benchMap(codes, ids)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < tailN; i++ {
			c := rng.Uint64() & ((1 << benchBits) - 1)
			m[c] = append(m[c], int32(benchItems+i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := maps.Clone(m) // the pre-CSR Snapshot per table
			benchSink = len(v)
		}
	})
}

// TestStorageFootprint logs the measured heap footprint of both layouts
// over the benchmark corpus (run with -v; the numbers feed the table in
// EXPERIMENTS.md). Asserting exact bytes would chase allocator noise, so
// the only assertion is that the CSR accounting is self-consistent.
func TestStorageFootprint(t *testing.T) {
	codes, ids := benchPairs()

	heapDelta := func(build func() any) (any, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		v := build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		return v, after.HeapAlloc - before.HeapAlloc
	}

	core, csrHeap := heapDelta(func() any { return buildCore(codes, ids) })
	c := core.(*coreStore)
	m, mapHeap := heapDelta(func() any { return benchMap(codes, ids) })

	if c.memoryBytes() <= 0 || c.items() != benchItems {
		t.Fatalf("csr accounting broken: bytes=%d items=%d", c.memoryBytes(), c.items())
	}
	t.Logf("items=%d buckets=%d", benchItems, len(c.codes))
	t.Logf("csr: accounted=%d B, heap delta=%d B", c.memoryBytes(), csrHeap)
	t.Logf("map: heap delta=%d B", mapHeap)
	runtime.KeepAlive(m)
	runtime.KeepAlive(core)
}
