package index

import (
	"fmt"
	"maps"
	"math/rand"
	"runtime"
	"testing"
)

// The benchmarks below compare the CSR storage engine against the
// map[uint64][]int32 layout it replaced, on the two operations the
// refactor targets: the per-bucket probe on the query hot path and
// snapshot publication on the Add path.

const (
	benchItems = 50_000
	benchBits  = 16 // realistic code length: ~37k distinct buckets at 50k items
)

// benchPairs generates a deterministic (code, id) stream: uniform codes
// over benchBits bits, ids in insertion order — the same distribution a
// trained hasher produces on well-spread data.
func benchPairs() ([]uint64, []int32) {
	rng := rand.New(rand.NewSource(20260805))
	codes := make([]uint64, benchItems)
	ids := make([]int32, benchItems)
	for i := range codes {
		codes[i] = rng.Uint64() & ((1 << benchBits) - 1)
		ids[i] = int32(i)
	}
	return codes, ids
}

// benchProbes mixes hits (existing codes) and misses 3:1, shuffled, so
// both probe paths are exercised the way a multi-bucket probe sequence
// exercises them.
func benchProbes(codes []uint64) []uint64 {
	rng := rand.New(rand.NewSource(7))
	probes := make([]uint64, 4096)
	for i := range probes {
		if i%4 == 0 {
			probes[i] = (uint64(i) << benchBits) | 1 // guaranteed miss
		} else {
			probes[i] = codes[rng.Intn(len(codes))]
		}
	}
	return probes
}

func benchMap(codes []uint64, ids []int32) map[uint64][]int32 {
	m := make(map[uint64][]int32)
	for i, c := range codes {
		m[c] = append(m[c], ids[i])
	}
	return m
}

var benchSink int

func BenchmarkProbe(b *testing.B) {
	codes, ids := benchPairs()
	probes := benchProbes(codes)

	b.Run("map", func(b *testing.B) {
		m := benchMap(codes, ids)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += len(m[probes[i%len(probes)]])
		}
		benchSink = total
	})
	b.Run("csr", func(b *testing.B) {
		core := buildCore(codes, ids)
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += len(core.get(probes[i%len(probes)]))
		}
		benchSink = total
	})
}

// benchPairsN is benchPairs at an arbitrary corpus size.
func benchPairsN(n int) ([]uint64, []int32) {
	rng := rand.New(rand.NewSource(20260805))
	codes := make([]uint64, n)
	ids := make([]int32, n)
	for i := range codes {
		codes[i] = rng.Uint64() & ((1 << benchBits) - 1)
		ids[i] = int32(i)
	}
	return codes, ids
}

// benchIndexN builds a single-table index holding n frozen items in one
// segment plus a full (tailN-item) memtable — the worst-case publish
// moment, right before a seal.
func benchIndexN(n, tailN int) *Index {
	codes, ids := benchPairsN(n)
	ix := &Index{
		Dim: 1, N: n, Data: make([]float32, n),
		Tables: []*Table{{tail: newTailStore()}},
		segs:   []*Segment{newSegment([]*coreStore{buildCore(codes, ids)}, 0, n, n, 0)},
		segSeq: 1,
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < tailN; i++ {
		ix.Tables[0].tail.add(rng.Uint64()&((1<<benchBits)-1), int32(n+i))
		ix.Data = append(ix.Data, 0)
		ix.N++
	}
	return ix
}

// BenchmarkSnapshotPublish measures taking a read snapshot with a full
// memtable across a 64x range of frozen-corpus sizes. The LSM design's
// contract is that publication clones only the memtable and retains
// segments by reference, so ns/op must stay flat as the corpus grows —
// compare the sizes, and compare against mapclone, the pre-CSR
// publish that cloned every bucket.
func BenchmarkSnapshotPublish(b *testing.B) {
	const tailN = 256
	for _, n := range []int{10_000, 80_000, 640_000} {
		b.Run(fmt.Sprintf("lsm/n=%d", n), func(b *testing.B) {
			ix := benchIndexN(n, tailN)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v := ix.Snapshot()
				benchSink = v.MemtableItems()
				v.Release()
			}
		})
	}
	b.Run("mapclone/n=50000", func(b *testing.B) {
		codes, ids := benchPairs()
		m := benchMap(codes, ids)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < tailN; i++ {
			c := rng.Uint64() & ((1 << benchBits) - 1)
			m[c] = append(m[c], int32(benchItems+i))
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v := maps.Clone(m) // the pre-CSR Snapshot per table
			benchSink = len(v)
		}
	})
}

// TestSnapshotPublishIndependentOfCoreSize is the acceptance check
// behind the benchmark: publication cost may not scale with the frozen
// corpus. A 64x larger segment tier must publish in comparable time
// (generous 8x slack absorbs timer noise); any O(core) copy slipping
// back into Snapshot blows the ratio out by orders of magnitude.
func TestSnapshotPublishIndependentOfCoreSize(t *testing.T) {
	const tailN = 256
	timePublish := func(n int) float64 {
		ix := benchIndexN(n, tailN)
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				v := ix.Snapshot()
				benchSink = v.MemtableItems()
				v.Release()
			}
		})
		return float64(res.NsPerOp())
	}
	small, large := timePublish(10_000), timePublish(640_000)
	t.Logf("publish: 10k items %.0f ns/op, 640k items %.0f ns/op", small, large)
	if large > 8*small && large-small > 100_000 {
		t.Fatalf("snapshot publish scales with core size: 10k=%.0fns 640k=%.0fns", small, large)
	}
}

// TestStorageFootprint logs the measured heap footprint of both layouts
// over the benchmark corpus (run with -v; the numbers feed the table in
// EXPERIMENTS.md). Asserting exact bytes would chase allocator noise, so
// the only assertion is that the CSR accounting is self-consistent.
func TestStorageFootprint(t *testing.T) {
	codes, ids := benchPairs()

	heapDelta := func(build func() any) (any, uint64) {
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		v := build()
		runtime.GC()
		runtime.ReadMemStats(&after)
		return v, after.HeapAlloc - before.HeapAlloc
	}

	core, csrHeap := heapDelta(func() any { return buildCore(codes, ids) })
	c := core.(*coreStore)
	m, mapHeap := heapDelta(func() any { return benchMap(codes, ids) })

	if c.memoryBytes() <= 0 || c.items() != benchItems {
		t.Fatalf("csr accounting broken: bytes=%d items=%d", c.memoryBytes(), c.items())
	}
	t.Logf("items=%d buckets=%d", benchItems, len(c.codes))
	t.Logf("csr: accounted=%d B, heap delta=%d B", c.memoryBytes(), csrHeap)
	t.Logf("map: heap delta=%d B", mapHeap)
	runtime.KeepAlive(m)
	runtime.KeepAlive(core)
}
