package index

import (
	"bytes"
	"encoding/binary"
	"flag"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/quantization"
)

var updateGolden = flag.Bool("update", false, "regenerate golden persistence fixtures")

// sameTables fails the test unless both indexes hold identical bucket
// structures (codes, per-bucket ids) and hashers that agree on codes.
func sameTables(t *testing.T, label string, a, b *Index, probes []float32, dim int) {
	t.Helper()
	if a.N != b.N || a.Dim != b.Dim || len(a.Tables) != len(b.Tables) {
		t.Fatalf("%s: shape lost", label)
	}
	for ti := range a.Tables {
		ta, tb := a.Tables[ti], b.Tables[ti]
		codes := a.Codes(ti)
		if got := b.Codes(ti); len(got) != len(codes) {
			t.Fatalf("%s: table %d has %d codes, want %d", label, ti, len(got), len(codes))
		}
		for _, code := range codes {
			ids, got := a.Bucket(ti, code), b.Bucket(ti, code)
			if len(got) != len(ids) {
				t.Fatalf("%s: bucket %b size changed", label, code)
			}
			for i := range ids {
				if got[i] != ids[i] {
					t.Fatalf("%s: bucket %b ids changed", label, code)
				}
			}
		}
		// Hashers must agree on fresh codes.
		for i := 0; i+dim <= len(probes); i += dim {
			v := probes[i : i+dim]
			if ta.Hasher.Code(v) != tb.Hasher.Code(v) {
				t.Fatalf("%s: hasher changed after round trip", label)
			}
		}
	}
}

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "p", N: 400, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 41,
	})
	for _, l := range []hash.Learner{hash.ITQ{Iterations: 5}, hash.SH{}, hash.KMH{SubspaceBits: 2, Iterations: 5}} {
		ix, err := Build(l, ds.Vectors, ds.N(), ds.Dim, 8, 2, 42)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", l.Name(), err)
		}
		if !bytes.HasPrefix(buf.Bytes(), magicV2[:]) {
			t.Fatalf("%s: save did not emit the GQRIDX2 magic", l.Name())
		}
		ix2, err := Load(&buf, ds.Vectors, ds.Dim)
		if err != nil {
			t.Fatalf("%s: load: %v", l.Name(), err)
		}
		sameTables(t, l.Name(), ix, ix2, ds.Vectors[:30*ds.Dim], ds.Dim)
	}
}

// TestSaveIncludesDeltaTail pins that vectors sitting in the mutable
// delta tail at Save time are streamed with the compacted core.
func TestSaveIncludesDeltaTail(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "pt", N: 300, Dim: 8, Clusters: 3, LatentDim: 2, Seed: 47,
	})
	half := 200
	ix, err := Build(hash.PCAH{}, ds.Vectors[:half*ds.Dim], half, ds.Dim, 6, 1, 48)
	if err != nil {
		t.Fatal(err)
	}
	for i := half; i < ds.N(); i++ {
		if _, err := ix.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.MemtableItems() == 0 {
		t.Fatal("adds did not land in the memtable")
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Save must not have sealed the live memtable as a side effect.
	if ix.MemtableItems() == 0 {
		t.Fatal("Save compacted the live index")
	}
	ix2, err := Load(&buf, ix.Data, ds.Dim)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.N != ds.N() {
		t.Fatalf("loaded %d items, want %d", ix2.N, ds.N())
	}
	sameTables(t, "tail", ix, ix2, ds.Vectors[:20*ds.Dim], ds.Dim)
}

func TestIndexLoadValidation(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "pv", N: 200, Dim: 8, Clusters: 3, LatentDim: 2, Seed: 43,
	})
	ix, err := Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 6, 1, 44)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Wrong dim.
	if _, err := Load(bytes.NewReader(raw), ds.Vectors, 9); err == nil {
		t.Fatal("wrong dim must be rejected")
	}
	// Wrong vector count.
	if _, err := Load(bytes.NewReader(raw), ds.Vectors[:8*100], 8); err == nil {
		t.Fatal("short vector block must be rejected")
	}
	// Bad magic.
	bad := append([]byte("NOTANIDX"), raw[8:]...)
	if _, err := Load(bytes.NewReader(bad), ds.Vectors, 8); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(raw); cut += 97 {
		if _, err := Load(bytes.NewReader(raw[:cut]), ds.Vectors, 8); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

// ---- GQRIDX1 backward compatibility ----------------------------------

// saveV1 emits the legacy GQRIDX1 per-bucket record format, exactly as
// the pre-CSR Save wrote it. Kept test-side only: it regenerates the
// golden fixture under -update and pins the byte layout v1 readers
// must keep accepting.
func saveV1(w io.Writer, ix *Index) error {
	if _, err := w.Write(magicV1[:]); err != nil {
		return err
	}
	writeU32 := func(v uint32) error { return binary.Write(w, binary.LittleEndian, v) }
	if err := writeU32(uint32(ix.Dim)); err != nil {
		return err
	}
	if err := writeU32(uint32(ix.N)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(ix.Tables))); err != nil {
		return err
	}
	for ti, t := range ix.Tables {
		blob, err := hash.Marshal(t.Hasher)
		if err != nil {
			return err
		}
		if err := writeU32(uint32(len(blob))); err != nil {
			return err
		}
		if _, err := w.Write(blob); err != nil {
			return err
		}
		codes := ix.Codes(ti)
		if err := writeU32(uint32(len(codes))); err != nil {
			return err
		}
		for _, code := range codes {
			if err := binary.Write(w, binary.LittleEndian, code); err != nil {
				return err
			}
			ids := ix.Bucket(ti, code)
			if err := writeU32(uint32(len(ids))); err != nil {
				return err
			}
			for _, id := range ids {
				if err := writeU32(uint32(id)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

const (
	goldenN   = 120
	goldenDim = 6
)

// goldenVectors reproduces the fixture's vector block: a fixed-seed
// stream independent of any generator that might change.
func goldenVectors() []float32 {
	rng := rand.New(rand.NewSource(20240805))
	v := make([]float32, goldenN*goldenDim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

func goldenPath() string { return filepath.Join("testdata", "golden_v1.gqridx") }

// TestLoadGoldenV1 is the backward-compatibility gate: the committed
// GQRIDX1 fixture must keep loading byte-for-byte, and re-saving it
// must emit a GQRIDX2 stream that round-trips to the same index.
func TestLoadGoldenV1(t *testing.T) {
	vecs := goldenVectors()
	if *updateGolden {
		ix, err := Build(hash.LSH{}, vecs, goldenN, goldenDim, 8, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := saveV1(&buf, ix); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	if !bytes.HasPrefix(raw, magicV1[:]) {
		t.Fatal("fixture is not a GQRIDX1 file")
	}
	ix, err := Load(bytes.NewReader(raw), vecs, goldenDim)
	if err != nil {
		t.Fatalf("loading GQRIDX1 fixture: %v", err)
	}
	if ix.N != goldenN || ix.Dim != goldenDim || len(ix.Tables) != 2 {
		t.Fatalf("fixture shape: N=%d Dim=%d tables=%d", ix.N, ix.Dim, len(ix.Tables))
	}
	// Every item must be findable under its own code via the loaded
	// hashers — the structure survived the format, not just the bytes.
	for ti, tbl := range ix.Tables {
		for i := 0; i < goldenN; i++ {
			code := tbl.Hasher.Code(vecs[i*goldenDim : (i+1)*goldenDim])
			found := false
			for _, id := range ix.Bucket(ti, code) {
				if id == int32(i) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("item %d missing from its own bucket after v1 load", i)
			}
		}
	}
	// Re-save: must emit GQRIDX2 and round-trip identically.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), magicV2[:]) {
		t.Fatal("re-save of a v1 index did not emit GQRIDX2")
	}
	ix2, err := Load(&buf, vecs, goldenDim)
	if err != nil {
		t.Fatalf("loading re-saved GQRIDX2: %v", err)
	}
	sameTables(t, "golden", ix, ix2, vecs[:20*goldenDim], goldenDim)
}

func goldenV2Path() string { return filepath.Join("testdata", "golden_v2.gqridx") }

// TestLoadGoldenV2 pins the GQRIDX2 byte stream across releases: the
// committed fixture (written by the CSR-streaming Save of earlier
// releases) must keep loading, and the current Save must still emit
// byte-identical output for the same index — both directions of the
// format contract.
func TestLoadGoldenV2(t *testing.T) {
	vecs := goldenVectors()
	buildGolden := func() *Index {
		ix, err := Build(hash.LSH{}, vecs, goldenN, goldenDim, 8, 2, 7)
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	if *updateGolden {
		var buf bytes.Buffer
		if err := buildGolden().Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV2Path(), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenV2Path())
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	if !bytes.HasPrefix(raw, magicV2[:]) {
		t.Fatal("fixture is not a GQRIDX2 file")
	}
	ix, err := Load(bytes.NewReader(raw), vecs, goldenDim)
	if err != nil {
		t.Fatalf("loading GQRIDX2 fixture: %v", err)
	}
	want := buildGolden()
	sameTables(t, "golden-v2", want, ix, vecs[:20*goldenDim], goldenDim)
	var buf bytes.Buffer
	if err := want.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("Save no longer reproduces the committed GQRIDX2 fixture byte-for-byte")
	}
}

func goldenV3Path() string { return filepath.Join("testdata", "golden_v3.gqridx") }

// goldenV3Deleted and goldenV3Meta define the lifecycle state baked
// into the v3 fixture: a handful of tombstoned ids and a metadata word
// per item (two tag bits cycling).
var goldenV3Deleted = []int32{3, 40, 41, 119}

func goldenV3Meta() []uint64 {
	meta := make([]uint64, goldenN)
	for i := range meta {
		meta[i] = 1 << uint(i%2)
	}
	return meta
}

// buildGoldenV3 reproduces the index behind the v3 fixture: the same
// build as the v1/v2 goldens plus deletes and per-item metadata.
func buildGoldenV3(t *testing.T, vecs []float32) *Index {
	t.Helper()
	ix, err := Build(hash.LSH{}, vecs, goldenN, goldenDim, 8, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.SetMeta(goldenV3Meta()); err != nil {
		t.Fatal(err)
	}
	for _, id := range goldenV3Deleted {
		if !ix.Delete(id) {
			t.Fatalf("golden delete of id %d failed", id)
		}
	}
	return ix
}

// TestLoadGoldenV3 pins the GQRIDX3 byte stream across releases: the
// committed fixture must keep loading with its tombstones and metadata
// intact (purged posting lists validated), and the current Save must
// still reproduce it byte-for-byte.
func TestLoadGoldenV3(t *testing.T) {
	vecs := goldenVectors()
	if *updateGolden {
		var buf bytes.Buffer
		if err := buildGoldenV3(t, vecs).Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV3Path(), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenV3Path())
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	if !bytes.HasPrefix(raw, magicV3[:]) {
		t.Fatal("fixture is not a GQRIDX3 file")
	}
	ix, err := Load(bytes.NewReader(raw), vecs, goldenDim)
	if err != nil {
		t.Fatalf("loading GQRIDX3 fixture: %v", err)
	}
	if ix.N != goldenN || ix.LiveItems() != goldenN-len(goldenV3Deleted) {
		t.Fatalf("fixture shape: N=%d live=%d", ix.N, ix.LiveItems())
	}
	dead := make(map[int32]bool, len(goldenV3Deleted))
	for _, id := range goldenV3Deleted {
		dead[id] = true
		if !ix.IsDeleted(id) {
			t.Fatalf("id %d lost its tombstone across the format", id)
		}
	}
	for want, got := 0, ix.MetaSlab(); want < goldenN; want++ {
		if got[want] != 1<<uint(want%2) {
			t.Fatalf("id %d metadata word %b lost across the format", want, got[want])
		}
	}
	// The v3 posting lists are the purged view: every live item sits in
	// its own bucket, no dead id appears anywhere.
	for ti := range ix.Tables {
		seen := 0
		for _, code := range ix.Codes(ti) {
			for _, id := range ix.Bucket(ti, code) {
				if dead[id] {
					t.Fatalf("table %d still lists tombstoned id %d", ti, id)
				}
				seen++
			}
		}
		if seen != goldenN-len(goldenV3Deleted) {
			t.Fatalf("table %d lists %d ids, want %d live", ti, seen, goldenN-len(goldenV3Deleted))
		}
	}
	// Save must reproduce the fixture byte-for-byte, from the loaded
	// index and from a from-scratch rebuild alike.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("re-save of the loaded v3 fixture is not byte-identical")
	}
	buf.Reset()
	if err := buildGoldenV3(t, vecs).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("Save no longer reproduces the committed GQRIDX3 fixture byte-for-byte")
	}
}

func goldenV4Path() string { return filepath.Join("testdata", "golden_v4.gqridx") }

// buildGoldenV4 reproduces the index behind the v4 fixture: the v3
// lifecycle state plus an OPQ-rotated serving quantizer, its id-aligned
// code column and a persisted rerank factor.
func buildGoldenV4(t *testing.T, vecs []float32) *Index {
	t.Helper()
	ix := buildGoldenV3(t, vecs)
	q, err := quantization.TrainReranker(vecs, goldenN, goldenDim, 3, 16, true, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AttachQuantizer(q, q.EncodeAll(vecs, goldenN, 1)); err != nil {
		t.Fatal(err)
	}
	ix.RerankFactor = 5
	return ix
}

// TestLoadGoldenV4 pins the GQRIDX4 byte stream across releases: the
// committed fixture must keep loading with its quantizer, code column,
// rerank factor, tombstones and metadata intact, and the current Save
// must still reproduce it byte-for-byte.
func TestLoadGoldenV4(t *testing.T) {
	vecs := goldenVectors()
	if *updateGolden {
		var buf bytes.Buffer
		if err := buildGoldenV4(t, vecs).Save(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV4Path(), buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(goldenV4Path())
	if err != nil {
		t.Fatalf("missing golden fixture (regenerate with -update): %v", err)
	}
	if !bytes.HasPrefix(raw, magicV4[:]) {
		t.Fatal("fixture is not a GQRIDX4 file")
	}
	ix, err := Load(bytes.NewReader(raw), vecs, goldenDim)
	if err != nil {
		t.Fatalf("loading GQRIDX4 fixture: %v", err)
	}
	if ix.N != goldenN || ix.LiveItems() != goldenN-len(goldenV3Deleted) {
		t.Fatalf("fixture shape: N=%d live=%d", ix.N, ix.LiveItems())
	}
	q := ix.Quantizer()
	if q == nil {
		t.Fatal("quantizer lost across the format")
	}
	if q.M() != 3 || q.K() != 16 || !q.Rotated() || ix.RerankFactor != 5 {
		t.Fatalf("quantizer config lost: M=%d K=%d rot=%v factor=%d",
			q.M(), q.K(), q.Rotated(), ix.RerankFactor)
	}
	// The code column must be the loaded quantizer's own coding of the
	// vector block, id-aligned (tombstoned rows keep their slot).
	if got, want := ix.CodesSlab(), q.EncodeAll(vecs, goldenN, 1); !bytes.Equal(got, want) {
		t.Fatal("code column no longer matches the quantizer's coding of the block")
	}
	for _, id := range goldenV3Deleted {
		if !ix.IsDeleted(id) {
			t.Fatalf("id %d lost its tombstone across the format", id)
		}
	}
	// Save must reproduce the fixture byte-for-byte, from the loaded
	// index and from a from-scratch rebuild alike.
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("re-save of the loaded v4 fixture is not byte-identical")
	}
	buf.Reset()
	if err := buildGoldenV4(t, vecs).Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), raw) {
		t.Fatal("Save no longer reproduces the committed GQRIDX4 fixture byte-for-byte")
	}
}
