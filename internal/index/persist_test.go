package index

import (
	"bytes"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
)

func TestIndexSaveLoadRoundTrip(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "p", N: 400, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 41,
	})
	for _, l := range []hash.Learner{hash.ITQ{Iterations: 5}, hash.SH{}, hash.KMH{SubspaceBits: 2, Iterations: 5}} {
		ix, err := Build(l, ds.Vectors, ds.N(), ds.Dim, 8, 2, 42)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		var buf bytes.Buffer
		if err := ix.Save(&buf); err != nil {
			t.Fatalf("%s: save: %v", l.Name(), err)
		}
		ix2, err := Load(&buf, ds.Vectors, ds.Dim)
		if err != nil {
			t.Fatalf("%s: load: %v", l.Name(), err)
		}
		if ix2.N != ix.N || ix2.Dim != ix.Dim || len(ix2.Tables) != len(ix.Tables) {
			t.Fatalf("%s: shape lost", l.Name())
		}
		for ti := range ix.Tables {
			a, b := ix.Tables[ti], ix2.Tables[ti]
			if a.BucketCount() != b.BucketCount() {
				t.Fatalf("%s: table %d bucket count %d != %d", l.Name(), ti, a.BucketCount(), b.BucketCount())
			}
			for code, ids := range a.Buckets {
				got := b.Buckets[code]
				if len(got) != len(ids) {
					t.Fatalf("%s: bucket %b size changed", l.Name(), code)
				}
				for i := range ids {
					if got[i] != ids[i] {
						t.Fatalf("%s: bucket %b ids changed", l.Name(), code)
					}
				}
			}
			// Hashers must agree on fresh codes.
			for i := 0; i < 30; i++ {
				if a.Hasher.Code(ds.Vector(i)) != b.Hasher.Code(ds.Vector(i)) {
					t.Fatalf("%s: hasher changed after round trip", l.Name())
				}
			}
		}
	}
}

func TestIndexLoadValidation(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "pv", N: 200, Dim: 8, Clusters: 3, LatentDim: 2, Seed: 43,
	})
	ix, err := Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 6, 1, 44)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Wrong dim.
	if _, err := Load(bytes.NewReader(raw), ds.Vectors, 9); err == nil {
		t.Fatal("wrong dim must be rejected")
	}
	// Wrong vector count.
	if _, err := Load(bytes.NewReader(raw), ds.Vectors[:8*100], 8); err == nil {
		t.Fatal("short vector block must be rejected")
	}
	// Bad magic.
	bad := append([]byte("NOTANIDX"), raw[8:]...)
	if _, err := Load(bytes.NewReader(bad), ds.Vectors, 8); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	// Truncations must error, never panic.
	for cut := 0; cut < len(raw); cut += 97 {
		if _, err := Load(bytes.NewReader(raw[:cut]), ds.Vectors, 8); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}
