package index

import (
	"math/rand"
	"sort"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
)

func TestProbeTableHitsAndMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 0, 500)
	present := make(map[uint64]uint32)
	for len(keys) < 500 {
		k := rng.Uint64()
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = uint32(len(keys))
		keys = append(keys, k)
	}
	p := NewProbeTable(keys)
	for k, slot := range present {
		got, ok := p.Lookup(k)
		if !ok || got != slot {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, got, ok, slot)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if _, dup := present[k]; dup {
			continue
		}
		if _, ok := p.Lookup(k); ok {
			t.Fatalf("Lookup(%d) hit for an absent key", k)
		}
		misses++
	}
	if misses == 0 {
		t.Fatal("no misses exercised")
	}
	// Zero value: always miss, never panic.
	var empty ProbeTable
	if _, ok := empty.Lookup(42); ok {
		t.Fatal("zero-value ProbeTable returned a hit")
	}
}

func TestProbeTableAdjacentCodes(t *testing.T) {
	// Binary codes cluster in low bits; the table must still behave on
	// a dense range 0..n-1 (worst case for weak hash mixing).
	n := 4096
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	p := NewProbeTable(keys)
	for i := 0; i < n; i++ {
		slot, ok := p.Lookup(uint64(i))
		if !ok || slot != uint32(i) {
			t.Fatalf("dense key %d -> (%d,%v)", i, slot, ok)
		}
	}
	if _, ok := p.Lookup(uint64(n)); ok {
		t.Fatal("absent dense key hit")
	}
}

// refModel is the previous map layout, used as the behavioural oracle
// for the CSR engine.
type refModel map[uint64][]int32

func (m refModel) add(code uint64, id int32) { m[code] = append(m[code], id) }

// checkAgainstModel asserts that tbl and the oracle agree on every
// observable: bucket count, code list, per-bucket ids (via both Bucket
// and Probe), and occupancy stats.
func checkAgainstModel(t *testing.T, tbl *Table, model refModel) {
	t.Helper()
	if got := tbl.BucketCount(); got != len(model) {
		t.Fatalf("BucketCount = %d, want %d", got, len(model))
	}
	wantCodes := make([]uint64, 0, len(model))
	for c := range model {
		wantCodes = append(wantCodes, c)
	}
	sort.Slice(wantCodes, func(i, j int) bool { return wantCodes[i] < wantCodes[j] })
	gotCodes := tbl.Codes()
	if len(gotCodes) != len(wantCodes) {
		t.Fatalf("Codes count %d, want %d", len(gotCodes), len(wantCodes))
	}
	items, maxSize := 0, 0
	for i, c := range wantCodes {
		if gotCodes[i] != c {
			t.Fatalf("Codes[%d] = %d, want %d", i, gotCodes[i], c)
		}
		want := model[c]
		got := tbl.Bucket(c)
		if len(got) != len(want) {
			t.Fatalf("bucket %b size %d, want %d", c, len(got), len(want))
		}
		ref := tbl.Probe(c)
		if ref.Len() != len(want) {
			t.Fatalf("Probe(%b).Len = %d, want %d", c, ref.Len(), len(want))
		}
		flat := append(append([]int32{}, ref.Core...), ref.Tail...)
		for j := range want {
			if got[j] != want[j] || flat[j] != want[j] {
				t.Fatalf("bucket %b ids diverge at %d: Bucket=%d Probe=%d want %d", c, j, got[j], flat[j], want[j])
			}
		}
		items += len(want)
		if len(want) > maxSize {
			maxSize = len(want)
		}
	}
	s := tbl.Stats()
	if s.Items != items || s.Buckets != len(model) || s.MaxBucketSize != maxSize {
		t.Fatalf("Stats = %+v, want items=%d buckets=%d max=%d", s, items, len(model), maxSize)
	}
	// Probing absent codes must miss both tiers.
	for i := 0; i < 50; i++ {
		c := uint64(i) << 40 // far outside any short code range
		if _, exists := model[c]; exists {
			continue
		}
		if tbl.Probe(c).Len() != 0 || tbl.Bucket(c) != nil {
			t.Fatalf("absent code %d produced a bucket", c)
		}
	}
}

// TestDeltaTailMatchesModelAcrossCompaction grows a table far past the
// compaction threshold, snapshotting along the way, and checks every
// observable against the map oracle — on the live table and on each
// frozen view, including old views after later adds and compactions.
func TestDeltaTailMatchesModelAcrossCompaction(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "csr", N: 1500, Dim: 8, Clusters: 6, LatentDim: 3, Seed: 71,
	})
	baseN := 600
	ix, err := Build(hash.PCAH{}, ds.Vectors[:baseN*ds.Dim], baseN, ds.Dim, 7, 1, 72)
	if err != nil {
		t.Fatal(err)
	}
	model := refModel{}
	hasher := ix.Tables[0].Hasher
	for i := 0; i < baseN; i++ {
		model.add(hasher.Code(ds.Vector(i)), int32(i))
	}
	checkAgainstModel(t, ix.Tables[0], model)

	type frozen struct {
		view  *Index
		model refModel
	}
	var views []frozen
	cloneModel := func() refModel {
		c := refModel{}
		for code, ids := range model {
			c[code] = append([]int32{}, ids...)
		}
		return c
	}
	for i := baseN; i < ds.N(); i++ {
		id, err := ix.Add(ds.Vector(i))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Fatalf("Add returned id %d, want %d", id, i)
		}
		model.add(hasher.Code(ds.Vector(i)), id)
		if i%177 == 0 {
			views = append(views, frozen{view: ix.Snapshot(), model: cloneModel()})
		}
	}
	if ix.Compactions() == 0 {
		t.Fatalf("no compaction after %d adds (threshold %d)", ds.N()-baseN, compactThreshold(baseN))
	}
	checkAgainstModel(t, ix.Tables[0], model)
	// A final snapshot equals the live table.
	final := ix.Snapshot()
	checkAgainstModel(t, final.Tables[0], model)
	// Old frozen views must still match the state they captured, not
	// the current one.
	for vi, f := range views {
		if f.view.N+len(f.model) == 0 {
			continue
		}
		t.Logf("view %d captured at N=%d", vi, f.view.N)
		checkAgainstModel(t, f.view.Tables[0], f.model)
	}
}

// TestCompactionPreservesIDOrder pins that per-bucket id order stays
// ascending across the tail → core merge (the invariant the searcher's
// Core-then-Tail iteration relies on).
func TestCompactionPreservesIDOrder(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "ord", N: 900, Dim: 8, Clusters: 4, LatentDim: 3, Seed: 73,
	})
	baseN := 300
	ix, err := Build(hash.PCAH{}, ds.Vectors[:baseN*ds.Dim], baseN, ds.Dim, 6, 1, 74)
	if err != nil {
		t.Fatal(err)
	}
	for i := baseN; i < ds.N(); i++ {
		if _, err := ix.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
	}
	ix.Snapshot() // trigger compaction (600 adds > threshold)
	if ix.Compactions() == 0 {
		t.Fatal("expected a compaction")
	}
	tbl := ix.Tables[0]
	if tbl.TailItems() != 0 {
		t.Fatalf("tail still holds %d items after compaction", tbl.TailItems())
	}
	for _, code := range tbl.Codes() {
		ids := tbl.Bucket(code)
		for j := 1; j < len(ids); j++ {
			if ids[j] <= ids[j-1] {
				t.Fatalf("bucket %b ids not ascending after compaction: %v", code, ids)
			}
		}
	}
}
