package index

import (
	"math/rand"
	"sort"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
)

func TestProbeTableHitsAndMisses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	keys := make([]uint64, 0, 500)
	present := make(map[uint64]uint32)
	for len(keys) < 500 {
		k := rng.Uint64()
		if _, dup := present[k]; dup {
			continue
		}
		present[k] = uint32(len(keys))
		keys = append(keys, k)
	}
	p := NewProbeTable(keys)
	for k, slot := range present {
		got, ok := p.Lookup(k)
		if !ok || got != slot {
			t.Fatalf("Lookup(%d) = (%d,%v), want (%d,true)", k, got, ok, slot)
		}
	}
	misses := 0
	for i := 0; i < 1000; i++ {
		k := rng.Uint64()
		if _, dup := present[k]; dup {
			continue
		}
		if _, ok := p.Lookup(k); ok {
			t.Fatalf("Lookup(%d) hit for an absent key", k)
		}
		misses++
	}
	if misses == 0 {
		t.Fatal("no misses exercised")
	}
	// Zero value: always miss, never panic.
	var empty ProbeTable
	if _, ok := empty.Lookup(42); ok {
		t.Fatal("zero-value ProbeTable returned a hit")
	}
}

func TestProbeTableAdjacentCodes(t *testing.T) {
	// Binary codes cluster in low bits; the table must still behave on
	// a dense range 0..n-1 (worst case for weak hash mixing).
	n := 4096
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i)
	}
	p := NewProbeTable(keys)
	for i := 0; i < n; i++ {
		slot, ok := p.Lookup(uint64(i))
		if !ok || slot != uint32(i) {
			t.Fatalf("dense key %d -> (%d,%v)", i, slot, ok)
		}
	}
	if _, ok := p.Lookup(uint64(n)); ok {
		t.Fatal("absent dense key hit")
	}
}

// refModel is the previous map layout, used as the behavioural oracle
// for the CSR engine.
type refModel map[uint64][]int32

func (m refModel) add(code uint64, id int32) { m[code] = append(m[code], id) }

// checkAgainstModel asserts that table ti of ix and the oracle agree on
// every observable: bucket count, code list, per-bucket ids (via both
// Bucket and Probe), and occupancy stats. IDs within a bucket must be
// ascending globally: each segment holds a contiguous ascending id
// range and segments are ordered, so concatenating per-segment lists
// and the memtable tail reproduces insertion order.
func checkAgainstModel(t *testing.T, ix *Index, ti int, model refModel) {
	t.Helper()
	if got := ix.BucketCount(ti); got != len(model) {
		t.Fatalf("BucketCount = %d, want %d", got, len(model))
	}
	wantCodes := make([]uint64, 0, len(model))
	for c := range model {
		wantCodes = append(wantCodes, c)
	}
	sort.Slice(wantCodes, func(i, j int) bool { return wantCodes[i] < wantCodes[j] })
	gotCodes := ix.Codes(ti)
	if len(gotCodes) != len(wantCodes) {
		t.Fatalf("Codes count %d, want %d", len(gotCodes), len(wantCodes))
	}
	items, maxSize := 0, 0
	var ref BucketRef
	for i, c := range wantCodes {
		if gotCodes[i] != c {
			t.Fatalf("Codes[%d] = %d, want %d", i, gotCodes[i], c)
		}
		want := model[c]
		got := ix.Bucket(ti, c)
		if len(got) != len(want) {
			t.Fatalf("bucket %b size %d, want %d", c, len(got), len(want))
		}
		ix.Probe(ti, c, &ref)
		if ref.Len() != len(want) {
			t.Fatalf("Probe(%b).Len = %d, want %d", c, ref.Len(), len(want))
		}
		var flat []int32
		for _, seg := range ref.Segs {
			flat = append(flat, seg...)
		}
		flat = append(flat, ref.Tail...)
		for j := range want {
			if got[j] != want[j] || flat[j] != want[j] {
				t.Fatalf("bucket %b ids diverge at %d: Bucket=%d Probe=%d want %d", c, j, got[j], flat[j], want[j])
			}
		}
		items += len(want)
		if len(want) > maxSize {
			maxSize = len(want)
		}
	}
	s := ix.TableStats(ti)
	if s.Items != items || s.Buckets != len(model) || s.MaxBucketSize != maxSize {
		t.Fatalf("Stats = %+v, want items=%d buckets=%d max=%d", s, items, len(model), maxSize)
	}
	// Probing absent codes must miss every tier.
	for i := 0; i < 50; i++ {
		c := uint64(i) << 40 // far outside any short code range
		if _, exists := model[c]; exists {
			continue
		}
		ix.Probe(ti, c, &ref)
		if ref.Len() != 0 || ix.Bucket(ti, c) != nil {
			t.Fatalf("absent code %d produced a bucket", c)
		}
	}
}

// TestDeltaTailMatchesModelAcrossCompaction grows an index far past
// several seal points, snapshotting along the way and folding segments
// with explicit merges, and checks every observable against the map
// oracle — on the live index and on each frozen view, including old
// views taken before later adds, seals and merges.
func TestDeltaTailMatchesModelAcrossCompaction(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "csr", N: 1500, Dim: 8, Clusters: 6, LatentDim: 3, Seed: 71,
	})
	baseN := 600
	ix, err := Build(hash.PCAH{}, ds.Vectors[:baseN*ds.Dim], baseN, ds.Dim, 7, 1, 72)
	if err != nil {
		t.Fatal(err)
	}
	model := refModel{}
	hasher := ix.Tables[0].Hasher
	for i := 0; i < baseN; i++ {
		model.add(hasher.Code(ds.Vector(i)), int32(i))
	}
	checkAgainstModel(t, ix, 0, model)

	type frozen struct {
		view  *Index
		model refModel
	}
	var views []frozen
	cloneModel := func() refModel {
		c := refModel{}
		for code, ids := range model {
			c[code] = append([]int32{}, ids...)
		}
		return c
	}
	for i := baseN; i < ds.N(); i++ {
		id, err := ix.Add(ds.Vector(i))
		if err != nil {
			t.Fatal(err)
		}
		if int(id) != i {
			t.Fatalf("Add returned id %d, want %d", id, i)
		}
		model.add(hasher.Code(ds.Vector(i)), id)
		if ix.MemtableItems() >= 128 {
			ix.SealMemtable()
			// Fold eligible segment runs the way the background merger
			// does, here synchronously so views bracket real merges.
			if in := ix.PlanMerge(0); in != nil {
				merged, err := MergeSegments(in, ix.TakeSeq(), nil)
				if err != nil {
					t.Fatal(err)
				}
				if err := ix.ApplyMerge(in, merged); err != nil {
					t.Fatal(err)
				}
			}
		}
		if i%177 == 0 {
			views = append(views, frozen{view: ix.Snapshot(), model: cloneModel()})
		}
	}
	if ix.Seals() == 0 || ix.Compactions() == 0 {
		t.Fatalf("no compaction after %d adds: seals=%d merges=%d", ds.N()-baseN, ix.Seals(), ix.Merges())
	}
	checkAgainstModel(t, ix, 0, model)
	// A final snapshot equals the live index.
	final := ix.Snapshot()
	checkAgainstModel(t, final, 0, model)
	final.Release()
	// Old frozen views must still match the state they captured, not
	// the current one — segment refcounts keep merged-away inputs alive
	// for as long as a view holds them.
	for vi, f := range views {
		if f.view.N+len(f.model) == 0 {
			continue
		}
		t.Logf("view %d captured at N=%d segs=%d", vi, f.view.N, f.view.SegmentCount())
		checkAgainstModel(t, f.view, 0, f.model)
		f.view.Release()
	}
}

// TestCompactionPreservesIDOrder pins that per-bucket id order stays
// ascending across seals and a full segment merge (the invariant the
// searcher's segments-then-tail iteration relies on).
func TestCompactionPreservesIDOrder(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "ord", N: 900, Dim: 8, Clusters: 4, LatentDim: 3, Seed: 73,
	})
	baseN := 300
	ix, err := Build(hash.PCAH{}, ds.Vectors[:baseN*ds.Dim], baseN, ds.Dim, 6, 1, 74)
	if err != nil {
		t.Fatal(err)
	}
	for i := baseN; i < ds.N(); i++ {
		if _, err := ix.Add(ds.Vector(i)); err != nil {
			t.Fatal(err)
		}
		if ix.MemtableItems() >= 100 {
			ix.SealMemtable()
		}
	}
	ix.SealMemtable()
	// Fold everything — base segment included — into one, as Compact does.
	if in := ix.SegmentsAbove(0); len(in) >= 2 {
		merged, err := MergeSegments(in, ix.TakeSeq(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ix.ApplyMerge(in, merged); err != nil {
			t.Fatal(err)
		}
	}
	if ix.Compactions() == 0 {
		t.Fatal("expected a compaction")
	}
	if ix.MemtableItems() != 0 {
		t.Fatalf("memtable still holds %d items after seal", ix.MemtableItems())
	}
	if ix.SegmentCount() != 1 {
		t.Fatalf("expected one merged segment, have %d", ix.SegmentCount())
	}
	for _, code := range ix.Codes(0) {
		ids := ix.Bucket(0, code)
		for j := 1; j < len(ids); j++ {
			if ids[j] <= ids[j-1] {
				t.Fatalf("bucket %b ids not ascending after compaction: %v", code, ids)
			}
		}
	}
}
