package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Segment file persistence. A segment file makes one frozen segment —
// its vectors plus its per-table CSR cores — durable independently of
// the base index file, so the durability layer can retire the WAL that
// covered those Adds. Unlike the base format, vectors ARE stored: the
// caller's vector block only covers the corpus the index was built
// from, and segments hold everything added after that.
//
// GQRSEG3 (written by WriteSegment when the index carries a serving
// quantizer) extends SEG2 with the segment's id-aligned quantizer code
// column, so recovery restores codes without re-encoding:
//
//	magic "GQRSEG3\x00"
//	seq u64 | minID u32 | span u32 | items u32 | dim u32 | tables u32
//	metaFlag u8 | codeM u8 (bytes per item, ≥ 1)
//	vectors (span × dim × f32)
//	if metaFlag == 1: meta (span × u64)
//	qcodes (span × codeM bytes)
//	per table: identical to SEG2
//
// GQRSEG2 (written by WriteSegment otherwise; quantizer-free indexes
// stay bit-identical with older writers), all little-endian:
//
//	magic "GQRSEG2\x00"
//	seq u64 | minID u32 | span u32 | items u32 | dim u32 | tables u32
//	metaFlag u8
//	vectors (span × dim × f32)
//	if metaFlag == 1: meta (span × u64)
//	per table: bucket count nb u32
//	           codes   (nb × u64, strictly ascending)
//	           offsets ((nb+1) × u32, offsets[0]=0, offsets[nb]=items)
//	           ids     (items × u32, global ids in [minID, minID+span))
//
// span counts every id slot in the covered range; items counts the ids
// actually present in the posting lists. They differ when tombstoned
// ids were purged at seal/merge time — the vectors of dead ids are
// still stored (the id range stays contiguous) but no bucket names
// them. items may be 0 for a fully-purged segment.
//
// GQRSEG1 (legacy, still loadable) is the same layout without the items
// field and the metaFlag byte: span == items == count, no meta block.
//
// Files are written via an atomic temp-file + fsync + rename helper, so
// a file that exists under its final name is complete; ReadSegment
// still validates every structural invariant and fails loudly on
// anything inconsistent (a truncated or corrupted file is an error,
// never silently-wrong data).

var (
	magicSeg1 = [8]byte{'G', 'Q', 'R', 'S', 'E', 'G', '1', 0}
	magicSeg2 = [8]byte{'G', 'Q', 'R', 'S', 'E', 'G', '2', 0}
	magicSeg3 = [8]byte{'G', 'Q', 'R', 'S', 'E', 'G', '3', 0}
)

// maxSegmentItems bounds the per-segment item count accepted at read
// time, so a corrupt header cannot demand an absurd allocation.
const maxSegmentItems = 1 << 27

// WriteSegment writes seg, its vector block (span×dim floats,
// post-normalization), its optional metadata words (span of them, or
// nil) and its optional quantizer code column (span×M bytes, or nil) to
// w — GQRSEG3 when codes are present, GQRSEG2 otherwise.
func WriteSegment(w io.Writer, seg *Segment, vectors []float32, meta []uint64, qcodes []uint8, dim int) error {
	if len(vectors) != seg.span*dim {
		return fmt.Errorf("index: segment write: vector block %d floats, want %d", len(vectors), seg.span*dim)
	}
	if meta != nil && len(meta) != seg.span {
		return fmt.Errorf("index: segment write: meta block %d words, want %d", len(meta), seg.span)
	}
	codeM := 0
	if qcodes != nil {
		if seg.span == 0 || len(qcodes)%seg.span != 0 || len(qcodes) == 0 {
			return fmt.Errorf("index: segment write: code block %d bytes does not divide span %d", len(qcodes), seg.span)
		}
		codeM = len(qcodes) / seg.span
		if codeM > math.MaxUint8 {
			return fmt.Errorf("index: segment write: %d code bytes per item does not fit the format", codeM)
		}
	}
	if seg.minID < 0 || seg.minID > math.MaxUint32 || seg.span < 0 || seg.span > math.MaxUint32 {
		return fmt.Errorf("index: segment write: id range [%d,%d) does not fit the format", seg.minID, seg.minID+seg.span)
	}
	bw := bufio.NewWriter(w)
	magic := magicSeg2
	if codeM > 0 {
		magic = magicSeg3
	}
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	metaFlag := uint8(0)
	if meta != nil {
		metaFlag = 1
	}
	hdr := []any{seg.seq, uint32(seg.minID), uint32(seg.span), uint32(seg.items), uint32(dim), uint32(len(seg.cores)), metaFlag}
	if codeM > 0 {
		hdr = append(hdr, uint8(codeM))
	}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, vectors); err != nil {
		return err
	}
	if meta != nil {
		if err := binary.Write(bw, binary.LittleEndian, meta); err != nil {
			return err
		}
	}
	if codeM > 0 {
		if _, err := bw.Write(qcodes); err != nil {
			return err
		}
	}
	for t, core := range seg.cores {
		if len(core.codes) > math.MaxUint32 {
			return fmt.Errorf("index: segment write: table %d bucket count does not fit the format", t)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(core.codes))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.codes); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.offsets); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.ids); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSegment reads one segment file (GQRSEG3, GQRSEG2 or legacy
// GQRSEG1), its vector block, its metadata words (nil when absent) and
// its quantizer code column (nil when absent), validating every
// structural invariant against the expected dimension and table count.
// Any inconsistency — truncation, bad magic, out-of-range ids,
// malformed CSR — is an error.
func ReadSegment(r io.Reader, dim, tables int) (*Segment, []float32, []uint64, []uint8, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
	}
	var v1, v3 bool
	switch m {
	case magicSeg1:
		v1 = true
	case magicSeg2:
	case magicSeg3:
		v3 = true
	default:
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: bad magic %q", m[:])
	}
	var seq uint64
	var minID, span, items, fdim, ftables uint32
	var metaFlag, codeM uint8
	hdr := []any{&seq, &minID, &span, &items, &fdim, &ftables, &metaFlag}
	if v3 {
		hdr = append(hdr, &codeM)
	}
	if v1 {
		hdr = []any{&seq, &minID, &span, &fdim, &ftables}
	}
	for _, p := range hdr {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
	}
	if v1 {
		items = span
	}
	if v3 && codeM == 0 {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: v3 segment without code bytes")
	}
	if int(fdim) != dim {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: file dim %d != index dim %d", fdim, dim)
	}
	if int(ftables) != tables {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: file has %d tables, index has %d", ftables, tables)
	}
	if span == 0 || span > maxSegmentItems {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: implausible item count %d", span)
	}
	if items > span {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: %d live items exceed span %d", items, span)
	}
	if metaFlag > 1 {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: bad meta flag %d", metaFlag)
	}
	if uint64(minID)+uint64(span) > math.MaxInt32 {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: id range [%d,%d) out of range", minID, uint64(minID)+uint64(span))
	}
	vectors := make([]float32, int(span)*dim)
	if err := binary.Read(br, binary.LittleEndian, vectors); err != nil {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
	}
	var meta []uint64
	if metaFlag == 1 {
		meta = make([]uint64, span)
		if err := binary.Read(br, binary.LittleEndian, meta); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
	}
	var qcodes []uint8
	if v3 {
		qcodes = make([]uint8, int(span)*int(codeM))
		if _, err := io.ReadFull(br, qcodes); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: code column: %w", err)
		}
	}
	cores := make([]*coreStore, tables)
	for t := 0; t < tables; t++ {
		var nb uint32
		if err := binary.Read(br, binary.LittleEndian, &nb); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		if nb > items {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: table %d has %d buckets for %d items", t, nb, items)
		}
		codes := make([]uint64, nb)
		if err := binary.Read(br, binary.LittleEndian, codes); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		for i := 1; i < len(codes); i++ {
			if codes[i] <= codes[i-1] {
				return nil, nil, nil, nil, fmt.Errorf("index: segment load: table %d bucket codes not ascending", t)
			}
		}
		offsets := make([]uint32, nb+1)
		if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		if offsets[0] != 0 || offsets[nb] != items {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: table %d offsets span [%d,%d], want [0,%d]", t, offsets[0], offsets[nb], items)
		}
		for i := 1; i < len(offsets); i++ {
			if offsets[i] < offsets[i-1] {
				return nil, nil, nil, nil, fmt.Errorf("index: segment load: table %d offsets not monotone", t)
			}
			if offsets[i] == offsets[i-1] {
				return nil, nil, nil, nil, fmt.Errorf("index: segment load: table %d stores an empty bucket", t)
			}
		}
		ids := make([]int32, items)
		if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
			return nil, nil, nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		for _, id := range ids {
			if uint32(id) < minID || uint32(id) >= minID+span {
				return nil, nil, nil, nil, fmt.Errorf("index: segment load: item id %d outside [%d,%d)", id, minID, minID+span)
			}
		}
		cores[t] = newCoreStore(codes, offsets, ids)
	}
	// A complete file ends here; trailing bytes mean corruption.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, nil, nil, fmt.Errorf("index: segment load: trailing data after segment")
	}
	return newSegment(cores, int(minID), int(span), int(items), seq), vectors, meta, qcodes, nil
}
