package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Segment file persistence. A segment file makes one frozen segment —
// its vectors plus its per-table CSR cores — durable independently of
// the base index file, so the durability layer can retire the WAL that
// covered those Adds. Unlike the base format, vectors ARE stored: the
// caller's vector block only covers the corpus the index was built
// from, and segments hold everything added after that.
//
// GQRSEG1, all little-endian:
//
//	magic "GQRSEG1\x00"
//	seq u64 | minID u32 | count u32 | dim u32 | tables u32
//	vectors (count × dim × f32)
//	per table: bucket count nb u32
//	           codes   (nb × u64, strictly ascending)
//	           offsets ((nb+1) × u32, offsets[0]=0, offsets[nb]=count)
//	           ids     (count × u32, global ids in [minID, minID+count))
//
// Files are written via an atomic temp-file + fsync + rename helper, so
// a file that exists under its final name is complete; ReadSegment
// still validates every structural invariant and fails loudly on
// anything inconsistent (a truncated or corrupted file is an error,
// never silently-wrong data).

var magicSeg1 = [8]byte{'G', 'Q', 'R', 'S', 'E', 'G', '1', 0}

// maxSegmentItems bounds the per-segment item count accepted at read
// time, so a corrupt header cannot demand an absurd allocation.
const maxSegmentItems = 1 << 27

// WriteSegment writes seg and its vector block (count×dim floats,
// post-normalization) to w in the GQRSEG1 format.
func WriteSegment(w io.Writer, seg *Segment, vectors []float32, dim int) error {
	if len(vectors) != seg.count*dim {
		return fmt.Errorf("index: segment write: vector block %d floats, want %d", len(vectors), seg.count*dim)
	}
	if seg.minID < 0 || seg.minID > math.MaxUint32 || seg.count < 0 || seg.count > math.MaxUint32 {
		return fmt.Errorf("index: segment write: id range [%d,%d) does not fit the format", seg.minID, seg.minID+seg.count)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicSeg1[:]); err != nil {
		return err
	}
	for _, v := range []any{seg.seq, uint32(seg.minID), uint32(seg.count), uint32(dim), uint32(len(seg.cores))} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, vectors); err != nil {
		return err
	}
	for t, core := range seg.cores {
		if len(core.codes) > math.MaxUint32 {
			return fmt.Errorf("index: segment write: table %d bucket count does not fit the format", t)
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(core.codes))); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.codes); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.offsets); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, core.ids); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSegment reads one GQRSEG1 segment and its vector block, validating
// every structural invariant against the expected dimension and table
// count. Any inconsistency — truncation, bad magic, out-of-range ids,
// malformed CSR — is an error.
func ReadSegment(r io.Reader, dim, tables int) (*Segment, []float32, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, nil, fmt.Errorf("index: segment load: %w", err)
	}
	if m != magicSeg1 {
		return nil, nil, fmt.Errorf("index: segment load: bad magic %q", m[:])
	}
	var seq uint64
	var minID, count, fdim, ftables uint32
	for _, p := range []any{&seq, &minID, &count, &fdim, &ftables} {
		if err := binary.Read(br, binary.LittleEndian, p); err != nil {
			return nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
	}
	if int(fdim) != dim {
		return nil, nil, fmt.Errorf("index: segment load: file dim %d != index dim %d", fdim, dim)
	}
	if int(ftables) != tables {
		return nil, nil, fmt.Errorf("index: segment load: file has %d tables, index has %d", ftables, tables)
	}
	if count == 0 || count > maxSegmentItems {
		return nil, nil, fmt.Errorf("index: segment load: implausible item count %d", count)
	}
	if uint64(minID)+uint64(count) > math.MaxInt32 {
		return nil, nil, fmt.Errorf("index: segment load: id range [%d,%d) out of range", minID, uint64(minID)+uint64(count))
	}
	vectors := make([]float32, int(count)*dim)
	if err := binary.Read(br, binary.LittleEndian, vectors); err != nil {
		return nil, nil, fmt.Errorf("index: segment load: %w", err)
	}
	cores := make([]*coreStore, tables)
	for t := 0; t < tables; t++ {
		var nb uint32
		if err := binary.Read(br, binary.LittleEndian, &nb); err != nil {
			return nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		if nb > count {
			return nil, nil, fmt.Errorf("index: segment load: table %d has %d buckets for %d items", t, nb, count)
		}
		codes := make([]uint64, nb)
		if err := binary.Read(br, binary.LittleEndian, codes); err != nil {
			return nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		for i := 1; i < len(codes); i++ {
			if codes[i] <= codes[i-1] {
				return nil, nil, fmt.Errorf("index: segment load: table %d bucket codes not ascending", t)
			}
		}
		offsets := make([]uint32, nb+1)
		if err := binary.Read(br, binary.LittleEndian, offsets); err != nil {
			return nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		if offsets[0] != 0 || offsets[nb] != count {
			return nil, nil, fmt.Errorf("index: segment load: table %d offsets span [%d,%d], want [0,%d]", t, offsets[0], offsets[nb], count)
		}
		for i := 1; i < len(offsets); i++ {
			if offsets[i] < offsets[i-1] {
				return nil, nil, fmt.Errorf("index: segment load: table %d offsets not monotone", t)
			}
			if offsets[i] == offsets[i-1] {
				return nil, nil, fmt.Errorf("index: segment load: table %d stores an empty bucket", t)
			}
		}
		ids := make([]int32, count)
		if err := binary.Read(br, binary.LittleEndian, ids); err != nil {
			return nil, nil, fmt.Errorf("index: segment load: %w", err)
		}
		for _, id := range ids {
			if uint32(id) < minID || uint32(id) >= minID+count {
				return nil, nil, fmt.Errorf("index: segment load: item id %d outside [%d,%d)", id, minID, minID+count)
			}
		}
		cores[t] = newCoreStore(codes, offsets, ids)
	}
	// A complete file ends here; trailing bytes mean corruption.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, nil, fmt.Errorf("index: segment load: trailing data after segment")
	}
	return newSegment(cores, int(minID), int(count), seq), vectors, nil
}
