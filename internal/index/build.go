package index

import (
	"fmt"
	"sync"
	"time"

	"gqr/internal/hash"
	"gqr/internal/vecmath"
)

// BuildTimings records the wall time of the three build stages: hasher
// training, item coding, and CSR core construction (freeze). Procs is
// the resolved worker bound the build ran with.
type BuildTimings struct {
	Train  time.Duration
	Code   time.Duration
	Freeze time.Duration
	Procs  int
}

// codeChunk is the number of items one coding task owns. Each chunk's
// codes are written to a disjoint region of the output, so the result
// is identical to the serial loop at any worker count.
const codeChunk = 1024

// codeItems computes every item's packed code for one hasher. Points
// are partitioned into fixed-size chunks fanned out over procs workers;
// codes[i] and ids[i] are each written by exactly one worker, so the
// output is bit-for-bit the serial loop's.
func codeItems(h hash.Hasher, data []float32, n, d, procs int) ([]uint64, []int32) {
	codes := make([]uint64, n)
	ids := make([]int32, n)
	vecmath.ParallelChunks(n, codeChunk, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			codes[i] = h.Code(data[i*d : (i+1)*d])
			ids[i] = int32(i)
		}
	})
	return codes, ids
}

// BuildP is Build with a worker bound: the T hashers train
// concurrently (independent seeds, seed+t·7919 exactly as Build), item
// coding fans out in fixed-size chunks, and each table's CSR core is
// then frozen serially. The learner's own kernels are bounded by the
// same procs via hash.WithProcs. Every stage partitions work so that
// each output element is produced by exactly one worker in serial
// accumulation order, so the index — hash codes, bucket layout,
// persisted bytes, search results — is bit-for-bit identical to
// Build's at any procs. procs <= 0 means GOMAXPROCS.
func BuildP(l hash.Learner, data []float32, n, d, bits, tables int, seed int64, procs int) (*Index, error) {
	if tables <= 0 {
		return nil, fmt.Errorf("index: need at least one table, got %d", tables)
	}
	procs = vecmath.Procs(procs)
	l = hash.WithProcs(l, procs)
	idx := &Index{Dim: d, N: n, Data: data}

	// Stage 1: train one hasher per table. Tables are independent
	// (distinct seeds), so they train concurrently; each Train call's
	// internal kernels are themselves bounded by procs.
	trainStart := time.Now()
	hashers := make([]hash.Hasher, tables)
	trainErrs := make([]error, tables)
	sem := make(chan struct{}, procs)
	var wg sync.WaitGroup
	for t := 0; t < tables; t++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(t int) {
			defer wg.Done()
			defer func() { <-sem }()
			h, err := l.Train(data, n, d, bits, seed+int64(t)*7919)
			if err != nil {
				trainErrs[t] = fmt.Errorf("index: training table %d: %w", t, err)
				return
			}
			hashers[t] = h
		}(t)
	}
	wg.Wait()
	for _, err := range trainErrs {
		if err != nil {
			return nil, err
		}
	}
	idx.Timings.Train = time.Since(trainStart)

	// Stages 2+3 per table: chunked parallel coding, then serial CSR
	// freeze (sort + prefix sums; order-defined, partition-free). The
	// frozen cores form the index's first segment, covering all n items.
	cores := make([]*coreStore, 0, tables)
	for _, h := range hashers {
		codeStart := time.Now()
		codes, ids := codeItems(h, data, n, d, procs)
		idx.Timings.Code += time.Since(codeStart)

		freezeStart := time.Now()
		idx.Tables = append(idx.Tables, &Table{Hasher: h, tail: newTailStore()})
		cores = append(cores, buildCore(codes, ids))
		idx.Timings.Freeze += time.Since(freezeStart)
	}
	idx.segs = []*Segment{newSegment(cores, 0, n, n, 0)}
	idx.segSeq = 1
	idx.Timings.Procs = procs
	return idx, nil
}
