package quantization

import (
	"fmt"
	"math/rand"

	"gqr/internal/vecmath"
)

// OPQ is optimized product quantization (Ge et al., the paper's §6.5
// comparator): a learned orthogonal rotation R applied before product
// quantization, trained non-parametrically by alternating between
// (a) retraining/refreshing the PQ assignment on the rotated data and
// (b) solving the orthogonal Procrustes problem
// R = argmin ‖X·R − Y‖_F, where Y is the PQ reconstruction.
type OPQ struct {
	R  *vecmath.Mat // d×d rotation
	PQ *PQ
	// mean removed before rotation (training centers the data).
	mean []float64
}

// TrainOPQ learns an OPQ quantizer. outerIters alternations are run; the
// inner PQ uses kmIters Lloyd iterations per refresh.
func TrainOPQ(data []float32, n, d, m, k, outerIters, kmIters int, seed int64) (*OPQ, error) {
	if outerIters <= 0 {
		outerIters = 10
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("quantization: data length %d != n*d = %d", len(data), n*d)
	}
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Centered data as float64 matrix for the Procrustes updates.
	x := vecmath.NewMat(n, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		dst := x.Row(i)
		for j, v := range row {
			dst[j] = float64(v) - mean[j]
		}
	}

	rng := rand.New(rand.NewSource(seed))
	r := vecmath.RandomRotation(rng, d)

	rotated32 := make([]float32, n*d)
	var pq *PQ
	code := make([]uint16, 0, m)
	rec := make([]float32, d)
	y := vecmath.NewMat(n, d)
	for it := 0; it < outerIters; it++ {
		// Rotate: XR.
		xr := vecmath.Mul(x, r)
		for i, v := range xr.Data {
			rotated32[i] = float32(v)
		}
		// (Re)train PQ on the rotated data.
		var err error
		pq, err = TrainPQ(rotated32, n, d, m, k, kmIters, seed+int64(it)+1)
		if err != nil {
			return nil, err
		}
		if it == outerIters-1 {
			break // final codebooks trained on the final rotation
		}
		// Reconstruction Y of the rotated data.
		for i := 0; i < n; i++ {
			code = pq.Encode(rotated32[i*d:(i+1)*d], code[:0])
			pq.Decode(code, rec)
			dst := y.Row(i)
			for j, v := range rec {
				dst[j] = float64(v)
			}
		}
		// R = argmin ‖X·R − Y‖.
		r = vecmath.Procrustes(x, y)
	}
	return &OPQ{R: r, PQ: pq, mean: mean}, nil
}

// Rotate maps x into the rotated space: (x−mean)ᵀ·R, written to dst
// (length Dim).
func (o *OPQ) Rotate(x []float32, dst []float32) {
	d := o.PQ.Dim
	if len(x) != d || len(dst) != d {
		panic("quantization: Rotate shape mismatch")
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < d; i++ {
			s += (float64(x[i]) - o.mean[i]) * o.R.At(i, j)
		}
		dst[j] = float32(s)
	}
}

// Encode rotates and PQ-encodes x.
func (o *OPQ) Encode(x []float32, dst []uint16) []uint16 {
	rot := make([]float32, o.PQ.Dim)
	o.Rotate(x, rot)
	return o.PQ.Encode(rot, dst)
}

// ReconstructionError returns the mean squared error of rotating and
// quantizing each row (rotation is orthogonal, so errors are comparable
// with plain PQ's in the original space).
func (o *OPQ) ReconstructionError(data []float32, n int) float64 {
	d := o.PQ.Dim
	rot := make([]float32, d)
	code := make([]uint16, 0, o.PQ.M)
	rec := make([]float32, d)
	var total float64
	for i := 0; i < n; i++ {
		o.Rotate(data[i*d:(i+1)*d], rot)
		code = o.PQ.Encode(rot, code[:0])
		o.PQ.Decode(code, rec)
		total += vecmath.SquaredL2(rot, rec)
	}
	return total / float64(n)
}
