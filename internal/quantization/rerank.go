package quantization

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

// This file promotes the package from a paper baseline (§6.5
// comparison system) to a serving subsystem: the Reranker wraps a PQ —
// optionally behind an OPQ rotation — with the representation the query
// hot path needs (one-byte codes, a flat float32 ADC table rebuilt into
// caller scratch, zero steady-state allocations) and with training
// parallelized through the vecmath/cluster helpers so it honors
// WithBuildParallelism while staying bit-identical at any worker count.

// Lloyd iteration counts for serving-quantizer training. Fixed rather
// than configurable: the recall/latency trade-off the public API
// exposes is (m, k, factor); training depth only moves build time.
const (
	rerankKMIters  = 25
	rerankOPQIters = 8
)

// MaxCentroids is the centroid-count ceiling of the serving quantizer:
// codes are one byte per subspace, so K ≤ 256.
const MaxCentroids = 256

// TrainPQP is TrainPQ with the k-means inner loop fanned out across
// procs workers. Subspaces still train sequentially against one shared
// rng (the draw order is part of the trained parameters), so the result
// is bit-identical to the serial build at any worker count.
func TrainPQP(data []float32, n, d, m, k, iters int, seed int64, procs int) (*PQ, error) {
	if m <= 0 || m > d {
		return nil, fmt.Errorf("quantization: M=%d out of range [1,%d]", m, d)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("quantization: K=%d out of range [1,%d]", k, n)
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("quantization: data length %d != n*d = %d", len(data), n*d)
	}
	procs = vecmath.Procs(procs)
	pq := &PQ{M: m, K: k, Dim: d, offsets: make([]int, m+1)}
	off := 0
	rng := rand.New(rand.NewSource(seed))
	sub := make([]float32, n*(d/m+1))
	for s := 0; s < m; s++ {
		w := d / m
		if s < d%m {
			w++
		}
		pq.offsets[s] = off

		// Column extraction owns disjoint output rows per worker, so the
		// parallel copy is trivially deterministic.
		sub := sub[:n*w]
		base := off
		vecmath.ParallelRanges(n, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				copy(sub[i*w:(i+1)*w], data[i*d+base:i*d+base+w])
			}
		})
		cb, err := cluster.KMeansP(sub, n, w, k, iters, rng, procs)
		if err != nil {
			return nil, fmt.Errorf("quantization: subspace %d: %w", s, err)
		}
		pq.codebooks = append(pq.codebooks, cb)
		off += w
	}
	pq.offsets[m] = off
	return pq, nil
}

// TrainOPQP is TrainOPQ with every dense kernel (rotation mat-mul,
// reconstruction, Procrustes SVD panels, inner k-means) parallelized.
// Outer alternations and rng draws stay sequential, so the result is
// bit-identical at any worker count.
func TrainOPQP(data []float32, n, d, m, k, outerIters, kmIters int, seed int64, procs int) (*OPQ, error) {
	if outerIters <= 0 {
		outerIters = 10
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("quantization: data length %d != n*d = %d", len(data), n*d)
	}
	procs = vecmath.Procs(procs)
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	x := vecmath.NewMat(n, d)
	vecmath.ParallelRanges(n, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := data[i*d : (i+1)*d]
			dst := x.Row(i)
			for j, v := range row {
				dst[j] = float64(v) - mean[j]
			}
		}
	})

	rng := rand.New(rand.NewSource(seed))
	r := vecmath.RandomRotation(rng, d)

	rotated32 := make([]float32, n*d)
	var pq *PQ
	y := vecmath.NewMat(n, d)
	for it := 0; it < outerIters; it++ {
		xr := vecmath.MulP(x, r, procs)
		vecmath.ParallelRanges(n*d, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				rotated32[i] = float32(xr.Data[i])
			}
		})
		var err error
		pq, err = TrainPQP(rotated32, n, d, m, k, kmIters, seed+int64(it)+1, procs)
		if err != nil {
			return nil, err
		}
		if it == outerIters-1 {
			break // final codebooks trained on the final rotation
		}
		// Reconstruction rows are independent; each worker carries its own
		// encode/decode scratch.
		vecmath.ParallelRanges(n, procs, func(lo, hi int) {
			code := make([]uint16, 0, m)
			rec := make([]float32, d)
			for i := lo; i < hi; i++ {
				code = pq.Encode(rotated32[i*d:(i+1)*d], code[:0])
				pq.Decode(code, rec)
				dst := y.Row(i)
				for j, v := range rec {
					dst[j] = float64(v)
				}
			}
		})
		r = vecmath.ProcrustesP(x, y, procs)
	}
	return &OPQ{R: r, PQ: pq, mean: mean}, nil
}

// Reranker is the serving-path product quantizer behind the index's
// optional re-ranking stage: one byte per subspace code, an optional
// OPQ rotation, and flat float32 ADC tables built into caller-owned
// scratch so the query hot path stays allocation-free.
type Reranker struct {
	pq   *PQ
	r    *vecmath.Mat // d×d rotation; nil for plain PQ
	mean []float64    // removed before rotation; nil for plain PQ
}

// TrainReranker learns a serving quantizer over the n×d block: plain PQ
// codebooks, or OPQ (learned rotation + codebooks) when opq is set.
// K is capped at 256 so codes fit one byte per subspace.
func TrainReranker(data []float32, n, d, m, k int, opq bool, seed int64, procs int) (*Reranker, error) {
	if k > MaxCentroids {
		return nil, fmt.Errorf("quantization: K=%d exceeds the one-byte code limit %d", k, MaxCentroids)
	}
	if !opq {
		pq, err := TrainPQP(data, n, d, m, k, rerankKMIters, seed, procs)
		if err != nil {
			return nil, err
		}
		return &Reranker{pq: pq}, nil
	}
	o, err := TrainOPQP(data, n, d, m, k, rerankOPQIters, rerankKMIters, seed, procs)
	if err != nil {
		return nil, err
	}
	return &Reranker{pq: o.PQ, r: o.R, mean: o.mean}, nil
}

// M returns the code length in bytes (one byte per subspace).
func (rr *Reranker) M() int { return rr.pq.M }

// K returns the centroids per subspace.
func (rr *Reranker) K() int { return rr.pq.K }

// Dim returns the vector dimensionality the quantizer was trained on.
func (rr *Reranker) Dim() int { return rr.pq.Dim }

// Rotated reports whether an OPQ rotation is applied before coding.
func (rr *Reranker) Rotated() bool { return rr.r != nil }

// TableLen returns the flat ADC table length (M·K float32 entries).
func (rr *Reranker) TableLen() int { return rr.pq.M * rr.pq.K }

// rotate writes the quantizer-space image of x into rot: (x−mean)ᵀ·R,
// or a plain copy when no rotation was trained. rot has length Dim.
func (rr *Reranker) rotate(x []float32, rot []float32) {
	d := rr.pq.Dim
	if rr.r == nil {
		copy(rot, x)
		return
	}
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < d; i++ {
			s += (float64(x[i]) - rr.mean[i]) * rr.r.At(i, j)
		}
		rot[j] = float32(s)
	}
}

// EncodeTo quantizes x into dst (length M, one byte per subspace). rot
// is rotation scratch of length Dim; it may be nil for a plain-PQ
// quantizer.
func (rr *Reranker) EncodeTo(x []float32, dst []uint8, rot []float32) {
	pq := rr.pq
	if len(x) != pq.Dim || len(dst) != pq.M {
		panic("quantization: EncodeTo shape mismatch")
	}
	if rr.r != nil {
		rr.rotate(x, rot)
		x = rot
	}
	for s := 0; s < pq.M; s++ {
		w := pq.width(s)
		xs := x[pq.offsets[s] : pq.offsets[s]+w]
		best, _ := vecmath.ArgNearest(xs, pq.codebooks[s], pq.K, w)
		dst[s] = uint8(best)
	}
}

// EncodeAll codes the n×Dim block into a fresh n·M slab, fanned out
// across procs workers (disjoint output rows, so bit-identical at any
// worker count).
func (rr *Reranker) EncodeAll(data []float32, n, procs int) []uint8 {
	d, m := rr.pq.Dim, rr.pq.M
	codes := make([]uint8, n*m)
	vecmath.ParallelRanges(n, vecmath.Procs(procs), func(lo, hi int) {
		var rot []float32
		if rr.r != nil {
			rot = make([]float32, d)
		}
		for i := lo; i < hi; i++ {
			rr.EncodeTo(data[i*d:(i+1)*d], codes[i*m:(i+1)*m], rot)
		}
	})
	return codes
}

// ADCTable builds the query's asymmetric-distance lookup table into tab
// (grown to M·K entries, reusing capacity) and returns it: tab[s·K+c]
// is the squared distance from the query's subvector s to centroid c.
// rot is rotation scratch of length Dim (nil for plain PQ). The table
// is M·K float32s — ~8KB at the m=8, k=256 defaults — so the per-
// candidate distance becomes M cache-resident lookups.
func (rr *Reranker) ADCTable(q []float32, tab []float32, rot []float32) []float32 {
	pq := rr.pq
	if len(q) != pq.Dim {
		panic(fmt.Sprintf("quantization: query dim %d != %d", len(q), pq.Dim))
	}
	if rr.r != nil {
		rr.rotate(q, rot)
		q = rot
	}
	need := pq.M * pq.K
	if cap(tab) < need {
		tab = make([]float32, need)
	}
	tab = tab[:need]
	for s := 0; s < pq.M; s++ {
		rr.fillRow(s, q, tab[s*pq.K:(s+1)*pq.K])
	}
	return tab
}

// ADCRows builds the query's lookup table as stride-256 rows, one
// [256]float32 per subspace (entries past K stay untouched): the
// serving layout. A byte code indexes a row directly — rows[s][c] —
// and because the row is a fixed-size array the compiler drops the
// bounds check on the code byte, which is the difference between ~20ns
// and ~10ns per candidate in the scoring loop. Values are identical to
// ADCTable's. rot is rotation scratch of length Dim (nil for plain PQ).
func (rr *Reranker) ADCRows(q []float32, rows [][256]float32, rot []float32) [][256]float32 {
	pq := rr.pq
	if len(q) != pq.Dim {
		panic(fmt.Sprintf("quantization: query dim %d != %d", len(q), pq.Dim))
	}
	if rr.r != nil {
		rr.rotate(q, rot)
		q = rot
	}
	if cap(rows) < pq.M {
		rows = make([][256]float32, pq.M)
	}
	rows = rows[:pq.M]
	for s := range rows {
		rr.fillRow(s, q, rows[s][:pq.K])
	}
	return rows
}

// fillRow computes subspace s's K squared distances from the (already
// rotated) query into row. Fused per-width loops: a call into the
// generic distance kernel per centroid costs more than the distance
// itself at these subvector widths (2–8 floats), so the hot widths
// compute in registers, float32 throughout.
func (rr *Reranker) fillRow(s int, q []float32, row []float32) {
	pq := rr.pq
	w := pq.width(s)
	qs := q[pq.offsets[s] : pq.offsets[s]+w]
	cb := pq.codebooks[s]
	switch w {
	case 2:
		q0, q1 := qs[0], qs[1]
		for c := range row {
			d0 := q0 - cb[2*c]
			d1 := q1 - cb[2*c+1]
			row[c] = d0*d0 + d1*d1
		}
	case 4:
		q0, q1, q2, q3 := qs[0], qs[1], qs[2], qs[3]
		for c := range row {
			d0 := q0 - cb[4*c]
			d1 := q1 - cb[4*c+1]
			d2 := q2 - cb[4*c+2]
			d3 := q3 - cb[4*c+3]
			row[c] = (d0*d0 + d1*d1) + (d2*d2 + d3*d3)
		}
	default:
		for c := range row {
			cent := cb[c*w : (c+1)*w]
			var d float32
			for j, x := range qs {
				dd := x - cent[j]
				d += dd * dd
			}
			row[c] = d
		}
	}
}

// ADCDist returns the asymmetric squared distance between the query
// represented by tab and one item's byte code.
func (rr *Reranker) ADCDist(tab []float32, code []uint8) float64 {
	k := rr.pq.K
	var d float64
	for s, c := range code {
		d += float64(tab[s*k+int(c)])
	}
	return d
}

// Decode reconstructs the quantizer-space vector of a byte code into
// dst (length Dim) — test/oracle support for the ADC identity
// ADCDist(table(q), code) == ‖rotate(q) − Decode(code)‖².
func (rr *Reranker) Decode(code []uint8, dst []float32) {
	pq := rr.pq
	if len(code) != pq.M || len(dst) != pq.Dim {
		panic("quantization: Decode shape mismatch")
	}
	for s := 0; s < pq.M; s++ {
		w := pq.width(s)
		c := int(code[s])
		copy(dst[pq.offsets[s]:pq.offsets[s]+w], pq.codebooks[s][c*w:(c+1)*w])
	}
}

// Rotate exposes the quantizer-space mapping for oracles: dst gets
// (x−mean)ᵀ·R, or a copy of x for plain PQ. Both slices have length Dim.
func (rr *Reranker) Rotate(x, dst []float32) { rr.rotate(x, dst) }

// Serialization: a one-byte version tag, the shape header, the optional
// rotation (mean + matrix) and the per-subspace codebooks. Subspace
// widths are a pure function of (Dim, M), so offsets are not stored.
const tagReranker byte = 1

// maxRerankDim bounds the dimensionality accepted from untrusted
// streams so a hostile header cannot demand a multi-GB allocation.
const maxRerankDim = 1 << 16

// Marshal encodes the quantizer for the index's persistence layer.
func (rr *Reranker) Marshal() []byte {
	var buf bytes.Buffer
	buf.WriteByte(tagReranker)
	pq := rr.pq
	writeRU32(&buf, uint32(pq.M))
	writeRU32(&buf, uint32(pq.K))
	writeRU32(&buf, uint32(pq.Dim))
	if rr.r != nil {
		buf.WriteByte(1)
		for _, v := range rr.mean {
			writeRU64(&buf, math.Float64bits(v))
		}
		for _, v := range rr.r.Data {
			writeRU64(&buf, math.Float64bits(v))
		}
	} else {
		buf.WriteByte(0)
	}
	for _, cb := range pq.codebooks {
		for _, v := range cb {
			writeRU32(&buf, math.Float32bits(v))
		}
	}
	return buf.Bytes()
}

// UnmarshalReranker decodes a quantizer previously encoded with
// Marshal, validating every length before allocating.
func UnmarshalReranker(data []byte) (*Reranker, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("quantization: unmarshal: %w", err)
	}
	if tag != tagReranker {
		return nil, fmt.Errorf("quantization: unmarshal: unknown tag %d", tag)
	}
	var m32, k32, d32 uint32
	for _, dst := range []*uint32{&m32, &k32, &d32} {
		if err := binary.Read(r, binary.LittleEndian, dst); err != nil {
			return nil, fmt.Errorf("quantization: unmarshal header: %w", err)
		}
	}
	m, k, d := int(m32), int(k32), int(d32)
	if d < 1 || d > maxRerankDim || m < 1 || m > d || k < 1 || k > MaxCentroids {
		return nil, fmt.Errorf("quantization: unmarshal: invalid shape m=%d k=%d d=%d", m, k, d)
	}
	rotFlag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("quantization: unmarshal: %w", err)
	}
	if rotFlag > 1 {
		return nil, fmt.Errorf("quantization: unmarshal: invalid rotation flag %d", rotFlag)
	}
	out := &Reranker{pq: &PQ{M: m, K: k, Dim: d, offsets: make([]int, m+1)}}
	if rotFlag == 1 {
		out.mean = make([]float64, d)
		if err := readRF64s(r, out.mean); err != nil {
			return nil, err
		}
		out.r = vecmath.NewMat(d, d)
		if err := readRF64s(r, out.r.Data); err != nil {
			return nil, err
		}
	}
	off := 0
	for s := 0; s < m; s++ {
		w := d / m
		if s < d%m {
			w++
		}
		out.pq.offsets[s] = off
		cb := make([]float32, k*w)
		for i := range cb {
			var bits uint32
			if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
				return nil, fmt.Errorf("quantization: unmarshal codebook %d: %w", s, err)
			}
			cb[i] = math.Float32frombits(bits)
		}
		out.pq.codebooks = append(out.pq.codebooks, cb)
		off += w
	}
	out.pq.offsets[m] = off
	if _, err := r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("quantization: unmarshal: trailing data")
	}
	return out, nil
}

func writeRU32(buf *bytes.Buffer, v uint32) { binary.Write(buf, binary.LittleEndian, v) }
func writeRU64(buf *bytes.Buffer, v uint64) { binary.Write(buf, binary.LittleEndian, v) }

func readRF64s(r *bytes.Reader, dst []float64) error {
	for i := range dst {
		var bits uint64
		if err := binary.Read(r, binary.LittleEndian, &bits); err != nil {
			return fmt.Errorf("quantization: unmarshal rotation: %w", err)
		}
		dst[i] = math.Float64frombits(bits)
	}
	return nil
}
