package quantization

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// testBlock generates an n×d block with a few Gaussian clusters so the
// trained codebooks are non-degenerate.
func testBlock(n, d int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	const clusters = 8
	centers := make([]float64, clusters*d)
	for i := range centers {
		centers[i] = rng.NormFloat64() * 4
	}
	data := make([]float32, n*d)
	for i := 0; i < n; i++ {
		c := rng.Intn(clusters)
		for j := 0; j < d; j++ {
			data[i*d+j] = float32(centers[c*d+j] + rng.NormFloat64())
		}
	}
	return data
}

// TestADCMatchesDecodedDistance is the ADC oracle: the table-lookup
// distance must equal the exact squared distance between the rotated
// query and the decoded (reconstructed) item, for plain PQ and OPQ.
func TestADCMatchesDecodedDistance(t *testing.T) {
	const n, d, m, k = 600, 16, 4, 32
	data := testBlock(n, d, 7)
	for _, opq := range []bool{false, true} {
		rr, err := TrainReranker(data, n, d, m, k, opq, 11, 1)
		if err != nil {
			t.Fatalf("opq=%v: %v", opq, err)
		}
		codes := rr.EncodeAll(data, n, 1)
		rng := rand.New(rand.NewSource(13))
		q := make([]float32, d)
		rot := make([]float32, d)
		dec := make([]float32, d)
		rq := make([]float32, d)
		var tab []float32
		for trial := 0; trial < 20; trial++ {
			for j := range q {
				q[j] = float32(rng.NormFloat64() * 3)
			}
			tab = rr.ADCTable(q, tab, rot)
			// The serving-layout rows must agree with the flat table
			// entry-for-entry.
			rows := rr.ADCRows(q, nil, rot)
			for s := 0; s < m; s++ {
				for c := 0; c < k; c++ {
					if rows[s][c] != tab[s*k+c] {
						t.Fatalf("opq=%v: ADCRows[%d][%d]=%g != ADCTable %g",
							opq, s, c, rows[s][c], tab[s*k+c])
					}
				}
			}
			rr.Rotate(q, rq)
			for i := 0; i < n; i += 37 {
				code := codes[i*m : (i+1)*m]
				rr.Decode(code, dec)
				var exact float64
				for j := 0; j < d; j++ {
					dd := float64(rq[j]) - float64(dec[j])
					exact += dd * dd
				}
				got := rr.ADCDist(tab, code)
				// The table pre-sums per-subspace float32 terms; allow
				// accumulation-order rounding.
				if diff := math.Abs(got - exact); diff > 1e-3*(1+exact) {
					t.Fatalf("opq=%v item %d: ADC %g vs decoded %g (diff %g)",
						opq, i, got, exact, diff)
				}
			}
		}
	}
}

// TestTrainingIsParallelInvariant pins the determinism contract:
// training and encoding fan out over workers but must be bit-identical
// to the serial run at any worker count.
func TestTrainingIsParallelInvariant(t *testing.T) {
	const n, d, m, k = 500, 12, 3, 16
	data := testBlock(n, d, 17)
	for _, opq := range []bool{false, true} {
		ref, err := TrainReranker(data, n, d, m, k, opq, 19, 1)
		if err != nil {
			t.Fatalf("opq=%v serial: %v", opq, err)
		}
		refBytes := ref.Marshal()
		refCodes := ref.EncodeAll(data, n, 1)
		for _, procs := range []int{2, 3, 8} {
			got, err := TrainReranker(data, n, d, m, k, opq, 19, procs)
			if err != nil {
				t.Fatalf("opq=%v procs=%d: %v", opq, procs, err)
			}
			if !bytes.Equal(got.Marshal(), refBytes) {
				t.Fatalf("opq=%v procs=%d: trained quantizer differs from serial", opq, procs)
			}
			if !bytes.Equal(got.EncodeAll(data, n, procs), refCodes) {
				t.Fatalf("opq=%v procs=%d: codes differ from serial", opq, procs)
			}
		}
	}
}

// TestRerankerRoundTrip checks Marshal/Unmarshal is lossless: the
// reloaded quantizer must produce identical bytes, codes and tables.
func TestRerankerRoundTrip(t *testing.T) {
	const n, d, m, k = 400, 10, 5, 16
	data := testBlock(n, d, 23)
	for _, opq := range []bool{false, true} {
		rr, err := TrainReranker(data, n, d, m, k, opq, 29, 1)
		if err != nil {
			t.Fatalf("opq=%v: %v", opq, err)
		}
		blob := rr.Marshal()
		got, err := UnmarshalReranker(blob)
		if err != nil {
			t.Fatalf("opq=%v unmarshal: %v", opq, err)
		}
		if got.M() != m || got.K() != k || got.Dim() != d || got.Rotated() != opq {
			t.Fatalf("opq=%v: shape changed: M=%d K=%d Dim=%d rot=%v",
				opq, got.M(), got.K(), got.Dim(), got.Rotated())
		}
		if !bytes.Equal(got.Marshal(), blob) {
			t.Fatalf("opq=%v: re-marshal differs", opq)
		}
		if !bytes.Equal(got.EncodeAll(data, n, 1), rr.EncodeAll(data, n, 1)) {
			t.Fatalf("opq=%v: reloaded quantizer codes differ", opq)
		}
		q := data[:d]
		rot := make([]float32, d)
		a := rr.ADCTable(q, nil, rot)
		b := got.ADCTable(q, nil, rot)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("opq=%v: ADC table entry %d differs: %g vs %g", opq, i, a[i], b[i])
			}
		}
	}
}

// TestUnmarshalRejectsCorruption feeds truncated and mutated blobs:
// every corruption must error, never panic or succeed.
func TestUnmarshalRejectsCorruption(t *testing.T) {
	const n, d, m, k = 300, 8, 4, 16
	data := testBlock(n, d, 31)
	rr, err := TrainReranker(data, n, d, m, k, true, 37, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob := rr.Marshal()

	if _, err := UnmarshalReranker(nil); err == nil {
		t.Fatal("empty blob accepted")
	}
	for _, cut := range []int{1, 4, 12, len(blob) / 2, len(blob) - 1} {
		if _, err := UnmarshalReranker(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected (the blob is length-framed by
	// its container).
	if _, err := UnmarshalReranker(append(append([]byte{}, blob...), 0xAB)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// Wrong version tag.
	bad := append([]byte{}, blob...)
	bad[0] ^= 0xFF
	if _, err := UnmarshalReranker(bad); err == nil {
		t.Fatal("bad version tag accepted")
	}
	// Implausible shape: M larger than Dim.
	bad = append([]byte{}, blob...)
	bad[1], bad[2], bad[3], bad[4] = 0xFF, 0xFF, 0xFF, 0x7F
	if _, err := UnmarshalReranker(bad); err == nil {
		t.Fatal("implausible M accepted")
	}
}

// TestTrainRerankerRejectsWideK pins the one-byte-code limit.
func TestTrainRerankerRejectsWideK(t *testing.T) {
	data := testBlock(300, 8, 41)
	if _, err := TrainReranker(data, 300, 8, 4, MaxCentroids+1, false, 1, 1); err == nil {
		t.Fatal("K above the one-byte limit accepted")
	}
}
