package quantization

import (
	"math"
	"sort"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/vecmath"
)

func qdata(t testing.TB, n, d int) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.GeneratorSpec{
		Name: "vq", N: n, Dim: d, Clusters: 6, LatentDim: d / 4, Seed: 91,
	})
}

func TestPQRoundTripShapes(t *testing.T) {
	ds := qdata(t, 400, 16)
	pq, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 4, 8, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	code := pq.Encode(ds.Vector(0), nil)
	if len(code) != 4 {
		t.Fatalf("code length %d", len(code))
	}
	for _, c := range code {
		if int(c) >= 8 {
			t.Fatalf("code %d out of range", c)
		}
	}
	rec := make([]float32, 16)
	pq.Decode(code, rec)
}

func TestPQEncodePicksNearestCentroids(t *testing.T) {
	ds := qdata(t, 300, 12)
	pq, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 3, 8, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x := ds.Vector(i)
		code := pq.Encode(x, nil)
		for s := 0; s < pq.M; s++ {
			w := pq.width(s)
			xs := x[pq.offsets[s] : pq.offsets[s]+w]
			best, _ := vecmath.ArgNearest(xs, pq.codebooks[s], pq.K, w)
			if int(code[s]) != best {
				t.Fatalf("item %d subspace %d: code %d but nearest %d", i, s, code[s], best)
			}
		}
	}
}

func TestADCMatchesReconstruction(t *testing.T) {
	// ADC distance must exactly equal the distance between the query
	// and the decoded reconstruction.
	ds := qdata(t, 300, 12)
	pq, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 4, 8, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]float32, 12)
	for qi := 0; qi < 10; qi++ {
		q := ds.Vector(qi)
		table := pq.ADCTable(q)
		for i := 20; i < 40; i++ {
			code := pq.Encode(ds.Vector(i), nil)
			adc := pq.ADCDist(table, code)
			pq.Decode(code, rec)
			want := vecmath.SquaredL2(q, rec)
			if math.Abs(adc-want) > 1e-6*(want+1) {
				t.Fatalf("ADC %g != reconstruction distance %g", adc, want)
			}
		}
	}
}

func TestMoreCentroidsReduceError(t *testing.T) {
	ds := qdata(t, 600, 16)
	small, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 4, 4, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	big, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 4, 32, 12, 4)
	if err != nil {
		t.Fatal(err)
	}
	es, eb := small.ReconstructionError(ds.Vectors, ds.N()), big.ReconstructionError(ds.Vectors, ds.N())
	if eb >= es {
		t.Fatalf("32 centroids (err %g) not better than 4 (err %g)", eb, es)
	}
}

func TestPQValidation(t *testing.T) {
	ds := qdata(t, 100, 8)
	if _, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 0, 4, 5, 1); err == nil {
		t.Fatal("M=0 must be rejected")
	}
	if _, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 9, 4, 5, 1); err == nil {
		t.Fatal("M>d must be rejected")
	}
	if _, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 2, 0, 5, 1); err == nil {
		t.Fatal("K=0 must be rejected")
	}
	if _, err := TrainPQ(ds.Vectors[:8], ds.N(), ds.Dim, 2, 4, 5, 1); err == nil {
		t.Fatal("short data must be rejected")
	}
}

func TestOPQRotationIsOrthogonal(t *testing.T) {
	ds := qdata(t, 300, 10)
	opq, err := TrainOPQ(ds.Vectors, ds.N(), ds.Dim, 2, 8, 4, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	id := vecmath.Mul(opq.R.T(), opq.R)
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id.At(i, j)-want) > 1e-8 {
				t.Fatal("OPQ rotation not orthogonal")
			}
		}
	}
}

func TestOPQRotatePreservesNorms(t *testing.T) {
	ds := qdata(t, 200, 8)
	opq, err := TrainOPQ(ds.Vectors, ds.N(), ds.Dim, 2, 4, 3, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	rot := make([]float32, 8)
	mean32 := make([]float32, 8)
	for j, m := range opq.mean {
		mean32[j] = float32(m)
	}
	for i := 0; i < 30; i++ {
		x := ds.Vector(i)
		opq.Rotate(x, rot)
		centered := make([]float32, 8)
		for j := range centered {
			centered[j] = x[j] - mean32[j]
		}
		if math.Abs(vecmath.Norm(rot)-vecmath.Norm(centered)) > 1e-3*(vecmath.Norm(centered)+1) {
			t.Fatalf("rotation changed the norm: %g vs %g", vecmath.Norm(rot), vecmath.Norm(centered))
		}
	}
}

func TestOPQNotWorseThanPQ(t *testing.T) {
	// OPQ's learned rotation must not increase the quantization error
	// relative to PQ on the raw (centered) data — that is the OPQ
	// objective. Compare errors in the respective quantization spaces
	// (both are isometric to the input space).
	ds := qdata(t, 800, 16)
	pq, err := TrainPQ(ds.Vectors, ds.N(), ds.Dim, 4, 8, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	opq, err := TrainOPQ(ds.Vectors, ds.N(), ds.Dim, 4, 8, 8, 12, 7)
	if err != nil {
		t.Fatal(err)
	}
	epq := pq.ReconstructionError(ds.Vectors, ds.N())
	eopq := opq.ReconstructionError(ds.Vectors, ds.N())
	if eopq > epq*1.05 {
		t.Fatalf("OPQ error %g much worse than PQ error %g", eopq, epq)
	}
}

func TestCellSequenceOrderAndCoverage(t *testing.T) {
	ds := qdata(t, 500, 12)
	imi, err := BuildIMI(ds.Vectors, ds.N(), ds.Dim, IMIConfig{M: 3, KFine: 8, KCoarse: 6, OPQIters: 3, KMeansIters: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Vector(0)
	cs := imi.NewCellSequence(q)
	prev := -1.0
	visited := 0
	total := 0
	for {
		items, score, ok := cs.Next()
		if !ok {
			break
		}
		if score < prev-1e-12 {
			t.Fatalf("cell scores decreased: %g -> %g", prev, score)
		}
		prev = score
		visited++
		total += len(items)
	}
	if visited != 6*6 {
		t.Fatalf("visited %d cells, want 36", visited)
	}
	if total != ds.N() {
		t.Fatalf("cells contain %d items, want %d", total, ds.N())
	}
}

func TestCellSequenceScoresAreTrueSums(t *testing.T) {
	ds := qdata(t, 300, 8)
	imi, err := BuildIMI(ds.Vectors, ds.N(), ds.Dim, IMIConfig{M: 2, KFine: 4, KCoarse: 4, OPQIters: 3, KMeansIters: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Vector(1)
	d := imi.OPQ.PQ.Dim
	rot := make([]float32, d)
	imi.OPQ.Rotate(q, rot)
	// Recompute du/dv directly.
	var expect []float64
	for u := 0; u < imi.K; u++ {
		for v := 0; v < imi.K; v++ {
			w0, w1 := imi.halfWidth[0], imi.halfWidth[1]
			du := vecmath.SquaredL2(rot[:w0], imi.coarse[0][u*w0:(u+1)*w0])
			dv := vecmath.SquaredL2(rot[w0:], imi.coarse[1][v*w1:(v+1)*w1])
			expect = append(expect, du+dv)
		}
	}
	sort.Float64s(expect)
	cs := imi.NewCellSequence(q)
	for i := 0; ; i++ {
		_, score, ok := cs.Next()
		if !ok {
			if i != len(expect) {
				t.Fatalf("sequence ended after %d cells, want %d", i, len(expect))
			}
			break
		}
		if math.Abs(score-expect[i]) > 1e-9 {
			t.Fatalf("cell %d score %g, want %g", i, score, expect[i])
		}
	}
}

func TestRetrieveBudget(t *testing.T) {
	ds := qdata(t, 400, 12)
	imi, err := BuildIMI(ds.Vectors, ds.N(), ds.Dim, IMIConfig{M: 3, KFine: 8, KCoarse: 5, OPQIters: 3, KMeansIters: 8, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	cands := imi.Retrieve(ds.Vector(0), 50)
	if len(cands) < 50 {
		t.Fatalf("retrieved %d candidates, want >= 50", len(cands))
	}
	all := imi.Retrieve(ds.Vector(0), ds.N()*2)
	if len(all) != ds.N() {
		t.Fatalf("full retrieve returned %d, want %d", len(all), ds.N())
	}
	seen := make(map[int32]bool)
	for _, id := range all {
		if seen[id] {
			t.Fatalf("item %d retrieved twice", id)
		}
		seen[id] = true
	}
}

func TestSearchADCFindsNeighbors(t *testing.T) {
	// With a full budget, ADC ranking must place the query's own vector
	// first (distance to own reconstruction is minimal in practice).
	ds := qdata(t, 500, 12)
	ds.SampleQueries(10, 92)
	ds.ComputeGroundTruth(10)
	imi, err := BuildIMI(ds.Vectors, ds.N(), ds.Dim, IMIConfig{M: 4, KFine: 16, KCoarse: 6, OPQIters: 4, KMeansIters: 10, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// ADC is approximate; require that a good fraction of the true
	// top-10 appear in the ADC top-20 at full budget.
	hits := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		got := imi.SearchADC(ds.Query(qi), 20, ds.N())
		inGot := make(map[int32]bool)
		for _, id := range got {
			inGot[id] = true
		}
		for _, id := range ds.GroundTruth[qi] {
			if inGot[id] {
				hits++
			}
		}
	}
	totalGT := ds.NQ() * 10
	if hits*2 < totalGT {
		t.Fatalf("ADC found only %d/%d true neighbors", hits, totalGT)
	}
}

func TestFineCodesStored(t *testing.T) {
	ds := qdata(t, 200, 8)
	imi, err := BuildIMI(ds.Vectors, ds.N(), ds.Dim, IMIConfig{M: 2, KFine: 4, KCoarse: 4, OPQIters: 3, KMeansIters: 8, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	d := imi.OPQ.PQ.Dim
	rot := make([]float32, d)
	for i := int32(0); i < 20; i++ {
		imi.OPQ.Rotate(ds.Vector(int(i)), rot)
		want := imi.OPQ.PQ.Encode(rot, nil)
		got := imi.FineCode(i)
		for s := range want {
			if got[s] != want[s] {
				t.Fatalf("item %d: stored fine code differs", i)
			}
		}
	}
}
