// Package quantization implements the vector-quantization comparison
// system of the paper's §6.5: product quantization (PQ), optimized
// product quantization (OPQ, the state-of-the-art method the paper
// compares against) and the inverted multi-index (IMI) querying
// structure, including asymmetric-distance (ADC) evaluation.
package quantization

import (
	"fmt"
	"math/rand"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

// PQ is a product quantizer: the d-dimensional space is split into M
// contiguous subspaces, each with its own codebook of K centroids
// trained by k-means. A vector is encoded as M centroid indices.
type PQ struct {
	M         int         // number of subspaces
	K         int         // centroids per subspace
	Dim       int         // total dimensionality
	offsets   []int       // M+1 subspace boundaries
	codebooks [][]float32 // per subspace: K×width row-major centroids
}

// TrainPQ learns a product quantizer from the n×d block.
func TrainPQ(data []float32, n, d, m, k, iters int, seed int64) (*PQ, error) {
	if m <= 0 || m > d {
		return nil, fmt.Errorf("quantization: M=%d out of range [1,%d]", m, d)
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("quantization: K=%d out of range [1,%d]", k, n)
	}
	if len(data) != n*d {
		return nil, fmt.Errorf("quantization: data length %d != n*d = %d", len(data), n*d)
	}
	pq := &PQ{M: m, K: k, Dim: d, offsets: make([]int, m+1)}
	off := 0
	rng := rand.New(rand.NewSource(seed))
	for s := 0; s < m; s++ {
		w := d / m
		if s < d%m {
			w++
		}
		pq.offsets[s] = off

		sub := make([]float32, n*w)
		for i := 0; i < n; i++ {
			copy(sub[i*w:(i+1)*w], data[i*d+off:i*d+off+w])
		}
		cb, err := cluster.KMeans(sub, n, w, k, iters, rng)
		if err != nil {
			return nil, fmt.Errorf("quantization: subspace %d: %w", s, err)
		}
		pq.codebooks = append(pq.codebooks, cb)
		off += w
	}
	pq.offsets[m] = off
	return pq, nil
}

// width returns the dimensionality of subspace s.
func (pq *PQ) width(s int) int { return pq.offsets[s+1] - pq.offsets[s] }

// Encode quantizes x to its M centroid indices, appended to dst.
func (pq *PQ) Encode(x []float32, dst []uint16) []uint16 {
	if len(x) != pq.Dim {
		panic(fmt.Sprintf("quantization: vector dim %d != %d", len(x), pq.Dim))
	}
	for s := 0; s < pq.M; s++ {
		w := pq.width(s)
		xs := x[pq.offsets[s] : pq.offsets[s]+w]
		best, _ := vecmath.ArgNearest(xs, pq.codebooks[s], pq.K, w)
		dst = append(dst, uint16(best))
	}
	return dst
}

// Decode reconstructs the vector represented by code into dst (length
// Dim).
func (pq *PQ) Decode(code []uint16, dst []float32) {
	if len(code) != pq.M || len(dst) != pq.Dim {
		panic("quantization: Decode shape mismatch")
	}
	for s := 0; s < pq.M; s++ {
		w := pq.width(s)
		c := int(code[s])
		copy(dst[pq.offsets[s]:pq.offsets[s]+w], pq.codebooks[s][c*w:(c+1)*w])
	}
}

// ADCTable precomputes, for a query, the squared distance from each
// query subvector to every centroid of every subspace: table[s][c]. One
// table turns each ADC distance evaluation into M float additions.
func (pq *PQ) ADCTable(q []float32) [][]float64 {
	if len(q) != pq.Dim {
		panic(fmt.Sprintf("quantization: query dim %d != %d", len(q), pq.Dim))
	}
	table := make([][]float64, pq.M)
	for s := 0; s < pq.M; s++ {
		w := pq.width(s)
		qs := q[pq.offsets[s] : pq.offsets[s]+w]
		row := make([]float64, pq.K)
		for c := 0; c < pq.K; c++ {
			row[c] = vecmath.SquaredL2(qs, pq.codebooks[s][c*w:(c+1)*w])
		}
		table[s] = row
	}
	return table
}

// ADCDist returns the asymmetric squared distance between the query
// represented by table and the encoded item.
func (pq *PQ) ADCDist(table [][]float64, code []uint16) float64 {
	var d float64
	for s := 0; s < pq.M; s++ {
		d += table[s][code[s]]
	}
	return d
}

// ReconstructionError returns the mean squared reconstruction error of
// the quantizer over the block — the PQ training objective.
func (pq *PQ) ReconstructionError(data []float32, n int) float64 {
	buf := make([]uint16, 0, pq.M)
	rec := make([]float32, pq.Dim)
	var total float64
	for i := 0; i < n; i++ {
		row := data[i*pq.Dim : (i+1)*pq.Dim]
		buf = pq.Encode(row, buf[:0])
		pq.Decode(buf, rec)
		total += vecmath.SquaredL2(row, rec)
	}
	return total / float64(n)
}
