package quantization

import (
	"fmt"
	"math/rand"
	"sort"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

// IMI is the inverted multi-index (Babenko & Lempitsky), the querying
// structure that makes OPQ competitive (§6.5): the (rotated) space is
// split into two halves, each with a coarse codebook of K centroids;
// every item lands in one of K² cells. A query visits cells in
// ascending du[i]+dv[j] — the multi-sequence algorithm — so candidates
// arrive roughly nearest-cell-first, and items are ranked by asymmetric
// distance (ADC) against the fine OPQ codebooks.
type IMI struct {
	OPQ *OPQ
	K   int

	halfOff   [2]int
	halfWidth [2]int
	coarse    [2][]float32 // K×width coarse codebooks per half

	cells     [][]int32 // K*K inverted lists
	fineCodes []uint16  // n×M fine codes for ADC
	n         int
}

// IMIConfig parameterizes BuildIMI.
type IMIConfig struct {
	// M and KFine shape the fine (ADC) product quantizer.
	M, KFine int
	// KCoarse is the number of coarse centroids per half; the inverted
	// multi-index has KCoarse² cells.
	KCoarse int
	// OPQIters and KMeansIters bound the alternating OPQ updates and
	// the Lloyd iterations inside every k-means call.
	OPQIters, KMeansIters int
	// TrainSample caps the number of vectors used for training (a
	// strided sample); 0 trains on everything. Encoding and cell
	// assignment always cover the full dataset.
	TrainSample int
	Seed        int64
}

// BuildIMI trains the full OPQ+IMI system over the n×d block:
// OPQ rotation + fine codebooks, coarse codebooks per half, and the
// KCoarse² inverted lists.
func BuildIMI(data []float32, n, d int, cfg IMIConfig) (*IMI, error) {
	if d < 2 {
		return nil, fmt.Errorf("quantization: IMI needs at least 2 dims")
	}
	train, trainN := data, n
	if cfg.TrainSample > 0 && cfg.TrainSample < n {
		stride := n / cfg.TrainSample
		trainN = cfg.TrainSample
		train = make([]float32, trainN*d)
		for i := 0; i < trainN; i++ {
			copy(train[i*d:(i+1)*d], data[i*stride*d:(i*stride+1)*d])
		}
	}
	opq, err := TrainOPQ(train, trainN, d, cfg.M, cfg.KFine, cfg.OPQIters, cfg.KMeansIters, cfg.Seed)
	if err != nil {
		return nil, err
	}
	kCoarse := cfg.KCoarse
	imi := &IMI{OPQ: opq, K: kCoarse, n: n}
	imi.halfOff = [2]int{0, d / 2}
	imi.halfWidth = [2]int{d / 2, d - d/2}

	// Coarse codebooks per half, trained on the rotated sample.
	rotTrain := make([]float32, trainN*d)
	for i := 0; i < trainN; i++ {
		opq.Rotate(train[i*d:(i+1)*d], rotTrain[i*d:(i+1)*d])
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for h := 0; h < 2; h++ {
		w := imi.halfWidth[h]
		sub := make([]float32, trainN*w)
		for i := 0; i < trainN; i++ {
			copy(sub[i*w:(i+1)*w], rotTrain[i*d+imi.halfOff[h]:i*d+imi.halfOff[h]+w])
		}
		cb, err := cluster.KMeans(sub, trainN, w, kCoarse, cfg.KMeansIters, rng)
		if err != nil {
			return nil, fmt.Errorf("quantization: coarse codebook %d: %w", h, err)
		}
		imi.coarse[h] = cb
	}

	// Rotate the whole dataset once for assignment and encoding.
	rotated := make([]float32, n*d)
	for i := 0; i < n; i++ {
		opq.Rotate(data[i*d:(i+1)*d], rotated[i*d:(i+1)*d])
	}

	// Assign items to cells and encode fine codes.
	imi.cells = make([][]int32, kCoarse*kCoarse)
	imi.fineCodes = make([]uint16, 0, n*cfg.M)
	for i := 0; i < n; i++ {
		row := rotated[i*d : (i+1)*d]
		u, _ := vecmath.ArgNearest(row[imi.halfOff[0]:imi.halfOff[0]+imi.halfWidth[0]], imi.coarse[0], kCoarse, imi.halfWidth[0])
		v, _ := vecmath.ArgNearest(row[imi.halfOff[1]:imi.halfOff[1]+imi.halfWidth[1]], imi.coarse[1], kCoarse, imi.halfWidth[1])
		cell := u*kCoarse + v
		imi.cells[cell] = append(imi.cells[cell], int32(i))
		imi.fineCodes = opq.PQ.Encode(row, imi.fineCodes)
	}
	return imi, nil
}

// FineCode returns item i's fine PQ code.
func (imi *IMI) FineCode(i int32) []uint16 {
	m := imi.OPQ.PQ.M
	return imi.fineCodes[int(i)*m : (int(i)+1)*m]
}

// CellSequence traverses cells in ascending du+dv for the rotated query
// (the multi-sequence algorithm). Next returns the cell's item list and
// its score; ok=false when all K² cells have been visited.
type CellSequence struct {
	imi    *IMI
	du, dv []float64 // sorted coarse distances
	su, sv []int     // sorted order -> centroid index
	heap   []msNode
	pushed map[int]bool
}

type msNode struct {
	a, b int
	dist float64
}

// NewCellSequence prepares the traversal for a query (in original,
// unrotated space).
func (imi *IMI) NewCellSequence(q []float32) *CellSequence {
	d := imi.OPQ.PQ.Dim
	rot := make([]float32, d)
	imi.OPQ.Rotate(q, rot)
	cs := &CellSequence{imi: imi, pushed: make(map[int]bool)}
	for h := 0; h < 2; h++ {
		w := imi.halfWidth[h]
		qs := rot[imi.halfOff[h] : imi.halfOff[h]+w]
		dists := make([]float64, imi.K)
		for c := 0; c < imi.K; c++ {
			dists[c] = vecmath.SquaredL2(qs, imi.coarse[h][c*w:(c+1)*w])
		}
		order := make([]int, imi.K)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(i, j int) bool {
			if dists[order[i]] != dists[order[j]] {
				return dists[order[i]] < dists[order[j]]
			}
			return order[i] < order[j]
		})
		sorted := make([]float64, imi.K)
		for i, c := range order {
			sorted[i] = dists[c]
		}
		if h == 0 {
			cs.du, cs.su = sorted, order
		} else {
			cs.dv, cs.sv = sorted, order
		}
	}
	cs.push(0, 0)
	return cs
}

func (cs *CellSequence) push(a, b int) {
	if a >= cs.imi.K || b >= cs.imi.K {
		return
	}
	key := a*cs.imi.K + b
	if cs.pushed[key] {
		return
	}
	cs.pushed[key] = true
	n := msNode{a: a, b: b, dist: cs.du[a] + cs.dv[b]}
	cs.heap = append(cs.heap, n)
	i := len(cs.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if cs.heap[p].dist <= cs.heap[i].dist {
			break
		}
		cs.heap[p], cs.heap[i] = cs.heap[i], cs.heap[p]
		i = p
	}
}

// Next returns the next cell's items (possibly empty) and its
// du+dv score.
func (cs *CellSequence) Next() (items []int32, score float64, ok bool) {
	if len(cs.heap) == 0 {
		return nil, 0, false
	}
	top := cs.heap[0]
	last := len(cs.heap) - 1
	cs.heap[0] = cs.heap[last]
	cs.heap = cs.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && cs.heap[l].dist < cs.heap[smallest].dist {
			smallest = l
		}
		if r < last && cs.heap[r].dist < cs.heap[smallest].dist {
			smallest = r
		}
		if smallest == i {
			break
		}
		cs.heap[i], cs.heap[smallest] = cs.heap[smallest], cs.heap[i]
		i = smallest
	}
	cs.push(top.a+1, top.b)
	cs.push(top.a, top.b+1)

	cell := cs.su[top.a]*cs.imi.K + cs.sv[top.b]
	return cs.imi.cells[cell], top.dist, true
}

// Retrieve collects candidate item ids cell by cell until at least
// budget candidates are gathered (or all cells visited), in traversal
// order.
func (imi *IMI) Retrieve(q []float32, budget int) []int32 {
	cs := imi.NewCellSequence(q)
	var out []int32
	for len(out) < budget {
		items, _, ok := cs.Next()
		if !ok {
			break
		}
		out = append(out, items...)
	}
	return out
}

// SearchADC retrieves ~budget candidates and returns the k best by
// asymmetric distance against the fine codebooks, in ascending ADC
// order (ties by id).
func (imi *IMI) SearchADC(q []float32, k, budget int) []int32 {
	d := imi.OPQ.PQ.Dim
	rot := make([]float32, d)
	imi.OPQ.Rotate(q, rot)
	table := imi.OPQ.PQ.ADCTable(rot)
	cands := imi.Retrieve(q, budget)
	type scored struct {
		id   int32
		dist float64
	}
	all := make([]scored, len(cands))
	for i, id := range cands {
		all[i] = scored{id: id, dist: imi.OPQ.PQ.ADCDist(table, imi.FineCode(id))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
