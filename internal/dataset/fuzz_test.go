package dataset

import (
	"bytes"
	"testing"
)

// FuzzReadFvecs ensures the fvecs parser never panics and that anything
// it accepts round-trips byte-for-byte.
func FuzzReadFvecs(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteFvecs(&seed, []float32{1, 2, 3, 4, 5, 6}, 3); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0})
	f.Add([]byte{255, 255, 255, 255, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		vecs, dim, err := ReadFvecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		if dim == 0 {
			return // empty input
		}
		var out bytes.Buffer
		if err := WriteFvecs(&out, vecs, dim); err != nil {
			t.Fatalf("accepted vectors failed to re-encode: %v", err)
		}
		back, dim2, err := ReadFvecs(&out)
		if err != nil || dim2 != dim || len(back) != len(vecs) {
			t.Fatalf("re-encoded fvecs do not round-trip: %v", err)
		}
		for i := range vecs {
			// NaNs compare unequal; compare bit patterns via !=
			// tolerance: identical float32 storage must be identical.
			if back[i] != vecs[i] && !(back[i] != back[i] && vecs[i] != vecs[i]) {
				t.Fatalf("value %d changed: %v -> %v", i, vecs[i], back[i])
			}
		}
	})
}

// FuzzReadIvecs ensures the ivecs parser never panics.
func FuzzReadIvecs(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteIvecs(&seed, [][]int32{{1, 2}, {3}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{4, 0, 0, 0, 1, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows, err := ReadIvecs(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteIvecs(&out, rows); err != nil {
			t.Fatalf("accepted rows failed to re-encode: %v", err)
		}
	})
}
