package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gqr/internal/vecmath"
)

func tinyDataset() *Dataset {
	// 5 points on a line; queries at 0.1 and 3.9.
	return &Dataset{
		Name:    "line",
		Dim:     1,
		Vectors: []float32{0, 1, 2, 3, 4},
		Queries: []float32{0.1, 3.9},
	}
}

func TestAccessors(t *testing.T) {
	d := tinyDataset()
	if d.N() != 5 || d.NQ() != 2 {
		t.Fatalf("N=%d NQ=%d", d.N(), d.NQ())
	}
	if d.Vector(2)[0] != 2 || d.Query(1)[0] != 3.9 {
		t.Fatal("Vector/Query accessors broken")
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := tinyDataset()
	d.Vectors = d.Vectors[:4] // no longer divisible... 4/1 is fine; corrupt dim instead
	d.Dim = 3
	if err := d.Validate(); err == nil {
		t.Fatal("Validate must reject block not divisible by dim")
	}
	d2 := tinyDataset()
	d2.GroundTruth = [][]int32{{99}, {0}}
	if err := d2.Validate(); err == nil {
		t.Fatal("Validate must reject out-of-range ground-truth ids")
	}
}

func TestGroundTruthKnown(t *testing.T) {
	d := tinyDataset()
	d.ComputeGroundTruth(2)
	// Query 0.1: nearest are 0 (id 0) then 1 (id 1).
	if got := d.GroundTruth[0]; got[0] != 0 || got[1] != 1 {
		t.Fatalf("gt[0] = %v", got)
	}
	// Query 3.9: nearest are 4 (id 4) then 3 (id 3).
	if got := d.GroundTruth[1]; got[0] != 4 || got[1] != 3 {
		t.Fatalf("gt[1] = %v", got)
	}
}

func TestGroundTruthTieBreaksById(t *testing.T) {
	d := &Dataset{
		Name:    "ties",
		Dim:     1,
		Vectors: []float32{1, 1, 1, 1},
		Queries: []float32{1},
	}
	d.ComputeGroundTruth(3)
	want := []int32{0, 1, 2}
	for i, id := range d.GroundTruth[0] {
		if id != want[i] {
			t.Fatalf("gt = %v, want %v", d.GroundTruth[0], want)
		}
	}
}

func TestGroundTruthClampsK(t *testing.T) {
	d := tinyDataset()
	d.ComputeGroundTruth(50)
	if d.GroundTruthK != 5 || len(d.GroundTruth[0]) != 5 {
		t.Fatalf("k should clamp to N: k=%d len=%d", d.GroundTruthK, len(d.GroundTruth[0]))
	}
}

// Property: heap-based exact kNN matches a full sort, on random data.
func TestExactKNNMatchesFullSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dim := 40+rng.Intn(60), 1+rng.Intn(8)
		d := &Dataset{Name: "r", Dim: dim}
		d.Vectors = make([]float32, n*dim)
		for i := range d.Vectors {
			d.Vectors[i] = float32(rng.NormFloat64())
		}
		q := make([]float32, dim)
		for i := range q {
			q[i] = float32(rng.NormFloat64())
		}
		k := 1 + rng.Intn(10)
		got := exactKNN(d, q, k)

		type pair struct {
			dist float64
			id   int32
		}
		all := make([]pair, n)
		for i := 0; i < n; i++ {
			all[i] = pair{vecmath.SquaredL2(q, d.Vector(i)), int32(i)}
		}
		// Selection sort of the top k (n is small).
		for i := 0; i < k; i++ {
			best := i
			for j := i + 1; j < n; j++ {
				if all[j].dist < all[best].dist ||
					(all[j].dist == all[best].dist && all[j].id < all[best].id) {
					best = j
				}
			}
			all[i], all[best] = all[best], all[i]
			if got[i] != all[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleQueriesRemovesFromBase(t *testing.T) {
	d := Generate(GeneratorSpec{Name: "g", N: 200, Dim: 4, Clusters: 3, LatentDim: 2, Seed: 1})
	d.SampleQueries(20, 42)
	if d.N() != 180 || d.NQ() != 20 {
		t.Fatalf("N=%d NQ=%d after sampling", d.N(), d.NQ())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// A sampled query must not be bit-identical to any remaining base
	// vector (removal happened). With continuous data collisions are
	// impossible.
	q := d.Query(0)
	for i := 0; i < d.N(); i++ {
		if vecmath.SquaredL2(q, d.Vector(i)) == 0 {
			t.Fatal("query still present in base set")
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GeneratorSpec{Name: "det", N: 50, Dim: 6, Clusters: 2, LatentDim: 3, Seed: 7}
	a := Generate(spec)
	b := Generate(spec)
	for i := range a.Vectors {
		if a.Vectors[i] != b.Vectors[i] {
			t.Fatal("Generate must be deterministic for a fixed seed")
		}
	}
}

func TestGenerateHasCorrelatedStructure(t *testing.T) {
	// The synthetic corpora must have a non-flat covariance spectrum:
	// that is the property that makes PCA-style hashing meaningful (see
	// DESIGN.md §4). Check top eigenvalue dominates the median one.
	d := Generate(GeneratorSpec{Name: "corr", N: 2000, Dim: 16, Clusters: 4, LatentDim: 3, Seed: 9})
	cov, _ := vecmath.Covariance(d.Vectors, d.N(), d.Dim)
	vals, _ := vecmath.EigenSym(cov)
	if vals[0] < 4*vals[len(vals)/2] {
		t.Fatalf("spectrum too flat: top=%g median=%g", vals[0], vals[len(vals)/2])
	}
}

func TestSpecsScaling(t *testing.T) {
	full := Specs(CorpusCIFAR, 1)
	half := Specs(CorpusCIFAR, 0.5)
	if half.N != full.N/2 {
		t.Fatalf("scaled N=%d want %d", half.N, full.N/2)
	}
	if half.Dim != full.Dim || half.Seed != full.Seed {
		t.Fatal("scale must only change N")
	}
}

func TestSpecsUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Specs must panic on unknown corpus")
		}
	}()
	Specs("nope", 1)
}

func TestAllCorporaHaveSpecs(t *testing.T) {
	for _, name := range append(AllCorpora(), AppendixCorpora()...) {
		spec := Specs(name, 0.01)
		d := Generate(spec)
		if d.N() < 100 || d.Dim != spec.Dim {
			t.Fatalf("%s: bad tiny corpus N=%d dim=%d", name, d.N(), d.Dim)
		}
	}
}

func TestLoadEndToEnd(t *testing.T) {
	d := Load(CorpusAUDIO, 0.02, 10, 5)
	if d.NQ() != 10 || d.GroundTruthK != 5 {
		t.Fatalf("NQ=%d k=%d", d.NQ(), d.GroundTruthK)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Ground truth distances must be non-decreasing.
	for qi, row := range d.GroundTruth {
		prev := -1.0
		for _, id := range row {
			dist := vecmath.SquaredL2(d.Query(qi), d.Vector(int(id)))
			if dist < prev {
				t.Fatalf("query %d: ground truth not sorted by distance", qi)
			}
			prev = dist
		}
	}
}

func TestLinearSearchAllMatchesGroundTruth(t *testing.T) {
	d := Load(CorpusAUDIO, 0.02, 5, 3)
	res := d.LinearSearchAll(3)
	for qi := range res {
		for i := range res[qi] {
			if res[qi][i] != d.GroundTruth[qi][i] {
				t.Fatalf("query %d: linear search %v != gt %v", qi, res[qi], d.GroundTruth[qi])
			}
		}
	}
}

func TestGeneratorClusterSeparation(t *testing.T) {
	// Points should be closer to same-cluster points than to a random
	// point on average — a sanity check that clusters exist at all.
	d := Generate(GeneratorSpec{Name: "sep", N: 400, Dim: 8, Clusters: 4, LatentDim: 2, Spread: 10, NoiseScale: 0.05, Seed: 3})
	d.SampleQueries(20, 1)
	d.ComputeGroundTruth(5)
	var nnDist, randDist float64
	rng := rand.New(rand.NewSource(2))
	for qi := 0; qi < d.NQ(); qi++ {
		nnDist += math.Sqrt(vecmath.SquaredL2(d.Query(qi), d.Vector(int(d.GroundTruth[qi][0]))))
		randDist += math.Sqrt(vecmath.SquaredL2(d.Query(qi), d.Vector(rng.Intn(d.N()))))
	}
	if nnDist*2 > randDist {
		t.Fatalf("nearest-neighbor structure too weak: nn=%g rand=%g", nnDist, randDist)
	}
}
