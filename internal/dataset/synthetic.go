package dataset

import (
	"fmt"
	"math/rand"
)

// GeneratorSpec describes a synthetic corpus. The generator draws from a
// mixture of anisotropic Gaussians whose covariance has low-rank
// structure: each cluster is an affine image of a lower-dimensional
// latent Gaussian plus isotropic noise. Real descriptor collections
// (GIST, SIFT) have exactly this character — strong correlated principal
// directions with a noise floor — which is what makes PCA-family hashing
// (PCAH, ITQ, SH) effective and is the property the paper's experiments
// rely on.
type GeneratorSpec struct {
	Name       string
	N          int     // number of base vectors (before query sampling)
	Dim        int     // ambient dimensionality
	Clusters   int     // mixture components
	LatentDim  int     // intrinsic dimensionality of each component
	NoiseScale float64 // isotropic noise stddev
	Spread     float64 // stddev of cluster centers
	Seed       int64
}

// Generate materializes the corpus described by spec.
func Generate(spec GeneratorSpec) *Dataset {
	if spec.N <= 0 || spec.Dim <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec %+v", spec))
	}
	if spec.Clusters <= 0 {
		spec.Clusters = 1
	}
	if spec.LatentDim <= 0 || spec.LatentDim > spec.Dim {
		spec.LatentDim = spec.Dim / 4
		if spec.LatentDim == 0 {
			spec.LatentDim = 1
		}
	}
	if spec.NoiseScale == 0 {
		spec.NoiseScale = 0.1
	}
	if spec.Spread == 0 {
		spec.Spread = 4
	}
	rng := rand.New(rand.NewSource(spec.Seed))

	// Per-cluster parameters: center and a Dim×LatentDim loading matrix
	// with decaying column scales, giving anisotropic covariance
	// A·diag(s²)·Aᵀ + σ²I.
	centers := make([][]float64, spec.Clusters)
	loadings := make([][]float64, spec.Clusters) // row-major Dim×LatentDim
	for c := range centers {
		ctr := make([]float64, spec.Dim)
		for j := range ctr {
			ctr[j] = rng.NormFloat64() * spec.Spread
		}
		centers[c] = ctr
		load := make([]float64, spec.Dim*spec.LatentDim)
		for i := range load {
			load[i] = rng.NormFloat64()
		}
		// Decay latent scales so the spectrum is non-flat (like PCA on
		// real descriptors).
		for l := 0; l < spec.LatentDim; l++ {
			scale := 2.0 / (1.0 + float64(l)*0.5)
			for i := 0; i < spec.Dim; i++ {
				load[i*spec.LatentDim+l] *= scale
			}
		}
		loadings[c] = load
	}

	vectors := make([]float32, spec.N*spec.Dim)
	latent := make([]float64, spec.LatentDim)
	for i := 0; i < spec.N; i++ {
		c := rng.Intn(spec.Clusters)
		ctr, load := centers[c], loadings[c]
		for l := range latent {
			latent[l] = rng.NormFloat64()
		}
		row := vectors[i*spec.Dim : (i+1)*spec.Dim]
		for j := 0; j < spec.Dim; j++ {
			v := ctr[j]
			lr := load[j*spec.LatentDim : (j+1)*spec.LatentDim]
			for l, lv := range latent {
				v += lr[l] * lv
			}
			v += rng.NormFloat64() * spec.NoiseScale
			row[j] = float32(v)
		}
	}
	return &Dataset{Name: spec.Name, Dim: spec.Dim, Vectors: vectors}
}

// Corpus identifiers for the simulated analogues of the paper's datasets.
// Sizes and dimensions are scaled to laptop/single-core budgets while
// preserving the paper's size spread (12×) and the log2(N/10) code-length
// rule; see DESIGN.md §4.
const (
	CorpusCIFAR = "cifar-sim" // stands in for CIFAR60K (60k × 512)
	CorpusGIST  = "gist-sim"  // stands in for GIST1M  (1M × 960)
	CorpusTINY  = "tiny-sim"  // stands in for TINY5M  (5M × 384)
	CorpusSIFT  = "sift-sim"  // stands in for SIFT10M (10M × 128)

	// Appendix corpora (Figures 21-22, Table 3 analogues).
	CorpusDEEP     = "deep-sim"     // DEEP1M (256d image)
	CorpusMSONG    = "msong-sim"    // MSONG1M (420d audio)
	CorpusGLOVE12  = "glove12-sim"  // GLOVE1.2M (200d text)
	CorpusGLOVE22  = "glove22-sim"  // GLOVE2.2M (300d text)
	CorpusAUDIO    = "audio-sim"    // AUDIO50K (192d audio)
	CorpusNUSWIDE  = "nuswide-sim"  // NUSWIDE0.26M (500d image)
	CorpusUKBENCH  = "ukbench-sim"  // UKBENCH1M (128d image)
	CorpusIMAGENET = "imagenet-sim" // IMAGENET2.3M (150d image)
)

// Specs returns the generator spec for a named simulated corpus, scaled
// by the given factor in (0,1] (1 = the full simulated size used in
// EXPERIMENTS.md; tests and testing.B benches use smaller factors).
func Specs(name string, scale float64) GeneratorSpec {
	if scale <= 0 || scale > 1 {
		panic(fmt.Sprintf("dataset: scale %g out of (0,1]", scale))
	}
	// Spread 1 with noise 0.5 makes clusters overlap just enough that
	// learned codes fill ~N/10 buckets at the paper's code-length rule
	// (the paper reports 3.8k-568k buckets, ~10-15 items each); larger
	// spreads concentrate whole clusters into single buckets and
	// flatten every recall curve.
	base := map[string]GeneratorSpec{
		CorpusCIFAR:    {N: 20000, Dim: 64, Clusters: 10, LatentDim: 12, Seed: 101, Spread: 1, NoiseScale: 0.5},
		CorpusGIST:     {N: 60000, Dim: 96, Clusters: 24, LatentDim: 16, Seed: 102, Spread: 1, NoiseScale: 0.5},
		CorpusTINY:     {N: 120000, Dim: 48, Clusters: 40, LatentDim: 10, Seed: 103, Spread: 1, NoiseScale: 0.5},
		CorpusSIFT:     {N: 240000, Dim: 32, Clusters: 64, LatentDim: 8, Seed: 104, Spread: 1, NoiseScale: 0.5},
		CorpusDEEP:     {N: 30000, Dim: 40, Clusters: 20, LatentDim: 8, Seed: 105, Spread: 1, NoiseScale: 0.5},
		CorpusMSONG:    {N: 30000, Dim: 52, Clusters: 16, LatentDim: 10, Seed: 106, Spread: 1, NoiseScale: 0.5},
		CorpusGLOVE12:  {N: 36000, Dim: 32, Clusters: 30, LatentDim: 6, Seed: 107, Spread: 1, NoiseScale: 0.5},
		CorpusGLOVE22:  {N: 66000, Dim: 40, Clusters: 40, LatentDim: 8, Seed: 108, Spread: 1, NoiseScale: 0.5},
		CorpusAUDIO:    {N: 16000, Dim: 28, Clusters: 8, LatentDim: 6, Seed: 109, Spread: 1, NoiseScale: 0.5},
		CorpusNUSWIDE:  {N: 24000, Dim: 56, Clusters: 12, LatentDim: 10, Seed: 110, Spread: 1, NoiseScale: 0.5},
		CorpusUKBENCH:  {N: 33000, Dim: 24, Clusters: 30, LatentDim: 6, Seed: 111, Spread: 1, NoiseScale: 0.5},
		CorpusIMAGENET: {N: 70000, Dim: 30, Clusters: 48, LatentDim: 7, Seed: 112, Spread: 1, NoiseScale: 0.5},
	}
	spec, ok := base[name]
	if !ok {
		panic(fmt.Sprintf("dataset: unknown corpus %q", name))
	}
	spec.Name = name
	spec.N = int(float64(spec.N) * scale)
	if spec.N < 100 {
		spec.N = 100
	}
	return spec
}

// AllCorpora lists the four primary simulated corpora in paper order.
func AllCorpora() []string {
	return []string{CorpusCIFAR, CorpusGIST, CorpusTINY, CorpusSIFT}
}

// AppendixCorpora lists the eight additional simulated corpora.
func AppendixCorpora() []string {
	return []string{
		CorpusDEEP, CorpusMSONG, CorpusGLOVE12, CorpusGLOVE22,
		CorpusAUDIO, CorpusNUSWIDE, CorpusUKBENCH, CorpusIMAGENET,
	}
}

// Load generates a simulated corpus, samples nq queries out of it and
// computes exact ground truth for k neighbors. It is the one-call entry
// point used by benchmarks and examples.
func Load(name string, scale float64, nq, k int) *Dataset {
	d := Generate(Specs(name, scale))
	d.SampleQueries(nq, 9000+int64(len(name)))
	d.ComputeGroundTruth(k)
	return d
}
