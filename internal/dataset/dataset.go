// Package dataset provides the data substrate for the reproduction: the
// Dataset container, deterministic synthetic corpus generators standing in
// for the paper's real descriptor collections (CIFAR60K, GIST1M, TINY5M,
// SIFT10M and the eight appendix datasets), fvecs/ivecs file IO for
// interoperability with the standard ANN benchmark formats, and exact
// brute-force ground truth.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"gqr/internal/vecmath"
)

// Dataset is an in-memory collection of n vectors of dimension Dim,
// stored as one contiguous row-major float32 block, plus query vectors
// and (optionally) exact ground truth for the queries.
type Dataset struct {
	Name    string
	Dim     int
	Vectors []float32 // len = N()*Dim
	Queries []float32 // len = NQ()*Dim

	// GroundTruth[i] holds the ids of the exact k nearest neighbors of
	// query i in ascending distance order (k = GroundTruthK).
	GroundTruth  [][]int32
	GroundTruthK int
}

// N returns the number of base vectors.
func (d *Dataset) N() int {
	if d.Dim == 0 {
		return 0
	}
	return len(d.Vectors) / d.Dim
}

// NQ returns the number of query vectors.
func (d *Dataset) NQ() int {
	if d.Dim == 0 {
		return 0
	}
	return len(d.Queries) / d.Dim
}

// Vector returns base vector i (aliasing the underlying block).
func (d *Dataset) Vector(i int) []float32 {
	return d.Vectors[i*d.Dim : (i+1)*d.Dim]
}

// Query returns query vector i (aliasing the underlying block).
func (d *Dataset) Query(i int) []float32 {
	return d.Queries[i*d.Dim : (i+1)*d.Dim]
}

// Validate reports an error if the dataset is internally inconsistent.
func (d *Dataset) Validate() error {
	if d.Dim <= 0 {
		return fmt.Errorf("dataset %q: non-positive dimension %d", d.Name, d.Dim)
	}
	if len(d.Vectors)%d.Dim != 0 {
		return fmt.Errorf("dataset %q: vector block length %d not divisible by dim %d", d.Name, len(d.Vectors), d.Dim)
	}
	if len(d.Queries)%d.Dim != 0 {
		return fmt.Errorf("dataset %q: query block length %d not divisible by dim %d", d.Name, len(d.Queries), d.Dim)
	}
	if d.GroundTruth != nil && len(d.GroundTruth) != d.NQ() {
		return fmt.Errorf("dataset %q: %d ground-truth rows for %d queries", d.Name, len(d.GroundTruth), d.NQ())
	}
	for qi, row := range d.GroundTruth {
		for _, id := range row {
			if id < 0 || int(id) >= d.N() {
				return fmt.Errorf("dataset %q: ground truth for query %d references item %d outside [0,%d)", d.Name, qi, id, d.N())
			}
		}
	}
	return nil
}

// neighbor is a (distance, id) pair used while computing ground truth.
type neighbor struct {
	dist float64
	id   int32
}

// ComputeGroundTruth fills d.GroundTruth with the exact k nearest base
// vectors of every query under Euclidean distance, via brute-force scan.
// Ties are broken by ascending id so the result is deterministic.
func (d *Dataset) ComputeGroundTruth(k int) {
	if k > d.N() {
		k = d.N()
	}
	d.GroundTruthK = k
	d.GroundTruth = make([][]int32, d.NQ())
	for qi := 0; qi < d.NQ(); qi++ {
		d.GroundTruth[qi] = exactKNN(d, d.Query(qi), k)
	}
}

// exactKNN returns the ids of the k nearest base vectors to q in
// ascending distance order using a bounded max-heap scan.
func exactKNN(d *Dataset, q []float32, k int) []int32 {
	heap := make([]neighbor, 0, k)
	// siftDown maintains the max-heap property rooted at i.
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			largest := i
			if l < len(heap) && heap[l].dist > heap[largest].dist {
				largest = l
			}
			if r < len(heap) && heap[r].dist > heap[largest].dist {
				largest = r
			}
			if largest == i {
				return
			}
			heap[i], heap[largest] = heap[largest], heap[i]
			i = largest
		}
	}
	for i := 0; i < d.N(); i++ {
		dist := vecmath.SquaredL2(q, d.Vector(i))
		if len(heap) < k {
			heap = append(heap, neighbor{dist, int32(i)})
			// Sift up.
			for c := len(heap) - 1; c > 0; {
				p := (c - 1) / 2
				if heap[p].dist >= heap[c].dist {
					break
				}
				heap[p], heap[c] = heap[c], heap[p]
				c = p
			}
		} else if dist < heap[0].dist {
			heap[0] = neighbor{dist, int32(i)}
			siftDown(0)
		}
	}
	sort.Slice(heap, func(a, b int) bool {
		if heap[a].dist != heap[b].dist {
			return heap[a].dist < heap[b].dist
		}
		return heap[a].id < heap[b].id
	})
	out := make([]int32, len(heap))
	for i, nb := range heap {
		out[i] = nb.id
	}
	return out
}

// LinearSearchAll runs the brute-force exact k-NN for every query and
// returns the per-query results; it is the "linear search" row of the
// paper's Table 1.
func (d *Dataset) LinearSearchAll(k int) [][]int32 {
	out := make([][]int32, d.NQ())
	for qi := range out {
		out[qi] = exactKNN(d, d.Query(qi), k)
	}
	return out
}

// SampleQueries moves nq deterministic pseudo-random base vectors out of
// the base set and into the query set (the paper samples 1000 items as
// queries). The selected items are removed from Vectors so queries are
// not their own nearest neighbors.
func (d *Dataset) SampleQueries(nq int, seed int64) {
	n := d.N()
	if nq > n {
		nq = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)[:nq]
	sort.Ints(perm)
	chosen := make(map[int]bool, nq)
	for _, i := range perm {
		chosen[i] = true
	}
	queries := make([]float32, 0, nq*d.Dim)
	remaining := make([]float32, 0, (n-nq)*d.Dim)
	for i := 0; i < n; i++ {
		row := d.Vector(i)
		if chosen[i] {
			queries = append(queries, row...)
		} else {
			remaining = append(remaining, row...)
		}
	}
	d.Vectors = remaining
	d.Queries = queries
	d.GroundTruth = nil
}
