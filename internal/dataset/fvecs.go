package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
)

// The fvecs/ivecs formats are the de-facto exchange formats of the ANN
// benchmark corpora the paper uses (TEXMEX SIFT/GIST releases): each
// vector is stored as a little-endian int32 dimension header followed by
// that many little-endian float32 (fvecs) or int32 (ivecs) components.

// WriteFvecs writes vecs (n rows of dimension dim, row-major) to w in
// fvecs format.
func WriteFvecs(w io.Writer, vecs []float32, dim int) error {
	if dim <= 0 || len(vecs)%dim != 0 {
		return fmt.Errorf("fvecs: block length %d not divisible by dim %d", len(vecs), dim)
	}
	bw := bufio.NewWriter(w)
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(dim))
	var buf [4]byte
	for i := 0; i < len(vecs); i += dim {
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		for _, v := range vecs[i : i+dim] {
			binary.LittleEndian.PutUint32(buf[:], math.Float32bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadFvecs reads all vectors from r in fvecs format. All vectors must
// share one dimension, which is returned.
func ReadFvecs(r io.Reader) (vecs []float32, dim int, err error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return vecs, dim, nil
			}
			return nil, 0, fmt.Errorf("fvecs: reading header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d <= 0 || d > 1<<20 {
			return nil, 0, fmt.Errorf("fvecs: implausible dimension %d", d)
		}
		if dim == 0 {
			dim = d
		} else if d != dim {
			return nil, 0, fmt.Errorf("fvecs: mixed dimensions %d and %d", dim, d)
		}
		row := make([]byte, 4*d)
		if _, err := io.ReadFull(br, row); err != nil {
			return nil, 0, fmt.Errorf("fvecs: truncated vector: %w", err)
		}
		for j := 0; j < d; j++ {
			bits := binary.LittleEndian.Uint32(row[4*j:])
			vecs = append(vecs, math.Float32frombits(bits))
		}
	}
}

// WriteIvecs writes integer rows (e.g. ground-truth neighbor lists) in
// ivecs format. Rows may have differing lengths.
func WriteIvecs(w io.Writer, rows [][]int32) error {
	bw := bufio.NewWriter(w)
	var buf [4]byte
	for _, row := range rows {
		binary.LittleEndian.PutUint32(buf[:], uint32(len(row)))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
		for _, v := range row {
			binary.LittleEndian.PutUint32(buf[:], uint32(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadIvecs reads all integer rows from r in ivecs format.
func ReadIvecs(r io.Reader) ([][]int32, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	var rows [][]int32
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				return rows, nil
			}
			return nil, fmt.Errorf("ivecs: reading header: %w", err)
		}
		d := int(int32(binary.LittleEndian.Uint32(hdr[:])))
		if d < 0 || d > 1<<20 {
			return nil, fmt.Errorf("ivecs: implausible row length %d", d)
		}
		raw := make([]byte, 4*d)
		if _, err := io.ReadFull(br, raw); err != nil {
			return nil, fmt.Errorf("ivecs: truncated row: %w", err)
		}
		row := make([]int32, d)
		for j := range row {
			row[j] = int32(binary.LittleEndian.Uint32(raw[4*j:]))
		}
		rows = append(rows, row)
	}
}

// SaveFvecsFile writes vecs to the named file in fvecs format.
func SaveFvecsFile(path string, vecs []float32, dim int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteFvecs(f, vecs, dim); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFvecsFile reads all vectors from the named fvecs file.
func LoadFvecsFile(path string) ([]float32, int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadFvecs(f)
}
