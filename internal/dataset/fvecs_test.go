package dataset

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestFvecsRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, dim := 1+rng.Intn(20), 1+rng.Intn(16)
		vecs := make([]float32, n*dim)
		for i := range vecs {
			vecs[i] = float32(rng.NormFloat64())
		}
		var buf bytes.Buffer
		if err := WriteFvecs(&buf, vecs, dim); err != nil {
			return false
		}
		got, gotDim, err := ReadFvecs(&buf)
		if err != nil || gotDim != dim || len(got) != len(vecs) {
			return false
		}
		for i := range vecs {
			if got[i] != vecs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFvecsEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, nil, 4); err != nil {
		t.Fatal(err)
	}
	vecs, dim, err := ReadFvecs(&buf)
	if err != nil || len(vecs) != 0 || dim != 0 {
		t.Fatalf("empty roundtrip: vecs=%v dim=%d err=%v", vecs, dim, err)
	}
}

func TestFvecsRejectsBadBlock(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, make([]float32, 5), 2); err == nil {
		t.Fatal("WriteFvecs must reject non-divisible block")
	}
}

func TestFvecsRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, []float32{1, 2, 3}, 3); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadFvecs(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("ReadFvecs must reject truncated input")
	}
}

func TestFvecsRejectsMixedDims(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFvecs(&buf, []float32{1, 2}, 2); err != nil {
		t.Fatal(err)
	}
	if err := WriteFvecs(&buf, []float32{1, 2, 3}, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFvecs(&buf); err == nil {
		t.Fatal("ReadFvecs must reject mixed dimensions")
	}
}

func TestIvecsRoundTrip(t *testing.T) {
	rows := [][]int32{{1, 2, 3}, {}, {-5}, {7, 8}}
	var buf bytes.Buffer
	if err := WriteIvecs(&buf, rows); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIvecs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("rows=%d want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d length mismatch", i)
		}
		for j := range rows[i] {
			if got[i][j] != rows[i][j] {
				t.Fatalf("row %d mismatch: %v vs %v", i, got[i], rows[i])
			}
		}
	}
}

func TestFvecsFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.fvecs")
	vecs := []float32{1, 2, 3, 4, 5, 6}
	if err := SaveFvecsFile(path, vecs, 3); err != nil {
		t.Fatal(err)
	}
	got, dim, err := LoadFvecsFile(path)
	if err != nil || dim != 3 {
		t.Fatalf("load: dim=%d err=%v", dim, err)
	}
	for i := range vecs {
		if got[i] != vecs[i] {
			t.Fatal("file roundtrip mismatch")
		}
	}
}

func TestLoadFvecsFileMissing(t *testing.T) {
	if _, _, err := LoadFvecsFile("/nonexistent/x.fvecs"); err == nil {
		t.Fatal("missing file must error")
	}
}
