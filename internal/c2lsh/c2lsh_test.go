package c2lsh

import (
	"testing"

	"gqr/internal/dataset"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "c2", N: 700, Dim: 12, Clusters: 5, LatentDim: 3, Seed: 75,
	})
	ds.SampleQueries(10, 76)
	ds.ComputeGroundTruth(10)
	return ds
}

func TestBuildValidation(t *testing.T) {
	ds := testData(t)
	cases := []struct{ tables, threshold int }{
		{0, 1}, {256, 1}, {4, 0}, {4, 5},
	}
	for _, c := range cases {
		if _, err := Build(ds.Vectors, ds.N(), ds.Dim, c.tables, c.threshold, 1); err == nil {
			t.Fatalf("Build(tables=%d, threshold=%d) accepted", c.tables, c.threshold)
		}
	}
	if _, err := Build(ds.Vectors[:5], ds.N(), ds.Dim, 4, 2, 1); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestTablesSortedByProjection(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, ds.N(), ds.Dim, 3, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for ti, tb := range ix.Tables {
		for i := 1; i < len(tb.proj); i++ {
			if tb.proj[i] < tb.proj[i-1] {
				t.Fatalf("table %d projections not sorted", ti)
			}
		}
		// Stored projections must match recomputation.
		for i := 0; i < 20; i++ {
			id := tb.ids[i]
			if got := tb.project(ds.Vector(int(id))); got != tb.proj[i] {
				t.Fatalf("table %d: stored projection %g != recomputed %g", ti, tb.proj[i], got)
			}
		}
	}
}

func TestRetrieveCoversDatasetAtFullBudget(t *testing.T) {
	// The paper's §7: these LSH algorithms "guarantee to enumerate all
	// the items" — with an unbounded budget every item must eventually
	// become a candidate exactly once.
	ds := testData(t)
	ix, err := Build(ds.Vectors, ds.N(), ds.Dim, 5, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	cands := ix.Retrieve(ds.Query(0), ds.N()*2)
	if len(cands) != ds.N() {
		t.Fatalf("full expansion yielded %d candidates, want %d", len(cands), ds.N())
	}
	seen := make(map[int32]bool)
	for _, id := range cands {
		if seen[id] {
			t.Fatalf("item %d became a candidate twice", id)
		}
		seen[id] = true
	}
}

func TestNearItemsSurfaceEarly(t *testing.T) {
	// A small-budget retrieval should contain the query's true nearest
	// neighbor much more often than chance.
	ds := testData(t)
	ix, err := Build(ds.Vectors, ds.N(), ds.Dim, 8, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		cands := ix.Retrieve(ds.Query(qi), 100)
		for _, id := range cands {
			if id == ds.GroundTruth[qi][0] {
				hits++
				break
			}
		}
	}
	if hits < ds.NQ()/2 {
		t.Fatalf("nearest neighbor surfaced in only %d/%d small-budget retrievals", hits, ds.NQ())
	}
}

func TestSearchExactAtFullBudgetIsExact(t *testing.T) {
	ds := testData(t)
	ix, err := Build(ds.Vectors, ds.N(), ds.Dim, 4, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 5; qi++ {
		got := ix.SearchExact(ds.Query(qi), 10, ds.N())
		for i, id := range ds.GroundTruth[qi] {
			if got[i] != id {
				t.Fatalf("query %d: full-budget results diverge from ground truth", qi)
			}
		}
	}
}

func TestThresholdGatesCandidates(t *testing.T) {
	// With threshold = tables, an item must collide in every table
	// before becoming a candidate, so small budgets surface fewer
	// candidates than with threshold 1 for the same expansion work.
	ds := testData(t)
	strict, err := Build(ds.Vectors, ds.N(), ds.Dim, 6, 6, 6)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Build(ds.Vectors, ds.N(), ds.Dim, 6, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Query(0)
	// Compare how many expansion rounds it takes to gather 50
	// candidates: measure indirectly via candidate count after a small
	// budget request (both stop at the budget; the strict index needs
	// more scanning internally, which we can't observe directly, so
	// instead check both deliver the budget and the strict one's
	// candidates are "better" on average: higher overlap with the true
	// top-100).
	sc := strict.Retrieve(q, 50)
	lc := loose.Retrieve(q, 50)
	if len(sc) != 50 || len(lc) != 50 {
		t.Fatalf("budgets not met: %d, %d", len(sc), len(lc))
	}
	ds.ComputeGroundTruth(100)
	top := make(map[int32]bool)
	for _, id := range ds.GroundTruth[0] {
		top[id] = true
	}
	overlap := func(ids []int32) int {
		n := 0
		for _, id := range ids {
			if top[id] {
				n++
			}
		}
		return n
	}
	if overlap(sc) < overlap(lc) {
		t.Fatalf("multi-collision candidates (%d in top-100) not better than single (%d)", overlap(sc), overlap(lc))
	}
}
