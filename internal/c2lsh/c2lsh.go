// Package c2lsh implements C2LSH-style collision counting (Gan, Feng,
// Fang & Ng, SIGMOD 2012), the external-memory LSH family the paper's
// §7 describes: every hash table uses a single LSH projection (m = 1),
// and a query expands its search bi-directionally from its own slot in
// each table, counting per-item collisions; items whose collision count
// reaches a threshold become candidates. The paper's observation — such
// methods scan the whole dataset eventually but are "generally worse
// than L2H methods in practice" — is what abl-c2lsh measures.
package c2lsh

import (
	"fmt"
	"math/rand"
	"sort"

	"gqr/internal/vecmath"
)

// table is one single-projection hash table: items sorted by their
// projection value, so bi-directional expansion is a two-pointer walk.
type table struct {
	a    []float64 // projection vector
	b    float64
	proj []float64 // per-item projection, sorted
	ids  []int32   // ids in the same order
}

// Index is a collision-counting LSH index.
type Index struct {
	Dim    int
	N      int
	Data   []float32
	Tables []*table
	// Threshold is the collision count an item needs to become a
	// candidate (l in C2LSH; at most len(Tables)).
	Threshold int
}

// Build constructs the index with the given number of single-projection
// tables and collision threshold.
func Build(data []float32, n, d, tables, threshold int, seed int64) (*Index, error) {
	if n <= 0 || d <= 0 || len(data) != n*d {
		return nil, fmt.Errorf("c2lsh: invalid data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if tables <= 0 || tables > 255 {
		return nil, fmt.Errorf("c2lsh: table count %d out of [1,255]", tables)
	}
	if threshold <= 0 || threshold > tables {
		return nil, fmt.Errorf("c2lsh: threshold %d out of [1,%d]", threshold, tables)
	}
	ix := &Index{Dim: d, N: n, Data: data, Threshold: threshold}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < tables; t++ {
		tb := &table{b: rng.Float64()}
		tb.a = make([]float64, d)
		for j := range tb.a {
			tb.a[j] = rng.NormFloat64()
		}
		type pv struct {
			p  float64
			id int32
		}
		all := make([]pv, n)
		for i := 0; i < n; i++ {
			all[i] = pv{tb.project(data[i*d : (i+1)*d]), int32(i)}
		}
		sort.Slice(all, func(x, y int) bool {
			if all[x].p != all[y].p {
				return all[x].p < all[y].p
			}
			return all[x].id < all[y].id
		})
		tb.proj = make([]float64, n)
		tb.ids = make([]int32, n)
		for i, e := range all {
			tb.proj[i] = e.p
			tb.ids[i] = e.id
		}
		ix.Tables = append(ix.Tables, tb)
	}
	return ix, nil
}

func (t *table) project(x []float32) float64 {
	var s float64
	for j, v := range t.a {
		s += v * float64(x[j])
	}
	return s + t.b
}

// Retrieve expands bi-directionally from the query's position in every
// table, round-robin, counting collisions; an item becomes a candidate
// once its count reaches the threshold. Expansion stops when at least
// budget candidates are collected or every table is fully scanned.
func (ix *Index) Retrieve(q []float32, budget int) []int32 {
	type cursor struct {
		lo, hi int     // next unvisited positions (hi side walks up)
		p      float64 // the query's projection in this table
	}
	curs := make([]cursor, len(ix.Tables))
	for t, tb := range ix.Tables {
		p := tb.project(q)
		// First position with proj >= p.
		hi := sort.SearchFloat64s(tb.proj, p)
		curs[t] = cursor{lo: hi - 1, hi: hi, p: p}
	}
	counts := make([]uint8, ix.N)
	var out []int32
	exhausted := 0
	alive := make([]bool, len(ix.Tables))
	for t := range alive {
		alive[t] = true
	}
	for len(out) < budget && exhausted < len(ix.Tables) {
		for t, tb := range ix.Tables {
			if !alive[t] {
				continue
			}
			c := &curs[t]
			// Take the nearer of the two frontier items.
			var pos int
			switch {
			case c.lo < 0 && c.hi >= ix.N:
				alive[t] = false
				exhausted++
				continue
			case c.lo < 0:
				pos = c.hi
				c.hi++
			case c.hi >= ix.N:
				pos = c.lo
				c.lo--
			case c.p-tb.proj[c.lo] <= tb.proj[c.hi]-c.p:
				pos = c.lo
				c.lo--
			default:
				pos = c.hi
				c.hi++
			}
			id := tb.ids[pos]
			if counts[id] < uint8(ix.Threshold) {
				counts[id]++
				if counts[id] == uint8(ix.Threshold) {
					out = append(out, id)
					if len(out) >= budget {
						return out
					}
				}
			}
		}
	}
	return out
}

// SearchExact retrieves candidates and re-ranks them with exact
// distances, returning the k best ids.
func (ix *Index) SearchExact(q []float32, k, budget int) []int32 {
	cands := ix.Retrieve(q, budget)
	type scored struct {
		id   int32
		dist float64
	}
	all := make([]scored, len(cands))
	for i, id := range cands {
		all[i] = scored{id, vecmath.SquaredL2(q, ix.Data[int(id)*ix.Dim:(int(id)+1)*ix.Dim])}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}
