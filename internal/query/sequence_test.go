package query

import (
	"math"
	"math/bits"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
)

// buildIndex constructs a small ITQ index for sequence tests.
func buildIndex(t testing.TB, n, d, bitsLen, tables int) (*index.Index, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "q", N: n, Dim: d, Clusters: 5, LatentDim: d / 4, Seed: 41,
	})
	ds.SampleQueries(20, 42)
	ix, err := index.Build(hash.ITQ{Iterations: 8}, ds.Vectors, ds.N(), ds.Dim, bitsLen, tables, 43)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

// qdOf computes the quantization distance between a query's costs/code
// and a bucket code, straight from Definition 1.
func qdOf(qcode, bucket uint64, costs []float64) float64 {
	var qd float64
	diff := qcode ^ bucket
	for diff != 0 {
		b := bits.TrailingZeros64(diff)
		qd += costs[b]
		diff &= diff - 1
	}
	return qd
}

func TestGQREmitsEveryCodeExactlyOnce(t *testing.T) {
	// Property 1 / requirement (R1): over a full run, GQR generates
	// each of the 2^m buckets exactly once.
	ix, ds := buildIndex(t, 300, 12, 8, 1)
	g := NewGQR(ix)
	for qi := 0; qi < 5; qi++ {
		seq := g.NewSequence(0, ds.Query(qi))
		seen := make(map[uint64]bool)
		for {
			code, _, ok := seq.Next()
			if !ok {
				break
			}
			if seen[code] {
				t.Fatalf("query %d: code %b emitted twice", qi, code)
			}
			seen[code] = true
		}
		if len(seen) != 1<<8 {
			t.Fatalf("query %d: %d codes emitted, want %d", qi, len(seen), 1<<8)
		}
	}
}

func TestGQRScoresAreTrueQDsAndNonDecreasing(t *testing.T) {
	// Requirement (R2): the i-th emission has the i-th smallest QD, so
	// scores are the true QD of the emitted bucket and non-decreasing.
	ix, ds := buildIndex(t, 300, 12, 10, 1)
	g := NewGQR(ix)
	hasher := ix.Tables[0].Hasher
	costs := make([]float64, 10)
	for qi := 0; qi < 5; qi++ {
		q := ds.Query(qi)
		qcode := hasher.QueryProjection(q, costs)
		seq := g.NewSequence(0, q)
		prev := -1.0
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			if score < prev-1e-12 {
				t.Fatalf("query %d: score decreased %g -> %g", qi, prev, score)
			}
			prev = score
			if want := qdOf(qcode, code, costs); math.Abs(want-score) > 1e-9 {
				t.Fatalf("query %d: emitted score %g but true QD %g", qi, score, want)
			}
		}
	}
}

func TestGQREquivalentToQR(t *testing.T) {
	// Algorithms 1 and 2 are semantically equivalent: restricted to
	// non-empty buckets, GQR and QR visit the same buckets at the same
	// QDs in the same (non-decreasing) score order. Exact order may
	// differ only within exact QD ties.
	ix, ds := buildIndex(t, 400, 12, 10, 1)
	g := NewGQR(ix)
	qr := NewQR(ix)
	for qi := 0; qi < 10; qi++ {
		q := ds.Query(qi)
		var gqrCodes []uint64
		var gqrScores []float64
		seq := g.NewSequence(0, q)
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			if len(ix.Bucket(0, code)) == 0 {
				continue
			}
			gqrCodes = append(gqrCodes, code)
			gqrScores = append(gqrScores, score)
		}
		qrSeq := qr.NewSequence(0, q)
		i := 0
		for {
			code, score, ok := qrSeq.Next()
			if !ok {
				break
			}
			if i >= len(gqrCodes) {
				t.Fatalf("query %d: QR emitted more buckets than GQR", qi)
			}
			if math.Abs(score-gqrScores[i]) > 1e-9 {
				t.Fatalf("query %d pos %d: QR score %g != GQR score %g", qi, i, score, gqrScores[i])
			}
			if code != gqrCodes[i] && math.Abs(score-gqrScores[i]) > 1e-9 {
				t.Fatalf("query %d pos %d: different buckets at different scores", qi, i)
			}
			i++
		}
		if i != len(gqrCodes) {
			t.Fatalf("query %d: GQR emitted %d non-empty buckets, QR %d", qi, len(gqrCodes), i)
		}
	}
}

func TestGQRSharedTreeIdentical(t *testing.T) {
	// The §5.3 shared-generation-tree optimization must not change the
	// emission sequence at all.
	ix, ds := buildIndex(t, 300, 12, 10, 1)
	plain := NewGQR(ix)
	shared := NewGQRSharedTree(ix)
	for qi := 0; qi < 5; qi++ {
		a := plain.NewSequence(0, ds.Query(qi))
		b := shared.NewSequence(0, ds.Query(qi))
		for {
			ca, sa, oka := a.Next()
			cb, sb, okb := b.Next()
			if oka != okb {
				t.Fatalf("query %d: sequences end at different points", qi)
			}
			if !oka {
				break
			}
			if ca != cb || sa != sb {
				t.Fatalf("query %d: shared tree diverged: (%b,%g) vs (%b,%g)", qi, ca, sa, cb, sb)
			}
		}
	}
}

func TestGenTreeMatchesBitOps(t *testing.T) {
	tree := newGenTree(8)
	for mask := uint64(1); mask < 1<<8; mask++ {
		j := bits.Len64(mask) - 1
		var wantAp, wantSw uint64
		if j+1 < 8 {
			hi := uint64(1) << uint(j+1)
			wantAp = mask | hi
			wantSw = (mask &^ (1 << uint(j))) | hi
		}
		ap, sw := tree.children(mask)
		if ap != wantAp || sw != wantSw {
			t.Fatalf("mask %b: children (%b,%b) want (%b,%b)", mask, ap, sw, wantAp, wantSw)
		}
	}
}

func TestGHREmitsEveryCodeInHammingOrder(t *testing.T) {
	ix, ds := buildIndex(t, 200, 12, 8, 1)
	g := NewGHR(ix)
	hasher := ix.Tables[0].Hasher
	for qi := 0; qi < 5; qi++ {
		q := ds.Query(qi)
		qcode := hasher.Code(q)
		seq := g.NewSequence(0, q)
		seen := make(map[uint64]bool)
		prev := -1
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			d := bits.OnesCount64(code ^ qcode)
			if float64(d) != score {
				t.Fatalf("score %g != Hamming distance %d", score, d)
			}
			if d < prev {
				t.Fatalf("Hamming distance decreased %d -> %d", prev, d)
			}
			prev = d
			if seen[code] {
				t.Fatalf("code %b emitted twice", code)
			}
			seen[code] = true
		}
		if len(seen) != 1<<8 {
			t.Fatalf("%d codes emitted, want 256", len(seen))
		}
	}
}

func TestHREmitsExistingBucketsInHammingOrder(t *testing.T) {
	ix, ds := buildIndex(t, 300, 12, 8, 1)
	h := NewHR(ix)
	hasher := ix.Tables[0].Hasher
	for qi := 0; qi < 5; qi++ {
		q := ds.Query(qi)
		qcode := hasher.Code(q)
		seq := h.NewSequence(0, q)
		count := 0
		prev := -1
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			if len(ix.Bucket(0, code)) == 0 {
				t.Fatalf("HR emitted empty bucket %b", code)
			}
			d := bits.OnesCount64(code ^ qcode)
			if float64(d) != score || d < prev {
				t.Fatalf("HR order broken: d=%d prev=%d score=%g", d, prev, score)
			}
			prev = d
			count++
		}
		if count != ix.BucketCount(0) {
			t.Fatalf("HR emitted %d buckets, table has %d", count, ix.BucketCount(0))
		}
	}
}

func TestQREmitsExistingBucketsInQDOrder(t *testing.T) {
	ix, ds := buildIndex(t, 300, 12, 8, 1)
	qr := NewQR(ix)
	hasher := ix.Tables[0].Hasher
	costs := make([]float64, 8)
	for qi := 0; qi < 5; qi++ {
		q := ds.Query(qi)
		qcode := hasher.QueryProjection(q, costs)
		seq := qr.NewSequence(0, q)
		count := 0
		prev := -1.0
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			if want := qdOf(qcode, code, costs); math.Abs(want-score) > 1e-9 {
				t.Fatalf("QR score %g != QD %g", score, want)
			}
			if score < prev-1e-12 {
				t.Fatalf("QR scores decreased")
			}
			prev = score
			count++
		}
		if count != ix.BucketCount(0) {
			t.Fatalf("QR emitted %d buckets, table has %d", count, ix.BucketCount(0))
		}
	}
}

func TestMIHMatchesHR(t *testing.T) {
	// MIH must emit exactly the existing buckets, grouped by the same
	// Hamming distances as HR (the substring trick changes how buckets
	// are found, not which).
	ix, ds := buildIndex(t, 400, 12, 12, 1)
	mih := NewMIH(ix, 3)
	hr := NewHR(ix)
	for qi := 0; qi < 8; qi++ {
		q := ds.Query(qi)
		collect := func(m Method) map[float64][]uint64 {
			groups := make(map[float64][]uint64)
			seq := m.NewSequence(0, q)
			for {
				code, score, ok := seq.Next()
				if !ok {
					break
				}
				groups[score] = append(groups[score], code)
			}
			return groups
		}
		gm, gh := collect(mih), collect(hr)
		if len(gm) != len(gh) {
			t.Fatalf("query %d: MIH has %d distance groups, HR %d", qi, len(gm), len(gh))
		}
		for d, hrCodes := range gh {
			mihCodes := gm[d]
			if len(mihCodes) != len(hrCodes) {
				t.Fatalf("query %d distance %g: MIH %d codes, HR %d", qi, d, len(mihCodes), len(hrCodes))
			}
			inHR := make(map[uint64]bool, len(hrCodes))
			for _, c := range hrCodes {
				inHR[c] = true
			}
			for _, c := range mihCodes {
				if !inHR[c] {
					t.Fatalf("query %d: MIH emitted %b at distance %g, HR did not", qi, c, d)
				}
			}
		}
	}
}

func TestMIHDefaultBlocks(t *testing.T) {
	ix, _ := buildIndex(t, 100, 12, 10, 1)
	mih := NewMIH(ix, 0)
	if mih.blocks < 2 {
		t.Fatalf("default blocks = %d", mih.blocks)
	}
	total := 0
	for _, l := range mih.layout {
		total += l[1]
	}
	if total != 10 {
		t.Fatalf("block widths sum to %d, want 10", total)
	}
}

func TestNewMethodRegistry(t *testing.T) {
	ix, _ := buildIndex(t, 100, 12, 8, 1)
	for _, name := range Methods() {
		m, err := NewMethod(name, ix)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("method name %q != %q", m.Name(), name)
		}
	}
	if _, err := NewMethod("nope", ix); err == nil {
		t.Fatal("NewMethod must reject unknown names")
	}
}

func TestGQRWorksWithAllLearners(t *testing.T) {
	// Generality claim (§6.4): GQR must run on every learner,
	// including the non-linear SH and the Voronoi-cell KMH.
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "gen", N: 400, Dim: 16, Clusters: 4, LatentDim: 4, Seed: 51,
	})
	ds.SampleQueries(5, 52)
	for _, l := range []hash.Learner{hash.LSH{}, hash.PCAH{}, hash.ITQ{Iterations: 5}, hash.SH{}, hash.KMH{SubspaceBits: 4, Iterations: 5}} {
		ix, err := index.Build(l, ds.Vectors, ds.N(), ds.Dim, 8, 1, 53)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		g := NewGQR(ix)
		seq := g.NewSequence(0, ds.Query(0))
		seen := make(map[uint64]bool)
		prev := -1.0
		for {
			code, score, ok := seq.Next()
			if !ok {
				break
			}
			if seen[code] || score < prev-1e-12 {
				t.Fatalf("%s: GQR order/uniqueness broken", l.Name())
			}
			seen[code] = true
			prev = score
		}
		if len(seen) != 256 {
			t.Fatalf("%s: %d codes", l.Name(), len(seen))
		}
	}
}

func TestFig2BucketCountsShape(t *testing.T) {
	// Figure 2's point: the number of possible buckets at Hamming
	// distance r is C(m,r), which explodes for moderate r. Verify via
	// GHR group sizes.
	ix, ds := buildIndex(t, 100, 16, 12, 1)
	g := NewGHR(ix)
	seq := g.NewSequence(0, ds.Query(0))
	groups := make(map[int]int)
	for {
		_, score, ok := seq.Next()
		if !ok {
			break
		}
		groups[int(score)]++
	}
	for r := 0; r <= 12; r++ {
		if groups[r] != binomial(12, r) {
			t.Fatalf("radius %d: %d buckets, want C(12,%d)=%d", r, groups[r], r, binomial(12, r))
		}
	}
}

var benchSink uint64

func BenchmarkGQRGenerateBucket(b *testing.B) {
	ix, ds := buildIndex(b, 2000, 16, 14, 1)
	g := NewGQR(ix)
	q := ds.Query(0)
	b.ResetTimer()
	seq := g.NewSequence(0, q)
	for i := 0; i < b.N; i++ {
		code, _, ok := seq.Next()
		if !ok {
			seq = g.NewSequence(0, q)
			continue
		}
		benchSink ^= code
	}
}

func BenchmarkGHRGenerateBucket(b *testing.B) {
	ix, ds := buildIndex(b, 2000, 16, 14, 1)
	g := NewGHR(ix)
	q := ds.Query(0)
	b.ResetTimer()
	seq := g.NewSequence(0, q)
	for i := 0; i < b.N; i++ {
		code, _, ok := seq.Next()
		if !ok {
			seq = g.NewSequence(0, q)
			continue
		}
		benchSink ^= code
	}
}

func TestGQRNaiveEquivalentToGQR(t *testing.T) {
	// The abl-heap naive-frontier variant must emit exactly the same
	// (bucket, score) sequence as the heap-based GQR.
	ix, ds := buildIndex(t, 300, 12, 10, 1)
	heap := NewGQR(ix)
	naive := NewGQRNaive(ix)
	if naive.Name() != "gqr-naive" || !naive.QDScores() {
		t.Fatal("naive variant misdeclares itself")
	}
	for qi := 0; qi < 5; qi++ {
		a := heap.NewSequence(0, ds.Query(qi))
		b := naive.NewSequence(0, ds.Query(qi))
		for {
			ca, sa, oka := a.Next()
			cb, sb, okb := b.Next()
			if oka != okb {
				t.Fatalf("query %d: sequences end at different points", qi)
			}
			if !oka {
				break
			}
			if sa != sb {
				t.Fatalf("query %d: naive score %g != heap score %g", qi, sb, sa)
			}
			if ca != cb && sa != sb {
				t.Fatalf("query %d: divergent buckets at distinct scores", qi)
			}
		}
	}
}

func TestMethodIntrospection(t *testing.T) {
	ix, _ := buildIndex(t, 100, 12, 8, 1)
	cases := map[string]bool{"hr": false, "ghr": false, "qr": true, "gqr": true, "mih": false}
	for name, wantQD := range cases {
		m, err := NewMethod(name, ix)
		if err != nil {
			t.Fatal(err)
		}
		if m.QDScores() != wantQD {
			t.Fatalf("%s: QDScores = %v, want %v", name, m.QDScores(), wantQD)
		}
	}
	s := NewSearcher(ix, NewGQR(ix))
	if s.Method().Name() != "gqr" {
		t.Fatal("Searcher.Method broken")
	}
	shared := NewGQRSharedTree(ix)
	if shared.Name() != "gqr-shared" {
		t.Fatalf("shared tree name %q", shared.Name())
	}
}
