// Package query implements the querying stage of learning to hash: the
// paper's quantization-distance methods (QR, GQR) and the baselines they
// are evaluated against (HR, GHR/hash lookup, MIH), plus the searcher
// that executes retrieval and evaluation over a hash index.
//
// Terminology follows the paper:
//
//   - HR  — Hamming ranking: sort all non-empty buckets by Hamming
//     distance to c(q), probe in order (§2.2).
//   - GHR — generate-to-probe Hamming ranking, a.k.a. hash lookup:
//     enumerate codes in ascending Hamming distance without sorting
//     (§6.3).
//   - QR  — QD ranking: sort all non-empty buckets by quantization
//     distance (Algorithm 1).
//   - GQR — generate-to-probe QD ranking: emit buckets in ascending QD
//     on demand via the Append/Swap generation tree (Algorithms 2-4).
//   - MIH — multi-index hashing over code substrings (appendix).
package query

import (
	"fmt"

	"gqr/internal/index"
)

// ProbeSequence emits the buckets to probe for one query on one table,
// best first. Score is the sequence's similarity indicator for the
// emitted bucket: quantization distance for QD methods, Hamming distance
// for Hamming methods. Scores are non-decreasing over a sequence's
// lifetime.
type ProbeSequence interface {
	Next() (code uint64, score float64, ok bool)
}

// Method creates probe sequences for queries against a fixed index. A
// Method is bound to the index at construction so it can precompute
// per-table structures (bucket code lists for the sorting methods,
// substring tables for MIH). Methods hold no per-query state, so one
// Method instance serves any number of concurrent Searchers; all
// per-query scratch lives in the sequences themselves, which the
// Searcher owns and recycles through NewSequenceReuse.
type Method interface {
	// Name identifies the querying method ("gqr", "hr", ...).
	Name() string
	// NewSequence starts a probe sequence for query q on table t of the
	// bound index. Sequences are single-use and not safe for concurrent
	// use.
	NewSequence(t int, q []float32) ProbeSequence
	// NewSequenceReuse is NewSequence with scratch recycling: when reuse
	// is a sequence previously returned by this method, its buffers
	// (cost/order arrays, sort scratch, frontier heaps, discovery maps)
	// are reused instead of reallocated, making the steady-state query
	// path allocation-free. Passing nil — or a sequence from another
	// method — falls back to a fresh allocation, so callers can thread
	// whatever they last got back in without type inspection.
	NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence
	// QDScores reports whether Score values are quantization distances
	// (enabling the Theorem 2 early-stop rule in the searcher).
	QDScores() bool
}

// PreparedMethod is implemented by methods whose sequences can start
// from a precomputed (code, costs) pair — the outputs of
// hash.Hasher.QueryProjection — instead of re-deriving them from the
// query vector. This is the batched-execution hook: a BatchPlan
// computes every query's projection with one parallel matmul per
// table, and the searcher hands each sequence its precomputed pair.
// Hamming methods (HR, GHR, MIH) consume only the code and ignore
// costs; QD methods (QR, GQR) copy the costs into their own scratch.
// NewSequencePrepared must be behaviorally identical to
// NewSequenceReuse fed the same query: same emission order, same
// scores.
type PreparedMethod interface {
	NewSequencePrepared(t int, code uint64, costs []float64, reuse ProbeSequence) ProbeSequence
}

// grown returns s resized to length n, reallocating only when the
// capacity is insufficient — the common helper behind every sequence's
// scratch reuse. Contents are unspecified; callers overwrite.
func grown[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// sortIdxByCost sorts order — a permutation of bit indices — by
// ascending costs[order[i]], breaking ties toward the smaller index.
// Code lengths are ≤ 64, so an insertion sort beats sort.Slice and
// allocates nothing; the comparator is a strict total order (indices
// are distinct), so the result is the unique sorted permutation — the
// same one the previous sort.Slice closure produced.
func sortIdxByCost(order []int, costs []float64) {
	for i := 1; i < len(order); i++ {
		v := order[i]
		j := i - 1
		for j >= 0 && (costs[order[j]] > costs[v] || (costs[order[j]] == costs[v] && order[j] > v)) {
			order[j+1] = order[j]
			j--
		}
		order[j+1] = v
	}
}

// NewMethod constructs the named querying method bound to ix.
// Recognized names: "hr", "ghr", "qr", "gqr", "mih".
func NewMethod(name string, ix *index.Index) (Method, error) {
	switch name {
	case "hr":
		return NewHR(ix), nil
	case "ghr":
		return NewGHR(ix), nil
	case "qr":
		return NewQR(ix), nil
	case "gqr":
		return NewGQR(ix), nil
	case "mih":
		return NewMIH(ix, 0), nil
	default:
		return nil, fmt.Errorf("query: unknown querying method %q", name)
	}
}

// Methods lists the registered querying-method names.
func Methods() []string { return []string{"hr", "ghr", "qr", "gqr", "mih"} }
