// Package query implements the querying stage of learning to hash: the
// paper's quantization-distance methods (QR, GQR) and the baselines they
// are evaluated against (HR, GHR/hash lookup, MIH), plus the searcher
// that executes retrieval and evaluation over a hash index.
//
// Terminology follows the paper:
//
//   - HR  — Hamming ranking: sort all non-empty buckets by Hamming
//     distance to c(q), probe in order (§2.2).
//   - GHR — generate-to-probe Hamming ranking, a.k.a. hash lookup:
//     enumerate codes in ascending Hamming distance without sorting
//     (§6.3).
//   - QR  — QD ranking: sort all non-empty buckets by quantization
//     distance (Algorithm 1).
//   - GQR — generate-to-probe QD ranking: emit buckets in ascending QD
//     on demand via the Append/Swap generation tree (Algorithms 2-4).
//   - MIH — multi-index hashing over code substrings (appendix).
package query

import (
	"fmt"

	"gqr/internal/index"
)

// ProbeSequence emits the buckets to probe for one query on one table,
// best first. Score is the sequence's similarity indicator for the
// emitted bucket: quantization distance for QD methods, Hamming distance
// for Hamming methods. Scores are non-decreasing over a sequence's
// lifetime.
type ProbeSequence interface {
	Next() (code uint64, score float64, ok bool)
}

// Method creates probe sequences for queries against a fixed index. A
// Method is bound to the index at construction so it can precompute
// per-table structures (bucket code lists for the sorting methods,
// substring tables for MIH).
type Method interface {
	// Name identifies the querying method ("gqr", "hr", ...).
	Name() string
	// NewSequence starts a probe sequence for query q on table t of the
	// bound index. Sequences are single-use and not safe for concurrent
	// use.
	NewSequence(t int, q []float32) ProbeSequence
	// QDScores reports whether Score values are quantization distances
	// (enabling the Theorem 2 early-stop rule in the searcher).
	QDScores() bool
}

// NewMethod constructs the named querying method bound to ix.
// Recognized names: "hr", "ghr", "qr", "gqr", "mih".
func NewMethod(name string, ix *index.Index) (Method, error) {
	switch name {
	case "hr":
		return NewHR(ix), nil
	case "ghr":
		return NewGHR(ix), nil
	case "qr":
		return NewQR(ix), nil
	case "gqr":
		return NewGQR(ix), nil
	case "mih":
		return NewMIH(ix, 0), nil
	default:
		return nil, fmt.Errorf("query: unknown querying method %q", name)
	}
}

// Methods lists the registered querying-method names.
func Methods() []string { return []string{"hr", "ghr", "qr", "gqr", "mih"} }
