package query

import (
	"math/bits"

	"gqr/internal/index"
)

// GQRNaive is the ablation counterpart of GQR (abl-heap in DESIGN.md):
// identical semantics, but the frontier of candidate flipping vectors is
// a plain slice scanned linearly for its minimum at every step instead
// of a min-heap. It quantifies what the paper's heap buys.
type GQRNaive struct {
	ix *index.Index
}

// NewGQRNaive builds the naive-frontier variant of GQR over ix.
func NewGQRNaive(ix *index.Index) *GQRNaive { return &GQRNaive{ix: ix} }

// Name implements Method.
func (*GQRNaive) Name() string { return "gqr-naive" }

// QDScores implements Method.
func (*GQRNaive) QDScores() bool { return true }

// NewSequence implements Method.
func (g *GQRNaive) NewSequence(t int, q []float32) ProbeSequence {
	return g.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method, recycling the same buffers as the
// heap-based GQR plus the naive frontier slice.
func (g *GQRNaive) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	hasher := g.ix.Tables[t].Hasher
	m := hasher.Bits()
	s, ok := reuse.(*gqrNaiveSeq)
	if !ok || s == nil {
		s = &gqrNaiveSeq{}
	}
	s.costs = grown(s.costs, m)
	s.order = grown(s.order, m)
	s.sorted = grown(s.sorted, m)
	s.origBit = grown(s.origBit, m)
	s.qcode = hasher.QueryProjection(q, s.costs)
	s.m = m
	s.frontier = s.frontier[:0]
	s.started = false
	for i := range s.order {
		s.order[i] = i
	}
	sortIdxByCost(s.order, s.costs)
	for pos, bit := range s.order {
		s.sorted[pos] = s.costs[bit]
		s.origBit[pos] = 1 << uint(bit)
	}
	return s
}

type gqrNaiveSeq struct {
	qcode    uint64
	m        int
	costs    []float64
	order    []int
	sorted   []float64
	origBit  []uint64
	frontier []flipNode
	started  bool
}

func (s *gqrNaiveSeq) Next() (uint64, float64, bool) {
	if !s.started {
		s.started = true
		if s.m > 0 {
			s.frontier = append(s.frontier, flipNode{mask: 1, dist: s.sorted[0]})
		}
		return s.qcode, 0, true
	}
	if len(s.frontier) == 0 {
		return 0, 0, false
	}
	// Linear scan for the minimum — the cost the heap avoids.
	best := 0
	for i := 1; i < len(s.frontier); i++ {
		if s.frontier[i].dist < s.frontier[best].dist {
			best = i
		}
	}
	node := s.frontier[best]
	s.frontier[best] = s.frontier[len(s.frontier)-1]
	s.frontier = s.frontier[:len(s.frontier)-1]

	j := bits.Len64(node.mask) - 1
	if j+1 < s.m {
		hi := uint64(1) << uint(j+1)
		s.frontier = append(s.frontier,
			flipNode{mask: node.mask | hi, dist: node.dist + s.sorted[j+1]},
			flipNode{mask: (node.mask &^ (1 << uint(j))) | hi, dist: node.dist + s.sorted[j+1] - s.sorted[j]})
	}
	code := s.qcode
	mask := node.mask
	for mask != 0 {
		pos := bits.TrailingZeros64(mask)
		code ^= s.origBit[pos]
		mask &= mask - 1
	}
	return code, node.dist, true
}
