package query

// flipNode is one entry of GQR's frontier min-heap: a sorted flipping
// vector (packed mask over sorted-projection positions) and its
// quantization distance.
type flipNode struct {
	mask uint64
	dist float64
}

// flipHeap is a binary min-heap of flipNodes keyed by dist. A typed heap
// (rather than container/heap) keeps the per-bucket generation cost to a
// few nanoseconds, which matters because GQR's whole point is that
// retrieval overhead must stay below evaluation cost.
type flipHeap struct {
	nodes []flipNode
}

func (h *flipHeap) Len() int { return len(h.nodes) }

func (h *flipHeap) Push(n flipNode) {
	h.nodes = append(h.nodes, n)
	i := len(h.nodes) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.nodes[p].dist <= h.nodes[i].dist {
			break
		}
		h.nodes[p], h.nodes[i] = h.nodes[i], h.nodes[p]
		i = p
	}
}

func (h *flipHeap) Pop() flipNode {
	top := h.nodes[0]
	last := len(h.nodes) - 1
	h.nodes[0] = h.nodes[last]
	h.nodes = h.nodes[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && h.nodes[l].dist < h.nodes[smallest].dist {
			smallest = l
		}
		if r < last && h.nodes[r].dist < h.nodes[smallest].dist {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.nodes[i], h.nodes[smallest] = h.nodes[smallest], h.nodes[i]
		i = smallest
	}
}

// Reset empties the heap, retaining capacity for reuse across queries.
func (h *flipHeap) Reset() { h.nodes = h.nodes[:0] }

// topK is a bounded max-heap holding the k best (smallest-distance)
// candidates seen so far: the evaluation stage's data structure. Ties on
// distance are broken toward smaller ids so results are deterministic.
type topK struct {
	k     int
	dists []float64
	ids   []int32
}

func newTopK(k int) *topK {
	return &topK{k: k, dists: make([]float64, 0, k), ids: make([]int32, 0, k)}
}

// Reset empties the heap and rebinds it to a new k, retaining the entry
// arrays when their capacity suffices — the Searcher-scratch path that
// keeps steady-state searches allocation-free.
func (t *topK) Reset(k int) {
	t.k = k
	if cap(t.dists) < k {
		t.dists = make([]float64, 0, k)
		t.ids = make([]int32, 0, k)
		return
	}
	t.dists = t.dists[:0]
	t.ids = t.ids[:0]
}

// worse reports whether entry i is "worse" than entry j in max-heap
// order (greater distance, or equal distance with greater id).
func (t *topK) worse(i, j int) bool {
	if t.dists[i] != t.dists[j] {
		return t.dists[i] > t.dists[j]
	}
	return t.ids[i] > t.ids[j]
}

// Offer considers a candidate; it reports whether the candidate entered
// the top k.
func (t *topK) Offer(dist float64, id int32) bool {
	if len(t.dists) < t.k {
		t.dists = append(t.dists, dist)
		t.ids = append(t.ids, id)
		i := len(t.dists) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !t.worse(i, p) {
				break
			}
			t.swap(i, p)
			i = p
		}
		return true
	}
	if dist > t.dists[0] || (dist == t.dists[0] && id > t.ids[0]) {
		return false
	}
	t.dists[0], t.ids[0] = dist, id
	t.siftDown(0)
	return true
}

func (t *topK) swap(i, j int) {
	t.dists[i], t.dists[j] = t.dists[j], t.dists[i]
	t.ids[i], t.ids[j] = t.ids[j], t.ids[i]
}

func (t *topK) siftDown(i int) {
	n := len(t.dists)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && t.worse(l, largest) {
			largest = l
		}
		if r < n && t.worse(r, largest) {
			largest = r
		}
		if largest == i {
			return
		}
		t.swap(i, largest)
		i = largest
	}
}

// Full reports whether k candidates have been collected.
func (t *topK) Full() bool { return len(t.dists) == t.k }

// Worst returns the current k-th smallest distance (+Inf semantics are
// the caller's: only meaningful when Full).
func (t *topK) Worst() float64 { return t.dists[0] }

// AppendIDs drains the heap's ids into dst (append semantics, heap
// order), destroying the heap — the non-allocating counterpart of
// Sorted for callers that re-score the entries anyway, like the
// re-ranking stage handing its survivors to exact evaluation.
func (t *topK) AppendIDs(dst []int32) []int32 {
	dst = append(dst, t.ids...)
	t.dists = t.dists[:0]
	t.ids = t.ids[:0]
	return dst
}

// Sorted extracts the entries in ascending (distance, id) order,
// destroying the heap.
func (t *topK) Sorted() (ids []int32, dists []float64) {
	n := len(t.dists)
	ids = make([]int32, n)
	dists = make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		ids[i] = t.ids[0]
		dists[i] = t.dists[0]
		last := len(t.dists) - 1
		t.swap(0, last)
		t.dists = t.dists[:last]
		t.ids = t.ids[:last]
		t.siftDown(0)
	}
	return ids, dists
}
