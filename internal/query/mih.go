package query

import (
	"math/bits"
	"slices"
	"sort"

	"gqr/internal/index"
)

// MIH is multi-index hashing (Norouzi, Punjani & Fleet), the appendix
// baseline: the m-bit code is chopped into Blocks substrings, each
// indexed in its own table mapping substring -> full codes. All buckets
// at full Hamming distance exactly r from c(q) are found by searching
// every block within substring radius ⌊r/Blocks⌋ (pigeonhole: a code at
// full distance r is within ⌊r/Blocks⌋ of the query in at least one
// block), then filtering candidates by their true distance and
// de-duplicating. The filter+dedup overhead is exactly why the paper
// finds MIH slightly worse than plain hash lookup at bucket-index code
// lengths where few buckets are empty.
type MIH struct {
	ix     *index.Index
	blocks int
	// per table, per block: substring -> full codes present, stored CSR
	// (sorted substring keys, prefix offsets, flat full-code array) and
	// probed through an open-addressing table, mirroring the bucket
	// storage engine.
	sub [][]mihBlock
	// per table, per block: bit offset and width.
	layout [][2]int
}

// mihBlock is one substring index in CSR form: the full codes whose
// substring equals keys[s] sit at fulls[offsets[s]:offsets[s+1]].
type mihBlock struct {
	offsets []uint32
	fulls   []uint64
	probe   index.ProbeTable
}

// buildMIHBlock groups the table's full codes by their substring in
// this block. Codes arrive ascending (Table.Codes order), and the
// stable grouping keeps each substring's full-code list ascending too —
// the same per-substring order the previous map layout produced.
func buildMIHBlock(codes []uint64, off, w int) mihBlock {
	maskW := (uint64(1) << uint(w)) - 1
	order := make([]int, len(codes))
	for i := range order {
		order[i] = i
	}
	sub := func(c uint64) uint64 { return (c >> uint(off)) & maskW }
	sort.SliceStable(order, func(a, b int) bool { return sub(codes[order[a]]) < sub(codes[order[b]]) })
	var keys []uint64
	offsets := make([]uint32, 1)
	fulls := make([]uint64, len(codes))
	for i, src := range order {
		s := sub(codes[src])
		if len(keys) == 0 || keys[len(keys)-1] != s {
			keys = append(keys, s)
			offsets = append(offsets, uint32(i))
		}
		fulls[i] = codes[src]
		offsets[len(offsets)-1] = uint32(i + 1)
	}
	return mihBlock{offsets: offsets, fulls: fulls, probe: index.NewProbeTable(keys)}
}

// lookup returns the full codes sharing the given substring.
func (b *mihBlock) lookup(sub uint64) []uint64 {
	s, ok := b.probe.Lookup(sub)
	if !ok {
		return nil
	}
	return b.fulls[b.offsets[s]:b.offsets[s+1]]
}

// NewMIH builds multi-index hashing over ix with the given number of
// substring blocks; blocks ≤ 0 picks m/8 rounded up to at least 2
// (8-bit substrings, the typical MIH configuration scaled to short
// codes).
func NewMIH(ix *index.Index, blocks int) *MIH {
	m := ix.Bits()
	if blocks <= 0 {
		blocks = (m + 7) / 8
		if blocks < 2 {
			blocks = 2
		}
	}
	if blocks > m {
		blocks = m
	}
	mi := &MIH{ix: ix, blocks: blocks}
	// Block layout: near-equal contiguous widths.
	mi.layout = make([][2]int, blocks)
	offset := 0
	for b := 0; b < blocks; b++ {
		w := m / blocks
		if b < m%blocks {
			w++
		}
		mi.layout[b] = [2]int{offset, w}
		offset += w
	}
	mi.sub = make([][]mihBlock, len(ix.Tables))
	for t := range ix.Tables {
		mi.sub[t] = make([]mihBlock, blocks)
		codes := ix.Codes(t)
		for b := 0; b < blocks; b++ {
			mi.sub[t][b] = buildMIHBlock(codes, mi.layout[b][0], mi.layout[b][1])
		}
	}
	return mi
}

// Name implements Method.
func (*MIH) Name() string { return "mih" }

// QDScores implements Method.
func (*MIH) QDScores() bool { return false }

// NewSequence implements Method.
func (mi *MIH) NewSequence(t int, q []float32) ProbeSequence {
	return mi.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method. A recycled *mihSeq keeps the
// per-distance discovery lists (truncated, capacity retained) and the
// seen set (cleared, buckets retained), so a warmed sequence restarts
// without allocating.
func (mi *MIH) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	return mi.startSeq(t, mi.ix.Tables[t].Hasher.Code(q), reuse)
}

// NewSequencePrepared implements PreparedMethod: MIH searches from the
// query's code alone, so the precomputed one replaces the Code call and
// the substring enumeration proceeds unchanged.
func (mi *MIH) NewSequencePrepared(t int, code uint64, _ []float64, reuse ProbeSequence) ProbeSequence {
	return mi.startSeq(t, code, reuse)
}

// startSeq resets (or allocates) a mihSeq for one query code.
func (mi *MIH) startSeq(t int, qcode uint64, reuse ProbeSequence) ProbeSequence {
	m := mi.ix.Tables[t].Hasher.Bits()
	s, ok := reuse.(*mihSeq)
	if !ok || s == nil {
		s = &mihSeq{seen: make(map[uint64]bool)}
	}
	s.mi = mi
	s.t = t
	s.qcode = qcode
	s.m = m
	s.radius = -1
	s.group = nil
	s.gpos = 0
	s.pending = grown(s.pending, m+1)
	for i := range s.pending {
		s.pending[i] = s.pending[i][:0]
	}
	clear(s.seen)
	s.blockR = -1
	return s
}

type mihSeq struct {
	mi     *MIH
	t      int
	qcode  uint64
	m      int
	radius int      // current full-distance group being emitted; -1 before the first
	group  []uint64 // codes at distance == radius, sorted
	gpos   int      // next index in group
	// pending[d] collects the discovered codes at full distance d;
	// slices are truncated and reused across queries.
	pending [][]uint64
	seen    map[uint64]bool
	blockR  int // substring radius enumerated so far
}

// extend enumerates all block substrings at exact substring distance br
// from the query in every block and pools the full codes found.
func (s *mihSeq) extend(br int) {
	for b := 0; b < s.mi.blocks; b++ {
		off, w := s.mi.layout[b][0], s.mi.layout[b][1]
		if br > w {
			continue
		}
		maskW := (uint64(1) << uint(w)) - 1
		qsub := (s.qcode >> uint(off)) & maskW
		block := &s.mi.sub[s.t][b]
		emit := func(sub uint64) {
			for _, full := range block.lookup(sub) {
				if s.seen[full] {
					continue
				}
				s.seen[full] = true
				d := bits.OnesCount64(full ^ s.qcode)
				s.pending[d] = append(s.pending[d], full)
			}
		}
		if br == 0 {
			emit(qsub)
			continue
		}
		for mask := firstCombination(br); mask != 0; mask = nextCombination(mask, w) {
			emit(qsub ^ mask)
		}
	}
	s.blockR = br
}

func (s *mihSeq) Next() (uint64, float64, bool) {
	for {
		if s.gpos < len(s.group) {
			c := s.group[s.gpos]
			s.gpos++
			return c, float64(s.radius), true
		}
		// Advance to the next radius group; first make sure every code
		// at that full distance has been discovered (needs substring
		// radius ⌊r/blocks⌋).
		s.radius++
		if s.radius > s.m {
			return 0, 0, false
		}
		need := s.radius / s.mi.blocks
		for s.blockR < need {
			s.extend(s.blockR + 1)
		}
		// Codes are unique, so the in-place sort is deterministic and
		// allocation-free (the group aliases the reusable pending slice).
		s.group = s.pending[s.radius]
		slices.Sort(s.group)
		s.gpos = 0
	}
}
