package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"gqr/internal/hash"
	"gqr/internal/index"
)

// stubHasher returns a fixed code and fixed flipping costs regardless of
// the input vector, letting property tests drive GQR with arbitrary
// cost structures detached from any learner.
type stubHasher struct {
	bits  int
	code  uint64
	costs []float64
}

func (s *stubHasher) Name() string { return "stub" }
func (s *stubHasher) Bits() int    { return s.bits }
func (s *stubHasher) Code(x []float32) uint64 {
	return s.code
}
func (s *stubHasher) QueryProjection(x []float32, costs []float64) uint64 {
	copy(costs, s.costs)
	return s.code
}

// stubIndex wraps a stub hasher in a one-table index over a trivial
// dataset (contents are irrelevant to sequence generation).
func stubIndex(bits int, code uint64, costs []float64) *index.Index {
	data := make([]float32, 4)
	h := &stubHasher{bits: bits, code: code, costs: costs}
	return index.NewFromBuckets(
		[]hash.Hasher{h},
		[]map[uint64][]int32{{code: {0, 1}}},
		data, 2, 2,
	)
}

// TestGQROrderingMatchesSubsetSumSort is the definitive Algorithm 2-4
// correctness property: for arbitrary non-negative cost vectors, GQR
// must emit all 2^m buckets in exactly the order of their QD = subset
// sum of flipped-bit costs, as a brute-force enumeration + sort
// defines it.
func TestGQROrderingMatchesSubsetSumSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(9) // 2..10 bits -> up to 1024 subsets
		costs := make([]float64, m)
		for i := range costs {
			costs[i] = rng.Float64() * 10
			if rng.Intn(5) == 0 {
				costs[i] = 0 // exercise zero-cost ties
			}
		}
		code := uint64(rng.Int63()) & ((1 << uint(m)) - 1)
		ix := stubIndex(m, code, costs)
		seq := NewGQR(ix).NewSequence(0, []float32{0, 0})

		// Brute-force expectation: QD of every bucket.
		type bs struct {
			bucket uint64
			qd     float64
		}
		all := make([]bs, 0, 1<<uint(m))
		for b := uint64(0); b < 1<<uint(m); b++ {
			var qd float64
			diff := b ^ code
			for i := 0; i < m; i++ {
				if diff&(1<<uint(i)) != 0 {
					qd += costs[i]
				}
			}
			all = append(all, bs{b, qd})
		}
		sort.Slice(all, func(a, b int) bool { return all[a].qd < all[b].qd })

		seen := make(map[uint64]bool)
		for i := 0; ; i++ {
			bucket, score, ok := seq.Next()
			if !ok {
				return i == len(all) && len(seen) == len(all)
			}
			if i >= len(all) {
				return false
			}
			if seen[bucket] {
				return false // duplicate emission
			}
			seen[bucket] = true
			// Score must match the brute-force QD at this rank (ties
			// may reorder buckets but never scores).
			if diff := score - all[i].qd; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestGHROrderingMatchesPopcountSort is the analogous property for the
// Hamming generate-to-probe baseline.
func TestGHROrderingMatchesPopcountSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(9)
		code := uint64(rng.Int63()) & ((1 << uint(m)) - 1)
		ix := stubIndex(m, code, make([]float64, m))
		seq := NewGHR(ix).NewSequence(0, []float32{0, 0})
		prev := -1.0
		count := 0
		for {
			_, score, ok := seq.Next()
			if !ok {
				break
			}
			if score < prev {
				return false
			}
			prev = score
			count++
		}
		return count == 1<<uint(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
