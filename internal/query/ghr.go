package query

import "gqr/internal/index"

// GHR is generate-to-probe Hamming ranking, the "hash lookup" variant
// the paper implements as a fair baseline (§6.3): instead of sorting the
// existing buckets, it enumerates all m-bit flipping masks in ascending
// popcount order and probes c(q)⊕mask, so the first buckets are
// available immediately. Codes that hash to empty buckets cost one map
// miss. Within one Hamming radius, masks are enumerated in ascending
// numeric order via Gosper's hack, which is deterministic.
type GHR struct {
	ix *index.Index
}

// NewGHR builds generate-to-probe Hamming ranking over ix.
func NewGHR(ix *index.Index) *GHR { return &GHR{ix: ix} }

// Name implements Method.
func (*GHR) Name() string { return "ghr" }

// QDScores implements Method.
func (*GHR) QDScores() bool { return false }

// NewSequence implements Method.
func (g *GHR) NewSequence(t int, q []float32) ProbeSequence {
	return g.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method. ghrSeq holds no buffers, so reuse
// just resets the enumeration state in place.
func (g *GHR) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	hasher := g.ix.Tables[t].Hasher
	s, ok := reuse.(*ghrSeq)
	if !ok || s == nil {
		s = &ghrSeq{}
	}
	*s = ghrSeq{qcode: hasher.Code(q), m: hasher.Bits()}
	return s
}

// NewSequencePrepared implements PreparedMethod: GHR enumerates from the
// query's code alone, so the precomputed one replaces the Code call.
func (g *GHR) NewSequencePrepared(t int, code uint64, _ []float64, reuse ProbeSequence) ProbeSequence {
	s, ok := reuse.(*ghrSeq)
	if !ok || s == nil {
		s = &ghrSeq{}
	}
	*s = ghrSeq{qcode: code, m: g.ix.Tables[t].Hasher.Bits()}
	return s
}

type ghrSeq struct {
	qcode   uint64
	m       int
	radius  int
	mask    uint64 // current flipping mask within the radius; 0 = emit qcode
	started bool
}

// nextCombination returns the next larger integer with the same popcount
// (Gosper's hack), or 0 on wraparound past the m-bit range.
func nextCombination(v uint64, m int) uint64 {
	c := v & (^v + 1) // lowest set bit
	r := v + c
	next := (((r ^ v) >> 2) / c) | r
	if m < 64 && next >= 1<<uint(m) {
		return 0
	}
	if next < v { // overflow past 64 bits
		return 0
	}
	return next
}

// firstCombination returns the smallest m-bit integer with popcount r.
func firstCombination(r int) uint64 { return (1 << uint(r)) - 1 }

func (s *ghrSeq) Next() (uint64, float64, bool) {
	if !s.started {
		s.started = true
		return s.qcode, 0, true
	}
	for {
		if s.radius == 0 {
			s.radius = 1
			s.mask = firstCombination(1)
			return s.qcode ^ s.mask, 1, true
		}
		if next := nextCombination(s.mask, s.m); next != 0 {
			s.mask = next
			return s.qcode ^ s.mask, float64(s.radius), true
		}
		s.radius++
		if s.radius > s.m {
			return 0, 0, false
		}
		s.mask = firstCombination(s.radius)
		return s.qcode ^ s.mask, float64(s.radius), true
	}
}
