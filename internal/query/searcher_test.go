package query

import (
	"math"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
)

// searchDataset builds a dataset with ground truth plus an index.
func searchDataset(t testing.TB, tables int) (*index.Index, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "s", N: 600, Dim: 16, Clusters: 5, LatentDim: 4, Seed: 61,
	})
	ds.SampleQueries(15, 62)
	ds.ComputeGroundTruth(10)
	ix, err := index.Build(hash.ITQ{Iterations: 8}, ds.Vectors, ds.N(), ds.Dim, 8, tables, 63)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

func TestFullProbeFindsExactNeighborsAllMethods(t *testing.T) {
	// With no budget, every method probes the entire space and must
	// return exactly the brute-force k nearest neighbors — the
	// "recall converges to 1" invariant.
	ix, ds := searchDataset(t, 1)
	for _, name := range Methods() {
		m, err := NewMethod(name, ix)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSearcher(ix, m)
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), Options{K: 10})
			if err != nil {
				t.Fatal(err)
			}
			gt := ds.GroundTruth[qi]
			if len(res.IDs) != len(gt) {
				t.Fatalf("%s query %d: %d results, want %d", name, qi, len(res.IDs), len(gt))
			}
			for i := range gt {
				if res.IDs[i] != gt[i] {
					t.Fatalf("%s query %d: result %v != ground truth %v", name, qi, res.IDs, gt)
				}
			}
			if res.Stats.Candidates != ds.N() {
				t.Fatalf("%s query %d: evaluated %d of %d items on a full probe", name, qi, res.Stats.Candidates, ds.N())
			}
		}
	}
}

func TestDistancesSortedAndCorrect(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGQR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.IDs {
		want := math.Sqrt(float64(0))
		_ = want
		d := res.Dists[i]
		exact := distOf(ds, 0, res.IDs[i])
		if math.Abs(d-exact) > 1e-9 {
			t.Fatalf("distance %g != exact %g", d, exact)
		}
		if i > 0 && res.Dists[i] < res.Dists[i-1] {
			t.Fatal("distances not ascending")
		}
	}
}

func distOf(ds *dataset.Dataset, qi int, id int32) float64 {
	var s float64
	q := ds.Query(qi)
	v := ds.Vector(int(id))
	for j := range q {
		d := float64(q[j]) - float64(v[j])
		s += d * d
	}
	return math.Sqrt(s)
}

func TestCandidateBudgetRespected(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGQR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 10, MaxCandidates: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The budget is checked after each bucket, so overshoot is bounded
	// by one bucket's worth of items.
	if res.Stats.Candidates < 50 || res.Stats.Candidates > 50+200 {
		t.Fatalf("candidates = %d with budget 50", res.Stats.Candidates)
	}
}

func TestBucketBudgetRespected(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGHR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 10, MaxBuckets: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BucketsGenerated != 7 {
		t.Fatalf("buckets generated = %d, want 7", res.Stats.BucketsGenerated)
	}
}

func TestGQRBeatsHRAtEqualCandidates(t *testing.T) {
	// The paper's Figure 8 claim in miniature: at the same number of
	// retrieved items, QD ordering finds at least as many true
	// neighbors as Hamming ordering, summed over queries.
	ix, ds := searchDataset(t, 1)
	gqr := NewSearcher(ix, NewGQR(ix))
	hr := NewSearcher(ix, NewHR(ix))
	recall := func(s *Searcher) int {
		found := 0
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), Options{K: 10, MaxCandidates: 60})
			if err != nil {
				t.Fatal(err)
			}
			inGT := make(map[int32]bool)
			for _, id := range ds.GroundTruth[qi] {
				inGT[id] = true
			}
			for _, id := range res.IDs {
				if inGT[id] {
					found++
				}
			}
		}
		return found
	}
	g, h := recall(gqr), recall(hr)
	if g < h {
		t.Fatalf("GQR found %d true neighbors, HR found %d", g, h)
	}
}

func TestMultiTableDedup(t *testing.T) {
	// With several tables, the same item reachable from multiple
	// tables must be evaluated once.
	ix, ds := searchDataset(t, 3)
	s := NewSearcher(ix, NewGHR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Candidates != ds.N() {
		t.Fatalf("full probe over 3 tables evaluated %d items, want %d (dedup broken)", res.Stats.Candidates, ds.N())
	}
	// And the result is still exact.
	for i, id := range ds.GroundTruth[0] {
		if res.IDs[i] != id {
			t.Fatalf("multi-table result differs from ground truth")
		}
	}
}

func TestMultiTableImprovesRecallAtBudget(t *testing.T) {
	// §6.3.5: more tables -> better recall for the same candidate
	// budget (usually; assert not-worse summed over queries with a
	// margin).
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "mt", N: 800, Dim: 16, Clusters: 6, LatentDim: 4, Seed: 71,
	})
	ds.SampleQueries(20, 72)
	ds.ComputeGroundTruth(10)
	recallWith := func(tables int) int {
		ix, err := index.Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 10, tables, 73)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSearcher(ix, NewGHR(ix))
		found := 0
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), Options{K: 10, MaxCandidates: 40})
			if err != nil {
				t.Fatal(err)
			}
			inGT := make(map[int32]bool)
			for _, id := range ds.GroundTruth[qi] {
				inGT[id] = true
			}
			for _, id := range res.IDs {
				if inGT[id] {
					found++
				}
			}
		}
		return found
	}
	r1, r4 := recallWith(1), recallWith(4)
	if r4+5 < r1 {
		t.Fatalf("4 tables found %d true neighbors, 1 table found %d", r4, r1)
	}
}

func TestEarlyStopPreservesExactness(t *testing.T) {
	// §4.1: stopping once µ·QD ≥ d_k must not change the result of a
	// full probe — the bound guarantees no unseen bucket can help.
	ix, ds := searchDataset(t, 1)
	ph := ix.Tables[0].Hasher.(interface {
		Bits() int
	})
	m := float64(ph.Bits())
	// ITQ's H has orthonormal rows, so σ_max = 1 and µ = 1/√m.
	mu := 1 / math.Sqrt(m)
	s := NewSearcher(ix, NewGQR(ix))
	stopped := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		res, err := s.Search(ds.Query(qi), Options{K: 10, EarlyStop: true, Mu: mu})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.EarlyStopped {
			stopped++
		}
		for i, id := range ds.GroundTruth[qi] {
			if res.IDs[i] != id {
				t.Fatalf("early stop changed the exact result for query %d", qi)
			}
		}
	}
	t.Logf("early stop fired on %d/%d queries", stopped, ds.NQ())
}

func TestSearchValidation(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGQR(ix))
	if _, err := s.Search(ds.Query(0), Options{K: 0}); err == nil {
		t.Fatal("K=0 must be rejected")
	}
	if _, err := s.Search(ds.Query(0)[:3], Options{K: 1}); err == nil {
		t.Fatal("dimension mismatch must be rejected")
	}
}

func TestEpochWraparound(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGQR(ix))
	s.epoch = math.MaxUint32 - 1
	for i := 0; i < 3; i++ {
		res, err := s.Search(ds.Query(0), Options{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Candidates != ds.N() {
			t.Fatalf("wraparound broke dedup: %d candidates", res.Stats.Candidates)
		}
	}
}

func TestStatsBucketAccounting(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	// HR never generates empty buckets; GHR may.
	hr := NewSearcher(ix, NewHR(ix))
	res, err := hr.Search(ds.Query(0), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BucketsGenerated != res.Stats.BucketsProbed {
		t.Fatalf("HR generated %d but probed %d", res.Stats.BucketsGenerated, res.Stats.BucketsProbed)
	}
	if res.Stats.BucketsProbed != ix.BucketCount(0) {
		t.Fatalf("HR full probe visited %d buckets, table has %d", res.Stats.BucketsProbed, ix.BucketCount(0))
	}
	ghr := NewSearcher(ix, NewGHR(ix))
	res2, err := ghr.Search(ds.Query(0), Options{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.BucketsGenerated != 1<<8 {
		t.Fatalf("GHR full probe generated %d codes, want 256", res2.Stats.BucketsGenerated)
	}
	if res2.Stats.BucketsProbed != ix.BucketCount(0) {
		t.Fatalf("GHR probed %d non-empty buckets, table has %d", res2.Stats.BucketsProbed, ix.BucketCount(0))
	}
}

func TestKLargerThanN(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{Name: "k", N: 20, Dim: 8, Seed: 81})
	ds.SampleQueries(2, 82)
	ix, err := index.Build(hash.PCAH{}, ds.Vectors, ds.N(), ds.Dim, 4, 1, 83)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSearcher(ix, NewGQR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != ds.N() {
		t.Fatalf("K>N returned %d results, want all %d", len(res.IDs), ds.N())
	}
}

func TestRadiusOptionPrunesAndFilters(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	mu := 1 / math.Sqrt(float64(ix.Bits())) // ITQ: σ_max = 1
	s := NewSearcher(ix, NewGQR(ix))
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		d2 := distOf(ds, qi, ds.GroundTruth[qi][1])
		d3 := distOf(ds, qi, ds.GroundTruth[qi][2])
		if d3 <= d2 {
			continue
		}
		radius := (d2 + d3) / 2
		res, err := s.Search(q, Options{K: 10, Radius: radius, Mu: mu})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.IDs) != 2 {
			t.Fatalf("query %d: %d in-radius results, want 2", qi, len(res.IDs))
		}
		for i, id := range res.IDs {
			if id != ds.GroundTruth[qi][i] {
				t.Fatalf("query %d: radius results %v != truth prefix", qi, res.IDs)
			}
			if res.Dists[i] > radius {
				t.Fatalf("query %d: result beyond radius", qi)
			}
		}
		// The threshold rule must have stopped probing early.
		if !res.Stats.EarlyStopped {
			t.Fatalf("query %d: radius search did not trigger the threshold stop", qi)
		}
		if res.Stats.Candidates >= ds.N() {
			t.Fatalf("query %d: radius search evaluated the whole dataset", qi)
		}
	}
}

func TestRadiusIgnoredForHammingMethods(t *testing.T) {
	// Hamming scores are not distance bounds; the searcher must not
	// apply the threshold rule, but must still filter the results.
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGHR(ix))
	d1 := distOf(ds, 0, ds.GroundTruth[0][0])
	res, err := s.Search(ds.Query(0), Options{K: 10, Radius: d1 * 1.01, Mu: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EarlyStopped {
		t.Fatal("threshold rule fired for a Hamming method")
	}
	if len(res.IDs) != 1 || res.IDs[0] != ds.GroundTruth[0][0] {
		t.Fatalf("radius filter wrong for Hamming method: %v", res.IDs)
	}
}

func TestProfileTimingsPopulated(t *testing.T) {
	ix, ds := searchDataset(t, 1)
	s := NewSearcher(ix, NewGQR(ix))
	res, err := s.Search(ds.Query(0), Options{K: 10, Profile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.RetrievalTime <= 0 || res.Stats.EvaluationTime <= 0 {
		t.Fatalf("profile timings not populated: %+v", res.Stats)
	}
	// Without Profile the fields stay zero.
	res2, err := s.Search(ds.Query(0), Options{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.RetrievalTime != 0 || res2.Stats.EvaluationTime != 0 {
		t.Fatal("profile timings populated without Profile")
	}
	// Results identical either way.
	if len(res.IDs) != len(res2.IDs) {
		t.Fatal("profiling changed results")
	}
	for i := range res.IDs {
		if res.IDs[i] != res2.IDs[i] {
			t.Fatal("profiling changed results")
		}
	}
}
