package query

import (
	"math/rand"
	"sort"
	"testing"
)

// selectRef computes the reference survivor set by fully sorting
// (dist, id) pairs.
func selectRef(dists []float32, ids []int32, keep int) map[int32]bool {
	type pair struct {
		d  float32
		id int32
	}
	ps := make([]pair, len(ids))
	for i := range ids {
		ps[i] = pair{dists[i], ids[i]}
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].d != ps[b].d {
			return ps[a].d < ps[b].d
		}
		return ps[a].id < ps[b].id
	})
	if keep > len(ps) {
		keep = len(ps)
	}
	set := make(map[int32]bool, keep)
	for _, p := range ps[:keep] {
		set[p.id] = true
	}
	return set
}

// TestADCSelectTopMatchesSort checks the quickselect prefix against a
// full sort across sizes, keeps and heavy duplicate regimes (duplicate
// quantized distances are the norm: items sharing a PQ code share a
// distance, so the id tie-break decides the survivor boundary).
func TestADCSelectTopMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(700)
		keep := 1 + rng.Intn(n+20)
		vals := 1 + rng.Intn(8) // few distinct values → many exact ties
		dists := make([]float32, n)
		ids := make([]int32, n)
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			dists[i] = float32(rng.Intn(vals))
			ids[i] = int32(perm[i])
		}
		want := selectRef(dists, ids, keep)

		adcSelectTop(dists, ids, keep)
		cut := keep
		if cut > n {
			cut = n
		}
		if got := len(ids); got != n {
			t.Fatalf("trial %d: length changed: %d -> %d", trial, n, got)
		}
		for _, id := range ids[:cut] {
			if !want[id] {
				t.Fatalf("trial %d (n=%d keep=%d): id %d in prefix but not in reference set",
					trial, n, keep, id)
			}
		}
	}
}

// TestADCSelectTopIsArrivalOrderIndependent shuffles the same candidate
// set and checks the selected prefix is the same set every time — the
// property the lifecycle oracle relies on when segment layouts differ.
func TestADCSelectTopIsArrivalOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, keep = 500, 40
	baseD := make([]float32, n)
	baseI := make([]int32, n)
	for i := 0; i < n; i++ {
		baseD[i] = float32(rng.Intn(5))
		baseI[i] = int32(i)
	}
	var want map[int32]bool
	for round := 0; round < 20; round++ {
		d := append([]float32(nil), baseD...)
		ids := append([]int32(nil), baseI...)
		rng.Shuffle(n, func(a, b int) {
			d[a], d[b] = d[b], d[a]
			ids[a], ids[b] = ids[b], ids[a]
		})
		adcSelectTop(d, ids, keep)
		got := make(map[int32]bool, keep)
		for _, id := range ids[:keep] {
			got[id] = true
		}
		if round == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d unique survivors, want %d", round, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("round %d: survivor set changed: id %d missing", round, id)
			}
		}
	}
}
