package query

import (
	"sort"

	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/vecmath"
)

// Prepared carries one query's precomputed retrieval inputs into
// Searcher.Search via Options.Prepared: the per-table packed code and
// flipping costs (the outputs of hash.Hasher.QueryProjection) plus,
// for re-ranked indexes, the query's pre-built ADC rows. A batch
// engine fills one Prepared per query from a BatchPlan so the searcher
// skips the per-query projection matmul and ADC table build — the two
// query-independent-shaped costs a batch can amortize. The costs rows
// are read-only views into the plan (shared across workers); sequences
// copy them into their own scratch.
type Prepared struct {
	// Codes[t] and Costs[t] are the query's code and per-bit flipping
	// costs on table t. Costs[t] == nil marks a table whose hasher has
	// no affine batch projection (SH, KMH); the searcher falls back to
	// the per-query path for that table.
	Codes []uint64
	Costs [][]float64
	// ADCRows, when non-nil, is the query's pre-built stride-256 ADC
	// lookup table (length = quantizer M), sliced out of the plan's
	// arena. The searcher uses it in place of building its own.
	ADCRows [][256]float32
}

// BatchPlan holds the amortized preprocessing of one query batch: per
// hash table, the projections of every query computed with a single
// parallel matmul (vecmath.MulBatch32) instead of nq per-query ones,
// and one arena of nq·M ADC rows for re-ranked indexes, so a batch
// allocates its ADC tables once instead of per query. A plan is
// immutable once built: any number of workers may Fill per-query views
// from it concurrently. Plans are reusable across batches (PlanBatch
// grows buffers in place), so callers pool them.
type BatchPlan struct {
	nq int
	// proj[t] is the nq×m projection matrix of table t with costs
	// already converted in place (absolute values; row i is query i's
	// flipping costs), nil when table t's hasher is not batchable.
	// codes[t][i] is query i's packed code on table t.
	proj  []*vecmath.Mat
	codes [][]uint64
	// adcArena is the batch's ADC row arena: rows [i·m, (i+1)·m) belong
	// to query i. m is the quantizer's subspace count (0 = no reranker).
	adcArena [][256]float32
	m        int
}

// PlanBatch computes the batch-amortizable preprocessing for the
// nq×dim row-major query block (already metric-normalized) against ix:
// one MulBatch32 per batchable table plus the shared ADC arena. The
// per-row accumulation order of MulBatch32 matches the per-query
// projection exactly, so every derived code and cost is bit-for-bit
// identical to hash.Hasher.QueryProjection — batching changes where
// the work happens, never its result. plan is reused when non-nil.
// procs bounds the preprocessing workers (<=0 means GOMAXPROCS).
func PlanBatch(ix *index.Index, queries []float32, nq, procs int, plan *BatchPlan) *BatchPlan {
	if plan == nil {
		plan = &BatchPlan{}
	}
	d := ix.Dim
	nt := len(ix.Tables)
	plan.nq = nq
	if cap(plan.proj) < nt {
		plan.proj = make([]*vecmath.Mat, nt)
		plan.codes = make([][]uint64, nt)
	}
	plan.proj = plan.proj[:nt]
	plan.codes = plan.codes[:nt]
	block := queries[:nq*d]
	for t := 0; t < nt; t++ {
		bp, ok := ix.Tables[t].Hasher.(hash.BatchProjector)
		if !ok {
			plan.proj[t] = nil
			continue
		}
		h, mean := bp.ProjectionMatrix()
		proj := vecmath.MulBatch32(block, nq, d, h, mean, procs)
		codes := grown(plan.codes[t], nq)
		vecmath.ParallelRanges(nq, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				codes[i] = hash.CodeAndCosts(proj.Row(i))
			}
		})
		plan.proj[t], plan.codes[t] = proj, codes
	}
	plan.m = 0
	if q := ix.Quantizer(); q != nil && ix.RerankFactor > 0 {
		m := q.M()
		need := nq * m
		if cap(plan.adcArena) < need {
			plan.adcArena = make([][256]float32, need)
		}
		arena := plan.adcArena[:need]
		rotated := q.Rotated()
		vecmath.ParallelRanges(nq, procs, func(lo, hi int) {
			var rot []float32
			if rotated {
				rot = make([]float32, d)
			}
			for i := lo; i < hi; i++ {
				q.ADCRows(queries[i*d:(i+1)*d], arena[i*m:(i+1)*m:(i+1)*m], rot)
			}
		})
		plan.adcArena = arena
		plan.m = m
	}
	return plan
}

// Fill writes query qi's view of the plan into p (reusing its slices)
// and returns p. Safe for concurrent use with other Fill calls on
// distinct Prepared values.
func (b *BatchPlan) Fill(qi int, p *Prepared) *Prepared {
	if p == nil {
		p = &Prepared{}
	}
	nt := len(b.proj)
	p.Codes = grown(p.Codes, nt)
	p.Costs = grown(p.Costs, nt)
	for t := 0; t < nt; t++ {
		if b.proj[t] == nil {
			p.Codes[t], p.Costs[t] = 0, nil
			continue
		}
		p.Codes[t] = b.codes[t][qi]
		p.Costs[t] = b.proj[t].Row(qi)
	}
	p.ADCRows = nil
	if b.m > 0 {
		p.ADCRows = b.adcArena[qi*b.m : (qi+1)*b.m : (qi+1)*b.m]
	}
	return p
}

// dupScanCap bounds how many distinct representatives Duplicates
// compares one query against inside an equal-code run. Identical
// queries always share a code, so real duplicates sit in short runs;
// the cap only matters for a pathological run of many distinct queries
// colliding on one code, where it degrades detection to best-effort
// (a missed duplicate costs a redundant search, never correctness)
// instead of going quadratic.
const dupScanCap = 64

// Duplicates fills dup (reusing capacity) with, for each query, the
// index of an earlier batch member with byte-identical content, or -1
// for the first occurrence. Coalesced server batches routinely carry
// identical queries — concurrent requests for the same trending item
// are exactly what a coalescing window collects — and identical
// queries have bit-identical results, so the batch engine runs each
// distinct query once and copies the rest. Detection rides on the
// cache-blocked order: identical queries share their table-0 code, so
// candidates sit inside one equal-code run of the sorted order and
// only run members need exact comparison. Without a batchable table 0
// there are no codes to group by and nothing is marked.
func (b *BatchPlan) Duplicates(queries []float32, d int, order []int, dup []int32) []int32 {
	dup = grown(dup, b.nq)
	for i := range dup {
		dup[i] = -1
	}
	if len(b.proj) == 0 || b.proj[0] == nil {
		return dup
	}
	codes := b.codes[0]
	for start := 0; start < len(order); {
		end := start + 1
		for end < len(order) && codes[order[end]] == codes[order[start]] {
			end++
		}
		// The order sorts ties by index, so order[j] < order[i] within a
		// run: dup always points at the smallest identical index, whose
		// own dup entry stays -1 (the representative actually searched).
		for i := start + 1; i < end; i++ {
			qi := order[i]
			scanned := 0
			for j := start; j < i && scanned < dupScanCap; j++ {
				rep := order[j]
				if dup[rep] >= 0 {
					continue
				}
				scanned++
				if equalRow(queries, qi, rep, d) {
					dup[qi] = int32(rep)
					break
				}
			}
		}
		start = end
	}
	return dup
}

// equalRow reports whether rows a and b of the nq×d block are equal as
// float32 values. NaN payloads never compare equal, which only means a
// NaN-carrying query is not deduplicated.
func equalRow(queries []float32, a, b, d int) bool {
	ra, rb := queries[a*d:(a+1)*d], queries[b*d:(b+1)*d]
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// Order fills order (reusing capacity) with the batch's cache-blocked
// processing order: query indexes sorted by their table-0 code, ties
// by index. Co-scheduled neighbors in this order probe overlapping or
// adjacent buckets, so a worker walking a contiguous run of the order
// re-touches the same stretches of the data slab and PQ code column.
// Per-query results are independent of processing order, so scheduling
// by code cannot change any query's output — it is deterministic
// regardless, because the sort key (code, index) is a total order.
// When table 0 is not batchable the identity order is returned.
func (b *BatchPlan) Order(order []int) []int {
	order = grown(order, b.nq)
	for i := range order {
		order[i] = i
	}
	if len(b.proj) == 0 || b.proj[0] == nil {
		return order
	}
	codes := b.codes[0]
	sort.Slice(order, func(a, c int) bool {
		if codes[order[a]] != codes[order[c]] {
			return codes[order[a]] < codes[order[c]]
		}
		return order[a] < order[c]
	})
	return order
}
