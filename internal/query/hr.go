package query

import (
	"math/bits"
	"sort"

	"gqr/internal/index"
)

// HR is Hamming ranking (paper §2.2): compute the Hamming distance from
// c(q) to every non-empty bucket, sort, and probe in order. Sorting uses
// an O(B) counting sort over the m+1 possible distances — the best case
// the paper grants HR — yet the whole O(B) pass still happens before the
// first bucket is probed, which is the "slow start" the generate-to-probe
// methods remove.
type HR struct {
	ix    *index.Index
	codes [][]uint64 // per-table sorted bucket code lists (precomputed)
}

// NewHR builds Hamming ranking over ix.
func NewHR(ix *index.Index) *HR {
	h := &HR{ix: ix, codes: make([][]uint64, len(ix.Tables))}
	for t, tbl := range ix.Tables {
		h.codes[t] = tbl.Codes()
	}
	return h
}

// Name implements Method.
func (*HR) Name() string { return "hr" }

// QDScores implements Method.
func (*HR) QDScores() bool { return false }

// NewSequence implements Method.
func (h *HR) NewSequence(t int, q []float32) ProbeSequence {
	qcode := h.ix.Tables[t].Hasher.Code(q)
	m := h.ix.Tables[t].Hasher.Bits()
	codes := h.codes[t]

	// Counting sort by Hamming distance; ties resolved by the ascending
	// code order of the precomputed list (deterministic, and the
	// arbitrary tie-break the paper describes).
	counts := make([]int, m+2)
	for _, c := range codes {
		counts[bits.OnesCount64(c^qcode)+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	ordered := make([]uint64, len(codes))
	scores := make([]float64, len(codes))
	next := make([]int, m+1)
	copy(next, counts[:m+1])
	for _, c := range codes {
		d := bits.OnesCount64(c ^ qcode)
		ordered[next[d]] = c
		scores[next[d]] = float64(d)
		next[d]++
	}
	return &listSeq{codes: ordered, scores: scores}
}

// listSeq replays a precomputed (code, score) list.
type listSeq struct {
	codes  []uint64
	scores []float64
	pos    int
}

func (s *listSeq) Next() (uint64, float64, bool) {
	if s.pos >= len(s.codes) {
		return 0, 0, false
	}
	c, sc := s.codes[s.pos], s.scores[s.pos]
	s.pos++
	return c, sc, true
}

// QR is QD ranking (Algorithm 1): compute the quantization distance from
// q to every non-empty bucket, sort all buckets by QD, and probe in
// order. Compared with HR the indicator is fine-grained, but the O(B·m)
// scoring plus O(B log B) comparison sort ahead of the first probe is
// the slow-start cost GQR eliminates.
type QR struct {
	ix    *index.Index
	codes [][]uint64
}

// NewQR builds QD ranking over ix.
func NewQR(ix *index.Index) *QR {
	h := &QR{ix: ix, codes: make([][]uint64, len(ix.Tables))}
	for t, tbl := range ix.Tables {
		h.codes[t] = tbl.Codes()
	}
	return h
}

// Name implements Method.
func (*QR) Name() string { return "qr" }

// QDScores implements Method.
func (*QR) QDScores() bool { return true }

// NewSequence implements Method.
func (h *QR) NewSequence(t int, q []float32) ProbeSequence {
	hasher := h.ix.Tables[t].Hasher
	m := hasher.Bits()
	costs := make([]float64, m)
	qcode := hasher.QueryProjection(q, costs)
	codes := h.codes[t]

	ordered := make([]uint64, len(codes))
	scores := make([]float64, len(codes))
	for i, c := range codes {
		ordered[i] = c
		diff := c ^ qcode
		var qd float64
		for diff != 0 {
			b := bits.TrailingZeros64(diff)
			qd += costs[b]
			diff &= diff - 1
		}
		scores[i] = qd
	}
	perm := make([]int, len(codes))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool {
		if scores[perm[a]] != scores[perm[b]] {
			return scores[perm[a]] < scores[perm[b]]
		}
		return ordered[perm[a]] < ordered[perm[b]]
	})
	sortedCodes := make([]uint64, len(codes))
	sortedScores := make([]float64, len(codes))
	for dst, src := range perm {
		sortedCodes[dst] = ordered[src]
		sortedScores[dst] = scores[src]
	}
	return &listSeq{codes: sortedCodes, scores: sortedScores}
}
