package query

import (
	"math/bits"
	"sort"

	"gqr/internal/index"
)

// HR is Hamming ranking (paper §2.2): compute the Hamming distance from
// c(q) to every non-empty bucket, sort, and probe in order. Sorting uses
// an O(B) counting sort over the m+1 possible distances — the best case
// the paper grants HR — yet the whole O(B) pass still happens before the
// first bucket is probed, which is the "slow start" the generate-to-probe
// methods remove.
type HR struct {
	ix    *index.Index
	codes [][]uint64 // per-table sorted bucket code lists (precomputed)
}

// NewHR builds Hamming ranking over ix.
func NewHR(ix *index.Index) *HR {
	h := &HR{ix: ix, codes: make([][]uint64, len(ix.Tables))}
	for t := range ix.Tables {
		h.codes[t] = ix.Codes(t)
	}
	return h
}

// Name implements Method.
func (*HR) Name() string { return "hr" }

// QDScores implements Method.
func (*HR) QDScores() bool { return false }

// NewSequence implements Method.
func (h *HR) NewSequence(t int, q []float32) ProbeSequence {
	return h.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method. A recycled *hrSeq keeps its
// ordered/score lists and counting-sort scratch, so restarting costs
// one O(B) counting-sort pass and no allocations.
func (h *HR) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	return h.startSeq(t, h.ix.Tables[t].Hasher.Code(q), reuse)
}

// NewSequencePrepared implements PreparedMethod: HR needs only the
// query's code, so the precomputed one replaces the Code call and the
// counting sort proceeds unchanged.
func (h *HR) NewSequencePrepared(t int, code uint64, _ []float64, reuse ProbeSequence) ProbeSequence {
	return h.startSeq(t, code, reuse)
}

// startSeq runs HR's counting sort for one query code.
func (h *HR) startSeq(t int, qcode uint64, reuse ProbeSequence) ProbeSequence {
	m := h.ix.Tables[t].Hasher.Bits()
	codes := h.codes[t]
	s, ok := reuse.(*hrSeq)
	if !ok || s == nil {
		s = &hrSeq{}
	}
	s.codes = grown(s.codes, len(codes))
	s.scores = grown(s.scores, len(codes))
	s.counts = grown(s.counts, m+2)
	s.next = grown(s.next, m+1)
	s.pos = 0

	// Counting sort by Hamming distance; ties resolved by the ascending
	// code order of the precomputed list (deterministic, and the
	// arbitrary tie-break the paper describes).
	for i := range s.counts {
		s.counts[i] = 0
	}
	for _, c := range codes {
		s.counts[bits.OnesCount64(c^qcode)+1]++
	}
	for i := 1; i < len(s.counts); i++ {
		s.counts[i] += s.counts[i-1]
	}
	copy(s.next, s.counts[:m+1])
	for _, c := range codes {
		d := bits.OnesCount64(c ^ qcode)
		s.codes[s.next[d]] = c
		s.scores[s.next[d]] = float64(d)
		s.next[d]++
	}
	return s
}

// listSeq replays a precomputed (code, score) list.
type listSeq struct {
	codes  []uint64
	scores []float64
	pos    int
}

func (s *listSeq) Next() (uint64, float64, bool) {
	if s.pos >= len(s.codes) {
		return 0, 0, false
	}
	c, sc := s.codes[s.pos], s.scores[s.pos]
	s.pos++
	return c, sc, true
}

// hrSeq is HR's reusable sequence: the replayed list plus the
// counting-sort scratch that fills it.
type hrSeq struct {
	listSeq
	counts []int
	next   []int
}

// QR is QD ranking (Algorithm 1): compute the quantization distance from
// q to every non-empty bucket, sort all buckets by QD, and probe in
// order. Compared with HR the indicator is fine-grained, but the O(B·m)
// scoring plus O(B log B) comparison sort ahead of the first probe is
// the slow-start cost GQR eliminates.
type QR struct {
	ix    *index.Index
	codes [][]uint64
}

// NewQR builds QD ranking over ix.
func NewQR(ix *index.Index) *QR {
	h := &QR{ix: ix, codes: make([][]uint64, len(ix.Tables))}
	for t := range ix.Tables {
		h.codes[t] = ix.Codes(t)
	}
	return h
}

// Name implements Method.
func (*QR) Name() string { return "qr" }

// QDScores implements Method.
func (*QR) QDScores() bool { return true }

// NewSequence implements Method.
func (h *QR) NewSequence(t int, q []float32) ProbeSequence {
	return h.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method. A recycled *qrSeq keeps the
// (code, score) pair arrays and sorts them in place through its own
// sort.Interface — no permutation slice and no sort.Slice closure, so
// restarting allocates nothing.
func (h *QR) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	hasher := h.ix.Tables[t].Hasher
	s := qrSeqOf(reuse, hasher.Bits(), len(h.codes[t]))
	qcode := hasher.QueryProjection(q, s.costs)
	return h.startSeq(t, qcode, s)
}

// NewSequencePrepared implements PreparedMethod: the precomputed
// (code, costs) pair replaces the QueryProjection call; the QD scoring
// and in-place sort are the shared path.
func (h *QR) NewSequencePrepared(t int, code uint64, costs []float64, reuse ProbeSequence) ProbeSequence {
	s := qrSeqOf(reuse, h.ix.Tables[t].Hasher.Bits(), len(h.codes[t]))
	copy(s.costs, costs)
	return h.startSeq(t, code, s)
}

// qrSeqOf recycles (or allocates) a qrSeq with its buffers grown.
func qrSeqOf(reuse ProbeSequence, m, nb int) *qrSeq {
	s, ok := reuse.(*qrSeq)
	if !ok || s == nil {
		s = &qrSeq{}
	}
	s.costs = grown(s.costs, m)
	s.codes = grown(s.codes, nb)
	s.scores = grown(s.scores, nb)
	s.pos = 0
	return s
}

// startSeq scores every bucket by quantization distance from s.costs
// and sorts the pairs in place.
func (h *QR) startSeq(t int, qcode uint64, s *qrSeq) ProbeSequence {
	codes := h.codes[t]
	for i, c := range codes {
		s.codes[i] = c
		diff := c ^ qcode
		var qd float64
		for diff != 0 {
			b := bits.TrailingZeros64(diff)
			qd += s.costs[b]
			diff &= diff - 1
		}
		s.scores[i] = qd
	}
	// (score, code) is a strict total order — codes are unique — so the
	// in-place unstable sort lands on the same bucket order as the old
	// permutation sort.
	sort.Sort(s)
	return s
}

// qrSeq is QR's reusable sequence: the sorted (code, score) pairs plus
// the per-bit cost scratch. It implements sort.Interface over the pairs
// so restarting never builds a closure or permutation.
type qrSeq struct {
	listSeq
	costs []float64
}

func (s *qrSeq) Len() int { return len(s.codes) }

func (s *qrSeq) Less(i, j int) bool {
	if s.scores[i] != s.scores[j] {
		return s.scores[i] < s.scores[j]
	}
	return s.codes[i] < s.codes[j]
}

func (s *qrSeq) Swap(i, j int) {
	s.codes[i], s.codes[j] = s.codes[j], s.codes[i]
	s.scores[i], s.scores[j] = s.scores[j], s.scores[i]
}
