package query

import (
	"fmt"
	"math"
	"time"

	"gqr/internal/index"
	"gqr/internal/quantization"
	"gqr/internal/trace"
	"gqr/internal/vecmath"
)

// Options controls one Search call.
type Options struct {
	// K is the number of nearest neighbors to return.
	K int
	// MaxCandidates is N of Algorithms 1-2: stop once this many
	// distinct items have been collected for evaluation. Zero means no
	// candidate budget.
	MaxCandidates int
	// MaxBuckets stops after this many buckets have been generated
	// (probed or found empty). Zero means no bucket budget.
	MaxBuckets int
	// EarlyStop enables the paper's §4.1 termination rule for QD
	// methods: once the k-th candidate distance d_k satisfies
	// µ·QD ≥ d_k for the next bucket, no unseen bucket can improve the
	// result, so probing stops. Ignored for Hamming-score methods.
	EarlyStop bool
	// Mu is the Theorem 2 scale µ = 1/(σ_max(H)·√m) used by EarlyStop
	// and Radius. Zero disables both rules.
	Mu float64
	// Radius, when positive, turns the search into a bounded-radius
	// query (§4.1's first stopping criterion): only items within this
	// Euclidean distance are returned, and for QD methods probing
	// stops once µ·QD of the next bucket reaches the radius — no
	// bucket beyond that point can contain an in-radius item.
	Radius float64
	// Profile enables per-stage timing (Stats.RetrievalTime /
	// Stats.EvaluationTime) at the cost of a few clock reads per
	// probed bucket. The paper's §2.2 frames querying as retrieval +
	// evaluation; the split shows where each method spends its budget.
	Profile bool
	// Trace, when non-nil, records one span per stage occurrence into
	// the flight-recorder trace (probe-sequence generation, per-table
	// probing, candidate gather, batched evaluation, heap finalize),
	// annotated with per-span work counters. A non-nil Trace implies
	// the Profile clock discipline: both views are derived from the
	// same stage boundaries, so SearchStats timing and trace spans
	// always tell one story.
	Trace *trace.Trace
	// TagMask, when nonzero, keeps only items whose metadata word has
	// every mask bit set (meta & TagMask == TagMask) — the tag fast
	// path, evaluated as one AND per candidate inside the gather loop.
	TagMask uint64
	// Filter, when non-nil, keeps only items it reports true for. It
	// runs inside the gather loop after the tombstone and tag-mask
	// tests, so rejected items never reach the distance kernel.
	Filter func(id int32, meta uint64) bool
	// Prepared, when non-nil, supplies this query's batch-precomputed
	// retrieval inputs (per-table codes and flipping costs, pre-built
	// ADC rows). The searcher consumes them in place of its own
	// per-query projection and ADC build; tables whose Costs entry is
	// nil fall back to the per-query path. Results are bit-identical
	// either way — NewSequencePrepared is behaviorally identical to
	// NewSequenceReuse, and the prepared ADC rows hold the same values
	// Reranker.ADCRows would produce.
	Prepared *Prepared
}

// Stats reports the work one Search performed.
type Stats struct {
	// BucketsGenerated counts sequence emissions, including codes that
	// hashed to empty buckets (GHR/GQR generate such codes; HR/QR/MIH
	// never do).
	BucketsGenerated int
	// BucketsProbed counts non-empty buckets evaluated.
	BucketsProbed int
	// Candidates counts distinct items evaluated (the paper's
	// "# retrieved items", Figure 8). An item counts as evaluated even
	// when the early-abandon kernel cut its distance computation short —
	// the retrieval work that surfaced it was spent either way.
	Candidates int
	// EarlyAbandoned counts candidates whose distance computation was
	// cut short because a partial sum already exceeded the k-th-best
	// distance. These items can never enter the result; the counter
	// shows how much evaluation work the bounded kernel saved.
	EarlyAbandoned int
	// Filtered counts gathered ids dropped before evaluation —
	// tombstoned items plus items rejected by TagMask or Filter. These
	// do NOT count as Candidates: they cost a bitmap test (and possibly
	// a predicate call), never a distance computation.
	Filtered int
	// ADCScored counts candidates scored by the re-ranking stage's ADC
	// table; Reranked counts the survivors it handed to exact
	// evaluation. Both zero when the bound view has no quantizer.
	ADCScored int
	Reranked  int
	// EarlyStopped reports whether the QD lower-bound rule fired.
	EarlyStopped bool
	// RetrievalTime and EvaluationTime split the query time between
	// deciding which buckets to probe and computing exact distances.
	// Both are derived from the same stage clock the flight recorder
	// uses: RetrievalTime = sequence init + probing (sequence
	// advances, merged best-first scan, bucket lookups, empty
	// buckets), EvaluationTime = candidate gather + ADC re-ranking +
	// batched evaluation. Populated when Options.Profile is set or a
	// Trace is attached.
	RetrievalTime  time.Duration
	EvaluationTime time.Duration
}

// Result is the outcome of one Search: ids and exact distances in
// ascending distance order, plus work stats.
type Result struct {
	IDs   []int32
	Dists []float64
	Stats Stats
}

// Searcher executes queries against an index with a fixed querying
// method. It owns all per-query scratch — the visited-epoch array, the
// Qbuf preprocessing buffer, the per-table sequence states (whose
// sequences the methods recycle via NewSequenceReuse), the top-k heap
// and the candidate gather buffer — so a steady-state Search allocates
// nothing beyond the two returned result slices. The flip side: a
// Searcher is not safe for concurrent use; keep one per goroutine.
// Searchers are cheap to pool: binding one to an immutable index
// snapshot (index.Index.Snapshot) makes every search lock-free, which
// is how the public API runs concurrent queries — a sync.Pool of
// Searchers per published snapshot.
type Searcher struct {
	ix      *index.Index
	method  Method
	pm      PreparedMethod // method's prepared-start hook, nil if unsupported
	visited []uint32
	epoch   uint32
	qbuf    []float32

	// quant/codes/factor are the bound view's serving quantizer state
	// (nil/0 when the index was built without WithReranking): the
	// shared id-aligned code slab and the heap-widening factor. The
	// ADC table, its rotation scratch, the widened heap and the
	// survivor buffer are per-searcher scratch, so a warmed re-ranked
	// search allocates nothing extra.
	quant   *quantization.Reranker
	codes   []uint8
	factor  int
	adcRows [][256]float32
	rotQ    []float32
	rtop    topK
	surv    []int32
	// Flat ADC collection (the default rerank path when early-stop is
	// off): scored (distance, id) pairs land in these parallel arrays
	// and one deterministic quickselect at drain keeps the best
	// `keep` = factor·k — O(candidates) total instead of a heap's
	// O(candidates·log(factor·k)) sift traffic, which is what made the
	// widened heap's cost grow superlinearly in the factor.
	adcDists []float32
	adcIDs   []int32
	keep     int
	flatADC  bool

	// tombs is the bound view's tombstone bitmap, cached at
	// construction and only when the view still has dead ids in its
	// posting lists (pending > 0) — once every tombstone is purged by a
	// seal or merge, searches skip even the per-bucket branch. meta is
	// the view's metadata slab (nil when no item carries a word).
	tombs []uint64
	meta  []uint64

	// Reusable per-query scratch (sized on first use, recycled after):
	// the merged probe-sequence states, the bounded top-k heap, the
	// gather buffer of the batched evaluation stage, and the stage
	// clock shared by profiling and flight-recorder tracing.
	states []tableState
	top    topK
	cand   []int32
	ref    index.BucketRef
	clock  stageClock
}

// stageClock is the single timing discipline of the pipeline: each
// tick reads the clock once, closing the interval since the previous
// tick as one stage span. Profiling (Stats.RetrievalTime /
// EvaluationTime) and flight-recorder traces both consume its
// boundaries, so there is no second timing codepath. When off, the
// pipeline pays one predictable branch per boundary and no clock
// reads; call sites must guard `if clk.on` so the Work annotations are
// not even computed on the disabled path.
type stageClock struct {
	on   bool
	tr   *trace.Trace // nil when only profiling
	mark time.Time
	dur  [trace.NumStages]time.Duration
}

// reset re-arms the clock for one search.
func (c *stageClock) reset(tr *trace.Trace, on bool) {
	c.tr = tr
	c.on = on
	c.dur = [trace.NumStages]time.Duration{}
	if on {
		c.mark = time.Now()
	}
}

// tick closes the interval since the previous tick as one span of the
// given stage. Callers must check c.on first.
func (c *stageClock) tick(stage trace.Stage, table int32, w trace.Work) {
	now := time.Now()
	c.dur[stage] += now.Sub(c.mark)
	c.tr.Record(stage, table, c.mark, now, w) // nil-safe
	c.mark = now
}

// tableState is one table's position in the merged best-score-first
// probe. The sequence pointer persists across queries so the method can
// recycle its buffers (NewSequenceReuse).
type tableState struct {
	seq   ProbeSequence
	code  uint64
	score float64
	alive bool
}

// NewSearcher binds a querying method to an index. The index must not
// be mutated while the Searcher is in use; bind to a snapshot when
// writers are live.
func NewSearcher(ix *index.Index, method Method) *Searcher {
	s := &Searcher{ix: ix, method: method, visited: make([]uint32, ix.N)}
	s.pm, _ = method.(PreparedMethod)
	if ix.PendingTombstones() > 0 {
		s.tombs = ix.TombWords()
	}
	s.meta = ix.MetaSlab()
	if q := ix.Quantizer(); q != nil && ix.RerankFactor > 0 {
		s.quant, s.codes, s.factor = q, ix.CodesSlab(), ix.RerankFactor
		if q.Rotated() {
			s.rotQ = make([]float32, ix.Dim)
		}
	}
	return s
}

// Method returns the bound querying method.
func (s *Searcher) Method() Method { return s.method }

// Qbuf returns a dim-sized scratch buffer for query preprocessing
// (metric normalization). It is part of the Searcher's poolable
// per-goroutine scratch: reusing it keeps pooled searches
// allocation-free on the hot path.
func (s *Searcher) Qbuf() []float32 {
	if len(s.qbuf) != s.ix.Dim {
		s.qbuf = make([]float32, s.ix.Dim)
	}
	return s.qbuf
}

// Search runs the full querying pipeline of §2.2 for one query:
// retrieval (probe sequence over every table, merged best-score-first)
// and evaluation (exact distances of candidate items, bounded max-heap
// of size K). It returns the approximate k-nearest neighbors in
// ascending distance order.
func (s *Searcher) Search(q []float32, opt Options) (Result, error) {
	if opt.K <= 0 {
		return Result{}, fmt.Errorf("query: K must be positive, got %d", opt.K)
	}
	if len(q) != s.ix.Dim {
		return Result{}, fmt.Errorf("query: query dim %d != index dim %d", len(q), s.ix.Dim)
	}
	s.epoch++
	if s.epoch == 0 { // wrapped; clear and restart
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	if len(s.visited) < s.ix.N { // items were added since construction
		grown := make([]uint32, s.ix.N)
		copy(grown, s.visited)
		s.visited = grown
	}

	// One probe sequence per table, merged by current score: always
	// advance the table whose next bucket has the smallest score. With
	// one table this is a direct pass-through. States and sequences are
	// Searcher scratch: slot t always holds table t's sequence, so the
	// method recycles the right buffers.
	var st Stats
	clk := &s.clock
	clk.reset(opt.Trace, opt.Profile || opt.Trace != nil)
	if len(s.states) != len(s.ix.Tables) {
		s.states = make([]tableState, len(s.ix.Tables))
	}
	states := s.states
	prep := opt.Prepared
	for t := range states {
		if prep != nil && s.pm != nil && t < len(prep.Costs) && prep.Costs[t] != nil {
			states[t].seq = s.pm.NewSequencePrepared(t, prep.Codes[t], prep.Costs[t], states[t].seq)
		} else {
			states[t].seq = s.method.NewSequenceReuse(t, q, states[t].seq)
		}
		states[t].code, states[t].score, states[t].alive = states[t].seq.Next()
	}
	if clk.on {
		clk.tick(trace.StageSequence, -1, trace.Work{})
	}
	top := &s.top
	top.Reset(opt.K)
	// Quantized re-ranking: build the query's ADC lookup table once (M·K
	// float32s, cache-resident for the whole probe loop) and widen the
	// collection heap to factor·k. Candidates are then scored by M table
	// lookups each during probing; only the heap's survivors get an exact
	// distance after the loop.
	rerank := s.quant != nil
	useEarlyStop := opt.EarlyStop && opt.Mu > 0 && s.method.QDScores()
	probeTop := top
	s.flatADC = false
	// Prepared ADC rows replace the per-query table build; the
	// searcher's own scratch is saved and restored so the batch arena
	// never leaks into pooled per-searcher state (pooled searchers are
	// shared with the single-query path).
	var savedADC [][256]float32
	usePrepADC := false
	if rerank {
		if prep != nil && len(prep.ADCRows) == s.quant.M() {
			savedADC, s.adcRows, usePrepADC = s.adcRows, prep.ADCRows, true
		} else {
			s.adcRows = s.quant.ADCRows(q, s.adcRows, s.rotQ)
		}
		s.keep = s.factor * opt.K
		// Early-stop needs a running factor·k-th best for its µ·QD rule,
		// so that path keeps the widened heap; everything else collects
		// flat and selects once at drain.
		if useEarlyStop {
			s.rtop.Reset(s.keep)
			probeTop = &s.rtop
		} else {
			s.flatADC = true
			s.adcDists, s.adcIDs = s.adcDists[:0], s.adcIDs[:0]
		}
		if clk.on {
			clk.tick(trace.StageRerank, -1, trace.Work{})
		}
	}
	// Work deltas since the last probe/evaluate span (traced path only).
	lastGen, lastAband := 0, 0

	for {
		// Pick the live table with the smallest score (ties: lowest
		// table id). Table counts are ≤ 30 in all experiments, so a
		// linear scan beats a heap.
		best := -1
		for t := range states {
			if !states[t].alive {
				continue
			}
			if best < 0 || states[t].score < states[best].score {
				best = t
			}
		}
		if best < 0 {
			break // every sequence exhausted: the whole space was probed
		}

		if useEarlyStop || (opt.Radius > 0 && opt.Mu > 0 && s.method.QDScores()) {
			// µ·QD lower-bounds the true distance of every item in any
			// bucket with this or a larger QD (Theorem 2); distances
			// here are squared, so compare against the squared bound.
			// Under re-ranking the live heap holds ADC distances, so the
			// rule compares the bound against the quantized k-th best —
			// an approximation of the exact rule, consistent with the
			// stage's approximate candidate selection.
			bound := opt.Mu * states[best].score
			if useEarlyStop && probeTop.Full() && bound*bound >= probeTop.Worst() {
				st.EarlyStopped = true
				break
			}
			if opt.Radius > 0 && bound >= opt.Radius {
				st.EarlyStopped = true
				break
			}
		}

		code := states[best].code
		st.BucketsGenerated++
		// Slot-handle probe into the LSM storage: the bucket arrives as
		// one flat id slice per frozen segment plus the memtable slice,
		// written into the searcher's reusable scratch ref — no map
		// lookup and no allocation on this path.
		s.ix.Probe(best, code, &s.ref)
		if s.ref.Len() > 0 {
			st.BucketsProbed++
			if clk.on {
				// The probe span covers everything since the previous
				// boundary: sequence advances, the merged best-first
				// scan, empty-bucket emissions and this bucket lookup.
				clk.tick(trace.StageProbe, int32(best), trace.Work{
					Buckets: int32(st.BucketsGenerated - lastGen), Probed: 1,
				})
				lastGen = st.BucketsGenerated
			}
			// Gather-then-evaluate: first filter every tier against the
			// visited epochs into the scratch buffer, then run the
			// distance kernel over the batch. Separating the phases keeps
			// the visited bookkeeping out of the evaluation loop, which
			// then streams candidate rows from the contiguous data slab.
			// The gather loop is the lifecycle interception point: when
			// the view carries pending tombstones or the query a filter,
			// the filtering variant drops those ids here — a bitmap test
			// or predicate call each, never a distance computation. The
			// plain loops below are the unfiltered fast path, untouched.
			var cand []int32
			filteredBefore := st.Filtered
			if s.tombs != nil || opt.TagMask != 0 || opt.Filter != nil {
				cand = s.gatherFiltered(&opt, &st)
			} else {
				cand = s.cand[:0]
				for _, seg := range s.ref.Segs {
					for _, id := range seg {
						if s.visited[id] != s.epoch {
							s.visited[id] = s.epoch
							cand = append(cand, id)
						}
					}
				}
				for _, id := range s.ref.Tail {
					if s.visited[id] != s.epoch {
						s.visited[id] = s.epoch
						cand = append(cand, id)
					}
				}
			}
			s.cand = cand
			st.Candidates += len(cand)
			if clk.on {
				clk.tick(trace.StageGather, int32(best), trace.Work{
					Candidates: int32(len(cand)),
					Filtered:   int32(st.Filtered - filteredBefore),
				})
			}
			if rerank {
				if s.flatADC {
					s.adcCollectBatch(cand, &st)
				} else {
					s.adcScoreBatch(cand, &st)
				}
				if clk.on {
					clk.tick(trace.StageRerank, int32(best), trace.Work{
						ADCScored: int32(len(cand)),
					})
				}
			} else {
				s.evaluateBatch(q, cand, &st)
				if clk.on {
					clk.tick(trace.StageEvaluate, int32(best), trace.Work{
						Abandoned: int32(st.EarlyAbandoned - lastAband),
					})
					lastAband = st.EarlyAbandoned
				}
			}
		}

		if opt.MaxCandidates > 0 && st.Candidates >= opt.MaxCandidates {
			break
		}
		if opt.MaxBuckets > 0 && st.BucketsGenerated >= opt.MaxBuckets {
			break
		}
		states[best].code, states[best].score, states[best].alive = states[best].seq.Next()
	}
	if clk.on {
		// Loop-exit remainder: trailing sequence advances, scans and
		// empty buckets since the last boundary belong to probing.
		clk.tick(trace.StageProbe, -1, trace.Work{
			Buckets: int32(st.BucketsGenerated - lastGen),
		})
	}
	if rerank {
		// Exact evaluation runs once, over the re-ranking survivors —
		// at most factor·k items regardless of how many candidates the
		// probe loop gathered.
		var surv []int32
		if s.flatADC {
			if len(s.adcIDs) > s.keep {
				adcSelectTop(s.adcDists, s.adcIDs, s.keep)
				s.adcDists, s.adcIDs = s.adcDists[:s.keep], s.adcIDs[:s.keep]
			}
			surv = s.adcIDs
			if clk.on {
				// The selection belongs to the rerank stage, not to the
				// exact evaluation that follows.
				clk.tick(trace.StageRerank, -1, trace.Work{})
			}
		} else {
			s.surv = s.rtop.AppendIDs(s.surv[:0])
			surv = s.surv
		}
		st.Reranked = len(surv)
		s.evaluateBatch(q, surv, &st)
		if clk.on {
			clk.tick(trace.StageEvaluate, -1, trace.Work{
				Candidates: int32(len(surv)),
				Abandoned:  int32(st.EarlyAbandoned - lastAband),
			})
		}
	}

	if usePrepADC {
		s.adcRows = savedADC
	}

	ids, dists := top.Sorted()
	for i := range dists {
		dists[i] = math.Sqrt(dists[i])
	}
	// (ids and dists are the only per-search allocations on the warmed
	// path; everything else above is Searcher scratch.)
	if opt.Radius > 0 {
		// Keep only in-radius items (the heap may hold farther ones).
		cut := len(dists)
		for i, d := range dists {
			if d > opt.Radius {
				cut = i
				break
			}
		}
		ids, dists = ids[:cut], dists[:cut]
	}
	if clk.on {
		clk.tick(trace.StageFinalize, -1, trace.Work{})
		st.RetrievalTime = clk.dur[trace.StageSequence] + clk.dur[trace.StageProbe]
		st.EvaluationTime = clk.dur[trace.StageGather] + clk.dur[trace.StageRerank] + clk.dur[trace.StageEvaluate]
	}
	return Result{IDs: ids, Dists: dists, Stats: st}, nil
}

// gatherFiltered is the filtering variant of the gather loop: it walks
// the probed bucket's tiers like the fast path but drops tombstoned ids
// (bitmap test) and, when the query carries a TagMask or Filter, items
// whose metadata word fails them. Dropped ids are still marked visited
// — re-testing them in another bucket would be wasted work — and are
// counted in Stats.Filtered, not Candidates.
func (s *Searcher) gatherFiltered(opt *Options, st *Stats) []int32 {
	cand := s.cand[:0]
	keep := func(id int32) bool {
		if w := int(id) >> 6; w < len(s.tombs) && s.tombs[w]&(1<<(uint(id)&63)) != 0 {
			return false
		}
		var meta uint64
		if s.meta != nil {
			meta = s.meta[id]
		}
		if opt.TagMask != 0 && meta&opt.TagMask != opt.TagMask {
			return false
		}
		if opt.Filter != nil && !opt.Filter(id, meta) {
			return false
		}
		return true
	}
	for _, seg := range s.ref.Segs {
		for _, id := range seg {
			if s.visited[id] != s.epoch {
				s.visited[id] = s.epoch
				if keep(id) {
					cand = append(cand, id)
				} else {
					st.Filtered++
				}
			}
		}
	}
	for _, id := range s.ref.Tail {
		if s.visited[id] != s.epoch {
			s.visited[id] = s.epoch
			if keep(id) {
				cand = append(cand, id)
			} else {
				st.Filtered++
			}
		}
	}
	return cand
}

// adcScoreBatch runs the re-ranking stage over one gathered candidate
// batch: each id costs M table lookups into the query's ADC table (no
// vector row is touched — the whole batch reads the byte-code slab and
// an ~M·K·4-byte table, both cache-resident), and the quantized
// distance competes for a slot in the widened rerank heap.
func (s *Searcher) adcScoreBatch(ids []int32, st *Stats) {
	m := s.quant.M()
	rows, codes, rtop := s.adcRows, s.codes, &s.rtop
	// Track the heap's worst locally: once full, most candidates lose on
	// one float compare and never pay the Offer call.
	bound := math.Inf(1)
	if rtop.Full() {
		bound = rtop.Worst()
	}
	if m == 8 && len(rows) == 8 {
		// The default shape gets a fully unrolled loop over fixed-size
		// array views: every bounds check is either hoisted into the two
		// conversions or eliminated (a byte can't index past a [256]
		// row), and the pairwise float32 sums pipeline independently.
		r := (*[8][256]float32)(rows)
		for _, id := range ids {
			off := int(id) * 8
			c := (*[8]uint8)(codes[off : off+8])
			d := float64((r[0][c[0]] + r[1][c[1]] + r[2][c[2]] + r[3][c[3]]) +
				(r[4][c[4]] + r[5][c[5]] + r[6][c[6]] + r[7][c[7]]))
			if d > bound {
				continue
			}
			if rtop.Offer(d, id) && rtop.Full() {
				bound = rtop.Worst()
			}
		}
		st.ADCScored += len(ids)
		return
	}
	if m == 16 && len(rows) == 16 {
		// Same array-view trick for the high-fidelity shape: sixteen
		// check-free lookups in four independent 4-wide chains.
		r := (*[16][256]float32)(rows)
		for _, id := range ids {
			off := int(id) * 16
			c := (*[16]uint8)(codes[off : off+16])
			d := float64(((r[0][c[0]] + r[1][c[1]] + r[2][c[2]] + r[3][c[3]]) +
				(r[4][c[4]] + r[5][c[5]] + r[6][c[6]] + r[7][c[7]])) +
				((r[8][c[8]] + r[9][c[9]] + r[10][c[10]] + r[11][c[11]]) +
					(r[12][c[12]] + r[13][c[13]] + r[14][c[14]] + r[15][c[15]])))
			if d > bound {
				continue
			}
			if rtop.Offer(d, id) && rtop.Full() {
				bound = rtop.Worst()
			}
		}
		st.ADCScored += len(ids)
		return
	}
	for _, id := range ids {
		off := int(id) * m
		code := codes[off : off+m : off+m]
		var d0, d1 float32
		sub := 0
		for ; sub+2 <= m; sub += 2 {
			d0 += rows[sub][code[sub]]
			d1 += rows[sub+1][code[sub+1]]
		}
		if sub < m {
			d0 += rows[sub][code[sub]]
		}
		d := float64(d0) + float64(d1)
		if d > bound {
			continue
		}
		if rtop.Offer(d, id) && rtop.Full() {
			bound = rtop.Worst()
		}
	}
	st.ADCScored += len(ids)
}

// adcCollectBatch is the flat counterpart of adcScoreBatch: quantized
// distances are appended to the (dists, ids) scratch arrays with no
// per-candidate heap work; one quickselect at drain (adcSelectTop)
// keeps the best factor·k. For unbounded-budget searches the buffer is
// folded back down to the running top-keep whenever it outgrows a few
// multiples of keep — selection retains every candidate that could
// still survive, so compaction never changes the final set, it only
// bounds memory.
func (s *Searcher) adcCollectBatch(ids []int32, st *Stats) {
	m := s.quant.M()
	rows, codes := s.adcRows, s.codes
	// Pre-grow the output arrays once per batch: the scoring loops then
	// store by index (one bounds check the compiler can hoist) instead
	// of paying two append capacity checks per candidate.
	dd, di := s.adcDists, s.adcIDs
	base := len(dd)
	need := base + len(ids)
	if cap(dd) < need {
		grown := make([]float32, base, need+need/2)
		copy(grown, dd)
		dd = grown
	}
	dd = dd[:need]
	di = append(di, ids...)
	out := dd[base:need:need]
	switch {
	case m == 8 && len(rows) == 8:
		r := (*[8][256]float32)(rows)
		for i, id := range ids {
			off := int(id) * 8
			c := (*[8]uint8)(codes[off : off+8])
			out[i] = (r[0][c[0]] + r[1][c[1]] + r[2][c[2]] + r[3][c[3]]) +
				(r[4][c[4]] + r[5][c[5]] + r[6][c[6]] + r[7][c[7]])
		}
	case m == 16 && len(rows) == 16:
		r := (*[16][256]float32)(rows)
		for i, id := range ids {
			off := int(id) * 16
			c := (*[16]uint8)(codes[off : off+16])
			out[i] = ((r[0][c[0]] + r[1][c[1]] + r[2][c[2]] + r[3][c[3]]) +
				(r[4][c[4]] + r[5][c[5]] + r[6][c[6]] + r[7][c[7]])) +
				((r[8][c[8]] + r[9][c[9]] + r[10][c[10]] + r[11][c[11]]) +
					(r[12][c[12]] + r[13][c[13]] + r[14][c[14]] + r[15][c[15]]))
		}
	default:
		for i, id := range ids {
			off := int(id) * m
			code := codes[off : off+m : off+m]
			var d0, d1 float32
			sub := 0
			for ; sub+2 <= m; sub += 2 {
				d0 += rows[sub][code[sub]]
				d1 += rows[sub+1][code[sub+1]]
			}
			if sub < m {
				d0 += rows[sub][code[sub]]
			}
			out[i] = d0 + d1
		}
	}
	st.ADCScored += len(ids)
	lim := s.keep * 4
	if lim < 4096 {
		lim = 4096
	}
	if len(di) > lim {
		adcSelectTop(dd, di, s.keep)
		dd, di = dd[:s.keep], di[:s.keep]
	}
	s.adcDists, s.adcIDs = dd, di
}

// evaluateBatch runs the evaluation stage over one gathered candidate
// batch: exact squared distances against the top-k heap, four candidate
// rows per step over the contiguous data slab. The live k-th-best
// distance is threaded into the bounded kernel as the abandon bound, so
// once the heap is full most candidates stop after one or two 16-dim
// blocks instead of finishing their distance.
//
// Early abandonment cannot change the result: the kernel only reports
// a value above the bound when the true distance provably exceeds the
// current k-th best (see vecmath.SquaredL2Bounded), and such a
// candidate could never enter the heap — an exact tie with the k-th
// best runs to completion and is still decided by the heap's id
// tie-break.
func (s *Searcher) evaluateBatch(q []float32, ids []int32, st *Stats) {
	data, dim := s.ix.Data, s.ix.Dim
	top := &s.top
	bound := math.Inf(1)
	if top.Full() {
		bound = top.Worst()
	}
	i := 0
	for ; i+4 <= len(ids); i += 4 {
		// Resolve the four rows up front: the id indirections issue
		// early and the distance loops then stream from four known
		// offsets of one slab.
		r0 := int(ids[i]) * dim
		r1 := int(ids[i+1]) * dim
		r2 := int(ids[i+2]) * dim
		r3 := int(ids[i+3]) * dim
		v0 := data[r0 : r0+dim : r0+dim]
		v1 := data[r1 : r1+dim : r1+dim]
		v2 := data[r2 : r2+dim : r2+dim]
		v3 := data[r3 : r3+dim : r3+dim]
		if d := vecmath.SquaredL2Bounded(q, v0, bound); d > bound {
			st.EarlyAbandoned++
		} else if top.Offer(d, ids[i]) && top.Full() {
			bound = top.Worst()
		}
		if d := vecmath.SquaredL2Bounded(q, v1, bound); d > bound {
			st.EarlyAbandoned++
		} else if top.Offer(d, ids[i+1]) && top.Full() {
			bound = top.Worst()
		}
		if d := vecmath.SquaredL2Bounded(q, v2, bound); d > bound {
			st.EarlyAbandoned++
		} else if top.Offer(d, ids[i+2]) && top.Full() {
			bound = top.Worst()
		}
		if d := vecmath.SquaredL2Bounded(q, v3, bound); d > bound {
			st.EarlyAbandoned++
		} else if top.Offer(d, ids[i+3]) && top.Full() {
			bound = top.Worst()
		}
	}
	for ; i < len(ids); i++ {
		r := int(ids[i]) * dim
		v := data[r : r+dim : r+dim]
		if d := vecmath.SquaredL2Bounded(q, v, bound); d > bound {
			st.EarlyAbandoned++
		} else if top.Offer(d, ids[i]) && top.Full() {
			bound = top.Worst()
		}
	}
}
