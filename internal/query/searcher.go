package query

import (
	"fmt"
	"math"
	"time"

	"gqr/internal/index"
	"gqr/internal/vecmath"
)

// Options controls one Search call.
type Options struct {
	// K is the number of nearest neighbors to return.
	K int
	// MaxCandidates is N of Algorithms 1-2: stop once this many
	// distinct items have been collected for evaluation. Zero means no
	// candidate budget.
	MaxCandidates int
	// MaxBuckets stops after this many buckets have been generated
	// (probed or found empty). Zero means no bucket budget.
	MaxBuckets int
	// EarlyStop enables the paper's §4.1 termination rule for QD
	// methods: once the k-th candidate distance d_k satisfies
	// µ·QD ≥ d_k for the next bucket, no unseen bucket can improve the
	// result, so probing stops. Ignored for Hamming-score methods.
	EarlyStop bool
	// Mu is the Theorem 2 scale µ = 1/(σ_max(H)·√m) used by EarlyStop
	// and Radius. Zero disables both rules.
	Mu float64
	// Radius, when positive, turns the search into a bounded-radius
	// query (§4.1's first stopping criterion): only items within this
	// Euclidean distance are returned, and for QD methods probing
	// stops once µ·QD of the next bucket reaches the radius — no
	// bucket beyond that point can contain an in-radius item.
	Radius float64
	// Profile enables per-stage timing (Stats.RetrievalTime /
	// Stats.EvaluationTime) at the cost of two clock reads per bucket.
	// The paper's §2.2 frames querying as retrieval + evaluation; the
	// split shows where each method spends its budget.
	Profile bool
}

// Stats reports the work one Search performed.
type Stats struct {
	// BucketsGenerated counts sequence emissions, including codes that
	// hashed to empty buckets (GHR/GQR generate such codes; HR/QR/MIH
	// never do).
	BucketsGenerated int
	// BucketsProbed counts non-empty buckets evaluated.
	BucketsProbed int
	// Candidates counts distinct items whose exact distance was
	// computed (the paper's "# retrieved items", Figure 8).
	Candidates int
	// EarlyStopped reports whether the QD lower-bound rule fired.
	EarlyStopped bool
	// RetrievalTime and EvaluationTime split the query time between
	// deciding which buckets to probe and computing exact distances.
	// Only populated when Options.Profile is set.
	RetrievalTime  time.Duration
	EvaluationTime time.Duration
}

// Result is the outcome of one Search: ids and exact distances in
// ascending distance order, plus work stats.
type Result struct {
	IDs   []int32
	Dists []float64
	Stats Stats
}

// Searcher executes queries against an index with a fixed querying
// method. It reuses per-query scratch (the visited-epoch array and the
// Qbuf preprocessing buffer), so a Searcher is not safe for concurrent
// use; keep one per goroutine. Searchers are cheap to pool: binding one
// to an immutable index snapshot (index.Index.Snapshot) makes every
// search lock-free, which is how the public API runs concurrent
// queries — a sync.Pool of Searchers per published snapshot.
type Searcher struct {
	ix      *index.Index
	method  Method
	visited []uint32
	epoch   uint32
	qbuf    []float32
}

// NewSearcher binds a querying method to an index. The index must not
// be mutated while the Searcher is in use; bind to a snapshot when
// writers are live.
func NewSearcher(ix *index.Index, method Method) *Searcher {
	return &Searcher{ix: ix, method: method, visited: make([]uint32, ix.N)}
}

// Method returns the bound querying method.
func (s *Searcher) Method() Method { return s.method }

// Qbuf returns a dim-sized scratch buffer for query preprocessing
// (metric normalization). It is part of the Searcher's poolable
// per-goroutine scratch: reusing it keeps pooled searches
// allocation-free on the hot path.
func (s *Searcher) Qbuf() []float32 {
	if len(s.qbuf) != s.ix.Dim {
		s.qbuf = make([]float32, s.ix.Dim)
	}
	return s.qbuf
}

// Search runs the full querying pipeline of §2.2 for one query:
// retrieval (probe sequence over every table, merged best-score-first)
// and evaluation (exact distances of candidate items, bounded max-heap
// of size K). It returns the approximate k-nearest neighbors in
// ascending distance order.
func (s *Searcher) Search(q []float32, opt Options) (Result, error) {
	if opt.K <= 0 {
		return Result{}, fmt.Errorf("query: K must be positive, got %d", opt.K)
	}
	if len(q) != s.ix.Dim {
		return Result{}, fmt.Errorf("query: query dim %d != index dim %d", len(q), s.ix.Dim)
	}
	s.epoch++
	if s.epoch == 0 { // wrapped; clear and restart
		for i := range s.visited {
			s.visited[i] = 0
		}
		s.epoch = 1
	}
	if len(s.visited) < s.ix.N { // items were added since construction
		grown := make([]uint32, s.ix.N)
		copy(grown, s.visited)
		s.visited = grown
	}

	// One probe sequence per table, merged by current score: always
	// advance the table whose next bucket has the smallest score. With
	// one table this is a direct pass-through.
	type tableState struct {
		seq   ProbeSequence
		code  uint64
		score float64
		alive bool
	}
	var st Stats
	var mark time.Time
	if opt.Profile {
		mark = time.Now()
	}
	states := make([]tableState, len(s.ix.Tables))
	for t := range states {
		states[t].seq = s.method.NewSequence(t, q)
		states[t].code, states[t].score, states[t].alive = states[t].seq.Next()
	}
	if opt.Profile {
		st.RetrievalTime += time.Since(mark)
	}
	top := newTopK(opt.K)
	useEarlyStop := opt.EarlyStop && opt.Mu > 0 && s.method.QDScores()

	for {
		// Pick the live table with the smallest score (ties: lowest
		// table id). Table counts are ≤ 30 in all experiments, so a
		// linear scan beats a heap.
		best := -1
		for t := range states {
			if !states[t].alive {
				continue
			}
			if best < 0 || states[t].score < states[best].score {
				best = t
			}
		}
		if best < 0 {
			break // every sequence exhausted: the whole space was probed
		}

		if useEarlyStop || (opt.Radius > 0 && opt.Mu > 0 && s.method.QDScores()) {
			// µ·QD lower-bounds the true distance of every item in any
			// bucket with this or a larger QD (Theorem 2); distances
			// here are squared, so compare against the squared bound.
			bound := opt.Mu * states[best].score
			if useEarlyStop && top.Full() && bound*bound >= top.Worst() {
				st.EarlyStopped = true
				break
			}
			if opt.Radius > 0 && bound >= opt.Radius {
				st.EarlyStopped = true
				break
			}
		}

		code := states[best].code
		st.BucketsGenerated++
		// Slot-handle probe into the CSR storage: the bucket arrives as
		// its frozen-core segment plus its delta-tail segment, both flat
		// id arrays — no map lookup on this path.
		ref := s.ix.Tables[best].Probe(code)
		if ref.Len() > 0 {
			st.BucketsProbed++
			if opt.Profile {
				mark = time.Now()
			}
			for _, seg := range [2][]int32{ref.Core, ref.Tail} {
				for _, id := range seg {
					if s.visited[id] == s.epoch {
						continue // already evaluated via another table
					}
					s.visited[id] = s.epoch
					st.Candidates++
					top.Offer(vecmath.SquaredL2(q, s.ix.Vector(id)), id)
				}
			}
			if opt.Profile {
				st.EvaluationTime += time.Since(mark)
			}
		}

		if opt.MaxCandidates > 0 && st.Candidates >= opt.MaxCandidates {
			break
		}
		if opt.MaxBuckets > 0 && st.BucketsGenerated >= opt.MaxBuckets {
			break
		}
		if opt.Profile {
			mark = time.Now()
		}
		states[best].code, states[best].score, states[best].alive = states[best].seq.Next()
		if opt.Profile {
			st.RetrievalTime += time.Since(mark)
		}
	}

	ids, dists := top.Sorted()
	for i := range dists {
		dists[i] = math.Sqrt(dists[i])
	}
	if opt.Radius > 0 {
		// Keep only in-radius items (the heap may hold farther ones).
		cut := len(dists)
		for i, d := range dists {
			if d > opt.Radius {
				cut = i
				break
			}
		}
		ids, dists = ids[:cut], dists[:cut]
	}
	return Result{IDs: ids, Dists: dists, Stats: st}, nil
}
