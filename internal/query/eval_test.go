package query

// Tests for the evaluation-stage overhaul: the gather-then-evaluate
// batching and the early-abandon bounded kernel must be invisible in
// results (identical ids and distances to the straightforward path),
// and the Searcher-scratch reuse must keep steady-state searches
// allocation-free beyond the returned result slices.

import (
	"fmt"
	"math"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/vecmath"
)

// referenceSearch replays the pre-overhaul querying pipeline: fresh
// sequences and heap per call, interleaved visited-filtering and full
// (unbounded) distance computation per bucket. It is the oracle the
// batched early-abandon path must match id-for-id and bit-for-bit.
func referenceSearch(t *testing.T, ix *index.Index, m Method, q []float32, opt Options) Result {
	t.Helper()
	type state struct {
		seq   ProbeSequence
		code  uint64
		score float64
		alive bool
	}
	states := make([]state, len(ix.Tables))
	for ti := range states {
		states[ti].seq = m.NewSequence(ti, q)
		states[ti].code, states[ti].score, states[ti].alive = states[ti].seq.Next()
	}
	visited := make([]bool, ix.N)
	top := newTopK(opt.K)
	var st Stats
	useEarlyStop := opt.EarlyStop && opt.Mu > 0 && m.QDScores()
	for {
		best := -1
		for ti := range states {
			if !states[ti].alive {
				continue
			}
			if best < 0 || states[ti].score < states[best].score {
				best = ti
			}
		}
		if best < 0 {
			break
		}
		if useEarlyStop || (opt.Radius > 0 && opt.Mu > 0 && m.QDScores()) {
			bound := opt.Mu * states[best].score
			if useEarlyStop && top.Full() && bound*bound >= top.Worst() {
				st.EarlyStopped = true
				break
			}
			if opt.Radius > 0 && bound >= opt.Radius {
				st.EarlyStopped = true
				break
			}
		}
		st.BucketsGenerated++
		if ids := ix.Bucket(best, states[best].code); len(ids) > 0 {
			st.BucketsProbed++
			for _, id := range ids {
				if visited[id] {
					continue
				}
				visited[id] = true
				st.Candidates++
				top.Offer(vecmath.SquaredL2(q, ix.Vector(id)), id)
			}
		}
		if opt.MaxCandidates > 0 && st.Candidates >= opt.MaxCandidates {
			break
		}
		if opt.MaxBuckets > 0 && st.BucketsGenerated >= opt.MaxBuckets {
			break
		}
		states[best].code, states[best].score, states[best].alive = states[best].seq.Next()
	}
	ids, dists := top.Sorted()
	for i := range dists {
		dists[i] = math.Sqrt(dists[i])
	}
	if opt.Radius > 0 {
		cut := len(dists)
		for i, d := range dists {
			if d > opt.Radius {
				cut = i
				break
			}
		}
		ids, dists = ids[:cut], dists[:cut]
	}
	return Result{IDs: ids, Dists: dists, Stats: st}
}

// equalityCorpus builds one randomized corpus + index for the
// result-equality tests.
func equalityCorpus(t *testing.T, l hash.Learner, n, dim, bits, tables int, seed int64) (*index.Index, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "eq", N: n, Dim: dim, Clusters: 6, LatentDim: dim / 4, Seed: seed,
	})
	ds.SampleQueries(8, seed+1)
	ix, err := index.Build(l, ds.Vectors, ds.N(), ds.Dim, bits, tables, seed+2)
	if err != nil {
		t.Fatal(err)
	}
	return ix, ds
}

func assertSameResult(t *testing.T, label string, got, want Result) {
	t.Helper()
	if len(got.IDs) != len(want.IDs) {
		t.Fatalf("%s: %d results, reference has %d", label, len(got.IDs), len(want.IDs))
	}
	for i := range got.IDs {
		if got.IDs[i] != want.IDs[i] {
			t.Fatalf("%s: id[%d] = %d, reference %d", label, i, got.IDs[i], want.IDs[i])
		}
		if got.Dists[i] != want.Dists[i] {
			t.Fatalf("%s: dist[%d] = %v, reference %v (must be bit-for-bit)", label, i, got.Dists[i], want.Dists[i])
		}
	}
}

// TestSearchMatchesReferenceAllMethods is the overhaul's correctness
// bar: for every method, over randomized corpora and option mixes
// (budgets, early stop, radius, multi-table), the batched early-abandon
// Search returns exactly the ids and distances of the straightforward
// path. One Searcher is reused across all queries of a corpus, so any
// cross-query scratch pollution (stale sequences, un-reset heap,
// leftover gather buffer) shows up as a mismatch.
func TestSearchMatchesReferenceAllMethods(t *testing.T) {
	type corpus struct {
		learner hash.Learner
		n, dim  int
		bits    int
		tables  int
		seed    int64
	}
	corpora := []corpus{
		{hash.ITQ{Iterations: 6}, 500, 16, 8, 1, 101},
		{hash.LSH{}, 700, 24, 10, 3, 202},
		{hash.PCAH{}, 300, 12, 8, 2, 303},
	}
	for _, c := range corpora {
		ix, ds := equalityCorpus(t, c.learner, c.n, c.dim, c.bits, c.tables, c.seed)
		mu := 1 / math.Sqrt(float64(c.bits)) // safe scale for ITQ/PCAH; LSH path ignores correctness of µ here
		optSets := []Options{
			{K: 10},
			{K: 1},
			{K: 5, MaxCandidates: 60},
			{K: 10, MaxCandidates: 200},
			{K: 10, MaxBuckets: 15},
			{K: 10, EarlyStop: true, Mu: mu},
			{K: 4, Radius: 2.5, Mu: mu},
			{K: c.n + 10}, // K > N
		}
		for _, name := range Methods() {
			m, err := NewMethod(name, ix)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSearcher(ix, m)
			for oi, opt := range optSets {
				for qi := 0; qi < ds.NQ(); qi++ {
					q := ds.Query(qi)
					got, err := s.Search(q, opt)
					if err != nil {
						t.Fatal(err)
					}
					want := referenceSearch(t, ix, m, q, opt)
					label := fmt.Sprintf("seed=%d %s opt[%d] query %d", c.seed, name, oi, qi)
					assertSameResult(t, label, got, want)
					if got.Stats.Candidates != want.Stats.Candidates {
						t.Fatalf("%s: candidates %d, reference %d", label, got.Stats.Candidates, want.Stats.Candidates)
					}
					if got.Stats.BucketsProbed != want.Stats.BucketsProbed || got.Stats.EarlyStopped != want.Stats.EarlyStopped {
						t.Fatalf("%s: probe stats diverged: %+v vs %+v", label, got.Stats, want.Stats)
					}
				}
			}
		}
	}
}

// TestEarlyAbandonActuallyFires guards the optimization itself: on a
// budgeted search with a full heap, the bounded kernel must be cutting
// distance computations short, otherwise the whole point is lost (and
// the counter in Stats would silently read zero).
func TestEarlyAbandonActuallyFires(t *testing.T) {
	ix, ds := equalityCorpus(t, hash.ITQ{Iterations: 6}, 800, 32, 10, 1, 909)
	s := NewSearcher(ix, NewGQR(ix))
	abandoned := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		res, err := s.Search(ds.Query(qi), Options{K: 10, MaxCandidates: 400})
		if err != nil {
			t.Fatal(err)
		}
		abandoned += res.Stats.EarlyAbandoned
		if res.Stats.EarlyAbandoned >= res.Stats.Candidates {
			t.Fatalf("query %d: abandoned %d of %d candidates — the k results themselves must complete",
				qi, res.Stats.EarlyAbandoned, res.Stats.Candidates)
		}
	}
	if abandoned == 0 {
		t.Fatal("early abandonment never fired across the whole workload")
	}
}

// searchAllocBudget is the documented steady-state allocation constant:
// a warmed pooled Search allocates exactly its two returned result
// slices (ids + dists) and nothing else. The alloc regression test and
// the public docs share this number; if pooling rots, this fails.
const searchAllocBudget = 2

func TestSearchSteadyStateAllocs(t *testing.T) {
	for _, tables := range []int{1, 3} {
		ix, ds := equalityCorpus(t, hash.ITQ{Iterations: 6}, 600, 16, 8, tables, 404)
		for _, name := range Methods() {
			m, err := NewMethod(name, ix)
			if err != nil {
				t.Fatal(err)
			}
			s := NewSearcher(ix, m)
			q := ds.Query(0)
			// Heap full (K=10 over 600 items, budget 150) and scratch
			// warmed by a first call — the pooled steady state.
			opt := Options{K: 10, MaxCandidates: 150}
			if _, err := s.Search(q, opt); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(30, func() {
				if _, err := s.Search(q, opt); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > searchAllocBudget {
				t.Errorf("%s (%d tables): %.1f allocs/op, budget %d (result slices only)",
					name, tables, allocs, searchAllocBudget)
			}
		}
	}
}
