package query

import (
	"math/bits"

	"gqr/internal/index"
)

// GQR is the paper's generate-to-probe QD ranking (Algorithms 2-4). Per
// query it:
//
//  1. computes the projected vector once and sorts the per-bit flipping
//     costs ascending (the sorted projected vector p̄, Definition 3,
//     with the f mapping back to original bit positions);
//  2. probes c(q) itself first, then maintains a min-heap of sorted
//     flipping vectors seeded with v^r = (1,0,...,0);
//  3. on each demand pops the minimum-QD vector, emits its bucket, and
//     pushes its two generation-tree children, Append and Swap, whose
//     QDs derive from the parent's in O(1) (Property 2).
//
// Property 1 (each flipping vector appears exactly once in the tree)
// plus Property 2 (children QDs ≥ parent QD) make the emission order
// exactly ascending QD, i.e. GQR is semantically identical to QR with no
// up-front sort. The heap holds at most i nodes at step i.
//
// Sorted flipping vectors are packed into a uint64 whose bit j is the
// paper's v̄_{j+1}; the "rightmost non-zero entry" is the highest set
// bit, so Append and Swap are two bit operations each.
type GQR struct {
	ix *index.Index

	// sharedTree enables the paper's §5.3 remark: because the
	// generation tree is query-independent, the Append/Swap children of
	// every node can be precomputed into an array indexed by the packed
	// vector, replacing the bit manipulation with two loads. Only
	// worthwhile (or affordable) for short codes; see the abl-tree
	// ablation.
	sharedTree *genTree
}

// NewGQR builds generate-to-probe QD ranking over ix.
func NewGQR(ix *index.Index) *GQR { return &GQR{ix: ix} }

// NewGQRSharedTree builds GQR with the precomputed generation-tree
// array. Requires code length ≤ 24 (the array has 2^m entries).
func NewGQRSharedTree(ix *index.Index) *GQR {
	g := &GQR{ix: ix}
	g.sharedTree = newGenTree(ix.Bits())
	return g
}

// Name implements Method.
func (g *GQR) Name() string {
	if g.sharedTree != nil {
		return "gqr-shared"
	}
	return "gqr"
}

// QDScores implements Method.
func (*GQR) QDScores() bool { return true }

// NewSequence implements Method.
func (g *GQR) NewSequence(t int, q []float32) ProbeSequence {
	return g.NewSequenceReuse(t, q, nil)
}

// NewSequenceReuse implements Method. A recycled *gqrSeq keeps its
// costs/order/sorted/origBit buffers and its frontier heap's node array
// (via flipHeap.Reset), so a warmed sequence restarts without touching
// the allocator.
func (g *GQR) NewSequenceReuse(t int, q []float32, reuse ProbeSequence) ProbeSequence {
	hasher := g.ix.Tables[t].Hasher
	m := hasher.Bits()
	s := gqrSeqOf(reuse, m)
	s.qcode = hasher.QueryProjection(q, s.costs)
	return g.startSeq(s, m)
}

// NewSequencePrepared implements PreparedMethod: the (code, costs)
// pair replaces the QueryProjection call; everything downstream — the
// cost sort, the f mapping, the generation heap — is the shared setup,
// so the sequence is identical to NewSequenceReuse's.
func (g *GQR) NewSequencePrepared(t int, code uint64, costs []float64, reuse ProbeSequence) ProbeSequence {
	m := g.ix.Tables[t].Hasher.Bits()
	s := gqrSeqOf(reuse, m)
	copy(s.costs, costs)
	s.qcode = code
	return g.startSeq(s, m)
}

// gqrSeqOf recycles (or allocates) a gqrSeq with its buffers grown to m
// bits.
func gqrSeqOf(reuse ProbeSequence, m int) *gqrSeq {
	s, ok := reuse.(*gqrSeq)
	if !ok || s == nil {
		s = &gqrSeq{}
	}
	s.costs = grown(s.costs, m)
	s.order = grown(s.order, m)
	s.sorted = grown(s.sorted, m)
	s.origBit = grown(s.origBit, m)
	return s
}

// startSeq finishes sequence setup from s.qcode and s.costs: sort the
// flipping costs into the sorted projected vector and reset the
// generation heap.
func (g *GQR) startSeq(s *gqrSeq, m int) *gqrSeq {
	s.m = m
	s.tree = g.sharedTree
	s.heap.Reset()
	s.started = false

	// Sorted projected vector: order bit positions by ascending cost.
	for i := range s.order {
		s.order[i] = i
	}
	sortIdxByCost(s.order, s.costs)
	for pos, bit := range s.order {
		s.sorted[pos] = s.costs[bit]
		s.origBit[pos] = 1 << uint(bit) // f: sorted position -> original bit mask
	}
	return s
}

type gqrSeq struct {
	qcode   uint64
	m       int
	costs   []float64 // per-original-bit flipping costs (setup scratch)
	order   []int     // sort scratch: bit index per sorted position
	sorted  []float64 // ascending |p_i(q)| values
	origBit []uint64  // sorted position -> original bit mask
	heap    flipHeap
	tree    *genTree
	started bool
}

// bucketOf maps a sorted flipping vector to its bucket code (Algorithm
// 3): flip the original bit of every set sorted position.
func (s *gqrSeq) bucketOf(mask uint64) uint64 {
	code := s.qcode
	for mask != 0 {
		pos := bits.TrailingZeros64(mask)
		code ^= s.origBit[pos]
		mask &= mask - 1
	}
	return code
}

func (s *gqrSeq) Next() (uint64, float64, bool) {
	if !s.started {
		// Algorithm 4 line 1-3: the first probe is bucket c(q) (the
		// all-zero flipping vector), and the heap is seeded with
		// v^r = (1,0,...,0).
		s.started = true
		if s.m > 0 {
			s.heap.Push(flipNode{mask: 1, dist: s.sorted[0]})
		}
		return s.qcode, 0, true
	}
	if s.heap.Len() == 0 {
		return 0, 0, false
	}
	node := s.heap.Pop()

	// Generate the two children (Algorithm 4 lines 6-12).
	if s.tree != nil {
		ap, sw := s.tree.children(node.mask)
		if ap != 0 {
			j := bits.Len64(node.mask) - 1 // index of the rightmost 1
			s.heap.Push(flipNode{mask: ap, dist: node.dist + s.sorted[j+1]})
			s.heap.Push(flipNode{mask: sw, dist: node.dist + s.sorted[j+1] - s.sorted[j]})
		}
	} else {
		j := bits.Len64(node.mask) - 1 // index of the rightmost 1
		if j+1 < s.m {
			hi := uint64(1) << uint(j+1)
			// Append: add a 1 to the right of the rightmost 1.
			s.heap.Push(flipNode{mask: node.mask | hi, dist: node.dist + s.sorted[j+1]})
			// Swap: move the rightmost 1 one position right.
			s.heap.Push(flipNode{mask: (node.mask &^ (1 << uint(j))) | hi, dist: node.dist + s.sorted[j+1] - s.sorted[j]})
		}
	}
	return s.bucketOf(node.mask), node.dist, true
}

// genTree is the precomputed generation tree of the §5.3 remark: for
// every packed sorted flipping vector, the Append and Swap children (0
// when the node is a leaf). The tree depends only on the code length, so
// one array serves all queries and tables.
type genTree struct {
	m       int
	childAp []uint64
	childSw []uint64
}

const maxSharedTreeBits = 24

func newGenTree(m int) *genTree {
	if m > maxSharedTreeBits {
		panic("query: shared generation tree limited to 24-bit codes")
	}
	size := uint64(1) << uint(m)
	t := &genTree{m: m, childAp: make([]uint64, size), childSw: make([]uint64, size)}
	for mask := uint64(1); mask < size; mask++ {
		j := bits.Len64(mask) - 1
		if j+1 < m {
			hi := uint64(1) << uint(j+1)
			t.childAp[mask] = mask | hi
			t.childSw[mask] = (mask &^ (1 << uint(j))) | hi
		}
	}
	return t
}

func (t *genTree) children(mask uint64) (ap, sw uint64) {
	return t.childAp[mask], t.childSw[mask]
}
