package query

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFlipHeapOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h flipHeap
		n := 1 + rng.Intn(200)
		dists := make([]float64, n)
		for i := range dists {
			dists[i] = rng.Float64()
			h.Push(flipNode{mask: uint64(i), dist: dists[i]})
		}
		sort.Float64s(dists)
		for i := 0; i < n; i++ {
			if h.Pop().dist != dists[i] {
				return false
			}
		}
		return h.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFlipHeapReset(t *testing.T) {
	var h flipHeap
	h.Push(flipNode{mask: 1, dist: 1})
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("Reset must empty the heap")
	}
}

func TestTopKMatchesSort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		k := 1 + rng.Intn(20)
		type cand struct {
			dist float64
			id   int32
		}
		cands := make([]cand, n)
		top := newTopK(k)
		for i := range cands {
			// Quantized distances to force ties.
			cands[i] = cand{dist: float64(rng.Intn(20)), id: int32(i)}
			top.Offer(cands[i].dist, cands[i].id)
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].dist != cands[b].dist {
				return cands[a].dist < cands[b].dist
			}
			return cands[a].id < cands[b].id
		})
		ids, dists := top.Sorted()
		want := k
		if n < k {
			want = n
		}
		if len(ids) != want {
			return false
		}
		for i := 0; i < want; i++ {
			if ids[i] != cands[i].id || dists[i] != cands[i].dist {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTopKFullAndWorst(t *testing.T) {
	top := newTopK(2)
	if top.Full() {
		t.Fatal("empty topK reports Full")
	}
	top.Offer(5, 1)
	top.Offer(3, 2)
	if !top.Full() || top.Worst() != 5 {
		t.Fatalf("Full=%v Worst=%g", top.Full(), top.Worst())
	}
	if top.Offer(7, 3) {
		t.Fatal("worse candidate must be rejected")
	}
	if !top.Offer(1, 4) {
		t.Fatal("better candidate must be accepted")
	}
	if top.Worst() != 3 {
		t.Fatalf("Worst=%g after replacement", top.Worst())
	}
}

func TestGosperEnumeratesAllCombinations(t *testing.T) {
	const m = 10
	for r := 0; r <= m; r++ {
		count := 0
		if r == 0 {
			count = 1 // the empty mask, handled outside Gosper
		} else {
			for mask := firstCombination(r); mask != 0; mask = nextCombination(mask, m) {
				if popcount64(mask) != r {
					t.Fatalf("mask %b has wrong popcount", mask)
				}
				if mask >= 1<<m {
					t.Fatalf("mask %b exceeds %d bits", mask, m)
				}
				count++
			}
		}
		want := binomial(m, r)
		if count != want {
			t.Fatalf("radius %d: %d masks, want C(%d,%d)=%d", r, count, m, r, want)
		}
	}
}

func popcount64(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
