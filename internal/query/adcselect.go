package query

// Deterministic in-place selection for the flat ADC re-ranking path:
// adcSelectTop partitions the parallel (dists, ids) arrays so that the
// first `keep` entries are exactly the `keep` best candidates under
// ascending (distance, id) order. The (distance, id) key is a total
// order, so the selected set depends only on the candidates' values —
// never on arrival order — which is what keeps re-ranked results
// identical across segment layouts (memtable sizes, merges, recovery).
// Entries inside and outside the prefix are otherwise unordered.

// adcLessV reports whether candidate (da, ia) precedes (db, ib).
func adcLessV(da float32, ia int32, db float32, ib int32) bool {
	if da != db {
		return da < db
	}
	return ia < ib
}

// adcSelectTop runs a median-of-three Hoare quickselect. Expected
// O(len) comparisons; the pivot never lands on an extreme of a 3+
// element range, so every partition strictly shrinks the span.
func adcSelectTop(dists []float32, ids []int32, keep int) {
	if keep <= 0 || keep >= len(ids) {
		return
	}
	lo, hi := 0, len(ids)-1
	for lo < hi {
		j := adcPartition(dists, ids, lo, hi)
		// [lo..j] all precede-or-equal [j+1..hi]; recurse into the side
		// holding the keep boundary (index keep-1).
		if keep-1 <= j {
			hi = j
		} else {
			lo = j + 1
		}
	}
}

// adcPartition is a Hoare partition of [lo, hi] around the median of
// the first, middle and last entries; it returns j in [lo, hi-1] with
// every entry of [lo..j] ≤ every entry of [j+1..hi].
func adcPartition(dists []float32, ids []int32, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if adcLessV(dists[mid], ids[mid], dists[lo], ids[lo]) {
		dists[mid], dists[lo] = dists[lo], dists[mid]
		ids[mid], ids[lo] = ids[lo], ids[mid]
	}
	if adcLessV(dists[hi], ids[hi], dists[lo], ids[lo]) {
		dists[hi], dists[lo] = dists[lo], dists[hi]
		ids[hi], ids[lo] = ids[lo], ids[hi]
	}
	if adcLessV(dists[hi], ids[hi], dists[mid], ids[mid]) {
		dists[hi], dists[mid] = dists[mid], dists[hi]
		ids[hi], ids[mid] = ids[mid], ids[hi]
	}
	pd, pid := dists[mid], ids[mid]
	i, j := lo-1, hi+1
	for {
		for {
			i++
			if !adcLessV(dists[i], ids[i], pd, pid) {
				break
			}
		}
		for {
			j--
			if !adcLessV(pd, pid, dists[j], ids[j]) {
				break
			}
		}
		if i >= j {
			return j
		}
		dists[i], dists[j] = dists[j], dists[i]
		ids[i], ids[j] = ids[j], ids[i]
	}
}
