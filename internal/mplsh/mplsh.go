// Package mplsh implements Multi-Probe LSH (Lv, Josephson, Wang,
// Charikar & Li, VLDB 2007), the querying method the paper contrasts
// GQR against in §5.3. It is the integer-bucket ancestor of GQR's
// generate-to-probe idea: E2LSH hash functions h_i(v) = ⌊(a_i·v+b_i)/W⌋
// map vectors to integer tuples, and queries probe the buckets whose
// tuples differ by ±1 in a few coordinates, ordered by a
// query-directed perturbation score.
//
// The paper's three §5.3 distinctions are observable here:
//
//  1. the score is a sum of squared boundary distances (vs QD's L1 of
//     exact flip costs);
//  2. the derivation assumes Gaussian projections (vs QD's any-matrix
//     lower bound);
//  3. perturbation sets can be *invalid* (both +1 and −1 on the same
//     coordinate) and must be filtered, which GQR's flipping vectors
//     never need.
package mplsh

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"gqr/internal/vecmath"
)

// Table is one E2LSH hash table of integer-tuple buckets.
type Table struct {
	a [][]float64 // m hash vectors of dimension d
	b []float64   // m offsets in [0,W)
	w float64
	// buckets keys are the packed string of the m int32 hash values.
	buckets map[string][]int32
}

// Index is a Multi-Probe LSH index: L independent tables of m integer
// hashes each.
type Index struct {
	Dim    int
	N      int
	Data   []float32
	M      int // hashes per table
	W      float64
	Tables []*Table
}

// Build constructs the index over the n×d block with the given number
// of tables, hashes per table and bucket width w.
func Build(data []float32, n, d, tables, m int, w float64, seed int64) (*Index, error) {
	if n <= 0 || d <= 0 || len(data) != n*d {
		return nil, fmt.Errorf("mplsh: invalid data shape n=%d d=%d len=%d", n, d, len(data))
	}
	if tables <= 0 || m <= 0 || m > 32 {
		// 2m perturbation actions must fit one uint64 mask.
		return nil, fmt.Errorf("mplsh: invalid tables=%d m=%d (m must be 1-32)", tables, m)
	}
	if w <= 0 {
		return nil, fmt.Errorf("mplsh: bucket width must be positive, got %g", w)
	}
	ix := &Index{Dim: d, N: n, Data: data, M: m, W: w}
	rng := rand.New(rand.NewSource(seed))
	for t := 0; t < tables; t++ {
		tbl := &Table{w: w, buckets: make(map[string][]int32)}
		for i := 0; i < m; i++ {
			a := make([]float64, d)
			for j := range a {
				a[j] = rng.NormFloat64()
			}
			tbl.a = append(tbl.a, a)
			tbl.b = append(tbl.b, rng.Float64()*w)
		}
		slots := make([]int32, m)
		for i := 0; i < n; i++ {
			tbl.slotsOf(data[i*d:(i+1)*d], nil, slots)
			key := packSlots(slots)
			tbl.buckets[key] = append(tbl.buckets[key], int32(i))
		}
		ix.Tables = append(ix.Tables, tbl)
	}
	return ix, nil
}

// slotsOf fills slots with the integer hash tuple of x; when frac is
// non-nil it also receives the raw projections (a_i·x + b_i).
func (t *Table) slotsOf(x []float32, frac []float64, slots []int32) {
	for i := range t.a {
		var s float64
		for j, v := range t.a[i] {
			s += v * float64(x[j])
		}
		s += t.b[i]
		if frac != nil {
			frac[i] = s
		}
		slots[i] = int32(floorDiv(s, t.w))
	}
}

func floorDiv(x, w float64) float64 {
	q := x / w
	f := float64(int64(q))
	if q < 0 && q != f {
		f--
	}
	return f
}

// packSlots encodes the tuple as a map key.
func packSlots(slots []int32) string {
	b := make([]byte, 4*len(slots))
	for i, s := range slots {
		u := uint32(s)
		b[4*i] = byte(u)
		b[4*i+1] = byte(u >> 8)
		b[4*i+2] = byte(u >> 16)
		b[4*i+3] = byte(u >> 24)
	}
	return string(b)
}

// BucketCount returns the number of non-empty buckets in table t.
func (ix *Index) BucketCount(t int) int { return len(ix.Tables[t].buckets) }

// perturbation is one (coordinate, ±1) action with its boundary
// distance.
type perturbation struct {
	coord int
	delta int32
	x     float64 // distance from the projection to the crossed boundary
}

// probeSet is a node of the Lv et al. generation heap: a set of sorted
// perturbation indices represented as a bitmask (m ≤ 32 in practice, so
// 2m ≤ 64 fits a uint64), plus its score.
type probeSet struct {
	mask  uint64
	score float64
}

// Sequence emits buckets of one table in ascending perturbation score.
type Sequence struct {
	table *Table
	base  []int32        // the query's own slot tuple
	perts []perturbation // sorted ascending by x²
	heap  []probeSet
	m     int
	first bool
}

// NewSequence prepares the multi-probe traversal of table t for q.
func (ix *Index) NewSequence(t int, q []float32) *Sequence {
	tbl := ix.Tables[t]
	m := ix.M
	frac := make([]float64, m)
	base := make([]int32, m)
	tbl.slotsOf(q, frac, base)

	// Boundary distances: for coordinate i, x(+1) is the distance to
	// the upper slot boundary and x(−1) to the lower one; they sum to W.
	perts := make([]perturbation, 0, 2*m)
	for i := 0; i < m; i++ {
		lower := frac[i] - float64(base[i])*tbl.w // in [0,W)
		perts = append(perts,
			perturbation{coord: i, delta: -1, x: lower},
			perturbation{coord: i, delta: +1, x: tbl.w - lower})
	}
	sort.Slice(perts, func(a, b int) bool {
		if perts[a].x != perts[b].x {
			return perts[a].x < perts[b].x
		}
		if perts[a].coord != perts[b].coord {
			return perts[a].coord < perts[b].coord
		}
		return perts[a].delta < perts[b].delta
	})
	s := &Sequence{table: tbl, base: base, perts: perts, m: m, first: true}
	if len(perts) > 0 {
		s.push(probeSet{mask: 1, score: perts[0].x * perts[0].x})
	}
	return s
}

func (s *Sequence) push(p probeSet) {
	s.heap = append(s.heap, p)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s.heap[parent].score <= s.heap[i].score {
			break
		}
		s.heap[parent], s.heap[i] = s.heap[i], s.heap[parent]
		i = parent
	}
}

func (s *Sequence) pop() probeSet {
	top := s.heap[0]
	last := len(s.heap) - 1
	s.heap[0] = s.heap[last]
	s.heap = s.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && s.heap[l].score < s.heap[smallest].score {
			smallest = l
		}
		if r < last && s.heap[r].score < s.heap[smallest].score {
			smallest = r
		}
		if smallest == i {
			return top
		}
		s.heap[i], s.heap[smallest] = s.heap[smallest], s.heap[i]
		i = smallest
	}
}

// valid reports whether the perturbation set applies at most one delta
// per coordinate (the paper's §5.3 "invalid buckets" of Multi-Probe
// LSH are exactly the sets this rejects).
func (s *Sequence) valid(mask uint64) bool {
	var seen uint64 // coordinates already perturbed
	for mm := mask; mm != 0; mm &= mm - 1 {
		j := bits.TrailingZeros64(mm)
		c := uint64(1) << uint(s.perts[j].coord)
		if seen&c != 0 {
			return false
		}
		seen |= c
	}
	return true
}

// Next returns the next bucket's items (possibly none when the bucket
// is empty), its perturbation score, and ok=false when the generation
// space is exhausted. Invalid perturbation sets are generated and then
// skipped — the overhead the paper notes GQR avoids by construction.
func (s *Sequence) Next() (items []int32, score float64, ok bool) {
	if s.first {
		s.first = false
		return s.table.buckets[packSlots(s.base)], 0, true
	}
	for len(s.heap) > 0 {
		node := s.pop()
		// Generate successors (shift + expand on the max index).
		j := bits.Len64(node.mask) - 1
		if j+1 < len(s.perts) {
			zj := s.perts[j].x * s.perts[j].x
			zj1 := s.perts[j+1].x * s.perts[j+1].x
			hi := uint64(1) << uint(j+1)
			s.push(probeSet{mask: (node.mask &^ (1 << uint(j))) | hi, score: node.score - zj + zj1}) // shift
			s.push(probeSet{mask: node.mask | hi, score: node.score + zj1})                          // expand
		}
		if !s.valid(node.mask) {
			continue // invalid: both deltas on one coordinate
		}
		// Apply the perturbations to the base tuple.
		slots := make([]int32, s.m)
		copy(slots, s.base)
		for mm := node.mask; mm != 0; mm &= mm - 1 {
			p := s.perts[bits.TrailingZeros64(mm)]
			slots[p.coord] += p.delta
		}
		return s.table.buckets[packSlots(slots)], node.score, true
	}
	return nil, 0, false
}

// Retrieve gathers candidate ids from every table, probing tables
// round-robin in ascending score, until at least budget distinct
// candidates are collected or all generated probes are spent. probes
// bounds the number of perturbation sets per table (0 = unbounded).
func (ix *Index) Retrieve(q []float32, budget, probes int) []int32 {
	seqs := make([]*Sequence, len(ix.Tables))
	type head struct {
		items []int32
		score float64
		alive bool
	}
	heads := make([]head, len(ix.Tables))
	counts := make([]int, len(ix.Tables))
	for t := range seqs {
		seqs[t] = ix.NewSequence(t, q)
		items, score, ok := seqs[t].Next()
		heads[t] = head{items, score, ok}
		counts[t] = 1
	}
	seen := make(map[int32]bool, budget)
	var out []int32
	for len(out) < budget {
		best := -1
		for t := range heads {
			if !heads[t].alive {
				continue
			}
			if best < 0 || heads[t].score < heads[best].score {
				best = t
			}
		}
		if best < 0 {
			break
		}
		for _, id := range heads[best].items {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		if probes > 0 && counts[best] >= probes {
			heads[best].alive = false
			continue
		}
		items, score, ok := seqs[best].Next()
		heads[best] = head{items, score, ok}
		counts[best]++
	}
	return out
}

// SearchExact retrieves candidates and re-ranks them by exact Euclidean
// distance, returning the k best ids.
func (ix *Index) SearchExact(q []float32, k, budget, probes int) []int32 {
	cands := ix.Retrieve(q, budget, probes)
	type scored struct {
		id   int32
		dist float64
	}
	all := make([]scored, len(cands))
	for i, id := range cands {
		all[i] = scored{id, vecmath.SquaredL2(q, ix.Data[int(id)*ix.Dim:(int(id)+1)*ix.Dim])}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}
