package mplsh

import (
	"math/rand"
)

// Entropy LSH (Panigrahy, SODA 2006), the other LSH probing family the
// paper's §7 names: instead of perturbing the hash tuple directly
// (Multi-Probe), perturb the *query* — sample points at distance ~r
// around q, hash each sample, and probe the buckets they land in. The
// paper's criticism applies verbatim: sampled probes can repeat buckets
// (wasted work and de-duplication) and cannot guarantee coverage.

// EntropyRetrieve gathers candidates by probing the buckets of
// perturbed copies of q: per table, q itself plus `probes` samples
// q + r·g (g standard normal), de-duplicated across tables and probes.
func (ix *Index) EntropyRetrieve(q []float32, budget, probes int, radius float64, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int32]bool, budget)
	var out []int32
	collect := func(t int, v []float32) {
		tbl := ix.Tables[t]
		slots := make([]int32, ix.M)
		tbl.slotsOf(v, nil, slots)
		for _, id := range tbl.buckets[packSlots(slots)] {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	perturbed := make([]float32, ix.Dim)
	for t := range ix.Tables {
		collect(t, q)
		if len(out) >= budget {
			return out
		}
	}
	for p := 0; p < probes; p++ {
		for j := range perturbed {
			perturbed[j] = q[j] + float32(radius*rng.NormFloat64())
		}
		for t := range ix.Tables {
			collect(t, perturbed)
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}
