package mplsh

import (
	"math"
	"sort"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/vecmath"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "mp", N: 600, Dim: 12, Clusters: 5, LatentDim: 3, Seed: 71,
	})
	ds.SampleQueries(10, 72)
	ds.ComputeGroundTruth(10)
	return ds
}

func build(t testing.TB, ds *dataset.Dataset, tables, m int) *Index {
	t.Helper()
	ix, err := Build(ds.Vectors, ds.N(), ds.Dim, tables, m, 4.0, 73)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildValidation(t *testing.T) {
	ds := testData(t)
	cases := []struct {
		tables, m int
		w         float64
	}{
		{0, 4, 4}, {1, 0, 4}, {1, 33, 4}, {1, 4, 0}, {1, 4, -1},
	}
	for _, c := range cases {
		if _, err := Build(ds.Vectors, ds.N(), ds.Dim, c.tables, c.m, c.w, 1); err == nil {
			t.Fatalf("Build(%d,%d,%g) accepted", c.tables, c.m, c.w)
		}
	}
	if _, err := Build(ds.Vectors[:10], ds.N(), ds.Dim, 1, 4, 4, 1); err == nil {
		t.Fatal("short data accepted")
	}
}

func TestEveryItemInOwnBucket(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 2, 6)
	for tbl := 0; tbl < 2; tbl++ {
		total := 0
		for _, b := range ix.Tables[tbl].buckets {
			total += len(b)
		}
		if total != ds.N() {
			t.Fatalf("table %d holds %d items, want %d", tbl, total, ds.N())
		}
	}
	// Probing with an indexed vector must surface it at score 0.
	seq := ix.NewSequence(0, ds.Vector(3))
	items, score, ok := seq.Next()
	if !ok || score != 0 {
		t.Fatalf("first probe score %g ok %v", score, ok)
	}
	found := false
	for _, id := range items {
		if id == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("item missing from its own bucket")
	}
}

func TestScoresNonDecreasingAndValidOnly(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 1, 6)
	for qi := 0; qi < 5; qi++ {
		seq := ix.NewSequence(0, ds.Query(qi))
		prev := -1.0
		for probes := 0; probes < 500; probes++ {
			_, score, ok := seq.Next()
			if !ok {
				break
			}
			if score < prev-1e-12 {
				t.Fatalf("score decreased: %g -> %g", prev, score)
			}
			prev = score
		}
	}
}

func TestPerturbationScoresMatchDefinition(t *testing.T) {
	// The emitted score must equal the sum of squared boundary
	// distances of the applied perturbations (Lv et al.'s score).
	ds := testData(t)
	ix := build(t, ds, 1, 5)
	q := ds.Query(0)
	seq := ix.NewSequence(0, q)
	// Reconstruct by brute force: enumerate all valid ±1 perturbation
	// sets over 5 coordinates (3^5 = 243) and collect their scores.
	tbl := ix.Tables[0]
	frac := make([]float64, 5)
	base := make([]int32, 5)
	tbl.slotsOf(q, frac, base)
	var scores []float64
	var walk func(i int, score float64)
	walk = func(i int, score float64) {
		if i == 5 {
			scores = append(scores, score)
			return
		}
		lower := frac[i] - float64(base[i])*tbl.w
		walk(i+1, score)                             // no perturbation
		walk(i+1, score+lower*lower)                 // -1
		walk(i+1, score+(tbl.w-lower)*(tbl.w-lower)) // +1
	}
	walk(0, 0)
	sort.Float64s(scores)
	for i := 0; i < len(scores); i++ {
		_, got, ok := seq.Next()
		if !ok {
			t.Fatalf("sequence ended after %d probes, want %d", i, len(scores))
		}
		if math.Abs(got-scores[i]) > 1e-9 {
			t.Fatalf("probe %d score %g, want %g", i, got, scores[i])
		}
	}
	if _, _, ok := seq.Next(); ok {
		t.Fatal("sequence emitted more probes than valid perturbation sets")
	}
}

func TestRetrieveDedupsAcrossTables(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 3, 5)
	cands := ix.Retrieve(ds.Query(0), ds.N()*2, 0)
	seen := make(map[int32]bool)
	for _, id := range cands {
		if seen[id] {
			t.Fatalf("item %d retrieved twice", id)
		}
		seen[id] = true
	}
	if len(cands) > ds.N() {
		t.Fatalf("retrieved %d > N", len(cands))
	}
}

func TestSearchExactFindsNeighbors(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 4, 6)
	hits := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		got := ix.SearchExact(ds.Query(qi), 10, 300, 0)
		in := make(map[int32]bool)
		for _, id := range got {
			in[id] = true
		}
		for _, id := range ds.GroundTruth[qi] {
			if in[id] {
				hits++
			}
		}
	}
	// 4 tables, 300-candidate budget on 590 items: recall should be
	// decent (well above chance).
	if hits < ds.NQ()*10/2 {
		t.Fatalf("multi-probe LSH found only %d/%d true neighbors", hits, ds.NQ()*10)
	}
}

func TestProbeBudgetRespected(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 1, 6)
	few := ix.Retrieve(ds.Query(0), ds.N(), 3)
	all := ix.Retrieve(ds.Query(0), ds.N(), 0)
	if len(few) > len(all) {
		t.Fatal("probe budget increased candidates")
	}
}

func TestFloorDiv(t *testing.T) {
	cases := []struct {
		x, w, want float64
	}{
		{7, 4, 1}, {-1, 4, -1}, {-4, 4, -1}, {-4.5, 4, -2}, {0, 4, 0}, {3.9, 4, 0},
	}
	for _, c := range cases {
		if got := floorDiv(c.x, c.w); got != c.want {
			t.Fatalf("floorDiv(%g,%g) = %g, want %g", c.x, c.w, got, c.want)
		}
	}
}

func TestSlotsConsistentWithDistance(t *testing.T) {
	// Close vectors should share more slots than far vectors on
	// average — the similarity-preserving property of E2LSH.
	ds := testData(t)
	ix := build(t, ds, 1, 8)
	tbl := ix.Tables[0]
	a := make([]int32, 8)
	b := make([]int32, 8)
	shared := func(x, y []float32) int {
		tbl.slotsOf(x, nil, a)
		tbl.slotsOf(y, nil, b)
		n := 0
		for i := range a {
			if a[i] == b[i] {
				n++
			}
		}
		return n
	}
	var nearShared, farShared int
	for qi := 0; qi < ds.NQ(); qi++ {
		q := ds.Query(qi)
		nearShared += shared(q, ds.Vector(int(ds.GroundTruth[qi][0])))
		// A far item: the last ground-truth id of another query works
		// poorly; instead use an arbitrary distant item by index.
		farShared += shared(q, ds.Vector((qi*37+211)%ds.N()))
	}
	if nearShared <= farShared {
		t.Fatalf("near pairs share %d slots, far pairs %d", nearShared, farShared)
	}
}

func TestSearchExactMatchesBruteForceAtFullBudget(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 2, 4)
	// With an effectively unbounded budget and probes, multi-probe
	// enumerates a large neighborhood; verify returned distances are
	// sorted and correct.
	got := ix.SearchExact(ds.Query(0), 5, ds.N(), 0)
	prev := -1.0
	for _, id := range got {
		d := vecmath.SquaredL2(ds.Query(0), ds.Vector(int(id)))
		if d < prev {
			t.Fatal("results not sorted by distance")
		}
		prev = d
	}
}

func TestEntropyRetrieveFindsNearItems(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 4, 6)
	hits := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		// Perturbation radius ~ half the nearest-neighbor distance
		// scale; larger radii scatter samples into empty buckets (the
		// coverage weakness the paper's §7 ascribes to this family).
		cands := ix.EntropyRetrieve(ds.Query(qi), 200, 32, 0.5, int64(qi))
		for _, id := range cands {
			if id == ds.GroundTruth[qi][0] {
				hits++
				break
			}
		}
	}
	if hits < ds.NQ()/2 {
		t.Fatalf("entropy probing surfaced the nearest neighbor in only %d/%d retrievals", hits, ds.NQ())
	}
}

func TestEntropyRetrieveDedups(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 3, 5)
	cands := ix.EntropyRetrieve(ds.Query(0), ds.N(), 64, 1.0, 7)
	seen := make(map[int32]bool)
	for _, id := range cands {
		if seen[id] {
			t.Fatalf("item %d retrieved twice", id)
		}
		seen[id] = true
	}
}

func TestEntropyRetrieveBudget(t *testing.T) {
	ds := testData(t)
	ix := build(t, ds, 2, 5)
	few := ix.EntropyRetrieve(ds.Query(0), 30, 16, 1.0, 8)
	if len(few) > 30+600 { // budget checked per bucket; overshoot bounded
		t.Fatalf("budget wildly exceeded: %d", len(few))
	}
	// Zero probes: only the query's own buckets.
	own := ix.EntropyRetrieve(ds.Query(0), ds.N(), 0, 1.0, 9)
	if len(own) == 0 {
		t.Fatal("own-bucket probe returned nothing")
	}
}
