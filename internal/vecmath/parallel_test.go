package vecmath

import (
	"math"
	"math/rand"
	"strconv"
	"testing"
)

// The contract every parallel kernel must keep: bit-for-bit equality
// with its serial counterpart at every worker count. The tests compare
// with == (not a tolerance) on purpose — the build pipeline's
// determinism guarantee rests on exact equality.

func randMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func matsEqual(t *testing.T, name string, want, got *Mat) {
	t.Helper()
	if want.Rows != got.Rows || want.Cols != got.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i, v := range want.Data {
		if got.Data[i] != v {
			t.Fatalf("%s: element %d differs: %v != %v", name, i, got.Data[i], v)
		}
	}
}

func TestMulPMatchesMulBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := []struct{ r, k, c int }{
		{1, 1, 1}, {3, 5, 2}, {17, 33, 9}, {128, 64, 32}, {14, 900, 14}, {301, 7, 41},
	}
	for _, s := range shapes {
		a := randMat(rng, s.r, s.k)
		b := randMat(rng, s.k, s.c)
		// Plant explicit zeros so the branchless inner loop is exercised
		// against the reference on the rows the old kernel skipped.
		for i := 0; i < len(a.Data); i += 3 {
			a.Data[i] = 0
		}
		want := Mul(a, b)
		for _, p := range []int{1, 2, 3, 8, 16} {
			matsEqual(t, "MulP", want, MulP(a, b, p))
		}
	}
}

func TestMulMatchesNaiveTripleLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMat(rng, 13, 21)
	b := randMat(rng, 21, 8)
	want := NewMat(13, 8)
	for i := 0; i < 13; i++ {
		for j := 0; j < 8; j++ {
			var s float64
			for k := 0; k < 21; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	got := Mul(a, b)
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-12 {
			t.Fatalf("Mul element %d: %v != %v", i, got.Data[i], want.Data[i])
		}
	}
}

func TestCovariancePMatchesSerialBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, shape := range []struct{ n, d int }{{2, 1}, {50, 7}, {400, 33}, {1200, 64}} {
		data := make([]float32, shape.n*shape.d)
		for i := range data {
			data[i] = float32(rng.NormFloat64())
		}
		// Exact zeros after centering exercise the ca==0 skip: make one
		// column constant.
		for i := 0; i < shape.n; i++ {
			data[i*shape.d] = 1.5
		}
		wantCov, wantMean := Covariance(data, shape.n, shape.d)
		for _, p := range []int{1, 2, 5, 8, 32} {
			gotCov, gotMean := CovarianceP(data, shape.n, shape.d, p)
			matsEqual(t, "CovarianceP", wantCov, gotCov)
			for j, v := range wantMean {
				if gotMean[j] != v {
					t.Fatalf("CovarianceP mean[%d] at p=%d: %v != %v", j, p, gotMean[j], v)
				}
			}
		}
	}
}

func TestMulBatch32MatchesSerialProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const n, d, m = 300, 24, 12
	data := make([]float32, n*d)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	h := randMat(rng, m, d)
	mean := make([]float64, d)
	for j := range mean {
		mean[j] = rng.NormFloat64()
	}
	for _, withMean := range []bool{false, true} {
		mu := mean
		if !withMean {
			mu = nil
		}
		want := NewMat(n, m)
		for i := 0; i < n; i++ {
			row := data[i*d : (i+1)*d]
			for r := 0; r < m; r++ {
				hr := h.Row(r)
				var s float64
				for j, hv := range hr {
					x := float64(row[j])
					if withMean {
						x -= mu[j]
					}
					s += hv * x
				}
				want.Set(i, r, s)
			}
		}
		for _, p := range []int{1, 2, 7, 16} {
			matsEqual(t, "MulBatch32", want, MulBatch32(data, n, d, h, mu, p))
		}
	}
}

func TestProcrustesPMatchesProcrustes(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randMat(rng, 120, 10)
	b := randMat(rng, 120, 10)
	want := Procrustes(a, b)
	for _, p := range []int{1, 2, 8} {
		matsEqual(t, "ProcrustesP", want, ProcrustesP(a, b, p))
	}
}

func TestParallelRangesCoverage(t *testing.T) {
	for _, total := range []int{0, 1, 2, 7, 64, 1000} {
		for _, p := range []int{1, 2, 3, 8, 100} {
			seen := make([]int, total)
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			ParallelRanges(total, p, func(lo, hi int) {
				<-mu
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu <- struct{}{}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("total=%d p=%d: element %d covered %d times", total, p, i, c)
				}
			}
		}
	}
}

func TestParallelWeightedCoverage(t *testing.T) {
	for _, total := range []int{1, 5, 33, 128} {
		for _, p := range []int{1, 2, 8} {
			var mu chan struct{} = make(chan struct{}, 1)
			mu <- struct{}{}
			seen := make([]int, total)
			ParallelWeighted(total, p, func(i int) float64 { return float64(total - i) }, func(lo, hi int) {
				<-mu
				for i := lo; i < hi; i++ {
					seen[i]++
				}
				mu <- struct{}{}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("total=%d p=%d: element %d covered %d times", total, p, i, c)
				}
			}
		}
	}
}

func BenchmarkMulP(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	a := randMat(rng, 2000, 64)
	m := randMat(rng, 64, 64)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(benchName("p", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				MulP(a, m, p)
			}
		})
	}
}

func BenchmarkCovarianceP(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n, d = 5000, 64
	data := make([]float32, n*d)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(benchName("p", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CovarianceP(data, n, d, p)
			}
		})
	}
}

func benchName(prefix string, p int) string { return prefix + strconv.Itoa(p) }
