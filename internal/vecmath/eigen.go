package vecmath

import (
	"math"
	"sort"
)

// EigenSym computes the full eigendecomposition of a symmetric matrix a
// using the cyclic Jacobi method. It returns the eigenvalues in
// descending order and the matching eigenvectors as the columns of the
// returned matrix. a is not modified.
//
// Jacobi is quadratically convergent and unconditionally stable, which is
// all the trainers need: covariance matrices here are at most a few
// hundred square.
func EigenSym(a *Mat) (values []float64, vectors *Mat) {
	if a.Rows != a.Cols {
		panic("vecmath: EigenSym requires a square matrix")
	}
	n := a.Rows
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of absolute off-diagonal values: convergence test.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += math.Abs(w.At(i, j))
			}
		}
		if off == 0 {
			break
		}
		threshold := 0.0
		if sweep < 3 {
			threshold = 0.2 * off / float64(n*n)
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				g := 100 * math.Abs(apq)
				app, aqq := w.At(p, p), w.At(q, q)
				if sweep > 3 && math.Abs(app)+g == math.Abs(app) && math.Abs(aqq)+g == math.Abs(aqq) {
					w.Set(p, q, 0)
					w.Set(q, p, 0)
					continue
				}
				if math.Abs(apq) <= threshold {
					continue
				}
				h := aqq - app
				var t float64
				if math.Abs(h)+g == math.Abs(h) {
					t = apq / h
				} else {
					theta := 0.5 * h / apq
					t = 1 / (math.Abs(theta) + math.Sqrt(1+theta*theta))
					if theta < 0 {
						t = -t
					}
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				tau := s / (1 + c)
				// Apply the rotation to w (rows/cols p and q).
				w.Set(p, p, app-t*apq)
				w.Set(q, q, aqq+t*apq)
				w.Set(p, q, 0)
				w.Set(q, p, 0)
				for i := 0; i < n; i++ {
					if i == p || i == q {
						continue
					}
					aip, aiq := w.At(i, p), w.At(i, q)
					w.Set(i, p, aip-s*(aiq+tau*aip))
					w.Set(p, i, w.At(i, p))
					w.Set(i, q, aiq+s*(aip-tau*aiq))
					w.Set(q, i, w.At(i, q))
				}
				// Accumulate the rotation into the eigenvector matrix.
				for i := 0; i < n; i++ {
					vip, viq := v.At(i, p), v.At(i, q)
					v.Set(i, p, vip-s*(viq+tau*vip))
					v.Set(i, q, viq+s*(vip-tau*viq))
				}
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return values[order[i]] > values[order[j]] })
	sortedVals := make([]float64, n)
	vectors = NewMat(n, n)
	for dst, src := range order {
		sortedVals[dst] = values[src]
		for i := 0; i < n; i++ {
			vectors.Set(i, dst, v.At(i, src))
		}
	}
	return sortedVals, vectors
}

// TopEigenvectors returns the k eigenvectors of the symmetric matrix a
// with the largest eigenvalues, as the rows of a k×n matrix (ready to use
// as a projection).
func TopEigenvectors(a *Mat, k int) *Mat {
	if k > a.Rows {
		panic("vecmath: TopEigenvectors k exceeds matrix size")
	}
	_, vecs := EigenSym(a)
	out := NewMat(k, a.Rows)
	for r := 0; r < k; r++ {
		for c := 0; c < a.Rows; c++ {
			out.Set(r, c, vecs.At(c, r))
		}
	}
	return out
}
