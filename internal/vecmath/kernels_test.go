package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquaredL2Known(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if d := SquaredL2(a, b); d != 9 {
		t.Fatalf("SquaredL2 = %g, want 9", d)
	}
	if d := L2(a, b); d != 3 {
		t.Fatalf("L2 = %g, want 3", d)
	}
}

func TestSquaredL2OddLengths(t *testing.T) {
	// Exercise the tail loop for lengths not divisible by 4.
	for _, n := range []int{1, 2, 3, 5, 7, 9} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(i)
			b[i] = float32(i + 1)
		}
		if d := SquaredL2(a, b); d != float64(n) {
			t.Fatalf("n=%d SquaredL2=%g want %d", n, d, n)
		}
	}
}

func TestSquaredL2Properties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		// Symmetry, identity, non-negativity.
		if SquaredL2(a, b) != SquaredL2(b, a) {
			return false
		}
		if SquaredL2(a, a) != 0 {
			return false
		}
		return SquaredL2(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if d := Dot(a, b); d != 12 {
		t.Fatalf("Dot = %g, want 12", d)
	}
	if n := Norm([]float32{3, 4}); n != 5 {
		t.Fatalf("Norm = %g, want 5", n)
	}
	if n := Norm64([]float64{3, 4}); n != 5 {
		t.Fatalf("Norm64 = %g, want 5", n)
	}
}

func TestArgNearestExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	k, d := 17, 9
	centers := make([]float32, k*d)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64())
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float32, d)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		best, bestDist := ArgNearest(x, centers, k, d)
		// Verify against a plain scan.
		wantBest, wantDist := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			dd := SquaredL2(x, centers[c*d:(c+1)*d])
			if dd < wantDist {
				wantDist = dd
				wantBest = c
			}
		}
		if best != wantBest || !almostEqual(bestDist, wantDist, 1e-12) {
			t.Fatalf("ArgNearest=(%d,%g) want (%d,%g)", best, bestDist, wantBest, wantDist)
		}
	}
}

func TestKernelLengthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"SquaredL2": func() { SquaredL2([]float32{1}, []float32{1, 2}) },
		"Dot":       func() { Dot([]float32{1}, []float32{1, 2}) },
		"ArgNearest": func() {
			ArgNearest([]float32{1}, []float32{1, 2}, 1, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSquaredL2Dim32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 32)
	y := make([]float32, 32)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2(x, y)
	}
	benchSink = sink
}

func BenchmarkMulVec32Proj(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := GaussianMat(rng, 14, 32) // typical projection: 14 bits × 32 dims
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	dst := make([]float64, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVec32(m, x, dst)
	}
}

var benchSink float64
