package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSquaredL2Known(t *testing.T) {
	a := []float32{0, 0, 0}
	b := []float32{1, 2, 2}
	if d := SquaredL2(a, b); d != 9 {
		t.Fatalf("SquaredL2 = %g, want 9", d)
	}
	if d := L2(a, b); d != 3 {
		t.Fatalf("L2 = %g, want 3", d)
	}
}

func TestSquaredL2OddLengths(t *testing.T) {
	// Exercise the tail loop for lengths not divisible by 4.
	for _, n := range []int{1, 2, 3, 5, 7, 9} {
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(i)
			b[i] = float32(i + 1)
		}
		if d := SquaredL2(a, b); d != float64(n) {
			t.Fatalf("n=%d SquaredL2=%g want %d", n, d, n)
		}
	}
}

func TestSquaredL2Properties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(32)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		// Symmetry, identity, non-negativity.
		if SquaredL2(a, b) != SquaredL2(b, a) {
			return false
		}
		if SquaredL2(a, a) != 0 {
			return false
		}
		return SquaredL2(a, b) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, -5, 6}
	if d := Dot(a, b); d != 12 {
		t.Fatalf("Dot = %g, want 12", d)
	}
	if n := Norm([]float32{3, 4}); n != 5 {
		t.Fatalf("Norm = %g, want 5", n)
	}
	if n := Norm64([]float64{3, 4}); n != 5 {
		t.Fatalf("Norm64 = %g, want 5", n)
	}
}

// referenceDot/referenceNorm are the pre-unroll single-accumulator
// kernels; the unrolled versions must agree to float64 rounding.
func referenceDot(a, b []float32) float64 {
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

func TestDotNormUnrolledMatchReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(70) // crosses several unroll boundaries
		a := make([]float32, n)
		b := make([]float32, n)
		var ref float64
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		ref = referenceDot(a, b)
		scale := math.Abs(ref) + 1
		if math.Abs(Dot(a, b)-ref) > 1e-12*scale {
			return false
		}
		nref := math.Sqrt(referenceDot(a, a))
		return math.Abs(Norm(a)-nref) <= 1e-12*(nref+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSquaredL2BoundedInfMatchesExact(t *testing.T) {
	// With bound = +Inf the bounded kernel must be bit-for-bit identical
	// to SquaredL2 — the accumulation order is the same, so not even a
	// rounding difference is tolerated.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		return SquaredL2Bounded(a, b, math.Inf(1)) == SquaredL2(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// checkBoundedContract asserts the early-abandon invariant for one
// (a, b, bound) triple: r ≤ bound ⇒ r is the exact distance; r > bound ⇒
// the exact distance is ≥ r (so the candidate provably fails the bound).
func checkBoundedContract(t *testing.T, a, b []float32, bound float64) {
	t.Helper()
	exact := SquaredL2(a, b)
	r := SquaredL2Bounded(a, b, bound)
	if r <= bound {
		if r != exact {
			t.Fatalf("bound=%g: returned %g ≤ bound but exact is %g", bound, r, exact)
		}
	} else {
		if exact < r {
			t.Fatalf("bound=%g: abandoned with partial %g > exact %g (not a lower bound)", bound, r, exact)
		}
	}
}

func TestSquaredL2BoundedContractRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 1 + rng.Intn(96)
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		exact := SquaredL2(a, b)
		// Bounds around the exact distance, including 0 and fractions of
		// it, exercise both completion and abandonment.
		for _, bound := range []float64{0, exact * 0.1, exact * 0.5, exact * 0.99, exact, exact * 1.01, math.Inf(1)} {
			checkBoundedContract(t, a, b, bound)
		}
	}
}

func TestSquaredL2BoundedAdversarialNearBound(t *testing.T) {
	// Adversarial case: the partial sum sits exactly at the bound on a
	// block boundary and the remaining dims contribute nothing. The
	// kernel must NOT abandon (check is strict >), because an exact tie
	// decides heap admission by id and the caller needs the true value.
	a := make([]float32, 32)
	b := make([]float32, 32)
	for i := 0; i < 16; i++ {
		a[i], b[i] = 1, 0 // first block sums to exactly 16
	}
	exact := SquaredL2(a, b)
	if exact != 16 {
		t.Fatalf("setup: exact = %g", exact)
	}
	if r := SquaredL2Bounded(a, b, 16); r != 16 {
		t.Fatalf("partial == bound must complete exactly: got %g", r)
	}
	// One ulp below: now the first block already exceeds the bound and
	// the kernel abandons with a partial ≥ the true distance floor.
	below := math.Nextafter(16, 0)
	if r := SquaredL2Bounded(a, b, below); r <= below {
		t.Fatalf("bound %g: got %g, want abandonment with r > bound", below, r)
	}
	// Mass after the boundary: bound met at block 1 but distance keeps
	// growing; abandonment must still lower-bound the true distance.
	b[20] = 5
	checkBoundedContract(t, a, b, 16)
	if r := SquaredL2Bounded(a, b, 16); r > SquaredL2(a, b) {
		t.Fatalf("partial %g exceeds exact %g", r, SquaredL2(a, b))
	}
}

func FuzzSquaredL2Bounded(f *testing.F) {
	f.Add(uint8(8), int64(1), float64(0.5))
	f.Add(uint8(33), int64(9), float64(0))
	f.Add(uint8(64), int64(3), math.Inf(1))
	f.Fuzz(func(t *testing.T, n uint8, seed int64, bound float64) {
		if n == 0 {
			n = 1
		}
		rng := rand.New(rand.NewSource(seed))
		a := make([]float32, n)
		b := make([]float32, n)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		if math.IsNaN(bound) {
			bound = 0
		}
		exact := SquaredL2(a, b)
		if got := SquaredL2Bounded(a, b, math.Inf(1)); got != exact {
			t.Fatalf("inf bound: %g != %g", got, exact)
		}
		r := SquaredL2Bounded(a, b, bound)
		if r <= bound && r != exact {
			t.Fatalf("bound %g: completed with %g != exact %g", bound, r, exact)
		}
		if r > bound && exact < r {
			t.Fatalf("bound %g: partial %g not a lower bound of %g", bound, r, exact)
		}
	})
}

func TestArgNearestExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	k, d := 17, 9
	centers := make([]float32, k*d)
	for i := range centers {
		centers[i] = float32(rng.NormFloat64())
	}
	for trial := 0; trial < 50; trial++ {
		x := make([]float32, d)
		for i := range x {
			x[i] = float32(rng.NormFloat64())
		}
		best, bestDist := ArgNearest(x, centers, k, d)
		// Verify against a plain scan.
		wantBest, wantDist := -1, math.Inf(1)
		for c := 0; c < k; c++ {
			dd := SquaredL2(x, centers[c*d:(c+1)*d])
			if dd < wantDist {
				wantDist = dd
				wantBest = c
			}
		}
		if best != wantBest || !almostEqual(bestDist, wantDist, 1e-12) {
			t.Fatalf("ArgNearest=(%d,%g) want (%d,%g)", best, bestDist, wantBest, wantDist)
		}
	}
}

func TestKernelLengthPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"SquaredL2": func() { SquaredL2([]float32{1}, []float32{1, 2}) },
		"Dot":       func() { Dot([]float32{1}, []float32{1, 2}) },
		"ArgNearest": func() {
			ArgNearest([]float32{1}, []float32{1, 2}, 1, 2)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s must panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkSquaredL2Dim32(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float32, 32)
	y := make([]float32, 32)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2(x, y)
	}
	benchSink = sink
}

// benchKernelVecs builds a deterministic pair of dim-n vectors.
func benchKernelVecs(n int, seed int64) (x, y []float32) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float32, n)
	y = make([]float32, n)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
		y[i] = float32(rng.NormFloat64())
	}
	return x, y
}

func BenchmarkSquaredL2BoundedDim128Complete(b *testing.B) {
	// Bound above the distance: the kernel always runs to completion, so
	// this measures the pure overhead of the blockwise checks.
	x, y := benchKernelVecs(128, 3)
	bound := SquaredL2(x, y) + 1
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2Bounded(x, y, bound)
	}
	benchSink = sink
}

func BenchmarkSquaredL2BoundedDim128Abandon(b *testing.B) {
	// Tight bound: the kernel abandons after the first block — the
	// steady-state case once the top-k heap is full of near neighbors.
	x, y := benchKernelVecs(128, 4)
	bound := SquaredL2(x[:16], y[:16]) / 2
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SquaredL2Bounded(x, y, bound)
	}
	benchSink = sink
}

func BenchmarkDotDim32(b *testing.B) {
	x, y := benchKernelVecs(32, 5)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Dot(x, y)
	}
	benchSink = sink
}

func BenchmarkNormDim32(b *testing.B) {
	x, _ := benchKernelVecs(32, 6)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Norm(x)
	}
	benchSink = sink
}

func BenchmarkMulVec32Proj(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := GaussianMat(rng, 14, 32) // typical projection: 14 bits × 32 dims
	x := make([]float32, 32)
	for i := range x {
		x[i] = float32(rng.NormFloat64())
	}
	dst := make([]float64, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulVec32(m, x, dst)
	}
}

var benchSink float64
