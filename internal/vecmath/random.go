package vecmath

import (
	"math"
	"math/rand"
)

// GaussianMat returns an r×c matrix of independent N(0,1) samples drawn
// from rng. Used by the LSH baseline and by randomized initializers
// (ITQ's initial rotation).
func GaussianMat(rng *rand.Rand, r, c int) *Mat {
	m := NewMat(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// RandomRotation returns a uniformly random orthogonal c×c matrix,
// obtained by orthonormalizing a Gaussian matrix with modified
// Gram-Schmidt.
func RandomRotation(rng *rand.Rand, c int) *Mat {
	for {
		m := GaussianMat(rng, c, c)
		if gramSchmidt(m) {
			return m
		}
		// Degenerate draw (practically impossible); retry.
	}
}

// gramSchmidt orthonormalizes the columns of m in place using modified
// Gram-Schmidt. It reports false if a column became numerically zero.
func gramSchmidt(m *Mat) bool {
	n, c := m.Rows, m.Cols
	for j := 0; j < c; j++ {
		for k := 0; k < j; k++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += m.At(i, j) * m.At(i, k)
			}
			for i := 0; i < n; i++ {
				m.Set(i, j, m.At(i, j)-dot*m.At(i, k))
			}
		}
		var norm float64
		for i := 0; i < n; i++ {
			norm += m.At(i, j) * m.At(i, j)
		}
		if norm < 1e-24 {
			return false
		}
		inv := 1 / math.Sqrt(norm)
		for i := 0; i < n; i++ {
			m.Set(i, j, m.At(i, j)*inv)
		}
	}
	return true
}
