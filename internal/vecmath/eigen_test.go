package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomSymmetric builds a random symmetric n×n matrix.
func randomSymmetric(rng *rand.Rand, n int) *Mat {
	a := GaussianMat(rng, n, n)
	s := NewMat(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			s.Set(i, j, v)
		}
	}
	return s
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewMatFrom(2, 2, []float64{2, 1, 1, 2})
	vals, vecs := EigenSym(a)
	if !almostEqual(vals[0], 3, 1e-12) || !almostEqual(vals[1], 1, 1e-12) {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
	// First eigenvector must be ±(1,1)/√2.
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	if !almostEqual(math.Abs(v0[0]), 1/math.Sqrt2, 1e-9) || !almostEqual(v0[0], v0[1], 1e-9) {
		t.Fatalf("first eigenvector %v", v0)
	}
}

func TestEigenSymDiagonal(t *testing.T) {
	a := NewMatFrom(3, 3, []float64{5, 0, 0, 0, -2, 0, 0, 0, 9})
	vals, _ := EigenSym(a)
	want := []float64{9, 5, -2}
	for i := range want {
		if !almostEqual(vals[i], want[i], 1e-12) {
			t.Fatalf("vals %v want %v", vals, want)
		}
	}
}

// Property: A·v_i = λ_i·v_i and V orthonormal, for random symmetric A.
func TestEigenSymResidualProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		a := randomSymmetric(rng, n)
		vals, vecs := EigenSym(a)
		scale := a.MaxAbs() + 1
		// Residual per eigenpair.
		for j := 0; j < n; j++ {
			v := make([]float64, n)
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, j)
			}
			av := MulVec(a, v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[j]*v[i]) > 1e-8*scale {
					return false
				}
			}
		}
		// Orthonormality: VᵀV = I.
		vtv := Mul(vecs.T(), vecs)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(vtv.At(i, j)-want) > 1e-9 {
					return false
				}
			}
		}
		// Eigenvalues descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymTraceInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomSymmetric(rng, 8)
	vals, _ := EigenSym(a)
	var trace, sum float64
	for i := 0; i < 8; i++ {
		trace += a.At(i, i)
	}
	for _, v := range vals {
		sum += v
	}
	if !almostEqual(trace, sum, 1e-9) {
		t.Fatalf("trace %g != eigenvalue sum %g", trace, sum)
	}
}

func TestTopEigenvectorsShapeAndOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomSymmetric(rng, 6)
	// Make it positive definite so ordering is meaningful.
	ata := Mul(a, a.T())
	top := TopEigenvectors(ata, 3)
	if top.Rows != 3 || top.Cols != 6 {
		t.Fatalf("shape %dx%d", top.Rows, top.Cols)
	}
	vals, _ := EigenSym(ata)
	// Rayleigh quotient of row r must equal the r-th eigenvalue.
	for r := 0; r < 3; r++ {
		v := top.Row(r)
		av := MulVec(ata, v)
		var rq float64
		for i := range v {
			rq += v[i] * av[i]
		}
		if !almostEqual(rq, vals[r], 1e-8*(vals[0]+1)) {
			t.Fatalf("row %d Rayleigh quotient %g want %g", r, rq, vals[r])
		}
	}
}

func TestEigenSymRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EigenSym must panic on non-square input")
		}
	}()
	EigenSym(NewMat(2, 3))
}
