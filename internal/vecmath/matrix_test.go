package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatAtSetRow(t *testing.T) {
	m := NewMat(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 {
		t.Fatalf("At/Set roundtrip failed: %+v", m)
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must alias the underlying data")
	}
}

func TestNewMatFromValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMatFrom must panic on mismatched length")
		}
	}()
	NewMatFrom(2, 2, []float64{1, 2, 3})
}

func TestTranspose(t *testing.T) {
	m := NewMatFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose shape %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewMatFrom(2, 2, []float64{1, 2, 3, 4})
	b := NewMatFrom(2, 2, []float64{5, 6, 7, 8})
	c := Mul(a, b)
	want := []float64{19, 22, 43, 50}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("Mul got %v want %v", c.Data, want)
		}
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mul must panic on shape mismatch")
		}
	}()
	Mul(NewMat(2, 3), NewMat(2, 3))
}

func TestMulVecMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := GaussianMat(rng, 5, 7)
	x := make([]float64, 7)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	got := MulVec(a, x)
	xm := NewMatFrom(7, 1, append([]float64(nil), x...))
	want := Mul(a, xm)
	for i := range got {
		if !almostEqual(got[i], want.At(i, 0), 1e-12) {
			t.Fatalf("MulVec[%d]=%g want %g", i, got[i], want.At(i, 0))
		}
	}
}

func TestMulVec32MatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := GaussianMat(rng, 4, 6)
	x32 := make([]float32, 6)
	x64 := make([]float64, 6)
	for i := range x32 {
		x32[i] = float32(rng.NormFloat64())
		x64[i] = float64(x32[i])
	}
	dst := make([]float64, 4)
	MulVec32(a, x32, dst)
	want := MulVec(a, x64)
	for i := range dst {
		if !almostEqual(dst[i], want[i], 1e-12) {
			t.Fatalf("MulVec32[%d]=%g want %g", i, dst[i], want[i])
		}
	}
}

func TestIdentityMulIsNoop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := GaussianMat(rng, 4, 4)
	b := Mul(Identity(4), a)
	for i := range a.Data {
		if !almostEqual(a.Data[i], b.Data[i], 1e-15) {
			t.Fatal("I·A != A")
		}
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Two dims, perfectly anti-correlated.
	data := []float32{
		1, -1,
		-1, 1,
		2, -2,
		-2, 2,
	}
	cov, mean := Covariance(data, 4, 2)
	if mean[0] != 0 || mean[1] != 0 {
		t.Fatalf("mean = %v, want zeros", mean)
	}
	// Var = (1+1+4+4)/3 = 10/3, Cov01 = -10/3.
	if !almostEqual(cov.At(0, 0), 10.0/3, 1e-9) || !almostEqual(cov.At(0, 1), -10.0/3, 1e-9) {
		t.Fatalf("cov = %v", cov.Data)
	}
	if cov.At(0, 1) != cov.At(1, 0) {
		t.Fatal("covariance must be symmetric")
	}
}

func TestCovarianceCentersData(t *testing.T) {
	// Shifting the data must not change the covariance.
	rng := rand.New(rand.NewSource(4))
	n, d := 50, 3
	base := make([]float32, n*d)
	shift := make([]float32, n*d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			v := float32(rng.NormFloat64())
			base[i*d+j] = v
			shift[i*d+j] = v + 100
		}
	}
	c1, _ := Covariance(base, n, d)
	c2, m2 := Covariance(shift, n, d)
	for i := range c1.Data {
		if !almostEqual(c1.Data[i], c2.Data[i], 1e-6) {
			t.Fatalf("covariance not shift-invariant: %g vs %g", c1.Data[i], c2.Data[i])
		}
	}
	for _, mv := range m2 {
		if !almostEqual(mv, 100, 1) {
			t.Fatalf("mean should be near 100, got %v", m2)
		}
	}
}

func TestFrobeniusAndMaxAbs(t *testing.T) {
	m := NewMatFrom(2, 2, []float64{3, 0, 0, -4})
	if !almostEqual(m.FrobeniusNorm(), 5, 1e-12) {
		t.Fatalf("fro = %g", m.FrobeniusNorm())
	}
	if m.MaxAbs() != 4 {
		t.Fatalf("maxabs = %g", m.MaxAbs())
	}
}

func TestScaleAdd(t *testing.T) {
	m := NewMatFrom(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	m.Add(NewMatFrom(1, 3, []float64{1, 1, 1}))
	want := []float64{3, 5, 7}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("got %v want %v", m.Data, want)
		}
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		k := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		a := GaussianMat(rng, r, k)
		b := GaussianMat(rng, k, c)
		lhs := Mul(a, b).T()
		rhs := Mul(b.T(), a.T())
		for i := range lhs.Data {
			if !almostEqual(lhs.Data[i], rhs.Data[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkMul measures the dense serial product across input regimes.
// The branchless inner loop (mulRows) traded the old `av == 0` skip for
// straight-line multiply-adds: "dense" is the projection-matrix regime
// the build pipeline runs (where the branch only mispredicted), and
// "zeroheavy" is the regime the skip was supposedly for — compare the
// two to see what the branch drop costs when half the entries really
// are zero.
func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	dense := GaussianMat(rng, 64, 64)
	zeroheavy := GaussianMat(rng, 64, 64)
	for i := range zeroheavy.Data {
		if i%2 == 0 {
			zeroheavy.Data[i] = 0
		}
	}
	rhs := GaussianMat(rng, 64, 64)
	for _, bc := range []struct {
		name string
		a    *Mat
	}{{"dense64", dense}, {"zeroheavy64", zeroheavy}} {
		b.Run(bc.name, func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				sink += Mul(bc.a, rhs).At(0, 0)
			}
			if math.IsNaN(sink) {
				b.Fatal("sink NaN")
			}
		})
	}
}
