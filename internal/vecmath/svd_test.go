package vecmath

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewMatFrom(3, 2, []float64{3, 0, 0, -2, 0, 0})
	_, sigma, _ := SVD(a)
	if !almostEqual(sigma[0], 3, 1e-12) || !almostEqual(sigma[1], 2, 1e-12) {
		t.Fatalf("sigma = %v, want [3 2]", sigma)
	}
}

// Property: U·Σ·Vᵀ reconstructs A, U has orthonormal columns, V orthogonal,
// σ descending and non-negative.
func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + rng.Intn(8)
		r := c + rng.Intn(8)
		a := GaussianMat(rng, r, c)
		u, sigma, v := SVD(a)

		for i := 1; i < len(sigma); i++ {
			if sigma[i] < 0 || sigma[i] > sigma[i-1]+1e-12 {
				return false
			}
		}
		// Reconstruct.
		us := u.Clone()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				us.Set(i, j, us.At(i, j)*sigma[j])
			}
		}
		rec := Mul(us, v.T())
		for i := range a.Data {
			if math.Abs(rec.Data[i]-a.Data[i]) > 1e-8 {
				return false
			}
		}
		// UᵀU = I and VᵀV = I.
		for _, m := range []*Mat{Mul(u.T(), u), Mul(v.T(), v)} {
			for i := 0; i < m.Rows; i++ {
				for j := 0; j < m.Cols; j++ {
					want := 0.0
					if i == j {
						want = 1
					}
					if math.Abs(m.At(i, j)-want) > 1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDSingularValuesMatchEigen(t *testing.T) {
	// σ_i(A)² must equal the eigenvalues of AᵀA.
	rng := rand.New(rand.NewSource(11))
	a := GaussianMat(rng, 7, 4)
	_, sigma, _ := SVD(a)
	vals, _ := EigenSym(Mul(a.T(), a))
	for i := range sigma {
		if !almostEqual(sigma[i]*sigma[i], vals[i], 1e-8*(vals[0]+1)) {
			t.Fatalf("σ²[%d]=%g, eig=%g", i, sigma[i]*sigma[i], vals[i])
		}
	}
}

func TestSpectralNormOrthogonalIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	q := RandomRotation(rng, 5)
	if n := SpectralNorm(q); !almostEqual(n, 1, 1e-9) {
		t.Fatalf("spectral norm of rotation = %g, want 1", n)
	}
}

func TestSpectralNormWideMatrix(t *testing.T) {
	// SpectralNorm must handle rows < cols by transposing internally.
	a := NewMatFrom(1, 3, []float64{3, 4, 0})
	if n := SpectralNorm(a); !almostEqual(n, 5, 1e-9) {
		t.Fatalf("spectral norm = %g, want 5", n)
	}
}

// Property: ‖A·x‖ ≤ σ_max(A)·‖x‖ (Theorem 1 of the paper).
func TestSpectralNormBoundsProjection(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(6)
		d := 1 + rng.Intn(6)
		h := GaussianMat(rng, m, d)
		var sn float64
		if m >= d {
			sn = SpectralNorm(h)
		} else {
			sn = SpectralNorm(h.T())
		}
		x := make([]float64, d)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		hx := MulVec(h, x)
		return Norm64(hx) <= sn*Norm64(x)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProcrustesRecoversRotation(t *testing.T) {
	// If B = A·R for a rotation R, Procrustes must recover R.
	rng := rand.New(rand.NewSource(13))
	a := GaussianMat(rng, 10, 4)
	r := RandomRotation(rng, 4)
	b := Mul(a, r)
	got := Procrustes(a, b)
	for i := range r.Data {
		if math.Abs(got.Data[i]-r.Data[i]) > 1e-8 {
			t.Fatalf("Procrustes did not recover rotation:\n got %v\nwant %v", got.Data, r.Data)
		}
	}
}

func TestProcrustesReturnsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	a := GaussianMat(rng, 8, 3)
	b := GaussianMat(rng, 8, 3)
	r := Procrustes(a, b)
	id := Mul(r.T(), r)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id.At(i, j)-want) > 1e-9 {
				t.Fatalf("RᵀR not identity: %v", id.Data)
			}
		}
	}
}

func TestSVDPanicsOnWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SVD must panic when rows < cols")
		}
	}()
	SVD(NewMat(2, 3))
}

func TestRandomRotationIsOrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, n := range []int{1, 2, 5, 16} {
		q := RandomRotation(rng, n)
		id := Mul(q.T(), q)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(id.At(i, j)-want) > 1e-9 {
					t.Fatalf("n=%d: QᵀQ not identity", n)
				}
			}
		}
	}
}
