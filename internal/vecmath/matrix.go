// Package vecmath provides the dense linear-algebra substrate used by the
// learning-to-hash and vector-quantization trainers, plus the float32
// vector kernels used on the query hot path.
//
// The package is self-contained (stdlib only) because learning to hash
// needs covariance matrices, symmetric eigendecompositions (PCAH, SH),
// and small SVDs (ITQ rotations, OPQ Procrustes updates), none of which
// exist in the Go standard library.
package vecmath

import (
	"fmt"
	"math"
)

// Mat is a dense row-major matrix of float64 values.
type Mat struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMat returns a zeroed r×c matrix.
func NewMat(r, c int) *Mat {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("vecmath: invalid matrix dims %dx%d", r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// NewMatFrom wraps data (len r*c, row-major) in a matrix without copying.
func NewMatFrom(r, c int, data []float64) *Mat {
	if len(data) != r*c {
		panic(fmt.Sprintf("vecmath: data length %d != %d*%d", len(data), r, c))
	}
	return &Mat{Rows: r, Cols: c, Data: data}
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a slice aliasing row i.
func (m *Mat) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	out := NewMat(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose of m as a new matrix.
func (m *Mat) T() *Mat {
	out := NewMat(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out.Data[j*m.Rows+i] = v
		}
	}
	return out
}

// Mul returns the matrix product a·b (the single-worker path of MulP).
func Mul(a, b *Mat) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vecmath: Mul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	mulRows(a, b, out, 0, a.Rows)
	return out
}

// MulVec returns the matrix-vector product m·x.
func MulVec(m *Mat, x []float64) []float64 {
	if m.Cols != len(x) {
		panic(fmt.Sprintf("vecmath: MulVec shape mismatch %dx%d · %d", m.Rows, m.Cols, len(x)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// MulVec32 multiplies an m.Rows×m.Cols float64 matrix by a float32 vector,
// writing the result into dst (len m.Rows). It is the projection kernel of
// the query hot path; dst is reused across queries to avoid allocation.
func MulVec32(m *Mat, x []float32, dst []float64) {
	if m.Cols != len(x) || m.Rows != len(dst) {
		panic(fmt.Sprintf("vecmath: MulVec32 shape mismatch %dx%d · %d -> %d", m.Rows, m.Cols, len(x), len(dst)))
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		var s float64
		for j, v := range row {
			s += v * float64(x[j])
		}
		dst[i] = s
	}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Scale multiplies every element of m by s, in place.
func (m *Mat) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Add adds b to m element-wise, in place.
func (m *Mat) Add(b *Mat) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("vecmath: Add shape mismatch")
	}
	for i, v := range b.Data {
		m.Data[i] += v
	}
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Mat) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the maximum absolute value of any element of m.
func (m *Mat) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Covariance returns the d×d sample covariance of the n×d float32 data
// block (row-major rows of dimension d), after subtracting the column
// means. The returned mean slice has length d. It is the single-worker
// path of CovarianceP.
func Covariance(data []float32, n, d int) (cov *Mat, mean []float64) {
	return CovarianceP(data, n, d, 1)
}
