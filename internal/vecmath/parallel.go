package vecmath

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Deterministic parallel kernels for the build pipeline. Every function
// here obeys one discipline: each output element is owned by exactly one
// worker and is computed with the same inner-loop accumulation order as
// the serial kernel, so results are bit-for-bit identical at any worker
// count (including 1). Worker partitions may change with procs; element
// ownership and per-element evaluation order never do.

// Procs normalizes a parallelism request: values <= 0 mean
// runtime.GOMAXPROCS(0).
func Procs(p int) int {
	if p <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p
}

// minParallelWork is the smallest flop count worth fanning out over
// goroutines; below it the spawn/join overhead dominates. Kernels gate
// on their estimated work, not their row count, so tall-thin products
// (few output rows, huge inner dimension) still parallelize.
const minParallelWork = 1 << 15

// ParallelRanges splits [0,total) into at most procs contiguous ranges
// and runs fn on each, concurrently when procs > 1. fn must only write
// state owned by its range. It is the partitioning primitive of every
// parallel build kernel; callers rely on ranges being contiguous and
// covering [0,total) exactly once.
func ParallelRanges(total, procs int, fn func(lo, hi int)) {
	procs = Procs(procs)
	if procs > total {
		procs = total
	}
	if total <= 0 {
		return
	}
	if procs <= 1 {
		fn(0, total)
		return
	}
	var wg sync.WaitGroup
	chunk := (total + procs - 1) / procs
	for lo := 0; lo < total; lo += chunk {
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// ParallelChunks splits [0,total) into fixed-size chunks that up to
// procs workers pull from a shared counter. Unlike ParallelRanges the
// chunk→worker assignment is scheduling-dependent, so fn must write
// only state owned by its chunk AND compute each element independently
// of which worker runs it — under that discipline the output is still
// bit-for-bit deterministic, while stragglers (e.g. expensive hash
// evaluations) self-balance.
func ParallelChunks(total, chunk, procs int, fn func(lo, hi int)) {
	procs = Procs(procs)
	if total <= 0 {
		return
	}
	if chunk <= 0 {
		chunk = 1
	}
	nchunks := (total + chunk - 1) / chunk
	if procs > nchunks {
		procs = nchunks
	}
	if procs <= 1 {
		fn(0, total)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < procs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * chunk
				hi := lo + chunk
				if hi > total {
					hi = total
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// ParallelWeighted splits [0,total) into at most procs contiguous ranges
// of roughly equal total weight (weight(i) >= 0 is the cost of element
// i) and runs fn on each concurrently. Used where per-row cost is
// non-uniform, e.g. the triangular covariance update.
func ParallelWeighted(total, procs int, weight func(i int) float64, fn func(lo, hi int)) {
	procs = Procs(procs)
	if procs > total {
		procs = total
	}
	if total <= 0 {
		return
	}
	if procs <= 1 {
		fn(0, total)
		return
	}
	var sum float64
	for i := 0; i < total; i++ {
		sum += weight(i)
	}
	if sum <= 0 {
		ParallelRanges(total, procs, fn)
		return
	}
	var wg sync.WaitGroup
	target := sum / float64(procs)
	lo, acc := 0, 0.0
	for i := 0; i < total; i++ {
		acc += weight(i)
		last := i == total-1
		if acc >= target || last {
			hi := i + 1
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				fn(lo, hi)
			}(lo, hi)
			lo, acc = hi, 0
		}
	}
	wg.Wait()
}

// MulP returns the matrix product a·b computed by up to procs workers.
// The output rows are partitioned into contiguous panels, each owned by
// exactly one worker and computed with the serial ikj loop, so the
// result is bit-for-bit identical to Mul at any parallelism.
func MulP(a, b *Mat, procs int) *Mat {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("vecmath: MulP shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMat(a.Rows, b.Cols)
	if a.Rows*a.Cols*b.Cols < minParallelWork {
		procs = 1
	}
	ParallelRanges(a.Rows, procs, func(lo, hi int) {
		mulRows(a, b, out, lo, hi)
	})
	return out
}

// mulRows computes output rows [lo,hi) of a·b in ikj order (stream
// through b rows for cache friendliness). The inner loop is branchless:
// the old `av == 0` skip mispredicted on every element of dense
// projection matrices and cost more than the multiply-adds it saved
// (see BenchmarkMul in matrix_test.go).
func mulRows(a, b, out *Mat, lo, hi int) {
	for i := lo; i < hi; i++ {
		ar := a.Row(i)
		or := out.Row(i)
		for k, av := range ar {
			br := b.Row(k)
			for j, bv := range br {
				or[j] += av * bv
			}
		}
	}
}

// MulBatch32 projects the n×d float32 block through the m×d matrix h
// after subtracting mean (nil means no centering): out is n×m with
// out[i][r] = h_rᵀ·(x_i − mean). Rows are partitioned across up to
// procs workers, each output row owned by one worker, so the result is
// bit-for-bit independent of procs. This is the batched training-side
// companion of MulVec32.
func MulBatch32(data []float32, n, d int, h *Mat, mean []float64, procs int) *Mat {
	if h.Cols != d || len(data) != n*d {
		panic(fmt.Sprintf("vecmath: MulBatch32 shape mismatch %dx%d block · %dx%d", n, d, h.Rows, h.Cols))
	}
	if mean != nil && len(mean) != d {
		panic(fmt.Sprintf("vecmath: MulBatch32 mean length %d != %d", len(mean), d))
	}
	m := h.Rows
	out := NewMat(n, m)
	if n*d*m < minParallelWork {
		procs = 1
	}
	ParallelRanges(n, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := data[i*d : (i+1)*d]
			dst := out.Row(i)
			for r := 0; r < m; r++ {
				hr := h.Row(r)
				var s float64
				if mean == nil {
					for j, hv := range hr {
						s += hv * float64(row[j])
					}
				} else {
					for j, hv := range hr {
						s += hv * (float64(row[j]) - mean[j])
					}
				}
				dst[r] = s
			}
		}
	})
	return out
}

// CovarianceP is Covariance computed by up to procs workers. The d
// output rows are partitioned into contiguous panels weighted by their
// triangular cost (row a updates columns a..d-1); each worker streams
// the data once, re-centering the columns its panel needs, and owns its
// panel's accumulators outright. Every entry (a,b) accumulates its n
// contributions in ascending row order — exactly the serial kernel's
// order — so the result is bit-for-bit identical to Covariance at any
// parallelism.
func CovarianceP(data []float32, n, d, procs int) (cov *Mat, mean []float64) {
	if len(data) != n*d {
		panic(fmt.Sprintf("vecmath: CovarianceP data length %d != %d*%d", len(data), n, d))
	}
	if n < 2 {
		panic("vecmath: CovarianceP needs at least 2 rows")
	}
	mean = make([]float64, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	cov = NewMat(d, d)
	// Only fan out when the triangular update is worth the spawn cost;
	// each worker re-centers its column suffix per data row, so tiny
	// problems are faster on one worker.
	if n*d*(d+1)/2 < minParallelWork {
		procs = 1
	}
	// Row a of the upper triangle costs d-a multiply-adds per data row.
	ParallelWeighted(d, procs, func(a int) float64 { return float64(d - a) }, func(aLo, aHi int) {
		centered := make([]float64, d)
		for i := 0; i < n; i++ {
			row := data[i*d : (i+1)*d]
			for j := aLo; j < d; j++ {
				centered[j] = float64(row[j]) - mean[j]
			}
			for a := aLo; a < aHi; a++ {
				ca := centered[a]
				if ca == 0 {
					continue
				}
				cr := cov.Row(a)
				for b := a; b < d; b++ {
					cr[b] += ca * centered[b]
				}
			}
		}
	})
	inv := 1 / float64(n-1)
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) * inv
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov, mean
}

// ProcrustesP is Procrustes with its two matrix products computed by up
// to procs workers (the SVD between them is serial). Bit-for-bit
// identical to Procrustes at any parallelism.
func ProcrustesP(a, b *Mat, procs int) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("vecmath: ProcrustesP shape mismatch")
	}
	prod := MulP(a.T(), b, procs) // m×m
	u, _, v := SVD(prod)
	return MulP(u, v.T(), procs)
}
