package vecmath

import "math"

// SquaredL2 returns the squared Euclidean distance between a and b.
// It is the evaluation-stage kernel; loops are unrolled four-wide, which
// the compiler turns into reasonable scalar code without breaking
// determinism.
func SquaredL2(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: SquaredL2 length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float64 { return math.Sqrt(SquaredL2(a, b)) }

// boundedBlock is how many dimensions SquaredL2Bounded accumulates
// between partial-sum checks: four 4-wide steps. Checking every
// iteration would serialize the four accumulator chains behind a
// compare; once per 16 dims keeps the ILP of SquaredL2 while still
// abandoning hopeless candidates after at most one block of extra work.
const boundedBlock = 16

// SquaredL2Bounded is SquaredL2 with early abandonment: whenever the
// partial sum crosses a block boundary and already exceeds bound, the
// remaining dimensions are skipped and the partial sum is returned.
//
// The contract callers rely on (the evaluation stage's early-abandon
// invariant):
//
//   - if the returned value r ≤ bound, r is the exact squared distance
//     (bit-for-bit what SquaredL2 returns — the accumulation order is
//     identical, and a completed run never depends on bound);
//   - if r > bound, r is a partial sum, hence a lower bound: the exact
//     squared distance is ≥ r > bound. The candidate can be discarded
//     without affecting any result whose acceptance test is "≤ bound".
//
// With bound = +Inf no check ever fires and the result equals
// SquaredL2(a, b) exactly.
func SquaredL2Bounded(a, b []float32, bound float64) float64 {
	if len(a) != len(b) {
		panic("vecmath: SquaredL2Bounded length mismatch")
	}
	b = b[:len(a)] // bounds-check hint
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+boundedBlock <= len(a); i += boundedBlock {
		for j := i; j < i+boundedBlock; j += 4 {
			d0 := float64(a[j]) - float64(b[j])
			d1 := float64(a[j+1]) - float64(b[j+1])
			d2 := float64(a[j+2]) - float64(b[j+2])
			d3 := float64(a[j+3]) - float64(b[j+3])
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
		if s0+s1+s2+s3 > bound {
			return s0 + s1 + s2 + s3
		}
	}
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Dot returns the dot product of a and b. Unrolled four-wide like
// SquaredL2 (it sits on the QueryProjection retrieval path).
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// Norm returns the Euclidean norm of a. Unrolled four-wide like
// SquaredL2.
func Norm(a []float32) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(a[i])
		s1 += float64(a[i+1]) * float64(a[i+1])
		s2 += float64(a[i+2]) * float64(a[i+2])
		s3 += float64(a[i+3]) * float64(a[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(a[i])
	}
	return math.Sqrt(s0 + s1 + s2 + s3)
}

// Norm64 returns the Euclidean norm of a float64 vector.
func Norm64(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgNearest returns the index of the row of centers (k rows of dimension
// d, row-major) nearest to x in squared Euclidean distance, along with
// that distance. It is the inner loop of k-means and of PQ encoding.
func ArgNearest(x []float32, centers []float32, k, d int) (best int, bestDist float64) {
	if len(x) != d || len(centers) != k*d {
		panic("vecmath: ArgNearest shape mismatch")
	}
	bestDist = math.Inf(1)
	for c := 0; c < k; c++ {
		row := centers[c*d : (c+1)*d]
		var s float64
		for j, v := range row {
			diff := float64(x[j]) - float64(v)
			s += diff * diff
			if s >= bestDist {
				break
			}
		}
		if s < bestDist {
			bestDist = s
			best = c
		}
	}
	return best, bestDist
}
