package vecmath

import "math"

// SquaredL2 returns the squared Euclidean distance between a and b.
// It is the evaluation-stage kernel; loops are unrolled four-wide, which
// the compiler turns into reasonable scalar code without breaking
// determinism.
func SquaredL2(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: SquaredL2 length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		d2 := float64(a[i+2]) - float64(b[i+2])
		d3 := float64(a[i+3]) - float64(b[i+3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// L2 returns the Euclidean distance between a and b.
func L2(a, b []float32) float64 { return math.Sqrt(SquaredL2(a, b)) }

// Dot returns the dot product of a and b.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vecmath: Dot length mismatch")
	}
	var s float64
	for i, v := range a {
		s += float64(v) * float64(b[i])
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float32) float64 {
	var s float64
	for _, v := range a {
		s += float64(v) * float64(v)
	}
	return math.Sqrt(s)
}

// Norm64 returns the Euclidean norm of a float64 vector.
func Norm64(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// ArgNearest returns the index of the row of centers (k rows of dimension
// d, row-major) nearest to x in squared Euclidean distance, along with
// that distance. It is the inner loop of k-means and of PQ encoding.
func ArgNearest(x []float32, centers []float32, k, d int) (best int, bestDist float64) {
	if len(x) != d || len(centers) != k*d {
		panic("vecmath: ArgNearest shape mismatch")
	}
	bestDist = math.Inf(1)
	for c := 0; c < k; c++ {
		row := centers[c*d : (c+1)*d]
		var s float64
		for j, v := range row {
			diff := float64(x[j]) - float64(v)
			s += diff * diff
			if s >= bestDist {
				break
			}
		}
		if s < bestDist {
			bestDist = s
			best = c
		}
	}
	return best, bestDist
}
