package vecmath

import (
	"math"
	"sort"
)

// SVD computes the thin singular value decomposition A = U·diag(σ)·Vᵀ of
// an r×c matrix with r ≥ c, using the one-sided Jacobi method. U is r×c
// with orthonormal columns, V is c×c orthogonal, and the singular values
// are returned in descending order. A is not modified.
//
// For r < c, decompose the transpose and swap U and V at the call site.
func SVD(a *Mat) (u *Mat, sigma []float64, v *Mat) {
	if a.Rows < a.Cols {
		panic("vecmath: SVD requires rows >= cols; transpose first")
	}
	r, c := a.Rows, a.Cols
	// Work on a column-major copy: one-sided Jacobi rotates column pairs.
	w := a.Clone()
	v = Identity(c)

	colDot := func(i, j int) float64 {
		var s float64
		for k := 0; k < r; k++ {
			s += w.At(k, i) * w.At(k, j)
		}
		return s
	}

	const maxSweeps = 60
	eps := 1e-14
	for sweep := 0; sweep < maxSweeps; sweep++ {
		converged := true
		for p := 0; p < c-1; p++ {
			for q := p + 1; q < c; q++ {
				alpha := colDot(p, p)
				beta := colDot(q, q)
				gamma := colDot(p, q)
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) || gamma == 0 {
					continue
				}
				converged = false
				zeta := (beta - alpha) / (2 * gamma)
				t := 1 / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				if zeta < 0 {
					t = -t
				}
				cs := 1 / math.Sqrt(1+t*t)
				sn := cs * t
				for k := 0; k < r; k++ {
					wp, wq := w.At(k, p), w.At(k, q)
					w.Set(k, p, cs*wp-sn*wq)
					w.Set(k, q, sn*wp+cs*wq)
				}
				for k := 0; k < c; k++ {
					vp, vq := v.At(k, p), v.At(k, q)
					v.Set(k, p, cs*vp-sn*vq)
					v.Set(k, q, sn*vp+cs*vq)
				}
			}
		}
		if converged {
			break
		}
	}

	// Singular values are the column norms of the rotated matrix; U's
	// columns are those columns normalized.
	sigma = make([]float64, c)
	for j := 0; j < c; j++ {
		var s float64
		for k := 0; k < r; k++ {
			s += w.At(k, j) * w.At(k, j)
		}
		sigma[j] = math.Sqrt(s)
	}

	order := make([]int, c)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return sigma[order[i]] > sigma[order[j]] })

	u = NewMat(r, c)
	sortedSigma := make([]float64, c)
	sortedV := NewMat(c, c)
	for dst, src := range order {
		sortedSigma[dst] = sigma[src]
		inv := 0.0
		if sigma[src] > 0 {
			inv = 1 / sigma[src]
		}
		for k := 0; k < r; k++ {
			u.Set(k, dst, w.At(k, src)*inv)
		}
		for k := 0; k < c; k++ {
			sortedV.Set(k, dst, v.At(k, src))
		}
	}
	return u, sortedSigma, sortedV
}

// SpectralNorm returns σ_max(a), the largest singular value of a, the
// constant M in Theorem 1 of the paper.
func SpectralNorm(a *Mat) float64 {
	m := a
	if m.Rows < m.Cols {
		m = m.T()
	}
	_, sigma, _ := SVD(m)
	if len(sigma) == 0 {
		return 0
	}
	return sigma[0]
}

// Procrustes solves the orthogonal Procrustes problem: it returns the
// orthogonal matrix R minimizing ‖B − A·R‖_F, i.e. R = U·Vᵀ where
// AᵀB = U·Σ·Vᵀ. Both A and B must be n×m with n ≥ m; R is m×m. This is
// the rotation update used by ITQ and OPQ.
func Procrustes(a, b *Mat) *Mat {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("vecmath: Procrustes shape mismatch")
	}
	prod := Mul(a.T(), b) // m×m
	u, _, v := SVD(prod)
	return Mul(u, v.T())
}
