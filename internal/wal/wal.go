// Package wal implements the write-ahead log of the Add path: an
// append-only file of CRC-framed vector records, flushed to disk before
// an Add is acknowledged and replayed at recovery. One log file covers
// the Adds since the last memtable seal; once the sealed segment's own
// file is durable, the log that covered it is deleted.
//
// Record layout, all little-endian:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload: u64 item id | dim × f32 vector (post-normalization)
//
// Replay treats the first malformed record — short frame, wrong length,
// CRC mismatch — as the torn tail of a crashed append and stops there
// cleanly: the durability contract covers acknowledged Adds only, and
// an acknowledged record was fully written and fsynced before the ack.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// Writer appends records to one log file. Not safe for concurrent use;
// the index serializes appends under its writer lock.
type Writer struct {
	f    *os.File
	path string
	buf  []byte
	n    int64
}

// Create opens a fresh log file at path (which must not already exist —
// log files are never reopened for append; recovery replays and retires
// them).
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Writer{f: f, path: path}, nil
}

// Append writes one record and flushes it to stable storage. When
// Append returns nil the record survives a crash — this is the
// durability point the Add acknowledgment relies on.
func (w *Writer) Append(id uint64, vec []float32) error {
	payload := 8 + 4*len(vec)
	need := 8 + payload
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:], id)
	off := 16
	for _, v := range vec {
		binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
		off += 4
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:need]))
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.n += int64(need)
	return nil
}

// Bytes returns how many bytes have been appended (and synced).
func (w *Writer) Bytes() int64 { return w.n }

// Path returns the log file's path.
func (w *Writer) Path() string { return w.path }

// Close closes the log file. Records are already synced per Append.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Replay reads every intact record of the log at path in order, calling
// fn for each. The vec slice is reused across calls; fn must copy it to
// retain it. A record's payload length must be exactly 8+4*dim.
//
// Returns clean=true when the file ends exactly at a record boundary.
// clean=false means a torn tail was found (a crash mid-append); the
// records before it were all delivered. An error from fn, or a failure
// to read the file at all, aborts the replay.
func Replay(path string, dim int, fn func(id uint64, vec []float32) error) (clean bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("wal: replay: %w", err)
	}
	want := 8 + 4*dim
	vec := make([]float32, dim)
	off := 0
	for {
		if off == len(raw) {
			return true, nil
		}
		if off+8 > len(raw) {
			return false, nil
		}
		plen := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if plen != want || off+8+plen > len(raw) {
			return false, nil
		}
		payload := raw[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return false, nil
		}
		id := binary.LittleEndian.Uint64(payload)
		for i := range vec {
			vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[8+4*i:]))
		}
		if err := fn(id, vec); err != nil {
			return false, err
		}
		off += 8 + plen
	}
}
