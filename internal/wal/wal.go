// Package wal implements the write-ahead log of the mutation path: an
// append-only file of CRC-framed records, flushed to disk before a
// mutation is acknowledged and replayed at recovery. One log file
// covers the mutations since the last memtable seal; once the sealed
// segment's own file (and the tombstone bitmap) is durable, the log
// that covered it is deleted.
//
// Record layout, all little-endian:
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//
// Three payload shapes, told apart by length alone (for any dim ≥ 1 the
// three lengths are distinct, so no flag byte is needed and the legacy
// add frame keeps its exact bytes):
//
//	add:      u64 item id | dim × f32 vector    (8 + 4*dim bytes)
//	add+meta: u64 item id | u64 meta | vector  (16 + 4*dim bytes)
//	delete:   u64 item id                       (8 bytes)
//
// Vectors are post-normalization. Replay treats the first malformed
// record — short frame, wrong length, CRC mismatch — as the torn tail
// of a crashed append and stops there cleanly: the durability contract
// covers acknowledged mutations only, and an acknowledged record was
// fully written and fsynced before the ack.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
)

// Op is the kind of one replayed record.
type Op uint8

const (
	OpAdd Op = iota
	OpDelete
)

// Writer appends records to one log file. Not safe for concurrent use;
// the index serializes appends under its writer lock.
type Writer struct {
	f    *os.File
	path string
	buf  []byte
	n    int64
}

// Create opens a fresh log file at path (which must not already exist —
// log files are never reopened for append; recovery replays and retires
// them).
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	return &Writer{f: f, path: path}, nil
}

// Append writes one add record and flushes it to stable storage. When
// Append returns nil the record survives a crash — this is the
// durability point the Add acknowledgment relies on.
func (w *Writer) Append(id uint64, vec []float32) error {
	return w.appendFrame(id, 0, false, vec)
}

// AppendMeta writes one add record carrying a nonzero metadata word.
// (A zero word uses the legacy add frame — same replay outcome, fewer
// bytes, and bit-identical logs for meta-free workloads.)
func (w *Writer) AppendMeta(id, meta uint64, vec []float32) error {
	return w.appendFrame(id, meta, meta != 0, vec)
}

// AppendDelete writes one delete record and flushes it to stable
// storage — the fsync-before-ack point of the Delete path.
func (w *Writer) AppendDelete(id uint64) error {
	return w.appendFrame(id, 0, false, nil)
}

func (w *Writer) appendFrame(id, meta uint64, withMeta bool, vec []float32) error {
	payload := 8 + 4*len(vec)
	if withMeta {
		payload += 8
	}
	need := 8 + payload
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	b := w.buf[:need]
	binary.LittleEndian.PutUint32(b[0:], uint32(payload))
	binary.LittleEndian.PutUint64(b[8:], id)
	off := 16
	if withMeta {
		binary.LittleEndian.PutUint64(b[16:], meta)
		off = 24
	}
	for _, v := range vec {
		binary.LittleEndian.PutUint32(b[off:], math.Float32bits(v))
		off += 4
	}
	binary.LittleEndian.PutUint32(b[4:], crc32.ChecksumIEEE(b[8:need]))
	if _, err := w.f.Write(b); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	w.n += int64(need)
	return nil
}

// Bytes returns how many bytes have been appended (and synced).
func (w *Writer) Bytes() int64 { return w.n }

// Path returns the log file's path.
func (w *Writer) Path() string { return w.path }

// Close closes the log file. Records are already synced per Append.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// Replay reads every intact record of the log at path in order, calling
// fn for each. For OpAdd, vec is the logged vector (reused across
// calls; fn must copy it to retain it) and meta the metadata word (zero
// for legacy frames). For OpDelete, vec is nil and meta zero. A
// record's payload length must be one of the three shapes for dim.
//
// Returns clean=true when the file ends exactly at a record boundary.
// clean=false means a torn tail was found (a crash mid-append); the
// records before it were all delivered. An error from fn, or a failure
// to read the file at all, aborts the replay.
func Replay(path string, dim int, fn func(op Op, id, meta uint64, vec []float32) error) (clean bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, fmt.Errorf("wal: replay: %w", err)
	}
	addLen := 8 + 4*dim
	metaLen := 16 + 4*dim
	const delLen = 8
	vec := make([]float32, dim)
	off := 0
	for {
		if off == len(raw) {
			return true, nil
		}
		if off+8 > len(raw) {
			return false, nil
		}
		plen := int(binary.LittleEndian.Uint32(raw[off:]))
		crc := binary.LittleEndian.Uint32(raw[off+4:])
		if (plen != addLen && plen != metaLen && plen != delLen) || off+8+plen > len(raw) {
			return false, nil
		}
		payload := raw[off+8 : off+8+plen]
		if crc32.ChecksumIEEE(payload) != crc {
			return false, nil
		}
		id := binary.LittleEndian.Uint64(payload)
		switch plen {
		case delLen:
			if err := fn(OpDelete, id, 0, nil); err != nil {
				return false, err
			}
		default:
			var meta uint64
			vecOff := 8
			if plen == metaLen {
				meta = binary.LittleEndian.Uint64(payload[8:])
				vecOff = 16
			}
			for i := range vec {
				vec[i] = math.Float32frombits(binary.LittleEndian.Uint32(payload[vecOff+4*i:]))
			}
			if err := fn(OpAdd, id, meta, vec); err != nil {
				return false, err
			}
		}
		off += 8 + plen
	}
}
