package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	op   Op
	id   uint64
	meta uint64
	vec  []float32
}

func writeLog(t *testing.T, path string, recs []rec) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r.id, r.vec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func genRecs(n, dim int, seed int64) []rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]rec, n)
	for i := range recs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		recs[i] = rec{id: uint64(100 + i), vec: v}
	}
	return recs
}

func replayAll(t *testing.T, path string, dim int) ([]rec, bool) {
	t.Helper()
	var got []rec
	clean, err := Replay(path, dim, func(op Op, id, meta uint64, vec []float32) error {
		got = append(got, rec{op: op, id: id, meta: meta, vec: append([]float32{}, vec...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, clean
}

func TestWALRoundTrip(t *testing.T) {
	const dim = 7
	path := filepath.Join(t.TempDir(), "wal-0.log")
	recs := genRecs(25, dim, 1)
	writeLog(t, path, recs)

	got, clean := replayAll(t, path, dim)
	if !clean {
		t.Fatal("intact log reported a torn tail")
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i].id != r.id {
			t.Fatalf("record %d id = %d, want %d", i, got[i].id, r.id)
		}
		for j := range r.vec {
			if got[i].vec[j] != r.vec[j] {
				t.Fatalf("record %d vec[%d] not bit-identical", i, j)
			}
		}
	}
}

// TestWALMixedOpsRoundTrip interleaves the three frame shapes — legacy
// add, add+meta, delete — and checks replay returns each op, id, meta
// word and vector bit-identically, in order.
func TestWALMixedOpsRoundTrip(t *testing.T) {
	const dim = 5
	path := filepath.Join(t.TempDir(), "wal-0.log")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	want := []rec{
		{op: OpAdd, id: 10, meta: 0, vec: []float32{1, 2, 3, 4, 5}},
		{op: OpDelete, id: 3},
		{op: OpAdd, id: 11, meta: 0xdeadbeefcafe, vec: []float32{6, 7, 8, 9, 10}},
		{op: OpDelete, id: 10},
		{op: OpAdd, id: 12, meta: 0, vec: []float32{-1, -2, -3, -4, -5}},
	}
	for _, r := range want {
		var err error
		switch r.op {
		case OpAdd:
			err = w.AppendMeta(r.id, r.meta, r.vec)
		case OpDelete:
			err = w.AppendDelete(r.id)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, clean := replayAll(t, path, dim)
	if !clean {
		t.Fatal("intact log reported a torn tail")
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i, r := range want {
		g := got[i]
		if g.op != r.op || g.id != r.id || g.meta != r.meta {
			t.Fatalf("record %d = {op:%d id:%d meta:%#x}, want {op:%d id:%d meta:%#x}",
				i, g.op, g.id, g.meta, r.op, r.id, r.meta)
		}
		if r.op == OpDelete {
			if len(g.vec) != 0 {
				t.Fatalf("record %d: delete delivered a vector", i)
			}
			continue
		}
		for j := range r.vec {
			if g.vec[j] != r.vec[j] {
				t.Fatalf("record %d vec[%d] not bit-identical", i, j)
			}
		}
	}
}

// TestWALZeroMetaUsesLegacyFrame pins the compatibility contract: an
// AppendMeta with a zero word must produce exactly the bytes Append
// produces, so meta-free logs stay bit-identical across versions.
func TestWALZeroMetaUsesLegacyFrame(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "wal-a.log")
	b := filepath.Join(dir, "wal-b.log")
	vec := []float32{1.5, -2.5, 3.25}
	wa, err := Create(a)
	if err != nil {
		t.Fatal(err)
	}
	wa.Append(7, vec)
	wa.Close()
	wb, err := Create(b)
	if err != nil {
		t.Fatal(err)
	}
	wb.AppendMeta(7, 0, vec)
	wb.Close()
	ra, _ := os.ReadFile(a)
	rb, _ := os.ReadFile(b)
	if len(ra) == 0 || string(ra) != string(rb) {
		t.Fatalf("zero-meta frame differs from legacy frame: %d vs %d bytes", len(ra), len(rb))
	}
}

// TestWALDeleteTornTail truncates a delete frame at every byte: the
// partial frame must be discarded as a torn tail, never misparsed.
func TestWALDeleteTornTail(t *testing.T) {
	const dim = 3
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-full.log")
	w, err := Create(full)
	if err != nil {
		t.Fatal(err)
	}
	w.Append(1, []float32{1, 2, 3})
	w.AppendDelete(1)
	w.Close()
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	addFrame := 8 + 8 + 4*dim
	for cut := addFrame + 1; cut < len(raw); cut++ {
		path := filepath.Join(dir, "wal-cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, clean := replayAll(t, path, dim)
		if clean || len(got) != 1 || got[0].op != OpAdd {
			t.Fatalf("cut=%d: got %d records clean=%v, want the add only with a torn tail", cut, len(got), clean)
		}
		os.Remove(path)
	}
}

func TestWALCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeLog(t, path, genRecs(1, 3, 2))
	if _, err := Create(path); err == nil {
		t.Fatal("Create must refuse an existing log file")
	}
}

// TestWALTornTailAtEveryOffset is the crash harness at the record layer:
// a log truncated at any byte offset must replay exactly the records
// whose frames survived in full — never an error, never a short or
// corrupt vector, and clean only at frame boundaries.
func TestWALTornTailAtEveryOffset(t *testing.T) {
	const dim = 3
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-full.log")
	recs := genRecs(12, dim, 3)
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 + 8 + 4*dim
	if len(raw) != frame*len(recs) {
		t.Fatalf("frame size drifted: file %d bytes, want %d", len(raw), frame*len(recs))
	}
	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, "wal-cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, clean := replayAll(t, path, dim)
		wantN := cut / frame
		if len(got) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if wantClean := cut%frame == 0; clean != wantClean {
			t.Fatalf("cut=%d: clean=%v, want %v", cut, clean, wantClean)
		}
		for i := 0; i < wantN; i++ {
			if got[i].id != recs[i].id {
				t.Fatalf("cut=%d: record %d id = %d, want %d", cut, i, got[i].id, recs[i].id)
			}
		}
		os.Remove(path)
	}
}

// TestWALCorruptionStopsReplay flips one byte in each record in turn:
// the CRC must catch it, and replay must deliver exactly the records
// before the corruption.
func TestWALCorruptionStopsReplay(t *testing.T) {
	const dim = 4
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-full.log")
	recs := genRecs(8, dim, 4)
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 + 8 + 4*dim
	for i := range recs {
		mut := append([]byte{}, raw...)
		mut[i*frame+frame/2] ^= 0xff
		path := filepath.Join(dir, "wal-bad.log")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, clean := replayAll(t, path, dim)
		if clean {
			t.Fatalf("corruption in record %d not detected", i)
		}
		if len(got) != i {
			t.Fatalf("corruption in record %d: replayed %d records, want %d", i, len(got), i)
		}
		os.Remove(path)
	}
}

func TestWALWrongDimRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeLog(t, path, genRecs(3, 5, 5))
	// Replaying with the wrong dim means every payload length is wrong:
	// zero records, torn tail.
	got, clean := replayAll(t, path, 6)
	if clean || len(got) != 0 {
		t.Fatalf("wrong-dim replay returned %d records, clean=%v", len(got), clean)
	}
}

// FuzzReplay feeds arbitrary bytes to the replayer: it must never
// panic, never deliver a vector of the wrong length, and always
// terminate.
func FuzzReplay(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "wal-seed.log")
	w, err := Create(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(1, []float32{1, 2, 3})
	w.Append(2, []float32{4, 5, 6})
	w.AppendDelete(1)
	w.AppendMeta(3, 0x42, []float32{7, 8, 9})
	w.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, 3)
	f.Add([]byte{}, 1)
	f.Add(seed[:len(seed)-5], 3)
	f.Add(seed[:len(seed)-13], 3) // cuts into the meta frame
	f.Add(seed, 2)                // wrong dim: every frame length misparses
	f.Fuzz(func(t *testing.T, raw []byte, dim int) {
		if dim < 1 || dim > 64 {
			return
		}
		path := filepath.Join(t.TempDir(), "wal-fuzz.log")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		_, err := Replay(path, dim, func(op Op, id, meta uint64, vec []float32) error {
			switch op {
			case OpAdd:
				if len(vec) != dim {
					t.Fatalf("replayed vector has %d dims, want %d", len(vec), dim)
				}
			case OpDelete:
				if vec != nil || meta != 0 {
					t.Fatalf("delete record delivered vec=%v meta=%d", vec, meta)
				}
			default:
				t.Fatalf("unknown op %d", op)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay returned an error for readable input: %v", err)
		}
	})
}
