package wal

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

type rec struct {
	id  uint64
	vec []float32
}

func writeLog(t *testing.T, path string, recs []rec) {
	t.Helper()
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r.id, r.vec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func genRecs(n, dim int, seed int64) []rec {
	rng := rand.New(rand.NewSource(seed))
	recs := make([]rec, n)
	for i := range recs {
		v := make([]float32, dim)
		for j := range v {
			v[j] = float32(rng.NormFloat64())
		}
		recs[i] = rec{id: uint64(100 + i), vec: v}
	}
	return recs
}

func replayAll(t *testing.T, path string, dim int) ([]rec, bool) {
	t.Helper()
	var got []rec
	clean, err := Replay(path, dim, func(id uint64, vec []float32) error {
		got = append(got, rec{id: id, vec: append([]float32{}, vec...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got, clean
}

func TestWALRoundTrip(t *testing.T) {
	const dim = 7
	path := filepath.Join(t.TempDir(), "wal-0.log")
	recs := genRecs(25, dim, 1)
	writeLog(t, path, recs)

	got, clean := replayAll(t, path, dim)
	if !clean {
		t.Fatal("intact log reported a torn tail")
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range recs {
		if got[i].id != r.id {
			t.Fatalf("record %d id = %d, want %d", i, got[i].id, r.id)
		}
		for j := range r.vec {
			if got[i].vec[j] != r.vec[j] {
				t.Fatalf("record %d vec[%d] not bit-identical", i, j)
			}
		}
	}
}

func TestWALCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeLog(t, path, genRecs(1, 3, 2))
	if _, err := Create(path); err == nil {
		t.Fatal("Create must refuse an existing log file")
	}
}

// TestWALTornTailAtEveryOffset is the crash harness at the record layer:
// a log truncated at any byte offset must replay exactly the records
// whose frames survived in full — never an error, never a short or
// corrupt vector, and clean only at frame boundaries.
func TestWALTornTailAtEveryOffset(t *testing.T) {
	const dim = 3
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-full.log")
	recs := genRecs(12, dim, 3)
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 + 8 + 4*dim
	if len(raw) != frame*len(recs) {
		t.Fatalf("frame size drifted: file %d bytes, want %d", len(raw), frame*len(recs))
	}
	for cut := 0; cut <= len(raw); cut++ {
		path := filepath.Join(dir, "wal-cut.log")
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, clean := replayAll(t, path, dim)
		wantN := cut / frame
		if len(got) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantN)
		}
		if wantClean := cut%frame == 0; clean != wantClean {
			t.Fatalf("cut=%d: clean=%v, want %v", cut, clean, wantClean)
		}
		for i := 0; i < wantN; i++ {
			if got[i].id != recs[i].id {
				t.Fatalf("cut=%d: record %d id = %d, want %d", cut, i, got[i].id, recs[i].id)
			}
		}
		os.Remove(path)
	}
}

// TestWALCorruptionStopsReplay flips one byte in each record in turn:
// the CRC must catch it, and replay must deliver exactly the records
// before the corruption.
func TestWALCorruptionStopsReplay(t *testing.T) {
	const dim = 4
	dir := t.TempDir()
	full := filepath.Join(dir, "wal-full.log")
	recs := genRecs(8, dim, 4)
	writeLog(t, full, recs)
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	frame := 8 + 8 + 4*dim
	for i := range recs {
		mut := append([]byte{}, raw...)
		mut[i*frame+frame/2] ^= 0xff
		path := filepath.Join(dir, "wal-bad.log")
		if err := os.WriteFile(path, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, clean := replayAll(t, path, dim)
		if clean {
			t.Fatalf("corruption in record %d not detected", i)
		}
		if len(got) != i {
			t.Fatalf("corruption in record %d: replayed %d records, want %d", i, len(got), i)
		}
		os.Remove(path)
	}
}

func TestWALWrongDimRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal-0.log")
	writeLog(t, path, genRecs(3, 5, 5))
	// Replaying with the wrong dim means every payload length is wrong:
	// zero records, torn tail.
	got, clean := replayAll(t, path, 6)
	if clean || len(got) != 0 {
		t.Fatalf("wrong-dim replay returned %d records, clean=%v", len(got), clean)
	}
}

// FuzzReplay feeds arbitrary bytes to the replayer: it must never
// panic, never deliver a vector of the wrong length, and always
// terminate.
func FuzzReplay(f *testing.F) {
	dir := f.TempDir()
	seedPath := filepath.Join(dir, "wal-seed.log")
	w, err := Create(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	w.Append(1, []float32{1, 2, 3})
	w.Append(2, []float32{4, 5, 6})
	w.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, 3)
	f.Add([]byte{}, 1)
	f.Add(seed[:len(seed)-5], 3)
	f.Fuzz(func(t *testing.T, raw []byte, dim int) {
		if dim < 1 || dim > 64 {
			return
		}
		path := filepath.Join(t.TempDir(), "wal-fuzz.log")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		_, err := Replay(path, dim, func(id uint64, vec []float32) error {
			if len(vec) != dim {
				t.Fatalf("replayed vector has %d dims, want %d", len(vec), dim)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("replay returned an error for readable input: %v", err)
		}
	})
}
