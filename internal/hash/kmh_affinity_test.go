package hash

import (
	"math/rand"
	"testing"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

func TestHammingInt(t *testing.T) {
	cases := []struct{ a, b, want int }{
		{0, 0, 0}, {0, 1, 1}, {0b1010, 0b0101, 4}, {7, 4, 2},
	}
	for _, c := range cases {
		if got := hammingInt(c.a, c.b); got != c.want {
			t.Fatalf("hammingInt(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAffinityScaleClosedForm(t *testing.T) {
	// Two codewords with indices 0 and 1 (Hamming 1) at distance 3:
	// optimal s is exactly 3.
	centroids := []float32{0, 0, 3, 0}
	counts := []int{5, 5}
	if s := affinityScale(centroids, 2, 2, counts); s != 3 {
		t.Fatalf("scale = %g, want 3", s)
	}
}

func TestRefineAffinityReducesAffinityError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, dims, k = 600, 4, 8
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 3)
	}
	plain, err := cluster.KMeans(data, n, dims, k, 20, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	counts := assignCounts(data, n, dims, plain, k)
	before := affinityError(plain, k, dims, counts, affinityScale(plain, k, dims, counts))

	refined := make([]float32, len(plain))
	copy(refined, plain)
	refineAffinity(data, n, dims, refined, k, 10, 10, 1)
	counts2 := assignCounts(data, n, dims, refined, k)
	after := affinityError(refined, k, dims, counts2, affinityScale(refined, k, dims, counts2))

	if after >= before {
		t.Fatalf("affinity error did not decrease: %g -> %g", before, after)
	}
	// And quantization must not collapse: error stays within a factor
	// of the plain k-means error.
	eq1 := cluster.QuantizationError(data, n, dims, plain, k)
	eq2 := cluster.QuantizationError(data, n, dims, refined, k)
	if eq2 > 3*eq1 {
		t.Fatalf("refinement destroyed quantization: %g -> %g", eq1, eq2)
	}
}

func assignCounts(data []float32, n, dims int, centroids []float32, k int) []int {
	counts := make([]int, k)
	for i := 0; i < n; i++ {
		best, _ := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
		counts[best]++
	}
	return counts
}

func TestRefineAffinityNoopOnZeroLambda(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n, dims, k = 100, 3, 4
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	cents, err := cluster.KMeans(data, n, dims, k, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	orig := make([]float32, len(cents))
	copy(orig, cents)
	refineAffinity(data, n, dims, cents, k, 0, 10, 1)
	refineAffinity(data, n, dims, cents, k, 10, 0, 1)
	for i := range cents {
		if cents[i] != orig[i] {
			t.Fatal("refineAffinity modified centroids with lambda/sweeps = 0")
		}
	}
}

func TestKMHAffinityImprovesNeighborBitAgreement(t *testing.T) {
	// With affinity-preserving codewords, geometrically close codewords
	// get close binary indices, so flipping one bit of a code should
	// land in a *nearby* cell. Measure: average distance between each
	// codeword and its 1-bit-flip neighbors, affinity on vs off — the
	// refined codebook must not be worse.
	const n, d, bits = 800, 8, 8
	data := trainData(t, n, d, 61)
	affOn, err := (KMH{SubspaceBits: 4, Iterations: 15, Affinity: 10, AffinitySweeps: 10}).Train(data, n, d, bits, 62)
	if err != nil {
		t.Fatal(err)
	}
	affOff, err := (KMH{SubspaceBits: 4, Iterations: 15, Affinity: -1}).Train(data, n, d, bits, 62)
	if err != nil {
		t.Fatal(err)
	}
	flipDist := func(h Hasher) float64 {
		kh := h.(*kmhHasher)
		var total float64
		var count int
		for _, sub := range kh.subs {
			k := 1 << uint(kh.bitsPerSS)
			for i := 0; i < k; i++ {
				for b := 0; b < kh.bitsPerSS; b++ {
					j := i ^ (1 << uint(b))
					total += vecmath.L2(sub.centroids[i*sub.dims:(i+1)*sub.dims], sub.centroids[j*sub.dims:(j+1)*sub.dims])
					count++
				}
			}
		}
		return total / float64(count)
	}
	on, off := flipDist(affOn), flipDist(affOff)
	if on > off*1.02 {
		t.Fatalf("affinity refinement made 1-bit flips jump farther: %g vs %g", on, off)
	}
	t.Logf("avg 1-bit-flip codeword distance: affinity on %.3f, off %.3f", on, off)
}
