package hash

import (
	"fmt"

	"gqr/internal/vecmath"
)

// PCAH is principal component analysis hashing: the hash vectors are the
// top-m eigenvectors of the data covariance and codes are the signs of
// the centered projections. It is the cheapest learner in the paper's
// lineup (Table 2) and the one GQR boosts to OPQ-level quality
// (Figure 17).
type PCAH struct {
	// Procs bounds the worker count of the covariance kernel; <= 0
	// means GOMAXPROCS. Results are bit-for-bit identical at any
	// setting.
	Procs int
}

// Name implements Learner.
func (PCAH) Name() string { return "pcah" }

// Train implements Learner. The seed is unused: PCAH is deterministic.
func (t PCAH) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	if bits > d {
		return nil, fmt.Errorf("hash: pcah needs bits (%d) <= dim (%d)", bits, d)
	}
	cov, mean := vecmath.CovarianceP(data, n, d, t.Procs)
	h := vecmath.TopEigenvectors(cov, bits)
	return newProjHasher("pcah", h, mean), nil
}
