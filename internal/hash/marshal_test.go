package hash

import (
	"testing"
)

func TestMarshalRoundTripAllHashers(t *testing.T) {
	const n, d, bits = 300, 16, 8
	data := trainData(t, n, d, 31)
	for _, l := range allLearners() {
		h, err := l.Train(data, n, d, bits, 32)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		blob, err := Marshal(h)
		if err != nil {
			t.Fatalf("%s: marshal: %v", l.Name(), err)
		}
		h2, err := Unmarshal(blob)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", l.Name(), err)
		}
		if h2.Name() != h.Name() || h2.Bits() != h.Bits() {
			t.Fatalf("%s: identity lost: %s/%d", l.Name(), h2.Name(), h2.Bits())
		}
		costs1 := make([]float64, bits)
		costs2 := make([]float64, bits)
		for i := 0; i < 50; i++ {
			x := data[i*d : (i+1)*d]
			if h.Code(x) != h2.Code(x) {
				t.Fatalf("%s: codes differ after round trip", l.Name())
			}
			c1 := h.QueryProjection(x, costs1)
			c2 := h2.QueryProjection(x, costs2)
			if c1 != c2 {
				t.Fatalf("%s: query codes differ after round trip", l.Name())
			}
			for b := range costs1 {
				if costs1[b] != costs2[b] {
					t.Fatalf("%s: flipping costs differ after round trip", l.Name())
				}
			}
		}
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	const n, d, bits = 100, 8, 6
	data := trainData(t, n, d, 33)
	h, err := (ITQ{Iterations: 5}).Train(data, n, d, bits, 34)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	// Empty input.
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("empty blob must be rejected")
	}
	// Unknown tag.
	bad := append([]byte{99}, blob[1:]...)
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("unknown tag must be rejected")
	}
	// Truncations at every prefix length must error, not panic.
	for cut := 1; cut < len(blob); cut += 7 {
		if _, err := Unmarshal(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestUnmarshalRejectsInconsistentKMH(t *testing.T) {
	const n, d, bits = 200, 8, 8
	data := trainData(t, n, d, 35)
	h, err := (KMH{SubspaceBits: 2, Iterations: 5}).Train(data, n, d, bits, 36)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the bits field (offset 1..4 after the tag byte).
	blob[1] = 63
	if _, err := Unmarshal(blob); err == nil {
		t.Fatal("inconsistent kmh header must be rejected")
	}
}
