package hash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gqr/internal/dataset"
	"gqr/internal/vecmath"
)

// trainData builds a small training corpus with correlated structure.
func trainData(t testing.TB, n, d int, seed int64) []float32 {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "train", N: n, Dim: d, Clusters: 4, LatentDim: d / 4, Seed: seed,
	})
	return ds.Vectors
}

func allLearners() []Learner {
	return []Learner{LSH{}, PCAH{}, ITQ{Iterations: 10}, SH{}, KMH{SubspaceBits: 4, Iterations: 8}, SSH{Pairs: 200, Candidates: 10}}
}

func TestRegistry(t *testing.T) {
	for _, name := range Algorithms() {
		l, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if l.Name() != name {
			t.Fatalf("registry name mismatch: %q vs %q", l.Name(), name)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName must reject unknown names")
	}
}

func TestTrainValidation(t *testing.T) {
	data := trainData(t, 100, 16, 1)
	for _, l := range allLearners() {
		if _, err := l.Train(data, 100, 16, 0, 1); err == nil {
			t.Fatalf("%s: must reject bits=0", l.Name())
		}
		if _, err := l.Train(data, 100, 16, 65, 1); err == nil {
			t.Fatalf("%s: must reject bits>64", l.Name())
		}
		if _, err := l.Train(data[:10], 100, 16, 8, 1); err == nil {
			t.Fatalf("%s: must reject short data", l.Name())
		}
	}
	if _, err := (PCAH{}).Train(data, 100, 16, 32, 1); err == nil {
		t.Fatal("pcah: must reject bits > dim")
	}
	if _, err := (ITQ{}).Train(data, 100, 16, 32, 1); err == nil {
		t.Fatal("itq: must reject bits > dim")
	}
	if _, err := (KMH{SubspaceBits: 5}).Train(data, 100, 16, 12, 1); err == nil {
		t.Fatal("kmh: must reject bits not divisible by subspace bits")
	}
}

func TestAllHashersBasicContract(t *testing.T) {
	const n, d, bits = 300, 16, 8
	data := trainData(t, n, d, 2)
	for _, l := range allLearners() {
		h, err := l.Train(data, n, d, bits, 3)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		if h.Bits() != bits {
			t.Fatalf("%s: Bits=%d want %d", l.Name(), h.Bits(), bits)
		}
		costs := make([]float64, bits)
		for i := 0; i < 20; i++ {
			x := data[i*d : (i+1)*d]
			code := h.Code(x)
			code2 := h.QueryProjection(x, costs)
			if code != code2 {
				t.Fatalf("%s: Code and QueryProjection disagree: %b vs %b", l.Name(), code, code2)
			}
			if bits < 64 && code >= 1<<uint(bits) {
				t.Fatalf("%s: code %b uses more than %d bits", l.Name(), code, bits)
			}
			for bi, c := range costs {
				if c < 0 || math.IsNaN(c) {
					t.Fatalf("%s: negative/NaN flipping cost %g at bit %d", l.Name(), c, bi)
				}
			}
		}
	}
}

func TestHashersAreDeterministic(t *testing.T) {
	const n, d, bits = 200, 12, 8
	data := trainData(t, n, d, 4)
	for _, l := range allLearners() {
		h1, err1 := l.Train(data, n, d, bits, 5)
		h2, err2 := l.Train(data, n, d, bits, 5)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: %v %v", l.Name(), err1, err2)
		}
		for i := 0; i < 30; i++ {
			x := data[i*d : (i+1)*d]
			if h1.Code(x) != h2.Code(x) {
				t.Fatalf("%s: training not deterministic", l.Name())
			}
		}
	}
}

func TestCodesPreserveSimilarity(t *testing.T) {
	// Near-duplicate vectors must agree on far more bits than random
	// pairs, for every learner: the defining property of
	// similarity-preserving hashing (paper §2.1).
	const n, d, bits = 1000, 16, 16
	data := trainData(t, n, d, 6)
	rng := rand.New(rand.NewSource(7))
	for _, l := range allLearners() {
		h, err := l.Train(data, n, d, bits, 8)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		var nearBits, randBits int
		const trials = 200
		for i := 0; i < trials; i++ {
			a := rng.Intn(n)
			x := data[a*d : (a+1)*d]
			// Perturb slightly.
			y := make([]float32, d)
			for j := range y {
				y[j] = x[j] + float32(rng.NormFloat64()*0.01)
			}
			nearBits += popcount(h.Code(x) ^ h.Code(y))
			b := rng.Intn(n)
			randBits += popcount(h.Code(x) ^ h.Code(data[b*d:(b+1)*d]))
		}
		if nearBits*3 > randBits {
			t.Fatalf("%s: near pairs differ in %d bits vs %d for random pairs", l.Name(), nearBits, randBits)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func TestProjHasherCostsMatchProjection(t *testing.T) {
	const n, d, bits = 300, 12, 8
	data := trainData(t, n, d, 9)
	h, err := (PCAH{}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	ph := h.(*projHasher)
	proj := make([]float64, bits)
	costs := make([]float64, bits)
	for i := 0; i < 20; i++ {
		x := data[i*d : (i+1)*d]
		ph.Project(x, proj)
		code := h.QueryProjection(x, costs)
		for b := 0; b < bits; b++ {
			if math.Abs(costs[b]-math.Abs(proj[b])) > 1e-12 {
				t.Fatalf("cost[%d]=%g |proj|=%g", b, costs[b], math.Abs(proj[b]))
			}
			wantBit := proj[b] >= 0
			gotBit := code&(1<<uint(b)) != 0
			if wantBit != gotBit {
				t.Fatalf("bit %d: sign %v but code bit %v", b, wantBit, gotBit)
			}
		}
	}
}

func TestITQReducesQuantizationError(t *testing.T) {
	// ITQ's rotation must not increase the quantization error relative
	// to plain PCAH (that is its objective).
	const n, d, bits = 800, 16, 10
	data := trainData(t, n, d, 10)
	pcah, err := (PCAH{}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	itq, err := (ITQ{Iterations: 30}).Train(data, n, d, bits, 1)
	if err != nil {
		t.Fatal(err)
	}
	qerr := func(h Hasher) float64 {
		ph := h.(*projHasher)
		proj := make([]float64, bits)
		var e float64
		for i := 0; i < n; i++ {
			ph.Project(data[i*d:(i+1)*d], proj)
			for _, v := range proj {
				s := signOf(v)
				e += (v - s) * (v - s)
			}
		}
		return e
	}
	if qerr(itq) > qerr(pcah)*1.001 {
		t.Fatalf("ITQ error %g exceeds PCAH error %g", qerr(itq), qerr(pcah))
	}
}

func TestPCAHMatrixRowsOrthonormal(t *testing.T) {
	const n, d, bits = 400, 12, 6
	data := trainData(t, n, d, 11)
	h, err := (PCAH{}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	m := h.(*projHasher).Matrix()
	g := vecmath.Mul(m, m.T())
	for i := 0; i < bits; i++ {
		for j := 0; j < bits; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(g.At(i, j)-want) > 1e-8 {
				t.Fatalf("PCAH rows not orthonormal: G[%d][%d]=%g", i, j, g.At(i, j))
			}
		}
	}
}

func TestITQMatrixRowsOrthonormal(t *testing.T) {
	// H = Rᵀ·E with R orthogonal and E orthonormal rows, so H's rows
	// must be orthonormal too: this makes σ_max(H)=1, i.e. Theorem 1's
	// M = 1 for ITQ.
	const n, d, bits = 400, 12, 6
	data := trainData(t, n, d, 12)
	h, err := (ITQ{Iterations: 10}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	ph := h.(*projHasher)
	if sn := SpectralNormBound(ph); math.Abs(sn-1) > 1e-8 {
		t.Fatalf("ITQ spectral norm %g, want 1", sn)
	}
}

// Theorem 2 property test: µ·QD(q,b(o)) ≤ ‖o−q‖ for random query/item
// pairs, for all projection hashers, with µ = 1/(M·√m).
func TestTheorem2LowerBound(t *testing.T) {
	const n, d, bits = 500, 12, 8
	data := trainData(t, n, d, 13)
	for _, l := range []Learner{LSH{}, PCAH{}, ITQ{Iterations: 10}, SSH{Pairs: 100}} {
		h, err := l.Train(data, n, d, bits, 14)
		if err != nil {
			t.Fatalf("%s: %v", l.Name(), err)
		}
		ph := h.(*projHasher)
		mu := 1 / (SpectralNormBound(ph) * math.Sqrt(bits))
		costs := make([]float64, bits)
		f := func(qi, oi uint16) bool {
			q := data[int(qi%n)*d : (int(qi%n)+1)*d]
			o := data[int(oi%n)*d : (int(oi%n)+1)*d]
			codeQ := h.QueryProjection(q, costs)
			codeO := h.Code(o)
			var qd float64
			diff := codeQ ^ codeO
			for b := 0; b < bits; b++ {
				if diff&(1<<uint(b)) != 0 {
					qd += costs[b]
				}
			}
			return mu*qd <= vecmath.L2(q, o)+1e-9
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Fatalf("%s: Theorem 2 violated: %v", l.Name(), err)
		}
	}
}

func TestKMHQueryCostsSemantics(t *testing.T) {
	// For KMH, flipping cost of bit i must equal the distance increase
	// of re-quantizing to the bit-flipped codeword.
	const n, d, bits = 400, 16, 8
	data := trainData(t, n, d, 15)
	h, err := (KMH{SubspaceBits: 4, Iterations: 8}).Train(data, n, d, bits, 16)
	if err != nil {
		t.Fatal(err)
	}
	kh := h.(*kmhHasher)
	costs := make([]float64, bits)
	for i := 0; i < 30; i++ {
		q := data[i*d : (i+1)*d]
		code := h.QueryProjection(q, costs)
		for s, sub := range kh.subs {
			qs := q[sub.offset : sub.offset+sub.dims]
			k := 1 << uint(kh.bitsPerSS)
			idx := int(code>>uint(s*kh.bitsPerSS)) & (k - 1)
			base := vecmath.L2(qs, sub.centroids[idx*sub.dims:(idx+1)*sub.dims])
			for b := 0; b < kh.bitsPerSS; b++ {
				flipped := idx ^ (1 << uint(b))
				want := vecmath.L2(qs, sub.centroids[flipped*sub.dims:(flipped+1)*sub.dims]) - base
				if math.Abs(costs[s*kh.bitsPerSS+b]-want) > 1e-9 {
					t.Fatalf("subspace %d bit %d: cost %g want %g", s, b, costs[s*kh.bitsPerSS+b], want)
				}
			}
		}
	}
}

func TestKMHCodeIsNearestCodeword(t *testing.T) {
	const n, d, bits = 300, 8, 8
	data := trainData(t, n, d, 17)
	h, err := (KMH{SubspaceBits: 2, Iterations: 8}).Train(data, n, d, bits, 18)
	if err != nil {
		t.Fatal(err)
	}
	kh := h.(*kmhHasher)
	for i := 0; i < 20; i++ {
		x := data[i*d : (i+1)*d]
		code := h.Code(x)
		for s, sub := range kh.subs {
			k := 1 << uint(kh.bitsPerSS)
			idx := int(code>>uint(s*kh.bitsPerSS)) & (k - 1)
			xs := x[sub.offset : sub.offset+sub.dims]
			best, _ := vecmath.ArgNearest(xs, sub.centroids, k, sub.dims)
			if idx != best {
				t.Fatalf("subspace %d: code index %d but nearest codeword %d", s, idx, best)
			}
		}
	}
}

func TestSHBitsUseLowestFrequencies(t *testing.T) {
	const n, d, bits = 500, 12, 8
	data := trainData(t, n, d, 19)
	h, err := (SH{}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	sh := h.(*shHasher)
	if len(sh.funcs) != bits {
		t.Fatalf("%d eigenfunctions, want %d", len(sh.funcs), bits)
	}
	for i := 1; i < bits; i++ {
		if sh.funcs[i].eig < sh.funcs[i-1].eig {
			t.Fatal("eigenfunctions not sorted by eigenvalue")
		}
	}
	// The very first eigenfunction must be the k=1 mode of the
	// direction with the widest projected range (smallest eigenvalue).
	if sh.funcs[0].k != 1 {
		t.Fatalf("first eigenfunction has mode %d, want 1", sh.funcs[0].k)
	}
}

func TestSHProjectionInUnitRange(t *testing.T) {
	// Φ values are sines, so flipping costs must lie in [0,1].
	const n, d, bits = 300, 10, 8
	data := trainData(t, n, d, 20)
	h, err := (SH{}).Train(data, n, d, bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	costs := make([]float64, bits)
	for i := 0; i < 50; i++ {
		h.QueryProjection(data[i*d:(i+1)*d], costs)
		for b, c := range costs {
			if c < 0 || c > 1+1e-12 {
				t.Fatalf("SH cost[%d]=%g outside [0,1]", b, c)
			}
		}
	}
}

func TestCodeString(t *testing.T) {
	if s := CodeString(0b1011, 6); s != "110100" {
		t.Fatalf("CodeString = %q", s)
	}
}

func TestLSHIgnoresDataBeyondMean(t *testing.T) {
	// Two different datasets with the same mean must produce identical
	// LSH hashers (same seed): LSH is data-oblivious by definition.
	d1 := trainData(t, 100, 8, 21)
	d2 := make([]float32, len(d1))
	// Mirror around the mean: same mean, different data.
	mean := meanOf(d1, 100, 8)
	for i := 0; i < 100; i++ {
		for j := 0; j < 8; j++ {
			d2[i*8+j] = float32(2*mean[j]) - d1[i*8+j]
		}
	}
	h1, _ := (LSH{}).Train(d1, 100, 8, 8, 22)
	h2, _ := (LSH{}).Train(d2, 100, 8, 8, 22)
	x := d1[:8]
	if h1.Code(x) != h2.Code(x) {
		t.Fatal("LSH must depend on the data only through its mean")
	}
}
