package hash

import (
	"fmt"
	"math/rand"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

// KMH is K-means hashing (He, Wen & Sun): the vector space is split into
// bits/SubspaceBits contiguous subspaces; each learns 2^SubspaceBits
// codewords with k-means, and an item's code is the concatenation of the
// binary indices of its nearest codewords. Unlike the hyperplane
// learners, quantization cells are Voronoi regions, so there is no
// projected vector; the paper's appendix defines the flipping cost of
// bit i as dist(q, c_q') − dist(q, c_q), where c_q is the codeword q is
// quantized to and c_q' the codeword whose binary index differs only in
// bit i. GQR consumes those costs unchanged.
//
// Codewords are trained with plain Lloyd iterations followed by the
// original's affinity-preserving refinement (kmh_affinity.go), which
// aligns inter-codeword Euclidean distances with the scaled Hamming
// distances of their binary indices; set Affinity negative to fall back
// to plain k-means (the abl-kmh-affinity experiment compares the two).
type KMH struct {
	// SubspaceBits is the number of bits per subspace b (codewords per
	// subspace = 2^b). Zero means 4.
	SubspaceBits int
	// Iterations is the number of Lloyd iterations. Zero means 25.
	Iterations int
	// Affinity is the λ weight of the affinity-preserving term;
	// negative disables the refinement, zero means the default 3
	// (calibrated so the refinement improves recall at every budget —
	// see abl-kmh-affinity; much larger values distort quantization).
	Affinity float64
	// AffinitySweeps is the number of refinement alternations. Zero
	// means 10.
	AffinitySweeps int
	// Procs bounds the worker count of the per-subspace k-means and
	// affinity refinement (assignment scans fan out over points, sum
	// accumulation over centroids); <= 0 means GOMAXPROCS. Results are
	// bit-for-bit identical at any setting.
	Procs int
}

// Name implements Learner.
func (KMH) Name() string { return "kmh" }

type kmhSubspace struct {
	dims      int       // dimensions in this subspace
	offset    int       // starting dimension in the full vector
	centroids []float32 // 2^b rows of length dims
}

// kmhHasher holds no mutable state after training (per-subspace
// distance scratch lives on the stack), so it is safe for concurrent
// use.
type kmhHasher struct {
	bits      int
	bitsPerSS int
	dim       int
	subs      []kmhSubspace
}

// maxSubspaceBits bounds codewords per subspace at 2^8: beyond that,
// per-subspace k-means is impractical and the stack scratch would grow.
const maxSubspaceBits = 8

// Train implements Learner.
func (t KMH) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	b := t.SubspaceBits
	if b <= 0 {
		b = 4
	}
	if b > maxSubspaceBits {
		return nil, fmt.Errorf("hash: kmh subspace bits (%d) exceed %d", b, maxSubspaceBits)
	}
	if bits%b != 0 {
		return nil, fmt.Errorf("hash: kmh needs bits (%d) divisible by subspace bits (%d)", bits, b)
	}
	m := bits / b // subspaces
	if m > d {
		return nil, fmt.Errorf("hash: kmh needs at least %d dims for %d subspaces, have %d", m, m, d)
	}
	k := 1 << uint(b)
	if n < k {
		return nil, fmt.Errorf("hash: kmh needs at least %d training points for %d codewords", k, k)
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 25
	}

	rng := rand.New(rand.NewSource(seed))
	subs := make([]kmhSubspace, m)
	// Contiguous, near-equal subspace split.
	offset := 0
	for s := 0; s < m; s++ {
		dims := d / m
		if s < d%m {
			dims++
		}
		subs[s] = kmhSubspace{dims: dims, offset: offset}
		offset += dims

		// Extract the subspace view of the training data.
		sub := make([]float32, n*dims)
		for i := 0; i < n; i++ {
			copy(sub[i*dims:(i+1)*dims], data[i*d+subs[s].offset:i*d+subs[s].offset+dims])
		}
		centroids, err := cluster.KMeansP(sub, n, dims, k, iters, rng, t.Procs)
		if err != nil {
			return nil, fmt.Errorf("hash: kmh subspace %d: %w", s, err)
		}
		lambda := t.Affinity
		if lambda == 0 {
			lambda = 3
		}
		sweeps := t.AffinitySweeps
		if sweeps <= 0 {
			sweeps = 10
		}
		if lambda > 0 {
			refineAffinity(sub, n, dims, centroids, k, lambda, sweeps, t.Procs)
		}
		subs[s].centroids = centroids
	}
	return &kmhHasher{bits: bits, bitsPerSS: b, dim: d, subs: subs}, nil
}

func (h *kmhHasher) Name() string { return "kmh" }
func (h *kmhHasher) Bits() int    { return h.bits }

func (h *kmhHasher) Code(x []float32) uint64 {
	if len(x) != h.dim {
		panic(fmt.Sprintf("hash: vector dim %d != trained dim %d", len(x), h.dim))
	}
	var code uint64
	k := 1 << uint(h.bitsPerSS)
	for s, sub := range h.subs {
		xs := x[sub.offset : sub.offset+sub.dims]
		best, _ := vecmath.ArgNearest(xs, sub.centroids, k, sub.dims)
		code |= uint64(best) << uint(s*h.bitsPerSS)
	}
	return code
}

// QueryProjection returns q's code and the appendix flipping costs:
// for bit i in subspace s, costs[i] = dist(q, c') − dist(q, c) with c the
// nearest codeword of the subspace and c' the codeword at the
// bit-flipped index. Distances are Euclidean (not squared), matching the
// appendix's dist(·,·). Costs are non-negative because c is the nearest
// codeword.
func (h *kmhHasher) QueryProjection(x []float32, costs []float64) uint64 {
	if len(costs) != h.bits {
		panic(fmt.Sprintf("hash: costs length %d != bits %d", len(costs), h.bits))
	}
	if len(x) != h.dim {
		panic(fmt.Sprintf("hash: vector dim %d != trained dim %d", len(x), h.dim))
	}
	var code uint64
	var dbuf [1 << maxSubspaceBits]float64
	k := 1 << uint(h.bitsPerSS)
	for s, sub := range h.subs {
		xs := x[sub.offset : sub.offset+sub.dims]
		best := 0
		for c := 0; c < k; c++ {
			dbuf[c] = vecmath.L2(xs, sub.centroids[c*sub.dims:(c+1)*sub.dims])
			if dbuf[c] < dbuf[best] {
				best = c
			}
		}
		code |= uint64(best) << uint(s*h.bitsPerSS)
		for b := 0; b < h.bitsPerSS; b++ {
			flipped := best ^ (1 << uint(b))
			costs[s*h.bitsPerSS+b] = dbuf[flipped] - dbuf[best]
		}
	}
	return code
}
