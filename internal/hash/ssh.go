package hash

import (
	"fmt"
	"math/rand"

	"gqr/internal/vecmath"
)

// SSH is semi-supervised hashing (Wang, Kumar & Chang), the fourth
// learner family the paper lists (§1). The hash directions maximize
//
//	tr{ Wᵀ ( X_l·S·X_lᵀ + η·X·Xᵀ ) W }
//
// where S holds +1 for must-link (similar) pairs and −1 for cannot-link
// pairs over the labelled subset X_l, and the η-weighted term is the
// unsupervised PCA regularizer.
//
// The original uses explicit label pairs; absent labels, this
// implementation synthesizes weak supervision from the data itself
// (self-supervised pseudo-pairs): for sampled anchor points, the
// nearest of a sampled candidate set becomes a must-link pair and the
// farthest a cannot-link pair. This preserves exactly what the
// reproduction needs — a learner whose objective mixes a pairwise
// supervision matrix with a PCA term — without external labels.
type SSH struct {
	// Pairs is the number of pseudo-pairs of each kind (default 500).
	Pairs int
	// Candidates is the candidate-set size per anchor (default 20).
	Candidates int
	// Eta weighs the unsupervised regularizer (default 1).
	Eta float64
	// Procs bounds the worker count of the covariance kernel; <= 0
	// means GOMAXPROCS. The rng-driven pseudo-pair loop stays serial so
	// results are bit-for-bit identical at any setting.
	Procs int
}

// Name implements Learner.
func (SSH) Name() string { return "ssh" }

// Train implements Learner.
func (t SSH) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	if bits > d {
		return nil, fmt.Errorf("hash: ssh needs bits (%d) <= dim (%d)", bits, d)
	}
	pairs := t.Pairs
	if pairs <= 0 {
		pairs = 500
	}
	cands := t.Candidates
	if cands <= 0 {
		cands = 20
	}
	if cands > n-1 {
		cands = n - 1
	}
	eta := t.Eta
	if eta == 0 {
		eta = 1
	}

	mean := meanOf(data, n, d)
	rng := rand.New(rand.NewSource(seed))

	// Supervision term: accumulate Σ s_ij·(x_i−µ)(x_j−µ)ᵀ over
	// pseudo-pairs, symmetrized.
	sup := vecmath.NewMat(d, d)
	ci := make([]float64, d)
	cj := make([]float64, d)
	addPair := func(i, j int, sign float64) {
		xi := data[i*d : (i+1)*d]
		xj := data[j*d : (j+1)*d]
		for c := 0; c < d; c++ {
			ci[c] = float64(xi[c]) - mean[c]
			cj[c] = float64(xj[c]) - mean[c]
		}
		for a := 0; a < d; a++ {
			row := sup.Row(a)
			va := sign * ci[a]
			for b := 0; b < d; b++ {
				row[b] += va * cj[b]
			}
		}
	}
	for p := 0; p < pairs; p++ {
		anchor := rng.Intn(n)
		xa := data[anchor*d : (anchor+1)*d]
		bestID, worstID := -1, -1
		bestDist, worstDist := 0.0, -1.0
		for c := 0; c < cands; c++ {
			j := rng.Intn(n)
			if j == anchor {
				continue
			}
			dist := vecmath.SquaredL2(xa, data[j*d:(j+1)*d])
			if bestID < 0 || dist < bestDist {
				bestID, bestDist = j, dist
			}
			if dist > worstDist {
				worstID, worstDist = j, dist
			}
		}
		if bestID < 0 || worstID < 0 || bestID == worstID {
			continue
		}
		addPair(anchor, bestID, 1)   // must-link
		addPair(anchor, worstID, -1) // cannot-link
	}
	// Symmetrize (pairs are ordered draws).
	for a := 0; a < d; a++ {
		for b := a + 1; b < d; b++ {
			v := (sup.At(a, b) + sup.At(b, a)) / 2
			sup.Set(a, b, v)
			sup.Set(b, a, v)
		}
	}
	// Normalize by pair count so η means the same at any Pairs setting.
	if pairs > 0 {
		sup.Scale(1 / float64(pairs))
	}

	// Unsupervised regularizer: η·covariance.
	cov, _ := vecmath.CovarianceP(data, n, d, t.Procs)
	cov.Scale(eta)
	sup.Add(cov)

	h := vecmath.TopEigenvectors(sup, bits)
	return newProjHasher("ssh", h, mean), nil
}
