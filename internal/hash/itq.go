package hash

import (
	"fmt"
	"math/rand"

	"gqr/internal/vecmath"
)

// ITQ is iterative quantization (Gong & Lazebnik): PCA projection
// followed by an orthogonal rotation R learned to minimize the
// quantization error ‖B − V·R‖_F, alternating between B = sign(V·R) and
// the Procrustes update of R. It is the paper's default learner.
type ITQ struct {
	// Iterations is the number of alternating updates; the original
	// paper uses 50. Zero means 50.
	Iterations int
	// Procs bounds the worker count of the training kernels
	// (covariance, batch projection, Procrustes products); <= 0 means
	// GOMAXPROCS. Results are bit-for-bit identical at any setting.
	Procs int
}

// Name implements Learner.
func (ITQ) Name() string { return "itq" }

// Train implements Learner.
func (t ITQ) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	if bits > d {
		return nil, fmt.Errorf("hash: itq needs bits (%d) <= dim (%d)", bits, d)
	}
	iters := t.Iterations
	if iters <= 0 {
		iters = 50
	}
	procs := t.Procs

	cov, mean := vecmath.CovarianceP(data, n, d, procs)
	e := vecmath.TopEigenvectors(cov, bits) // bits×d

	// Project the (centered) training data: V = Xc·Eᵀ, n×bits.
	v := vecmath.MulBatch32(data, n, d, e, mean, procs)

	rng := rand.New(rand.NewSource(seed))
	r := vecmath.RandomRotation(rng, bits)
	vr := vecmath.MulP(v, r, procs)
	b := vecmath.NewMat(n, bits)
	for it := 0; it < iters; it++ {
		// B = sign(V·R).
		for i := range vr.Data {
			b.Data[i] = signOf(vr.Data[i])
		}
		// R = argmin ‖B − V·R‖ over orthogonal R (Procrustes).
		r = vecmath.ProcrustesP(v, b, procs)
		vr = vecmath.MulP(v, r, procs)
	}

	// Fold the rotation into the hashing matrix: p(x) = Rᵀ·E·(x−mean),
	// so H = Rᵀ·E (bits×d) and Theorem 1 applies directly.
	h := vecmath.Mul(r.T(), e)
	return newProjHasher("itq", h, mean), nil
}
