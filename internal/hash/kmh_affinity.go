package hash

import (
	"math"

	"gqr/internal/cluster"
	"gqr/internal/vecmath"
)

// Affinity-preserving refinement for K-means hashing (He, Wen & Sun,
// CVPR 2013). Plain k-means makes codewords quantize well but their
// binary indices carry no geometry; KMH's extra objective aligns the
// Euclidean distance between codewords with (scaled) Hamming distance
// between their indices:
//
//	E_aff = Σ_{i<j} w_ij · (‖c_i − c_j‖ − s·√h(i,j))²
//
// with w_ij = n_i·n_j (bucket-population products) and h the Hamming
// distance of the indices. Minimizing E_quan + λ·E_aff alternates
// between assignments, a closed-form scale update
//
//	s = Σ w_ij·d_ij·√h_ij / Σ w_ij·h_ij,
//
// and per-centroid fixed-point updates derived from ∇E = 0:
//
//	c_i ← [Σ_{x∈i} x + 2λ·Σ_j w_ij·(1 − s√h_ij/d_ij)·c_j] /
//	      [n_i + 2λ·Σ_j w_ij·(1 − s√h_ij/d_ij)]

// affinityError computes E_aff for a codebook given the current scale.
func affinityError(centroids []float32, k, dims int, counts []int, s float64) float64 {
	var e float64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			w := float64(counts[i]) * float64(counts[j])
			if w == 0 {
				continue
			}
			d := vecmath.L2(centroids[i*dims:(i+1)*dims], centroids[j*dims:(j+1)*dims])
			target := s * math.Sqrt(float64(hammingInt(i, j)))
			diff := d - target
			e += w * diff * diff
		}
	}
	return e
}

func hammingInt(a, b int) int {
	x := a ^ b
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

// affinityScale solves the closed-form s update.
func affinityScale(centroids []float32, k, dims int, counts []int) float64 {
	var num, den float64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			w := float64(counts[i]) * float64(counts[j])
			if w == 0 {
				continue
			}
			h := float64(hammingInt(i, j))
			d := vecmath.L2(centroids[i*dims:(i+1)*dims], centroids[j*dims:(j+1)*dims])
			num += w * d * math.Sqrt(h)
			den += w * h
		}
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// refineAffinity runs the affinity-preserving alternation on one
// subspace codebook, in place. data is the n×dims subspace block;
// lambda weighs E_aff (per-pair, normalized below by n² so the two
// objective terms are comparable at any dataset size). The assignment
// scan fans out over points and the sum accumulation over centroids
// (cluster.AccumulateByCentroid), so the refinement is bit-for-bit
// identical at any procs.
func refineAffinity(data []float32, n, dims int, centroids []float32, k int, lambda float64, sweeps, procs int) {
	if lambda <= 0 || sweeps <= 0 {
		return
	}
	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dims)
	// Normalize the pair weights so λ is scale-free: w_ij = n_i·n_j/n,
	// which makes λ·Σ_j w_ij comparable to the quantization term's n_i
	// at any dataset size.
	norm := 1 / float64(n)

	for sweep := 0; sweep < sweeps; sweep++ {
		// Assignment step (standard nearest-centroid).
		vecmath.ParallelRanges(n, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				best, _ := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
				assign[i] = best
			}
		})
		cluster.AccumulateByCentroid(data, n, dims, assign, counts, sums, k, procs)
		s := affinityScale(centroids, k, dims, counts)

		// Per-centroid fixed-point update.
		newCent := make([]float32, len(centroids))
		copy(newCent, centroids)
		for i := 0; i < k; i++ {
			num := make([]float64, dims)
			copy(num, sums[i*dims:(i+1)*dims])
			den := float64(counts[i])
			ci := centroids[i*dims : (i+1)*dims]
			for j := 0; j < k; j++ {
				if j == i {
					continue
				}
				w := float64(counts[i]) * float64(counts[j]) * norm
				if w == 0 {
					continue
				}
				cj := centroids[j*dims : (j+1)*dims]
				d := vecmath.L2(ci, cj)
				if d == 0 {
					continue
				}
				target := s * math.Sqrt(float64(hammingInt(i, j)))
				coeff := 2 * lambda * w * (1 - target/d)
				for c := 0; c < dims; c++ {
					num[c] += coeff * float64(cj[c])
				}
				den += coeff
			}
			if den <= 1e-12 {
				continue // degenerate; keep the centroid
			}
			// Damped update: the fixed point is not a contraction in
			// general, so blend toward it for stability.
			const alpha = 0.5
			dst := newCent[i*dims : (i+1)*dims]
			for c := 0; c < dims; c++ {
				dst[c] = float32((1-alpha)*float64(ci[c]) + alpha*num[c]/den)
			}
		}
		copy(centroids, newCent)
	}
}
