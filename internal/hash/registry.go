package hash

import "fmt"

// ByName returns the learner registered under the given algorithm name.
// Recognized names: "lsh", "pcah", "itq", "sh", "kmh", "ssh".
func ByName(name string) (Learner, error) {
	switch name {
	case "lsh":
		return LSH{}, nil
	case "pcah":
		return PCAH{}, nil
	case "itq":
		return ITQ{}, nil
	case "sh":
		return SH{}, nil
	case "kmh":
		return KMH{}, nil
	case "ssh":
		return SSH{}, nil
	default:
		return nil, fmt.Errorf("hash: unknown learning algorithm %q", name)
	}
}

// Algorithms lists the registered learner names.
func Algorithms() []string { return []string{"lsh", "pcah", "itq", "sh", "kmh", "ssh"} }
