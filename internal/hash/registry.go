package hash

import "fmt"

// ByName returns the learner registered under the given algorithm name.
// Recognized names: "lsh", "pcah", "itq", "sh", "kmh", "ssh".
func ByName(name string) (Learner, error) {
	switch name {
	case "lsh":
		return LSH{}, nil
	case "pcah":
		return PCAH{}, nil
	case "itq":
		return ITQ{}, nil
	case "sh":
		return SH{}, nil
	case "kmh":
		return KMH{}, nil
	case "ssh":
		return SSH{}, nil
	default:
		return nil, fmt.Errorf("hash: unknown learning algorithm %q", name)
	}
}

// Algorithms lists the registered learner names.
func Algorithms() []string { return []string{"lsh", "pcah", "itq", "sh", "kmh", "ssh"} }

// WithProcs returns a copy of the learner with its worker bound set.
// Every registered learner trains bit-for-bit identically at any procs,
// so this only changes training speed. Unknown learner types are
// returned unchanged.
func WithProcs(l Learner, procs int) Learner {
	switch t := l.(type) {
	case LSH:
		t.Procs = procs
		return t
	case PCAH:
		t.Procs = procs
		return t
	case ITQ:
		t.Procs = procs
		return t
	case SH:
		t.Procs = procs
		return t
	case KMH:
		t.Procs = procs
		return t
	case SSH:
		t.Procs = procs
		return t
	default:
		return l
	}
}
