package hash

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"gqr/internal/vecmath"
)

// Binary serialization of trained hashers, used by index persistence.
// The format is versioned by a one-byte type tag; all integers are
// little-endian uint32/uint64 and floats are IEEE-754 bits.

const (
	tagProj byte = 1
	tagSH   byte = 2
	tagKMH  byte = 3
)

// Marshal encodes a trained hasher produced by this package.
func Marshal(h Hasher) ([]byte, error) {
	var buf bytes.Buffer
	switch t := h.(type) {
	case *projHasher:
		buf.WriteByte(tagProj)
		writeString(&buf, t.name)
		writeMat(&buf, t.h)
		writeF64s(&buf, t.mean)
	case *shHasher:
		buf.WriteByte(tagSH)
		writeMat(&buf, t.e)
		writeF64s(&buf, t.mean)
		writeU32(&buf, uint32(len(t.funcs)))
		for _, f := range t.funcs {
			writeU32(&buf, uint32(f.dim))
			writeU32(&buf, uint32(f.k))
			writeF64(&buf, f.lo)
			writeF64(&buf, f.hi)
			writeF64(&buf, f.eig)
			writeF64(&buf, f.freq)
		}
	case *kmhHasher:
		buf.WriteByte(tagKMH)
		writeU32(&buf, uint32(t.bits))
		writeU32(&buf, uint32(t.bitsPerSS))
		writeU32(&buf, uint32(t.dim))
		writeU32(&buf, uint32(len(t.subs)))
		for _, s := range t.subs {
			writeU32(&buf, uint32(s.dims))
			writeU32(&buf, uint32(s.offset))
			writeF32s(&buf, s.centroids)
		}
	default:
		return nil, fmt.Errorf("hash: cannot marshal hasher type %T", h)
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes a hasher previously encoded with Marshal.
func Unmarshal(data []byte) (Hasher, error) {
	r := bytes.NewReader(data)
	tag, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("hash: unmarshal: %w", err)
	}
	switch tag {
	case tagProj:
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		m, err := readMat(r)
		if err != nil {
			return nil, err
		}
		mean, err := readF64s(r)
		if err != nil {
			return nil, err
		}
		if len(mean) != m.Cols {
			return nil, fmt.Errorf("hash: unmarshal: mean length %d != dim %d", len(mean), m.Cols)
		}
		if m.Rows < 1 || m.Rows > MaxBits {
			return nil, fmt.Errorf("hash: unmarshal: invalid code length %d", m.Rows)
		}
		return newProjHasher(name, m, mean), nil
	case tagSH:
		e, err := readMat(r)
		if err != nil {
			return nil, err
		}
		mean, err := readF64s(r)
		if err != nil {
			return nil, err
		}
		if len(mean) != e.Cols {
			return nil, fmt.Errorf("hash: unmarshal: mean length %d != dim %d", len(mean), e.Cols)
		}
		nf, err := readU32(r)
		if err != nil {
			return nil, err
		}
		if nf < 1 || nf > MaxBits {
			return nil, fmt.Errorf("hash: unmarshal: invalid eigenfunction count %d", nf)
		}
		funcs := make([]shFunc, nf)
		for i := range funcs {
			var f shFunc
			var dim32, k32 uint32
			if dim32, err = readU32(r); err != nil {
				return nil, err
			}
			if k32, err = readU32(r); err != nil {
				return nil, err
			}
			f.dim, f.k = int(dim32), int(k32)
			if f.dim >= e.Rows {
				return nil, fmt.Errorf("hash: unmarshal: eigenfunction dim %d out of range", f.dim)
			}
			for _, dst := range []*float64{&f.lo, &f.hi, &f.eig, &f.freq} {
				if *dst, err = readF64(r); err != nil {
					return nil, err
				}
			}
			funcs[i] = f
		}
		return &shHasher{e: e, mean: mean, funcs: funcs}, nil
	case tagKMH:
		var bits, bps, dim, ns uint32
		var err error
		if bits, err = readU32(r); err != nil {
			return nil, err
		}
		if bps, err = readU32(r); err != nil {
			return nil, err
		}
		if dim, err = readU32(r); err != nil {
			return nil, err
		}
		if ns, err = readU32(r); err != nil {
			return nil, err
		}
		if bits < 1 || bits > MaxBits || bps < 1 || bps > maxSubspaceBits || ns == 0 || int(bits) != int(bps)*int(ns) {
			return nil, fmt.Errorf("hash: unmarshal: inconsistent kmh header bits=%d bps=%d subs=%d", bits, bps, ns)
		}
		subs := make([]kmhSubspace, ns)
		for i := range subs {
			var dims, off uint32
			if dims, err = readU32(r); err != nil {
				return nil, err
			}
			if off, err = readU32(r); err != nil {
				return nil, err
			}
			cents, err := readF32s(r)
			if err != nil {
				return nil, err
			}
			if len(cents) != (1<<bps)*int(dims) {
				return nil, fmt.Errorf("hash: unmarshal: kmh subspace %d codebook size %d", i, len(cents))
			}
			subs[i] = kmhSubspace{dims: int(dims), offset: int(off), centroids: cents}
		}
		return &kmhHasher{bits: int(bits), bitsPerSS: int(bps), dim: int(dim), subs: subs}, nil
	default:
		return nil, fmt.Errorf("hash: unmarshal: unknown hasher tag %d", tag)
	}
}

// ---- primitive helpers -------------------------------------------------

func writeU32(w *bytes.Buffer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func readU32(r *bytes.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("hash: unmarshal: %w", err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeF64(w *bytes.Buffer, v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	w.Write(b[:])
}

func readF64(r *bytes.Reader) (float64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("hash: unmarshal: %w", err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), nil
}

func writeString(w *bytes.Buffer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readString(r *bytes.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("hash: unmarshal: implausible string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", fmt.Errorf("hash: unmarshal: %w", err)
	}
	return string(b), nil
}

func writeF64s(w *bytes.Buffer, v []float64) {
	writeU32(w, uint32(len(v)))
	for _, x := range v {
		writeF64(w, x)
	}
}

func readF64s(r *bytes.Reader) ([]float64, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len()/8 {
		return nil, fmt.Errorf("hash: unmarshal: truncated float64 block (%d declared)", n)
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = readF64(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func writeF32s(w *bytes.Buffer, v []float32) {
	writeU32(w, uint32(len(v)))
	var b [4]byte
	for _, x := range v {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(x))
		w.Write(b[:])
	}
}

func readF32s(r *bytes.Reader) ([]float32, error) {
	n, err := readU32(r)
	if err != nil {
		return nil, err
	}
	if int(n) > r.Len()/4 {
		return nil, fmt.Errorf("hash: unmarshal: truncated float32 block (%d declared)", n)
	}
	out := make([]float32, n)
	var b [4]byte
	for i := range out {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return nil, fmt.Errorf("hash: unmarshal: %w", err)
		}
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[:]))
	}
	return out, nil
}

func writeMat(w *bytes.Buffer, m *vecmath.Mat) {
	writeU32(w, uint32(m.Rows))
	writeU32(w, uint32(m.Cols))
	for _, v := range m.Data {
		writeF64(w, v)
	}
}

func readMat(r *bytes.Reader) (*vecmath.Mat, error) {
	rows, err := readU32(r)
	if err != nil {
		return nil, err
	}
	cols, err := readU32(r)
	if err != nil {
		return nil, err
	}
	// Cap each dimension before multiplying: two huge uint32s can
	// overflow int64 and slip past the size check (found by fuzzing).
	const maxDim = 1 << 20
	if rows == 0 || cols == 0 || rows > maxDim || cols > maxDim ||
		int64(rows)*int64(cols) > int64(r.Len()/8) {
		return nil, fmt.Errorf("hash: unmarshal: implausible matrix %dx%d", rows, cols)
	}
	m := vecmath.NewMat(int(rows), int(cols))
	for i := range m.Data {
		if m.Data[i], err = readF64(r); err != nil {
			return nil, err
		}
	}
	return m, nil
}
