package hash

import (
	"math/rand"

	"gqr/internal/vecmath"
)

// LSH is the data-oblivious baseline: sign random projections (SimHash
// for Euclidean data). Each hash vector is an independent N(0,1) draw;
// the data is centered at its mean so bits are roughly balanced. The
// paper contrasts L2H against this family (Section 1).
type LSH struct {
	// Procs is accepted for uniformity with the other learners but
	// unused: LSH training only estimates the data mean (O(n·d), rng-
	// driven projection draws are serial), which is too cheap to fan
	// out.
	Procs int
}

// Name implements Learner.
func (LSH) Name() string { return "lsh" }

// Train implements Learner. Training only estimates the data mean; the
// projection itself ignores the data, which is the defining property of
// LSH.
func (LSH) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	h := vecmath.GaussianMat(rng, bits, d)
	return newProjHasher("lsh", h, meanOf(data, n, d)), nil
}
