package hash

import (
	"fmt"
	"testing"
)

// Training-cost micro-benchmarks, one per learner, on a 5k×32 block
// with the experiments' default iteration budgets (Table 2's cost
// comparison at micro scale).
func BenchmarkTrain(b *testing.B) {
	const n, d, bits = 5000, 32, 9
	data := trainData(b, n, d, 99)
	for _, l := range []Learner{
		LSH{},
		PCAH{},
		ITQ{Iterations: 30},
		SH{},
		KMH{SubspaceBits: 3, Iterations: 15},
		SSH{},
	} {
		b.Run(l.Name(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := l.Train(data, n, d, bits, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryProjection measures the per-query hashing cost (code +
// flipping costs), the fixed prologue of every search.
func BenchmarkQueryProjection(b *testing.B) {
	const n, d, bits = 2000, 32, 14
	data := trainData(b, n, d, 98)
	for _, l := range []Learner{PCAH{}, SH{}, KMH{SubspaceBits: 2, Iterations: 10}} {
		h, err := l.Train(data, n, d, bits, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s-%dbit", l.Name(), bits), func(b *testing.B) {
			costs := make([]float64, bits)
			b.ReportAllocs()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink ^= h.QueryProjection(data[(i%n)*d:(i%n+1)*d], costs)
			}
			benchCode = sink
		})
	}
}

var benchCode uint64
