// Package hash implements the learning stage of learning to hash (L2H):
// training algorithms that map d-dimensional vectors to m-bit binary
// codes. It provides the learners the paper evaluates — LSH (the
// data-oblivious baseline), PCAH, ITQ, SH (spectral hashing), KMH
// (K-means hashing) and SSH (semi-supervised hashing) — behind one
// Hasher interface that exposes exactly
// what the querying methods in package query need: the binary code of a
// vector and the per-bit flipping costs that define quantization
// distance.
package hash

import (
	"fmt"

	"gqr/internal/vecmath"
)

// MaxBits is the longest supported code length; codes are packed into a
// uint64. The paper's experiments use 12-28 bits (code length ≈
// log2(N/10)), and its Figure 4 argument shows long codes hurt
// querying, so 64 is not a practical limitation.
const MaxBits = 64

// Hasher maps vectors to m-bit binary codes and exposes the per-bit
// flipping costs of a query, which are the |p_i(q)| terms of the paper's
// quantization distance (Definition 1).
type Hasher interface {
	// Name identifies the learning algorithm ("itq", "pcah", ...).
	Name() string
	// Bits returns the code length m.
	Bits() int
	// Code returns the packed binary code of x; bit i of the result is
	// c_i(x).
	Code(x []float32) uint64
	// QueryProjection returns the code of x and fills costs (length
	// Bits()) with the cost of flipping each bit: costs[i] = |p_i(x)|
	// for projection-based hashers, and the appendix's
	// dist(q,c')−dist(q,c) for K-means hashing. The quantization
	// distance from x to a bucket b is Σ_i (c_i(x)⊕b_i)·costs[i].
	QueryProjection(x []float32, costs []float64) uint64
}

// Learner trains a Hasher on a dataset.
type Learner interface {
	// Name identifies the algorithm.
	Name() string
	// Train learns an m-bit hasher from the n×d row-major data block.
	Train(data []float32, n, d, bits int, seed int64) (Hasher, error)
}

// validateTrain checks the common preconditions of all learners.
func validateTrain(data []float32, n, d, bits int) error {
	if n <= 1 || d <= 0 {
		return fmt.Errorf("hash: invalid data shape n=%d d=%d", n, d)
	}
	if len(data) != n*d {
		return fmt.Errorf("hash: data length %d != n*d = %d", len(data), n*d)
	}
	if bits <= 0 || bits > MaxBits {
		return fmt.Errorf("hash: bits %d out of range [1,%d]", bits, MaxBits)
	}
	return nil
}

// projHasher is the shared implementation of every projection-based
// hasher: code bit i is 1 iff h_iᵀ(x − mean) ≥ 0, and the flipping cost
// of bit i is |h_iᵀ(x − mean)|. H is the m×d hashing matrix of
// Theorem 1. Hashers hold no mutable state after training, so they are
// safe for concurrent use.
type projHasher struct {
	name string
	h    *vecmath.Mat // m×d
	mean []float64    // length d; subtracted before projection
}

func newProjHasher(name string, h *vecmath.Mat, mean []float64) *projHasher {
	return &projHasher{name: name, h: h, mean: mean}
}

func (p *projHasher) Name() string { return p.name }
func (p *projHasher) Bits() int    { return p.h.Rows }

// project computes p(x) = H·(x − mean) into dst.
func (p *projHasher) project(x []float32, dst []float64) {
	if len(x) != p.h.Cols {
		panic(fmt.Sprintf("hash: vector dim %d != trained dim %d", len(x), p.h.Cols))
	}
	for i := 0; i < p.h.Rows; i++ {
		row := p.h.Row(i)
		var s float64
		for j, v := range row {
			s += v * (float64(x[j]) - p.mean[j])
		}
		dst[i] = s
	}
}

// Project exposes the raw projected vector p(x) (used by tests and by
// the Theorem 2 bound checks).
func (p *projHasher) Project(x []float32, dst []float64) { p.project(x, dst) }

// Matrix returns the m×d hashing matrix H (Theorem 1's H).
func (p *projHasher) Matrix() *vecmath.Mat { return p.h }

func (p *projHasher) Code(x []float32) uint64 {
	if len(x) != p.h.Cols {
		panic(fmt.Sprintf("hash: vector dim %d != trained dim %d", len(x), p.h.Cols))
	}
	var code uint64
	for i := 0; i < p.h.Rows; i++ {
		row := p.h.Row(i)
		var s float64
		for j, v := range row {
			s += v * (float64(x[j]) - p.mean[j])
		}
		if s >= 0 {
			code |= 1 << uint(i)
		}
	}
	return code
}

func (p *projHasher) QueryProjection(x []float32, costs []float64) uint64 {
	if len(costs) != p.h.Rows {
		panic(fmt.Sprintf("hash: costs length %d != bits %d", len(costs), p.h.Rows))
	}
	p.project(x, costs)
	var code uint64
	for i, v := range costs {
		if v >= 0 {
			code |= 1 << uint(i)
		} else {
			costs[i] = -v
		}
	}
	return code
}

// BatchProjector is implemented by hashers whose QueryProjection is an
// affine map followed by sign/abs thresholding: p(x) = H·(x − mean),
// code bit i set iff p_i(x) ≥ 0, cost i = |p_i(x)|. Exposing (H, mean)
// lets a batch engine compute the projections of many queries with one
// parallel matmul (vecmath.MulBatch32 accumulates each row in the same
// float64 j-order as projHasher.project, so batched projections are
// bit-for-bit identical to per-query QueryProjection). Hashers with
// non-affine projections (SH's eigenfunctions, KMH's codeword
// distances) do not implement it and fall back to per-query paths.
type BatchProjector interface {
	// ProjectionMatrix returns the m×d hashing matrix H and the length-d
	// centering mean (nil means no centering). Both are immutable after
	// training and safe for concurrent use.
	ProjectionMatrix() (h *vecmath.Mat, mean []float64)
}

// ProjectionMatrix implements BatchProjector.
func (p *projHasher) ProjectionMatrix() (*vecmath.Mat, []float64) { return p.h, p.mean }

// CodeAndCosts converts one raw projection row (as produced by
// vecmath.MulBatch32 against a BatchProjector's matrix) into the packed
// code and per-bit flipping costs in place, exactly mirroring
// projHasher.QueryProjection: bit i is set when proj[i] ≥ 0, and the
// cost is the absolute value.
func CodeAndCosts(proj []float64) uint64 {
	var code uint64
	for i, v := range proj {
		if v >= 0 {
			code |= 1 << uint(i)
		} else {
			proj[i] = -v
		}
	}
	return code
}

// SpectralNormBound returns σ_max(H), the constant M of Theorem 1, for
// any projection-based hasher.
func SpectralNormBound(h *projHasher) float64 {
	m := h.h
	if m.Rows >= m.Cols {
		return vecmath.SpectralNorm(m)
	}
	return vecmath.SpectralNorm(m.T())
}

// Projector is implemented by hashers whose codes come from thresholding
// a real-valued projection; it gives access to the projection for bound
// checks and diagnostics.
type Projector interface {
	Project(x []float32, dst []float64)
}

// CodeString formats a packed code as a bit string of the given length
// (bit 0 first), for diagnostics.
func CodeString(code uint64, bits int) string {
	b := make([]byte, bits)
	for i := 0; i < bits; i++ {
		if code&(1<<uint(i)) != 0 {
			b[i] = '1'
		} else {
			b[i] = '0'
		}
	}
	return string(b)
}

// meanOf computes the column means of the n×d block.
func meanOf(data []float32, n, d int) []float64 {
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data[i*d : (i+1)*d]
		for j, v := range row {
			mean[j] += float64(v)
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	return mean
}

// signOf returns ±1 matching v ≥ 0, the quantization rule.
func signOf(v float64) float64 {
	if v >= 0 {
		return 1
	}
	return -1
}
