package hash

import "testing"

// FuzzUnmarshal ensures the hasher decoder never panics on corrupt
// input, and that accepted hashers are self-consistent.
func FuzzUnmarshal(f *testing.F) {
	data := trainData(f, 100, 8, 51)
	for _, l := range []Learner{PCAH{}, SH{}, KMH{SubspaceBits: 2, Iterations: 3}} {
		h, err := l.Train(data, 100, 8, 6, 52)
		if err != nil {
			f.Fatal(err)
		}
		blob, err := Marshal(h)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, blob []byte) {
		h, err := Unmarshal(blob)
		if err != nil {
			return
		}
		if h.Bits() < 1 || h.Bits() > MaxBits {
			t.Fatalf("accepted hasher with invalid Bits %d", h.Bits())
		}
	})
}
