package hash

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"gqr/internal/vecmath"
)

// SH is spectral hashing (Weiss, Torralba & Fergus): PCA-project the
// data, then treat each principal direction as a 1-D uniform
// distribution and take the analytical eigenfunctions of its Laplacian,
// Φ_k(y) = sin(π/2 + kπ·(y−a)/(b−a)) with eigenvalue ~ (kπ/(b−a))². The
// m eigenfunctions with the smallest eigenvalues across all directions
// become the bits. Unlike PCAH/ITQ the projection is non-linear, which
// exercises the generality of QD: the flipping cost of bit i is simply
// |Φ_i(y)|.
type SH struct {
	// Procs bounds the worker count of the covariance kernel and the
	// projected-range scan; <= 0 means GOMAXPROCS. The per-direction
	// min/max merge is exact, so results are bit-for-bit identical at
	// any setting.
	Procs int
}

// Name implements Learner.
func (SH) Name() string { return "sh" }

// shFunc is one selected eigenfunction: principal direction dim with
// mode k over the projected range [lo,hi].
type shFunc struct {
	dim  int
	k    int
	lo   float64
	hi   float64
	eig  float64
	freq float64 // kπ/(hi−lo), precomputed
}

// shHasher evaluates the eigenfunctions on top of a PCA projection.
// It holds no mutable state, so it is safe for concurrent use; the PCA
// dimensionality is at most MaxBits, so scratch lives on the stack.
type shHasher struct {
	e     *vecmath.Mat // pca×d principal directions
	mean  []float64
	funcs []shFunc
}

// Train implements Learner. The seed is unused: SH is deterministic.
func (t SH) Train(data []float32, n, d, bits int, seed int64) (Hasher, error) {
	if err := validateTrain(data, n, d, bits); err != nil {
		return nil, err
	}
	pcaDims := bits
	if pcaDims > d {
		pcaDims = d
	}
	cov, mean := vecmath.CovarianceP(data, n, d, t.Procs)
	e := vecmath.TopEigenvectors(cov, pcaDims)

	// Range of the projected data per principal direction, scanned by
	// chunks of points with per-worker extrema merged afterwards — min
	// and max are exact lattice operations, so the merged result does
	// not depend on the partition.
	lo := make([]float64, pcaDims)
	hi := make([]float64, pcaDims)
	for j := range lo {
		lo[j] = math.Inf(1)
		hi[j] = math.Inf(-1)
	}
	var mu sync.Mutex
	vecmath.ParallelRanges(n, t.Procs, func(iLo, iHi int) {
		wlo := make([]float64, pcaDims)
		whi := make([]float64, pcaDims)
		for j := range wlo {
			wlo[j] = math.Inf(1)
			whi[j] = math.Inf(-1)
		}
		for i := iLo; i < iHi; i++ {
			row := data[i*d : (i+1)*d]
			for j := 0; j < pcaDims; j++ {
				er := e.Row(j)
				var s float64
				for c, ev := range er {
					s += ev * (float64(row[c]) - mean[c])
				}
				if s < wlo[j] {
					wlo[j] = s
				}
				if s > whi[j] {
					whi[j] = s
				}
			}
		}
		mu.Lock()
		for j := range wlo {
			if wlo[j] < lo[j] {
				lo[j] = wlo[j]
			}
			if whi[j] > hi[j] {
				hi[j] = whi[j]
			}
		}
		mu.Unlock()
	})

	// Enumerate candidate eigenfunctions and keep the bits smallest
	// eigenvalues. Modes per direction capped at bits (enough to fill).
	var cands []shFunc
	for j := 0; j < pcaDims; j++ {
		span := hi[j] - lo[j]
		if span <= 0 {
			continue // degenerate direction: constant projection
		}
		for k := 1; k <= bits; k++ {
			f := float64(k) * math.Pi / span
			cands = append(cands, shFunc{dim: j, k: k, lo: lo[j], hi: hi[j], eig: f * f, freq: f})
		}
	}
	if len(cands) < bits {
		return nil, fmt.Errorf("hash: sh could not build %d eigenfunctions (data degenerate)", bits)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].eig != cands[b].eig {
			return cands[a].eig < cands[b].eig
		}
		if cands[a].dim != cands[b].dim {
			return cands[a].dim < cands[b].dim
		}
		return cands[a].k < cands[b].k
	})
	return &shHasher{
		e:     e,
		mean:  mean,
		funcs: cands[:bits],
	}, nil
}

func (s *shHasher) Name() string { return "sh" }
func (s *shHasher) Bits() int    { return len(s.funcs) }

// Project computes the eigenfunction values Φ_i(y) into dst.
func (s *shHasher) Project(x []float32, dst []float64) {
	if len(x) != s.e.Cols {
		panic(fmt.Sprintf("hash: vector dim %d != trained dim %d", len(x), s.e.Cols))
	}
	var pbuf [MaxBits]float64 // PCA dims ≤ code length ≤ MaxBits
	for j := 0; j < s.e.Rows; j++ {
		row := s.e.Row(j)
		var v float64
		for c, ev := range row {
			v += ev * (float64(x[c]) - s.mean[c])
		}
		pbuf[j] = v
	}
	for i, f := range s.funcs {
		dst[i] = math.Sin(math.Pi/2 + f.freq*(pbuf[f.dim]-f.lo))
	}
}

func (s *shHasher) Code(x []float32) uint64 {
	var buf [MaxBits]float64
	dst := buf[:len(s.funcs)]
	s.Project(x, dst)
	var code uint64
	for i, v := range dst {
		if v >= 0 {
			code |= 1 << uint(i)
		}
	}
	return code
}

func (s *shHasher) QueryProjection(x []float32, costs []float64) uint64 {
	if len(costs) != len(s.funcs) {
		panic(fmt.Sprintf("hash: costs length %d != bits %d", len(costs), len(s.funcs)))
	}
	s.Project(x, costs)
	var code uint64
	for i, v := range costs {
		if v >= 0 {
			code |= 1 << uint(i)
		} else {
			costs[i] = -v
		}
	}
	return code
}
