package trace

import (
	"bytes"
	"encoding/json"
	"io"
	"sync"
	"testing"
	"time"
)

// record one synthetic query against r: a fixed set of spans via the
// public recording surface, finished with the given total.
func recordQuery(r *Recorder, total time.Duration) *Trace {
	tr := r.Begin("gqr")
	if tr == nil {
		return nil
	}
	tr.Mark(StageSnapshot, -1)
	tr.Mark(StageSequence, -1)
	now := time.Now()
	tr.Record(StageProbe, 0, now, now.Add(time.Microsecond), Work{Buckets: 3, Probed: 1})
	tr.Record(StageGather, 0, now.Add(time.Microsecond), now.Add(2*time.Microsecond), Work{Candidates: 7})
	tr.Record(StageEvaluate, 0, now.Add(2*time.Microsecond), now.Add(4*time.Microsecond), Work{Abandoned: 2})
	tr.Mark(StageFinalize, -1)
	tr.SetTotals(Totals{K: 10, Candidates: 7, BucketsGenerated: 3, BucketsProbed: 1, EarlyAbandoned: 2})
	r.Finish(tr, total)
	return tr
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < NumStages; i++ {
		name := Stage(i).String()
		if name == "" || name == "unknown" {
			t.Fatalf("stage %d has no name", i)
		}
		if seen[name] {
			t.Fatalf("duplicate stage name %q", name)
		}
		seen[name] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
	b, err := json.Marshal(StageProbe)
	if err != nil || string(b) != `"probe"` {
		t.Fatalf("StageProbe JSON = %s, %v", b, err)
	}
}

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Mark(StageSnapshot, -1)
	tr.Record(StageProbe, 0, time.Now(), time.Now(), Work{})
	tr.SetTotals(Totals{})
	tr.MergeChild(nil, 0, 0)
	var parent Trace
	parent.MergeChild(nil, 0, 0) // nil child on live parent
}

func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 3, Capacity: 16})
	var traced int
	for i := 0; i < 9; i++ {
		if tr := recordQuery(r, time.Millisecond); tr != nil {
			traced++
		}
	}
	if traced != 3 {
		t.Fatalf("sampled %d of 9 queries, want 3 (1-in-3)", traced)
	}
	st := r.Stats()
	if st.Queries != 9 || st.Traced != 3 || st.Sampled != 3 || st.Captured != 3 {
		t.Fatalf("stats %+v", st)
	}
	if got := len(r.Traces()); got != 3 {
		t.Fatalf("ring holds %d traces, want 3", got)
	}
}

func TestRecorderSlowCapture(t *testing.T) {
	r := NewRecorder(Config{SlowQuery: time.Second, Capacity: 16})
	// Every query traces under a slow threshold, but only slow ones are
	// retained.
	if tr := recordQuery(r, time.Millisecond); tr == nil {
		t.Fatal("slow-capture recorder must trace every query")
	}
	recordQuery(r, 2*time.Second)
	st := r.Stats()
	if st.Traced != 2 || st.Slow != 1 || st.Captured != 1 {
		t.Fatalf("stats %+v", st)
	}
	traces := r.Traces()
	if len(traces) != 1 || !traces[0].Slow || traces[0].Total != 2*time.Second {
		t.Fatalf("captured %+v", traces)
	}
}

func TestRecorderDisabledTracesNothing(t *testing.T) {
	r := NewRecorder(Config{})
	if r.Enabled() {
		t.Fatal("zero-policy recorder reports Enabled")
	}
	if tr := r.Begin("gqr"); tr != nil {
		t.Fatal("zero-policy recorder handed out a trace")
	}
	var nilRec *Recorder
	if nilRec.Enabled() {
		t.Fatal("nil recorder reports Enabled")
	}
}

func TestRingWraparoundKeepsNewest(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, Capacity: 4})
	for i := 0; i < 10; i++ {
		recordQuery(r, time.Millisecond)
	}
	traces := r.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(traces))
	}
	for i, tr := range traces {
		want := uint64(10 - i) // newest first: IDs 10,9,8,7
		if tr.ID != want {
			t.Fatalf("trace[%d].ID = %d, want %d", i, tr.ID, want)
		}
	}
	if r.Trace(10) == nil || r.Trace(6) != nil {
		t.Fatal("Trace(id) lookup disagrees with ring contents")
	}
}

func TestSpanCapDropsButAggregatesStayExact(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, MaxSpans: 4, Capacity: 4})
	tr := r.Begin("gqr")
	now := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(StageProbe, 0, now, now.Add(time.Microsecond), Work{Buckets: 1})
	}
	if len(tr.Spans) != 4 {
		t.Fatalf("span cap leaked: %d spans", len(tr.Spans))
	}
	if tr.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped)
	}
	if tr.StageCount[StageProbe] != 10 || tr.StageWork[StageProbe].Buckets != 10 {
		t.Fatalf("aggregates lost dropped spans: count %d, buckets %d",
			tr.StageCount[StageProbe], tr.StageWork[StageProbe].Buckets)
	}
	if tr.StageDur[StageProbe] != 10*time.Microsecond {
		t.Fatalf("StageDur = %v", tr.StageDur[StageProbe])
	}
	r.Finish(tr, time.Millisecond)
}

func TestObserverSeesEveryTracedQuery(t *testing.T) {
	r := NewRecorder(Config{SlowQuery: time.Hour, Capacity: 4})
	var observed int
	r.SetObserver(func(tr *Trace) {
		observed++
		if tr.StageCount[StageProbe] == 0 {
			t.Error("observer saw a trace without probe spans")
		}
	})
	for i := 0; i < 5; i++ {
		recordQuery(r, time.Millisecond) // never slow => never captured
	}
	if observed != 5 {
		t.Fatalf("observer saw %d traces, want 5", observed)
	}
	if got := r.Stats().Captured; got != 0 {
		t.Fatalf("captured %d, want 0", got)
	}
	r.SetObserver(nil)
	recordQuery(r, time.Millisecond)
	if observed != 5 {
		t.Fatal("cleared observer still invoked")
	}
}

func TestMergeChildRebasesSpans(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, Capacity: 4})
	parent := r.Begin("sharded")
	child := r.Child("gqr")
	now := time.Now()
	child.Record(StageProbe, 1, now, now.Add(time.Microsecond), Work{Buckets: 2, Probed: 1})
	child.SetTotals(Totals{Candidates: 5, BucketsGenerated: 2, BucketsProbed: 1})
	parent.MergeChild(child, 3, 2*time.Microsecond)
	r.Recycle(child)

	if parent.StageCount[StageShard] != 1 || parent.StageDur[StageShard] != 2*time.Microsecond {
		t.Fatalf("shard stage aggregate: count %d dur %v",
			parent.StageCount[StageShard], parent.StageDur[StageShard])
	}
	if parent.StageWork[StageShard].Candidates != 5 {
		t.Fatalf("shard work %+v", parent.StageWork[StageShard])
	}
	var shardSpan, probeSpan *Span
	for i := range parent.Spans {
		switch parent.Spans[i].Stage {
		case StageShard:
			shardSpan = &parent.Spans[i]
		case StageProbe:
			probeSpan = &parent.Spans[i]
		}
	}
	if shardSpan == nil || shardSpan.Shard != 3 {
		t.Fatalf("missing shard span: %+v", parent.Spans)
	}
	if probeSpan == nil || probeSpan.Shard != 3 || probeSpan.Table != 1 {
		t.Fatalf("child span not re-tagged: %+v", parent.Spans)
	}
	if probeSpan.Start < 0 {
		t.Fatalf("re-based span start %v", probeSpan.Start)
	}
	r.Finish(parent, 3*time.Microsecond)
}

func TestSummaryAndDetail(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, Capacity: 4})
	tr := recordQuery(r, 42*time.Millisecond)
	s := tr.Summary()
	if s.Total != 42*time.Millisecond || s.Totals.Candidates != 7 {
		t.Fatalf("summary %+v", s)
	}
	for _, stage := range []string{"snapshot", "sequence", "probe", "gather", "evaluate", "finalize"} {
		if _, ok := s.Stages[stage]; !ok {
			t.Fatalf("summary missing stage %q: %v", stage, s.Stages)
		}
	}
	if _, ok := s.Stages["shard"]; ok {
		t.Fatal("summary contains unused shard stage")
	}
	d := tr.Detail()
	if len(d.SpanList) != s.Spans || s.Spans == 0 {
		t.Fatalf("detail spans %d, summary %d", len(d.SpanList), s.Spans)
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("detail JSON: %v", err)
	}
}

func TestWriteChromeValidJSON(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 1, Capacity: 4})
	tr := recordQuery(r, time.Millisecond)
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v\n%s", err, buf.String())
	}
	stages := map[string]bool{}
	for _, ev := range f.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if ph != "X" && ph != "M" {
			t.Fatalf("unexpected ph %q in %v", ph, ev)
		}
		if ph == "X" {
			stages[name] = true
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("X event without ts: %v", ev)
			}
		}
	}
	for _, want := range []string{"snapshot", "sequence", "probe", "gather", "evaluate", "finalize"} {
		if !stages[want] {
			t.Fatalf("chrome export missing stage %q (got %v)", want, stages)
		}
	}
	// Empty export must still be a valid object with an array.
	buf.Reset()
	if err := WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var empty map[string]any
	if err := json.Unmarshal(buf.Bytes(), &empty); err != nil {
		t.Fatal(err)
	}
	if _, ok := empty["traceEvents"].([]any); !ok {
		t.Fatalf("empty export: %s", buf.String())
	}
}

// TestTraceStressRecorder hammers one recorder from concurrent
// writers (Begin/Record/Finish), ring readers (Traces/Summary/chrome
// export) and observer churn; run under -race it is the proof the
// capture path is lock-free-safe.
func TestTraceStressRecorder(t *testing.T) {
	r := NewRecorder(Config{SampleEvery: 2, SlowQuery: time.Nanosecond, Capacity: 8, MaxSpans: 64})
	r.SetObserver(func(tr *Trace) { _ = tr.StageSum() })
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				recordQuery(r, time.Duration(i)*time.Microsecond)
			}
		}()
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, tr := range r.Traces() {
					_ = tr.Summary()
					_ = tr.Detail()
				}
				_ = WriteChrome(io.Discard, r.Traces()...)
				_ = r.Stats()
			}
		}()
	}
	// Let writers finish, then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wgWriters := 4 * 500
		for r.Stats().Queries < uint64(wgWriters) {
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if got := len(r.Traces()); got != 8 {
		t.Fatalf("ring holds %d traces after stress, want full capacity 8", got)
	}
}
