// Package trace is the query flight recorder's data model: a
// per-query Trace recording one span per pipeline-stage occurrence —
// snapshot acquire, query preprocessing, probe-sequence generation,
// per-table probing, candidate gather, batched evaluation, heap
// finalize, and (for sharded fan-out) one span per shard — each span
// annotated with the work it performed in the paper's §2.2 units
// (buckets generated/probed, candidates, early-abandons).
//
// The package has no dependencies beyond the standard library and is
// designed around two cost regimes:
//
//   - Disabled: a nil *Trace. Every recording method is nil-safe, so
//     the instrumented pipeline pays only a nil/flag check per stage
//     boundary — no clock reads, no allocations.
//   - Enabled: traces come from a Recorder's sync.Pool, so the steady
//     state recycles span storage instead of allocating it. The span
//     list is capped (Config.MaxSpans); overflow increments Dropped
//     while the per-stage aggregates (StageDur, StageCount, StageWork)
//     keep accumulating, so totals stay exact even when the span
//     timeline is truncated.
package trace

import (
	"fmt"
	"time"
)

// Stage identifies one pipeline stage of the §2.2 querying model.
type Stage uint8

// The pipeline stages, in execution order. StageShard exists only in
// sharded-index traces: one span per shard covering that shard's whole
// fan-out leg, so tail latency is attributable to the slow shard.
const (
	StageSnapshot   Stage = iota // acquire (possibly republish) the read snapshot
	StagePreprocess              // query preprocessing (metric normalization)
	StageSequence                // probe-sequence generation (per-table init)
	StageProbe                   // sequence advance + merged best-first scan + bucket lookup
	StageGather                  // visited-filtered candidate gather
	StageRerank                  // ADC table build + quantized candidate scoring
	StageEvaluate                // batched exact-distance evaluation
	StageFinalize                // heap finalize (sort, sqrt, radius cut)
	StageShard                   // one shard's whole leg of a sharded fan-out
	StageCompact                 // one background segment merge (compaction traces only)
	StageBatch                   // one batch's shared preprocessing (batch traces only)
)

// NumStages is the number of distinct stages.
const NumStages = int(StageBatch) + 1

var stageNames = [NumStages]string{
	"snapshot", "preprocess", "sequence", "probe", "gather", "rerank",
	"evaluate", "finalize", "shard", "compact", "batch",
}

// String returns the stage's wire name (used as the metrics label and
// the Chrome trace_event span name).
func (s Stage) String() string {
	if int(s) < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// MarshalJSON renders the stage as its name, so trace JSON is
// self-describing.
func (s Stage) MarshalJSON() ([]byte, error) {
	name := s.String()
	b := make([]byte, 0, len(name)+2)
	b = append(b, '"')
	b = append(b, name...)
	b = append(b, '"')
	return b, nil
}

// UnmarshalJSON parses a stage name back into its value, so trace JSON
// round-trips (clients decoding /debug/querytrace responses).
func (s *Stage) UnmarshalJSON(b []byte) error {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return fmt.Errorf("trace: stage %s is not a JSON string", b)
	}
	name := string(b[1 : len(b)-1])
	for i, n := range stageNames {
		if n == name {
			*s = Stage(i)
			return nil
		}
	}
	return fmt.Errorf("trace: unknown stage %q", name)
}

// Work annotates one span with the §2.2 work it performed. Zero fields
// mean "not applicable to this stage".
type Work struct {
	// Buckets counts probe-sequence emissions attributed to this span
	// (probed or found empty).
	Buckets int32 `json:"buckets,omitempty"`
	// Probed counts non-empty buckets evaluated in this span.
	Probed int32 `json:"probed,omitempty"`
	// Candidates counts distinct items gathered for evaluation.
	Candidates int32 `json:"candidates,omitempty"`
	// Abandoned counts candidates whose distance computation the
	// bounded kernel cut short.
	Abandoned int32 `json:"abandoned,omitempty"`
	// Filtered counts gathered ids dropped before evaluation —
	// tombstoned items and items rejected by a metadata filter.
	Filtered int32 `json:"filtered,omitempty"`
	// ADCScored counts candidates scored through the quantized
	// re-ranking stage's asymmetric-distance lookup table.
	ADCScored int32 `json:"adcScored,omitempty"`
}

func (w *Work) add(o Work) {
	w.Buckets += o.Buckets
	w.Probed += o.Probed
	w.Candidates += o.Candidates
	w.Abandoned += o.Abandoned
	w.Filtered += o.Filtered
	w.ADCScored += o.ADCScored
}

// Span is one timed stage occurrence. Start is the offset from the
// trace's Begin (monotonic clock), so spans from one trace lay out on
// a single timeline.
type Span struct {
	Stage Stage `json:"stage"`
	// Table is the hash table the span worked on, -1 for stages that
	// are not table-specific.
	Table int32 `json:"table"`
	// Shard is the shard the span ran on, -1 outside sharded fan-out.
	Shard int32         `json:"shard"`
	Start time.Duration `json:"startNs"`
	Dur   time.Duration `json:"durNs"`
	Work  Work          `json:"work"`
}

// Totals are the whole-query result counters, copied from the search's
// final stats so a captured trace is self-contained.
type Totals struct {
	K                int  `json:"k"`
	Budget           int  `json:"budget,omitempty"`
	BucketsGenerated int  `json:"bucketsGenerated"`
	BucketsProbed    int  `json:"bucketsProbed"`
	Candidates       int  `json:"candidates"`
	EarlyAbandoned   int  `json:"earlyAbandoned"`
	Filtered         int  `json:"filtered,omitempty"`
	ADCScored        int  `json:"adcScored,omitempty"`
	Reranked         int  `json:"reranked,omitempty"`
	EarlyStopped     bool `json:"earlyStopped"`
}

// Trace is one query's flight record. A Trace is single-writer while
// the query runs; once handed to Recorder.Finish it is either
// published immutably into the ring buffer (readers may then access it
// concurrently) or recycled. All recording methods are nil-safe so the
// disabled path carries no clock reads.
type Trace struct {
	// ID is the query's sequence number in its Recorder (unique per
	// recorder; 0 for shard child traces, which are merged, not
	// published).
	ID     uint64 `json:"id"`
	Method string `json:"method"`
	// Begin is the wall-clock start (it also carries the monotonic
	// reading all span offsets are relative to).
	Begin   time.Time     `json:"begin"`
	Total   time.Duration `json:"totalNs"`
	Sampled bool          `json:"sampled"`
	Slow    bool          `json:"slow"`
	Totals  Totals        `json:"totals"`
	// Per-stage aggregates; exact even when spans were dropped.
	StageDur   [NumStages]time.Duration `json:"-"`
	StageCount [NumStages]int32         `json:"-"`
	StageWork  [NumStages]Work          `json:"-"`
	Spans      []Span                   `json:"spans"`
	// Dropped counts spans discarded once the span cap was reached.
	Dropped int `json:"dropped,omitempty"`

	cursor   time.Time
	maxSpans int
}

// reset re-arms a pooled trace for a new query.
func (t *Trace) reset(id uint64, method string, maxSpans int, sampled bool) {
	now := time.Now()
	t.ID = id
	t.Method = method
	t.Begin = now
	t.Total = 0
	t.Sampled = sampled
	t.Slow = false
	t.Totals = Totals{}
	t.StageDur = [NumStages]time.Duration{}
	t.StageCount = [NumStages]int32{}
	t.StageWork = [NumStages]Work{}
	t.Spans = t.Spans[:0]
	t.Dropped = 0
	t.cursor = now
	t.maxSpans = maxSpans
}

// Mark closes the interval since the previous Mark (or Begin) as one
// span of the given stage. It is the coarse-grained recording entry
// point used outside the searcher (snapshot acquire, preprocessing).
// Nil-safe.
func (t *Trace) Mark(stage Stage, table int32) {
	if t == nil {
		return
	}
	now := time.Now()
	t.record(stage, table, -1, t.cursor, now, Work{})
	t.cursor = now
}

// Record appends a span timed by an external clock (the searcher's
// stage clock, which owns the one-clock-read-per-boundary discipline).
// Nil-safe.
func (t *Trace) Record(stage Stage, table int32, start, end time.Time, w Work) {
	if t == nil {
		return
	}
	t.record(stage, table, -1, start, end, w)
	t.cursor = end
}

func (t *Trace) record(stage Stage, table, shard int32, start, end time.Time, w Work) {
	d := end.Sub(start)
	if d < 0 {
		d = 0
	}
	t.StageDur[stage] += d
	t.StageCount[stage]++
	t.StageWork[stage].add(w)
	if len(t.Spans) >= t.maxSpans {
		t.Dropped++
		return
	}
	t.Spans = append(t.Spans, Span{
		Stage: stage, Table: table, Shard: shard,
		Start: start.Sub(t.Begin), Dur: d, Work: w,
	})
}

// SetTotals copies the query's final work counters into the trace.
// Nil-safe.
func (t *Trace) SetTotals(tot Totals) {
	if t == nil {
		return
	}
	t.Totals = tot
}

// MergeChild absorbs one shard's child trace into a sharded fan-out
// parent: a StageShard span covering the shard's whole leg (duration
// total, annotated with the shard's candidate count), plus every child
// span re-based onto the parent timeline and tagged with the shard id.
// Child stage aggregates fold into the parent's, so per-stage sums
// over a sharded trace are CPU time across shards (legs overlap).
// Nil-safe in both arguments.
func (t *Trace) MergeChild(c *Trace, shard int32, total time.Duration) {
	if t == nil || c == nil {
		return
	}
	off := c.Begin.Sub(t.Begin)
	if off < 0 {
		off = 0
	}
	t.StageDur[StageShard] += total
	t.StageCount[StageShard]++
	shardWork := Work{
		Buckets:    int32(c.Totals.BucketsGenerated),
		Probed:     int32(c.Totals.BucketsProbed),
		Candidates: int32(c.Totals.Candidates),
		Abandoned:  int32(c.Totals.EarlyAbandoned),
		Filtered:   int32(c.Totals.Filtered),
		ADCScored:  int32(c.Totals.ADCScored),
	}
	t.StageWork[StageShard].add(shardWork)
	if len(t.Spans) < t.maxSpans {
		t.Spans = append(t.Spans, Span{
			Stage: StageShard, Table: -1, Shard: shard,
			Start: off, Dur: total, Work: shardWork,
		})
	} else {
		t.Dropped++
	}
	for _, sp := range c.Spans {
		t.StageDur[sp.Stage] += sp.Dur
		t.StageCount[sp.Stage]++
		t.StageWork[sp.Stage].add(sp.Work)
		if len(t.Spans) >= t.maxSpans {
			t.Dropped++
			continue
		}
		sp.Shard = shard
		sp.Start += off
		t.Spans = append(t.Spans, sp)
	}
	t.Dropped += c.Dropped
}

// StageSummary is one stage's aggregate in a trace summary.
type StageSummary struct {
	DurNs time.Duration `json:"durNs"`
	Count int32         `json:"count"`
	Work  Work          `json:"work"`
}

// Summary is the span-free JSON view of a trace, used by the
// flight-recorder list endpoint.
type Summary struct {
	ID      uint64                  `json:"id"`
	Method  string                  `json:"method"`
	Begin   time.Time               `json:"begin"`
	Total   time.Duration           `json:"totalNs"`
	Sampled bool                    `json:"sampled"`
	Slow    bool                    `json:"slow"`
	Totals  Totals                  `json:"totals"`
	Stages  map[string]StageSummary `json:"stages"`
	Spans   int                     `json:"spans"`
	Dropped int                     `json:"dropped,omitempty"`
}

// Summary returns the span-free aggregate view (stages with zero
// occurrences are omitted).
func (t *Trace) Summary() Summary {
	s := Summary{
		ID: t.ID, Method: t.Method, Begin: t.Begin, Total: t.Total,
		Sampled: t.Sampled, Slow: t.Slow, Totals: t.Totals,
		Stages: make(map[string]StageSummary, NumStages),
		Spans:  len(t.Spans), Dropped: t.Dropped,
	}
	for i := 0; i < NumStages; i++ {
		if t.StageCount[i] == 0 {
			continue
		}
		s.Stages[Stage(i).String()] = StageSummary{
			DurNs: t.StageDur[i], Count: t.StageCount[i], Work: t.StageWork[i],
		}
	}
	return s
}

// Detail is the full JSON view of a trace: the summary plus the span
// timeline.
type Detail struct {
	Summary
	SpanList []Span `json:"spanList"`
}

// Detail returns the trace with its full span timeline.
func (t *Trace) Detail() Detail {
	return Detail{Summary: t.Summary(), SpanList: t.Spans}
}

// StageSum returns the sum of all per-stage durations (excluding
// StageShard, whose legs overlap in wall time).
func (t *Trace) StageSum() time.Duration {
	var sum time.Duration
	for i := 0; i < NumStages; i++ {
		if Stage(i) == StageShard {
			continue
		}
		sum += t.StageDur[i]
	}
	return sum
}
