package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Recorder and sets its two capture policies. The zero
// value of either policy field disables that policy; a Recorder with
// both disabled never hands out traces.
type Config struct {
	// SampleEvery enables uniform sampling: every SampleEvery-th query
	// (1 = every query) records a trace and is captured into the ring
	// buffer. Zero disables uniform sampling.
	SampleEvery int
	// SlowQuery enables threshold-triggered capture: every query
	// records a trace (the breakdown must exist before the query is
	// known slow), and those at or above this latency are always
	// retained. Zero disables slow-query capture.
	SlowQuery time.Duration
	// Capacity is the ring buffer's size in traces (default 64). New
	// captures overwrite the oldest.
	Capacity int
	// MaxSpans caps one trace's span timeline (default 1024); overflow
	// is counted in Trace.Dropped while stage aggregates stay exact.
	MaxSpans int
}

// DefCapacity and DefMaxSpans are the defaults applied when Config
// leaves the sizes zero.
const (
	DefCapacity = 64
	DefMaxSpans = 1024
)

// Stats are a Recorder's lifetime counters.
type Stats struct {
	// Queries is every query observed (traced or not).
	Queries uint64 `json:"queries"`
	// Traced is how many queries recorded a trace.
	Traced uint64 `json:"traced"`
	// Sampled / Slow / Captured count capture outcomes: Captured =
	// traces retained in the ring (a trace both sampled and slow
	// counts once in Captured).
	Sampled  uint64 `json:"sampled"`
	Slow     uint64 `json:"slow"`
	Captured uint64 `json:"captured"`
	// Config echo for the debug endpoint.
	SampleEvery int           `json:"sampleEvery"`
	SlowQuery   time.Duration `json:"slowQueryNs"`
	Capacity    int           `json:"capacity"`
}

// Recorder is the flight recorder: it decides per query whether to
// trace (Begin), applies the capture policies (Finish), and retains
// captured traces in a lock-free ring buffer that concurrent readers
// snapshot without blocking the query path.
//
// Capture is a single atomic pointer store into the ring slot; a
// published trace is never mutated again, so readers need no locks.
// Non-captured traces are recycled through a sync.Pool — the common
// case under slow-query capture, where every query traces but almost
// none is retained.
type Recorder struct {
	cfg Config

	seq      atomic.Uint64 // queries observed; doubles as the trace ID source
	traced   atomic.Uint64
	sampled  atomic.Uint64
	slow     atomic.Uint64
	captured atomic.Uint64

	head  atomic.Uint64
	slots []atomic.Pointer[Trace]

	pool sync.Pool
	obs  atomic.Pointer[func(*Trace)]
}

// NewRecorder builds a recorder; zero-valued sizes take the defaults.
func NewRecorder(cfg Config) *Recorder {
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefCapacity
	}
	if cfg.MaxSpans <= 0 {
		cfg.MaxSpans = DefMaxSpans
	}
	r := &Recorder{cfg: cfg, slots: make([]atomic.Pointer[Trace], cfg.Capacity)}
	r.pool.New = func() any { return &Trace{} }
	return r
}

// Enabled reports whether any capture policy is active.
func (r *Recorder) Enabled() bool {
	return r != nil && (r.cfg.SampleEvery > 0 || r.cfg.SlowQuery > 0)
}

// Begin registers one query and returns its trace, or nil when this
// query is not traced (sampling missed and slow capture is off). The
// returned trace is pooled scratch; hand it back via Finish.
func (r *Recorder) Begin(method string) *Trace {
	n := r.seq.Add(1)
	sampled := r.cfg.SampleEvery > 0 && n%uint64(r.cfg.SampleEvery) == 0
	if !sampled && r.cfg.SlowQuery <= 0 {
		return nil
	}
	tr := r.pool.Get().(*Trace)
	tr.reset(n, method, r.cfg.MaxSpans, sampled)
	r.traced.Add(1)
	return tr
}

// Child returns a trace for one shard's leg of an already-traced
// fan-out query. Children have ID 0, are never captured directly, and
// must be returned via Recycle after MergeChild.
func (r *Recorder) Child(method string) *Trace {
	tr := r.pool.Get().(*Trace)
	tr.reset(0, method, r.cfg.MaxSpans, false)
	return tr
}

// Recycle returns a non-published trace (a merged child, or a trace
// abandoned on error) to the pool. Nil-safe.
func (r *Recorder) Recycle(tr *Trace) {
	if tr != nil {
		r.pool.Put(tr)
	}
}

// Finish completes a trace begun with Begin: it stamps the total,
// applies the capture policies, invokes the observer (if any), and
// either publishes the trace into the ring buffer or recycles it.
// After Finish the caller must not touch the trace. Nil-safe.
func (r *Recorder) Finish(tr *Trace, total time.Duration) {
	if tr == nil {
		return
	}
	tr.Total = total
	tr.Slow = r.cfg.SlowQuery > 0 && total >= r.cfg.SlowQuery
	if tr.Sampled {
		r.sampled.Add(1)
	}
	if tr.Slow {
		r.slow.Add(1)
	}
	if f := r.obs.Load(); f != nil {
		(*f)(tr)
	}
	if !tr.Sampled && !tr.Slow {
		r.pool.Put(tr)
		return
	}
	r.captured.Add(1)
	i := r.head.Add(1) - 1
	// Publish: the trace is immutable from here on; the overwritten
	// trace (if any) stays valid for readers that already loaded it
	// and is reclaimed by the GC, never recycled.
	r.slots[i%uint64(len(r.slots))].Store(tr)
}

// SetObserver installs a callback invoked synchronously from Finish
// for every traced query (captured or not) — the hook that feeds
// per-stage latency histograms. The observer must not retain the
// trace: non-captured traces are recycled right after it returns.
func (r *Recorder) SetObserver(f func(*Trace)) {
	if f == nil {
		r.obs.Store(nil)
		return
	}
	r.obs.Store(&f)
}

// Traces snapshots the ring buffer, newest first. The returned traces
// are immutable; the slice is the caller's.
func (r *Recorder) Traces() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if tr := r.slots[i].Load(); tr != nil {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID > out[b].ID })
	return out
}

// Trace returns the captured trace with the given ID, or nil.
func (r *Recorder) Trace(id uint64) *Trace {
	for i := range r.slots {
		if tr := r.slots[i].Load(); tr != nil && tr.ID == id {
			return tr
		}
	}
	return nil
}

// Stats returns the recorder's lifetime counters.
func (r *Recorder) Stats() Stats {
	return Stats{
		Queries:     r.seq.Load(),
		Traced:      r.traced.Load(),
		Sampled:     r.sampled.Load(),
		Slow:        r.slow.Load(),
		Captured:    r.captured.Load(),
		SampleEvery: r.cfg.SampleEvery,
		SlowQuery:   r.cfg.SlowQuery,
		Capacity:    len(r.slots),
	}
}
