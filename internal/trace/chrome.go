package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export: captured traces rendered in the JSON
// object format chrome://tracing and Perfetto load directly. Each
// trace becomes one "process" (pid = trace ID) so several captured
// queries lay out side by side on the shared wall-clock timeline;
// within a trace, lanes (tids) separate the global pipeline stages,
// the per-table probe work, and — for sharded traces — each shard's
// leg.

// chromeEvent is one trace_event entry. Complete events (ph "X") carry
// ts+dur in microseconds; metadata events (ph "M") name processes and
// threads.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  uint64         `json:"pid"`
	Tid  int64          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Lane numbering inside one trace's process.
const (
	laneGlobal = 0    // pipeline-level stages (snapshot, sequence, finalize…)
	laneTable  = 1    // + table id: per-table probe/gather/evaluate spans
	laneShard  = 1000 // + shard id: sharded fan-out legs
)

func spanLane(sp Span) int64 {
	switch {
	case sp.Shard >= 0:
		return laneShard + int64(sp.Shard)
	case sp.Table >= 0:
		return laneTable + int64(sp.Table)
	default:
		return laneGlobal
	}
}

func laneName(tid int64) string {
	switch {
	case tid >= laneShard:
		return fmt.Sprintf("shard %d", tid-laneShard)
	case tid >= laneTable:
		return fmt.Sprintf("table %d", tid-laneTable)
	default:
		return "pipeline"
	}
}

// WriteChrome writes the traces as one Chrome trace_event JSON object.
// Timestamps are wall-clock microseconds, so traces captured minutes
// apart appear with their real gaps (Perfetto's timeline handles the
// offsets).
func WriteChrome(w io.Writer, traces ...*Trace) error {
	var f chromeFile
	f.DisplayTimeUnit = "ns"
	f.TraceEvents = []chromeEvent{} // encode [] rather than null when empty
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		pid := tr.ID
		base := float64(tr.Begin.UnixMicro())
		f.TraceEvents = append(f.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: laneGlobal,
			Args: map[string]any{"name": fmt.Sprintf("query %d (%s)", tr.ID, tr.Method)},
		})
		lanesNamed := map[int64]bool{}
		for _, sp := range tr.Spans {
			tid := spanLane(sp)
			if !lanesNamed[tid] {
				lanesNamed[tid] = true
				f.TraceEvents = append(f.TraceEvents, chromeEvent{
					Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
					Args: map[string]any{"name": laneName(tid)},
				})
			}
			args := map[string]any{}
			if sp.Table >= 0 {
				args["table"] = sp.Table
			}
			if sp.Shard >= 0 {
				args["shard"] = sp.Shard
			}
			if sp.Work.Buckets > 0 {
				args["buckets"] = sp.Work.Buckets
			}
			if sp.Work.Probed > 0 {
				args["probed"] = sp.Work.Probed
			}
			if sp.Work.Candidates > 0 {
				args["candidates"] = sp.Work.Candidates
			}
			if sp.Work.Abandoned > 0 {
				args["abandoned"] = sp.Work.Abandoned
			}
			f.TraceEvents = append(f.TraceEvents, chromeEvent{
				Name: sp.Stage.String(), Cat: "gqr", Ph: "X",
				Ts:  base + float64(sp.Start.Nanoseconds())/1e3,
				Dur: float64(sp.Dur.Nanoseconds()) / 1e3,
				Pid: pid, Tid: tid, Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}
