package bench

// Micro-benchmark suite behind `gqr-bench -json`: machine-readable
// ns/op and allocs/op for the evaluation-stage hot path (per-method
// Search at the paper's budget-1000 operating point) and the vecmath
// distance kernels. The driver uses testing.Benchmark directly so the
// numbers are produced by the same machinery as `go test -bench`, but
// land in a JSON file that perf-regression tooling can diff across
// commits.
//
// This package must not import the root gqr package (the root's
// in-package benchmarks import this package), so the suite drives
// internal/query.Searcher directly — which is also the layer the
// overhaul changed.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/quantization"
	"gqr/internal/query"
	"gqr/internal/vecmath"
)

// MicroResult is one measurement in the JSON output of
// `gqr-bench -json`.
type MicroResult struct {
	Benchmark string `json:"benchmark"`
	NsOp      int64  `json:"ns_op"`
	AllocsOp  int64  `json:"allocs_op"`
	BytesOp   int64  `json:"bytes_op"`
}

// RunMeta identifies the host and toolchain of one micro-benchmark
// run, so committed BENCH_*.json files are comparable across machines:
// an ns/op regression means nothing without knowing whether the
// baseline ran on the same Go version and core count.
type RunMeta struct {
	GoVersion  string `json:"goVersion"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numCpu"`
	// Commit is the VCS revision the binary was built from (empty when
	// built outside a checkout or without VCS stamping).
	Commit string `json:"commit,omitempty"`
	Dirty  bool   `json:"dirty,omitempty"`
	Time   string `json:"time"`
	// Reranking and OPQRotation record whether the run exercised the
	// quantized re-ranking serving path (and its rotation), so a number
	// from a re-ranked run is never compared against a plain one.
	Reranking   bool `json:"reranking,omitempty"`
	OPQRotation bool `json:"opqRotation,omitempty"`
}

// MicroReport is the full JSON document `gqr-bench -json` emits.
type MicroReport struct {
	Meta    RunMeta       `json:"meta"`
	Results []MicroResult `json:"results"`
}

func runMeta() RunMeta {
	m := RunMeta{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Time:       time.Now().UTC().Format(time.RFC3339),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Commit = s.Value
			case "vcs.modified":
				m.Dirty = s.Value == "true"
			}
		}
	}
	return m
}

// Meta reports the current host/toolchain fingerprint for reports other
// than the micro suite (the rerank sweep stamps its JSON with it).
func Meta() RunMeta { return runMeta() }

func toMicro(name string, r testing.BenchmarkResult) MicroResult {
	return MicroResult{
		Benchmark: name,
		NsOp:      r.NsPerOp(),
		AllocsOp:  r.AllocsPerOp(),
		BytesOp:   r.AllocedBytesPerOp(),
	}
}

// RunMicro executes the suite and writes a MicroReport (host/run
// metadata plus the measurements) as indented JSON to w. The corpus
// mirrors the root package's BenchmarkSearch*Budget1000 (20k×32
// clustered synthetic, ITQ codes, K=10, candidate budget 1000).
// buildProcs bounds the workers of the parallel build benchmarks (<= 0
// means GOMAXPROCS); the serial p=1 baseline always runs too, so the
// JSON records the speedup.
func RunMicro(w io.Writer, buildProcs int) error {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "micro", N: 20000, Dim: 32, Clusters: 16, LatentDim: 8, Seed: 17,
	})
	ds.SampleQueries(64, 18)
	bits := index.CodeLengthFor(ds.N(), 10)
	ix, err := index.Build(hash.ITQ{Iterations: 30}, ds.Vectors, ds.N(), ds.Dim, bits, 1, 19)
	if err != nil {
		return fmt.Errorf("bench: micro corpus: %w", err)
	}

	var results []MicroResult
	opt := query.Options{K: 10, MaxCandidates: 1000}
	// Re-ranked rows: the same corpus and operating point with the
	// serving quantizer attached at the WithReranking defaults (PQ m=8,
	// K=256, factor 8; seed stream matches the root Build's) on a
	// second, identically built index, so the JSON records the plain
	// and quantized serving paths side by side.
	ix2, err := index.Build(hash.ITQ{Iterations: 30}, ds.Vectors, ds.N(), ds.Dim, bits, 1, 19)
	if err != nil {
		return fmt.Errorf("bench: micro corpus: %w", err)
	}
	rq, err := quantization.TrainReranker(ds.Vectors, ds.N(), ds.Dim, 8, quantization.MaxCentroids, false, 19+7331, buildProcs)
	if err != nil {
		return fmt.Errorf("bench: rerank quantizer: %w", err)
	}
	if err := ix2.AttachQuantizer(rq, rq.EncodeAll(ds.Vectors, ds.N(), buildProcs)); err != nil {
		return fmt.Errorf("bench: rerank quantizer: %w", err)
	}
	ix2.RerankFactor = 8

	// The plain and re-ranked rows exist to be compared against each
	// other, so they must see the same machine: on a shared vCPU the
	// host's effective speed drifts on the minutes scale, and rows
	// timed far apart are not comparable. All search rows therefore
	// run in round-robin cycles (every cycle visits every row) and the
	// per-row best across cycles is reported.
	type searchRow struct {
		name string
		s    *query.Searcher
	}
	var rows []searchRow
	for _, pair := range []struct {
		ix     *index.Index
		suffix string
	}{{ix, ""}, {ix2, "/rerank"}} {
		for _, name := range query.Methods() {
			m, err := query.NewMethod(name, pair.ix)
			if err != nil {
				return err
			}
			s := query.NewSearcher(pair.ix, m)
			if _, err := s.Search(ds.Query(0), opt); err != nil { // warm the scratch
				return err
			}
			rows = append(rows, searchRow{"Search/" + name + "/budget1000" + pair.suffix, s})
		}
	}
	const searchCycles = 3
	best := make([]testing.BenchmarkResult, len(rows))
	var benchErr error
	for cycle := 0; cycle < searchCycles; cycle++ {
		for i := range rows {
			s := rows[i].s
			r := testing.Benchmark(func(b *testing.B) {
				for j := 0; j < b.N; j++ {
					if _, err := s.Search(ds.Query(j%ds.NQ()), opt); err != nil {
						benchErr = err
						b.Fatal(err)
					}
				}
			})
			if benchErr != nil {
				return fmt.Errorf("bench: %s: %w", rows[i].name, benchErr)
			}
			if cycle == 0 || r.NsPerOp() < best[i].NsPerOp() {
				best[i] = r
			}
		}
	}
	for i := range rows {
		results = append(results, toMicro(rows[i].name, best[i]))
	}

	// Kernel benchmarks: the complete (bound never hit) and abandoning
	// (bound hit in the first block) regimes of the bounded kernel,
	// bracketed by the unbounded kernels it must not slow down.
	rng := rand.New(rand.NewSource(23))
	const dim = 128
	a := make([]float32, dim)
	c := make([]float32, dim)
	for i := range a {
		a[i] = float32(rng.NormFloat64())
		c[i] = float32(rng.NormFloat64())
	}
	exact := vecmath.SquaredL2(a, c)
	sink := 0.0
	kernels := []struct {
		name string
		fn   func() float64
	}{
		{"SquaredL2/dim128", func() float64 { return vecmath.SquaredL2(a, c) }},
		{"SquaredL2Bounded/dim128/complete", func() float64 { return vecmath.SquaredL2Bounded(a, c, math.Inf(1)) }},
		{"SquaredL2Bounded/dim128/abandon", func() float64 { return vecmath.SquaredL2Bounded(a, c, exact/64) }},
		{"Dot/dim128", func() float64 { return vecmath.Dot(a, c) }},
		{"Norm/dim128", func() float64 { return vecmath.Norm(a) }},
	}
	for _, k := range kernels {
		fn := k.fn
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sink += fn()
			}
		})
		results = append(results, toMicro(k.name, r))
	}
	if sink == math.Inf(1) { // keep the kernel calls observable
		return fmt.Errorf("bench: kernel sink overflow")
	}

	build, err := runBuildMicro(ds, bits, buildProcs)
	if err != nil {
		return err
	}
	results = append(results, build...)

	meta := runMeta()
	meta.Reranking = true // the /rerank rows exercised the quantized path
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(MicroReport{Meta: meta, Results: results})
}

// runBuildMicro measures the build pipeline per learner at p=1 and at
// the requested bound, emitting one entry for the whole build plus one
// per stage (train/code/freeze, from index.BuildTimings averaged over
// the benchmark iterations). Learners use the same trimmed settings as
// the experiment driver (learnerFor).
func runBuildMicro(ds *dataset.Dataset, bits, buildProcs int) ([]MicroResult, error) {
	procs := vecmath.Procs(buildProcs)
	plist := []int{1}
	if procs > 1 {
		plist = append(plist, procs)
	}
	learners := []struct {
		name string
		l    hash.Learner
	}{
		{"itq", hash.ITQ{Iterations: 30}},
		{"pcah", hash.PCAH{}},
		{"kmh", hash.KMH{SubspaceBits: 2, Iterations: 15}},
	}
	kmhBits := bits
	if kmhBits%2 != 0 {
		kmhBits++
	}
	var results []MicroResult
	for _, lrn := range learners {
		b := bits
		if lrn.name == "kmh" {
			b = kmhBits
		}
		for _, p := range plist {
			var tTrain, tCode, tFreeze time.Duration
			var iters int
			var buildErr error
			r := testing.Benchmark(func(bb *testing.B) {
				for i := 0; i < bb.N; i++ {
					ix, err := index.BuildP(lrn.l, ds.Vectors, ds.N(), ds.Dim, b, 1, 19, p)
					if err != nil {
						buildErr = err
						bb.Fatal(err)
					}
					tTrain += ix.Timings.Train
					tCode += ix.Timings.Code
					tFreeze += ix.Timings.Freeze
					iters++
				}
			})
			if buildErr != nil {
				return nil, fmt.Errorf("bench: build micro %s/p%d: %w", lrn.name, p, buildErr)
			}
			suffix := fmt.Sprintf("/%s/p%d", lrn.name, p)
			results = append(results, toMicro("Build"+suffix, r))
			if iters > 0 {
				results = append(results,
					MicroResult{Benchmark: "BuildTrain" + suffix, NsOp: tTrain.Nanoseconds() / int64(iters)},
					MicroResult{Benchmark: "BuildCode" + suffix, NsOp: tCode.Nanoseconds() / int64(iters)},
					MicroResult{Benchmark: "BuildFreeze" + suffix, NsOp: tFreeze.Nanoseconds() / int64(iters)},
				)
			}
		}
	}
	return results, nil
}
