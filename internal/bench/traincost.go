package bench

import (
	"runtime"
	"time"
)

// TrainCost records the cost of one training run (Table 2's columns).
// CPUTime equals WallTime in this reproduction because training is
// single-threaded; the paper's gap between the two came from MATLAB's
// multi-core BLAS.
type TrainCost struct {
	WallTime time.Duration
	CPUTime  time.Duration
	// AllocBytes is the total heap allocated during training, the
	// closest portable stand-in for the paper's peak-memory column.
	AllocBytes uint64
}

// MeasureTraining runs fn and reports its wall time and heap allocation.
func MeasureTraining(fn func() error) (TrainCost, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	return TrainCost{
		WallTime:   wall,
		CPUTime:    wall,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}, err
}
