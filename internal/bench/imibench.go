package bench

import (
	"math"
	"sort"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/quantization"
	"gqr/internal/vecmath"
)

// IMICurve measures the OPQ+IMI system the same way MethodCurve measures
// an L2H method: candidates are gathered from the inverted multi-index
// cell by cell, then evaluated with exact distances (identical
// evaluation stage to the hashing pipeline, so the curves compare the
// retrieval structures — which is the comparison the paper's §6.5
// makes).
func IMICurve(ds *dataset.Dataset, imi *quantization.IMI, budgets []float64, k int) (Curve, error) {
	curve := Curve{Label: "opq+imi"}
	n := ds.N()
	// Untimed warm-up pass (see MethodCurve).
	for qi := 0; qi < ds.NQ(); qi++ {
		imi.Retrieve(ds.Query(qi), k*4)
	}
	for _, frac := range budgets {
		budget := int(math.Ceil(frac * float64(n)))
		if budget < k {
			budget = k
		}
		var totalRecall, totalCand float64
		start := time.Now()
		results := make([][]int32, ds.NQ())
		for qi := 0; qi < ds.NQ(); qi++ {
			q := ds.Query(qi)
			cands := imi.Retrieve(q, budget)
			totalCand += float64(len(cands))
			results[qi] = exactTopK(ds, q, cands, k)
		}
		elapsed := time.Since(start)
		for qi := 0; qi < ds.NQ(); qi++ {
			truth := ds.GroundTruth[qi]
			if len(truth) > k {
				truth = truth[:k]
			}
			totalRecall += Recall(results[qi], truth)
		}
		nq := float64(ds.NQ())
		curve.Points = append(curve.Points, Point{
			BudgetFrac: frac,
			Recall:     totalRecall / nq,
			Time:       elapsed,
			Candidates: totalCand / nq,
		})
	}
	return curve, nil
}

// scoredID pairs a candidate with its exact distance during evaluation.
type scoredID struct {
	id   int32
	dist float64
}

// exactTopK evaluates candidate ids with exact distances and returns the
// k best (ascending distance, ties by id).
func exactTopK(ds *dataset.Dataset, q []float32, cands []int32, k int) []int32 {
	all := make([]scoredID, len(cands))
	for i, id := range cands {
		all[i] = scoredID{id: id, dist: vecmath.SquaredL2(q, ds.Vector(int(id)))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].id
	}
	return out
}
