package bench

import (
	"math"
	"strings"
	"testing"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/query"
)

func TestRecallAndPrecision(t *testing.T) {
	truth := []int32{1, 2, 3, 4}
	result := []int32{2, 4, 9}
	if r := Recall(result, truth); r != 0.5 {
		t.Fatalf("recall = %g", r)
	}
	if p := Precision(result, truth); math.Abs(p-2.0/3) > 1e-12 {
		t.Fatalf("precision = %g", p)
	}
	if r := Recall(nil, nil); r != 1 {
		t.Fatalf("empty truth recall = %g", r)
	}
	if p := Precision(nil, truth); p != 0 {
		t.Fatalf("empty result precision = %g", p)
	}
}

func TestTimeToRecallInterpolation(t *testing.T) {
	c := Curve{Label: "x", Points: []Point{
		{Recall: 0.5, Time: 100 * time.Millisecond, Candidates: 10},
		{Recall: 0.9, Time: 300 * time.Millisecond, Candidates: 50},
	}}
	// Target 0.7 is halfway between 0.5 and 0.9.
	got, err := TimeToRecall(c, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if diff := got - 200*time.Millisecond; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("TimeToRecall = %v, want ~200ms", got)
	}
	cands, err := CandidatesToRecall(c, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cands-30) > 1e-9 {
		t.Fatalf("CandidatesToRecall = %g", cands)
	}
	if _, err := TimeToRecall(c, 0.95); err == nil {
		t.Fatal("unreachable target must error")
	}
}

func TestSpeedup(t *testing.T) {
	base := Curve{Points: []Point{{Recall: 1, Time: 400 * time.Millisecond}}}
	fast := Curve{Points: []Point{{Recall: 1, Time: 100 * time.Millisecond}}}
	sp, err := Speedup(base, fast, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sp-4) > 1e-9 {
		t.Fatalf("speedup = %g", sp)
	}
}

func TestPointPrecision(t *testing.T) {
	p := Point{Recall: 0.5, Candidates: 100}
	if got := PointPrecision(p, 20); got != 0.1 {
		t.Fatalf("PointPrecision = %g", got)
	}
	if got := PointPrecision(Point{}, 20); got != 0 {
		t.Fatal("zero candidates must give zero precision")
	}
}

func quickOpts() RunOptions {
	return RunOptions{Scale: 0.02, NQ: 8, K: 5, Budgets: []float64{0.01, 0.1, 1.0}}
}

func TestMethodCurveMonotoneRecall(t *testing.T) {
	opt := quickOpts()
	ds := corpus(dataset.CorpusAUDIO, opt)
	ix, err := buildIndex(ds, opt, dataset.CorpusAUDIO, "itq", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := MethodCurve(ds, ix, query.NewGQR(ix), opt.Budgets, opt.K)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Points) != 3 {
		t.Fatalf("%d points", len(c.Points))
	}
	for i := 1; i < len(c.Points); i++ {
		if c.Points[i].Recall < c.Points[i-1].Recall-1e-9 {
			t.Fatalf("recall decreased along the budget sweep: %+v", c.Points)
		}
	}
	final := c.Points[len(c.Points)-1]
	if final.Recall != 1 {
		t.Fatalf("full budget recall = %g, want 1", final.Recall)
	}
	if final.Candidates != float64(ds.N()) {
		t.Fatalf("full budget evaluated %g items, want %d", final.Candidates, ds.N())
	}
}

func TestMeasureMethodsCacheHit(t *testing.T) {
	opt := quickOpts()
	c1, err := measureMethods(opt, dataset.CorpusAUDIO, "pcah", 0, 1, []string{"gqr"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := measureMethods(opt, dataset.CorpusAUDIO, "pcah", 0, 1, []string{"gqr"})
	if err != nil {
		t.Fatal(err)
	}
	// Cached curves are returned as-is, including identical timings.
	if c1[0].Points[0].Time != c2[0].Points[0].Time {
		t.Fatal("curve cache miss on identical key")
	}
}

func TestIMICurveReachesFullRecall(t *testing.T) {
	opt := quickOpts()
	ds := corpus(dataset.CorpusAUDIO, opt)
	imi, err := imiFor(ds, opt, dataset.CorpusAUDIO)
	if err != nil {
		t.Fatal(err)
	}
	c, err := IMICurve(ds, imi, opt.Budgets, opt.K)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Points[len(c.Points)-1].Recall; got != 1 {
		t.Fatalf("full-budget IMI recall = %g", got)
	}
}

func TestExperimentRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) < 20 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
	for _, id := range []string{"table1", "fig7", "fig17", "abl-heap"} {
		if _, err := ByID(id); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("ByID must reject unknown ids")
	}
}

// TestAllExperimentsSmoke runs every registered experiment at a tiny
// scale: the full harness must execute end to end and produce output.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke test skipped in -short mode")
	}
	opt := RunOptions{Scale: 0.01, NQ: 5, K: 5, Budgets: []float64{0.05, 1.0}}
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			if err := e.Run(opt, &sb); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
		})
	}
}

func TestWriteCurvesAndCSV(t *testing.T) {
	c := []Curve{{Label: "gqr", Points: []Point{{BudgetFrac: 0.1, Recall: 0.9, Time: time.Millisecond, Candidates: 42, Buckets: 7}}}}
	var sb strings.Builder
	WriteCurves(&sb, "demo", c)
	if !strings.Contains(sb.String(), "gqr") || !strings.Contains(sb.String(), "0.9") {
		t.Fatalf("WriteCurves output missing data:\n%s", sb.String())
	}
	sb.Reset()
	WriteCSV(&sb, c)
	if !strings.Contains(sb.String(), "gqr,0.1,0.9") {
		t.Fatalf("WriteCSV output wrong:\n%s", sb.String())
	}
	sb.Reset()
	WriteTimeToRecall(&sb, "ttr", c, []float64{0.5, 0.99})
	out := sb.String()
	if !strings.Contains(out, "50") || !strings.Contains(out, "n/a") {
		t.Fatalf("WriteTimeToRecall output wrong:\n%s", out)
	}
}

func TestFmtHelpers(t *testing.T) {
	cases := map[time.Duration]string{
		2 * time.Second:      "2.00s",
		3 * time.Millisecond: "3.00ms",
		4 * time.Microsecond: "4.0µs",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Fatalf("fmtDur(%v) = %q, want %q", d, got, want)
		}
	}
	if got := fmtBytes(2 << 20); got != "2.0MiB" {
		t.Fatalf("fmtBytes = %q", got)
	}
}

func TestMeasureTraining(t *testing.T) {
	cost, err := MeasureTraining(func() error {
		_ = make([]byte, 1<<20)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if cost.AllocBytes < 1<<20 {
		t.Fatalf("alloc accounting too low: %d", cost.AllocBytes)
	}
	if cost.WallTime < 0 || cost.CPUTime != cost.WallTime {
		t.Fatalf("cost times inconsistent: %+v", cost)
	}
}
