package bench

import (
	"io"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/query"
)

func init() {
	register("abl-kmh-affinity", "Ablation: KMH affinity-preserving refinement on/off (Figure 20 fidelity)", runAblKMHAffinity)
}

// runAblKMHAffinity compares GQR over K-means hashing trained with the
// original affinity-preserving refinement against plain-Lloyd
// codebooks. Affinity-preserving training is what makes Hamming/flip
// neighborhoods geometrically meaningful, which both GHR and GQR's
// flipping costs exploit.
func runAblKMHAffinity(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: KMH affinity-preserving refinement")
	name := dataset.CorpusCIFAR
	ds := corpus(name, opt)
	bits := index.CodeLengthFor(ds.N(), 10)
	if bits%2 != 0 {
		bits++
	}
	var curves []Curve
	for _, cfg := range []struct {
		label string
		l     hash.Learner
	}{
		{"kmh-affinity", hash.KMH{SubspaceBits: 2, Iterations: 15, Affinity: 3, AffinitySweeps: 10}},
		{"kmh-plain", hash.KMH{SubspaceBits: 2, Iterations: 15, Affinity: -1}},
	} {
		ix, err := index.Build(cfg.l, ds.Vectors, ds.N(), ds.Dim, bits, 1, 6000+opt.Seed)
		if err != nil {
			return err
		}
		for _, mName := range []string{"gqr", "ghr"} {
			m, err := query.NewMethod(mName, ix)
			if err != nil {
				return err
			}
			c, err := MethodCurve(ds, ix, m, opt.Budgets, opt.K)
			if err != nil {
				return err
			}
			c.Label = cfg.label + "+" + mName
			curves = append(curves, c)
		}
	}
	WriteCurves(w, name, curves)
	return nil
}
