package bench

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/index"
	"gqr/internal/quantization"
	"gqr/internal/query"
)

// primary is the paper's four main corpora (simulated analogues).
func primary() []string { return dataset.AllCorpora() }

func init() {
	register("table1", "Table 1: dataset statistics and linear search time", runTable1)
	register("fig2", "Figure 2: number of buckets versus Hamming distance", runFig2)
	register("fig4", "Figure 4: Hamming ranking with different code lengths", runFig4)
	register("fig6", "Figure 6: GQR versus QR (slow start)", runFig6)
	register("fig7", "Figure 7: GQR versus HR/GHR, recall-time (ITQ)", runFig7)
	register("fig8", "Figure 8: recall versus retrieved items (ITQ)", runFig8)
	register("fig9", "Figure 9: querying time at typical recalls (ITQ)", runFig9)
	register("fig10", "Figure 10: effect of code length", runFig10)
	register("fig11", "Figure 11: speedup over HR for various k", runFig11)
	register("fig12", "Figure 12: multiple hash tables (GHR) vs one-table GQR", runFig12)
	register("fig13", "Figure 13: GQR versus HR/GHR, recall-time (PCAH)", runFig13)
	register("fig14", "Figure 14: querying time at typical recalls (PCAH)", runFig14)
	register("fig15", "Figure 15: GQR versus HR/GHR, recall-time (SH)", runFig15)
	register("fig16", "Figure 16: querying time at typical recalls (SH)", runFig16)
	register("fig17", "Figure 17: PCAH+GQR versus OPQ+IMI", runFig17)
	register("table2", "Table 2: training cost, OPQ versus PCAH", runTable2)
	register("fig18", "Figure 18: GQR/GHR versus MIH (ITQ)", runFig18)
	register("fig19", "Figure 19: GQR/GHR versus MIH (PCAH)", runFig19)
	register("fig20", "Figure 20: GQR versus GHR with K-means hashing", runFig20)
	register("fig21", "Figures 21-22 & Table 3: eight additional datasets vs OPQ+IMI", runFig21)
	register("abl-heap", "Ablation: GQR min-heap versus naive frontier scan", runAblHeap)
	register("abl-tree", "Ablation: on-the-fly Append/Swap versus shared generation tree", runAblTree)
	register("abl-pack", "Ablation: packed uint64 codes versus byte-slice codes", runAblPack)
	register("abl-earlystop", "Ablation: QD lower-bound early stop", runAblEarlyStop)
}

func runTable1(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Table 1: dataset statistics and linear search")
	fmt.Fprintf(w, "%-14s %-8s %-10s %-14s %-12s\n", "dataset", "dim", "items", "linear-search", "per-query")
	for _, name := range primary() {
		ds := corpus(name, opt)
		start := time.Now()
		ds.LinearSearchAll(opt.K)
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-14s %-8d %-10d %-14s %-12s\n",
			name, ds.Dim, ds.N(), fmtDur(elapsed), fmtDur(elapsed/time.Duration(ds.NQ())))
	}
	return nil
}

func runFig2(opt RunOptions, w io.Writer) error {
	Rule(w, "Figure 2: #buckets vs Hamming distance (m = 20)")
	fmt.Fprintf(w, "%-10s %-14s\n", "distance", "#buckets C(20,r)")
	c := 1.0
	for r := 0; r <= 20; r++ {
		fmt.Fprintf(w, "%-10d %-14.0f\n", r, c)
		c = c * float64(20-r) / float64(r+1)
	}
	fmt.Fprintln(w, "\nEven at moderate distances the bucket count explodes, so Hamming")
	fmt.Fprintln(w, "ranking cannot order buckets within a distance class.")
	return nil
}

func runFig4(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 4: Hamming ranking at different code lengths (cifar-sim, ITQ)")
	ds := corpus(dataset.CorpusCIFAR, opt)
	def := index.CodeLengthFor(ds.N(), 10)
	lengths := []int{def - 2, def + 4, def + 10} // scaled stand-ins for 16/32/64
	var curves []Curve
	for _, bits := range lengths {
		cs, err := measureMethods(opt, dataset.CorpusCIFAR, "itq", bits, 1, []string{"hr"})
		if err != nil {
			return err
		}
		cs[0].Label = fmt.Sprintf("hr-%d", bits)
		curves = append(curves, cs[0])
	}
	fmt.Fprintln(w, "\n(a) precision versus recall — longer codes are more precise")
	fmt.Fprintf(w, "%-10s", "recall")
	for _, c := range curves {
		fmt.Fprintf(w, " | %-12s", c.Label)
	}
	fmt.Fprintln(w)
	for i := range curves[0].Points {
		fmt.Fprintf(w, "%-10.3f", curves[0].Points[i].Recall)
		for _, c := range curves {
			fmt.Fprintf(w, " | %-12.4f", PointPrecision(c.Points[i], opt.K))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "\n(b) recall versus time — longer codes are slower to query")
	WriteCurves(w, "recall-time", curves)
	return nil
}

func runFig6(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 6: GQR vs QR")
	for _, name := range primary() {
		curves, err := measureMethods(opt, name, "itq", 0, 1, []string{"gqr", "qr"})
		if err != nil {
			return err
		}
		ds := corpus(name, opt)
		ix, err := buildIndex(ds, opt, name, "itq", 0, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%s: %d buckets (QR sorts all of them before the first probe)\n",
			name, ix.BucketCount(0))
		WriteCurves(w, name, curves)
	}
	return nil
}

// methodComparison renders the fig7/13/15/18/19-style experiments.
func methodComparison(opt RunOptions, w io.Writer, title, learner string, methods []string) error {
	opt = opt.normalize()
	Rule(w, title)
	for _, name := range primary() {
		curves, err := measureMethods(opt, name, learner, 0, 1, methods)
		if err != nil {
			return err
		}
		WriteCurves(w, name, curves)
	}
	return nil
}

// timeToRecallComparison renders the fig9/14/16-style experiments.
func timeToRecallComparison(opt RunOptions, w io.Writer, title, learner string, methods []string) error {
	opt = opt.normalize()
	Rule(w, title)
	for _, name := range primary() {
		curves, err := measureMethods(opt, name, learner, 0, 1, methods)
		if err != nil {
			return err
		}
		WriteTimeToRecall(w, name, curves, []float64{0.80, 0.85, 0.90, 0.95})
	}
	return nil
}

func runFig7(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figure 7: GQR vs GHR vs HR (ITQ)", "itq", []string{"gqr", "ghr", "hr"})
}

func runFig8(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 8: recall vs retrieved items (ITQ)")
	for _, name := range primary() {
		curves, err := measureMethods(opt, name, "itq", 0, 1, []string{"gqr", "ghr", "hr"})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "## %s\n\n%-10s", name, "items")
		for _, c := range curves {
			fmt.Fprintf(w, " | %-12s", c.Label+"·recall")
		}
		fmt.Fprintln(w)
		for i := range curves[0].Points {
			fmt.Fprintf(w, "%-10.0f", curves[0].Points[i].Candidates)
			for _, c := range curves {
				fmt.Fprintf(w, " | %-12.4f", c.Points[i].Recall)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig9(opt RunOptions, w io.Writer) error {
	return timeToRecallComparison(opt, w, "Figure 9: time to typical recalls (ITQ)", "itq", []string{"hr", "ghr", "gqr"})
}

func runFig10(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 10: effect of code length (time to 90% recall)")
	for _, name := range []string{dataset.CorpusTINY, dataset.CorpusSIFT} {
		ds := corpus(name, opt)
		def := index.CodeLengthFor(ds.N(), 10)
		fmt.Fprintf(w, "## %s (default code length %d)\n\n", name, def)
		fmt.Fprintf(w, "%-8s | %-12s | %-12s | %-12s\n", "bits", "hr", "ghr", "gqr")
		for _, bits := range []int{def - 2, def, def + 2, def + 4} {
			fmt.Fprintf(w, "%-8d", bits)
			curves, err := measureMethods(opt, name, "itq", bits, 1, []string{"hr", "ghr", "gqr"})
			if err != nil {
				return err
			}
			for _, c := range curves {
				if t, err := TimeToRecall(c, 0.90); err == nil {
					fmt.Fprintf(w, " | %-12s", fmtDur(t))
				} else {
					fmt.Fprintf(w, " | %-12s", "n/a")
				}
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig11(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 11: speedup over HR to reach 90% recall, varying k")
	for _, name := range []string{dataset.CorpusTINY, dataset.CorpusSIFT} {
		fmt.Fprintf(w, "## %s\n\n%-8s | %-10s | %-10s\n", name, "k", "ghr", "gqr")
		for _, k := range []int{1, 10, 50, 100} {
			kOpt := opt
			kOpt.K = k
			curves, err := measureMethods(kOpt, name, "itq", 0, 1, []string{"hr", "ghr", "gqr"})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-8d", k)
			for _, c := range curves[1:] {
				sp, err := Speedup(curves[0], c, 0.90)
				if err != nil {
					fmt.Fprintf(w, " | %-10s", "n/a")
					continue
				}
				fmt.Fprintf(w, " | %-10.2f", sp)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintln(w)
	}
	return nil
}

func runFig12(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 12: multi-table GHR vs single-table GQR")
	targets := []float64{0.80, 0.85, 0.90, 0.95, 0.98, 0.99}
	for _, name := range []string{dataset.CorpusTINY, dataset.CorpusSIFT} {
		ds := corpus(name, opt)
		var curves []Curve
		for _, tables := range []int{1, 10, 20, 30} {
			cs, err := measureMethods(opt, name, "itq", 0, tables, []string{"ghr"})
			if err != nil {
				return err
			}
			cs[0].Label = fmt.Sprintf("ghr(%d)", tables)
			curves = append(curves, cs[0])
			ix, err := buildIndex(ds, opt, name, "itq", 0, tables)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "ghr(%d) index memory: %s\n", tables, fmtBytes(uint64(ix.MemoryBytes())))
		}
		cs, err := measureMethods(opt, name, "itq", 0, 1, []string{"gqr"})
		if err != nil {
			return err
		}
		cs[0].Label = "gqr(1)"
		curves = append(curves, cs[0])
		ix1, err := buildIndex(ds, opt, name, "itq", 0, 1)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "gqr(1) index memory: %s — the paper's memory-saving claim\n\n", fmtBytes(uint64(ix1.MemoryBytes())))
		WriteTimeToRecall(w, name, curves, targets)
	}
	return nil
}

func runFig13(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figure 13: GQR vs GHR vs HR (PCAH)", "pcah", []string{"gqr", "ghr", "hr"})
}

func runFig14(opt RunOptions, w io.Writer) error {
	return timeToRecallComparison(opt, w, "Figure 14: time to typical recalls (PCAH)", "pcah", []string{"hr", "ghr", "gqr"})
}

func runFig15(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figure 15: GQR vs GHR vs HR (SH)", "sh", []string{"gqr", "ghr", "hr"})
}

func runFig16(opt RunOptions, w io.Writer) error {
	return timeToRecallComparison(opt, w, "Figure 16: time to typical recalls (SH)", "sh", []string{"hr", "ghr", "gqr"})
}

// imiFor builds (or reuses) the OPQ+IMI system for a corpus.
type imiKey struct {
	corpus string
	scale  float64
	nq, k  int
	seed   int64
}

var imiCache = map[imiKey]*quantization.IMI{}

func imiFor(ds *dataset.Dataset, opt RunOptions, corpusName string) (*quantization.IMI, error) {
	key := imiKey{corpusName, opt.Scale, opt.NQ, opt.K, opt.Seed}
	if imi, ok := imiCache[key]; ok {
		return imi, nil
	}
	// Coarse codebook sized so cells ≈ buckets of the L2H index
	// (K² ≈ N/10), keeping the comparison structure-for-structure fair.
	kCoarse := int(math.Sqrt(float64(ds.N()) / 10))
	if kCoarse < 4 {
		kCoarse = 4
	}
	if kCoarse > 64 {
		kCoarse = 64
	}
	cfg := quantization.IMIConfig{
		M: 4, KFine: 16, KCoarse: kCoarse,
		OPQIters: 5, KMeansIters: 10,
		TrainSample: 10000,
		Seed:        2000 + opt.Seed,
	}
	imi, err := quantization.BuildIMI(ds.Vectors, ds.N(), ds.Dim, cfg)
	if err != nil {
		return nil, err
	}
	imiCache[key] = imi
	return imi, nil
}

func runFig17(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figure 17: PCAH+GQR vs PCAH+GHR vs OPQ+IMI")
	for _, name := range primary() {
		ds := corpus(name, opt)
		curves, err := measureMethods(opt, name, "pcah", 0, 1, []string{"gqr", "ghr"})
		if err != nil {
			return err
		}
		curves[0].Label = "pcah+gqr"
		curves[1].Label = "pcah+ghr"
		imi, err := imiFor(ds, opt, name)
		if err != nil {
			return err
		}
		ic, err := IMICurve(ds, imi, opt.Budgets, opt.K)
		if err != nil {
			return err
		}
		curves = append(curves, ic)
		WriteCurves(w, name, curves)
	}
	return nil
}

func runTable2(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Table 2: training cost, OPQ vs PCAH")
	fmt.Fprintf(w, "%-14s | %-12s %-12s | %-12s %-12s\n", "dataset", "opq-wall", "opq-alloc", "pcah-wall", "pcah-alloc")
	for _, name := range primary() {
		ds := corpus(name, opt)
		opqCost, err := MeasureTraining(func() error {
			_, e := imiTrainOnly(ds, opt)
			return e
		})
		if err != nil {
			return err
		}
		pcahCost, err := MeasureTraining(func() error {
			l, e := learnerFor("pcah")
			if e != nil {
				return e
			}
			bits := index.CodeLengthFor(ds.N(), 10)
			_, e = l.Train(ds.Vectors, ds.N(), ds.Dim, bits, 1)
			return e
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-14s | %-12s %-12s | %-12s %-12s\n", name,
			fmtDur(opqCost.WallTime), fmtBytes(opqCost.AllocBytes),
			fmtDur(pcahCost.WallTime), fmtBytes(pcahCost.AllocBytes))
	}
	fmt.Fprintln(w, "\nCPU time equals wall time here (single-threaded); the paper's CPU/wall")
	fmt.Fprintln(w, "gap came from MATLAB's multi-core BLAS.")
	return nil
}

// imiTrainOnly trains a fresh OPQ+IMI without caching, for cost
// measurement.
func imiTrainOnly(ds *dataset.Dataset, opt RunOptions) (*quantization.IMI, error) {
	kCoarse := int(math.Sqrt(float64(ds.N()) / 10))
	if kCoarse < 4 {
		kCoarse = 4
	}
	if kCoarse > 64 {
		kCoarse = 64
	}
	return quantization.BuildIMI(ds.Vectors, ds.N(), ds.Dim, quantization.IMIConfig{
		M: 4, KFine: 16, KCoarse: kCoarse,
		OPQIters: 5, KMeansIters: 10, TrainSample: 10000, Seed: 3000 + opt.Seed,
	})
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

func runFig18(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figures 18: GQR vs GHR vs MIH (ITQ)", "itq", []string{"gqr", "ghr", "mih"})
}

func runFig19(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figure 19: GQR vs GHR vs MIH (PCAH)", "pcah", []string{"gqr", "ghr", "mih"})
}

func runFig20(opt RunOptions, w io.Writer) error {
	return methodComparison(opt, w, "Figure 20: GQR vs GHR with K-means hashing", "kmh", []string{"gqr", "ghr"})
}

func runFig21(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Figures 21-22 & Table 3: additional datasets")
	fmt.Fprintf(w, "%-16s %-6s %-10s %-6s\n", "dataset", "dim", "items", "bits")
	for _, name := range dataset.AppendixCorpora() {
		ds := corpus(name, opt)
		fmt.Fprintf(w, "%-16s %-6d %-10d %-6d\n", name, ds.Dim, ds.N(), index.CodeLengthFor(ds.N(), 10))
	}
	fmt.Fprintln(w)
	for _, name := range dataset.AppendixCorpora() {
		ds := corpus(name, opt)
		var curves []Curve
		for _, learner := range []string{"itq", "pcah"} {
			cs, err := measureMethods(opt, name, learner, 0, 1, []string{"gqr"})
			if err != nil {
				return err
			}
			cs[0].Label = learner + "+gqr"
			curves = append(curves, cs[0])
		}
		imi, err := imiFor(ds, opt, name)
		if err != nil {
			return err
		}
		ic, err := IMICurve(ds, imi, opt.Budgets, opt.K)
		if err != nil {
			return err
		}
		curves = append(curves, ic)
		WriteCurves(w, name, curves)
	}
	return nil
}

// ---- ablations -------------------------------------------------------

func runAblHeap(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: GQR heap vs naive frontier scan (bucket generation only)")
	ds := corpus(dataset.CorpusTINY, opt)
	ix, err := buildIndex(ds, opt, dataset.CorpusTINY, "itq", 0, 1)
	if err != nil {
		return err
	}
	gen := 1 << uint(ix.Bits())
	if gen > 8192 {
		gen = 8192
	}
	fmt.Fprintf(w, "generating the first %d buckets for %d queries:\n\n", gen, ds.NQ())
	for _, m := range []query.Method{query.NewGQR(ix), query.NewGQRNaive(ix)} {
		start := time.Now()
		var sink uint64
		for qi := 0; qi < ds.NQ(); qi++ {
			seq := m.NewSequence(0, ds.Query(qi))
			for i := 0; i < gen; i++ {
				code, _, ok := seq.Next()
				if !ok {
					break
				}
				sink ^= code
			}
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-12s %-12s (%.0f ns/bucket, checksum %x)\n",
			m.Name(), fmtDur(elapsed), float64(elapsed.Nanoseconds())/float64(gen*ds.NQ()), sink)
	}
	return nil
}

func runAblTree(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: bit-op Append/Swap vs shared generation-tree array")
	ds := corpus(dataset.CorpusCIFAR, opt)
	ix, err := buildIndex(ds, opt, dataset.CorpusCIFAR, "itq", 0, 1)
	if err != nil {
		return err
	}
	gen := 1 << uint(ix.Bits())
	fmt.Fprintf(w, "full enumeration (%d buckets) for %d queries:\n\n", gen, ds.NQ())
	for _, m := range []query.Method{query.NewGQR(ix), query.NewGQRSharedTree(ix)} {
		start := time.Now()
		var sink uint64
		for qi := 0; qi < ds.NQ(); qi++ {
			seq := m.NewSequence(0, ds.Query(qi))
			for {
				code, _, ok := seq.Next()
				if !ok {
					break
				}
				sink ^= code
			}
		}
		elapsed := time.Since(start)
		fmt.Fprintf(w, "%-12s %-12s (%.0f ns/bucket, checksum %x)\n",
			m.Name(), fmtDur(elapsed), float64(elapsed.Nanoseconds())/float64(gen*ds.NQ()), sink)
	}
	return nil
}

func runAblPack(opt RunOptions, w io.Writer) error {
	Rule(w, "Ablation: Hamming distance on packed uint64 vs byte-slice codes")
	const n = 1 << 16
	rng := rand.New(rand.NewSource(9))
	packed := make([]uint64, n)
	unpacked := make([][]byte, n)
	const m = 20
	for i := range packed {
		packed[i] = uint64(rng.Int63()) & ((1 << m) - 1)
		b := make([]byte, m)
		for j := 0; j < m; j++ {
			b[j] = byte((packed[i] >> uint(j)) & 1)
		}
		unpacked[i] = b
	}
	q := packed[0]
	qb := unpacked[0]

	start := time.Now()
	var sink int
	const reps = 50
	for r := 0; r < reps; r++ {
		for _, c := range packed {
			sink += popcountSlow(c ^ q)
		}
	}
	tPacked := time.Since(start)

	start = time.Now()
	for r := 0; r < reps; r++ {
		for _, c := range unpacked {
			d := 0
			for j := 0; j < m; j++ {
				if c[j] != qb[j] {
					d++
				}
			}
			sink += d
		}
	}
	tBytes := time.Since(start)
	fmt.Fprintf(w, "packed xor+popcount: %-10s (%.1f ns/code)\n", fmtDur(tPacked), float64(tPacked.Nanoseconds())/float64(n*reps))
	fmt.Fprintf(w, "byte-slice loop:     %-10s (%.1f ns/code)\n", fmtDur(tBytes), float64(tBytes.Nanoseconds())/float64(n*reps))
	fmt.Fprintf(w, "speedup: %.1fx (checksum %d)\n", float64(tBytes)/float64(tPacked), sink)
	return nil
}

func popcountSlow(x uint64) int {
	n := 0
	for x != 0 {
		x &= x - 1
		n++
	}
	return n
}

func runAblEarlyStop(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: QD lower-bound early stop (ITQ, exact search)")
	ds := corpus(dataset.CorpusCIFAR, opt)
	ix, err := buildIndex(ds, opt, dataset.CorpusCIFAR, "itq", 0, 1)
	if err != nil {
		return err
	}
	mu := 1 / math.Sqrt(float64(ix.Bits())) // ITQ: σ_max(H) = 1
	for _, es := range []bool{false, true} {
		s := query.NewSearcher(ix, query.NewGQR(ix))
		var buckets, cands float64
		stopped := 0
		start := time.Now()
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), query.Options{K: opt.K, EarlyStop: es, Mu: mu})
			if err != nil {
				return err
			}
			buckets += float64(res.Stats.BucketsGenerated)
			cands += float64(res.Stats.Candidates)
			if res.Stats.EarlyStopped {
				stopped++
			}
		}
		elapsed := time.Since(start)
		nq := float64(ds.NQ())
		fmt.Fprintf(w, "early-stop=%-5v time=%-10s avg-buckets=%-10.0f avg-items=%-10.0f stopped=%d/%d\n",
			es, fmtDur(elapsed), buckets/nq, cands/nq, stopped, ds.NQ())
	}
	fmt.Fprintln(w, "\nBoth configurations return the exact k-NN; early stop prunes the tail.")
	return nil
}
