package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// WriteCurves renders curves as an aligned text table: one row per
// budget, one column group per curve. This is the textual equivalent of
// the paper's recall-time figures.
func WriteCurves(w io.Writer, title string, curves []Curve) {
	fmt.Fprintf(w, "## %s\n\n", title)
	if len(curves) == 0 {
		fmt.Fprintln(w, "(no data)")
		return
	}
	fmt.Fprintf(w, "%-8s", "budget")
	for _, c := range curves {
		fmt.Fprintf(w, " | %-10s %-10s %-10s", c.Label+"·recall", "time", "items")
	}
	fmt.Fprintln(w)
	n := 0
	for _, c := range curves {
		if len(c.Points) > n {
			n = len(c.Points)
		}
	}
	for i := 0; i < n; i++ {
		var budget string
		for _, c := range curves {
			if i < len(c.Points) {
				budget = fmt.Sprintf("%.3f", c.Points[i].BudgetFrac)
				break
			}
		}
		fmt.Fprintf(w, "%-8s", budget)
		for _, c := range curves {
			if i >= len(c.Points) {
				fmt.Fprintf(w, " | %-32s", "")
				continue
			}
			p := c.Points[i]
			fmt.Fprintf(w, " | %-10.4f %-10s %-10.0f", p.Recall, fmtDur(p.Time), p.Candidates)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteTimeToRecall renders the Figure 9/14/16-style bar data: the time
// each method needs to reach each target recall.
func WriteTimeToRecall(w io.Writer, title string, curves []Curve, targets []float64) {
	fmt.Fprintf(w, "## %s\n\n", title)
	fmt.Fprintf(w, "%-10s", "recall")
	for _, c := range curves {
		fmt.Fprintf(w, " | %-12s", c.Label)
	}
	fmt.Fprintln(w)
	for _, target := range targets {
		fmt.Fprintf(w, "%-10.0f%%", target*100)
		for _, c := range curves {
			t, err := TimeToRecall(c, target)
			if err != nil {
				fmt.Fprintf(w, " | %-12s", "n/a")
				continue
			}
			fmt.Fprintf(w, " | %-12s", fmtDur(t))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)
}

// WriteCSV emits curves in a machine-readable form for plotting.
func WriteCSV(w io.Writer, curves []Curve) {
	fmt.Fprintln(w, "label,budget_frac,recall,time_seconds,candidates,buckets")
	for _, c := range curves {
		for _, p := range c.Points {
			fmt.Fprintf(w, "%s,%g,%g,%g,%g,%g\n",
				c.Label, p.BudgetFrac, p.Recall, p.Time.Seconds(), p.Candidates, p.Buckets)
		}
	}
}

// fmtDur renders durations compactly with ~3 significant digits.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}

// Rule renders a section separator for multi-part experiment output.
func Rule(w io.Writer, name string) {
	fmt.Fprintf(w, "%s\n%s\n", name, strings.Repeat("=", len(name)))
}
