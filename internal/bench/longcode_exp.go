package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/longcode"
)

func init() {
	register("abl-longcode", "Ablation: long-code linear Hamming scan versus bucket-based GQR (§3 discussion)", runAblLongCode)
}

// runAblLongCode measures the traditional fix for Hamming coarseness —
// long codes with a full linear Hamming scan — against short-code
// GQR. The paper's §1/§3 position: long codes classify buckets more
// finely but pay in sort time, storage, and scalability; GQR achieves
// the fine ranking at short code lengths instead.
func runAblLongCode(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: long-code linear scan vs bucket-based GQR")
	name := dataset.CorpusCIFAR
	ds := corpus(name, opt)

	gqrCurves, err := measureMethods(opt, name, "itq", 0, 1, []string{"gqr"})
	if err != nil {
		return err
	}
	bits := index.CodeLengthFor(ds.N(), 10)
	gqrCurves[0].Label = fmt.Sprintf("gqr-%db", bits)
	curves := []Curve{gqrCurves[0]}

	for _, codeBits := range []int{64, 128} {
		sc, err := longcode.Build(hash.ITQ{Iterations: 30}, ds.Vectors, ds.N(), ds.Dim, codeBits, 5000+opt.Seed)
		if err != nil {
			return err
		}
		c := Curve{Label: fmt.Sprintf("scan-%db", codeBits)}
		for _, frac := range opt.Budgets {
			rerank := int(math.Ceil(frac * float64(ds.N())))
			if rerank < opt.K {
				rerank = opt.K
			}
			var totalRecall float64
			start := time.Now()
			results := make([][]int32, ds.NQ())
			for qi := 0; qi < ds.NQ(); qi++ {
				results[qi] = sc.Search(ds.Query(qi), opt.K, rerank)
			}
			elapsed := time.Since(start)
			for qi := 0; qi < ds.NQ(); qi++ {
				truth := ds.GroundTruth[qi]
				if len(truth) > opt.K {
					truth = truth[:opt.K]
				}
				totalRecall += Recall(results[qi], truth)
			}
			c.Points = append(c.Points, Point{
				BudgetFrac: frac,
				Recall:     totalRecall / float64(ds.NQ()),
				Time:       elapsed,
				Candidates: float64(rerank),
			})
		}
		curves = append(curves, c)
		fmt.Fprintf(w, "scan-%db code storage: %.1f MiB (vs %d-bit bucket index)\n",
			codeBits, float64(sc.MemoryBytes())/(1<<20), bits)
	}
	fmt.Fprintln(w)
	WriteCurves(w, name, curves)
	fmt.Fprintln(w, "The linear scan pays O(N) Hamming distance computations per query at")
	fmt.Fprintln(w, "any budget; GQR's fine-grained QD ranking reaches the same recall from a")
	fmt.Fprintln(w, "short-code bucket index while probing a fraction of the items.")
	return nil
}
