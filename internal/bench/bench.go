// Package bench is the experiment harness: it measures recall-time and
// recall-items curves, solves for time-to-target-recall, compares
// querying methods and learners, and regenerates every table and figure
// of the paper's evaluation (see the registry in experiments.go).
package bench

import (
	"fmt"
	"math"
	"sort"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/index"
	"gqr/internal/query"
)

// Point is one measurement on a recall-vs-work curve: all queries run
// with one candidate budget.
type Point struct {
	// BudgetFrac is the candidate budget as a fraction of the dataset.
	BudgetFrac float64
	// Recall is the average fraction of true k-NN found.
	Recall float64
	// Time is the total query-processing wall time across all queries.
	Time time.Duration
	// Candidates is the average number of items evaluated per query.
	Candidates float64
	// Buckets is the average number of buckets generated per query.
	Buckets float64
}

// Curve is a labelled series of points, one per budget.
type Curve struct {
	Label  string
	Points []Point
}

// Recall returns |result ∩ truth| / |truth|.
func Recall(result, truth []int32) float64 {
	if len(truth) == 0 {
		return 1
	}
	in := make(map[int32]bool, len(result))
	for _, id := range result {
		in[id] = true
	}
	hit := 0
	for _, id := range truth {
		if in[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(truth))
}

// DefaultBudgets is the budget sweep used by the figure experiments:
// candidate budgets as fractions of N, log-spaced up to the full
// dataset. The final 1.0 point pins the recall-1 end of every curve.
var DefaultBudgets = []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0}

// MethodCurve measures one querying method on one index: for every
// budget, run all queries and record recall and total time. The searcher
// is reused so the visited-epoch array is warm, matching a serving
// deployment.
func MethodCurve(ds *dataset.Dataset, ix *index.Index, method query.Method, budgets []float64, k int) (Curve, error) {
	s := query.NewSearcher(ix, method)
	curve := Curve{Label: method.Name()}
	// Untimed warm-up pass: first-touch page faults and allocator
	// growth otherwise pollute the first measured point.
	for qi := 0; qi < ds.NQ(); qi++ {
		if _, err := s.Search(ds.Query(qi), query.Options{K: k, MaxCandidates: k * 4}); err != nil {
			return Curve{}, err
		}
	}
	for _, frac := range budgets {
		budget := int(math.Ceil(frac * float64(ix.N)))
		if budget < k {
			budget = k
		}
		var totalRecall, totalCand, totalBuckets float64
		start := time.Now()
		results := make([][]int32, ds.NQ())
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), query.Options{K: k, MaxCandidates: budget})
			if err != nil {
				return Curve{}, err
			}
			results[qi] = res.IDs
			totalCand += float64(res.Stats.Candidates)
			totalBuckets += float64(res.Stats.BucketsGenerated)
		}
		elapsed := time.Since(start)
		for qi := 0; qi < ds.NQ(); qi++ {
			truth := ds.GroundTruth[qi]
			if len(truth) > k {
				truth = truth[:k]
			}
			totalRecall += Recall(results[qi], truth)
		}
		nq := float64(ds.NQ())
		curve.Points = append(curve.Points, Point{
			BudgetFrac: frac,
			Recall:     totalRecall / nq,
			Time:       elapsed,
			Candidates: totalCand / nq,
			Buckets:    totalBuckets / nq,
		})
	}
	return curve, nil
}

// TimeToRecall interpolates the time at which a curve reaches the target
// recall. It returns an error when the curve never reaches the target.
func TimeToRecall(c Curve, target float64) (time.Duration, error) {
	prevT, prevR := time.Duration(0), 0.0
	for _, p := range c.Points {
		if p.Recall >= target {
			if p.Recall == prevR {
				return p.Time, nil
			}
			frac := (target - prevR) / (p.Recall - prevR)
			if frac < 0 {
				frac = 0
			}
			return prevT + time.Duration(frac*float64(p.Time-prevT)), nil
		}
		prevT, prevR = p.Time, p.Recall
	}
	return 0, fmt.Errorf("bench: curve %q tops out at recall %.3f < target %.3f", c.Label, maxRecall(c), target)
}

func maxRecall(c Curve) float64 {
	m := 0.0
	for _, p := range c.Points {
		if p.Recall > m {
			m = p.Recall
		}
	}
	return m
}

// CandidatesToRecall interpolates the number of evaluated items needed
// to reach the target recall (Figure 8's x-axis) on a curve.
func CandidatesToRecall(c Curve, target float64) (float64, error) {
	prevC, prevR := 0.0, 0.0
	for _, p := range c.Points {
		if p.Recall >= target {
			if p.Recall == prevR {
				return p.Candidates, nil
			}
			frac := (target - prevR) / (p.Recall - prevR)
			if frac < 0 {
				frac = 0
			}
			return prevC + frac*(p.Candidates-prevC), nil
		}
		prevC, prevR = p.Candidates, p.Recall
	}
	return 0, fmt.Errorf("bench: curve %q tops out at recall %.3f < target %.3f", c.Label, maxRecall(c), target)
}

// Speedup returns tBase/tNew as a ratio (how many times faster the new
// curve reaches the target recall than the baseline).
func Speedup(base, new Curve, target float64) (float64, error) {
	tb, err := TimeToRecall(base, target)
	if err != nil {
		return 0, err
	}
	tn, err := TimeToRecall(new, target)
	if err != nil {
		return 0, err
	}
	if tn <= 0 {
		return math.Inf(1), nil
	}
	return float64(tb) / float64(tn), nil
}

// Precision returns |result ∩ truth| / |result| (Figure 4a's y-axis).
func Precision(result, truth []int32) float64 {
	if len(result) == 0 {
		return 0
	}
	in := make(map[int32]bool, len(truth))
	for _, id := range truth {
		in[id] = true
	}
	hit := 0
	for _, id := range result {
		if in[id] {
			hit++
		}
	}
	return float64(hit) / float64(len(result))
}

// SortCurvesByLabel orders curves deterministically for rendering.
func SortCurvesByLabel(curves []Curve) {
	sort.Slice(curves, func(i, j int) bool { return curves[i].Label < curves[j].Label })
}
