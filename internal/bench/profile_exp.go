package bench

import (
	"fmt"
	"io"
	"time"

	"gqr/internal/dataset"
	"gqr/internal/query"
)

func init() {
	register("abl-profile", "Ablation: retrieval vs evaluation time split per querying method", runAblProfile)
}

// runAblProfile splits each method's query time into the paper's two
// stages (§2.2): retrieval (deciding which buckets to probe — including
// HR/QR's up-front sorting, the "slow start") and evaluation (exact
// distances). The same candidate budget is used for every method, so
// evaluation time is comparable and the retrieval column exposes each
// method's overhead.
func runAblProfile(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: retrieval vs evaluation split")
	name := dataset.CorpusSIFT
	ds := corpus(name, opt)
	ix, err := buildIndex(ds, opt, name, "itq", 0, 1)
	if err != nil {
		return err
	}
	budget := ds.N() / 100 // 1% of the corpus per query
	fmt.Fprintf(w, "corpus %s, %d buckets, budget %d items/query, %d queries\n\n",
		name, ix.BucketCount(0), budget, ds.NQ())
	fmt.Fprintf(w, "%-8s | %-12s | %-12s | %-12s | %-10s\n", "method", "retrieval", "evaluation", "total", "recall")
	for _, mName := range []string{"hr", "qr", "ghr", "gqr", "mih"} {
		m, err := query.NewMethod(mName, ix)
		if err != nil {
			return err
		}
		s := query.NewSearcher(ix, m)
		var ret, eval time.Duration
		var recall float64
		for qi := 0; qi < ds.NQ(); qi++ {
			res, err := s.Search(ds.Query(qi), query.Options{K: opt.K, MaxCandidates: budget, Profile: true})
			if err != nil {
				return err
			}
			ret += res.Stats.RetrievalTime
			eval += res.Stats.EvaluationTime
			truth := ds.GroundTruth[qi]
			if len(truth) > opt.K {
				truth = truth[:opt.K]
			}
			recall += Recall(res.IDs, truth)
		}
		fmt.Fprintf(w, "%-8s | %-12s | %-12s | %-12s | %-10.4f\n",
			mName, fmtDur(ret), fmtDur(eval), fmtDur(ret+eval), recall/float64(ds.NQ()))
	}
	fmt.Fprintln(w, "\nHR and QR pay their bucket-sorting cost inside retrieval before the")
	fmt.Fprintln(w, "first probe (the slow start); the generate-to-probe methods spread tiny")
	fmt.Fprintln(w, "incremental costs across the scan. QD methods also reach higher recall")
	fmt.Fprintln(w, "from the same evaluated items.")
	return nil
}
