package bench

import (
	"fmt"
	"io"
	"sort"

	"gqr/internal/dataset"
	"gqr/internal/hash"
	"gqr/internal/index"
	"gqr/internal/query"
)

// RunOptions scales an experiment run. The zero value is filled with
// defaults by normalize: full simulated corpus size, 100 queries, k=20
// (the paper's default), the standard budget sweep.
type RunOptions struct {
	// Scale shrinks every corpus to this fraction of its simulated
	// size (0 < Scale ≤ 1). Tests use small scales; EXPERIMENTS.md
	// records full-scale runs.
	Scale float64
	// NQ is the number of sampled queries per corpus.
	NQ int
	// K is the number of target neighbors.
	K int
	// Budgets is the candidate-budget sweep (fractions of N).
	Budgets []float64
	// Seed offsets all training seeds, for variance checks.
	Seed int64
	// BuildProcs bounds the index-build workers (<= 0 means
	// GOMAXPROCS). Builds are bit-for-bit identical at any setting, so
	// it never changes a measured curve — only how fast indexes train.
	BuildProcs int
}

func (o RunOptions) normalize() RunOptions {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.NQ <= 0 {
		o.NQ = 100
	}
	if o.K <= 0 {
		o.K = 20
	}
	if len(o.Budgets) == 0 {
		o.Budgets = DefaultBudgets
	}
	return o
}

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt RunOptions, w io.Writer) error
}

var registry []Experiment

func register(id, title string, run func(opt RunOptions, w io.Writer) error) {
	registry = append(registry, Experiment{ID: id, Title: title, Run: run})
}

// Experiments lists every registered experiment in registration order
// (paper order: tables and figures, then ablations).
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID looks up an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (known: %v)", id, ids)
}

// ---- shared state ----------------------------------------------------
//
// Experiments that share a corpus or a set of measured curves reuse them
// through these caches (e.g. fig7/fig8/fig9 are three views of one
// measurement). The harness is single-threaded, matching the paper's
// per-query latency methodology, so plain maps suffice.

type corpusKey struct {
	name  string
	scale float64
	nq, k int
}

var corpusCache = map[corpusKey]*dataset.Dataset{}

// corpus loads (or reuses) a simulated corpus with ground truth.
func corpus(name string, opt RunOptions) *dataset.Dataset {
	key := corpusKey{name, opt.Scale, opt.NQ, opt.K}
	if ds, ok := corpusCache[key]; ok {
		return ds
	}
	ds := dataset.Load(name, opt.Scale, opt.NQ, opt.K)
	corpusCache[key] = ds
	return ds
}

type curveKey struct {
	corpus  string
	scale   float64
	nq, k   int
	learner string
	bits    int
	tables  int
	method  string
	budgets int
	seed    int64
}

var curveCache = map[curveKey][]Curve{}

type indexKey struct {
	corpus  string
	scale   float64
	nq, k   int
	learner string
	bits    int
	tables  int
	seed    int64
}

var indexCache = map[indexKey]*index.Index{}

// ResetCaches clears the corpus, index, and curve caches (tests use it
// to bound memory).
func ResetCaches() {
	corpusCache = map[corpusKey]*dataset.Dataset{}
	curveCache = map[curveKey][]Curve{}
	indexCache = map[indexKey]*index.Index{}
}

// learnerFor instantiates a learner with the iteration budgets used
// throughout the experiments.
func learnerFor(name string) (hash.Learner, error) {
	switch name {
	case "itq":
		return hash.ITQ{Iterations: 30}, nil
	case "kmh":
		return hash.KMH{SubspaceBits: 2, Iterations: 15}, nil
	default:
		return hash.ByName(name)
	}
}

// buildIndex trains (or reuses) an index for a corpus/learner pair.
// bits=0 applies the paper's log2(N/10) rule, rounded up to the KMH
// subspace multiple when the learner is kmh.
func buildIndex(ds *dataset.Dataset, opt RunOptions, corpusName, learnerName string, bits, tables int) (*index.Index, error) {
	if bits == 0 {
		bits = index.CodeLengthFor(ds.N(), 10)
		if learnerName == "kmh" && bits%2 != 0 {
			bits++
		}
	}
	key := indexKey{corpusName, opt.Scale, opt.NQ, opt.K, learnerName, bits, tables, opt.Seed}
	if ix, ok := indexCache[key]; ok {
		return ix, nil
	}
	l, err := learnerFor(learnerName)
	if err != nil {
		return nil, err
	}
	ix, err := index.BuildP(l, ds.Vectors, ds.N(), ds.Dim, bits, tables, 1000+opt.Seed, opt.BuildProcs)
	if err != nil {
		return nil, fmt.Errorf("bench: building %s/%s index: %w", corpusName, learnerName, err)
	}
	indexCache[key] = ix
	return ix, nil
}

// measureMethods returns one curve per querying method over a single
// corpus/learner configuration, through the cache.
func measureMethods(opt RunOptions, corpusName, learnerName string, bits, tables int, methods []string) ([]Curve, error) {
	ds := corpus(corpusName, opt)
	ix, err := buildIndex(ds, opt, corpusName, learnerName, bits, tables)
	if err != nil {
		return nil, err
	}
	var curves []Curve
	for _, mName := range methods {
		key := curveKey{corpusName, opt.Scale, opt.NQ, opt.K, learnerName, ix.Bits(), tables, mName, len(opt.Budgets), opt.Seed}
		if c, ok := curveCache[key]; ok {
			curves = append(curves, c...)
			continue
		}
		m, err := query.NewMethod(mName, ix)
		if err != nil {
			return nil, err
		}
		c, err := MethodCurve(ds, ix, m, opt.Budgets, opt.K)
		if err != nil {
			return nil, err
		}
		curveCache[key] = []Curve{c}
		curves = append(curves, c)
	}
	return curves, nil
}

// PointPrecision converts a curve point to Figure 4a's precision:
// (true neighbors found) / (items retrieved) = recall·k / candidates.
func PointPrecision(p Point, k int) float64 {
	if p.Candidates == 0 {
		return 0
	}
	return p.Recall * float64(k) / p.Candidates
}
