package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"gqr/internal/c2lsh"
	"gqr/internal/dataset"
	"gqr/internal/mplsh"
)

func init() {
	register("abl-mplsh", "Ablation: GQR (binary L2H) versus Multi-Probe LSH and C2LSH (§5.3/§7 discussion)", runAblMPLSH)
}

// runAblMPLSH contrasts the paper's §5.3 comparison point: query-aware
// probing over learned binary codes (ITQ+GQR, one table) versus
// Multi-Probe LSH over E2LSH integer buckets (several tables). Both
// evaluate candidates with exact distances, so the curves compare
// retrieval quality and probing overhead.
func runAblMPLSH(opt RunOptions, w io.Writer) error {
	opt = opt.normalize()
	Rule(w, "Ablation: GQR vs Multi-Probe LSH")
	name := dataset.CorpusCIFAR
	ds := corpus(name, opt)

	// ITQ + GQR, one table.
	gqrCurves, err := measureMethods(opt, name, "itq", 0, 1, []string{"gqr"})
	if err != nil {
		return err
	}
	gqrCurves[0].Label = "itq+gqr(1)"

	// Multi-Probe LSH: 4 tables, m tuned to similar bucket occupancy,
	// W from the data scale (average nearest-neighbor distances).
	m := 10
	width := avgNNDistance(ds) * 2
	ix, err := mplsh.Build(ds.Vectors, ds.N(), ds.Dim, 4, m, width, 4000+opt.Seed)
	if err != nil {
		return err
	}
	mpCurve := Curve{Label: "mplsh(4)"}
	for _, frac := range opt.Budgets {
		budget := int(math.Ceil(frac * float64(ds.N())))
		if budget < opt.K {
			budget = opt.K
		}
		var totalRecall float64
		start := time.Now()
		results := make([][]int32, ds.NQ())
		var totalCand float64
		// Cap perturbation sets per table: Multi-Probe LSH can only
		// reach ±1 neighbors, so an uncapped probe loop burns through
		// all 3^m sets without ever covering the dataset — the
		// coverage limitation the paper's §7 notes.
		const probeCap = 2048
		for qi := 0; qi < ds.NQ(); qi++ {
			cands := ix.Retrieve(ds.Query(qi), budget, probeCap)
			totalCand += float64(len(cands))
			results[qi] = exactTopK(ds, ds.Query(qi), cands, opt.K)
		}
		elapsed := time.Since(start)
		for qi := 0; qi < ds.NQ(); qi++ {
			truth := ds.GroundTruth[qi]
			if len(truth) > opt.K {
				truth = truth[:opt.K]
			}
			totalRecall += Recall(results[qi], truth)
		}
		nq := float64(ds.NQ())
		mpCurve.Points = append(mpCurve.Points, Point{
			BudgetFrac: frac,
			Recall:     totalRecall / nq,
			Time:       elapsed,
			Candidates: totalCand / nq,
		})
	}
	// C2LSH-style collision counting: 16 single-projection tables,
	// threshold 8.
	c2, err := c2lsh.Build(ds.Vectors, ds.N(), ds.Dim, 16, 8, 4500+opt.Seed)
	if err != nil {
		return err
	}
	c2Curve := Curve{Label: "c2lsh(16)"}
	for _, frac := range opt.Budgets {
		budget := int(math.Ceil(frac * float64(ds.N())))
		if budget < opt.K {
			budget = opt.K
		}
		var totalRecall, totalCand float64
		start := time.Now()
		results := make([][]int32, ds.NQ())
		for qi := 0; qi < ds.NQ(); qi++ {
			cands := c2.Retrieve(ds.Query(qi), budget)
			totalCand += float64(len(cands))
			results[qi] = exactTopK(ds, ds.Query(qi), cands, opt.K)
		}
		elapsed := time.Since(start)
		for qi := 0; qi < ds.NQ(); qi++ {
			truth := ds.GroundTruth[qi]
			if len(truth) > opt.K {
				truth = truth[:opt.K]
			}
			totalRecall += Recall(results[qi], truth)
		}
		nq := float64(ds.NQ())
		c2Curve.Points = append(c2Curve.Points, Point{
			BudgetFrac: frac,
			Recall:     totalRecall / nq,
			Time:       elapsed,
			Candidates: totalCand / nq,
		})
	}

	WriteCurves(w, name, []Curve{gqrCurves[0], mpCurve, c2Curve})
	fmt.Fprintln(w, "Multi-Probe LSH cannot guarantee full-space coverage from its probing")
	fmt.Fprintln(w, "sequence (its final recall can stall below 1), and filters invalid")
	fmt.Fprintln(w, "perturbation sets at probe time; GQR's flipping vectors enumerate every")
	fmt.Fprintln(w, "bucket exactly once (paper §5.3).")
	return nil
}

// avgNNDistance estimates the data scale: the mean distance from a few
// queries to their nearest ground-truth neighbor.
func avgNNDistance(ds *dataset.Dataset) float64 {
	nq := ds.NQ()
	if nq > 20 {
		nq = 20
	}
	var sum float64
	for qi := 0; qi < nq; qi++ {
		id := ds.GroundTruth[qi][0]
		sum += distEuclid(ds, qi, id)
	}
	return sum / float64(nq)
}

func distEuclid(ds *dataset.Dataset, qi int, id int32) float64 {
	q := ds.Query(qi)
	v := ds.Vector(int(id))
	var s float64
	for j := range q {
		d := float64(q[j]) - float64(v[j])
		s += d * d
	}
	return math.Sqrt(s)
}
