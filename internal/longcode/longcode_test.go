package longcode

import (
	"sort"
	"testing"

	"gqr/internal/dataset"
	"gqr/internal/hash"
)

func testData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "lc", N: 800, Dim: 24, Clusters: 6, LatentDim: 6, Seed: 91,
	})
	ds.SampleQueries(10, 92)
	ds.ComputeGroundTruth(10)
	return ds
}

func TestCodeBitOps(t *testing.T) {
	var c Code
	for _, i := range []int{0, 63, 64, 127, 200, 255} {
		if c.Bit(i) {
			t.Fatalf("bit %d set in zero code", i)
		}
		c.SetBit(i)
		if !c.Bit(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	var d Code
	if got := c.Hamming(d); got != 6 {
		t.Fatalf("Hamming = %d, want 6", got)
	}
	if got := c.Hamming(c); got != 0 {
		t.Fatalf("self Hamming = %d", got)
	}
}

func TestBuildValidation(t *testing.T) {
	ds := testData(t)
	if _, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 0, 1); err == nil {
		t.Fatal("bits=0 accepted")
	}
	if _, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 257, 1); err == nil {
		t.Fatal("bits>256 accepted")
	}
}

func TestStackedChunks(t *testing.T) {
	ds := testData(t)
	s, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 150, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.hashers) != 3 { // 64 + 64 + 22
		t.Fatalf("%d chunk hashers, want 3", len(s.hashers))
	}
	total := 0
	for _, h := range s.hashers {
		total += h.Bits()
	}
	if total != 150 {
		t.Fatalf("chunks cover %d bits, want 150", total)
	}
	if s.MemoryBytes() != ds.N()*24 { // 150 bits -> 3 words
		t.Fatalf("memory %d", s.MemoryBytes())
	}
}

func TestSearchPrefixMatchesFullSort(t *testing.T) {
	// The counting-sort prefix selection must produce exactly the
	// rerank closest codes (ties by id).
	ds := testData(t)
	s, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 96, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := ds.Query(0)
	qc := s.encode(q)
	type pair struct {
		d  int
		id int32
	}
	all := make([]pair, s.N)
	for i := range all {
		all[i] = pair{qc.Hamming(s.codes[i]), int32(i)}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].d != all[b].d {
			return all[a].d < all[b].d
		}
		return all[a].id < all[b].id
	})
	const rerank = 50
	// Reconstruct the candidate prefix via the internal path: run
	// Search with k = rerank so every candidate surfaces.
	got := s.Search(q, rerank, rerank)
	inPrefix := make(map[int32]bool, rerank)
	for _, p := range all[:rerank] {
		inPrefix[p.id] = true
	}
	for _, id := range got {
		if !inPrefix[id] {
			t.Fatalf("result %d not among the %d Hamming-closest codes", id, rerank)
		}
	}
}

func TestSearchFindsTrueNeighborsWithLargeRerank(t *testing.T) {
	ds := testData(t)
	s, err := Build(hash.ITQ{Iterations: 10}, ds.Vectors, ds.N(), ds.Dim, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for qi := 0; qi < ds.NQ(); qi++ {
		got := s.Search(ds.Query(qi), 10, 200)
		in := make(map[int32]bool)
		for _, id := range got {
			in[id] = true
		}
		for _, id := range ds.GroundTruth[qi] {
			if in[id] {
				hits++
			}
		}
	}
	if hits < ds.NQ()*10*6/10 {
		t.Fatalf("long-code scan found only %d/%d true neighbors", hits, ds.NQ()*10)
	}
}

func TestSearchFullRerankIsExact(t *testing.T) {
	// rerank = N degenerates to exact search regardless of codes.
	ds := testData(t)
	s, err := Build(hash.LSH{}, ds.Vectors, ds.N(), ds.Dim, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < 5; qi++ {
		got := s.Search(ds.Query(qi), 10, ds.N())
		for i, id := range ds.GroundTruth[qi] {
			if got[i] != id {
				t.Fatalf("query %d: full rerank %v != ground truth %v", qi, got, ds.GroundTruth[qi])
			}
		}
	}
}

func TestLongerCodesRankBetter(t *testing.T) {
	// More bits -> better Hamming ordering -> more true neighbors in a
	// fixed-size candidate prefix (Figure 4a's precision claim, long-
	// code edition).
	ds := testData(t)
	recallWithBits := func(bits int) int {
		s, err := Build(hash.ITQ{Iterations: 10}, ds.Vectors, ds.N(), ds.Dim, bits, 5)
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for qi := 0; qi < ds.NQ(); qi++ {
			got := s.Search(ds.Query(qi), 10, 60)
			in := make(map[int32]bool)
			for _, id := range got {
				in[id] = true
			}
			for _, id := range ds.GroundTruth[qi] {
				if in[id] {
					hits++
				}
			}
		}
		return hits
	}
	short, long := recallWithBits(8), recallWithBits(24)
	if long < short {
		t.Fatalf("24-bit codes found %d true neighbors, 8-bit found %d", long, short)
	}
}
