// Package longcode implements the long-code regime the paper's §3
// discusses as the traditional fix for Hamming ranking's coarseness:
// instead of short codes indexing buckets, every item gets a long
// binary code (up to 256 bits here) and queries rank the whole
// collection by Hamming distance with a linear scan, re-ranking the
// best T candidates with exact distances.
//
// The paper's §1/§3 argument against this design — time-consuming
// sorting, high storage, poor scalability — is what the abl-longcode
// experiment measures against bucket-based GQR.
package longcode

import (
	"fmt"
	"math/bits"
	"sort"

	"gqr/internal/hash"
	"gqr/internal/vecmath"
)

// Words is the number of 64-bit words per code.
const Words = 4

// MaxBits is the longest supported long code.
const MaxBits = Words * 64

// Code is a multi-word binary code.
type Code [Words]uint64

// Hamming returns the Hamming distance between two codes.
func (c Code) Hamming(o Code) int {
	d := 0
	for w := 0; w < Words; w++ {
		d += bits.OnesCount64(c[w] ^ o[w])
	}
	return d
}

// SetBit sets bit i.
func (c *Code) SetBit(i int) { c[i/64] |= 1 << uint(i%64) }

// Bit reports bit i.
func (c Code) Bit(i int) bool { return c[i/64]&(1<<uint(i%64)) != 0 }

// Scanner holds long codes for a dataset and answers queries by linear
// Hamming scan + exact re-rank.
type Scanner struct {
	Dim   int
	N     int
	Data  []float32
	Bits  int
	codes []Code
	// hashers are the (at most four) stacked 64-bit hashers whose
	// concatenation forms the long code.
	hashers []hash.Hasher
}

// Build trains stacked hashers with the given learner until bits are
// covered (each trained with a distinct seed) and encodes every item.
func Build(l hash.Learner, data []float32, n, d, codeBits int, seed int64) (*Scanner, error) {
	if codeBits <= 0 || codeBits > MaxBits {
		return nil, fmt.Errorf("longcode: bits %d out of (0,%d]", codeBits, MaxBits)
	}
	s := &Scanner{Dim: d, N: n, Data: data, Bits: codeBits}
	remaining := codeBits
	for remaining > 0 {
		chunk := remaining
		if chunk > 64 {
			chunk = 64
		}
		h, err := l.Train(data, n, d, chunk, seed+int64(len(s.hashers))*31)
		if err != nil {
			return nil, fmt.Errorf("longcode: training chunk %d: %w", len(s.hashers), err)
		}
		s.hashers = append(s.hashers, h)
		remaining -= chunk
	}
	s.codes = make([]Code, n)
	for i := 0; i < n; i++ {
		s.codes[i] = s.encode(data[i*d : (i+1)*d])
	}
	return s, nil
}

// encode concatenates the chunk hashers' codes.
func (s *Scanner) encode(x []float32) Code {
	var c Code
	offset := 0
	for _, h := range s.hashers {
		chunk := h.Code(x)
		hb := h.Bits()
		for b := 0; b < hb; b++ {
			if chunk&(1<<uint(b)) != 0 {
				c.SetBit(offset + b)
			}
		}
		offset += hb
	}
	return c
}

// CodeOf exposes item i's stored code (tests and diagnostics).
func (s *Scanner) CodeOf(i int) Code { return s.codes[i] }

// MemoryBytes returns the storage the codes logically occupy (used
// words only) — the paper's "high storage demand" cost of long codes.
func (s *Scanner) MemoryBytes() int { return len(s.codes) * ((s.Bits + 63) / 64) * 8 }

// Search ranks all items by Hamming distance to the query's code,
// re-ranks the rerank best by exact Euclidean distance, and returns the
// top k ids.
func (s *Scanner) Search(q []float32, k, rerank int) []int32 {
	if rerank < k {
		rerank = k
	}
	if rerank > s.N {
		rerank = s.N
	}
	qc := s.encode(q)

	// Counting sort by Hamming distance: one pass to count, one to
	// emit — the fastest possible "sorting" the paper grants HR.
	counts := make([]int, s.Bits+2)
	dists := make([]uint16, s.N)
	for i, c := range s.codes {
		d := qc.Hamming(c)
		dists[i] = uint16(d)
		counts[d+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	// Emit only the first rerank ids in distance order (ties by id,
	// since the scan is in id order).
	cands := make([]int32, rerank)
	next := make([]int, s.Bits+1)
	copy(next, counts[:s.Bits+1])
	filled := 0
	for i := 0; i < s.N && filled < rerank; i++ {
		pos := next[dists[i]]
		if pos < rerank {
			cands[pos] = int32(i)
			filled++
		}
		next[dists[i]]++
	}
	// The above keeps only candidates whose final sorted position is
	// within the rerank prefix.
	type scored struct {
		id   int32
		dist float64
	}
	all := make([]scored, 0, rerank)
	for _, id := range cands[:filled] {
		all = append(all, scored{id, vecmath.SquaredL2(q, s.Data[int(id)*s.Dim:(int(id)+1)*s.Dim])})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].dist != all[b].dist {
			return all[a].dist < all[b].dist
		}
		return all[a].id < all[b].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]int32, k)
	for i := range out {
		out[i] = all[i].id
	}
	return out
}
