package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"gqr"
	"gqr/internal/dataset"
)

// coalescingServer builds one server with request coalescing on (a
// window long enough that concurrent test requests reliably land in
// the same batch) and a second plain server over the SAME index, so
// tests can compare coalesced answers against the direct path.
func coalescingServer(t *testing.T, window time.Duration, maxBatch int) (coal, direct *httptest.Server, ds *dataset.Dataset) {
	t.Helper()
	ds = dataset.Generate(dataset.GeneratorSpec{
		Name: "coal", N: 500, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 81,
	})
	ds.SampleQueries(8, 82)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	coal = httptest.NewServer(New(ix, WithCoalescing(window, maxBatch)))
	t.Cleanup(coal.Close)
	direct = httptest.NewServer(New(ix))
	t.Cleanup(direct.Close)
	return coal, direct, ds
}

// TestCoalescedSearchMatchesDirect fires concurrent /search requests
// with identical parameters at a coalescing server and checks every
// answer against the direct (uncoalesced) path: coalescing must be
// invisible in the results — same neighbors, same stats counters —
// and visible only in the batch metrics.
func TestCoalescedSearchMatchesDirect(t *testing.T) {
	coal, direct, ds := coalescingServer(t, 50*time.Millisecond, 64)

	want := make([]SearchResponse, ds.NQ())
	for qi := range want {
		resp := post(t, direct.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, IncludeStats: true}, &want[qi])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("direct search status %d", resp.StatusCode)
		}
	}

	// Several rounds so at least one batch has more than one member.
	for round := 0; round < 3; round++ {
		got := make([]SearchResponse, ds.NQ())
		var wg sync.WaitGroup
		for qi := 0; qi < ds.NQ(); qi++ {
			wg.Add(1)
			go func(qi int) {
				defer wg.Done()
				resp := post(t, coal.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, IncludeStats: true}, &got[qi])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("coalesced search status %d", resp.StatusCode)
				}
			}(qi)
		}
		wg.Wait()
		for qi := range got {
			// Timings legitimately differ; the work counters must not.
			gs, ws := got[qi].Stats, want[qi].Stats
			if gs == nil || ws == nil {
				t.Fatalf("query %d: missing stats (got %v, want %v)", qi, gs, ws)
			}
			gst, wst := *gs, *ws
			gst.RetrievalTime, gst.EvaluationTime = 0, 0
			wst.RetrievalTime, wst.EvaluationTime = 0, 0
			if !reflect.DeepEqual(got[qi].Neighbors, want[qi].Neighbors) {
				t.Fatalf("round %d query %d: coalesced neighbors %v != direct %v", round, qi, got[qi].Neighbors, want[qi].Neighbors)
			}
			if gst != wst {
				t.Fatalf("round %d query %d: coalesced stats %+v != direct %+v", round, qi, gst, wst)
			}
		}
	}

	// The coalescer must have executed batches and recorded their sizes.
	var statsz struct {
		Search SearchTotals `json:"search"`
	}
	resp, err := http.Get(coal.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if statsz.Search.Batches == 0 {
		t.Fatal("/statsz reports zero batches after coalesced searches")
	}
	// 3 coalesced rounds; the direct server has its own registry.
	if statsz.Search.Queries != int64(3*ds.NQ()) {
		t.Fatalf("/statsz queries = %d, want %d", statsz.Search.Queries, 3*ds.NQ())
	}
	mresp, err := http.Get(coal.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gqr_search_batches_total", "gqr_search_batch_size_count"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}

// TestCoalescedDifferentParamsDontMix issues concurrent requests with
// two different k values; each must get results for its own k (the
// batch key separates them).
func TestCoalescedDifferentParamsDontMix(t *testing.T) {
	coal, _, ds := coalescingServer(t, 30*time.Millisecond, 64)
	var wg sync.WaitGroup
	for qi := 0; qi < ds.NQ(); qi++ {
		wg.Add(1)
		go func(qi int) {
			defer wg.Done()
			k := 3 + (qi%2)*4 // k=3 or k=7
			var out SearchResponse
			resp := post(t, coal.URL+"/search", SearchRequest{Query: ds.Query(qi), K: k}, &out)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("status %d", resp.StatusCode)
				return
			}
			if len(out.Neighbors) != k {
				t.Errorf("query %d: %d neighbors, want %d", qi, len(out.Neighbors), k)
			}
		}(qi)
	}
	wg.Wait()
}

// TestCoalescedBatchFull checks the full-batch inline flush: maxBatch
// sequential-parameter requests with a long window must all return
// well before the window expires.
func TestCoalescedBatchFull(t *testing.T) {
	coal, _, ds := coalescingServer(t, 10*time.Second, 4)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var out SearchResponse
			resp := post(t, coal.URL+"/search", SearchRequest{Query: ds.Query(i), K: 3}, &out)
			if resp.StatusCode != http.StatusOK || len(out.Neighbors) != 3 {
				t.Errorf("request %d: status %d, %d neighbors", i, resp.StatusCode, len(out.Neighbors))
			}
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("full batch took %v; inline flush did not fire before the 10s window", elapsed)
	}
}

// TestCoalescingRejectsMalformed ensures validation still happens on
// the request path: bad dimension and k<=0 are 400s, not enqueued.
func TestCoalescingRejectsMalformed(t *testing.T) {
	coal, _, ds := coalescingServer(t, 20*time.Millisecond, 64)
	if resp := post(t, coal.URL+"/search", SearchRequest{Query: ds.Query(0)[:3], K: 5}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dim gave status %d", resp.StatusCode)
	}
	if resp := post(t, coal.URL+"/search", SearchRequest{Query: ds.Query(0), K: 0}, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 gave status %d", resp.StatusCode)
	}
}

// TestBatchEndpointAggregateStats checks the /batch Batch summary:
// answered/failed counts, summed work counters, and slowest-query
// attribution when stats are requested.
func TestBatchEndpointAggregateStats(t *testing.T) {
	srv, ds := testServer(t)
	req := BatchRequest{K: 3, IncludeStats: true}
	for qi := 0; qi < ds.NQ(); qi++ {
		req.Queries = append(req.Queries, ds.Query(qi))
	}
	req.Queries = append(req.Queries, ds.Query(0)[:4]) // one ragged query
	var out BatchResponse
	if resp := post(t, srv.URL+"/batch", req, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Batch == nil {
		t.Fatal("no batch summary in response")
	}
	if out.Batch.Answered != ds.NQ() || out.Batch.Failed != 1 {
		t.Fatalf("answered=%d failed=%d, want %d/1", out.Batch.Answered, out.Batch.Failed, ds.NQ())
	}
	var sumCand int
	for _, entry := range out.Results[:ds.NQ()] {
		if entry.Stats == nil {
			t.Fatal("missing per-query stats despite includeStats")
		}
		sumCand += entry.Stats.Candidates
	}
	if out.Batch.Stats.Candidates != sumCand {
		t.Fatalf("summed candidates %d != aggregate %d", sumCand, out.Batch.Stats.Candidates)
	}
	if out.Batch.SlowestQuery < 0 || out.Batch.SlowestQuery >= ds.NQ() {
		t.Fatalf("slowest query index %d out of range", out.Batch.SlowestQuery)
	}
	// Without includeStats the summary still counts, but cannot name a
	// slowest query.
	req.IncludeStats = false
	var plain BatchResponse
	if resp := post(t, srv.URL+"/batch", req, &plain); resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if plain.Batch == nil || plain.Batch.SlowestQuery != -1 {
		t.Fatalf("plain batch summary = %+v, want SlowestQuery=-1", plain.Batch)
	}
}
