package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gqr"
	"gqr/internal/dataset"
)

func testServer(t *testing.T) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "srv", N: 500, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 81,
	})
	ds.SampleQueries(5, 82)
	ds.ComputeGroundTruth(5)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix))
	t.Cleanup(srv.Close)
	return srv, ds
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSearchEndpointExact(t *testing.T) {
	srv, ds := testServer(t)
	for qi := 0; qi < ds.NQ(); qi++ {
		var out SearchResponse
		resp := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if len(out.Neighbors) != 5 {
			t.Fatalf("%d neighbors", len(out.Neighbors))
		}
		for i, id := range ds.GroundTruth[qi] {
			if out.Neighbors[i].ID != int(id) {
				t.Fatalf("query %d: %v != ground truth %v", qi, out.Neighbors, ds.GroundTruth[qi])
			}
		}
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv, ds := testServer(t)
	// Bad JSON.
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON gave status %d", resp.StatusCode)
	}
	// Wrong dim.
	r2 := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0)[:3], K: 5}, nil)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dim gave status %d", r2.StatusCode)
	}
	// K = 0.
	r3 := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 0}, nil)
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 gave status %d", r3.StatusCode)
	}
	// GET not allowed.
	r4, err := http.Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search gave status %d", r4.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	req := BatchRequest{K: 3, MaxCandidates: 100}
	for qi := 0; qi < ds.NQ(); qi++ {
		req.Queries = append(req.Queries, ds.Query(qi))
	}
	var out BatchResponse
	resp := post(t, srv.URL+"/batch", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != ds.NQ() {
		t.Fatalf("%d result lists", len(out.Results))
	}
	for _, entry := range out.Results {
		if entry.Error != "" {
			t.Fatalf("unexpected per-query error: %s", entry.Error)
		}
		if len(entry.Neighbors) != 3 {
			t.Fatalf("result list of %d", len(entry.Neighbors))
		}
	}
}

func TestBatchPerQueryErrors(t *testing.T) {
	srv, ds := testServer(t)
	// One ragged query must fail alone; the rest of the batch succeeds.
	req := BatchRequest{K: 3, Queries: [][]float32{ds.Query(0), ds.Query(1)[:4], ds.Query(2)}}
	var out BatchResponse
	resp := post(t, srv.URL+"/batch", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch gave status %d, want 200", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Error != "" || len(out.Results[i].Neighbors) != 3 {
			t.Fatalf("valid query %d: %+v", i, out.Results[i])
		}
	}
	if out.Results[1].Error == "" || len(out.Results[1].Neighbors) != 0 {
		t.Fatalf("ragged query got no error: %+v", out.Results[1])
	}
}

func TestAddEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	var out AddResponse
	resp := post(t, srv.URL+"/add", AddRequest{Vector: ds.Query(0)}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.ID != ds.N() {
		t.Fatalf("new id %d, want %d", out.ID, ds.N())
	}
	// The added vector must now be the top hit for itself.
	var sr SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 1}, &sr)
	if sr.Neighbors[0].ID != out.ID || sr.Neighbors[0].Distance != 0 {
		t.Fatalf("added vector not found: %+v", sr.Neighbors)
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv, ds := testServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st gqr.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Items != ds.N() || st.Algorithm != gqr.ITQ {
		t.Fatalf("stats = %+v", st)
	}
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}

func TestRadiusViaAPI(t *testing.T) {
	srv, ds := testServer(t)
	// Radius so tight only the nearest item qualifies.
	var sr SearchResponse
	q := ds.Query(0)
	// First find the true nearest distance via an exact search.
	var exact SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: q, K: 2}, &exact)
	r := (exact.Neighbors[0].Distance + exact.Neighbors[1].Distance) / 2
	post(t, srv.URL+"/search", SearchRequest{Query: q, K: 10, Radius: r}, &sr)
	if len(sr.Neighbors) != 1 || sr.Neighbors[0].ID != exact.Neighbors[0].ID {
		t.Fatalf("radius search via API wrong: %+v", sr.Neighbors)
	}
}

func TestMethodNotAllowedEverywhere(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/batch", "/add"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s gave status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats gave status %d", resp.StatusCode)
	}
}

func TestAddAndBatchBadJSON(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/add", "/batch"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte("{nope")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad JSON to %s gave status %d", path, resp.StatusCode)
		}
	}
}

func TestAddWrongDim(t *testing.T) {
	srv, _ := testServer(t)
	resp := post(t, srv.URL+"/add", AddRequest{Vector: []float32{1, 2}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim add gave status %d", resp.StatusCode)
	}
}

func TestBatchKZeroRejected(t *testing.T) {
	srv, ds := testServer(t)
	resp := post(t, srv.URL+"/batch", BatchRequest{Queries: [][]float32{ds.Query(0)}, K: 0}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 batch gave status %d", resp.StatusCode)
	}
}

// TestConcurrentAddSearchOverHTTP hammers /add, /search, /batch and the
// scrape endpoints from concurrent clients. With snapshot-based search
// the handlers share no locks on the query path; under -race this is
// the HTTP-level regression test for the Add-vs-search data race.
func TestConcurrentAddSearchOverHTTP(t *testing.T) {
	srv, ds := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var out SearchResponse
				resp := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query((w + i) % ds.NQ()), K: 3}, &out)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp := post(t, srv.URL+"/add", AddRequest{Vector: ds.Vector(i % ds.N())}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("add status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var out BatchResponse
			resp := post(t, srv.URL+"/batch", BatchRequest{Queries: [][]float32{ds.Query(0), ds.Query(1)}, K: 3}, &out)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch status %d", resp.StatusCode)
				return
			}
			if r, err := http.Get(srv.URL + "/metrics"); err == nil {
				r.Body.Close()
			}
			if r, err := http.Get(srv.URL + "/stats"); err == nil {
				r.Body.Close()
			}
		}
	}()
	wg.Wait()
}
