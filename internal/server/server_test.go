package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gqr"
	"gqr/internal/dataset"
)

func testServer(t *testing.T) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "srv", N: 500, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 81,
	})
	ds.SampleQueries(5, 82)
	ds.ComputeGroundTruth(5)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(83))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix))
	t.Cleanup(srv.Close)
	return srv, ds
}

func post(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestSearchEndpointExact(t *testing.T) {
	srv, ds := testServer(t)
	for qi := 0; qi < ds.NQ(); qi++ {
		var out SearchResponse
		resp := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5}, &out)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		if len(out.Neighbors) != 5 {
			t.Fatalf("%d neighbors", len(out.Neighbors))
		}
		for i, id := range ds.GroundTruth[qi] {
			if out.Neighbors[i].ID != int(id) {
				t.Fatalf("query %d: %v != ground truth %v", qi, out.Neighbors, ds.GroundTruth[qi])
			}
		}
	}
}

func TestSearchEndpointErrors(t *testing.T) {
	srv, ds := testServer(t)
	// Bad JSON.
	resp, err := http.Post(srv.URL+"/search", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON gave status %d", resp.StatusCode)
	}
	// Wrong dim.
	r2 := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0)[:3], K: 5}, nil)
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad dim gave status %d", r2.StatusCode)
	}
	// K = 0.
	r3 := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 0}, nil)
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 gave status %d", r3.StatusCode)
	}
	// GET not allowed.
	r4, err := http.Get(srv.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /search gave status %d", r4.StatusCode)
	}
}

func TestBatchEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	req := BatchRequest{K: 3, MaxCandidates: 100}
	for qi := 0; qi < ds.NQ(); qi++ {
		req.Queries = append(req.Queries, ds.Query(qi))
	}
	var out BatchResponse
	resp := post(t, srv.URL+"/batch", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(out.Results) != ds.NQ() {
		t.Fatalf("%d result lists", len(out.Results))
	}
	for _, entry := range out.Results {
		if entry.Error != "" {
			t.Fatalf("unexpected per-query error: %s", entry.Error)
		}
		if len(entry.Neighbors) != 3 {
			t.Fatalf("result list of %d", len(entry.Neighbors))
		}
	}
}

func TestBatchPerQueryErrors(t *testing.T) {
	srv, ds := testServer(t)
	// One ragged query must fail alone; the rest of the batch succeeds.
	req := BatchRequest{K: 3, Queries: [][]float32{ds.Query(0), ds.Query(1)[:4], ds.Query(2)}}
	var out BatchResponse
	resp := post(t, srv.URL+"/batch", req, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch gave status %d, want 200", resp.StatusCode)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	for _, i := range []int{0, 2} {
		if out.Results[i].Error != "" || len(out.Results[i].Neighbors) != 3 {
			t.Fatalf("valid query %d: %+v", i, out.Results[i])
		}
	}
	if out.Results[1].Error == "" || len(out.Results[1].Neighbors) != 0 {
		t.Fatalf("ragged query got no error: %+v", out.Results[1])
	}
}

func TestAddEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	var out AddResponse
	resp := post(t, srv.URL+"/add", AddRequest{Vector: ds.Query(0)}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.ID != ds.N() {
		t.Fatalf("new id %d, want %d", out.ID, ds.N())
	}
	// The added vector must now be the top hit for itself.
	var sr SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 1}, &sr)
	if sr.Neighbors[0].ID != out.ID || sr.Neighbors[0].Distance != 0 {
		t.Fatalf("added vector not found: %+v", sr.Neighbors)
	}
}

func TestStatsAndHealth(t *testing.T) {
	srv, ds := testServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st gqr.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Items != ds.N() || st.Algorithm != gqr.ITQ {
		t.Fatalf("stats = %+v", st)
	}
	h, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	h.Body.Close()
	if h.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", h.StatusCode)
	}
}

func TestRadiusViaAPI(t *testing.T) {
	srv, ds := testServer(t)
	// Radius so tight only the nearest item qualifies.
	var sr SearchResponse
	q := ds.Query(0)
	// First find the true nearest distance via an exact search.
	var exact SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: q, K: 2}, &exact)
	r := (exact.Neighbors[0].Distance + exact.Neighbors[1].Distance) / 2
	post(t, srv.URL+"/search", SearchRequest{Query: q, K: 10, Radius: r}, &sr)
	if len(sr.Neighbors) != 1 || sr.Neighbors[0].ID != exact.Neighbors[0].ID {
		t.Fatalf("radius search via API wrong: %+v", sr.Neighbors)
	}
}

func TestMethodNotAllowedEverywhere(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/batch", "/add"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s gave status %d", path, resp.StatusCode)
		}
	}
	resp, err := http.Post(srv.URL+"/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /stats gave status %d", resp.StatusCode)
	}
}

func TestAddAndBatchBadJSON(t *testing.T) {
	srv, _ := testServer(t)
	for _, path := range []string{"/add", "/batch"} {
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader([]byte("{nope")))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad JSON to %s gave status %d", path, resp.StatusCode)
		}
	}
}

func TestAddWrongDim(t *testing.T) {
	srv, _ := testServer(t)
	resp := post(t, srv.URL+"/add", AddRequest{Vector: []float32{1, 2}}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("wrong-dim add gave status %d", resp.StatusCode)
	}
}

func TestBatchKZeroRejected(t *testing.T) {
	srv, ds := testServer(t)
	resp := post(t, srv.URL+"/batch", BatchRequest{Queries: [][]float32{ds.Query(0)}, K: 0}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 batch gave status %d", resp.StatusCode)
	}
}

// TestConcurrentAddSearchOverHTTP hammers /add, /search, /batch and the
// scrape endpoints from concurrent clients. With snapshot-based search
// the handlers share no locks on the query path; under -race this is
// the HTTP-level regression test for the Add-vs-search data race.
func TestConcurrentAddSearchOverHTTP(t *testing.T) {
	srv, ds := testServer(t)
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var out SearchResponse
				resp := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query((w + i) % ds.NQ()), K: 3}, &out)
				if resp.StatusCode != http.StatusOK {
					t.Errorf("search status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			resp := post(t, srv.URL+"/add", AddRequest{Vector: ds.Vector(i % ds.N())}, nil)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("add status %d", resp.StatusCode)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			var out BatchResponse
			resp := post(t, srv.URL+"/batch", BatchRequest{Queries: [][]float32{ds.Query(0), ds.Query(1)}, K: 3}, &out)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("batch status %d", resp.StatusCode)
				return
			}
			if r, err := http.Get(srv.URL + "/metrics"); err == nil {
				r.Body.Close()
			}
			if r, err := http.Get(srv.URL + "/stats"); err == nil {
				r.Body.Close()
			}
		}
	}()
	wg.Wait()
}

// do issues a request with an arbitrary method (DELETE, PUT) and an
// optional JSON body, decoding a JSON response into out on 200.
func do(t *testing.T, method, url string, body, out any) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp
}

func TestDeleteVectorEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	// Success: 204, and the item stops appearing in results.
	if resp := do(t, http.MethodDelete, srv.URL+"/vector/17", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete gave status %d", resp.StatusCode)
	}
	var out SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Vector(17), K: 3}, &out)
	for _, nb := range out.Neighbors {
		if nb.ID == 17 {
			t.Fatal("deleted vector still returned by /search")
		}
	}
	// Double delete and unknown id: 404. Garbage id: 400.
	if resp := do(t, http.MethodDelete, srv.URL+"/vector/17", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete gave status %d", resp.StatusCode)
	}
	if resp := do(t, http.MethodDelete, srv.URL+"/vector/99999", nil, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id gave status %d", resp.StatusCode)
	}
	if resp := do(t, http.MethodDelete, srv.URL+"/vector/xyz", nil, nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage id gave status %d", resp.StatusCode)
	}
	// The route is method-scoped: GET on it is 405.
	if resp := do(t, http.MethodGet, srv.URL+"/vector/17", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /vector/{id} gave status %d", resp.StatusCode)
	}
}

func TestUpdateVectorEndpoint(t *testing.T) {
	srv, ds := testServer(t)
	// Wrong dimension: 409 Conflict, nothing applied.
	if resp := do(t, http.MethodPut, srv.URL+"/vector/3", UpdateRequest{Vector: ds.Vector(0)[:2]}, nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("wrong dim gave status %d", resp.StatusCode)
	}
	// Unknown id: 404.
	if resp := do(t, http.MethodPut, srv.URL+"/vector/99999", UpdateRequest{Vector: ds.Vector(0)}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id gave status %d", resp.StatusCode)
	}
	// Bad JSON: 400.
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/vector/3", bytes.NewReader([]byte("{")))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON gave status %d", resp.StatusCode)
	}
	// Success: the item moves to a fresh id and is found there.
	var upd UpdateResponse
	if resp := do(t, http.MethodPut, srv.URL+"/vector/3", UpdateRequest{Vector: ds.Query(0)}, &upd); resp.StatusCode != http.StatusOK {
		t.Fatalf("update gave status %d", resp.StatusCode)
	}
	if upd.ID != ds.N() {
		t.Fatalf("update returned id %d, want %d", upd.ID, ds.N())
	}
	var out SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 1}, &out)
	if len(out.Neighbors) != 1 || out.Neighbors[0].ID != upd.ID || out.Neighbors[0].Distance != 0 {
		t.Fatalf("updated vector not at its new id: %+v", out.Neighbors)
	}
	// The old id is gone: a second update of it is 404.
	if resp := do(t, http.MethodPut, srv.URL+"/vector/3", UpdateRequest{Vector: ds.Query(0)}, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("update of dead id gave status %d", resp.StatusCode)
	}
}

func TestSearchTagMaskParam(t *testing.T) {
	srv, ds := testServer(t)
	// One tagged vector in an untagged corpus: a masked search may only
	// ever return it.
	var added AddResponse
	if resp := post(t, srv.URL+"/add", AddRequest{Vector: ds.Query(0), Meta: 0b1000}, &added); resp.StatusCode != http.StatusOK {
		t.Fatalf("add gave status %d", resp.StatusCode)
	}
	var out SearchResponse
	if resp := post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 5, TagMask: 0b1000, IncludeStats: true}, &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("masked search gave status %d", resp.StatusCode)
	}
	if len(out.Neighbors) != 1 || out.Neighbors[0].ID != added.ID || out.Neighbors[0].Distance != 0 {
		t.Fatalf("masked search: %+v, want only the tagged id %d", out.Neighbors, added.ID)
	}
	if out.Stats == nil || out.Stats.Filtered == 0 {
		t.Fatalf("masked search reported no filtered work: %+v", out.Stats)
	}
	// The same mask on /batch.
	var bout BatchResponse
	if resp := post(t, srv.URL+"/batch", BatchRequest{Queries: [][]float32{ds.Query(0)}, K: 5, TagMask: 0b1000}, &bout); resp.StatusCode != http.StatusOK {
		t.Fatalf("masked batch gave status %d", resp.StatusCode)
	}
	if len(bout.Results) != 1 || len(bout.Results[0].Neighbors) != 1 || bout.Results[0].Neighbors[0].ID != added.ID {
		t.Fatalf("masked batch: %+v", bout.Results)
	}
}

func TestStatszReportsLifecycle(t *testing.T) {
	srv, _ := testServer(t)
	if resp := do(t, http.MethodDelete, srv.URL+"/vector/0", nil, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete gave status %d", resp.StatusCode)
	}
	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var statsz struct {
		Index gqr.Stats `json:"index"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&statsz); err != nil {
		t.Fatal(err)
	}
	if statsz.Index.Tombstones != 1 || statsz.Index.Deletes != 1 {
		t.Fatalf("statsz tombstones=%d deletes=%d after one delete", statsz.Index.Tombstones, statsz.Index.Deletes)
	}
	if statsz.Index.LiveItems != statsz.Index.Items-1 {
		t.Fatalf("statsz live=%d items=%d", statsz.Index.LiveItems, statsz.Index.Items)
	}
	// The Prometheus view carries the same gauges.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gqr_index_tombstones 1", "gqr_index_deletes 1"} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
