package server

import (
	"context"
	"sync"
	"time"

	"gqr"
)

// coalescer is the server-side request micro-batcher behind /search
// (opt-in via WithCoalescing): concurrent single-query requests with
// identical search parameters are gathered for up to a latency window
// and executed as one Index.SearchBatchWithStats call, so they share
// the batch engine's amortized preprocessing (one projection matmul
// per table, one ADC arena) instead of each paying it alone. Requests
// with different parameters never mix — the batch key is the full
// option tuple — and every query's result is bit-identical to a
// sequential search, so coalescing trades a bounded latency add for
// throughput, nothing else.
type coalescer struct {
	h        *Handler
	window   time.Duration
	maxBatch int

	mu      sync.Mutex
	pending map[batchKey]*pendingBatch
}

// batchKey is the full set of search parameters a /search request
// carries; only requests with equal keys may share a batch (they must
// be answerable by one SearchBatchWithStats call).
type batchKey struct {
	k          int
	maxCand    int
	maxBuckets int
	radius     float64
	earlyStop  bool
	tagMask    uint64
	stats      bool
}

// coalesceResult is one waiter's outcome, delivered on its buffered
// channel by the flusher.
type coalesceResult struct {
	nbrs []gqr.Neighbor
	st   gqr.SearchStats
	err  error
}

// pendingBatch accumulates the waiters of one key until its window
// timer fires or it reaches maxBatch.
type pendingBatch struct {
	key     batchKey
	queries []float32
	waiters []chan coalesceResult
	timer   *time.Timer
	flushAt time.Time
	flushed bool
}

func newCoalescer(h *Handler, window time.Duration, maxBatch int) *coalescer {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	return &coalescer{
		h:        h,
		window:   window,
		maxBatch: maxBatch,
		pending:  make(map[batchKey]*pendingBatch),
	}
}

// submit enrolls one query under key and blocks until its batch is
// flushed (window expiry, batch full) or ctx is done. The query slice
// must not be mutated by the caller afterwards (it is referenced until
// the flush). A ctx with a deadline sooner than the current flush time
// shrinks the window for the whole batch — one request's deadline is
// never sacrificed to another's throughput.
func (c *coalescer) submit(ctx context.Context, key batchKey, q []float32) coalesceResult {
	ch := make(chan coalesceResult, 1)
	c.mu.Lock()
	b := c.pending[key]
	if b == nil {
		b = &pendingBatch{key: key, flushAt: time.Now().Add(c.window)}
		b.timer = time.AfterFunc(c.window, func() { c.timerFlush(b) })
		c.pending[key] = b
	}
	b.queries = append(b.queries, q...)
	b.waiters = append(b.waiters, ch)
	if dl, ok := ctx.Deadline(); ok && dl.Before(b.flushAt) {
		b.flushAt = dl
		b.timer.Reset(time.Until(dl))
	}
	full := len(b.waiters) >= c.maxBatch
	if full {
		// Inline flush: detach the batch under the lock, run it outside.
		b.flushed = true
		b.timer.Stop()
		delete(c.pending, key)
	}
	c.mu.Unlock()
	if full {
		c.flush(b)
	}
	select {
	case r := <-ch:
		return r
	case <-ctx.Done():
		// The flusher will still deliver into the buffered channel; the
		// result is simply dropped.
		return coalesceResult{err: ctx.Err()}
	}
}

// timerFlush is the window-expiry path: detach the batch if it is
// still pending (an inline flush may have raced the timer) and run it.
func (c *coalescer) timerFlush(b *pendingBatch) {
	c.mu.Lock()
	if b.flushed {
		c.mu.Unlock()
		return
	}
	b.flushed = true
	delete(c.pending, b.key)
	c.mu.Unlock()
	c.flush(b)
}

// flush executes one detached batch and distributes per-query results.
// Per-query errors reach only their own waiter; a structural error
// (which the handler's own validation makes unreachable in practice)
// fails every waiter.
func (c *coalescer) flush(b *pendingBatch) {
	n := len(b.waiters)
	c.h.cBatches.Inc()
	c.h.hBatchSize.Observe(float64(n))
	opts := optsOf(b.key.maxCand, b.key.maxBuckets, b.key.radius, b.key.earlyStop, b.key.tagMask)
	if b.key.stats {
		opts = append(opts, gqr.WithProfile())
	}
	results, err := c.h.ix.SearchBatchWithStats(b.queries, b.key.k, opts...)
	if err != nil {
		for _, ch := range b.waiters {
			ch <- coalesceResult{err: err}
		}
		return
	}
	for i, ch := range b.waiters {
		r := results[i]
		ch <- coalesceResult{nbrs: r.Neighbors, st: r.Stats, err: r.Err}
	}
}
