// Package server exposes a gqr index over HTTP with a small JSON API:
//
//	POST /search  {"query":[...], "k":10, "maxCandidates":1000,
//	               "radius":0, "earlyStop":false, "tagMask":0,
//	               "includeStats":true}
//	POST /batch   {"queries":[[...],[...]], "k":10, ...}
//	POST /add     {"vector":[...], "meta":0}
//	DELETE /vector/{id}   tombstone one item (404 unknown/deleted)
//	PUT    /vector/{id}   {"vector":[...]} replace it, returning the
//	                      new id (404 unknown/deleted, 409 wrong dim)
//	GET  /stats
//	GET  /healthz
//	GET  /metrics   Prometheus text exposition
//	GET  /statsz    JSON metrics snapshot
//	GET  /debug/querytrace  flight-recorder traces (JSON, or Chrome
//	                        trace_event with ?format=chrome; 404 when
//	                        the index was built without tracing)
//	GET  /debug/pprof/*  (only with WithPprof)
//
// Every request is logged through log/slog (method, path, status,
// latency, and the query's §2.2 work stats) and recorded into a
// process-wide metrics registry. It is the serving substrate for
// cmd/gqr-server and is tested with net/http/httptest.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"gqr"
	"gqr/internal/metrics"
	"gqr/internal/trace"
)

// Handler routes the JSON API for one index and owns the request
// logging middleware plus the metrics registry behind /metrics and
// /statsz.
type Handler struct {
	ix    *gqr.Index
	mux   *http.ServeMux
	log   *slog.Logger
	reg   *metrics.Registry
	start time.Time
	pprof bool

	// Cumulative query-work counters (the paper's §2.2 units).
	cQueries       *metrics.Counter
	cBucketsGen    *metrics.Counter
	cBucketsProbed *metrics.Counter
	cCandidates    *metrics.Counter
	cAbandoned     *metrics.Counter
	cADCScored     *metrics.Counter
	cReranked      *metrics.Counter
	cEarlyStops    *metrics.Counter
	cQueryErrors   *metrics.Counter
	// cBatches counts batch executions (explicit /batch requests and
	// coalescer flushes); hBatchSize observes their sizes, so the
	// histogram shows how well coalescing is packing requests.
	cBatches   *metrics.Counter
	hBatchSize *metrics.Histogram

	// Index lifecycle gauges, refreshed on every scrape.
	gItems        *metrics.Gauge
	gTables       *metrics.Gauge
	gCodeBits     *metrics.Gauge
	gBuckets      *metrics.Gauge
	gBuildSeconds *metrics.Gauge
	gTrainSecs    *metrics.Gauge
	gCodeSecs     *metrics.Gauge
	gFreezeSecs   *metrics.Gauge
	gBuildProcs   *metrics.Gauge
	gAdds         *metrics.Gauge
	gDeletes      *metrics.Gauge
	gLive         *metrics.Gauge
	gTombs        *metrics.Gauge
	gTombsPend    *metrics.Gauge
	gRebuilds     *metrics.Gauge
	gSnapGen      *metrics.Gauge
	gSegments     *metrics.Gauge
	gMemtable     *metrics.Gauge
	gWALBytes     *metrics.Gauge
	gSeals        *metrics.Gauge
	gMerges       *metrics.Gauge

	// hMerge observes background segment-merge durations and cPurged the
	// tombstoned items those merges dropped, both fed by the index's
	// compaction observer (installed in New).
	hMerge  *metrics.Histogram
	cPurged *metrics.Counter

	// Per-stage latency histograms, indexed by trace.Stage and fed by
	// the flight recorder's observer (empty when tracing is off).
	hStage [trace.NumStages]*metrics.Histogram

	// coal is the /search request coalescer, nil unless WithCoalescing
	// enabled it; coalWindow/coalMax carry the option values into New.
	coal       *coalescer
	coalWindow time.Duration
	coalMax    int
}

// Option configures a Handler.
type Option func(*Handler)

// WithLogger replaces the request logger (default slog.Default()).
func WithLogger(l *slog.Logger) Option { return func(h *Handler) { h.log = l } }

// WithRegistry shares an external metrics registry (default: a fresh
// one per Handler). Useful when one process serves several indexes.
func WithRegistry(r *metrics.Registry) Option { return func(h *Handler) { h.reg = r } }

// WithPprof mounts net/http/pprof under /debug/pprof/. Off by default:
// profiling endpoints expose internals and cost CPU, so production
// deployments opt in explicitly (the -pprof flag of cmd/gqr-server).
func WithPprof() Option { return func(h *Handler) { h.pprof = true } }

// WithCoalescing enables server-side request coalescing on /search:
// concurrent requests with identical search parameters are held for up
// to window and answered by one batched execution (shared projection
// matmuls, shared ADC arena), at most maxBatch requests per batch
// (≤ 0 picks 64). Every request's result stays bit-identical to an
// uncoalesced search, and a request whose context deadline lands
// inside the window shrinks the window for its batch. Off by default:
// coalescing adds up to window latency per request, so it is a
// throughput-over-latency trade the operator opts into (the
// -batch-window / -batch-max flags of cmd/gqr-server).
func WithCoalescing(window time.Duration, maxBatch int) Option {
	return func(h *Handler) { h.coalWindow, h.coalMax = window, maxBatch }
}

// New wraps an index in an http.Handler.
func New(ix *gqr.Index, opts ...Option) *Handler {
	h := &Handler{ix: ix, mux: http.NewServeMux(), start: time.Now()}
	for _, o := range opts {
		o(h)
	}
	if h.log == nil {
		h.log = slog.Default()
	}
	if h.reg == nil {
		h.reg = metrics.NewRegistry()
	}
	h.initMetrics()
	h.initTracing()
	if h.coalWindow > 0 {
		h.coal = newCoalescer(h, h.coalWindow, h.coalMax)
	}
	// Merge durations arrive by callback — merges run on a background
	// goroutine, so no scrape-time poll can time them.
	ix.SetCompactionObserver(func(ci gqr.CompactionInfo) {
		h.hMerge.Observe(ci.Duration.Seconds())
		h.cPurged.Add(int64(ci.Purged))
	})
	h.mux.HandleFunc("/search", h.search)
	h.mux.HandleFunc("/batch", h.batch)
	h.mux.HandleFunc("/add", h.add)
	h.mux.HandleFunc("DELETE /vector/{id}", h.deleteVector)
	h.mux.HandleFunc("PUT /vector/{id}", h.updateVector)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/healthz", h.healthz)
	h.mux.HandleFunc("/metrics", h.metricsHandler)
	h.mux.HandleFunc("/statsz", h.statszHandler)
	h.mux.HandleFunc("/debug/querytrace", h.querytrace)
	if h.pprof {
		h.mux.HandleFunc("/debug/pprof/", pprof.Index)
		h.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return h
}

// Registry returns the handler's metrics registry (for snapshot logging
// at shutdown).
func (h *Handler) Registry() *metrics.Registry { return h.reg }

// SearchRequest is the /search request body.
type SearchRequest struct {
	Query         []float32 `json:"query"`
	K             int       `json:"k"`
	MaxCandidates int       `json:"maxCandidates,omitempty"`
	MaxBuckets    int       `json:"maxBuckets,omitempty"`
	Radius        float64   `json:"radius,omitempty"`
	EarlyStop     bool      `json:"earlyStop,omitempty"`
	// TagMask keeps only items whose metadata word contains every set
	// bit (gqr.WithTagMask); rejected items are filtered before any
	// distance computation.
	TagMask uint64 `json:"tagMask,omitempty"`
	// IncludeStats echoes the query's work stats (buckets generated and
	// probed, candidates, early-stop flag, retrieval/evaluation time) in
	// the response.
	IncludeStats bool `json:"includeStats,omitempty"`
}

// NeighborJSON is one result entry.
type NeighborJSON struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Neighbors []NeighborJSON   `json:"neighbors"`
	Stats     *gqr.SearchStats `json:"stats,omitempty"`
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	Queries       [][]float32 `json:"queries"`
	K             int         `json:"k"`
	MaxCandidates int         `json:"maxCandidates,omitempty"`
	MaxBuckets    int         `json:"maxBuckets,omitempty"`
	Radius        float64     `json:"radius,omitempty"`
	EarlyStop     bool        `json:"earlyStop,omitempty"`
	TagMask       uint64      `json:"tagMask,omitempty"`
	IncludeStats  bool        `json:"includeStats,omitempty"`
}

// BatchEntry is one query's outcome inside a /batch response: either
// its neighbors (and optionally stats) or the error that failed this
// query alone.
type BatchEntry struct {
	Neighbors []NeighborJSON   `json:"neighbors"`
	Stats     *gqr.SearchStats `json:"stats,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// BatchStats aggregates one /batch execution: how many queries
// answered and failed, the summed §2.2 work counters across the
// answered ones, and — when the request asked for stats — which query
// was slowest (by retrieval + evaluation time) and how long it took.
// SlowestQuery is -1 when per-query timing was not collected.
type BatchStats struct {
	Answered         int             `json:"answered"`
	Failed           int             `json:"failed"`
	Stats            gqr.SearchStats `json:"stats"`
	SlowestQuery     int             `json:"slowestQuery"`
	SlowestQueryTime time.Duration   `json:"slowestQueryTimeNs,omitempty"`
}

// BatchResponse is the /batch response body. Per-query failures (for
// example one ragged query in an otherwise valid batch) appear as
// entries with a non-empty Error; only structural problems — bad k,
// malformed JSON — fail the whole request with a 400. Batch summarizes
// the whole execution.
type BatchResponse struct {
	Results []BatchEntry `json:"results"`
	Batch   *BatchStats  `json:"batch,omitempty"`
}

// AddRequest is the /add request body. Meta is the optional per-item
// metadata word consulted by tagMask/filtered searches.
type AddRequest struct {
	Vector []float32 `json:"vector"`
	Meta   uint64    `json:"meta,omitempty"`
}

// AddResponse is the /add response body.
type AddResponse struct {
	ID int `json:"id"`
}

// UpdateRequest is the PUT /vector/{id} request body.
type UpdateRequest struct {
	Vector []float32 `json:"vector"`
}

// UpdateResponse is the PUT /vector/{id} response body: the item's new
// id (updates re-append; ids are never reused).
type UpdateResponse struct {
	ID int `json:"id"`
}

func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		h.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	// Coalescing path: well-formed queries ride a shared batch (results
	// are bit-identical to a direct search). Malformed ones fall
	// through to the direct path, whose validation produces the right
	// error without poisoning a batch's flat block.
	if h.coal != nil && len(req.Query) == h.ix.Stats().Dim && req.K > 0 {
		key := batchKey{
			k: req.K, maxCand: req.MaxCandidates, maxBuckets: req.MaxBuckets,
			radius: req.Radius, earlyStop: req.EarlyStop, tagMask: req.TagMask,
			stats: req.IncludeStats,
		}
		res := h.coal.submit(r.Context(), key, req.Query)
		if res.err != nil {
			h.httpError(w, http.StatusBadRequest, "%v", res.err)
			return
		}
		h.recordSearchWork(r, res.st, 1)
		resp := SearchResponse{Neighbors: toJSON(res.nbrs)}
		if req.IncludeStats {
			resp.Stats = &res.st
		}
		h.writeJSON(w, resp)
		return
	}
	opts := optsOf(req.MaxCandidates, req.MaxBuckets, req.Radius, req.EarlyStop, req.TagMask)
	if req.IncludeStats {
		opts = append(opts, gqr.WithProfile())
	}
	nbrs, st, err := h.ix.SearchWithStats(req.Query, req.K, opts...)
	if err != nil {
		h.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h.recordSearchWork(r, st, 1)
	resp := SearchResponse{Neighbors: toJSON(nbrs)}
	if req.IncludeStats {
		resp.Stats = &st
	}
	h.writeJSON(w, resp)
}

func (h *Handler) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		h.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	dim := h.ix.Stats().Dim
	// Flatten only well-formed queries; ragged ones become per-entry
	// errors instead of failing the whole batch.
	resp := BatchResponse{Results: make([]BatchEntry, len(req.Queries))}
	flat := make([]float32, 0, len(req.Queries)*dim)
	backMap := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		if len(q) != dim {
			resp.Results[i].Error = fmt.Sprintf("query %d has dim %d, want %d", i, len(q), dim)
			continue
		}
		flat = append(flat, q...)
		backMap = append(backMap, i)
	}
	opts := optsOf(req.MaxCandidates, req.MaxBuckets, req.Radius, req.EarlyStop, req.TagMask)
	if req.IncludeStats {
		opts = append(opts, gqr.WithProfile())
	}
	results, err := h.ix.SearchBatchWithStats(flat, req.K, opts...)
	if err != nil {
		// Structural failure (bad k, bad block): the whole batch is
		// invalid, not any single query.
		h.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	agg := BatchStats{SlowestQuery: -1}
	for bi, res := range results {
		i := backMap[bi]
		if res.Err != nil {
			resp.Results[i].Error = res.Err.Error()
			agg.Failed++
			continue
		}
		resp.Results[i].Neighbors = toJSON(res.Neighbors)
		if req.IncludeStats {
			st := res.Stats
			resp.Results[i].Stats = &st
			// Per-query timing exists only under WithProfile, which
			// IncludeStats turns on; attribute the batch's slowest query.
			if qt := st.RetrievalTime + st.EvaluationTime; agg.SlowestQuery < 0 || qt > agg.SlowestQueryTime {
				agg.SlowestQuery, agg.SlowestQueryTime = i, qt
			}
		}
		agg.Stats.Merge(res.Stats)
		agg.Answered++
	}
	agg.Failed += len(req.Queries) - len(backMap)
	h.cBatches.Inc()
	h.hBatchSize.Observe(float64(len(backMap)))
	h.recordSearchWork(r, agg.Stats, agg.Answered)
	h.cQueryErrors.Add(int64(agg.Failed))
	resp.Batch = &agg
	h.writeJSON(w, resp)
}

func (h *Handler) add(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		h.httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	id, err := h.ix.AddWithMeta(req.Vector, req.Meta)
	if err != nil {
		h.httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	h.writeJSON(w, AddResponse{ID: id})
}

// vectorID parses the {id} path segment; ok=false means the 400 is
// already written.
func (h *Handler) vectorID(w http.ResponseWriter, r *http.Request) (int, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		h.httpError(w, http.StatusBadRequest, "bad vector id %q", r.PathValue("id"))
		return 0, false
	}
	return id, true
}

func (h *Handler) deleteVector(w http.ResponseWriter, r *http.Request) {
	id, ok := h.vectorID(w, r)
	if !ok {
		return
	}
	if err := h.ix.Delete(id); err != nil {
		if errors.Is(err, gqr.ErrNotFound) {
			h.httpError(w, http.StatusNotFound, "%v", err)
		} else {
			h.httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (h *Handler) updateVector(w http.ResponseWriter, r *http.Request) {
	id, ok := h.vectorID(w, r)
	if !ok {
		return
	}
	var req UpdateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		h.httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	newID, err := h.ix.Update(id, req.Vector)
	if err != nil {
		switch {
		case errors.Is(err, gqr.ErrNotFound):
			h.httpError(w, http.StatusNotFound, "%v", err)
		case errors.Is(err, gqr.ErrDimension):
			h.httpError(w, http.StatusConflict, "%v", err)
		default:
			h.httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	h.writeJSON(w, UpdateResponse{ID: newID})
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		h.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	h.writeJSON(w, h.ix.Stats())
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func optsOf(maxCand, maxBuckets int, radius float64, earlyStop bool, tagMask uint64) []gqr.SearchOption {
	var opts []gqr.SearchOption
	if maxCand > 0 {
		opts = append(opts, gqr.WithMaxCandidates(maxCand))
	}
	if maxBuckets > 0 {
		opts = append(opts, gqr.WithMaxBuckets(maxBuckets))
	}
	if radius > 0 {
		opts = append(opts, gqr.WithRadius(radius))
	}
	if earlyStop {
		opts = append(opts, gqr.WithEarlyStop())
	}
	if tagMask != 0 {
		opts = append(opts, gqr.WithTagMask(tagMask))
	}
	return opts
}

func toJSON(nbrs []gqr.Neighbor) []NeighborJSON {
	out := make([]NeighborJSON, len(nbrs))
	for i, nb := range nbrs {
		out[i] = NeighborJSON{ID: nb.ID, Distance: nb.Distance}
	}
	return out
}

func (h *Handler) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent, so the client sees a truncated body;
		// the operator sees this line.
		h.log.Error("response encode failed", "error", err)
	}
}

func (h *Handler) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}); err != nil {
		h.log.Error("error-response encode failed", "error", err)
	}
}
