// Package server exposes a gqr index over HTTP with a small JSON API:
//
//	POST /search  {"query":[...], "k":10, "maxCandidates":1000,
//	               "radius":0, "earlyStop":false}
//	POST /batch   {"queries":[[...],[...]], "k":10, ...}
//	POST /add     {"vector":[...]}
//	GET  /stats
//	GET  /healthz
//
// It is the serving substrate for cmd/gqr-server and is tested with
// net/http/httptest.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"gqr"
)

// Handler routes the JSON API for one index.
type Handler struct {
	ix  *gqr.Index
	mux *http.ServeMux
}

// New wraps an index in an http.Handler.
func New(ix *gqr.Index) *Handler {
	h := &Handler{ix: ix, mux: http.NewServeMux()}
	h.mux.HandleFunc("/search", h.search)
	h.mux.HandleFunc("/batch", h.batch)
	h.mux.HandleFunc("/add", h.add)
	h.mux.HandleFunc("/stats", h.stats)
	h.mux.HandleFunc("/healthz", h.healthz)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// SearchRequest is the /search request body.
type SearchRequest struct {
	Query         []float32 `json:"query"`
	K             int       `json:"k"`
	MaxCandidates int       `json:"maxCandidates,omitempty"`
	MaxBuckets    int       `json:"maxBuckets,omitempty"`
	Radius        float64   `json:"radius,omitempty"`
	EarlyStop     bool      `json:"earlyStop,omitempty"`
}

// NeighborJSON is one result entry.
type NeighborJSON struct {
	ID       int     `json:"id"`
	Distance float64 `json:"distance"`
}

// SearchResponse is the /search response body.
type SearchResponse struct {
	Neighbors []NeighborJSON `json:"neighbors"`
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	Queries       [][]float32 `json:"queries"`
	K             int         `json:"k"`
	MaxCandidates int         `json:"maxCandidates,omitempty"`
	MaxBuckets    int         `json:"maxBuckets,omitempty"`
	Radius        float64     `json:"radius,omitempty"`
	EarlyStop     bool        `json:"earlyStop,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	Results [][]NeighborJSON `json:"results"`
}

// AddRequest is the /add request body.
type AddRequest struct {
	Vector []float32 `json:"vector"`
}

// AddResponse is the /add response body.
type AddResponse struct {
	ID int `json:"id"`
}

func (h *Handler) search(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	nbrs, err := h.ix.Search(req.Query, req.K, optsOf(req.MaxCandidates, req.MaxBuckets, req.Radius, req.EarlyStop)...)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, SearchResponse{Neighbors: toJSON(nbrs)})
}

func (h *Handler) batch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	dim := h.ix.Stats().Dim
	flat := make([]float32, 0, len(req.Queries)*dim)
	for i, q := range req.Queries {
		if len(q) != dim {
			httpError(w, http.StatusBadRequest, "query %d has dim %d, want %d", i, len(q), dim)
			return
		}
		flat = append(flat, q...)
	}
	lists, err := h.ix.SearchBatch(flat, req.K, optsOf(req.MaxCandidates, req.MaxBuckets, req.Radius, req.EarlyStop)...)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := BatchResponse{Results: make([][]NeighborJSON, len(lists))}
	for i, nbrs := range lists {
		resp.Results[i] = toJSON(nbrs)
	}
	writeJSON(w, resp)
}

func (h *Handler) add(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req AddRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: %v", err)
		return
	}
	id, err := h.ix.Add(req.Vector)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, AddResponse{ID: id})
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, h.ix.Stats())
}

func (h *Handler) healthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func optsOf(maxCand, maxBuckets int, radius float64, earlyStop bool) []gqr.SearchOption {
	var opts []gqr.SearchOption
	if maxCand > 0 {
		opts = append(opts, gqr.WithMaxCandidates(maxCand))
	}
	if maxBuckets > 0 {
		opts = append(opts, gqr.WithMaxBuckets(maxBuckets))
	}
	if radius > 0 {
		opts = append(opts, gqr.WithRadius(radius))
	}
	if earlyStop {
		opts = append(opts, gqr.WithEarlyStop())
	}
	return opts
}

func toJSON(nbrs []gqr.Neighbor) []NeighborJSON {
	out := make([]NeighborJSON, len(nbrs))
	for i, nb := range nbrs {
		out[i] = NeighborJSON{ID: nb.ID, Distance: nb.Distance}
	}
	return out
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already sent; nothing more to do but log-worthy
		// in a real deployment. The connection error surfaces to the
		// client anyway.
		_ = err
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
