package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"gqr"
	"gqr/internal/dataset"
)

// newObsServer builds a handler over a small index with the given
// options and returns the test server plus the dataset.
func newObsServer(t *testing.T, opts ...Option) (*httptest.Server, *dataset.Dataset) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "obs", N: 400, Dim: 10, Clusters: 4, LatentDim: 3, Seed: 17,
	})
	ds.SampleQueries(4, 18)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(19))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix, opts...))
	t.Cleanup(srv.Close)
	return srv, ds
}

// expositionLine matches one Prometheus sample line:
// name or name{label="value",...} then a space and a value.
var expositionLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[0-9eE.+-]+)$`)

// parseExposition validates the text format and returns sample values
// keyed by the full series name (with labels).
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	typed := make(map[string]bool)
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || (f[3] != "counter" && f[3] != "gauge" && f[3] != "histogram") {
				t.Fatalf("line %d: bad TYPE line %q", ln+1, line)
			}
			typed[f[2]] = true
			continue
		}
		if !expositionLine.MatchString(line) {
			t.Fatalf("line %d: invalid exposition line %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("line %d: bad value in %q: %v", ln+1, line, err)
		}
		series := line[:sp]
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: sample %q has no TYPE declaration", ln+1, line)
		}
		samples[series] = v
	}
	return samples
}

func TestMetricsEndpointGolden(t *testing.T) {
	srv, ds := newObsServer(t)
	// Drive known traffic: 3 searches and one add.
	for qi := 0; qi < 3; qi++ {
		post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, MaxCandidates: 100}, nil)
	}
	post(t, srv.URL+"/add", AddRequest{Vector: ds.Query(0)}, nil)

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, string(body))

	// Request counter and latency histogram for the search path.
	if got := samples[`gqr_http_requests_total{code="200",method="POST",path="/search"}`]; got != 3 {
		t.Fatalf("search request counter = %v, want 3", got)
	}
	if got := samples[`gqr_http_request_seconds_count{path="/search"}`]; got != 3 {
		t.Fatalf("search latency histogram count = %v, want 3", got)
	}
	// Cumulative work counters must reflect real probing.
	if samples["gqr_search_queries_total"] != 3 {
		t.Fatalf("queries total = %v", samples["gqr_search_queries_total"])
	}
	for _, name := range []string{
		"gqr_search_buckets_generated_total",
		"gqr_search_buckets_probed_total",
		"gqr_search_candidates_total",
	} {
		if samples[name] <= 0 {
			t.Fatalf("%s = %v, want > 0", name, samples[name])
		}
	}
	if _, ok := samples["gqr_search_early_stops_total"]; !ok {
		t.Fatal("early-stop counter missing")
	}
	// Index gauges: the built corpus plus 1 added vector.
	if want := float64(ds.N() + 1); samples["gqr_index_items"] != want {
		t.Fatalf("gqr_index_items = %v, want %v", samples["gqr_index_items"], want)
	}
	if samples["gqr_index_adds"] != 1 {
		t.Fatalf("gqr_index_adds = %v, want 1", samples["gqr_index_adds"])
	}
	if samples["gqr_index_tables"] != 1 || samples["gqr_index_code_bits"] <= 0 {
		t.Fatalf("index gauges: tables=%v bits=%v",
			samples["gqr_index_tables"], samples["gqr_index_code_bits"])
	}
}

func TestStatszEndpoint(t *testing.T) {
	srv, ds := newObsServer(t)
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 5}, nil)
	var batch BatchResponse
	post(t, srv.URL+"/batch", BatchRequest{
		Queries: [][]float32{ds.Query(1), ds.Query(2)[:3]}, K: 2, MaxCandidates: 50,
	}, &batch)

	resp, err := http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Statsz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UptimeSeconds <= 0 {
		t.Fatalf("uptime = %v", st.UptimeSeconds)
	}
	if st.Index.Items != ds.N() {
		t.Fatalf("index items = %d, want %d", st.Index.Items, ds.N())
	}
	// 1 search + 1 answered batch query; 1 failed batch query.
	if st.Search.Queries != 2 || st.Search.QueryErrors != 1 {
		t.Fatalf("search totals = %+v", st.Search)
	}
	if st.Search.Candidates <= 0 || st.Search.BucketsProbed <= 0 {
		t.Fatalf("work counters empty: %+v", st.Search)
	}
	ps := st.HTTP["/search"]
	if ps == nil || ps.Requests != 1 || ps.ByCode["200"] != 1 {
		t.Fatalf("per-path stats for /search = %+v", ps)
	}
	if ps.Latency == nil || ps.Latency.Count != 1 {
		t.Fatalf("latency summary for /search = %+v", ps.Latency)
	}
	if len(st.Metrics) == 0 {
		t.Fatal("metrics snapshot empty")
	}
}

func TestRequestLoggingMiddleware(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv, ds := newObsServer(t, WithLogger(logger))

	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 5, MaxCandidates: 100}, nil)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2:\n%s", len(lines), buf.String())
	}
	var search map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &search); err != nil {
		t.Fatal(err)
	}
	if search["method"] != "POST" || search["path"] != "/search" || search["status"] != float64(200) {
		t.Fatalf("search log line = %v", search)
	}
	if search["msg"] != "request" {
		t.Fatalf("log msg = %v", search["msg"])
	}
	for _, key := range []string{"duration", "queries", "bucketsGenerated", "bucketsProbed", "candidates"} {
		if _, ok := search[key]; !ok {
			t.Fatalf("search log line missing %q: %v", key, search)
		}
	}
	if search["candidates"].(float64) <= 0 {
		t.Fatalf("logged candidates = %v", search["candidates"])
	}
	var health map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &health); err != nil {
		t.Fatal(err)
	}
	if health["path"] != "/healthz" || health["status"] != float64(200) {
		t.Fatalf("healthz log line = %v", health)
	}
	if _, ok := health["queries"]; ok {
		t.Fatalf("healthz log line has work stats: %v", health)
	}
}

func TestSearchIncludeStats(t *testing.T) {
	srv, ds := newObsServer(t)
	var out SearchResponse
	resp := post(t, srv.URL+"/search",
		SearchRequest{Query: ds.Query(0), K: 5, MaxCandidates: 100, IncludeStats: true}, &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Stats == nil || out.Stats.Candidates <= 0 || out.Stats.BucketsProbed <= 0 {
		t.Fatalf("stats = %+v", out.Stats)
	}
	// WithProfile is implied by includeStats, so the time split exists.
	if out.Stats.RetrievalTime+out.Stats.EvaluationTime <= 0 {
		t.Fatalf("profile times empty: %+v", out.Stats)
	}
	// Without includeStats the field is omitted.
	var plain SearchResponse
	post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(0), K: 5}, &plain)
	if plain.Stats != nil {
		t.Fatalf("stats present without includeStats: %+v", plain.Stats)
	}
}

func TestBatchIncludeStats(t *testing.T) {
	srv, ds := newObsServer(t)
	var out BatchResponse
	post(t, srv.URL+"/batch", BatchRequest{
		Queries: [][]float32{ds.Query(0), ds.Query(1)}, K: 3,
		MaxCandidates: 50, IncludeStats: true,
	}, &out)
	for i, entry := range out.Results {
		if entry.Stats == nil || entry.Stats.Candidates <= 0 {
			t.Fatalf("entry %d stats = %+v", i, entry.Stats)
		}
	}
}

func TestPprofOptIn(t *testing.T) {
	on, _ := newObsServer(t, WithPprof())
	resp, err := http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof enabled: status %d", resp.StatusCode)
	}

	off, _ := newObsServer(t)
	resp, err = http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof disabled: status %d, want 404", resp.StatusCode)
	}
}

func TestMetricsAndStatszMethodNotAllowed(t *testing.T) {
	srv, _ := newObsServer(t)
	for _, path := range []string{"/metrics", "/statsz"} {
		resp, err := http.Post(srv.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s gave status %d", path, resp.StatusCode)
		}
	}
}

func TestUnknownPathFoldsToOther(t *testing.T) {
	srv, _ := newObsServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/no-such-%d", srv.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if strings.Contains(string(body), "no-such-") {
		t.Fatal("unbounded path leaked into metric labels")
	}
	samples := parseExposition(t, string(body))
	if got := samples[`gqr_http_requests_total{code="404",method="GET",path="other"}`]; got != 3 {
		t.Fatalf("folded 404 counter = %v, want 3", got)
	}
}
