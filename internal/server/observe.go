package server

import (
	"context"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gqr"
	"gqr/internal/metrics"
)

// Metric families exported by the handler. The search counters use the
// paper's §2.2 work units so operator dashboards graph the same
// quantities as Figures 8-10.
const (
	mHTTPRequests    = "gqr_http_requests_total"
	mHTTPLatency     = "gqr_http_request_seconds"
	mQueries         = "gqr_search_queries_total"
	mBucketsGen      = "gqr_search_buckets_generated_total"
	mBucketsProbed   = "gqr_search_buckets_probed_total"
	mCandidates      = "gqr_search_candidates_total"
	mAbandoned       = "gqr_search_early_abandoned_total"
	mADCScored       = "gqr_search_adc_scored_total"
	mReranked        = "gqr_search_reranked_total"
	mEarlyStops      = "gqr_search_early_stops_total"
	mQueryErrors     = "gqr_search_query_errors_total"
	mBatches         = "gqr_search_batches_total"
	mBatchSize       = "gqr_search_batch_size"
	mIndexItems      = "gqr_index_items"
	mIndexTables     = "gqr_index_tables"
	mIndexCodeBits   = "gqr_index_code_bits"
	mIndexBuckets    = "gqr_index_buckets"
	mIndexBuildSecs  = "gqr_index_build_seconds"
	mIndexTrainSecs  = "gqr_index_build_train_seconds"
	mIndexCodeSecs   = "gqr_index_build_code_seconds"
	mIndexFreezeSecs = "gqr_index_build_freeze_seconds"
	mIndexBuildProcs = "gqr_index_build_parallelism"
	mIndexAdds       = "gqr_index_adds"
	mIndexDeletes    = "gqr_index_deletes"
	mIndexLive       = "gqr_index_live_items"
	mIndexTombs      = "gqr_index_tombstones"
	mIndexTombsPend  = "gqr_index_tombstones_pending"
	mIndexPurged     = "gqr_index_purged_total"
	mIndexRebuilds   = "gqr_index_method_rebuilds"
	mIndexSnapGen    = "gqr_index_snapshot_generation"
	mIndexSegments   = "gqr_index_segments"
	mIndexMemtable   = "gqr_index_memtable_items"
	mIndexWALBytes   = "gqr_index_wal_bytes"
	mIndexSeals      = "gqr_index_seals_total"
	mIndexMerges     = "gqr_index_merges_total"
	mIndexMergeSecs  = "gqr_index_merge_seconds"
)

// initMetrics registers every fixed series up front so /metrics serves
// complete HELP/TYPE families even before traffic arrives.
func (h *Handler) initMetrics() {
	h.cQueries = h.reg.Counter(mQueries, "Queries answered (batch queries count individually).")
	h.cBucketsGen = h.reg.Counter(mBucketsGen, "Probe-sequence bucket emissions, including empty buckets (paper §2.2).")
	h.cBucketsProbed = h.reg.Counter(mBucketsProbed, "Non-empty buckets evaluated.")
	h.cCandidates = h.reg.Counter(mCandidates, "Distinct items whose exact distance was computed (the paper's retrieved items).")
	h.cAbandoned = h.reg.Counter(mAbandoned, "Candidates whose distance computation was cut short by the early-abandon bound (subset of candidates).")
	h.cADCScored = h.reg.Counter(mADCScored, "Candidates scored by the quantized re-ranking stage's ADC table (0 when the index has no reranker).")
	h.cReranked = h.reg.Counter(mReranked, "Re-ranking survivors handed to exact evaluation (at most factor*k per query).")
	h.cEarlyStops = h.reg.Counter(mEarlyStops, "Queries terminated by the QD lower-bound rule (paper §4.1).")
	h.cQueryErrors = h.reg.Counter(mQueryErrors, "Per-query failures inside /batch requests.")
	h.cBatches = h.reg.Counter(mBatches, "Batched executions: /batch requests plus /search coalescer flushes.")
	h.hBatchSize = h.reg.Histogram(mBatchSize, "Queries per batched execution (how well coalescing packs requests).",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	h.gItems = h.reg.Gauge(mIndexItems, "Vectors in the index.")
	h.gTables = h.reg.Gauge(mIndexTables, "Hash tables in the index.")
	h.gCodeBits = h.reg.Gauge(mIndexCodeBits, "Binary code length in bits.")
	h.gBuckets = h.reg.Gauge(mIndexBuckets, "Non-empty buckets summed over tables.")
	h.gBuildSeconds = h.reg.Gauge(mIndexBuildSecs, "Index build (train + hash) time in seconds.")
	h.gTrainSecs = h.reg.Gauge(mIndexTrainSecs, "Build stage: hasher training time in seconds.")
	h.gCodeSecs = h.reg.Gauge(mIndexCodeSecs, "Build stage: item coding time in seconds.")
	h.gFreezeSecs = h.reg.Gauge(mIndexFreezeSecs, "Build stage: CSR core construction (freeze) time in seconds.")
	h.gBuildProcs = h.reg.Gauge(mIndexBuildProcs, "Resolved worker bound the index build ran with (0 when loaded from disk).")
	h.gAdds = h.reg.Gauge(mIndexAdds, "Vectors appended via Add since construction.")
	h.gDeletes = h.reg.Gauge(mIndexDeletes, "Tombstones recorded via Delete/Update since construction.")
	h.gLive = h.reg.Gauge(mIndexLive, "Live (searchable) vectors: allocated ids minus tombstones.")
	h.gTombs = h.reg.Gauge(mIndexTombs, "Deleted ids (permanently allocated, never returned by searches).")
	h.gTombsPend = h.reg.Gauge(mIndexTombsPend, "Tombstoned ids still occupying posting-list slots (not yet purged by a seal or merge).")
	h.cPurged = h.reg.Counter(mIndexPurged, "Tombstoned items dropped from posting lists by merges and compactions.")
	h.gRebuilds = h.reg.Gauge(mIndexRebuilds, "Querying-method view rebuilds triggered by Add.")
	h.gSnapGen = h.reg.Gauge(mIndexSnapGen, "Generation of the published read snapshot searches run on.")
	h.gSegments = h.reg.Gauge(mIndexSegments, "Frozen LSM segments in the live index.")
	h.gMemtable = h.reg.Gauge(mIndexMemtable, "Items in the mutable memtable (not yet sealed).")
	h.gWALBytes = h.reg.Gauge(mIndexWALBytes, "Bytes across live write-ahead log files (0 when durability is off).")
	h.gSeals = h.reg.Gauge(mIndexSeals, "Memtable seals since construction.")
	h.gMerges = h.reg.Gauge(mIndexMerges, "Background segment merges since construction.")
	h.hMerge = h.reg.Histogram(mIndexMergeSecs, "Background segment-merge duration in seconds.", nil)
	h.updateIndexGauges()
}

// updateIndexGauges refreshes the lifecycle gauges from the index; it
// runs on every scrape so the gauges track Add traffic.
func (h *Handler) updateIndexGauges() {
	st := h.ix.Stats()
	h.gItems.Set(float64(st.Items))
	h.gTables.Set(float64(st.Tables))
	h.gCodeBits.Set(float64(st.CodeLength))
	buckets := 0
	for _, b := range st.Buckets {
		buckets += b
	}
	h.gBuckets.Set(float64(buckets))
	h.gBuildSeconds.Set(st.BuildTime.Seconds())
	h.gTrainSecs.Set(st.TrainTime.Seconds())
	h.gCodeSecs.Set(st.CodeTime.Seconds())
	h.gFreezeSecs.Set(st.FreezeTime.Seconds())
	h.gBuildProcs.Set(float64(st.BuildParallelism))
	h.gAdds.Set(float64(st.Adds))
	h.gDeletes.Set(float64(st.Deletes))
	h.gLive.Set(float64(st.LiveItems))
	h.gTombs.Set(float64(st.Tombstones))
	h.gTombsPend.Set(float64(st.PendingTombstones))
	h.gRebuilds.Set(float64(st.MethodRebuilds))
	h.gSnapGen.Set(float64(st.SnapshotGeneration))
	h.gSegments.Set(float64(st.Segments))
	h.gMemtable.Set(float64(st.MemtableItems))
	h.gWALBytes.Set(float64(st.WALBytes))
	h.gSeals.Set(float64(st.Seals))
	h.gMerges.Set(float64(st.Merges))
}

// workKey carries the per-request work accumulator through the
// handler's context so the logging middleware can report it.
type workKey struct{}

type workCarrier struct {
	queries int
	stats   gqr.SearchStats
}

// recordSearchWork adds one request's query work to the cumulative
// counters and stashes it for the request log line. n is the number of
// queries answered (a batch records its merged stats once).
func (h *Handler) recordSearchWork(r *http.Request, st gqr.SearchStats, n int) {
	if n <= 0 && st == (gqr.SearchStats{}) {
		return
	}
	h.cQueries.Add(int64(n))
	h.cBucketsGen.Add(int64(st.BucketsGenerated))
	h.cBucketsProbed.Add(int64(st.BucketsProbed))
	h.cCandidates.Add(int64(st.Candidates))
	h.cAbandoned.Add(int64(st.EarlyAbandoned))
	h.cADCScored.Add(int64(st.ADCScored))
	h.cReranked.Add(int64(st.Reranked))
	if st.EarlyStopped {
		h.cEarlyStops.Inc()
	}
	if wc, ok := r.Context().Value(workKey{}).(*workCarrier); ok {
		wc.queries += n
		wc.stats.BucketsGenerated += st.BucketsGenerated
		wc.stats.BucketsProbed += st.BucketsProbed
		wc.stats.Candidates += st.Candidates
		wc.stats.EarlyAbandoned += st.EarlyAbandoned
		wc.stats.ADCScored += st.ADCScored
		wc.stats.Reranked += st.Reranked
		wc.stats.EarlyStopped = wc.stats.EarlyStopped || st.EarlyStopped
		wc.stats.RetrievalTime += st.RetrievalTime
		wc.stats.EvaluationTime += st.EvaluationTime
	}
}

// statusRecorder captures the response code for logging and metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// knownPaths bounds the path label's cardinality: arbitrary request
// paths (scanners, typos) all fold into "other" so they cannot grow
// the registry without bound.
var knownPaths = map[string]bool{
	"/search": true, "/batch": true, "/add": true, "/stats": true,
	"/healthz": true, "/metrics": true, "/statsz": true,
	"/debug/querytrace": true,
}

func pathLabel(p string) string {
	if knownPaths[p] {
		return p
	}
	if strings.HasPrefix(p, "/vector/") {
		return "/vector/{id}"
	}
	if strings.HasPrefix(p, "/debug/pprof") {
		return "/debug/pprof"
	}
	return "other"
}

// ServeHTTP implements http.Handler: it wraps the mux with structured
// request logging and per-request metrics recording.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	wc := &workCarrier{}
	r = r.WithContext(context.WithValue(r.Context(), workKey{}, wc))
	h.mux.ServeHTTP(rec, r)
	elapsed := time.Since(start)

	path := pathLabel(r.URL.Path)
	code := strconv.Itoa(rec.status)
	h.reg.CounterWith(mHTTPRequests, "HTTP requests by method, path and status code.",
		metrics.Labels{"method": r.Method, "path": path, "code": code}).Inc()
	h.reg.HistogramWith(mHTTPLatency, "HTTP request latency in seconds.", nil,
		metrics.Labels{"path": path}).Observe(elapsed.Seconds())

	attrs := []slog.Attr{
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", rec.status),
		slog.Duration("duration", elapsed),
	}
	if wc.queries > 0 {
		attrs = append(attrs,
			slog.Int("queries", wc.queries),
			slog.Int("bucketsGenerated", wc.stats.BucketsGenerated),
			slog.Int("bucketsProbed", wc.stats.BucketsProbed),
			slog.Int("candidates", wc.stats.Candidates),
			slog.Bool("earlyStopped", wc.stats.EarlyStopped),
		)
	}
	h.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

func (h *Handler) metricsHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		h.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	h.updateIndexGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := h.reg.WritePrometheus(w); err != nil {
		h.log.Error("metrics encode failed", "error", err)
	}
}

// SearchTotals are the cumulative §2.2 work counters in /statsz.
type SearchTotals struct {
	Queries          int64 `json:"queries"`
	BucketsGenerated int64 `json:"bucketsGenerated"`
	BucketsProbed    int64 `json:"bucketsProbed"`
	Candidates       int64 `json:"candidates"`
	EarlyAbandoned   int64 `json:"earlyAbandoned"`
	ADCScored        int64 `json:"adcScored"`
	Reranked         int64 `json:"reranked"`
	EarlyStops       int64 `json:"earlyStops"`
	QueryErrors      int64 `json:"queryErrors"`
	// Batches counts batched executions (explicit /batch requests and
	// /search coalescer flushes); Queries/Batches is the mean batch size.
	Batches int64 `json:"batches"`
}

// PathStats is one endpoint's request breakdown in /statsz.
type PathStats struct {
	Requests int64                   `json:"requests"`
	ByCode   map[string]int64        `json:"byCode"`
	Latency  *metrics.HistogramValue `json:"latencySeconds,omitempty"`
}

// Statsz is the /statsz response body: a JSON snapshot of the same
// registry /metrics exposes, plus a per-endpoint request breakdown.
type Statsz struct {
	UptimeSeconds float64               `json:"uptimeSeconds"`
	Index         gqr.Stats             `json:"index"`
	Search        SearchTotals          `json:"search"`
	HTTP          map[string]*PathStats `json:"http"`
	Metrics       []metrics.MetricValue `json:"metrics"`
}

func (h *Handler) statszHandler(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		h.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	h.updateIndexGauges()
	snap := h.reg.Snapshot()
	out := Statsz{
		UptimeSeconds: time.Since(h.start).Seconds(),
		Index:         h.ix.Stats(),
		Search: SearchTotals{
			Queries:          h.cQueries.Value(),
			BucketsGenerated: h.cBucketsGen.Value(),
			BucketsProbed:    h.cBucketsProbed.Value(),
			Candidates:       h.cCandidates.Value(),
			EarlyAbandoned:   h.cAbandoned.Value(),
			ADCScored:        h.cADCScored.Value(),
			Reranked:         h.cReranked.Value(),
			EarlyStops:       h.cEarlyStops.Value(),
			QueryErrors:      h.cQueryErrors.Value(),
			Batches:          h.cBatches.Value(),
		},
		HTTP:    make(map[string]*PathStats),
		Metrics: snap,
	}
	for _, mv := range snap {
		switch mv.Name {
		case mHTTPRequests:
			p := mv.Labels["path"]
			ps := out.HTTP[p]
			if ps == nil {
				ps = &PathStats{ByCode: make(map[string]int64)}
				out.HTTP[p] = ps
			}
			ps.Requests += int64(mv.Value)
			ps.ByCode[mv.Labels["code"]] += int64(mv.Value)
		case mHTTPLatency:
			p := mv.Labels["path"]
			ps := out.HTTP[p]
			if ps == nil {
				ps = &PathStats{ByCode: make(map[string]int64)}
				out.HTTP[p] = ps
			}
			ps.Latency = mv.Histogram
		}
	}
	h.writeJSON(w, out)
}
