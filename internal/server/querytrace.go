package server

import (
	"net/http"
	"strconv"

	"gqr/internal/metrics"
	"gqr/internal/trace"
)

// mStageSeconds is the per-stage latency family: one histogram series
// per pipeline stage (µs-scale buckets), fed by the flight recorder's
// observer from every traced query.
const mStageSeconds = "gqr_search_stage_seconds"

// initTracing registers the per-stage latency histograms and, when the
// index carries a flight recorder, installs the observer that feeds
// them. The histogram families are registered even with tracing off so
// /metrics always serves complete HELP/TYPE blocks; they simply stay
// empty.
func (h *Handler) initTracing() {
	for i := 0; i < trace.NumStages; i++ {
		h.hStage[i] = h.reg.HistogramWith(mStageSeconds,
			"Per-query pipeline stage time in seconds (from traced queries; see /debug/querytrace).",
			metrics.DefStageBuckets, metrics.Labels{"stage": trace.Stage(i).String()})
	}
	rec := h.ix.TraceRecorder()
	if rec == nil {
		return
	}
	rec.SetObserver(func(tr *trace.Trace) {
		for i := 0; i < trace.NumStages; i++ {
			if tr.StageCount[i] > 0 {
				h.hStage[i].Observe(tr.StageDur[i].Seconds())
			}
		}
	})
}

// QueryTraceList is the /debug/querytrace response body: the
// recorder's lifetime counters plus the captured traces, newest first,
// as span-free summaries (fetch ?id=N for one trace's span timeline).
type QueryTraceList struct {
	Recorder trace.Stats     `json:"recorder"`
	Traces   []trace.Summary `json:"traces"`
}

// querytrace serves the flight recorder:
//
//	GET /debug/querytrace                   summaries, newest first
//	GET /debug/querytrace?id=N              one trace with its spans
//	GET /debug/querytrace?format=chrome     all captured traces as
//	                                        Chrome trace_event JSON
//	GET /debug/querytrace?id=N&format=chrome
//
// 404 when tracing was not enabled at index construction.
func (h *Handler) querytrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		h.httpError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	rec := h.ix.TraceRecorder()
	if rec == nil {
		h.httpError(w, http.StatusNotFound, "tracing disabled; start the index with tracing enabled (-trace-sample / -slow-query-ms)")
		return
	}
	q := r.URL.Query()
	chrome := q.Get("format") == "chrome"
	if idStr := q.Get("id"); idStr != "" {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			h.httpError(w, http.StatusBadRequest, "invalid trace id %q", idStr)
			return
		}
		tr := rec.Trace(id)
		if tr == nil {
			h.httpError(w, http.StatusNotFound, "trace %d not captured (evicted or never existed)", id)
			return
		}
		if chrome {
			h.writeChrome(w, tr)
			return
		}
		h.writeJSON(w, tr.Detail())
		return
	}
	traces := rec.Traces()
	if chrome {
		h.writeChrome(w, traces...)
		return
	}
	out := QueryTraceList{Recorder: rec.Stats(), Traces: make([]trace.Summary, len(traces))}
	for i, tr := range traces {
		out.Traces[i] = tr.Summary()
	}
	h.writeJSON(w, out)
}

func (h *Handler) writeChrome(w http.ResponseWriter, traces ...*trace.Trace) {
	w.Header().Set("Content-Type", "application/json")
	if err := trace.WriteChrome(w, traces...); err != nil {
		h.log.Error("chrome trace encode failed", "error", err)
	}
}
