package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"gqr"
	"gqr/internal/dataset"
	"gqr/internal/trace"
)

// tracedServer builds an index with tracing on every query and serves
// it over httptest.
func tracedServer(t *testing.T) (*httptest.Server, *dataset.Dataset, *gqr.Index) {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "trc", N: 600, Dim: 12, Clusters: 4, LatentDim: 3, Seed: 91,
	})
	ds.SampleQueries(6, 92)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(93), gqr.WithTracing(1))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix))
	t.Cleanup(srv.Close)
	return srv, ds, ix
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestQueryTraceDisabled404(t *testing.T) {
	srv, _ := testServer(t) // no tracing options
	resp, _ := get(t, srv.URL+"/debug/querytrace")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("tracing disabled: status %d, want 404", resp.StatusCode)
	}
}

func TestQueryTraceListAndDetail(t *testing.T) {
	srv, ds, _ := tracedServer(t)
	for qi := 0; qi < ds.NQ(); qi++ {
		var out SearchResponse
		post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, MaxCandidates: 200}, &out)
	}
	resp, body := get(t, srv.URL+"/debug/querytrace")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var list QueryTraceList
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatalf("list decode: %v", err)
	}
	if list.Recorder.Queries != uint64(ds.NQ()) || list.Recorder.Captured != uint64(ds.NQ()) {
		t.Fatalf("recorder stats %+v, want %d queries all captured", list.Recorder, ds.NQ())
	}
	if len(list.Traces) != ds.NQ() {
		t.Fatalf("%d traces listed, want %d", len(list.Traces), ds.NQ())
	}
	for i, s := range list.Traces {
		if i > 0 && list.Traces[i-1].ID <= s.ID {
			t.Fatalf("traces not newest-first: %d then %d", list.Traces[i-1].ID, s.ID)
		}
		if s.Totals.Candidates == 0 || s.Total <= 0 {
			t.Fatalf("trace %d: empty totals %+v", s.ID, s)
		}
	}
	// Detail view of the newest trace must carry the span timeline.
	id := list.Traces[0].ID
	resp, body = get(t, fmt.Sprintf("%s/debug/querytrace?id=%d", srv.URL, id))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status %d", resp.StatusCode)
	}
	var det trace.Detail
	if err := json.Unmarshal(body, &det); err != nil {
		t.Fatalf("detail decode: %v", err)
	}
	if det.ID != id || len(det.SpanList) == 0 {
		t.Fatalf("detail %d: %d spans", det.ID, len(det.SpanList))
	}
	// Unknown id is a 404, not an empty object.
	resp, _ = get(t, srv.URL+"/debug/querytrace?id=999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", resp.StatusCode)
	}
	resp, _ = get(t, srv.URL+"/debug/querytrace?id=bogus")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad id: status %d", resp.StatusCode)
	}
}

// chromeDoc mirrors the trace_event JSON object format.
type chromeDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		Pid  uint64         `json:"pid"`
		Tid  int64          `json:"tid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

// TestQueryTraceChromeExport is the golden-shape test for the Chrome
// trace_event export: valid JSON, complete events for at least six
// distinct pipeline stages, and non-negative timestamps/durations.
func TestQueryTraceChromeExport(t *testing.T) {
	srv, ds, _ := tracedServer(t)
	for qi := 0; qi < ds.NQ(); qi++ {
		var out SearchResponse
		post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, MaxCandidates: 200}, &out)
	}
	resp, body := get(t, srv.URL+"/debug/querytrace?format=chrome")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc chromeDoc
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	stages := map[string]bool{}
	pids := map[uint64]bool{}
	var complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			stages[ev.Name] = true
			pids[ev.Pid] = true
			if ev.Ts < 0 || ev.Dur < 0 {
				t.Fatalf("negative ts/dur in %+v", ev)
			}
		case "M":
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if complete == 0 {
		t.Fatal("no complete (ph=X) events in chrome export")
	}
	// The single-index pipeline has at least these six distinct stages.
	for _, want := range []string{"snapshot", "preprocess", "sequence", "probe", "gather", "evaluate", "finalize"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from chrome export; got %v", want, stages)
		}
	}
	if len(pids) != ds.NQ() {
		t.Fatalf("%d processes (traces) in export, want %d", len(pids), ds.NQ())
	}
	// Single-trace export filters to that trace only.
	var list QueryTraceList
	_, body2 := get(t, srv.URL+"/debug/querytrace")
	if err := json.Unmarshal(body2, &list); err != nil {
		t.Fatal(err)
	}
	id := list.Traces[0].ID
	_, body3 := get(t, fmt.Sprintf("%s/debug/querytrace?id=%d&format=chrome", srv.URL, id))
	var one chromeDoc
	if err := json.Unmarshal(body3, &one); err != nil {
		t.Fatal(err)
	}
	for _, ev := range one.TraceEvents {
		if ev.Pid != id {
			t.Fatalf("single-trace export contains pid %d, want only %d", ev.Pid, id)
		}
	}
}

func TestStageHistogramsFedByObserver(t *testing.T) {
	srv, ds, _ := tracedServer(t)
	for qi := 0; qi < ds.NQ(); qi++ {
		var out SearchResponse
		post(t, srv.URL+"/search", SearchRequest{Query: ds.Query(qi), K: 5, MaxCandidates: 200}, &out)
	}
	resp, body := get(t, srv.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	text := string(body)
	for _, stage := range []string{"snapshot", "probe", "evaluate", "finalize"} {
		series := fmt.Sprintf(`gqr_search_stage_seconds_count{stage="%s"} %d`, stage, ds.NQ())
		if !contains(text, series) {
			t.Fatalf("metrics missing %q:\n%s", series, text)
		}
	}
}

func contains(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestTraceStressServer hammers a traced server from concurrent
// searchers while other goroutines read the flight recorder and the
// chrome export — the -race exercise for the lock-free ring buffer
// behind live traffic.
func TestTraceStressServer(t *testing.T) {
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "trcstress", N: 400, Dim: 10, Clusters: 3, LatentDim: 3, Seed: 95,
	})
	ds.SampleQueries(4, 96)
	ix, err := gqr.Build(ds.Vectors, ds.Dim, gqr.WithSeed(97),
		gqr.WithTracing(2), gqr.WithSlowQueryThreshold(1), gqr.WithTraceBuffer(8))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(ix))
	defer srv.Close()

	const writers, perWriter, readers = 4, 50, 3
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < perWriter; i++ {
				var out SearchResponse
				post(t, srv.URL+"/search", SearchRequest{
					Query: ds.Query((w + i) % ds.NQ()), K: 3, MaxCandidates: 100,
				}, &out)
			}
		}(w)
	}
	stop := make(chan struct{})
	for rd := 0; rd < readers; rd++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + "/debug/querytrace")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(srv.URL + "/debug/querytrace?format=chrome")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	st := ix.TraceRecorder().Stats()
	if st.Queries != writers*perWriter {
		t.Fatalf("recorder saw %d queries, want %d", st.Queries, writers*perWriter)
	}
	if st.Captured == 0 {
		t.Fatal("stress run captured no traces")
	}
}
