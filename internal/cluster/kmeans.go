// Package cluster provides Lloyd k-means with k-means++ seeding, the
// shared clustering substrate of K-means hashing (package hash) and
// product quantization (package quantization).
package cluster

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"gqr/internal/vecmath"
)

// KMeans runs Lloyd iterations on the n×dims row-major block and returns
// k centroids (k×dims, row-major). Seeding is k-means++ (distance-
// weighted); empty clusters are reseeded from random points so no dead
// centroids survive. Deterministic given rng's state. It is the
// single-worker path of KMeansP.
func KMeans(data []float32, n, dims, k, iters int, rng *rand.Rand) ([]float32, error) {
	return KMeansP(data, n, dims, k, iters, rng, 1)
}

// KMeansP is KMeans computed by up to procs workers. The parallel
// stages keep the serial accumulation order exactly, so the returned
// centroids are bit-for-bit identical to KMeans at any parallelism:
//
//   - the assignment step (and the seeding distance scans) splits the
//     points across workers — each point's nearest centroid is an
//     independent computation, so any partition yields the same answer;
//   - the update step splits the CENTROIDS across workers: each worker
//     scans the assignment array in ascending point order and folds only
//     the points of the centroids it owns, so every per-centroid sum
//     accumulates its contributions in the same order a single worker
//     would. No partial-sum merging, hence no reassociation of
//     floating-point additions;
//   - everything the shared rng feeds (seeding draws, empty-cluster
//     reseeds) stays on one goroutine, in serial order.
func KMeansP(data []float32, n, dims, k, iters int, rng *rand.Rand, procs int) ([]float32, error) {
	if n <= 0 || dims <= 0 || len(data) != n*dims {
		return nil, fmt.Errorf("cluster: invalid data shape n=%d dims=%d len=%d", n, dims, len(data))
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, n)
	}
	if iters <= 0 {
		iters = 25
	}
	procs = vecmath.Procs(procs)
	if n*dims*k < 1<<14 {
		procs = 1
	}
	centroids := make([]float32, k*dims)

	// k-means++ seeding.
	first := rng.Intn(n)
	copy(centroids[:dims], data[first*dims:(first+1)*dims])
	minDist := make([]float64, n)
	vecmath.ParallelRanges(n, procs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			minDist[i] = vecmath.SquaredL2(data[i*dims:(i+1)*dims], centroids[:dims])
		}
	})
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range minDist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, dd := range minDist {
				r -= dd
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(centroids[c*dims:(c+1)*dims], data[pick*dims:(pick+1)*dims])
		vecmath.ParallelRanges(n, procs, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				dd := vecmath.SquaredL2(data[i*dims:(i+1)*dims], centroids[c*dims:(c+1)*dims])
				if dd < minDist[i] {
					minDist[i] = dd
				}
			}
		})
	}

	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dims)
	for it := 0; it < iters; it++ {
		changed := assignPoints(data, n, dims, centroids, k, assign, it == 0, procs)
		if !changed {
			break
		}
		AccumulateByCentroid(data, n, dims, assign, counts, sums, k, procs)
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				p := rng.Intn(n)
				copy(centroids[c*dims:(c+1)*dims], data[p*dims:(p+1)*dims])
				continue
			}
			inv := 1 / float64(counts[c])
			dst := centroids[c*dims : (c+1)*dims]
			src := sums[c*dims : (c+1)*dims]
			for j := range dst {
				dst[j] = float32(src[j] * inv)
			}
		}
	}
	return centroids, nil
}

// assignPoints sets assign[i] to the nearest centroid of every point,
// splitting the points across up to procs workers, and reports whether
// any assignment changed (always true when force is set). Each entry is
// an independent computation, so the result is identical at any
// parallelism.
func assignPoints(data []float32, n, dims int, centroids []float32, k int, assign []int, force bool, procs int) bool {
	var changed atomic.Bool
	vecmath.ParallelRanges(n, procs, func(lo, hi int) {
		local := false
		for i := lo; i < hi; i++ {
			best, _ := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
			if assign[i] != best || force {
				assign[i] = best
				local = true
			}
		}
		if local {
			changed.Store(true)
		}
	})
	return changed.Load()
}

// AccumulateByCentroid folds every point into the count and coordinate
// sum of its assigned centroid, splitting the CENTROIDS across up to
// procs workers. Each worker scans the whole assignment array in
// ascending point order and touches only the accumulators it owns, so
// each centroid's sum is accumulated in exactly the serial order —
// bit-for-bit identical at any parallelism. counts (len k) and sums
// (len k*dims) are zeroed first. Exported for the affinity-preserving
// KMH refinement, which repeats the same assignment/accumulation step.
func AccumulateByCentroid(data []float32, n, dims int, assign []int, counts []int, sums []float64, k, procs int) {
	for i := range sums {
		sums[i] = 0
	}
	for i := range counts {
		counts[i] = 0
	}
	vecmath.ParallelRanges(k, procs, func(cLo, cHi int) {
		for i := 0; i < n; i++ {
			c := assign[i]
			if c < cLo || c >= cHi {
				continue
			}
			counts[c]++
			row := data[i*dims : (i+1)*dims]
			dst := sums[c*dims : (c+1)*dims]
			for j, v := range row {
				dst[j] += float64(v)
			}
		}
	})
}

// QuantizationError returns the mean squared distance from each row to
// its nearest centroid — the k-means objective, used by tests to check
// that training actually descends.
func QuantizationError(data []float32, n, dims int, centroids []float32, k int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		_, d := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
		total += d
	}
	return total / float64(n)
}
