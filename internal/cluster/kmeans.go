// Package cluster provides Lloyd k-means with k-means++ seeding, the
// shared clustering substrate of K-means hashing (package hash) and
// product quantization (package quantization).
package cluster

import (
	"fmt"
	"math/rand"

	"gqr/internal/vecmath"
)

// KMeans runs Lloyd iterations on the n×dims row-major block and returns
// k centroids (k×dims, row-major). Seeding is k-means++ (distance-
// weighted); empty clusters are reseeded from random points so no dead
// centroids survive. Deterministic given rng's state.
func KMeans(data []float32, n, dims, k, iters int, rng *rand.Rand) ([]float32, error) {
	if n <= 0 || dims <= 0 || len(data) != n*dims {
		return nil, fmt.Errorf("cluster: invalid data shape n=%d dims=%d len=%d", n, dims, len(data))
	}
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range [1,%d]", k, n)
	}
	if iters <= 0 {
		iters = 25
	}
	centroids := make([]float32, k*dims)

	// k-means++ seeding.
	first := rng.Intn(n)
	copy(centroids[:dims], data[first*dims:(first+1)*dims])
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = vecmath.SquaredL2(data[i*dims:(i+1)*dims], centroids[:dims])
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range minDist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			for i, dd := range minDist {
				r -= dd
				if r <= 0 {
					pick = i
					break
				}
			}
		}
		copy(centroids[c*dims:(c+1)*dims], data[pick*dims:(pick+1)*dims])
		for i := range minDist {
			dd := vecmath.SquaredL2(data[i*dims:(i+1)*dims], centroids[c*dims:(c+1)*dims])
			if dd < minDist[i] {
				minDist[i] = dd
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([]float64, k*dims)
	for it := 0; it < iters; it++ {
		changed := false
		for i := 0; i < n; i++ {
			best, _ := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
			if assign[i] != best || it == 0 {
				assign[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			counts[c]++
			row := data[i*dims : (i+1)*dims]
			dst := sums[c*dims : (c+1)*dims]
			for j, v := range row {
				dst[j] += float64(v)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				p := rng.Intn(n)
				copy(centroids[c*dims:(c+1)*dims], data[p*dims:(p+1)*dims])
				continue
			}
			inv := 1 / float64(counts[c])
			dst := centroids[c*dims : (c+1)*dims]
			src := sums[c*dims : (c+1)*dims]
			for j := range dst {
				dst[j] = float32(src[j] * inv)
			}
		}
	}
	return centroids, nil
}

// QuantizationError returns the mean squared distance from each row to
// its nearest centroid — the k-means objective, used by tests to check
// that training actually descends.
func QuantizationError(data []float32, n, dims int, centroids []float32, k int) float64 {
	var total float64
	for i := 0; i < n; i++ {
		_, d := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
		total += d
	}
	return total / float64(n)
}
