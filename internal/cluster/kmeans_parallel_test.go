package cluster

import (
	"math/rand"
	"testing"
)

// TestKMeansPMatchesKMeansBitwise is the clustering half of the build
// determinism invariant: at any worker bound, KMeansP must return the
// exact centroids of the serial KMeans — same seeding draws (the rng
// consumption is identical), same assignments, same float64
// accumulation order in the update step.
func TestKMeansPMatchesKMeansBitwise(t *testing.T) {
	const n, dims, k, iters = 2000, 6, 16, 12
	rng := rand.New(rand.NewSource(8))
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	want, err := KMeans(data, n, dims, k, iters, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 7, 16} {
		got, err := KMeansP(data, n, dims, k, iters, rand.New(rand.NewSource(5)), p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d: centroid value [%d] = %v, want %v", p, i, got[i], want[i])
			}
		}
	}
}

// TestAccumulateByCentroidMatchesSerial checks the shared accumulation
// kernel (also used by KMH's affinity refinement) against the obvious
// serial loop, bitwise.
func TestAccumulateByCentroidMatchesSerial(t *testing.T) {
	const n, dims, k = 1500, 5, 9
	rng := rand.New(rand.NewSource(12))
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	assign := make([]int, n)
	for i := range assign {
		assign[i] = rng.Intn(k)
	}

	wantCounts := make([]int, k)
	wantSums := make([]float64, k*dims)
	for i := 0; i < n; i++ {
		c := assign[i]
		wantCounts[c]++
		dst := wantSums[c*dims : (c+1)*dims]
		for j, v := range data[i*dims : (i+1)*dims] {
			dst[j] += float64(v)
		}
	}

	counts := make([]int, k)
	sums := make([]float64, k*dims)
	for _, p := range []int{1, 2, 4, 32} {
		AccumulateByCentroid(data, n, dims, assign, counts, sums, k, p)
		for c := range wantCounts {
			if counts[c] != wantCounts[c] {
				t.Fatalf("p=%d: counts[%d] = %d, want %d", p, c, counts[c], wantCounts[c])
			}
		}
		for i := range wantSums {
			if sums[i] != wantSums[i] {
				t.Fatalf("p=%d: sums[%d] = %v, want %v", p, i, sums[i], wantSums[i])
			}
		}
	}
}
