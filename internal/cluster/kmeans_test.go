package cluster

import (
	"math/rand"
	"testing"

	"gqr/internal/vecmath"
)

// blob generates k well-separated Gaussian blobs.
func blob(rng *rand.Rand, n, dims, k int) []float32 {
	data := make([]float32, n*dims)
	for i := 0; i < n; i++ {
		c := i % k
		for j := 0; j < dims; j++ {
			data[i*dims+j] = float32(float64(c*20) + rng.NormFloat64()*0.5)
		}
	}
	return data
}

func TestKMeansRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n, dims, k = 300, 4, 3
	data := blob(rng, n, dims, k)
	centroids, err := KMeans(data, n, dims, k, 30, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Every point must be within 5 of its centroid (blobs are 20 apart
	// with stddev 0.5).
	for i := 0; i < n; i++ {
		_, d := vecmath.ArgNearest(data[i*dims:(i+1)*dims], centroids, k, dims)
		if d > 25 {
			t.Fatalf("point %d has squared distance %g to nearest centroid", i, d)
		}
	}
}

func TestKMeansObjectiveDescends(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, dims, k = 400, 6, 8
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64())
	}
	few, err := KMeans(data, n, dims, k, 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	many, err := KMeans(data, n, dims, k, 30, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	e1 := QuantizationError(data, n, dims, few, k)
	e2 := QuantizationError(data, n, dims, many, k)
	if e2 > e1*1.0001 {
		t.Fatalf("more iterations increased the objective: %g -> %g", e1, e2)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	const n, dims, k = 100, 3, 4
	rng := rand.New(rand.NewSource(4))
	data := blob(rng, n, dims, k)
	a, _ := KMeans(data, n, dims, k, 10, rand.New(rand.NewSource(5)))
	b, _ := KMeans(data, n, dims, k, 10, rand.New(rand.NewSource(5)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("KMeans not deterministic for fixed rng seed")
		}
	}
}

func TestKMeansValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	data := make([]float32, 10*2)
	if _, err := KMeans(data, 10, 2, 0, 5, rng); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := KMeans(data, 10, 2, 11, 5, rng); err == nil {
		t.Fatal("k>n must be rejected")
	}
	if _, err := KMeans(data[:5], 10, 2, 2, 5, rng); err == nil {
		t.Fatal("short data must be rejected")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, dims = 10, 2
	data := make([]float32, n*dims)
	for i := range data {
		data[i] = float32(rng.NormFloat64() * 10)
	}
	centroids, err := KMeans(data, n, dims, n, 10, rng)
	if err != nil {
		t.Fatal(err)
	}
	// With k = n the quantization error must be ~0 (each point its own
	// centroid) — k-means++ guarantees distinct seeds when points are
	// distinct.
	if e := QuantizationError(data, n, dims, centroids, n); e > 1e-6 {
		t.Fatalf("k=n quantization error %g", e)
	}
}
