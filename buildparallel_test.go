package gqr

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"gqr/internal/dataset"
)

// parallelOracleData is the corpus of the serial-vs-parallel build
// oracle: big enough that every parallel kernel (covariance, mat-mul,
// k-means, chunked coding) actually fans out, small enough that all six
// learners train in test time.
func parallelOracleData(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.Generate(dataset.GeneratorSpec{
		Name: "par", N: 3000, Dim: 16, Clusters: 8, LatentDim: 6, Seed: 41,
	})
	ds.SampleQueries(8, 42)
	return ds
}

// buildAt builds the oracle index at one worker bound. Two tables so
// the concurrent per-table training path runs; fixed 8-bit codes so
// every learner (KMH needs the subspace multiple, SSH needs bits ≤ dim)
// accepts the configuration.
func buildAt(t *testing.T, ds *dataset.Dataset, algo Algorithm, procs int) *Index {
	t.Helper()
	ix, err := Build(ds.Vectors, ds.Dim,
		WithAlgorithm(algo),
		WithCodeLength(8),
		WithTables(2),
		WithSeed(42),
		WithBuildParallelism(procs))
	if err != nil {
		t.Fatalf("%s p=%d: %v", algo, procs, err)
	}
	return ix
}

// TestParallelBuildIsBitForBitIdentical is the PR's hard invariant:
// for every learner, a parallel build must produce the exact same
// index as the serial one — same persisted bytes (hasher parameters,
// codes, bucket layout) and same search results — at any worker count.
func TestParallelBuildIsBitForBitIdentical(t *testing.T) {
	ds := parallelOracleData(t)
	algos := []Algorithm{ITQ, PCAH, SH, KMH, LSH, SSH}
	for _, algo := range algos {
		t.Run(string(algo), func(t *testing.T) {
			serial := buildAt(t, ds, algo, 1)
			var want bytes.Buffer
			if err := serial.Save(&want); err != nil {
				t.Fatal(err)
			}
			wantRes := searchAll(t, serial, ds)

			for _, p := range []int{2, 8} {
				par := buildAt(t, ds, algo, p)
				var got bytes.Buffer
				if err := par.Save(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("%s: persisted index at p=%d differs from serial build (%d vs %d bytes)",
						algo, p, got.Len(), want.Len())
				}
				gotRes := searchAll(t, par, ds)
				if wantRes != gotRes {
					t.Fatalf("%s: search results at p=%d differ from serial build:\n%s\nvs\n%s",
						algo, p, gotRes, wantRes)
				}
			}
		})
	}
}

// searchAll runs every sampled query and flattens ids+distances into a
// comparable string (exact equality — the invariant is bit-for-bit,
// not approximate).
func searchAll(t *testing.T, ix *Index, ds *dataset.Dataset) string {
	t.Helper()
	var b bytes.Buffer
	for qi := 0; qi < ds.NQ(); qi++ {
		nbrs, err := ix.Search(ds.Query(qi), 5, WithMaxCandidates(500))
		if err != nil {
			t.Fatal(err)
		}
		for _, nb := range nbrs {
			fmt.Fprintf(&b, "%d:%x ", nb.ID, nb.Distance)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestParallelBuildRerankIsBitForBitIdentical extends the oracle to
// reranking-enabled builds: PQ/OPQ training, code assignment and the
// rotation must all be bit-for-bit identical at any worker count — the
// persisted stream now also carries the quantizer blob and the code
// slab, so bytes.Equal covers them too.
func TestParallelBuildRerankIsBitForBitIdentical(t *testing.T) {
	ds := parallelOracleData(t)
	variants := []struct {
		name string
		opts []Option
	}{
		{"pq", []Option{WithReranking(4, 32, 4)}},
		{"opq", []Option{WithReranking(4, 32, 4), WithOPQRotation()}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			build := func(procs int) *Index {
				ix, err := Build(ds.Vectors, ds.Dim, append([]Option{
					WithAlgorithm(ITQ),
					WithCodeLength(8),
					WithTables(2),
					WithSeed(42),
					WithBuildParallelism(procs),
				}, v.opts...)...)
				if err != nil {
					t.Fatalf("p=%d: %v", procs, err)
				}
				return ix
			}
			serial := build(1)
			var want bytes.Buffer
			if err := serial.Save(&want); err != nil {
				t.Fatal(err)
			}
			wantRes := searchAll(t, serial, ds)
			if st := serial.Stats(); st.RerankM != 4 {
				t.Fatalf("reranking not active on oracle build: RerankM = %d", st.RerankM)
			}
			for _, p := range []int{2, 8} {
				par := build(p)
				var got bytes.Buffer
				if err := par.Save(&got); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want.Bytes(), got.Bytes()) {
					t.Fatalf("%s: persisted rerank index at p=%d differs from serial build (%d vs %d bytes)",
						v.name, p, got.Len(), want.Len())
				}
				if gotRes := searchAll(t, par, ds); wantRes != gotRes {
					t.Fatalf("%s: rerank search results at p=%d differ from serial build:\n%s\nvs\n%s",
						v.name, p, gotRes, wantRes)
				}
			}
		})
	}
}

// TestParallelBuildStatsReportStages checks that a parallel build
// surfaces its stage timings and resolved worker bound through Stats.
func TestParallelBuildStatsReportStages(t *testing.T) {
	ds := parallelOracleData(t)
	ix := buildAt(t, ds, ITQ, 4)
	st := ix.Stats()
	if st.BuildParallelism != 4 {
		t.Fatalf("BuildParallelism = %d, want 4", st.BuildParallelism)
	}
	if st.TrainTime <= 0 || st.CodeTime <= 0 || st.FreezeTime <= 0 {
		t.Fatalf("stage timings not populated: train=%v code=%v freeze=%v",
			st.TrainTime, st.CodeTime, st.FreezeTime)
	}
	if st.BuildTime < st.TrainTime {
		t.Fatalf("BuildTime %v < TrainTime %v", st.BuildTime, st.TrainTime)
	}
}

// TestParallelBuildStress drives several builds at different worker
// bounds concurrently and searches each result, so `go test -race`
// patrols the fan-out paths (panel workers, chunked coding, concurrent
// table training) for data races.
func TestParallelBuildStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	ds := parallelOracleData(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for _, p := range []int{1, 2, 3, 8} {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ix, err := Build(ds.Vectors, ds.Dim,
				WithAlgorithm(ITQ),
				WithCodeLength(8),
				WithTables(2),
				WithSeed(42),
				WithBuildParallelism(p))
			if err != nil {
				errs <- err
				return
			}
			for qi := 0; qi < ds.NQ(); qi++ {
				if _, err := ix.Search(ds.Query(qi), 5, WithMaxCandidates(200)); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
